// Incremental (delta) cleaning bench: the million-tuple operating loop this
// subsystem exists for. One full clean of a UIS relation establishes the
// provenance log; a 1% delta (updates to existing rows) then re-cleans two
// ways — full re-chase of every row vs incremental re-chase of the affected
// closure with replay of the previous log — and the bench asserts the bytes
// agree before reporting either time. The series the CI gate watches:
//
//   full_clean        the initial chase (also the provenance producer)
//   full_reclean      chase everything again after the delta
//   incremental_1pct  plan + replay + re-chase of the affected closure
//   kbload(text)      parse + freeze the N-triples KB (cold start, old way)
//   kbload(snapshot)  mmap + reconstruct from a kb/snapshot.h binary
//   snapshot_write    serialize + write the snapshot (the build step)
//
// --tuples=N (default 20000) sizes the relation; --threads=T (default 1)
// drives both re-cleans through the same parallel driver.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/incremental.h"
#include "core/parallel_repair.h"
#include "datagen/uis_gen.h"
#include "eval/experiment.h"
#include "kb/ntriples_parser.h"
#include "kb/snapshot.h"

int main(int argc, char** argv) {
  using namespace detective;
  bench::PrintHeader(
      "Incremental cleaning: 1% delta vs full re-clean (UIS, Yago)",
      "byte-identity asserted before timings are reported");
  bench::TraceSession trace_session(argc, argv);

  const size_t tuples =
      static_cast<size_t>(bench::FlagUint(argc, argv, "tuples", 20000));
  const size_t threads =
      static_cast<size_t>(bench::FlagUint(argc, argv, "threads", 1));
  bench::BenchJsonWriter json("incremental");

  UisOptions uis;
  uis.num_tuples = tuples;
  Dataset dataset = GenerateUis(uis);
  Relation dirty = dataset.clean;
  ErrorSpec spec;
  spec.error_rate = 0.10;
  InjectErrors(&dirty, spec, dataset.alternatives);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);

  const size_t cores = threads == 0 ? 1 : threads;
  auto add = [&](const char* series, double wall_ms, size_t rows,
                 std::map<std::string, uint64_t> counters) {
    if (rows > 0) bench::RecordThroughput(&counters, rows, cores, wall_ms);
    json.Add(series, static_cast<double>(tuples), wall_ms,
             std::move(counters));
  };

  // ---- Initial full clean: produces the previous run's provenance log ----
  bench::DrainCounters();
  Relation cleaned = dirty;
  ProvenanceLog prev_provenance;
  double start = NowSeconds();
  {
    ParallelRepairOptions options;
    options.num_threads = threads;
    options.provenance = &prev_provenance;
    ParallelRepair(kb, dataset.rules, &cleaned, options)
        .status()
        .Abort("full clean");
  }
  const double full_ms = (NowSeconds() - start) * 1000;
  add("full_clean", full_ms, tuples, bench::DrainCounters());
  std::printf("full clean        %10.1f ms  (%zu rows, %zu records)\n",
              full_ms, tuples, prev_provenance.size());

  // ---- 1% delta: rewrite the key cell of every 100th row. Names are
  // row-unique, so the provenance-overlap closure stays at exactly the
  // delta rows — the best case the incremental path is built for. (A delta
  // touching a shared evidence value, e.g. a university name, legitimately
  // pulls every row citing that value into the closure.)
  RelationDelta delta;
  const Schema& schema = dirty.schema();
  for (size_t row = 0; row < dirty.num_tuples(); row += 100) {
    DeltaChange change;
    change.row = row;
    for (ColumnIndex c = 0; c < schema.num_columns(); ++c) {
      change.values.push_back(std::string(dirty.value(row, c)));
    }
    change.values[0] = "Perturbed Person " + std::to_string(row);
    delta.changes.push_back(std::move(change));
    ++delta.num_updates;
  }
  std::printf("delta             %10zu update(s) (1%% of rows)\n",
              delta.changes.size());

  // ---- Full re-clean of the delta-applied relation ----
  Relation delta_applied = dirty;
  for (const DeltaChange& change : delta.changes) {
    for (ColumnIndex c = 0; c < schema.num_columns(); ++c) {
      delta_applied.SetValue(change.row, c, change.values[c]);
    }
  }
  bench::DrainCounters();
  Relation full_again = delta_applied;
  ProvenanceLog full_log;
  start = NowSeconds();
  {
    ParallelRepairOptions options;
    options.num_threads = threads;
    options.provenance = &full_log;
    ParallelRepair(kb, dataset.rules, &full_again, options)
        .status()
        .Abort("full re-clean");
  }
  const double reclean_ms = (NowSeconds() - start) * 1000;
  add("full_reclean", reclean_ms, tuples, bench::DrainCounters());
  std::printf("full re-clean     %10.1f ms\n", reclean_ms);

  // ---- Incremental: plan the closure, replay, re-chase the subset ----
  bench::DrainCounters();
  Relation inc_relation = dirty;
  ProvenanceLog inc_log;
  IncrementalStats inc_stats;
  start = NowSeconds();
  {
    auto plan =
        PlanIncremental(delta, &inc_relation, prev_provenance, nullptr);
    plan.status().Abort("plan");
    IncrementalOptions options;
    options.num_threads = threads;
    options.provenance = &inc_log;
    auto stats = IncrementalRepair(kb, dataset.rules, &inc_relation, *plan,
                                   std::move(prev_provenance), nullptr,
                                   options);
    stats.status().Abort("incremental");
    inc_stats = *stats;
  }
  const double inc_ms = (NowSeconds() - start) * 1000;
  std::map<std::string, uint64_t> inc_counters = bench::DrainCounters();
  inc_counters["incremental.rechased"] = inc_stats.rows_rechased;
  inc_counters["incremental.replayed"] = inc_stats.rows_replayed;
  add("incremental_1pct", inc_ms, inc_stats.rows_rechased,
      std::move(inc_counters));
  std::printf("incremental (1%%)  %10.1f ms  (%zu re-chased, %zu replayed, "
              "%.1fx vs full)\n",
              inc_ms, inc_stats.rows_rechased, inc_stats.rows_replayed,
              inc_ms > 0 ? reclean_ms / inc_ms : 0.0);

  // The headline claim is only worth reporting if the bytes agree.
  if (inc_relation.ToCsv() != full_again.ToCsv() ||
      inc_log.ToJsonLines() != full_log.ToJsonLines()) {
    std::fprintf(stderr,
                 "FATAL: incremental output differs from full re-clean\n");
    return 1;
  }
  std::printf("byte-identity: incremental == full re-clean (csv + "
              "provenance)\n");

  // ---- Cold-start series: snapshot vs text KB load ----
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path();
  const std::string nt_path = (dir / "bench_incremental_kb.nt").string();
  const std::string snap_path = (dir / "bench_incremental_kb.dkb").string();
  {
    std::ofstream out(nt_path, std::ios::trunc | std::ios::binary);
    out << ToNTriples(kb);
  }
  bench::DrainCounters();
  start = NowSeconds();
  WriteKbSnapshot(kb, snap_path).Abort("write snapshot");
  const double snap_write_ms = (NowSeconds() - start) * 1000;
  add("snapshot_write", snap_write_ms, 0, bench::DrainCounters());

  start = NowSeconds();
  LoadKbFile(nt_path).status().Abort("load text KB");
  const double text_ms = (NowSeconds() - start) * 1000;
  add("kbload(text)", text_ms, 0, bench::DrainCounters());

  start = NowSeconds();
  LoadKbSnapshot(snap_path).status().Abort("load snapshot");
  const double snap_ms = (NowSeconds() - start) * 1000;
  add("kbload(snapshot)", snap_ms, 0, bench::DrainCounters());
  std::printf("KB load: text %.1f ms, snapshot %.1f ms (%.1fx); snapshot "
              "write %.1f ms\n",
              text_ms, snap_ms, snap_ms > 0 ? text_ms / snap_ms : 0.0,
              snap_write_ms);
  std::error_code ec;
  fs::remove(nt_path, ec);
  fs::remove(snap_path, ec);

  if (!json.WriteTo(bench::FlagString(argc, argv, "json"))) return 1;
  return 0;
}
