// Ablation study (DESIGN.md): the three fast-repair optimizations of
// §IV-B, each disabled individually:
//   - rule order selection (topological order over the rule graph),
//   - signature-based similarity indexes,
//   - shared computation across rules (the value memo standing in for the
//     paper's Fig. 5 inverted lists).
// Reported on Nobel and UIS (Yago profile) with e=10%.

#include <cstdio>

#include "bench_util.h"
#include "core/repair.h"
#include "datagen/nobel_gen.h"
#include "datagen/uis_gen.h"
#include "eval/experiment.h"

namespace detective {
namespace {

struct Config {
  const char* label;
  bool rule_order;
  bool signature_index;
  bool value_memo;
};

constexpr Config kConfigs[] = {
    {"fRepair (all optimizations)", true, true, true},
    {"  - rule order selection", false, true, true},
    {"  - signature indexes", true, false, true},
    {"  - shared computation", true, true, false},
    {"bRepair (none; Algorithm 1)", false, false, false},
};

void RunAblation(const Dataset& dataset, const Relation& dirty,
                 bench::BenchJsonWriter* json) {
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  std::printf("%s (%zu tuples, %zu rules)\n", dataset.name.c_str(),
              dirty.num_tuples(), dataset.rules.size());
  std::printf("  %-32s %10s %14s %14s\n", "configuration", "time", "rule checks",
              "cand. scans");
  for (const Config& config : kConfigs) {
    RepairOptions options;
    options.use_rule_order = config.rule_order;
    options.matcher.use_signature_index = config.signature_index;
    options.matcher.use_value_memo = config.value_memo;

    Relation copy = dirty;
    double elapsed = 0;
    size_t checks = 0;
    size_t scans = 0;
    if (config.label[0] == 'b') {  // the bRepair baseline row
      BasicRepairer repairer(kb, dirty.schema(), dataset.rules, options);
      repairer.Init().Abort("init");
      double start = NowSeconds();
      repairer.RepairRelation(&copy);
      elapsed = NowSeconds() - start;
      checks = repairer.stats().rule_checks;
      scans = repairer.engine().matcher().stats().scans;
    } else {
      FastRepairer repairer(kb, dirty.schema(), dataset.rules, options);
      repairer.Init().Abort("init");
      double start = NowSeconds();
      repairer.RepairRelation(&copy);
      elapsed = NowSeconds() - start;
      checks = repairer.stats().rule_checks;
      scans = repairer.engine().matcher().stats().scans;
    }
    std::printf("  %-32s %9.3fs %14zu %14zu\n", config.label, elapsed, checks,
                scans);
    json->Add(dataset.name + "/" + Trim(config.label), 0, elapsed * 1000,
              {{"rule_checks", checks}, {"candidate_scans", scans}});
  }
  std::printf("\n");
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  using namespace detective;
  bench::PrintHeader("Ablation: the three fast-repair optimizations (§IV-B)",
                     "each knob disabled individually; Yago profile, e=10%");
  bench::BenchJsonWriter json("ablation");

  {
    NobelOptions options;
    Dataset dataset = GenerateNobel(options);
    Relation dirty = dataset.clean;
    ErrorSpec spec;
    spec.error_rate = 0.10;
    InjectErrors(&dirty, spec, dataset.alternatives);
    RunAblation(dataset, dirty, &json);
  }
  {
    UisOptions options;
    options.num_tuples = bench::FlagUint(argc, argv, "uis_tuples", 10000);
    Dataset dataset = GenerateUis(options);
    Relation dirty = dataset.clean;
    ErrorSpec spec;
    spec.error_rate = 0.10;
    InjectErrors(&dirty, spec, dataset.alternatives);
    RunAblation(dataset, dirty, &json);
  }

  std::printf(
      "Reading the ablation: dropping the signature indexes costs the most\n"
      "on similarity-heavy rules; dropping the shared memo multiplies node\n"
      "checks across rules; dropping rule ordering forces extra sweeps.\n");
  if (!json.WriteTo(bench::FlagString(argc, argv, "json"))) return 1;
  return 0;
}
