// Micro-benchmarks (google-benchmark) for the substrates the repair
// algorithms lean on: edit distance (full vs banded), signature index vs
// linear scan, KB lookups, and single-rule evaluation.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "core/evidence_matcher.h"
#include "core/repair.h"
#include "core/rule_generation.h"
#include "datagen/nobel_gen.h"
#include "datagen/uis_gen.h"
#include "text/edit_distance.h"
#include "text/signature_index.h"

namespace detective {
namespace {

std::vector<std::string> RandomStrings(size_t count, size_t length, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string s;
    for (size_t j = 0; j < length; ++j) {
      s.push_back(static_cast<char>('a' + rng.NextIndex(26)));
    }
    out.push_back(std::move(s));
  }
  return out;
}

void BM_EditDistanceFull(benchmark::State& state) {
  std::vector<std::string> strings = RandomStrings(64, state.range(0), 1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EditDistance(strings[i % 64], strings[(i + 1) % 64]));
    ++i;
  }
}
BENCHMARK(BM_EditDistanceFull)->Arg(8)->Arg(32)->Arg(128);

// Per-kernel series over identical inputs (same RandomStrings seed as
// BM_EditDistanceFull), so the committed baselines compare naive vs banded
// vs bit-parallel directly.
void BM_EditDistanceBanded(benchmark::State& state) {
  std::vector<std::string> strings = RandomStrings(64, state.range(0), 1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BandedEditDistance(strings[i % 64], strings[(i + 1) % 64], 2));
    ++i;
  }
}
BENCHMARK(BM_EditDistanceBanded)->Arg(8)->Arg(32)->Arg(128);

// Myers bit-parallel kernel: requires the shorter string <= 64 chars, so the
// series stops at 64 where BM_EditDistanceBanded continues to 128.
void BM_EditDistanceBitParallel(benchmark::State& state) {
  std::vector<std::string> strings = RandomStrings(64, state.range(0), 1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BitParallelEditDistance(strings[i % 64], strings[(i + 1) % 64], 2));
    ++i;
  }
}
BENCHMARK(BM_EditDistanceBitParallel)->Arg(8)->Arg(32)->Arg(64);

// The dispatcher the matcher actually calls (bit-parallel <= 64, banded
// above): its cost should track the winning kernel at every length.
void BM_EditDistanceDispatch(benchmark::State& state) {
  std::vector<std::string> strings = RandomStrings(64, state.range(0), 1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BoundedEditDistance(strings[i % 64], strings[(i + 1) % 64], 2));
    ++i;
  }
}
BENCHMARK(BM_EditDistanceDispatch)->Arg(8)->Arg(32)->Arg(128);

// Batched per-signature-bucket verification: one query against 64 bucket
// candidates through the PEQ-hoisting verifier, vs rebuilding state per pair.
void BM_EditDistanceVerifierBatch(benchmark::State& state) {
  std::vector<std::string> strings = RandomStrings(64, state.range(0), 1);
  size_t i = 0;
  for (auto _ : state) {
    EditDistanceVerifier verifier(strings[i % 64], 2);
    size_t matches = 0;
    for (const std::string& candidate : strings) {
      matches += verifier.Matches(candidate) ? 1 : 0;
    }
    benchmark::DoNotOptimize(matches);
    ++i;
  }
}
BENCHMARK(BM_EditDistanceVerifierBatch)->Arg(16)->Arg(32);

void BM_SignatureIndexLookup(benchmark::State& state) {
  std::vector<std::string> values =
      RandomStrings(static_cast<size_t>(state.range(0)), 16, 2);
  SignatureIndex index(Similarity::EditDistance(2));
  for (uint32_t i = 0; i < values.size(); ++i) index.Add(i, values[i]);
  index.Build();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Matches(values[i % values.size()]));
    ++i;
  }
}
BENCHMARK(BM_SignatureIndexLookup)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LinearScanLookup(benchmark::State& state) {
  std::vector<std::string> values =
      RandomStrings(static_cast<size_t>(state.range(0)), 16, 2);
  Similarity ed2 = Similarity::EditDistance(2);
  size_t i = 0;
  for (auto _ : state) {
    const std::string& query = values[i % values.size()];
    size_t matches = 0;
    for (const std::string& value : values) {
      matches += ed2.Matches(query, value) ? 1 : 0;
    }
    benchmark::DoNotOptimize(matches);
    ++i;
  }
}
BENCHMARK(BM_LinearScanLookup)->Arg(1000)->Arg(10000);

void BM_KbEdgeLookup(benchmark::State& state) {
  NobelOptions options;
  options.num_laureates = 1069;
  Dataset dataset = GenerateNobel(options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  RelationId works = kb.FindRelation("worksAt");
  std::vector<ItemId> people;
  for (ItemId item : kb.InstancesOf(kb.FindClass("laureate"))) {
    people.push_back(item);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kb.Objects(people[i % people.size()], works));
    ++i;
  }
}
BENCHMARK(BM_KbEdgeLookup);

void BM_KbLabelLookup(benchmark::State& state) {
  NobelOptions options;
  Dataset dataset = GenerateNobel(options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kb.ItemsWithLabel(dataset.clean.tuple(i % dataset.clean.num_tuples()).value(0)));
    ++i;
  }
}
BENCHMARK(BM_KbLabelLookup);

void BM_RuleEvaluation(benchmark::State& state) {
  const bool memo = state.range(0) != 0;
  NobelOptions options;
  options.num_laureates = 500;
  Dataset dataset = GenerateNobel(options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  RepairOptions ropts;
  ropts.matcher.use_value_memo = memo;
  RuleEngine engine(kb, dataset.clean.schema(), dataset.rules, ropts);
  engine.Init().Abort("init");
  size_t i = 0;
  for (auto _ : state) {
    const Tuple& tuple = dataset.clean.tuple(i % dataset.clean.num_tuples());
    for (uint32_t r = 0; r < engine.num_rules(); ++r) {
      benchmark::DoNotOptimize(engine.Evaluate(r, tuple));
    }
    ++i;
  }
}
BENCHMARK(BM_RuleEvaluation)->Arg(0)->Arg(1)->ArgNames({"memo"});

void BM_UisTupleRepair(benchmark::State& state) {
  UisOptions options;
  options.num_tuples = 2000;
  Dataset dataset = GenerateUis(options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  Relation dirty = dataset.clean;
  ErrorSpec spec;
  spec.error_rate = 0.10;
  InjectErrors(&dirty, spec, dataset.alternatives);
  FastRepairer repairer(kb, dirty.schema(), dataset.rules);
  repairer.Init().Abort("init");
  size_t i = 0;
  for (auto _ : state) {
    Tuple tuple = dirty.tuple(i % dirty.num_tuples());
    repairer.RepairTuple(&tuple);
    benchmark::DoNotOptimize(tuple);
    ++i;
  }
}
BENCHMARK(BM_UisTupleRepair);

void BM_RuleGeneration(benchmark::State& state) {
  // S1-S3 end to end over a slice of the Nobel world (the size the paper's
  // "user provides a handful of examples" workflow implies).
  NobelOptions options;
  options.num_laureates = 200;
  Dataset dataset = GenerateNobel(options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);

  const size_t examples = static_cast<size_t>(state.range(0));
  Schema schema({"Name", "Institution", "City"});
  Relation positives{schema};
  Relation negatives{schema};
  for (size_t row = 0; row < examples; ++row) {
    const Tuple& t = dataset.clean.tuple(row);
    positives.Append({t.value(0), t.value(4), t.value(5)}).Abort("p");
    negatives.Append({t.value(0), t.value(4), dataset.alternatives[row][5][0]})
        .Abort("n");
  }
  for (auto _ : state) {
    auto rules = GenerateRules(kb, positives, negatives, "City");
    rules.status().Abort("generate");
    benchmark::DoNotOptimize(rules->size());
  }
}
BENCHMARK(BM_RuleGeneration)->Arg(5)->Arg(20)->Arg(50);

/// ConsoleReporter that additionally copies every run into a BenchJsonWriter
/// so bench_micro emits the same BENCH_*.json schema as the figure/table
/// benches (series = benchmark name, x = 0, counters = {"iterations": n}).
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(bench::BenchJsonWriter* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      // real_accumulated_time is in seconds; report per-iteration wall ms.
      double iterations = run.iterations > 0 ? static_cast<double>(run.iterations) : 1;
      json_->Add(run.benchmark_name(), 0,
                 run.real_accumulated_time / iterations * 1e3,
                 {{"iterations", static_cast<uint64_t>(run.iterations)}});
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchJsonWriter* json_;
};

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  using namespace detective;
  // benchmark::Initialize rejects flags it does not know, so take --json=
  // out of argv before handing the rest over.
  std::string json_path = bench::FlagString(argc, argv, "json");
  std::vector<char*> rest;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) != 0) rest.push_back(argv[i]);
  }
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) return 1;

  bench::BenchJsonWriter json("micro");
  JsonTeeReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json.WriteTo(json_path)) return 1;
  return 0;
}
