#ifndef DETECTIVE_BENCH_BENCH_UTIL_H_
#define DETECTIVE_BENCH_BENCH_UTIL_H_

// Shared plumbing for the experiment-reproduction benches (one binary per
// paper table/figure). Each binary prints the same rows/series the paper
// reports; absolute numbers differ from the authors' testbed, the *shape*
// is what reproduces.

#include <cstdio>
#include <cstring>
#include <string>

#include "common/string_util.h"

namespace detective::bench {

/// Minimal --key=value flag reader: Flag(argc, argv, "tuples", 2000).
inline uint64_t FlagUint(int argc, char** argv, const char* name,
                         uint64_t fallback) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      uint64_t value = 0;
      if (ParseUint64(argv[i] + prefix.size(), &value)) return value;
    }
  }
  return fallback;
}

inline bool FlagBool(int argc, char** argv, const char* name) {
  std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

inline void PrintHeader(const char* title, const char* subtitle) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title);
  std::printf("%s\n", subtitle);
  std::printf("==========================================================\n");
}

}  // namespace detective::bench

#endif  // DETECTIVE_BENCH_BENCH_UTIL_H_
