#ifndef DETECTIVE_BENCH_BENCH_UTIL_H_
#define DETECTIVE_BENCH_BENCH_UTIL_H_

// Shared plumbing for the experiment-reproduction benches (one binary per
// paper table/figure). Each binary prints the same rows/series the paper
// reports; absolute numbers differ from the authors' testbed, the *shape*
// is what reproduces.
//
// Every binary also accepts --json=<path> and emits the machine-readable
// form of its table through BenchJsonWriter below — one schema for the
// whole suite so the perf-trajectory tooling (tools/check_bench_regression.py
// and the CI bench-smoke job) can consume any BENCH_*.json without
// per-binary parsing:
//
//   {
//     "schema_version": 1,
//     "bench": "<binary name without bench_ prefix>",
//     "entries": [
//       {"series": "fRepair(Yago)", "x": 4000, "wall_ms": 12.5,
//        "counters": {"repair.rule_checks": 123, ...}},
//       ...
//     ]
//   }
//
// "series" names one line of a figure (or one row label of a table), "x" is
// the swept parameter (0 when nothing is swept), "wall_ms" the measured wall
// clock, and "counters" any integer-valued extras (work counters, quality
// tallies scaled to counts — never floats).

// Every binary also accepts --trace-json=<path> (see TraceSession below):
// when given, the run records the span timeline of common/trace.h and writes
// it in Chrome trace-event format for chrome://tracing / Perfetto.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace detective::bench {

/// Peak resident set of this process so far, in bytes (getrusage; Linux
/// reports ru_maxrss in KiB). Monotone over the process lifetime, so a
/// bench entry records the high-water mark up to its measurement — the
/// memory gate the scale benches assert on.
inline uint64_t PeakRssBytes() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

/// Normalized throughput: rows cleaned per second per worker core. Stored as
/// a counter named with the _rps suffix so check_bench_regression.py's
/// default throughput band applies instead of the exact-match rule.
inline void RecordThroughput(std::map<std::string, uint64_t>* counters,
                             uint64_t rows, size_t cores, double wall_ms) {
  if (wall_ms <= 0 || cores == 0) return;
  const double per_core = static_cast<double>(rows) / (wall_ms / 1000.0) /
                          static_cast<double>(cores);
  (*counters)["rows_per_core_rps"] = static_cast<uint64_t>(per_core);
}

/// Minimal --key=value flag reader: Flag(argc, argv, "tuples", 2000).
inline uint64_t FlagUint(int argc, char** argv, const char* name,
                         uint64_t fallback) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      uint64_t value = 0;
      if (ParseUint64(argv[i] + prefix.size(), &value)) return value;
    }
  }
  return fallback;
}

inline bool FlagBool(int argc, char** argv, const char* name) {
  std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

inline std::string FlagString(int argc, char** argv, const char* name,
                              std::string fallback = "") {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

/// Wires `--trace-json=PATH` into a bench binary: starts the span recorder
/// on construction when the flag was given; Finish() (also run by the
/// destructor) stops recording and writes the Chrome trace-event file.
class TraceSession {
 public:
  TraceSession(int argc, char** argv)
      : path_(FlagString(argc, argv, "trace-json")) {
    if (!path_.empty()) trace::Registry::Global().Start();
  }
  ~TraceSession() { Finish(); }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  void Finish() {
    if (path_.empty() || finished_) return;
    finished_ = true;
    trace::Registry& tracer = trace::Registry::Global();
    tracer.Stop();
    Status status = trace::WriteChromeTraceJson(tracer.Collect(), path_);
    if (status.ok()) {
      std::printf("trace written to %s\n", path_.c_str());
    } else {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
    }
  }

 private:
  std::string path_;
  bool finished_ = false;
};

/// Exact per-phase counter deltas: call once to open a measurement epoch
/// (discarding what came before) and again after the phase to collect what
/// it recorded. Registry::SnapshotAndReset drains cells atomically, so a
/// count lands in exactly one epoch even if worker threads race the call.
inline std::map<std::string, uint64_t> DrainCounters() {
  return metrics::Registry::Global().SnapshotAndReset().counters;
}

inline void PrintHeader(const char* title, const char* subtitle) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title);
  std::printf("%s\n", subtitle);
  std::printf("==========================================================\n");
}

/// Collects (series, x, wall_ms, counters) measurements and writes the
/// schema-stable JSON document described at the top of this header.
class BenchJsonWriter {
 public:
  /// `bench_name` identifies the binary, e.g. "fig8_scale".
  explicit BenchJsonWriter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void Add(std::string series, double x, double wall_ms,
           std::map<std::string, uint64_t> counters = {}) {
    // Every entry carries the process peak-RSS high-water mark, so memory
    // regressions gate in CI alongside wall clock (emplace: a caller that
    // measured its own figure wins).
    counters.emplace("peak_rss_bytes", PeakRssBytes());
    entries_.push_back(
        {std::move(series), x, wall_ms, std::move(counters)});
  }

  /// Writes the document; no-op returning true when `path` is empty (the
  /// caller can pass FlagString(argc, argv, "json") unconditionally).
  bool WriteTo(const std::string& path) const {
    if (path.empty()) return true;
    std::ofstream out(path, std::ios::trunc);
    out << "{\n  \"schema_version\": 1,\n  \"bench\": " << Quoted(bench_name_)
        << ",\n  \"entries\": [";
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      out << (i == 0 ? "\n" : ",\n");
      char number[64];
      std::snprintf(number, sizeof(number), "%.6g", e.x);
      out << "    {\"series\": " << Quoted(e.series) << ", \"x\": " << number;
      std::snprintf(number, sizeof(number), "%.6f", e.wall_ms);
      out << ", \"wall_ms\": " << number << ", \"counters\": {";
      bool first = true;
      for (const auto& [name, value] : e.counters) {
        out << (first ? "" : ", ") << Quoted(name) << ": " << value;
        first = false;
      }
      out << "}}";
    }
    out << (entries_.empty() ? "]\n}\n" : "\n  ]\n}\n");
    if (out.good()) {
      std::printf("\nbench JSON written to %s (%zu entries)\n", path.c_str(),
                  entries_.size());
      return true;
    }
    std::fprintf(stderr, "error writing bench JSON to %s\n", path.c_str());
    return false;
  }

 private:
  struct Entry {
    std::string series;
    double x;
    double wall_ms;
    std::map<std::string, uint64_t> counters;
  };

  /// The double-quoted JSON form of `text`, via the shared escaper
  /// (common/string_util.h) every JSON emitter in the tree uses.
  static std::string Quoted(const std::string& text) {
    std::string out;
    AppendJsonString(text, &out);
    return out;
  }

  std::string bench_name_;
  std::vector<Entry> entries_;
};

}  // namespace detective::bench

#endif  // DETECTIVE_BENCH_BENCH_UTIL_H_
