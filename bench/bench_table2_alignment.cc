// Table II reproduction: number of aligned classes and relationships per
// dataset x KB. A class/relationship is "aligned" when the dataset's rules
// or table pattern reference it and the KB defines it.

#include <cstdio>
#include <set>
#include <string>

#include "bench_util.h"
#include "datagen/nobel_gen.h"
#include "datagen/uis_gen.h"
#include "datagen/webtables_gen.h"
#include "kb/knowledge_base.h"

namespace detective {
namespace {

struct Alignment {
  size_t classes = 0;
  size_t relations = 0;
};

void CollectVocabulary(const std::vector<DetectiveRule>& rules,
                       std::set<std::string>* classes,
                       std::set<std::string>* relations) {
  for (const DetectiveRule& rule : rules) {
    for (const MatchNode& node : rule.graph().nodes()) classes->insert(node.type);
    for (const MatchEdge& edge : rule.graph().edges()) relations->insert(edge.relation);
  }
}

Alignment Align(const std::set<std::string>& classes,
                const std::set<std::string>& relations, const KnowledgeBase& kb) {
  Alignment alignment;
  for (const std::string& cls : classes) {
    if (kb.FindClass(cls).valid()) ++alignment.classes;
  }
  for (const std::string& rel : relations) {
    if (kb.FindRelation(rel).valid()) ++alignment.relations;
  }
  return alignment;
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  using namespace detective;
  bench::PrintHeader("Table II: datasets (aligned classes and relations)",
                     "columns: dataset | KB | #-class | #-relationship");

  struct Row {
    std::string dataset;
    std::string kb_name;
    Alignment alignment;
    std::string kb_summary;
  };
  std::vector<Row> rows;

  // WebTables: vocabulary across all 37 tables' rules.
  {
    WebTablesOptions options;
    options.seed = bench::FlagUint(argc, argv, "seed", 23);
    WebTablesCorpus corpus = GenerateWebTables(options);
    std::set<std::string> classes;
    std::set<std::string> relations;
    for (const WebTable& table : corpus.tables) {
      CollectVocabulary(table.rules, &classes, &relations);
    }
    for (const KbProfile& profile : {YagoProfile(), DBpediaProfile()}) {
      KnowledgeBase kb = corpus.world.ToKb(profile, corpus.key_entities);
      rows.push_back({"WebTables", profile.name, Align(classes, relations, kb),
                      kb.DebugSummary()});
    }
  }

  // Nobel and UIS.
  {
    NobelOptions options;
    Dataset nobel = GenerateNobel(options);
    std::set<std::string> classes;
    std::set<std::string> relations;
    CollectVocabulary(nobel.rules, &classes, &relations);
    for (const KbProfile& profile : {YagoProfile(), DBpediaProfile()}) {
      KnowledgeBase kb = nobel.world.ToKb(profile, nobel.key_entities);
      rows.push_back({"Nobel", profile.name, Align(classes, relations, kb),
                      kb.DebugSummary()});
    }
  }
  {
    UisOptions options;
    options.num_tuples = bench::FlagUint(argc, argv, "uis_tuples", 20000);
    Dataset uis = GenerateUis(options);
    std::set<std::string> classes;
    std::set<std::string> relations;
    CollectVocabulary(uis.rules, &classes, &relations);
    for (const KbProfile& profile : {YagoProfile(), DBpediaProfile()}) {
      KnowledgeBase kb = uis.world.ToKb(profile, uis.key_entities);
      rows.push_back({"UIS", profile.name, Align(classes, relations, kb),
                      kb.DebugSummary()});
    }
  }

  bench::BenchJsonWriter json("table2_alignment");
  std::printf("%-10s %-8s %8s %15s   %s\n", "dataset", "KB", "#-class",
              "#-relationship", "KB contents");
  for (const Row& row : rows) {
    std::printf("%-10s %-8s %8zu %15zu   %s\n", row.dataset.c_str(),
                row.kb_name.c_str(), row.alignment.classes, row.alignment.relations,
                row.kb_summary.c_str());
    json.Add(row.dataset + "/" + row.kb_name, 0, 0,
             {{"classes", row.alignment.classes},
              {"relations", row.alignment.relations}});
  }
  std::printf(
      "\nPaper shape check: WebTables aligns an order of magnitude more\n"
      "classes/relations than Nobel/UIS (42-51 vs ~5), and every dataset is\n"
      "fully covered by both KB profiles at the vocabulary level.\n");
  if (!json.WriteTo(bench::FlagString(argc, argv, "json"))) return 1;
  return 0;
}
