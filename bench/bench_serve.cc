// Serving-path load generator for detective_serve's in-process core: the
// CleaningService + router + HttpServer stack is assembled exactly as the
// daemon assembles it, then hammered over real loopback sockets by N client
// threads. Three series:
//
//   clean-tuple @ x=<clients>  paced (open-loop) POST /v1/clean-tuple over
//                              keep-alive connections, offered load below
//                              capacity — measures the per-request floor
//                              (HTTP parse + admission + queue + repair +
//                              render). Every request must succeed: sent ==
//                              ok, shed == 0, exact-gated.
//   clean-table @ x=<clients>  same, POST /v1/clean-table with the paper's
//                              Table 1 CSV (4 tuples per request).
//   overload    @ x=<clients>  zero think-time blast against a 1-worker,
//                              2-deep queue with a 5 ms per-request latency
//                              fault — admission control must shed; the
//                              series records the shed rate the 429 path
//                              sustains.
//
// Latency percentiles and throughput are wall-clock measurements, not work
// counters, so the regression gate bands them by default (*p50_us/*p95_us/
// *p99_us/*_rps/*shed_pct in tools/check_bench_regression.py); the request
// accounting counters of the paced series are exact.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "eval/experiment.h"
#include "obs/http_server.h"
#include "relation/relation.h"
#include "serve/router.h"
#include "serve/service.h"

namespace detective {
namespace {

// ---------------------------------------------------------------------------
// Minimal keep-alive HTTP client (Content-Length framed, loopback only).

int ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// One response off a keep-alive connection: reads the head, then exactly
/// Content-Length body bytes. Returns the HTTP status, 0 on a dead socket.
int RecvResponse(int fd, std::string* buffer) {
  size_t head_end;
  while ((head_end = buffer->find("\r\n\r\n")) == std::string::npos) {
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return 0;
    buffer->append(chunk, static_cast<size_t>(n));
  }
  int status = 0;
  if (buffer->size() > 12) status = std::atoi(buffer->c_str() + 9);
  size_t body_len = 0;
  size_t pos = buffer->find("Content-Length:");
  if (pos != std::string::npos && pos < head_end) {
    body_len = static_cast<size_t>(std::atoll(buffer->c_str() + pos + 15));
  }
  size_t total = head_end + 4 + body_len;
  while (buffer->size() < total) {
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return 0;
    buffer->append(chunk, static_cast<size_t>(n));
  }
  buffer->erase(0, total);
  return status;
}

// ---------------------------------------------------------------------------
// Load generation.

struct SeriesResult {
  uint64_t sent = 0;
  uint64_t ok = 0;    // HTTP 200
  uint64_t shed = 0;  // HTTP 429
  uint64_t other = 0;
  std::vector<uint64_t> latencies_us;
  double wall_s = 0;
};

struct SeriesSpec {
  size_t clients = 0;
  uint64_t requests_per_client = 0;
  /// Scheduled inter-arrival gap per client; 0 = closed-loop blast.
  uint64_t pace_us = 0;
  std::string path;
  std::string extra_headers;  // raw "Name: value\r\n" lines
  const std::vector<std::string>* bodies = nullptr;
};

/// Runs one client thread: `requests` POSTs over a keep-alive connection
/// (reconnecting if the server closes it), each latency-stamped send→response.
void RunClient(uint16_t port, const SeriesSpec& spec, size_t client_index,
               SeriesResult* out) {
  using Clock = std::chrono::steady_clock;
  int fd = ConnectLoopback(port);
  std::string buffer;
  auto next_slot = Clock::now();
  for (uint64_t i = 0; i < spec.requests_per_client; ++i) {
    if (spec.pace_us > 0) {
      std::this_thread::sleep_until(next_slot);
      next_slot = std::max(next_slot + std::chrono::microseconds(spec.pace_us),
                           Clock::now());
    }
    const std::string& body =
        (*spec.bodies)[(client_index + i) % spec.bodies->size()];
    std::string request = "POST " + spec.path +
                          " HTTP/1.1\r\nHost: bench\r\n" + spec.extra_headers +
                          "Content-Length: " + std::to_string(body.size()) +
                          "\r\n\r\n" + body;
    auto start = Clock::now();
    int status = 0;
    for (int attempt = 0; attempt < 2 && status == 0; ++attempt) {
      if (fd < 0) fd = ConnectLoopback(port);
      if (fd < 0) break;
      if (!SendAll(fd, request) || (status = RecvResponse(fd, &buffer)) == 0) {
        ::close(fd);  // server closed the keep-alive connection: reconnect
        fd = -1;
        buffer.clear();
      }
    }
    uint64_t micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start)
            .count());
    out->sent++;
    out->latencies_us.push_back(micros);
    if (status == 200) {
      out->ok++;
    } else if (status == 429) {
      out->shed++;
    } else {
      out->other++;
    }
  }
  if (fd >= 0) ::close(fd);
}

SeriesResult RunSeries(uint16_t port, const SeriesSpec& spec) {
  std::vector<SeriesResult> per_client(spec.clients);
  std::vector<std::thread> threads;
  double start = NowSeconds();
  for (size_t c = 0; c < spec.clients; ++c) {
    threads.emplace_back(RunClient, port, std::cref(spec), c, &per_client[c]);
  }
  for (std::thread& t : threads) t.join();
  SeriesResult total;
  total.wall_s = NowSeconds() - start;
  for (const SeriesResult& r : per_client) {
    total.sent += r.sent;
    total.ok += r.ok;
    total.shed += r.shed;
    total.other += r.other;
    total.latencies_us.insert(total.latencies_us.end(), r.latencies_us.begin(),
                              r.latencies_us.end());
  }
  std::sort(total.latencies_us.begin(), total.latencies_us.end());
  return total;
}

uint64_t Percentile(const std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

/// Counter map for one entry: exact request accounting plus the banded
/// wall-clock-derived metrics (latency percentiles, throughput, shed rate).
std::map<std::string, uint64_t> SeriesCounters(const SeriesResult& r,
                                               bool exact_accounting) {
  std::map<std::string, uint64_t> counters;
  counters["requests.sent"] = r.sent;
  if (exact_accounting) {
    counters["requests.ok"] = r.ok;
    counters["requests.shed"] = r.shed;
    counters["requests.other"] = r.other;
    counters["throughput_rps"] = r.wall_s > 0
        ? static_cast<uint64_t>(static_cast<double>(r.ok + r.shed + r.other) /
                                r.wall_s)
        : 0;
  } else {
    // Overload accounting is scheduling-dependent: how many requests land in
    // queue slots vs 429 depends on thread interleaving, and the series wall
    // clock follows from it. Gate only the shed rate, banded.
    counters["requests.shed_pct"] =
        r.sent ? r.shed * 100 / r.sent : 0;
  }
  counters["latency.p50_us"] = Percentile(r.latencies_us, 0.50);
  counters["latency.p95_us"] = Percentile(r.latencies_us, 0.95);
  counters["latency.p99_us"] = Percentile(r.latencies_us, 0.99);
  return counters;
}

void PrintSeries(const char* name, size_t clients, const SeriesResult& r) {
  std::printf(
      "%-12s c=%-3zu sent=%-6llu ok=%-6llu shed=%-5llu p50=%lluus "
      "p95=%lluus p99=%lluus %.0f rps\n",
      name, clients, static_cast<unsigned long long>(r.sent),
      static_cast<unsigned long long>(r.ok),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(Percentile(r.latencies_us, 0.50)),
      static_cast<unsigned long long>(Percentile(r.latencies_us, 0.95)),
      static_cast<unsigned long long>(Percentile(r.latencies_us, 0.99)),
      r.wall_s > 0 ? static_cast<double>(r.sent) / r.wall_s : 0.0);
}

/// {"tuple": {col: value, ...}} request bodies, one per relation row.
std::vector<std::string> TupleBodies(const Relation& relation) {
  std::vector<std::string> bodies;
  for (uint64_t row = 0; row < relation.num_tuples(); ++row) {
    std::string body = "{\"tuple\": {";
    for (ColumnIndex c = 0; c < relation.schema().num_columns(); ++c) {
      if (c > 0) body += ", ";
      AppendJsonString(relation.schema().column_name(c), &body);
      body += ": ";
      AppendJsonString(relation.tuple(row).value(c), &body);
    }
    body += "}}";
    bodies.push_back(std::move(body));
  }
  return bodies;
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  using namespace detective;
  bench::PrintHeader("Serving path: latency, throughput, and load shedding",
                     "paper Fig.1 KB via the full HTTP service stack");
  bench::TraceSession trace_session(argc, argv);

  const std::string kb_path =
      bench::FlagString(argc, argv, "kb", "data/figure1.nt");
  const std::string rules_path =
      bench::FlagString(argc, argv, "rules", "data/figure4.dr");
  const std::string csv_path =
      bench::FlagString(argc, argv, "csv", "data/table1.csv");
  const uint64_t requests = bench::FlagUint(argc, argv, "requests", 2000);

  auto relation = Relation::FromCsvFile(csv_path);
  relation.status().Abort("csv");
  const std::vector<std::string> tuple_bodies = TupleBodies(*relation);
  const std::vector<std::string> table_bodies = {relation->ToCsv()};

  serve::ServiceOptions service_options;
  service_options.kb_path = kb_path;
  service_options.rules_path = rules_path;
  service_options.schema_columns = relation->schema().columns();
  service_options.workers = 4;
  service_options.queue_capacity = 64;
  service_options.allow_fault_header = true;  // drives the overload series
  serve::CleaningService service;
  service.Init(service_options).Abort("service init");

  obs::HttpServerOptions http_options;
  http_options.dispatch_threads = 24;  // >= the largest client count: every
  http_options.max_requests_per_connection = 1 << 20;  // keep-alive client
  obs::HttpServer server(http_options);                // holds its thread
  serve::RegisterServiceHandlers(&server, &service);
  server.Start().Abort("http server");
  service.MarkReady();

  bench::BenchJsonWriter json("serve");

  // Paced series: offered load well under capacity, nothing may shed.
  for (size_t clients : {size_t{2}, size_t{8}}) {
    SeriesSpec spec;
    spec.clients = clients;
    spec.requests_per_client = requests / clients;
    spec.pace_us = 500;  // 2000 rps/client offered
    spec.path = "/v1/clean-tuple";
    spec.bodies = &tuple_bodies;
    SeriesResult result = RunSeries(server.port(), spec);
    PrintSeries("clean-tuple", clients, result);
    json.Add("clean-tuple", static_cast<double>(clients),
             result.wall_s * 1000, SeriesCounters(result, true));
  }
  for (size_t clients : {size_t{4}}) {
    SeriesSpec spec;
    spec.clients = clients;
    spec.requests_per_client = requests / (clients * 4);
    spec.pace_us = 1000;
    spec.path = "/v1/clean-table";
    spec.bodies = &table_bodies;
    SeriesResult result = RunSeries(server.port(), spec);
    PrintSeries("clean-table", clients, result);
    json.Add("clean-table", static_cast<double>(clients),
             result.wall_s * 1000, SeriesCounters(result, true));
  }

  // Overload: a fresh 1-worker service with a 2-deep queue, every request
  // carrying a 5 ms latency fault (capacity ~200 rps), blasted by zero
  // think-time clients — admission control must shed the difference.
  server.Stop();
  service.Shutdown();
  serve::ServiceOptions overload_options = service_options;
  overload_options.workers = 1;
  overload_options.queue_capacity = 2;
  serve::CleaningService overload_service;
  overload_service.Init(overload_options).Abort("overload service init");
  obs::HttpServer overload_server(http_options);
  serve::RegisterServiceHandlers(&overload_server, &overload_service);
  overload_server.Start().Abort("overload http server");
  overload_service.MarkReady();

  for (size_t clients : {size_t{8}, size_t{16}}) {
    SeriesSpec spec;
    spec.clients = clients;
    spec.requests_per_client = requests / (clients * 2);
    spec.pace_us = 0;
    spec.path = "/v1/clean-tuple";
#if DETECTIVE_FAULT_ENABLED
    spec.extra_headers =
        "X-Detective-Fault-Plan: seed=1; "
        "site=serve.request, kind=latency, latency_ms=5, p=1\r\n";
#endif
    spec.bodies = &tuple_bodies;
    SeriesResult result = RunSeries(overload_server.port(), spec);
    PrintSeries("overload", clients, result);
    if (result.shed == 0) {
      std::fprintf(stderr,
                   "overload series shed nothing — admission control did not "
                   "engage; the bench contract is broken\n");
      return 1;
    }
    json.Add("overload", static_cast<double>(clients), result.wall_s * 1000,
             SeriesCounters(result, false));
  }
  overload_server.Stop();
  overload_service.Shutdown();

  if (!json.WriteTo(bench::FlagString(argc, argv, "json"))) return 1;
  return 0;
}
