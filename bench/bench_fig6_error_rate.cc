// Figure 6 reproduction: effectiveness (precision / recall / F-measure)
// while varying the error rate from 4% to 20%, on Nobel and UIS; typo and
// semantic errors split 50-50 as in the paper. Series: bRepair(Yago),
// bRepair(DBpedia), Llunatic, constant CFDs.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "datagen/nobel_gen.h"
#include "datagen/uis_gen.h"
#include "eval/experiment.h"

namespace detective {
namespace {

constexpr double kErrorRates[] = {0.04, 0.08, 0.12, 0.16, 0.20};

void RunSweep(const Dataset& dataset) {
  KnowledgeBase yago = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  KnowledgeBase dbpedia = dataset.world.ToKb(DBpediaProfile(), dataset.key_entities);
  std::vector<char> eligible_yago =
      EligibleRows(dataset.clean, yago, dataset.key_column);
  std::vector<char> eligible_dbp =
      EligibleRows(dataset.clean, dbpedia, dataset.key_column);

  std::printf("%s (%zu tuples)\n", dataset.name.c_str(), dataset.clean.num_tuples());
  std::printf("  %-6s | %-26s | %-26s | %-26s | %-26s\n", "e%", "bRepair(Yago)",
              "bRepair(DBpedia)", "Llunatic", "constant CFDs");
  for (double rate : kErrorRates) {
    Relation dirty = dataset.clean;
    ErrorSpec spec;
    spec.error_rate = rate;
    spec.typo_fraction = 0.5;
    spec.seed = 99 + static_cast<uint64_t>(rate * 1000);
    InjectErrors(&dirty, spec, dataset.alternatives);

    auto run = [&](Method method, const KnowledgeBase* kb,
                   const std::vector<char>& eligible) {
      auto result = RunMethod(method, dataset, kb, dirty, eligible);
      result.status().Abort("RunMethod");
      return result->quality;
    };
    RepairQuality dr_yago = run(Method::kBasicRepair, &yago, eligible_yago);
    RepairQuality dr_dbp = run(Method::kBasicRepair, &dbpedia, eligible_dbp);
    RepairQuality llunatic = run(Method::kLlunatic, nullptr, eligible_yago);
    RepairQuality cfd = run(Method::kConstantCfd, nullptr, eligible_yago);

    auto cell = [](const RepairQuality& q) {
      static char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "P=%.2f R=%.2f F=%.2f", q.precision(),
                    q.recall(), q.f_measure());
      return std::string(buffer);
    };
    std::printf("  %-6.0f | %-26s | %-26s | %-26s | %-26s\n", rate * 100,
                cell(dr_yago).c_str(), cell(dr_dbp).c_str(), cell(llunatic).c_str(),
                cell(cfd).c_str());
  }
  std::printf("\n");
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  using namespace detective;
  bench::PrintHeader("Figure 6: effectiveness varying error rate (4%-20%)",
                     "series: bRepair(Yago), bRepair(DBpedia), Llunatic, CFDs");

  {
    NobelOptions options;
    RunSweep(GenerateNobel(options));
  }
  {
    UisOptions options;
    options.num_tuples = bench::FlagUint(argc, argv, "uis_tuples", 5000);
    RunSweep(GenerateUis(options));
  }

  std::printf(
      "Paper shape check (Fig. 6): DR precision stays 1.00 and recall stays\n"
      "flat as the error rate grows; Llunatic and constant CFDs decay —\n"
      "their evidence (majorities / CFD left-hand sides) gets dirtier.\n");
  return 0;
}
