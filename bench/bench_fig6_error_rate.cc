// Figure 6 reproduction: effectiveness (precision / recall / F-measure)
// while varying the error rate from 4% to 20%, on Nobel and UIS; typo and
// semantic errors split 50-50 as in the paper. Series: bRepair(Yago),
// bRepair(DBpedia), Llunatic, constant CFDs.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "datagen/nobel_gen.h"
#include "datagen/uis_gen.h"
#include "eval/experiment.h"

namespace detective {
namespace {

constexpr double kErrorRates[] = {0.04, 0.08, 0.12, 0.16, 0.20};

/// Quality tallies as integer counters for the bench JSON (per-mille keeps
/// precision/recall machine-comparable without floats in the schema).
std::map<std::string, uint64_t> QualityCounters(const RepairQuality& q,
                                                double seconds) {
  return {{"errors", q.errors},
          {"repairs", q.repairs},
          {"exact_correct", q.exact_correct},
          {"pos_marks", q.pos_marks},
          {"precision_milli", static_cast<uint64_t>(q.precision() * 1000 + 0.5)},
          {"recall_milli", static_cast<uint64_t>(q.recall() * 1000 + 0.5)},
          {"f_measure_milli", static_cast<uint64_t>(q.f_measure() * 1000 + 0.5)},
          {"repair_ms", static_cast<uint64_t>(seconds * 1000 + 0.5)}};
}

void RunSweep(const Dataset& dataset, bench::BenchJsonWriter* json) {
  KnowledgeBase yago = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  KnowledgeBase dbpedia = dataset.world.ToKb(DBpediaProfile(), dataset.key_entities);
  std::vector<char> eligible_yago =
      EligibleRows(dataset.clean, yago, dataset.key_column);
  std::vector<char> eligible_dbp =
      EligibleRows(dataset.clean, dbpedia, dataset.key_column);

  std::printf("%s (%zu tuples)\n", dataset.name.c_str(), dataset.clean.num_tuples());
  std::printf("  %-6s | %-26s | %-26s | %-26s | %-26s\n", "e%", "bRepair(Yago)",
              "bRepair(DBpedia)", "Llunatic", "constant CFDs");
  for (double rate : kErrorRates) {
    Relation dirty = dataset.clean;
    ErrorSpec spec;
    spec.error_rate = rate;
    spec.typo_fraction = 0.5;
    spec.seed = 99 + static_cast<uint64_t>(rate * 1000);
    InjectErrors(&dirty, spec, dataset.alternatives);

    auto run = [&](const char* series, Method method, const KnowledgeBase* kb,
                   const std::vector<char>& eligible) {
      auto result = RunMethod(method, dataset, kb, dirty, eligible);
      result.status().Abort("RunMethod");
      json->Add(dataset.name + "/" + series, rate * 100, result->seconds * 1000,
                QualityCounters(result->quality, result->seconds));
      return result->quality;
    };
    RepairQuality dr_yago =
        run("bRepair(Yago)", Method::kBasicRepair, &yago, eligible_yago);
    RepairQuality dr_dbp =
        run("bRepair(DBpedia)", Method::kBasicRepair, &dbpedia, eligible_dbp);
    RepairQuality llunatic = run("Llunatic", Method::kLlunatic, nullptr, eligible_yago);
    RepairQuality cfd = run("cCFDs", Method::kConstantCfd, nullptr, eligible_yago);

    auto cell = [](const RepairQuality& q) {
      static char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "P=%.2f R=%.2f F=%.2f", q.precision(),
                    q.recall(), q.f_measure());
      return std::string(buffer);
    };
    std::printf("  %-6.0f | %-26s | %-26s | %-26s | %-26s\n", rate * 100,
                cell(dr_yago).c_str(), cell(dr_dbp).c_str(), cell(llunatic).c_str(),
                cell(cfd).c_str());
  }
  std::printf("\n");
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  using namespace detective;
  bench::PrintHeader("Figure 6: effectiveness varying error rate (4%-20%)",
                     "series: bRepair(Yago), bRepair(DBpedia), Llunatic, CFDs");

  bench::BenchJsonWriter json("fig6_error_rate");
  {
    NobelOptions options;
    RunSweep(GenerateNobel(options), &json);
  }
  {
    UisOptions options;
    options.num_tuples = bench::FlagUint(argc, argv, "uis_tuples", 5000);
    RunSweep(GenerateUis(options), &json);
  }

  std::printf(
      "Paper shape check (Fig. 6): DR precision stays 1.00 and recall stays\n"
      "flat as the error rate grows; Llunatic and constant CFDs decay —\n"
      "their evidence (majorities / CFD left-hand sides) gets dirtier.\n");
  if (!json.WriteTo(bench::FlagString(argc, argv, "json"))) return 1;
  return 0;
}
