// Figure 7 reproduction: effectiveness while varying the typo share of the
// injected errors from 0% to 100% (semantic errors take the rest), with the
// total error rate fixed at 10%. Same series as Figure 6.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "datagen/nobel_gen.h"
#include "datagen/uis_gen.h"
#include "eval/experiment.h"

namespace detective {
namespace {

constexpr double kTypoFractions[] = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

void RunSweep(const Dataset& dataset) {
  KnowledgeBase yago = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  KnowledgeBase dbpedia = dataset.world.ToKb(DBpediaProfile(), dataset.key_entities);
  std::vector<char> eligible_yago =
      EligibleRows(dataset.clean, yago, dataset.key_column);
  std::vector<char> eligible_dbp =
      EligibleRows(dataset.clean, dbpedia, dataset.key_column);

  std::printf("%s (%zu tuples, error rate fixed at 10%%)\n", dataset.name.c_str(),
              dataset.clean.num_tuples());
  std::printf("  %-7s | %-26s | %-26s | %-26s | %-26s\n", "typo%", "bRepair(Yago)",
              "bRepair(DBpedia)", "Llunatic", "constant CFDs");
  for (double typo : kTypoFractions) {
    Relation dirty = dataset.clean;
    ErrorSpec spec;
    spec.error_rate = 0.10;
    spec.typo_fraction = typo;
    spec.seed = 1234 + static_cast<uint64_t>(typo * 100);
    InjectErrors(&dirty, spec, dataset.alternatives);

    auto run = [&](Method method, const KnowledgeBase* kb,
                   const std::vector<char>& eligible) {
      auto result = RunMethod(method, dataset, kb, dirty, eligible);
      result.status().Abort("RunMethod");
      return result->quality;
    };
    RepairQuality dr_yago = run(Method::kBasicRepair, &yago, eligible_yago);
    RepairQuality dr_dbp = run(Method::kBasicRepair, &dbpedia, eligible_dbp);
    RepairQuality llunatic = run(Method::kLlunatic, nullptr, eligible_yago);
    RepairQuality cfd = run(Method::kConstantCfd, nullptr, eligible_yago);

    auto cell = [](const RepairQuality& q) {
      static char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "P=%.2f R=%.2f F=%.2f", q.precision(),
                    q.recall(), q.f_measure());
      return std::string(buffer);
    };
    std::printf("  %-7.0f | %-26s | %-26s | %-26s | %-26s\n", typo * 100,
                cell(dr_yago).c_str(), cell(dr_dbp).c_str(), cell(llunatic).c_str(),
                cell(cfd).c_str());
  }
  std::printf("\n");
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  using namespace detective;
  bench::PrintHeader("Figure 7: effectiveness varying typo rate (0%-100%)",
                     "error rate fixed at 10%; the rest are semantic errors");

  {
    NobelOptions options;
    RunSweep(GenerateNobel(options));
  }
  {
    UisOptions options;
    options.num_tuples = bench::FlagUint(argc, argv, "uis_tuples", 5000);
    RunSweep(GenerateUis(options));
  }

  std::printf(
      "Paper shape check (Fig. 7): detective rules and Llunatic handle typos\n"
      "better than semantic errors (typos are repaired to the most similar\n"
      "candidate); recall therefore rises with the typo share. Semantic\n"
      "errors that land on DR evidence columns stay undetectable, which is\n"
      "the low end of the curve at typo=0%%.\n");
  return 0;
}
