// Figure 7 reproduction: effectiveness while varying the typo share of the
// injected errors from 0% to 100% (semantic errors take the rest), with the
// total error rate fixed at 10%. Same series as Figure 6.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "datagen/nobel_gen.h"
#include "datagen/uis_gen.h"
#include "eval/experiment.h"

namespace detective {
namespace {

constexpr double kTypoFractions[] = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

std::map<std::string, uint64_t> QualityCounters(const RepairQuality& q,
                                                double seconds) {
  return {{"errors", q.errors},
          {"repairs", q.repairs},
          {"exact_correct", q.exact_correct},
          {"pos_marks", q.pos_marks},
          {"precision_milli", static_cast<uint64_t>(q.precision() * 1000 + 0.5)},
          {"recall_milli", static_cast<uint64_t>(q.recall() * 1000 + 0.5)},
          {"f_measure_milli", static_cast<uint64_t>(q.f_measure() * 1000 + 0.5)},
          {"repair_ms", static_cast<uint64_t>(seconds * 1000 + 0.5)}};
}

void RunSweep(const Dataset& dataset, bench::BenchJsonWriter* json) {
  KnowledgeBase yago = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  KnowledgeBase dbpedia = dataset.world.ToKb(DBpediaProfile(), dataset.key_entities);
  std::vector<char> eligible_yago =
      EligibleRows(dataset.clean, yago, dataset.key_column);
  std::vector<char> eligible_dbp =
      EligibleRows(dataset.clean, dbpedia, dataset.key_column);

  std::printf("%s (%zu tuples, error rate fixed at 10%%)\n", dataset.name.c_str(),
              dataset.clean.num_tuples());
  std::printf("  %-7s | %-26s | %-26s | %-26s | %-26s\n", "typo%", "bRepair(Yago)",
              "bRepair(DBpedia)", "Llunatic", "constant CFDs");
  for (double typo : kTypoFractions) {
    Relation dirty = dataset.clean;
    ErrorSpec spec;
    spec.error_rate = 0.10;
    spec.typo_fraction = typo;
    spec.seed = 1234 + static_cast<uint64_t>(typo * 100);
    InjectErrors(&dirty, spec, dataset.alternatives);

    auto run = [&](const char* series, Method method, const KnowledgeBase* kb,
                   const std::vector<char>& eligible) {
      auto result = RunMethod(method, dataset, kb, dirty, eligible);
      result.status().Abort("RunMethod");
      json->Add(dataset.name + "/" + series, typo * 100, result->seconds * 1000,
                QualityCounters(result->quality, result->seconds));
      return result->quality;
    };
    RepairQuality dr_yago =
        run("bRepair(Yago)", Method::kBasicRepair, &yago, eligible_yago);
    RepairQuality dr_dbp =
        run("bRepair(DBpedia)", Method::kBasicRepair, &dbpedia, eligible_dbp);
    RepairQuality llunatic = run("Llunatic", Method::kLlunatic, nullptr, eligible_yago);
    RepairQuality cfd = run("cCFDs", Method::kConstantCfd, nullptr, eligible_yago);

    auto cell = [](const RepairQuality& q) {
      static char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "P=%.2f R=%.2f F=%.2f", q.precision(),
                    q.recall(), q.f_measure());
      return std::string(buffer);
    };
    std::printf("  %-7.0f | %-26s | %-26s | %-26s | %-26s\n", typo * 100,
                cell(dr_yago).c_str(), cell(dr_dbp).c_str(), cell(llunatic).c_str(),
                cell(cfd).c_str());
  }
  std::printf("\n");
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  using namespace detective;
  bench::PrintHeader("Figure 7: effectiveness varying typo rate (0%-100%)",
                     "error rate fixed at 10%; the rest are semantic errors");

  bench::BenchJsonWriter json("fig7_typo_rate");
  {
    NobelOptions options;
    RunSweep(GenerateNobel(options), &json);
  }
  {
    UisOptions options;
    options.num_tuples = bench::FlagUint(argc, argv, "uis_tuples", 5000);
    RunSweep(GenerateUis(options), &json);
  }

  std::printf(
      "Paper shape check (Fig. 7): detective rules and Llunatic handle typos\n"
      "better than semantic errors (typos are repaired to the most similar\n"
      "candidate); recall therefore rises with the typo share. Semantic\n"
      "errors that land on DR evidence columns stay undetectable, which is\n"
      "the low end of the curve at typo=0%%.\n");
  if (!json.WriteTo(bench::FlagString(argc, argv, "json"))) return 1;
  return 0;
}
