// Figure 8(d) reproduction: total cleaning time while varying the number of
// UIS tuples, for all six methods. As in the paper, the time of "reading and
// handling KBs" (here: projecting the world into the KB and building the
// repairer's indexes) is INCLUDED in this experiment.
//
// Default sweep is 4K..20K tuples so the whole bench suite stays fast;
// pass --full for the paper's 20K..100K, --sizes=N[,N...] for an explicit
// sweep (the nightly job passes --sizes=1000000). Above --baseline_cap
// tuples (default 100K) the quadratic-ish baselines (bRepair, KATARA,
// Llunatic, cCFDs) are skipped with a printed note — at million-tuple scale
// only the fast repairer, its parallel driver, and the KB-load series are
// informative. The CI gate lowers the cap so the 100K scale point runs in
// minutes while the 2K point still exercises every method.
//
// Each size also measures the cold-start cost the KB snapshot subsystem
// removes: kbload(text) parses + freezes the generated N-triples file,
// kbload(snapshot) mmap-loads the same KB from a kb/snapshot.h binary.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "baselines/cfd.h"
#include "baselines/katara.h"
#include "baselines/llunatic.h"
#include "core/parallel_repair.h"
#include "core/repair.h"
#include "datagen/uis_gen.h"
#include "eval/experiment.h"
#include "kb/ntriples_parser.h"
#include "kb/snapshot.h"

namespace detective {
namespace {

struct Timings {
  double b_yago, f_yago, par_yago, b_dbp, f_dbp, katara_yago, katara_dbp, llunatic,
      cfd;
};

double TimeParallel(const Dataset& dataset, const KbProfile& profile,
                    const Relation& dirty) {
  double start = NowSeconds();
  KnowledgeBase kb = dataset.world.ToKb(profile, dataset.key_entities);
  Relation copy = dirty;
  ParallelRepair(kb, dataset.rules, &copy).status().Abort("parallel");
  return NowSeconds() - start;
}

double TimeWithKb(Method method, const Dataset& dataset, const KbProfile& profile,
                  const Relation& dirty) {
  double start = NowSeconds();
  KnowledgeBase kb = dataset.world.ToKb(profile, dataset.key_entities);  // "read KB"
  Relation copy = dirty;
  switch (method) {
    case Method::kBasicRepair: {
      RepairOptions options;
      options.matcher.use_signature_index = false;
      options.matcher.use_value_memo = false;
      BasicRepairer repairer(kb, dirty.schema(), dataset.rules, options);
      repairer.Init().Abort("init");
      repairer.RepairRelation(&copy);
      break;
    }
    case Method::kFastRepair: {
      FastRepairer repairer(kb, dirty.schema(), dataset.rules);
      repairer.Init().Abort("init");
      repairer.RepairRelation(&copy);
      break;
    }
    case Method::kKatara: {
      Katara katara(kb, dataset.katara_pattern);
      katara.Init(dirty.schema()).Abort("init");
      katara.CleanRelation(&copy);
      break;
    }
    default:
      break;
  }
  return NowSeconds() - start;
}

/// Writes the Yago-profile KB as N-triples text and as a binary snapshot,
/// then times a cold load of each. Returns {text_ms, snapshot_ms}.
std::pair<double, double> TimeKbLoads(const Dataset& dataset) {
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path();
  const std::string nt_path = (dir / "bench_fig8_kb.nt").string();
  const std::string snap_path = (dir / "bench_fig8_kb.dkb").string();
  {
    std::ofstream out(nt_path, std::ios::trunc | std::ios::binary);
    out << ToNTriples(kb);
    out.close();
  }
  WriteKbSnapshot(kb, snap_path).Abort("write snapshot");

  double start = NowSeconds();
  LoadKbFile(nt_path).status().Abort("load text KB");
  const double text_ms = (NowSeconds() - start) * 1000;

  start = NowSeconds();
  LoadKbSnapshot(snap_path).status().Abort("load KB snapshot");
  const double snapshot_ms = (NowSeconds() - start) * 1000;

  std::error_code ec;
  fs::remove(nt_path, ec);
  fs::remove(snap_path, ec);
  return {text_ms, snapshot_ms};
}

double TimeIcMethod(Method method, const Dataset& dataset, const Relation& dirty) {
  Relation copy = dirty;
  double start = NowSeconds();
  if (method == Method::kLlunatic) {
    LlunaticRepairer repairer(dataset.fds);
    repairer.Repair(&copy).Abort("llunatic");
  } else {
    auto cfds = MineConstantCfds(dataset.clean, dataset.fds);
    cfds.status().Abort("mine");
    CfdRepairer repairer(std::move(*cfds));
    repairer.Init(dirty.schema()).Abort("init");
    repairer.RepairRelation(&copy);
  }
  return NowSeconds() - start;
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  using namespace detective;
  bench::PrintHeader("Figure 8(d): cleaning time varying #-tuples (UIS)",
                     "all methods; KB read/handling time included");
  bench::TraceSession trace_session(argc, argv);

  const bool full = bench::FlagBool(argc, argv, "full");
  const uint64_t single = bench::FlagUint(argc, argv, "tuples", 0);
  const std::string sizes_list = bench::FlagString(argc, argv, "sizes");
  std::vector<size_t> sizes;
  if (!sizes_list.empty()) {
    for (const std::string& item : SplitAndTrim(sizes_list, ',')) {
      uint64_t value = 0;
      if (!ParseUint64(item, &value) || value == 0) {
        std::fprintf(stderr, "--sizes expects positive integers, got '%s'\n",
                     item.c_str());
        return 64;
      }
      sizes.push_back(static_cast<size_t>(value));
    }
  } else if (single != 0) {
    sizes = {static_cast<size_t>(single)};  // smoke runs and CI pin one size
  } else if (full) {
    sizes = {20000, 40000, 60000, 80000, 100000};
  } else {
    sizes = {4000, 8000, 12000, 16000, 20000};
    std::printf("(reduced sweep; pass --full for the paper's 20K-100K,\n"
                " --sizes=N[,N...] for an explicit sweep, or --tuples=N\n"
                " for a single size)\n\n");
  }
  // Past this size the exhaustive baselines dominate the run without adding
  // information; the fast/parallel/kbload series carry the scale story.
  const size_t baseline_cap = static_cast<size_t>(
      bench::FlagUint(argc, argv, "baseline_cap", 100000));
  bench::BenchJsonWriter json("fig8_scale");

  std::printf("%-9s %12s %12s %12s %12s %12s %12s %12s %12s %12s\n", "#-tuple",
              "bRep(Yago)", "fRep(Yago)", "par(Yago)", "bRep(DBp)", "fRep(DBp)",
              "KAT(Yago)", "KAT(DBp)", "Llunatic", "cCFDs");
  for (size_t size : sizes) {
    UisOptions options;
    options.num_tuples = size;
    Dataset dataset = GenerateUis(options);
    Relation dirty = dataset.clean;
    ErrorSpec spec;
    spec.error_rate = 0.10;
    InjectErrors(&dirty, spec, dataset.alternatives);

    // Each method runs inside its own metrics epoch so the counters attached
    // to a bench entry are exactly what that method recorded (DrainCounters
    // drains atomically — see bench_util.h).
    struct Measurement {
      const char* series;
      double seconds;
      std::map<std::string, uint64_t> counters;
    };
    std::vector<Measurement> measurements;
    auto record = [&](const char* series, double seconds) {
      measurements.push_back({series, seconds, bench::DrainCounters()});
      return seconds;
    };

    const bool run_baselines = size <= baseline_cap;
    if (!run_baselines) {
      std::printf("(%zu tuples > %zu: skipping bRepair/KATARA/Llunatic/cCFDs;\n"
                  " fast, parallel, and KB-load series only)\n",
                  size, baseline_cap);
    }

    Timings t{};
    bench::DrainCounters();  // open the first epoch: drop datagen counts
    if (run_baselines) {
      t.b_yago = record("bRepair(Yago)",
                        TimeWithKb(Method::kBasicRepair, dataset, YagoProfile(), dirty));
    }
    t.f_yago = record("fRepair(Yago)",
                      TimeWithKb(Method::kFastRepair, dataset, YagoProfile(), dirty));
    t.par_yago = record("parallel(Yago)", TimeParallel(dataset, YagoProfile(), dirty));
    if (run_baselines) {
      t.b_dbp = record("bRepair(DBpedia)",
                       TimeWithKb(Method::kBasicRepair, dataset, DBpediaProfile(), dirty));
    }
    t.f_dbp = record("fRepair(DBpedia)",
                     TimeWithKb(Method::kFastRepair, dataset, DBpediaProfile(), dirty));
    if (run_baselines) {
      t.katara_yago = record("KATARA(Yago)",
                             TimeWithKb(Method::kKatara, dataset, YagoProfile(), dirty));
      t.katara_dbp = record("KATARA(DBpedia)",
                            TimeWithKb(Method::kKatara, dataset, DBpediaProfile(), dirty));
      t.llunatic = record("Llunatic", TimeIcMethod(Method::kLlunatic, dataset, dirty));
      t.cfd = record("cCFDs", TimeIcMethod(Method::kConstantCfd, dataset, dirty));
    }

    // Cold-start series: what the snapshot subsystem buys at this scale.
    auto [kb_text_ms, kb_snapshot_ms] = TimeKbLoads(dataset);
    measurements.push_back({"kbload(text)", kb_text_ms / 1000,
                            bench::DrainCounters()});
    measurements.push_back({"kbload(snapshot)", kb_snapshot_ms / 1000,
                            bench::DrainCounters()});
    std::printf("KB load: text %.1f ms, snapshot %.1f ms (%.1fx)\n",
                kb_text_ms, kb_snapshot_ms,
                kb_snapshot_ms > 0 ? kb_text_ms / kb_snapshot_ms : 0.0);

    std::printf(
        "%-9zu %11.2fs %11.2fs %11.2fs %11.2fs %11.2fs %11.2fs %11.2fs %11.2fs "
        "%11.2fs\n",
        size, t.b_yago, t.f_yago, t.par_yago, t.b_dbp, t.f_dbp, t.katara_yago,
        t.katara_dbp, t.llunatic, t.cfd);

    const size_t cores = std::max<size_t>(1, std::thread::hardware_concurrency());
    for (Measurement& m : measurements) {
      // Throughput-per-core for the repair series (the parallel driver uses
      // every core; the sequential methods one).
      const std::string series(m.series);
      if (series.rfind("kbload", 0) != 0) {
        bench::RecordThroughput(&m.counters, size,
                                series == "parallel(Yago)" ? cores : 1,
                                m.seconds * 1000);
      }
      json.Add(m.series, static_cast<double>(size), m.seconds * 1000,
               std::move(m.counters));
    }
  }

  std::printf(
      "\nPaper shape check (Fig. 8d): fRepair stays far below bRepair and the\n"
      "gap grows with the data; par(Yago) adds thread-parallel fRepair — the\n"
      "paper's \"repairing one tuple is irrelevant to any other tuple\";\n"
      "constant CFDs are near-instant (instance-only\n"
      "hash lookups); Llunatic pays for holistic multi-tuple reasoning.\n");
  if (!json.WriteTo(bench::FlagString(argc, argv, "json"))) return 1;
  return 0;
}
