// Figure 8(d) reproduction: total cleaning time while varying the number of
// UIS tuples, for all six methods. As in the paper, the time of "reading and
// handling KBs" (here: projecting the world into the KB and building the
// repairer's indexes) is INCLUDED in this experiment.
//
// Default sweep is 4K..20K tuples so the whole bench suite stays fast;
// pass --full for the paper's 20K..100K.

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "baselines/cfd.h"
#include "baselines/katara.h"
#include "baselines/llunatic.h"
#include "core/parallel_repair.h"
#include "core/repair.h"
#include "datagen/uis_gen.h"
#include "eval/experiment.h"

namespace detective {
namespace {

struct Timings {
  double b_yago, f_yago, par_yago, b_dbp, f_dbp, katara_yago, katara_dbp, llunatic,
      cfd;
};

double TimeParallel(const Dataset& dataset, const KbProfile& profile,
                    const Relation& dirty) {
  double start = NowSeconds();
  KnowledgeBase kb = dataset.world.ToKb(profile, dataset.key_entities);
  Relation copy = dirty;
  ParallelRepair(kb, dataset.rules, &copy).status().Abort("parallel");
  return NowSeconds() - start;
}

double TimeWithKb(Method method, const Dataset& dataset, const KbProfile& profile,
                  const Relation& dirty) {
  double start = NowSeconds();
  KnowledgeBase kb = dataset.world.ToKb(profile, dataset.key_entities);  // "read KB"
  Relation copy = dirty;
  switch (method) {
    case Method::kBasicRepair: {
      RepairOptions options;
      options.matcher.use_signature_index = false;
      options.matcher.use_value_memo = false;
      BasicRepairer repairer(kb, dirty.schema(), dataset.rules, options);
      repairer.Init().Abort("init");
      repairer.RepairRelation(&copy);
      break;
    }
    case Method::kFastRepair: {
      FastRepairer repairer(kb, dirty.schema(), dataset.rules);
      repairer.Init().Abort("init");
      repairer.RepairRelation(&copy);
      break;
    }
    case Method::kKatara: {
      Katara katara(kb, dataset.katara_pattern);
      katara.Init(dirty.schema()).Abort("init");
      katara.CleanRelation(&copy);
      break;
    }
    default:
      break;
  }
  return NowSeconds() - start;
}

double TimeIcMethod(Method method, const Dataset& dataset, const Relation& dirty) {
  Relation copy = dirty;
  double start = NowSeconds();
  if (method == Method::kLlunatic) {
    LlunaticRepairer repairer(dataset.fds);
    repairer.Repair(&copy).Abort("llunatic");
  } else {
    auto cfds = MineConstantCfds(dataset.clean, dataset.fds);
    cfds.status().Abort("mine");
    CfdRepairer repairer(std::move(*cfds));
    repairer.Init(dirty.schema()).Abort("init");
    repairer.RepairRelation(&copy);
  }
  return NowSeconds() - start;
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  using namespace detective;
  bench::PrintHeader("Figure 8(d): cleaning time varying #-tuples (UIS)",
                     "all methods; KB read/handling time included");
  bench::TraceSession trace_session(argc, argv);

  const bool full = bench::FlagBool(argc, argv, "full");
  const uint64_t single = bench::FlagUint(argc, argv, "tuples", 0);
  std::vector<size_t> sizes;
  if (single != 0) {
    sizes = {static_cast<size_t>(single)};  // smoke runs and CI pin one size
  } else if (full) {
    sizes = {20000, 40000, 60000, 80000, 100000};
  } else {
    sizes = {4000, 8000, 12000, 16000, 20000};
    std::printf("(reduced sweep; pass --full for the paper's 20K-100K,\n"
                " or --tuples=N for a single size)\n\n");
  }
  bench::BenchJsonWriter json("fig8_scale");

  std::printf("%-9s %12s %12s %12s %12s %12s %12s %12s %12s %12s\n", "#-tuple",
              "bRep(Yago)", "fRep(Yago)", "par(Yago)", "bRep(DBp)", "fRep(DBp)",
              "KAT(Yago)", "KAT(DBp)", "Llunatic", "cCFDs");
  for (size_t size : sizes) {
    UisOptions options;
    options.num_tuples = size;
    Dataset dataset = GenerateUis(options);
    Relation dirty = dataset.clean;
    ErrorSpec spec;
    spec.error_rate = 0.10;
    InjectErrors(&dirty, spec, dataset.alternatives);

    // Each method runs inside its own metrics epoch so the counters attached
    // to a bench entry are exactly what that method recorded (DrainCounters
    // drains atomically — see bench_util.h).
    struct Measurement {
      const char* series;
      double seconds;
      std::map<std::string, uint64_t> counters;
    };
    std::vector<Measurement> measurements;
    auto record = [&](const char* series, double seconds) {
      measurements.push_back({series, seconds, bench::DrainCounters()});
      return seconds;
    };

    Timings t;
    bench::DrainCounters();  // open the first epoch: drop datagen counts
    t.b_yago = record("bRepair(Yago)",
                      TimeWithKb(Method::kBasicRepair, dataset, YagoProfile(), dirty));
    t.f_yago = record("fRepair(Yago)",
                      TimeWithKb(Method::kFastRepair, dataset, YagoProfile(), dirty));
    t.par_yago = record("parallel(Yago)", TimeParallel(dataset, YagoProfile(), dirty));
    t.b_dbp = record("bRepair(DBpedia)",
                     TimeWithKb(Method::kBasicRepair, dataset, DBpediaProfile(), dirty));
    t.f_dbp = record("fRepair(DBpedia)",
                     TimeWithKb(Method::kFastRepair, dataset, DBpediaProfile(), dirty));
    t.katara_yago = record("KATARA(Yago)",
                           TimeWithKb(Method::kKatara, dataset, YagoProfile(), dirty));
    t.katara_dbp = record("KATARA(DBpedia)",
                          TimeWithKb(Method::kKatara, dataset, DBpediaProfile(), dirty));
    t.llunatic = record("Llunatic", TimeIcMethod(Method::kLlunatic, dataset, dirty));
    t.cfd = record("cCFDs", TimeIcMethod(Method::kConstantCfd, dataset, dirty));

    std::printf(
        "%-9zu %11.2fs %11.2fs %11.2fs %11.2fs %11.2fs %11.2fs %11.2fs %11.2fs "
        "%11.2fs\n",
        size, t.b_yago, t.f_yago, t.par_yago, t.b_dbp, t.f_dbp, t.katara_yago,
        t.katara_dbp, t.llunatic, t.cfd);

    for (Measurement& m : measurements) {
      json.Add(m.series, static_cast<double>(size), m.seconds * 1000,
               std::move(m.counters));
    }
  }

  std::printf(
      "\nPaper shape check (Fig. 8d): fRepair stays far below bRepair and the\n"
      "gap grows with the data; par(Yago) adds thread-parallel fRepair — the\n"
      "paper's \"repairing one tuple is irrelevant to any other tuple\";\n"
      "constant CFDs are near-instant (instance-only\n"
      "hash lookups); Llunatic pays for holistic multi-tuple reasoning.\n");
  if (!json.WriteTo(bench::FlagString(argc, argv, "json"))) return 1;
  return 0;
}
