// Thread-scaling bench for ParallelRepair (paper §V: "repairing one tuple
// is irrelevant to any other tuple"): wall clock at 1/2/4/8 worker threads,
// once with the shared frozen match-plan + cross-tuple candidate cache and
// once with fully private per-worker state. The gap between the two series
// is the redundant work sharing eliminates — every worker rebuilding the
// same signature indexes and re-deriving the same candidate sets.
//
// KB projection happens outside the timed region; the timer covers exactly
// what ParallelRepair does (plan build, worker fan-out, repair, merge), so
// the "shared" series pays for its MatchPlan build inside the measurement.

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/stratification.h"
#include "bench_util.h"
#include "core/parallel_repair.h"
#include "core/repair.h"
#include "datagen/nobel_gen.h"
#include "datagen/uis_gen.h"
#include "eval/experiment.h"

namespace detective {
namespace {

double TimeParallelRepairRules(const KnowledgeBase& kb,
                               const std::vector<DetectiveRule>& rules,
                               const Relation& dirty, size_t threads,
                               bool shared,
                               const StratifiedSchedule* schedule = nullptr) {
  Relation copy = dirty;
  ParallelRepairOptions options;
  options.num_threads = threads;
  options.share_match_plan = shared;
  options.share_value_cache = shared;
  options.repair.schedule = schedule;
  double start = NowSeconds();
  ParallelRepair(kb, rules, &copy, options).status().Abort("parallel");
  return NowSeconds() - start;
}

double TimeParallelRepair(const KnowledgeBase& kb, const Dataset& dataset,
                          const Relation& dirty, size_t threads, bool shared) {
  return TimeParallelRepairRules(kb, dataset.rules, dirty, threads, shared);
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  using namespace detective;
  bench::PrintHeader("Parallel repair: thread scaling, shared vs private state",
                     "UIS + Yago profile; KB projection excluded from timing");
  bench::TraceSession trace_session(argc, argv);

  const uint64_t tuples = bench::FlagUint(argc, argv, "tuples", 2000);
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  UisOptions uis_options;
  uis_options.num_tuples = tuples;
  Dataset dataset = GenerateUis(uis_options);
  Relation dirty = dataset.clean;
  ErrorSpec spec;
  spec.error_rate = 0.10;
  InjectErrors(&dirty, spec, dataset.alternatives);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  std::printf("tuples=%llu\n\n", static_cast<unsigned long long>(tuples));

  bench::BenchJsonWriter json("parallel");
  std::printf("%-9s %12s %12s %10s\n", "threads", "shared", "private",
              "shared/priv");

  double shared_at[9] = {};
  double private_at[9] = {};
  bench::DrainCounters();  // open the first epoch: drop datagen counts
  for (size_t threads : thread_counts) {
    const double with_sharing = TimeParallelRepair(kb, dataset, dirty, threads,
                                                   /*shared=*/true);
    json.Add("shared", static_cast<double>(threads), with_sharing * 1000,
             bench::DrainCounters());
    const double without_sharing = TimeParallelRepair(kb, dataset, dirty,
                                                      threads,
                                                      /*shared=*/false);
    json.Add("private", static_cast<double>(threads), without_sharing * 1000,
             bench::DrainCounters());
    shared_at[threads] = with_sharing;
    private_at[threads] = without_sharing;
    std::printf("%-9zu %11.3fs %11.3fs %9.2fx\n", threads, with_sharing,
                without_sharing,
                with_sharing > 0 ? without_sharing / with_sharing : 0.0);
  }

  // ---- Stratified vs classic chase on the Nobel workload ----
  // The Nobel exclusive rule pair (NobelOptions::exclusive_strata_rules)
  // forms a City <-> Country interaction cycle the analyzer refutes by
  // unification; the certified schedule then elides the confirming fixpoint
  // sweep the classic loop runs on every tuple where one of the pair fired.
  // nobel_prize is excluded so nothing writes the Prize witness column. The
  // stratified series' strata.rounds_skipped counter is the elision count;
  // its output is byte-identical to the classic series by construction.
  const uint64_t laureates = bench::FlagUint(argc, argv, "laureates", 600);
  NobelOptions nobel_options;
  nobel_options.num_laureates = laureates;
  nobel_options.exclusive_strata_rules = true;
  Dataset nobel = GenerateNobel(nobel_options);
  std::vector<DetectiveRule> nobel_rules;
  for (const DetectiveRule& rule : nobel.rules) {
    if (rule.name() != "nobel_prize") nobel_rules.push_back(rule);
  }
  Relation nobel_dirty = nobel.clean;
  InjectErrors(&nobel_dirty, spec, nobel.alternatives);
  KnowledgeBase nobel_kb = nobel.world.ToKb(YagoProfile(), nobel.key_entities);
  auto strata = analysis::ComputeStratification(nobel_rules, nobel_kb);
  strata.status().Abort("stratify");
  std::printf("\nnobel laureates=%llu, rules=%zu, strata=%zu (refuted pairs=%zu)\n",
              static_cast<unsigned long long>(laureates), nobel_rules.size(),
              strata->certificate.strata.size(), strata->pairs_refuted);
  std::printf("%-9s %12s %12s %10s\n", "threads", "classic", "stratified",
              "clas/strat");
  bench::DrainCounters();  // drop the nobel datagen + analysis counts
  for (size_t threads : thread_counts) {
    const double classic = TimeParallelRepairRules(nobel_kb, nobel_rules,
                                                   nobel_dirty, threads,
                                                   /*shared=*/true);
    json.Add("nobel-classic", static_cast<double>(threads), classic * 1000,
             bench::DrainCounters());
    const double stratified = TimeParallelRepairRules(
        nobel_kb, nobel_rules, nobel_dirty, threads,
        /*shared=*/true, &strata->schedule);
    json.Add("nobel-stratified", static_cast<double>(threads),
             stratified * 1000, bench::DrainCounters());
    std::printf("%-9zu %11.3fs %11.3fs %9.2fx\n", threads, classic, stratified,
                stratified > 0 ? classic / stratified : 0.0);
  }

  if (shared_at[8] > 0 && private_at[8] > 0) {
    std::printf(
        "\nShared state at 8 threads: %.1f%% of the private-state wall clock\n"
        "(the saving is N-1 redundant signature-index builds plus every\n"
        "cross-tuple candidate recomputation the shared cache absorbs).\n",
        100.0 * shared_at[8] / private_at[8]);
  }
  if (!json.WriteTo(bench::FlagString(argc, argv, "json"))) return 1;
  return 0;
}
