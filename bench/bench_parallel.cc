// Thread-scaling bench for ParallelRepair (paper §V: "repairing one tuple
// is irrelevant to any other tuple"): wall clock at 1/2/4/8 worker threads,
// once with the shared frozen match-plan + cross-tuple candidate cache and
// once with fully private per-worker state. The gap between the two series
// is the redundant work sharing eliminates — every worker rebuilding the
// same signature indexes and re-deriving the same candidate sets.
//
// KB projection happens outside the timed region; the timer covers exactly
// what ParallelRepair does (plan build, worker fan-out, repair, merge), so
// the "shared" series pays for its MatchPlan build inside the measurement.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/stratification.h"
#include "bench_util.h"
#include "core/parallel_repair.h"
#include "core/repair.h"
#include "datagen/nobel_gen.h"
#include "datagen/uis_gen.h"
#include "eval/experiment.h"
#include "obs/introspect.h"

namespace detective {
namespace {

double TimeParallelRepairRules(const KnowledgeBase& kb,
                               const std::vector<DetectiveRule>& rules,
                               const Relation& dirty, size_t threads,
                               bool shared,
                               const StratifiedSchedule* schedule = nullptr) {
  Relation copy = dirty;
  ParallelRepairOptions options;
  options.num_threads = threads;
  options.share_match_plan = shared;
  options.share_value_cache = shared;
  options.repair.schedule = schedule;
  double start = NowSeconds();
  ParallelRepair(kb, rules, &copy, options).status().Abort("parallel");
  return NowSeconds() - start;
}

double TimeParallelRepair(const KnowledgeBase& kb, const Dataset& dataset,
                          const Relation& dirty, size_t threads, bool shared) {
  return TimeParallelRepairRules(kb, dataset.rules, dirty, threads, shared);
}

/// One blocking GET against the local introspection server — the same bytes
/// a curl-based poller sends; the response is read fully and discarded.
void PollOnce(uint16_t port, const char* path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    std::string request = std::string("GET ") + path +
                          " HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
    size_t sent = 0;
    while (sent < request.size()) {
      ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    char sink[4096];
    while (::recv(fd, sink, sizeof(sink), 0) > 0) {
    }
  }
  ::close(fd);
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  using namespace detective;
  bench::PrintHeader("Parallel repair: thread scaling, shared vs private state",
                     "UIS + Yago profile; KB projection excluded from timing");
  bench::TraceSession trace_session(argc, argv);

  const uint64_t tuples = bench::FlagUint(argc, argv, "tuples", 2000);
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  UisOptions uis_options;
  uis_options.num_tuples = tuples;
  Dataset dataset = GenerateUis(uis_options);
  Relation dirty = dataset.clean;
  ErrorSpec spec;
  spec.error_rate = 0.10;
  InjectErrors(&dirty, spec, dataset.alternatives);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  std::printf("tuples=%llu\n\n", static_cast<unsigned long long>(tuples));

  bench::BenchJsonWriter json("parallel");
  std::printf("%-9s %12s %12s %10s\n", "threads", "shared", "private",
              "shared/priv");

  double shared_at[9] = {};
  double private_at[9] = {};
  bench::DrainCounters();  // open the first epoch: drop datagen counts
  for (size_t threads : thread_counts) {
    const double with_sharing = TimeParallelRepair(kb, dataset, dirty, threads,
                                                   /*shared=*/true);
    json.Add("shared", static_cast<double>(threads), with_sharing * 1000,
             bench::DrainCounters());
    const double without_sharing = TimeParallelRepair(kb, dataset, dirty,
                                                      threads,
                                                      /*shared=*/false);
    json.Add("private", static_cast<double>(threads), without_sharing * 1000,
             bench::DrainCounters());
    shared_at[threads] = with_sharing;
    private_at[threads] = without_sharing;
    std::printf("%-9zu %11.3fs %11.3fs %9.2fx\n", threads, with_sharing,
                without_sharing,
                with_sharing > 0 ? without_sharing / with_sharing : 0.0);
  }

  // ---- Stratified vs classic chase on the Nobel workload ----
  // The Nobel exclusive rule pair (NobelOptions::exclusive_strata_rules)
  // forms a City <-> Country interaction cycle the analyzer refutes by
  // unification; the certified schedule then elides the confirming fixpoint
  // sweep the classic loop runs on every tuple where one of the pair fired.
  // nobel_prize is excluded so nothing writes the Prize witness column. The
  // stratified series' strata.rounds_skipped counter is the elision count;
  // its output is byte-identical to the classic series by construction.
  const uint64_t laureates = bench::FlagUint(argc, argv, "laureates", 600);
  NobelOptions nobel_options;
  nobel_options.num_laureates = laureates;
  nobel_options.exclusive_strata_rules = true;
  Dataset nobel = GenerateNobel(nobel_options);
  std::vector<DetectiveRule> nobel_rules;
  for (const DetectiveRule& rule : nobel.rules) {
    if (rule.name() != "nobel_prize") nobel_rules.push_back(rule);
  }
  Relation nobel_dirty = nobel.clean;
  InjectErrors(&nobel_dirty, spec, nobel.alternatives);
  KnowledgeBase nobel_kb = nobel.world.ToKb(YagoProfile(), nobel.key_entities);
  auto strata = analysis::ComputeStratification(nobel_rules, nobel_kb);
  strata.status().Abort("stratify");
  std::printf("\nnobel laureates=%llu, rules=%zu, strata=%zu (refuted pairs=%zu)\n",
              static_cast<unsigned long long>(laureates), nobel_rules.size(),
              strata->certificate.strata.size(), strata->pairs_refuted);
  std::printf("%-9s %12s %12s %10s\n", "threads", "classic", "stratified",
              "clas/strat");
  bench::DrainCounters();  // drop the nobel datagen + analysis counts
  for (size_t threads : thread_counts) {
    const double classic = TimeParallelRepairRules(nobel_kb, nobel_rules,
                                                   nobel_dirty, threads,
                                                   /*shared=*/true);
    json.Add("nobel-classic", static_cast<double>(threads), classic * 1000,
             bench::DrainCounters());
    const double stratified = TimeParallelRepairRules(
        nobel_kb, nobel_rules, nobel_dirty, threads,
        /*shared=*/true, &strata->schedule);
    json.Add("nobel-stratified", static_cast<double>(threads),
             stratified * 1000, bench::DrainCounters());
    std::printf("%-9zu %11.3fs %11.3fs %9.2fx\n", threads, classic, stratified,
                stratified > 0 ? classic / stratified : 0.0);
  }

  // ---- Live introspection overhead ----
  // The ISSUE contract: a running --introspect server plus one poller doing
  // real HTTP GETs at 10 Hz must cost < 2% wall clock. Both series repeat
  // the 8-thread shared repair so the timed region is long enough for the
  // poller to actually land scrapes inside it.
  const uint64_t reps = bench::FlagUint(argc, argv, "introspect-reps", 8);
  const size_t obs_threads = 8;
  std::printf("\nintrospection overhead (%llu reps, 8 threads, 10 Hz poller)\n",
              static_cast<unsigned long long>(reps));
  bench::DrainCounters();
  double introspect_off = 0;
  for (uint64_t rep = 0; rep < reps; ++rep) {
    introspect_off += TimeParallelRepair(kb, dataset, dirty, obs_threads,
                                         /*shared=*/true);
  }
  json.Add("introspect-off", static_cast<double>(obs_threads),
           introspect_off * 1000 / static_cast<double>(reps),
           bench::DrainCounters());

  obs::IntrospectServer server;
  server.Start().Abort("introspect server");
  std::atomic<bool> stop_poller{false};
  std::thread poller([&server, &stop_poller] {
    // Alternate the expensive exposition render with the heartbeat read —
    // the mix an operator dashboard produces.
    bool metrics_turn = true;
    while (!stop_poller.load(std::memory_order_relaxed)) {
      PollOnce(server.port(), metrics_turn ? "/metrics" : "/progress");
      metrics_turn = !metrics_turn;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });
  double introspect_on = 0;
  for (uint64_t rep = 0; rep < reps; ++rep) {
    introspect_on += TimeParallelRepair(kb, dataset, dirty, obs_threads,
                                        /*shared=*/true);
  }
  stop_poller.store(true, std::memory_order_relaxed);
  poller.join();
  const uint64_t scrapes = server.requests_served();
  server.Stop();
  // The obs.http.* counts the poller accrued are wall-clock dependent; the
  // CI baseline gate skips them (obs.http.*=skip band).
  json.Add("introspect-on", static_cast<double>(obs_threads),
           introspect_on * 1000 / static_cast<double>(reps),
           bench::DrainCounters());
  std::printf("%-14s %11.3fs\n%-14s %11.3fs  (%llu scrapes served)\n",
              "introspect-off", introspect_off, "introspect-on", introspect_on,
              static_cast<unsigned long long>(scrapes));
  if (introspect_off > 0) {
    std::printf("overhead: %+.2f%% wall clock with the server + poller live\n",
                100.0 * (introspect_on - introspect_off) / introspect_off);
  }

  if (shared_at[8] > 0 && private_at[8] > 0) {
    std::printf(
        "\nShared state at 8 threads: %.1f%% of the private-state wall clock\n"
        "(the saving is N-1 redundant signature-index builds plus every\n"
        "cross-tuple candidate recomputation the shared cache absorbs).\n",
        100.0 * shared_at[8] / private_at[8]);
  }
  if (!json.WriteTo(bench::FlagString(argc, argv, "json"))) return 1;
  return 0;
}
