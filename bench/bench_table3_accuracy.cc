// Table III reproduction: data annotation and repair accuracy — precision,
// recall, F-measure and #-POS for detective rules vs KATARA, on WebTables /
// Nobel / UIS, against both KB profiles. Error rate 10% for Nobel and UIS
// (WebTables are born dirty), as in the paper.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "baselines/katara.h"
#include "core/repair.h"
#include "datagen/nobel_gen.h"
#include "datagen/uis_gen.h"
#include "datagen/webtables_gen.h"
#include "eval/experiment.h"

namespace detective {
namespace {

void PrintRow(const char* method, const char* kb_name, const RepairQuality& q) {
  std::printf("  %-8s %-8s  P=%.2f  R=%.2f  F=%.2f  #-POS=%zu\n", method, kb_name,
              q.precision(), q.recall(), q.f_measure(), q.pos_marks);
}

void RunDataset(const Dataset& dataset, const Relation& dirty) {
  std::printf("%s (%zu tuples, %zu rules)\n", dataset.name.c_str(),
              dataset.clean.num_tuples(), dataset.rules.size());
  for (const KbProfile& profile : {YagoProfile(), DBpediaProfile()}) {
    KnowledgeBase kb = dataset.world.ToKb(profile, dataset.key_entities);
    std::vector<char> eligible =
        EligibleRows(dataset.clean, kb, dataset.key_column);
    for (Method method : {Method::kFastRepair, Method::kKatara}) {
      auto result = RunMethod(method, dataset, &kb, dirty, eligible);
      result.status().Abort("RunMethod");
      PrintRow(method == Method::kFastRepair ? "DRs" : "KATARA",
               profile.name.c_str(), result->quality);
    }
  }
  std::printf("\n");
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  using namespace detective;
  bench::PrintHeader(
      "Table III: data annotation and repair accuracy",
      "DRs vs KATARA on WebTables / Nobel / UIS x {Yago, DBpedia}, e=10%");

  // ---- WebTables (born dirty; per-table evaluation merged) ----
  {
    WebTablesOptions options;
    WebTablesCorpus corpus = GenerateWebTables(options);
    std::printf("WebTables (%zu tables, %zu rules total)\n", corpus.tables.size(),
                corpus.total_rules());
    for (const KbProfile& profile : {YagoProfile(), DBpediaProfile()}) {
      KnowledgeBase kb = corpus.world.ToKb(profile, corpus.key_entities);
      std::vector<RepairQuality> dr_parts;
      std::vector<RepairQuality> katara_parts;
      for (const WebTable& table : corpus.tables) {
        std::vector<char> eligible = EligibleRows(table.clean, kb, table.key_column);
        {
          FastRepairer repairer(kb, table.clean.schema(), table.rules);
          repairer.Init().Abort("init");
          Relation repaired = table.dirty;
          repairer.RepairRelation(&repaired);
          dr_parts.push_back(
              EvaluateRepair(table.clean, table.dirty, repaired, eligible));
        }
        {
          Katara katara(kb, table.katara_pattern);
          katara.Init(table.clean.schema()).Abort("katara");
          Relation repaired = table.dirty;
          katara.CleanRelation(&repaired);
          katara_parts.push_back(
              EvaluateRepair(table.clean, table.dirty, repaired, eligible));
        }
      }
      PrintRow("DRs", profile.name.c_str(), MergeQualities(dr_parts));
      PrintRow("KATARA", profile.name.c_str(), MergeQualities(katara_parts));
    }
    std::printf("\n");
  }

  // ---- Nobel ----
  {
    NobelOptions options;
    Dataset dataset = GenerateNobel(options);
    Relation dirty = dataset.clean;
    ErrorSpec spec;
    spec.error_rate = 0.10;
    InjectErrors(&dirty, spec, dataset.alternatives);
    RunDataset(dataset, dirty);
  }

  // ---- UIS ----
  {
    UisOptions options;
    options.num_tuples = bench::FlagUint(argc, argv, "uis_tuples", 20000);
    Dataset dataset = GenerateUis(options);
    Relation dirty = dataset.clean;
    ErrorSpec spec;
    spec.error_rate = 0.10;
    InjectErrors(&dirty, spec, dataset.alternatives);
    RunDataset(dataset, dirty);
  }

  std::printf(
      "Paper shape check (Table III): DR precision is always 1.00; DRs mark\n"
      "far more positive cells (#-POS) than KATARA; DR recall is bounded by\n"
      "KB coverage (Yago > DBpedia) and is lowest on WebTables, whose tables\n"
      "have too few attributes to support corrections.\n");
  return 0;
}
