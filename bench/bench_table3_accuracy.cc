// Table III reproduction: data annotation and repair accuracy — precision,
// recall, F-measure and #-POS for detective rules vs KATARA, on WebTables /
// Nobel / UIS, against both KB profiles. Error rate 10% for Nobel and UIS
// (WebTables are born dirty), as in the paper.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "baselines/katara.h"
#include "core/repair.h"
#include "datagen/nobel_gen.h"
#include "datagen/uis_gen.h"
#include "datagen/webtables_gen.h"
#include "eval/experiment.h"

namespace detective {
namespace {

void PrintRow(const char* method, const char* kb_name, const RepairQuality& q) {
  std::printf("  %-8s %-8s  P=%.2f  R=%.2f  F=%.2f  #-POS=%zu\n", method, kb_name,
              q.precision(), q.recall(), q.f_measure(), q.pos_marks);
}

/// Same per-mille encoding as the figure benches: integer counters only.
std::map<std::string, uint64_t> QualityCounters(const RepairQuality& q) {
  return {{"errors", q.errors},
          {"repairs", q.repairs},
          {"exact_correct", q.exact_correct},
          {"pos_marks", q.pos_marks},
          {"precision_milli", static_cast<uint64_t>(q.precision() * 1000 + 0.5)},
          {"recall_milli", static_cast<uint64_t>(q.recall() * 1000 + 0.5)},
          {"f_measure_milli", static_cast<uint64_t>(q.f_measure() * 1000 + 0.5)}};
}

void AddRow(bench::BenchJsonWriter* json, const std::string& dataset,
            const char* method, const std::string& kb_name, const RepairQuality& q,
            double seconds) {
  json->Add(dataset + "/" + method + "(" + kb_name + ")", 0, seconds * 1000,
            QualityCounters(q));
}

void RunDataset(const Dataset& dataset, const Relation& dirty,
                bench::BenchJsonWriter* json) {
  std::printf("%s (%zu tuples, %zu rules)\n", dataset.name.c_str(),
              dataset.clean.num_tuples(), dataset.rules.size());
  for (const KbProfile& profile : {YagoProfile(), DBpediaProfile()}) {
    KnowledgeBase kb = dataset.world.ToKb(profile, dataset.key_entities);
    std::vector<char> eligible =
        EligibleRows(dataset.clean, kb, dataset.key_column);
    for (Method method : {Method::kFastRepair, Method::kKatara}) {
      auto result = RunMethod(method, dataset, &kb, dirty, eligible);
      result.status().Abort("RunMethod");
      const char* name = method == Method::kFastRepair ? "DRs" : "KATARA";
      PrintRow(name, profile.name.c_str(), result->quality);
      AddRow(json, dataset.name, name, profile.name, result->quality,
             result->seconds);
    }
  }
  std::printf("\n");
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  using namespace detective;
  bench::PrintHeader(
      "Table III: data annotation and repair accuracy",
      "DRs vs KATARA on WebTables / Nobel / UIS x {Yago, DBpedia}, e=10%");
  bench::TraceSession trace_session(argc, argv);
  bench::BenchJsonWriter json("table3_accuracy");

  // ---- WebTables (born dirty; per-table evaluation merged) ----
  {
    WebTablesOptions options;
    WebTablesCorpus corpus = GenerateWebTables(options);
    std::printf("WebTables (%zu tables, %zu rules total)\n", corpus.tables.size(),
                corpus.total_rules());
    for (const KbProfile& profile : {YagoProfile(), DBpediaProfile()}) {
      KnowledgeBase kb = corpus.world.ToKb(profile, corpus.key_entities);
      std::vector<RepairQuality> dr_parts;
      std::vector<RepairQuality> katara_parts;
      for (const WebTable& table : corpus.tables) {
        std::vector<char> eligible = EligibleRows(table.clean, kb, table.key_column);
        {
          FastRepairer repairer(kb, table.clean.schema(), table.rules);
          repairer.Init().Abort("init");
          Relation repaired = table.dirty;
          repairer.RepairRelation(&repaired);
          dr_parts.push_back(
              EvaluateRepair(table.clean, table.dirty, repaired, eligible));
        }
        {
          Katara katara(kb, table.katara_pattern);
          katara.Init(table.clean.schema()).Abort("katara");
          Relation repaired = table.dirty;
          katara.CleanRelation(&repaired);
          katara_parts.push_back(
              EvaluateRepair(table.clean, table.dirty, repaired, eligible));
        }
      }
      RepairQuality dr_merged = MergeQualities(dr_parts);
      RepairQuality katara_merged = MergeQualities(katara_parts);
      PrintRow("DRs", profile.name.c_str(), dr_merged);
      PrintRow("KATARA", profile.name.c_str(), katara_merged);
      AddRow(&json, "WebTables", "DRs", profile.name, dr_merged, 0);
      AddRow(&json, "WebTables", "KATARA", profile.name, katara_merged, 0);
    }
    std::printf("\n");
  }

  // ---- Nobel ----
  {
    NobelOptions options;
    Dataset dataset = GenerateNobel(options);
    Relation dirty = dataset.clean;
    ErrorSpec spec;
    spec.error_rate = 0.10;
    InjectErrors(&dirty, spec, dataset.alternatives);
    RunDataset(dataset, dirty, &json);
  }

  // ---- UIS ----
  {
    UisOptions options;
    options.num_tuples = bench::FlagUint(argc, argv, "uis_tuples", 20000);
    Dataset dataset = GenerateUis(options);
    Relation dirty = dataset.clean;
    ErrorSpec spec;
    spec.error_rate = 0.10;
    InjectErrors(&dirty, spec, dataset.alternatives);
    RunDataset(dataset, dirty, &json);
  }

  std::printf(
      "Paper shape check (Table III): DR precision is always 1.00; DRs mark\n"
      "far more positive cells (#-POS) than KATARA; DR recall is bounded by\n"
      "KB coverage (Yago > DBpedia) and is lowest on WebTables, whose tables\n"
      "have too few attributes to support corrections.\n");
  if (!json.WriteTo(bench::FlagString(argc, argv, "json"))) return 1;
  return 0;
}
