// Figure 8(a)-(c) reproduction: repair time while varying the number of
// rules — bRepair vs fRepair against both KB profiles.
//   (a) WebTables: 10..50 rules (over the whole corpus);
//   (b) Nobel:     1..5 rules;
//   (c) UIS:       1..5 rules, 20K tuples (default reduced; --uis_tuples=).
// As in the paper, KB build time is excluded here.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/repair.h"
#include "datagen/nobel_gen.h"
#include "datagen/uis_gen.h"
#include "datagen/webtables_gen.h"
#include "eval/experiment.h"

namespace detective {
namespace {

double TimeRepair(Method method, const KnowledgeBase& kb, const Schema& schema,
                  const std::vector<DetectiveRule>& rules, const Relation& dirty) {
  RepairOptions options;
  if (method == Method::kBasicRepair) {
    options.matcher.use_signature_index = false;
    options.matcher.use_value_memo = false;
  }
  Relation copy = dirty;
  double start = NowSeconds();
  if (method == Method::kBasicRepair) {
    BasicRepairer repairer(kb, schema, rules, options);
    repairer.Init().Abort("init");
    start = NowSeconds();
    repairer.RepairRelation(&copy);
  } else {
    FastRepairer repairer(kb, schema, rules, options);
    repairer.Init().Abort("init");
    start = NowSeconds();
    repairer.RepairRelation(&copy);
  }
  return NowSeconds() - start;
}

void SweepDataset(const char* label, const Dataset& dataset, const Relation& dirty,
                  bench::BenchJsonWriter* json) {
  KnowledgeBase yago = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  KnowledgeBase dbpedia = dataset.world.ToKb(DBpediaProfile(), dataset.key_entities);
  std::printf("%s (%zu tuples)\n", label, dirty.num_tuples());
  std::printf("  %-7s %16s %16s %16s %16s\n", "#-rule", "bRepair(Yago)",
              "fRepair(Yago)", "bRepair(DBp.)", "fRepair(DBp.)");
  for (size_t count = 1; count <= dataset.rules.size(); ++count) {
    std::vector<DetectiveRule> subset(dataset.rules.begin(),
                                      dataset.rules.begin() + count);
    auto time = [&](const char* series, Method method, const KnowledgeBase& kb) {
      double seconds = TimeRepair(method, kb, dirty.schema(), subset, dirty);
      json->Add(dataset.name + "/" + series, static_cast<double>(count),
                seconds * 1000);
      return seconds;
    };
    std::printf("  %-7zu %14.3fs %14.3fs %14.3fs %14.3fs\n", count,
                time("bRepair(Yago)", Method::kBasicRepair, yago),
                time("fRepair(Yago)", Method::kFastRepair, yago),
                time("bRepair(DBpedia)", Method::kBasicRepair, dbpedia),
                time("fRepair(DBpedia)", Method::kFastRepair, dbpedia));
  }
  std::printf("\n");
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  using namespace detective;
  bench::PrintHeader("Figure 8(a)-(c): repair time varying #-rules",
                     "bRepair vs fRepair, Yago vs DBpedia; KB read time excluded");
  bench::BenchJsonWriter json("fig8_rules");

  // (a) WebTables: vary the corpus-wide rule budget 10..50.
  {
    WebTablesOptions options;
    WebTablesCorpus corpus = GenerateWebTables(options);
    KnowledgeBase yago = corpus.world.ToKb(YagoProfile(), corpus.key_entities);
    KnowledgeBase dbpedia = corpus.world.ToKb(DBpediaProfile(), corpus.key_entities);
    std::printf("(a) WebTables (%zu tables)\n", corpus.tables.size());
    std::printf("  %-7s %16s %16s %16s %16s\n", "#-rule", "bRepair(Yago)",
                "fRepair(Yago)", "bRepair(DBp.)", "fRepair(DBp.)");
    for (size_t budget = 10; budget <= 50; budget += 10) {
      double times[4] = {0, 0, 0, 0};
      size_t used = 0;
      for (const WebTable& table : corpus.tables) {
        // Tables contribute rules until the corpus-wide budget is reached.
        std::vector<DetectiveRule> rules;
        for (const DetectiveRule& rule : table.rules) {
          if (used < budget) {
            rules.push_back(rule);
            ++used;
          }
        }
        if (rules.empty()) continue;
        times[0] += TimeRepair(Method::kBasicRepair, yago, table.dirty.schema(),
                               rules, table.dirty);
        times[1] += TimeRepair(Method::kFastRepair, yago, table.dirty.schema(),
                               rules, table.dirty);
        times[2] += TimeRepair(Method::kBasicRepair, dbpedia, table.dirty.schema(),
                               rules, table.dirty);
        times[3] += TimeRepair(Method::kFastRepair, dbpedia, table.dirty.schema(),
                               rules, table.dirty);
      }
      std::printf("  %-7zu %13.1fms %13.1fms %13.1fms %13.1fms\n", budget,
                  times[0] * 1000, times[1] * 1000, times[2] * 1000,
                  times[3] * 1000);
      const char* series[4] = {"WebTables/bRepair(Yago)", "WebTables/fRepair(Yago)",
                               "WebTables/bRepair(DBpedia)",
                               "WebTables/fRepair(DBpedia)"};
      for (int s = 0; s < 4; ++s) {
        json.Add(series[s], static_cast<double>(budget), times[s] * 1000);
      }
    }
    std::printf("\n");
  }

  // (b) Nobel.
  {
    NobelOptions options;
    Dataset dataset = GenerateNobel(options);
    Relation dirty = dataset.clean;
    ErrorSpec spec;
    spec.error_rate = 0.10;
    InjectErrors(&dirty, spec, dataset.alternatives);
    SweepDataset("(b) Nobel", dataset, dirty, &json);
  }

  // (c) UIS.
  {
    UisOptions options;
    options.num_tuples = bench::FlagUint(argc, argv, "uis_tuples", 20000);
    Dataset dataset = GenerateUis(options);
    Relation dirty = dataset.clean;
    ErrorSpec spec;
    spec.error_rate = 0.10;
    InjectErrors(&dirty, spec, dataset.alternatives);
    SweepDataset("(c) UIS", dataset, dirty, &json);
  }

  std::printf(
      "Paper shape check (Fig. 8a-c): fRepair beats bRepair and the gap\n"
      "widens with the rule count and the data size (shared node checks +\n"
      "rule ordering + signature indexes); on the tiny WebTables the gap is\n"
      "small because the index/bookkeeping overhead is not amortized.\n");
  if (!json.WriteTo(bench::FlagString(argc, argv, "json"))) return 1;
  return 0;
}
