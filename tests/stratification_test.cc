// Tests for analysis/stratification: honest read/write footprints (fuzzy
// matches are writes), static refutation of rule pairs through KB label
// disjointness, the SCC strata, the machine-checkable certificate JSON, and
// the engine-facing can-enable schedule. tools/check_certificate.py
// re-verifies the same certificates independently; these tests pin the
// producer side of that contract.

#include "analysis/stratification.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "datagen/error_injector.h"
#include "datagen/nobel_gen.h"
#include "datagen/world.h"
#include "test_fixtures.h"

namespace detective::analysis {
namespace {

/// The Nobel rule set with the mutually-exclusive City/Country demo pair,
/// with or without nobel_prize (whose target is the pair's Prize witness
/// column — keeping it destroys the stability the refutation needs).
struct NobelCase {
  Dataset dataset;
  KnowledgeBase kb;
  std::vector<DetectiveRule> rules;
};

NobelCase BuildNobelCase(bool keep_prize_rule) {
  NobelCase c;
  NobelOptions options;
  options.num_laureates = 40;
  options.exclusive_strata_rules = true;
  c.dataset = GenerateNobel(options);
  c.kb = c.dataset.world.ToKb(YagoProfile(), c.dataset.key_entities);
  for (const DetectiveRule& rule : c.dataset.rules) {
    if (keep_prize_rule || rule.name() != "nobel_prize") {
      c.rules.push_back(rule);
    }
  }
  return c;
}

uint32_t IndexOf(const std::vector<DetectiveRule>& rules,
                 const std::string& name) {
  for (uint32_t i = 0; i < rules.size(); ++i) {
    if (rules[i].name() == name) return i;
  }
  ADD_FAILURE() << "no rule named " << name;
  return 0;
}

const RuleFootprint& FootprintOf(const StratificationCertificate& certificate,
                                 const std::string& name) {
  for (const RuleFootprint& footprint : certificate.footprints) {
    if (footprint.name == name) return footprint;
  }
  ADD_FAILURE() << "no footprint named " << name;
  return certificate.footprints.front();
}

TEST(StratificationTest, NobelFootprintsCaptureFuzzyWrites) {
  NobelCase c = BuildNobelCase(/*keep_prize_rule=*/true);
  auto strata = ComputeStratification(c.rules, c.kb);
  ASSERT_TRUE(strata.ok()) << strata.status().ToString();
  const StratificationCertificate& cert = strata->certificate;
  ASSERT_EQ(cert.footprints.size(), c.rules.size());

  // nobel_prize matches every column exactly except its fuzzy target:
  // the only write is the target itself.
  const RuleFootprint& prize = FootprintOf(cert, "nobel_prize");
  EXPECT_EQ(prize.target, "Prize");
  EXPECT_EQ(prize.reads, (std::vector<std::string>{"Name", "Prize"}));
  EXPECT_EQ(prize.writes, (std::vector<std::string>{"Prize"}));
  EXPECT_EQ(prize.classes, (std::vector<std::string>{
                               "chemistry award", "laureate", "other award"}));
  EXPECT_EQ(prize.relations, (std::vector<std::string>{"wonPrize"}));

  // nobel_country matches Institution and City fuzzily (ED,2): proving the
  // rule standardizes those cells to KB labels, which is a write other
  // rules can observe — the footprint must say so.
  const RuleFootprint& country = FootprintOf(cert, "nobel_country");
  EXPECT_EQ(country.target, "Country");
  EXPECT_EQ(country.reads, (std::vector<std::string>{"City", "Country",
                                                     "Institution", "Name"}));
  EXPECT_EQ(country.writes,
            (std::vector<std::string>{"City", "Country", "Institution"}));

  // The demo pair matches everything exactly: target-only writes.
  const RuleFootprint& chem = FootprintOf(cert, "nobel_city_chem");
  EXPECT_EQ(chem.writes, (std::vector<std::string>{"City"}));
  EXPECT_EQ(chem.reads, (std::vector<std::string>{"City", "Country",
                                                  "Institution", "Name",
                                                  "Prize"}));
}

TEST(StratificationTest, EveryOrderedPairIsEdgeOrSeparationExactlyOnce) {
  for (bool keep_prize_rule : {false, true}) {
    NobelCase c = BuildNobelCase(keep_prize_rule);
    auto strata = ComputeStratification(c.rules, c.kb);
    ASSERT_TRUE(strata.ok());
    const StratificationCertificate& cert = strata->certificate;
    const size_t n = c.rules.size();
    std::set<std::pair<uint32_t, uint32_t>> covered;
    for (const StratumEdge& edge : cert.edges) {
      EXPECT_NE(edge.from, edge.to);
      EXPECT_TRUE(covered.emplace(edge.from, edge.to).second);
    }
    for (const Separation& separation : cert.separations) {
      EXPECT_NE(separation.from, separation.to);
      EXPECT_TRUE(covered.emplace(separation.from, separation.to).second);
    }
    EXPECT_EQ(covered.size(), n * (n - 1));

    // Strata partition the rule indexes; cyclic iff more than one rule.
    ASSERT_EQ(cert.cyclic.size(), cert.strata.size());
    std::set<uint32_t> assigned;
    size_t cyclic_count = 0;
    for (size_t s = 0; s < cert.strata.size(); ++s) {
      EXPECT_EQ(cert.cyclic[s] != 0, cert.strata[s].size() > 1);
      cyclic_count += (cert.cyclic[s] != 0) ? 1 : 0;
      for (uint32_t rule : cert.strata[s]) {
        EXPECT_TRUE(assigned.insert(rule).second);
      }
    }
    EXPECT_EQ(assigned.size(), n);
    EXPECT_EQ(cert.num_cyclic_strata(), cyclic_count);
  }
}

TEST(StratificationTest, ProvablyLabelDisjointIsConservative) {
  NobelCase c = BuildNobelCase(/*keep_prize_rule=*/true);
  const Similarity eq = Similarity::Equality();
  const Similarity ed2 = Similarity::EditDistance(2);
  const MatchNode chem{"Prize", "chemistry award", eq};
  const MatchNode other{"Prize", "other award", eq};
  size_t probes = 0;

  // Sibling award classes with non-overlapping instance labels: provable.
  EXPECT_TRUE(ProvablyLabelDisjoint(c.kb, chem, other, 20000, &probes));
  EXPECT_GT(probes, 0u);

  // Any fuzziness makes a shared value conceivable: inconclusive.
  probes = 0;
  const MatchNode chem_fuzzy{"Prize", "chemistry award", ed2};
  EXPECT_FALSE(ProvablyLabelDisjoint(c.kb, chem_fuzzy, other, 20000, &probes));

  // A class and its superclass share every instance: never disjoint.
  probes = 0;
  const MatchNode award{"Prize", "award", eq};
  EXPECT_FALSE(ProvablyLabelDisjoint(c.kb, chem, award, 20000, &probes));

  // Unresolvable class: inconclusive.
  probes = 0;
  const MatchNode unknown{"Prize", "no such class", eq};
  EXPECT_FALSE(ProvablyLabelDisjoint(c.kb, chem, unknown, 20000, &probes));

  // Exhausted probe budget: inconclusive, never a false proof.
  probes = 0;
  EXPECT_FALSE(ProvablyLabelDisjoint(c.kb, chem, other, 1, &probes));
}

TEST(StratificationTest, ExclusivePairNeedsAStableWitnessColumn) {
  // Without nobel_prize nothing writes Prize, so the demo pair's disjoint
  // award gates refute the City <-> Country cycle.
  NobelCase without = BuildNobelCase(/*keep_prize_rule=*/false);
  size_t probes = 0;
  auto pairs = FindExclusivePairs(without.rules, without.kb, 20000, &probes);
  ASSERT_EQ(pairs.size(), 1u);
  const uint32_t chem = IndexOf(without.rules, "nobel_city_chem");
  const uint32_t other = IndexOf(without.rules, "nobel_country_other");
  EXPECT_EQ(pairs[0].a, std::min(chem, other));
  EXPECT_EQ(pairs[0].b, std::max(chem, other));
  EXPECT_EQ(pairs[0].column, "Prize");
  EXPECT_EQ(pairs[0].class_a, "chemistry award");
  EXPECT_EQ(pairs[0].class_b, "other award");

  // Adding nobel_prize back makes Prize writable: the witness column is no
  // longer stable across the chase, so the refutation must be withdrawn.
  NobelCase with = BuildNobelCase(/*keep_prize_rule=*/true);
  probes = 0;
  EXPECT_TRUE(FindExclusivePairs(with.rules, with.kb, 20000, &probes).empty());
}

TEST(StratificationTest, RefutedCycleYieldsAcyclicStrataAndMutedSchedule) {
  NobelCase c = BuildNobelCase(/*keep_prize_rule=*/false);
  auto strata = ComputeStratification(c.rules, c.kb);
  ASSERT_TRUE(strata.ok());
  EXPECT_EQ(strata->pairs_refuted, 1u);

  const uint32_t chem = IndexOf(c.rules, "nobel_city_chem");
  const uint32_t other = IndexOf(c.rules, "nobel_country_other");
  EXPECT_FALSE(strata->schedule.CanEnable(chem, other));
  EXPECT_FALSE(strata->schedule.CanEnable(other, chem));

  size_t refuted_separations = 0;
  for (const Separation& separation : strata->certificate.separations) {
    if (separation.kind != Separation::Kind::kRefutedUnification) continue;
    ++refuted_separations;
    EXPECT_EQ(separation.column, "Prize");
    EXPECT_TRUE((separation.from == chem && separation.to == other) ||
                (separation.from == other && separation.to == chem));
  }
  EXPECT_EQ(refuted_separations, 2u);  // both directions of the one pair

  // The pair on its own (the examples/rules/nobel_strata.dr shape): the
  // severed cycle leaves two singleton strata and a fully acyclic
  // certificate — nothing but the two refuted-unification separations.
  std::vector<DetectiveRule> pair_only = {c.rules[chem], c.rules[other]};
  auto pair_strata = ComputeStratification(pair_only, c.kb);
  ASSERT_TRUE(pair_strata.ok());
  EXPECT_EQ(pair_strata->certificate.strata.size(), 2u);
  EXPECT_EQ(pair_strata->certificate.num_cyclic_strata(), 0u);
  EXPECT_TRUE(pair_strata->certificate.edges.empty());
  EXPECT_EQ(pair_strata->certificate.separations.size(), 2u);
}

TEST(StratificationTest, UnrefutedCycleBecomesOneCyclicStratum) {
  NobelCase c = BuildNobelCase(/*keep_prize_rule=*/true);
  auto strata = ComputeStratification(c.rules, c.kb);
  ASSERT_TRUE(strata.ok());
  EXPECT_EQ(strata->pairs_refuted, 0u);
  EXPECT_GE(strata->certificate.num_cyclic_strata(), 1u);

  // City and Country feed each other's evidence, so without the refutation
  // the demo pair must share a cyclic stratum.
  const uint32_t chem = IndexOf(c.rules, "nobel_city_chem");
  const uint32_t other = IndexOf(c.rules, "nobel_country_other");
  EXPECT_TRUE(strata->schedule.CanEnable(chem, other));
  EXPECT_TRUE(strata->schedule.CanEnable(other, chem));
  bool found_shared = false;
  for (size_t s = 0; s < strata->certificate.strata.size(); ++s) {
    const std::vector<uint32_t>& stratum = strata->certificate.strata[s];
    if (std::find(stratum.begin(), stratum.end(), chem) == stratum.end()) {
      continue;
    }
    found_shared =
        std::find(stratum.begin(), stratum.end(), other) != stratum.end();
    EXPECT_NE(strata->certificate.cyclic[s], 0);
  }
  EXPECT_TRUE(found_shared);
}

TEST(StratificationTest, ScheduleAgreesWithCertificate) {
  NobelCase c = BuildNobelCase(/*keep_prize_rule=*/false);
  auto strata = ComputeStratification(c.rules, c.kb);
  ASSERT_TRUE(strata.ok());
  EXPECT_EQ(strata->schedule.num_rules, c.rules.size());
  EXPECT_EQ(strata->schedule.strata, strata->certificate.strata);
  for (const StratumEdge& edge : strata->certificate.edges) {
    EXPECT_TRUE(strata->schedule.CanEnable(edge.from, edge.to));
  }
  for (const Separation& separation : strata->certificate.separations) {
    EXPECT_FALSE(strata->schedule.CanEnable(separation.from, separation.to));
  }
}

TEST(StratificationTest, FigureFourRulesCertify) {
  KnowledgeBase kb = detective::testing::BuildFigure1Kb();
  std::vector<DetectiveRule> rules = detective::testing::BuildFigure4Rules();
  auto strata = ComputeStratification(rules, kb);
  ASSERT_TRUE(strata.ok()) << strata.status().ToString();
  const size_t n = rules.size();
  EXPECT_EQ(strata->certificate.edges.size() +
                strata->certificate.separations.size(),
            n * (n - 1));
  // Every write set contains the target and only read columns (a rule can
  // only standardize cells it matched).
  for (const RuleFootprint& footprint : strata->certificate.footprints) {
    EXPECT_TRUE(std::binary_search(footprint.writes.begin(),
                                   footprint.writes.end(), footprint.target));
    EXPECT_TRUE(std::includes(footprint.reads.begin(), footprint.reads.end(),
                              footprint.writes.begin(),
                              footprint.writes.end()));
  }
}

TEST(StratificationTest, CertificateJsonEscapesHostileRuleNames) {
  // JSON-escape regression: rule names with control characters and non-ASCII
  // UTF-8 must round through AppendJsonString (\u00XX escapes, raw UTF-8
  // bytes preserved) — never raw control bytes in the document.
  const Similarity eq = Similarity::Equality();
  auto make_rule = [&](std::string name) {
    SchemaMatchingGraph graph({{"Name", "laureate", eq},
                               {"Prize", "chemistry award", eq},
                               {"Prize", "other award", eq}},
                              {{0, 1, "wonPrize"}, {0, 2, "wonPrize"}});
    return DetectiveRule(std::move(name), std::move(graph), 1, 2);
  };
  std::vector<DetectiveRule> rules;
  rules.push_back(make_rule("bad\x01\tname \"quoted\\\""));
  rules.push_back(make_rule("caf\xc3\xa9 r\xc3\xa8gle"));

  NobelCase c = BuildNobelCase(/*keep_prize_rule=*/true);
  auto strata = ComputeStratification(rules, c.kb);
  ASSERT_TRUE(strata.ok());
  const std::string json = strata->certificate.ToJson();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("bad\\u0001\\u0009name \\\"quoted\\\\\\\""),
            std::string::npos);
  EXPECT_NE(json.find("caf\xc3\xa9 r\xc3\xa8gle"), std::string::npos);
  for (char byte : json) {
    if (byte == '\n') continue;  // the document itself is pretty-printed
    EXPECT_GE(static_cast<unsigned char>(byte), 0x20)
        << "raw control byte leaked into certificate JSON";
  }
}

}  // namespace
}  // namespace detective::analysis
