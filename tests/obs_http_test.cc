// Tests for the embedded introspection HTTP server (obs/http_server.h) and
// the endpoint surface bound by obs/introspect.h. The client side is raw
// POSIX sockets on purpose: the server's whole job is to survive exactly
// the byte patterns curl would never send.

#include "obs/http_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "obs/introspect.h"
#include "obs/progress.h"

namespace detective::obs {
namespace {

// Connects to 127.0.0.1:port; returns -1 on failure.
int Connect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Reads until the peer closes (bounded by a sanity cap).
std::string ReadUntilClose(int fd) {
  std::string out;
  char buf[4096];
  while (out.size() < (1u << 20)) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

// One full round trip on a fresh connection; closes the socket.
std::string Fetch(uint16_t port, const std::string& request) {
  int fd = Connect(port);
  if (fd < 0) return "";
  std::string response;
  if (SendAll(fd, request)) response = ReadUntilClose(fd);
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return Fetch(port, "GET " + path +
                         " HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
}

// A server with a couple of toy handlers on an ephemeral port.
class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_.Handle("/ping", [](const HttpRequest&) {
      return HttpResponse{200, "text/plain; charset=utf-8", "pong\n", {}};
    });
    server_.Handle("/echo", [](const HttpRequest& request) {
      return HttpResponse{200, "text/plain; charset=utf-8",
                          request.path + "?" + request.query, {}};
    });
    ASSERT_TRUE(server_.Start().ok());
    ASSERT_TRUE(server_.running());
    ASSERT_NE(server_.port(), 0);
  }

  HttpServer server_;
};

TEST_F(HttpServerTest, ServesRegisteredPath) {
  std::string response = Get(server_.port(), "/ping");
  EXPECT_NE(response.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\npong\n"), std::string::npos);
  EXPECT_GE(server_.requests_served(), 1u);
}

TEST_F(HttpServerTest, QueryStringIsSplitOffThePath) {
  std::string response = Get(server_.port(), "/echo?a=1&b=2");
  EXPECT_NE(response.find("/echo?a=1&b=2"), std::string::npos);
}

TEST_F(HttpServerTest, UnknownPathIs404) {
  std::string response = Get(server_.port(), "/nope");
  EXPECT_NE(response.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
}

TEST_F(HttpServerTest, NonGetIs405WithAllowHeader) {
  std::string response =
      Fetch(server_.port(),
            "POST /ping HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n"
            "Connection: close\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 405 Method Not Allowed\r\n"),
            std::string::npos);
  EXPECT_NE(response.find("Allow: GET\r\n"), std::string::npos);
}

TEST_F(HttpServerTest, MalformedRequestLineIs400) {
  std::string response = Fetch(server_.port(), "definitely not http\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400 Bad Request\r\n"), std::string::npos);
}

TEST_F(HttpServerTest, PipelinedRequestsAllAnswered) {
  // Two requests in one write on a keep-alive connection, then a closing
  // third: three responses come back on the same socket.
  int fd = Connect(server_.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd,
                      "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n"
                      "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n"
                      "GET /ping HTTP/1.1\r\nHost: x\r\n"
                      "Connection: close\r\n\r\n"));
  std::string response = ReadUntilClose(fd);
  ::close(fd);
  size_t first = response.find("HTTP/1.1 200 OK");
  size_t second = response.find("HTTP/1.1 404 Not Found");
  size_t third = response.rfind("HTTP/1.1 200 OK");
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(second, std::string::npos);
  EXPECT_NE(third, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_LT(second, third);
}

TEST(HttpServerLimitsTest, OversizedRequestHeadIs431) {
  HttpServerOptions options;
  options.max_request_bytes = 256;
  HttpServer server(options);
  server.Handle("/ping", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8", "pong\n", {}};
  });
  ASSERT_TRUE(server.Start().ok());
  std::string request = "GET /ping HTTP/1.1\r\nX-Pad: ";
  request.append(1024, 'a');
  request += "\r\n\r\n";
  std::string response = Fetch(server.port(), request);
  EXPECT_NE(response.find("HTTP/1.1 431 "), std::string::npos);
  server.Stop();
}

TEST(HttpServerLimitsTest, PartialRequestTimesOutAndCloses) {
  HttpServerOptions options;
  options.read_timeout_ms = 100;
  HttpServer server(options);
  ASSERT_TRUE(server.Start().ok());
  int fd = Connect(server.port());
  ASSERT_GE(fd, 0);
  // Half a request line and then silence: the server must drop us instead
  // of pinning its accept thread forever.
  ASSERT_TRUE(SendAll(fd, "GET /slow HTT"));
  std::string response = ReadUntilClose(fd);  // returns once the server closes
  ::close(fd);
  EXPECT_TRUE(response.empty() ||
              response.find("HTTP/1.1 400 ") != std::string::npos);
  // The server is still alive for the next client.
  EXPECT_TRUE(server.running());
  EXPECT_NE(Get(server.port(), "/nope").find("HTTP/1.1 404 "),
            std::string::npos);
  server.Stop();
}

TEST(HttpServerLifecycleTest, PortInUseFailsToStart) {
  HttpServer first;
  ASSERT_TRUE(first.Start().ok());
  HttpServerOptions options;
  options.port = first.port();
  HttpServer second(options);
  Status status = second.Start();
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(second.running());
  first.Stop();
}

TEST(HttpServerLifecycleTest, StopIsIdempotentAndJoins) {
  HttpServer server;
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.port();
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // second call is a no-op
  // The socket really is closed: a new connection is refused.
  EXPECT_LT(Connect(port), 0);
  // Never-started servers tolerate Stop() too.
  HttpServer idle;
  idle.Stop();
}

TEST(IntrospectServerTest, ServesAllFiveEndpoints) {
  metrics::Registry::Global().Reset();
  DETECTIVE_COUNT("test.introspect.counter");
  { DETECTIVE_SCOPED_TIMER("test.introspect.timer"); }
  IntrospectServer server;
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.port();

  EXPECT_NE(Get(port, "/healthz").find("\r\n\r\nok\n"), std::string::npos);

  std::string metrics_response = Get(port, "/metrics");
  EXPECT_NE(metrics_response.find("application/openmetrics-text"),
            std::string::npos);
  EXPECT_NE(metrics_response.find("# EOF\n"), std::string::npos);
#if DETECTIVE_METRICS_ENABLED
  EXPECT_NE(metrics_response.find("detective_test_introspect_counter_total"),
            std::string::npos);
  EXPECT_NE(metrics_response.find(
                "detective_test_introspect_timer_seconds_bucket"),
            std::string::npos);
#endif

  std::string json_response = Get(port, "/metrics.json");
  EXPECT_NE(json_response.find("\"counters\""), std::string::npos);

  std::string progress_response = Get(port, "/progress");
  EXPECT_NE(progress_response.find("\"phase\""), std::string::npos);
  EXPECT_NE(progress_response.find("\"rows_committed\""), std::string::npos);

  // Chrome trace format is a bare JSON array (possibly empty when no
  // recorder is active).
  std::string trace_response = Get(port, "/trace");
  EXPECT_NE(trace_response.find("\r\n\r\n["), std::string::npos);

  // The metrics endpoint is a non-destructive read: fetching twice reports
  // the same counter value.
#if DETECTIVE_METRICS_ENABLED
  std::string again = Get(port, "/metrics");
  EXPECT_NE(again.find("detective_test_introspect_counter_total 1"),
            std::string::npos);
#endif
  server.Stop();
}

TEST(IntrospectServerTest, FaultSelfDisablePredicate) {
  // With no armed plan the server must never self-disable.
  EXPECT_FALSE(ShouldDisableUnderFaultPlan());
}

}  // namespace
}  // namespace detective::obs
