// Pipeline-level regression tests:
//   - the evidence-normalization Church-Rosser regression (a two-error tuple
//     where a repair marks fuzzy-matched evidence must still converge to one
//     fixpoint under every rule order);
//   - the full file round trip: world -> KB -> N-Triples -> parse -> repair
//     must behave identically to repairing against the in-memory KB.

#include <gtest/gtest.h>

#include <fstream>

#include "core/consistency.h"
#include "core/repair.h"
#include "core/rule_io.h"
#include "datagen/nobel_gen.h"
#include "eval/metrics.h"
#include "kb/ntriples_parser.h"

namespace detective {
namespace {

TEST(NormalizationRegressionTest, RepairPathNormalizesFuzzyEvidence) {
  // A tuple with a semantic Country error AND a City typo. The country rule
  // (which uses City as fuzzy evidence) must normalize the typo when it
  // fires first, or the fixpoint depends on rule order.
  NobelOptions options;
  options.num_laureates = 50;
  Dataset dataset = GenerateNobel(options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);

  Relation dirty{dataset.clean.schema()};
  size_t planted = 0;
  for (size_t row = 0; row < dataset.clean.num_tuples() && planted < 10; ++row) {
    if (dataset.alternatives[row][2].empty()) continue;
    Tuple t = dataset.clean.tuple(row);
    t.SetValue(2, dataset.alternatives[row][2][0]);  // semantic Country error
    std::string city = t.value(5);
    city[city.size() / 2] = city[city.size() / 2] == 'x' ? 'y' : 'x';  // typo
    t.SetValue(5, city);
    dirty.Append(std::move(t));
    ++planted;
  }
  ASSERT_GT(planted, 0u);

  // Every rule-application order must reach the same fixpoint.
  ConsistencyOptions copts;
  copts.max_orders = 120;
  auto report = CheckConsistency(kb, dataset.rules, dirty, copts);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent) << report->ToString();
  EXPECT_TRUE(report->exhaustive);

  // And the fixpoint actually fixes both cells.
  FastRepairer repairer(kb, dirty.schema(), dataset.rules);
  ASSERT_TRUE(repairer.Init().ok());
  Relation repaired = dirty;
  repairer.RepairRelation(&repaired);
  size_t both_fixed = 0;
  size_t checked = 0;
  for (size_t row = 0; row < repaired.num_tuples(); ++row) {
    // Identify the source row through the (unique) Name key.
    for (size_t src = 0; src < dataset.clean.num_tuples(); ++src) {
      if (dataset.clean.tuple(src).value(0) != repaired.tuple(row).value(0)) continue;
      ++checked;
      if (repaired.tuple(row).value(2) == dataset.clean.tuple(src).value(2) &&
          repaired.tuple(row).value(5) == dataset.clean.tuple(src).value(5)) {
        ++both_fixed;
      }
      break;
    }
  }
  EXPECT_EQ(checked, planted);
  // Coverage gaps can block individual repairs, but most must go through.
  EXPECT_GE(both_fixed * 2, planted);
}

TEST(NormalizationRegressionTest, MarkedCellsAlwaysHoldProvenValues) {
  // Invariant behind the fix: once a cell is marked positive, its value is a
  // KB label (never a typo'd spelling).
  NobelOptions options;
  options.num_laureates = 120;
  Dataset dataset = GenerateNobel(options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  Relation dirty = dataset.clean;
  ErrorSpec spec;
  spec.error_rate = 0.2;
  spec.typo_fraction = 0.8;
  InjectErrors(&dirty, spec, dataset.alternatives);

  FastRepairer repairer(kb, dirty.schema(), dataset.rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&dirty);
  for (size_t row = 0; row < dirty.num_tuples(); ++row) {
    const Tuple& tuple = dirty.tuple(row);
    for (ColumnIndex c = 0; c < tuple.size(); ++c) {
      if (!tuple.IsPositive(c)) continue;
      EXPECT_FALSE(kb.ItemsWithLabel(tuple.value(c)).empty())
          << "row " << row << " col " << c << " marked positive but '"
          << tuple.value(c) << "' is not a KB label";
    }
  }
}

class FilePipelineTest : public ::testing::Test {
 protected:
  static std::string WriteTemp(const std::string& name, const std::string& text) {
    std::string path = ::testing::TempDir() + "/" + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
    return path;
  }
};

TEST_F(FilePipelineTest, RepairThroughFilesMatchesInMemory) {
  NobelOptions options;
  options.num_laureates = 80;
  Dataset dataset = GenerateNobel(options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  Relation dirty = dataset.clean;
  ErrorSpec spec;
  spec.error_rate = 0.1;
  InjectErrors(&dirty, spec, dataset.alternatives);

  // Serialize everything, read it back.
  std::string kb_path = WriteTemp("pipeline_kb.nt", ToNTriples(kb));
  std::string rules_path = ::testing::TempDir() + "/pipeline_rules.dr";
  ASSERT_TRUE(WriteRulesFile(rules_path, dataset.rules).ok());
  std::string csv_path = ::testing::TempDir() + "/pipeline_dirty.csv";
  ASSERT_TRUE(dirty.ToCsvFile(csv_path).ok());

  auto kb2 = ParseNTriplesFile(kb_path);
  ASSERT_TRUE(kb2.ok()) << kb2.status().ToString();
  auto rules2 = ParseRulesFile(rules_path);
  ASSERT_TRUE(rules2.ok()) << rules2.status().ToString();
  auto dirty2 = Relation::FromCsvFile(csv_path);
  ASSERT_TRUE(dirty2.ok()) << dirty2.status().ToString();

  // Repair via memory and via files; results must agree cell for cell.
  Relation via_memory = dirty;
  {
    FastRepairer repairer(kb, dirty.schema(), dataset.rules);
    ASSERT_TRUE(repairer.Init().ok());
    repairer.RepairRelation(&via_memory);
  }
  Relation via_files = *dirty2;
  {
    FastRepairer repairer(*kb2, dirty2->schema(), *rules2);
    ASSERT_TRUE(repairer.Init().ok());
    repairer.RepairRelation(&via_files);
  }
  ASSERT_EQ(via_files.num_tuples(), via_memory.num_tuples());
  for (size_t row = 0; row < via_memory.num_tuples(); ++row) {
    EXPECT_EQ(via_files.tuple(row).values(), via_memory.tuple(row).values())
        << "row " << row;
  }
}

TEST_F(FilePipelineTest, TsvKbPipelineWorksToo) {
  // Express the Fig. 1-style facts as TSV triples and repair a mini table.
  std::string tsv =
      "Avram_Hershko\trdf:type\tlaureate\n"
      "Avram_Hershko\tworksAt\tTechnion\n"
      "Avram_Hershko\twasBornIn\tKarcag\n"
      "Technion\trdf:type\torganization\n"
      "Technion\tlocatedIn\tHaifa\n"
      "Haifa\trdf:type\tcity\n"
      "Karcag\trdf:type\tcity\n";
  auto kb = ParseTsvTriples(tsv);
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();

  auto rules = ParseRules(R"(
RULE city
NODE a col=Name type=laureate sim="="
NODE b col=Institution type=organization sim="ED,2"
POS  p col=City type=city sim="="
NEG  n col=City type=city sim="="
EDGE a worksAt b
EDGE b locatedIn p
EDGE a wasBornIn n
END
)");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();

  Relation table{Schema({"Name", "Institution", "City"})};
  ASSERT_TRUE(table.Append({"Avram Hershko", "Technion", "Karcag"}).ok());
  FastRepairer repairer(*kb, table.schema(), *rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&table);
  EXPECT_EQ(table.tuple(0).value(2), "Haifa");
}

}  // namespace
}  // namespace detective
