// Tests for src/baselines: FDs/violations, the Llunatic-style chase with the
// frequency cost-manager, constant CFDs, and the KATARA simulation.

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/cfd.h"
#include "baselines/fd.h"
#include "baselines/katara.h"
#include "baselines/llunatic.h"
#include "test_fixtures.h"

namespace detective {
namespace {

Relation CityCountryTable(std::vector<std::vector<std::string>> rows) {
  Relation r{Schema({"City", "Country"})};
  for (auto& row : rows) r.Append(std::move(row)).Abort("row");
  return r;
}

// ---- FDs ------------------------------------------------------------------

TEST(FdTest, BindChecksColumns) {
  Schema schema({"City", "Country"});
  EXPECT_TRUE(BindFd({{"City"}, "Country"}, schema).ok());
  EXPECT_FALSE(BindFd({{"Town"}, "Country"}, schema).ok());
  EXPECT_FALSE(BindFd({{"City"}, "Nation"}, schema).ok());
  EXPECT_FALSE(BindFd({{}, "Country"}, schema).ok());
}

TEST(FdTest, FindViolations) {
  Relation r = CityCountryTable({{"Paris", "France"},
                                 {"Paris", "Italy"},
                                 {"Rome", "Italy"},
                                 {"Oslo", "Norway"}});
  auto violations = FindViolations(r, {{{"City"}, "Country"}});
  ASSERT_TRUE(violations.ok());
  ASSERT_EQ(violations->size(), 1u);
  EXPECT_EQ((*violations)[0].row_a, 0u);
  EXPECT_EQ((*violations)[0].row_b, 1u);
}

TEST(FdTest, NoViolationsOnCleanData) {
  Relation r = CityCountryTable({{"Paris", "France"}, {"Rome", "Italy"}});
  auto violations = FindViolations(r, {{{"City"}, "Country"}});
  ASSERT_TRUE(violations.ok());
  EXPECT_TRUE(violations->empty());
}

TEST(FdTest, ToStringReadable) {
  FunctionalDependency fd{{"A", "B"}, "C"};
  EXPECT_EQ(fd.ToString(), "A, B -> C");
}

// ---- Llunatic --------------------------------------------------------------

TEST(LlunaticTest, MajorityWins) {
  Relation r = CityCountryTable({{"Paris", "France"},
                                 {"Paris", "France"},
                                 {"Paris", "Italy"}});
  LlunaticRepairer repairer(std::vector<FunctionalDependency>{{{"City"}, "Country"}});
  ASSERT_TRUE(repairer.Repair(&r).ok());
  for (size_t row = 0; row < 3; ++row) {
    EXPECT_EQ(r.tuple(row).value(1), "France") << row;
  }
  EXPECT_EQ(repairer.stats().repairs, 1u);
  EXPECT_EQ(repairer.stats().lluns, 0u);
}

TEST(LlunaticTest, TieProducesLluns) {
  Relation r = CityCountryTable({{"Paris", "France"}, {"Paris", "Italy"}});
  LlunaticRepairer repairer(std::vector<FunctionalDependency>{{{"City"}, "Country"}});
  ASSERT_TRUE(repairer.Repair(&r).ok());
  EXPECT_EQ(r.tuple(0).value(1), kLlunValue);
  EXPECT_EQ(r.tuple(1).value(1), kLlunValue);
  EXPECT_EQ(repairer.stats().lluns, 2u);
}

TEST(LlunaticTest, CleanGroupsUntouched) {
  Relation r = CityCountryTable({{"Paris", "France"}, {"Rome", "Italy"}});
  Relation before = r;
  LlunaticRepairer repairer(std::vector<FunctionalDependency>{{{"City"}, "Country"}});
  ASSERT_TRUE(repairer.Repair(&r).ok());
  for (size_t row = 0; row < 2; ++row) {
    EXPECT_EQ(r.tuple(row).values(), before.tuple(row).values());
  }
}

TEST(LlunaticTest, ChasePropagatesAcrossFds) {
  // FD1: A -> B; FD2: B -> C. Fixing B creates the grouping FD2 needs.
  Relation r{Schema({"A", "B", "C"})};
  ASSERT_TRUE(r.Append({"a1", "b1", "c1"}).ok());
  ASSERT_TRUE(r.Append({"a1", "b1", "c1"}).ok());
  ASSERT_TRUE(r.Append({"a1", "bX", "c2"}).ok());  // B wrong, C wrong
  LlunaticRepairer repairer(
      std::vector<FunctionalDependency>{{{"A"}, "B"}, {{"B"}, "C"}});
  ASSERT_TRUE(repairer.Repair(&r).ok());
  EXPECT_EQ(r.tuple(2).value(1), "b1");
  EXPECT_EQ(r.tuple(2).value(2), "c1");
  EXPECT_GE(repairer.stats().rounds, 2u);
}

TEST(LlunaticTest, DirtyLhsMisleadsTheCostManager) {
  // The majority itself is wrong: heuristic repair damages the minority.
  Relation r = CityCountryTable({{"Paris", "Italy"},
                                 {"Paris", "Italy"},
                                 {"Paris", "France"}});
  LlunaticRepairer repairer(std::vector<FunctionalDependency>{{{"City"}, "Country"}});
  ASSERT_TRUE(repairer.Repair(&r).ok());
  EXPECT_EQ(r.tuple(2).value(1), "Italy");  // the correct cell got "repaired"
}

// ---- Constant CFDs -----------------------------------------------------------

TEST(CfdTest, MiningFindsDeterminedPatterns) {
  Relation truth = CityCountryTable({{"Paris", "France"},
                                     {"Paris", "France"},
                                     {"Rome", "Italy"}});
  auto cfds = MineConstantCfds(truth, {{{"City"}, "Country"}});
  ASSERT_TRUE(cfds.ok());
  ASSERT_EQ(cfds->size(), 2u);
  std::vector<std::string> rendered;
  for (const ConstantCfd& cfd : *cfds) rendered.push_back(cfd.ToString());
  std::sort(rendered.begin(), rendered.end());
  EXPECT_EQ(rendered[0], "[City=Paris] -> Country=France");
  EXPECT_EQ(rendered[1], "[City=Rome] -> Country=Italy");
}

TEST(CfdTest, MiningSkipsAmbiguousPatterns) {
  // Netherlands-style: one LHS, two truthful RHS values -> no constant CFD.
  Relation truth = CityCountryTable({{"Paris", "France"}, {"Paris", "Texas"}});
  auto cfds = MineConstantCfds(truth, {{{"City"}, "Country"}});
  ASSERT_TRUE(cfds.ok());
  EXPECT_TRUE(cfds->empty());
}

TEST(CfdTest, MinSupportFilters) {
  Relation truth = CityCountryTable({{"Paris", "France"},
                                     {"Paris", "France"},
                                     {"Rome", "Italy"}});
  auto cfds = MineConstantCfds(truth, {{{"City"}, "Country"}}, /*min_support=*/2);
  ASSERT_TRUE(cfds.ok());
  ASSERT_EQ(cfds->size(), 1u);
  EXPECT_EQ((*cfds)[0].rhs_value, "France");
}

TEST(CfdTest, RepairerOverwritesRhsOnLhsMatch) {
  Relation truth = CityCountryTable({{"Paris", "France"}, {"Rome", "Italy"}});
  auto cfds = MineConstantCfds(truth, {{{"City"}, "Country"}});
  ASSERT_TRUE(cfds.ok());
  CfdRepairer repairer(*cfds);
  ASSERT_TRUE(repairer.Init(truth.schema()).ok());

  Relation dirty = CityCountryTable({{"Paris", "Italy"},     // RHS error: fixed
                                     {"Pariis", "France"}});  // LHS typo: missed
  repairer.RepairRelation(&dirty);
  EXPECT_EQ(dirty.tuple(0).value(1), "France");
  EXPECT_EQ(dirty.tuple(1).value(1), "France");  // untouched (LHS did not match)
  EXPECT_EQ(repairer.stats().repairs, 1u);
}

TEST(CfdTest, InitRejectsWrongSchema) {
  ConstantCfd cfd{{{"City", "Paris"}}, "Country", "France"};
  CfdRepairer repairer({cfd});
  EXPECT_FALSE(repairer.Init(Schema({"A", "B"})).ok());
}

// ---- KATARA ---------------------------------------------------------------------

class KataraTest : public ::testing::Test {
 protected:
  KataraTest()
      : kb_(testing::BuildFigure1Kb()),
        dirty_(testing::BuildTableI()),
        clean_(testing::BuildTableIClean()) {}

  SchemaMatchingGraph Pattern() {
    SchemaMatchingGraph g;
    uint32_t name =
        g.AddNode({"Name", "Nobel laureates in Chemistry", Similarity::Equality()});
    uint32_t inst =
        g.AddNode({"Institution", "organization", Similarity::EditDistance(2)});
    uint32_t city = g.AddNode({"City", "city", Similarity::Equality()});
    g.AddEdge(name, inst, "worksAt").Abort("e");
    g.AddEdge(inst, city, "locatedIn").Abort("e");
    return g;
  }

  KnowledgeBase kb_;
  Relation dirty_;
  Relation clean_;
};

TEST_F(KataraTest, FullMatchMarksWholePattern) {
  Katara katara(kb_, Pattern());
  ASSERT_TRUE(katara.Init(dirty_.schema()).ok());
  // r2 restricted to the pattern columns is clean modulo the fuzzy typo.
  Tuple r2 = dirty_.tuple(1);
  katara.CleanTuple(&r2);
  EXPECT_TRUE(r2.IsPositive(dirty_.schema().FindColumn("Name")));
  EXPECT_TRUE(r2.IsPositive(dirty_.schema().FindColumn("Institution")));
  EXPECT_TRUE(r2.IsPositive(dirty_.schema().FindColumn("City")));
  EXPECT_EQ(katara.stats().full_matches, 1u);
}

TEST_F(KataraTest, PartialMatchBlamesAndRepairsMinimalSet) {
  Katara katara(kb_, Pattern());
  ASSERT_TRUE(katara.Init(dirty_.schema()).ok());
  // r1's City (Karcag) breaks the pattern; Name+Institution still match, and
  // the KB offers Haifa through locatedIn.
  Tuple r1 = dirty_.tuple(0);
  katara.CleanTuple(&r1);
  EXPECT_EQ(r1.value(dirty_.schema().FindColumn("City")), "Haifa");
  EXPECT_EQ(katara.stats().partial_matches, 1u);
  EXPECT_EQ(katara.stats().repairs, 1u);
}

TEST_F(KataraTest, UnusablePatternIsNoop) {
  KbBuilder b;
  b.AddClass("unrelated");
  KnowledgeBase sparse = std::move(b).Freeze();
  Katara katara(sparse, Pattern());
  ASSERT_TRUE(katara.Init(dirty_.schema()).ok());
  Tuple r1 = dirty_.tuple(0);
  Tuple before = r1;
  katara.CleanTuple(&r1);
  EXPECT_EQ(r1.values(), before.values());
}

TEST_F(KataraTest, InitRejectsWrongSchema) {
  Katara katara(kb_, Pattern());
  EXPECT_FALSE(katara.Init(Schema({"A", "B"})).ok());
}

TEST_F(KataraTest, CleanRelationCountsTuples) {
  Katara katara(kb_, Pattern());
  ASSERT_TRUE(katara.Init(dirty_.schema()).ok());
  Relation copy = dirty_;
  katara.CleanRelation(&copy);
  EXPECT_EQ(katara.stats().tuples, copy.num_tuples());
}

}  // namespace
}  // namespace detective
