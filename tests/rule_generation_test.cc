// Tests for core/rule_generation (§III-A): schema-level matching graph
// discovery from examples (S1/S2) and candidate DR generation (S3).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/repair.h"
#include "core/rule_generation.h"
#include "test_fixtures.h"

namespace detective {
namespace {

class RuleGenerationTest : public ::testing::Test {
 protected:
  RuleGenerationTest() : kb_(testing::BuildFigure1Kb()) {}

  /// Positive examples: correct (Name, Institution, City) rows. The mix is
  /// deliberately discriminative: Hershko was born elsewhere (so wasBornIn
  /// cannot reach 60% support on the positives) and Calvin studied elsewhere
  /// (so graduatedFrom cannot either) — worksAt/locatedIn dominate.
  Relation Positives() {
    Relation r{Schema({"Name", "Institution", "City"})};
    r.Append({"Avram Hershko", "Israel Institute of Technology", "Haifa"})
        .Abort("p");
    r.Append({"Marie Curie", "Pasteur Institute", "Paris"}).Abort("p");
    r.Append({"Melvin Calvin", "UC Berkeley", "Berkeley"}).Abort("p");
    return r;
  }

  /// Negative examples: only City wrong (replaced by the birth city).
  Relation Negatives() {
    Relation r{Schema({"Name", "Institution", "City"})};
    r.Append({"Avram Hershko", "Israel Institute of Technology", "Karcag"})
        .Abort("n");
    r.Append({"Melvin Calvin", "UC Berkeley", "St. Paul"}).Abort("n");
    return r;
  }

  KnowledgeBase kb_;
};

TEST_F(RuleGenerationTest, DiscoverTypesAndEdges) {
  auto discovered = DiscoverMatchingGraph(kb_, Positives(), "");
  ASSERT_TRUE(discovered.ok()) << discovered.status().ToString();
  const SchemaMatchingGraph& g = discovered->graph;
  ASSERT_EQ(g.nodes().size(), 3u);

  uint32_t name = g.FindNodeByColumn("Name");
  uint32_t inst = g.FindNodeByColumn("Institution");
  uint32_t city = g.FindNodeByColumn("City");
  ASSERT_LT(name, g.nodes().size());
  ASSERT_LT(inst, g.nodes().size());
  ASSERT_LT(city, g.nodes().size());
  EXPECT_EQ(g.node(name).type, "Nobel laureates in Chemistry");
  EXPECT_EQ(g.node(inst).type, "organization");
  EXPECT_EQ(g.node(city).type, "city");

  // worksAt and locatedIn must be discovered with full support.
  auto has_edge = [&](uint32_t from, uint32_t to, const char* rel) {
    return std::any_of(g.edges().begin(), g.edges().end(), [&](const MatchEdge& e) {
      return e.from == from && e.to == to && e.relation == rel;
    });
  };
  EXPECT_TRUE(has_edge(name, inst, "worksAt"));
  EXPECT_TRUE(has_edge(inst, city, "locatedIn"));
}

TEST_F(RuleGenerationTest, DiscoverPrefersMostSpecificClass) {
  // All three names are laureates, which is more specific than person.
  auto discovered = DiscoverMatchingGraph(kb_, Positives(), "");
  ASSERT_TRUE(discovered.ok());
  uint32_t name = discovered->graph.FindNodeByColumn("Name");
  EXPECT_EQ(discovered->graph.node(name).type, "Nobel laureates in Chemistry");
}

TEST_F(RuleGenerationTest, TargetEdgesRankedBySupport) {
  auto discovered = DiscoverMatchingGraph(kb_, Positives(), "City");
  ASSERT_TRUE(discovered.ok());
  ASSERT_FALSE(discovered->target_edges.empty());
  for (size_t i = 1; i < discovered->target_edges.size(); ++i) {
    EXPECT_GE(discovered->target_edges[i - 1].support,
              discovered->target_edges[i].support);
  }
}

TEST_F(RuleGenerationTest, EmptyExamplesRejected) {
  Relation empty{Schema({"Name"})};
  EXPECT_FALSE(DiscoverMatchingGraph(kb_, empty, "").ok());
}

TEST_F(RuleGenerationTest, UnmatchableColumnsRejected) {
  Relation r{Schema({"X"})};
  ASSERT_TRUE(r.Append({"no such entity anywhere"}).ok());
  EXPECT_FALSE(DiscoverMatchingGraph(kb_, r, "").ok());
}

TEST_F(RuleGenerationTest, GeneratesCityRule) {
  auto rules = GenerateRules(kb_, Positives(), Negatives(), "City");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_FALSE(rules->empty());

  // The top candidate should capture wasBornIn as the negative semantics.
  bool found_born = false;
  for (const DetectiveRule& rule : *rules) {
    EXPECT_TRUE(rule.Validate().ok()) << rule.name();
    EXPECT_EQ(rule.TargetColumn(), "City");
    for (const MatchEdge& e : rule.graph().edges()) {
      if ((e.from == rule.negative_node() || e.to == rule.negative_node()) &&
          e.relation == "wasBornIn") {
        found_born = true;
      }
    }
  }
  EXPECT_TRUE(found_born);
}

TEST_F(RuleGenerationTest, GeneratedRuleActuallyRepairs) {
  auto rules = GenerateRules(kb_, Positives(), Negatives(), "City");
  ASSERT_TRUE(rules.ok());
  ASSERT_FALSE(rules->empty());

  // Apply the generated rules to a fresh dirty tuple: Hoffmann with his
  // birth-semantics city replaced; note Hoffmann was born in Ithaca in the
  // fixture (wasBornIn Ithaca == work city), so use Hershko instead.
  Relation table{Schema({"Name", "Institution", "City"})};
  ASSERT_TRUE(
      table.Append({"Avram Hershko", "Israel Institute of Technology", "Karcag"})
          .ok());
  FastRepairer repairer(kb_, table.schema(), *rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&table);
  EXPECT_EQ(table.tuple(0).value(2), "Haifa");
}

TEST_F(RuleGenerationTest, DegenerateNegativeSemanticsSkipped) {
  // Negatives identical to positives (City holds the work city) offer no
  // distinct negative edge, so no rule should emerge for the work-city
  // semantics itself.
  auto rules = GenerateRules(kb_, Positives(), Positives(), "City");
  ASSERT_TRUE(rules.ok());
  for (const DetectiveRule& rule : *rules) {
    for (const MatchEdge& e : rule.graph().edges()) {
      bool touches_n =
          e.from == rule.negative_node() || e.to == rule.negative_node();
      if (touches_n) {
        EXPECT_NE(e.relation, "locatedIn")
            << "degenerate rule " << rule.name() << " replicates the positive edge";
      }
    }
  }
}

TEST_F(RuleGenerationTest, SchemaMismatchBetweenExampleSetsRejected) {
  Relation other{Schema({"A", "B"})};
  ASSERT_TRUE(other.Append({"x", "y"}).ok());
  EXPECT_FALSE(GenerateRules(kb_, Positives(), other, "City").ok());
}

}  // namespace
}  // namespace detective
