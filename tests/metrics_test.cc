// Tests for common/metrics: the counter/timer registry, thread-local shard
// merging under concurrent writers, and the snapshot JSON round-trip.

#include "common/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel_repair.h"
#include "core/repair.h"
#include "test_fixtures.h"

namespace detective::metrics {
namespace {

// The registry is process-global, so every test starts from a clean epoch.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::Global().Reset(); }
};

TEST_F(MetricsTest, CounterIdsAreDenseAndStable) {
  Registry& registry = Registry::Global();
  uint32_t a = registry.CounterId("test.ids.a");
  uint32_t b = registry.CounterId("test.ids.b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, registry.CounterId("test.ids.a"));
  EXPECT_EQ(b, registry.CounterId("test.ids.b"));
  // Counter and timer namespaces are independent: the same name may exist
  // in both without clashing.
  uint32_t t = registry.TimerId("test.ids.a");
  EXPECT_EQ(t, registry.TimerId("test.ids.a"));
}

TEST_F(MetricsTest, CountsAccumulateIntoSnapshot) {
  DETECTIVE_COUNT("test.acc.hits");
  DETECTIVE_COUNT("test.acc.hits");
  DETECTIVE_COUNT_N("test.acc.bytes", 40);
  DETECTIVE_COUNT_N("test.acc.bytes", 2);

  MetricsSnapshot snapshot = Registry::Global().Snapshot();
#if DETECTIVE_METRICS_ENABLED
  EXPECT_EQ(snapshot.counter("test.acc.hits"), 2u);
  EXPECT_EQ(snapshot.counter("test.acc.bytes"), 42u);
#else
  EXPECT_EQ(snapshot.counter("test.acc.hits"), 0u);
#endif
  EXPECT_EQ(snapshot.counter("test.acc.never_recorded"), 0u);
}

TEST_F(MetricsTest, ScopedTimerRecordsCountAndNonZeroTime) {
  for (int i = 0; i < 3; ++i) {
    DETECTIVE_SCOPED_TIMER("test.timer.scope");
    // A little real work so even a coarse clock ticks.
    volatile uint64_t sink = 0;
    for (int j = 0; j < 10000; ++j) sink = sink + j;
  }
  MetricsSnapshot snapshot = Registry::Global().Snapshot();
#if DETECTIVE_METRICS_ENABLED
  EXPECT_EQ(snapshot.timer("test.timer.scope").count, 3u);
  EXPECT_GT(snapshot.timer("test.timer.scope").total_ns, 0u);
#else
  EXPECT_EQ(snapshot.timer("test.timer.scope").count, 0u);
#endif
}

TEST_F(MetricsTest, ResetZeroesEverything) {
  DETECTIVE_COUNT("test.reset.counter");
  { DETECTIVE_SCOPED_TIMER("test.reset.timer"); }
  Registry::Global().Reset();
  MetricsSnapshot snapshot = Registry::Global().Snapshot();
  EXPECT_EQ(snapshot.counter("test.reset.counter"), 0u);
  EXPECT_EQ(snapshot.timer("test.reset.timer").count, 0u);
}

// The core thread-safety contract: N threads hammering the same counters
// through their private shards merge to exact totals, including threads
// that have already exited by snapshot time (their shards fold into the
// registry's retired totals).
TEST_F(MetricsTest, ConcurrentWritersMergeExactly) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kIncrements; ++i) {
        DETECTIVE_COUNT("test.mt.shared");
        DETECTIVE_COUNT_N("test.mt.weighted", t + 1);
      }
      DETECTIVE_SCOPED_TIMER("test.mt.worker");
    });
  }
  for (std::thread& worker : workers) worker.join();

  MetricsSnapshot snapshot = Registry::Global().Snapshot();
#if DETECTIVE_METRICS_ENABLED
  EXPECT_EQ(snapshot.counter("test.mt.shared"),
            static_cast<uint64_t>(kThreads) * kIncrements);
  // sum over t of (t+1) * kIncrements = kIncrements * kThreads*(kThreads+1)/2
  EXPECT_EQ(snapshot.counter("test.mt.weighted"),
            static_cast<uint64_t>(kIncrements) * kThreads * (kThreads + 1) / 2);
  EXPECT_EQ(snapshot.timer("test.mt.worker").count,
            static_cast<uint64_t>(kThreads));
#endif
}

// Snapshotting while writers are live must be safe (TSan-clean) and must
// never observe values beyond what has been written.
TEST_F(MetricsTest, SnapshotDuringWritesIsSafeAndBounded) {
  constexpr uint64_t kTotal = 50000;
  std::thread writer([] {
    for (uint64_t i = 0; i < kTotal; ++i) DETECTIVE_COUNT("test.race.counter");
  });
  uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    uint64_t now = Registry::Global().Snapshot().counter("test.race.counter");
    EXPECT_GE(now, last);  // monotone across snapshots
    EXPECT_LE(now, kTotal);
    last = now;
  }
  writer.join();
#if DETECTIVE_METRICS_ENABLED
  EXPECT_EQ(Registry::Global().Snapshot().counter("test.race.counter"), kTotal);
#endif
}

TEST_F(MetricsTest, ToJsonFromJsonRoundTrip) {
  MetricsSnapshot original;
  original.counters["kb.label_lookups"] = 123;
  original.counters["repair.rule_checks"] = 0;
  original.counters["weird \"name\" \\ with escapes"] = 7;
  original.timers["repair.relation"] = {4, 987654321};
  original.timers["kb.freeze"] = {1, 0};

  std::string json = original.ToJson();
  Result<MetricsSnapshot> parsed = MetricsSnapshot::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(*parsed, original);
}

TEST_F(MetricsTest, EmptySnapshotRoundTrips) {
  MetricsSnapshot empty;
  Result<MetricsSnapshot> parsed = MetricsSnapshot::FromJson(empty.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(*parsed, empty);
}

TEST_F(MetricsTest, LiveSnapshotRoundTripsThroughJson) {
  DETECTIVE_COUNT_N("test.json.counter", 99);
  { DETECTIVE_SCOPED_TIMER("test.json.timer"); }
  MetricsSnapshot live = Registry::Global().Snapshot();
  Result<MetricsSnapshot> parsed = MetricsSnapshot::FromJson(live.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(*parsed, live);
}

TEST_F(MetricsTest, FromJsonRejectsMalformedDocuments) {
  EXPECT_FALSE(MetricsSnapshot::FromJson("").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("[]").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("{\"counters\": {\"a\": -1}}").ok());
  EXPECT_FALSE(MetricsSnapshot::FromJson("{\"counters\": {\"a\": 1}").ok());
  EXPECT_FALSE(
      MetricsSnapshot::FromJson("{\"counters\": {}, \"bogus\": {}}").ok());
  EXPECT_FALSE(
      MetricsSnapshot::FromJson(
          "{\"timers\": {\"t\": {\"count\": 1, \"wrong_field\": 2}}}")
          .ok());
  // Trailing garbage after a valid document.
  EXPECT_FALSE(MetricsSnapshot::FromJson("{\"counters\": {}} x").ok());
}

TEST(HistogramMathTest, BucketIndexAndUpperBoundsAgree) {
  EXPECT_EQ(HistogramBucket(0), 0u);
  EXPECT_EQ(HistogramBucket(1), 1u);
  EXPECT_EQ(HistogramBucket(2), 2u);
  EXPECT_EQ(HistogramBucket(3), 2u);
  EXPECT_EQ(HistogramBucket(4), 3u);
  EXPECT_EQ(HistogramBucket(UINT64_MAX), kNumHistogramBuckets - 1);
  EXPECT_EQ(HistogramBucketUpperNs(0), 0u);
  EXPECT_EQ(HistogramBucketUpperNs(1), 1u);
  EXPECT_EQ(HistogramBucketUpperNs(2), 3u);
  EXPECT_EQ(HistogramBucketUpperNs(3), 7u);
  // Every duration is <= the upper bound of its own bucket and > the upper
  // bound of the previous one (the invariant percentile reporting rests on).
  for (uint64_t ns : {uint64_t{1}, uint64_t{100}, uint64_t{4096},
                      uint64_t{1} << 30}) {
    size_t bucket = HistogramBucket(ns);
    EXPECT_LE(ns, HistogramBucketUpperNs(bucket)) << ns;
    EXPECT_GT(ns, HistogramBucketUpperNs(bucket - 1)) << ns;
  }
}

TEST(HistogramMathTest, PercentilesReportBucketUpperBounds) {
  MetricsSnapshot::Timer timer;
  EXPECT_EQ(timer.PercentileNs(0.5), 0u);  // empty timer

  // Four scopes: 0ns, 1ns, 100ns, ~1ms. Ranks are ceil(p * count).
  for (uint64_t ns : {uint64_t{0}, uint64_t{1}, uint64_t{100}, uint64_t{1} << 20}) {
    ++timer.buckets[HistogramBucket(ns)];
    ++timer.count;
    timer.total_ns += ns;
  }
  EXPECT_EQ(timer.PercentileNs(0.25), 0u);
  EXPECT_EQ(timer.p50_ns(), HistogramBucketUpperNs(HistogramBucket(1)));
  EXPECT_EQ(timer.p95_ns(), HistogramBucketUpperNs(HistogramBucket(uint64_t{1} << 20)));
  EXPECT_EQ(timer.p99_ns(), timer.p95_ns());
  EXPECT_EQ(timer.PercentileNs(1.0), timer.p95_ns());
}

#if DETECTIVE_METRICS_ENABLED

TEST_F(MetricsTest, TimerScopesLandInHistogramBuckets) {
  Registry& registry = Registry::Global();
  uint32_t id = registry.TimerId("test.hist.timer");
  ThisThreadShard().AddTimer(id, 0);
  ThisThreadShard().AddTimer(id, 100);
  ThisThreadShard().AddTimer(id, 100);
  ThisThreadShard().AddTimer(id, uint64_t{1} << 20);

  MetricsSnapshot::Timer timer =
      registry.Snapshot().timer("test.hist.timer");
  EXPECT_EQ(timer.count, 4u);
  EXPECT_EQ(timer.buckets[0], 1u);
  EXPECT_EQ(timer.buckets[HistogramBucket(100)], 2u);
  EXPECT_EQ(timer.buckets[HistogramBucket(uint64_t{1} << 20)], 1u);
  uint64_t sum = 0;
  for (uint64_t b : timer.buckets) sum += b;
  EXPECT_EQ(sum, timer.count);
  EXPECT_EQ(timer.p50_ns(), HistogramBucketUpperNs(HistogramBucket(100)));
}

TEST_F(MetricsTest, HistogramSurvivesJsonRoundTrip) {
  uint32_t id = Registry::Global().TimerId("test.hist.json");
  ThisThreadShard().AddTimer(id, 7);
  ThisThreadShard().AddTimer(id, 3000);
  MetricsSnapshot live = Registry::Global().Snapshot();

  std::string json = live.ToJson();
  // The percentile fields are derived and emitted for consumers.
  EXPECT_NE(json.find("\"p50_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p95_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);

  Result<MetricsSnapshot> parsed = MetricsSnapshot::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->timer("test.hist.json").buckets,
            live.timer("test.hist.json").buckets);
  EXPECT_EQ(*parsed, live);
}

TEST_F(MetricsTest, SnapshotAndResetDrainsExactlyOnce) {
  DETECTIVE_COUNT_N("test.sar.counter", 5);
  uint32_t id = Registry::Global().TimerId("test.sar.timer");
  ThisThreadShard().AddTimer(id, 100);

  MetricsSnapshot first = Registry::Global().SnapshotAndReset();
  EXPECT_EQ(first.counter("test.sar.counter"), 5u);
  EXPECT_EQ(first.timer("test.sar.timer").count, 1u);
  EXPECT_EQ(first.timer("test.sar.timer").buckets[HistogramBucket(100)], 1u);

  // The first call drained everything: a second snapshot starts from zero.
  MetricsSnapshot second = Registry::Global().SnapshotAndReset();
  EXPECT_EQ(second.counter("test.sar.counter"), 0u);
  EXPECT_EQ(second.timer("test.sar.timer").count, 0u);
}

// The exactness property Reset() cannot give: with a writer racing the
// drain, every increment lands in exactly one epoch, so the epoch deltas
// sum to the true total with nothing lost or double-counted.
TEST_F(MetricsTest, SnapshotAndResetEpochsSumExactlyUnderRacingWriter) {
  constexpr uint64_t kTotal = 200000;
  std::thread writer([] {
    for (uint64_t i = 0; i < kTotal; ++i) DETECTIVE_COUNT("test.sar.race");
  });
  uint64_t sum = 0;
  for (int i = 0; i < 100; ++i) {
    sum += Registry::Global().SnapshotAndReset().counter("test.sar.race");
  }
  writer.join();
  sum += Registry::Global().SnapshotAndReset().counter("test.sar.race");
  EXPECT_EQ(sum, kTotal);
}

// The non-destructive read contract /metrics and /metrics.json rest on:
// concurrent Snapshot() readers never steal deltas from each other or from
// a later SnapshotAndReset(), so the final drain still sees every
// increment the writers made.
TEST_F(MetricsTest, ConcurrentSnapshotReadersAreNonDestructive) {
  constexpr int kWriters = 8;
  constexpr int kReaders = 2;
  constexpr uint64_t kPerWriter = 30000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        DETECTIVE_COUNT("test.ndr.counter");
        if (i % 1024 == 0) { DETECTIVE_SCOPED_TIMER("test.ndr.timer"); }
      }
    });
  }
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&stop] {
      uint64_t last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        MetricsSnapshot live = Registry::Global().Snapshot();
        uint64_t now = live.counter("test.ndr.counter");
        EXPECT_GE(now, last);  // monotone: nothing drained between reads
        EXPECT_LE(now, kWriters * kPerWriter);
        last = now;
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  // The readers above stole nothing: a final destructive drain still
  // accounts for every increment.
  MetricsSnapshot drained = Registry::Global().SnapshotAndReset();
  EXPECT_EQ(drained.counter("test.ndr.counter"), kWriters * kPerWriter);
  EXPECT_EQ(drained.timer("test.ndr.timer").count,
            static_cast<uint64_t>(kWriters) * ((kPerWriter + 1023) / 1024));
}

// --list-metrics and the OpenMetrics renderer iterate these; they must be
// sorted and cover every registered name without draining anything.
TEST_F(MetricsTest, RegisteredNamesAreSortedAndComplete) {
  DETECTIVE_COUNT("test.names.zeta");
  DETECTIVE_COUNT("test.names.alpha");
  { DETECTIVE_SCOPED_TIMER("test.names.timer"); }

  std::vector<std::string> counters = Registry::Global().CounterNames();
  std::vector<std::string> timers = Registry::Global().TimerNames();
  EXPECT_TRUE(std::is_sorted(counters.begin(), counters.end()));
  EXPECT_TRUE(std::is_sorted(timers.begin(), timers.end()));
  EXPECT_NE(std::find(counters.begin(), counters.end(), "test.names.alpha"),
            counters.end());
  EXPECT_NE(std::find(counters.begin(), counters.end(), "test.names.zeta"),
            counters.end());
  EXPECT_NE(std::find(timers.begin(), timers.end(), "test.names.timer"),
            timers.end());
  // Listing names is a pure read.
  EXPECT_EQ(Registry::Global().Snapshot().counter("test.names.alpha"), 1u);
}

// Parallel repair over the shared match plan / candidate cache must still
// sum its thread-local metric shards to exactly the sequential run's repair
// totals — and the new sharing counters must account for every node check.
TEST_F(MetricsTest, ParallelRepairWithSharedStateSumsToSequential) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  std::vector<DetectiveRule> rules = testing::BuildFigure4Rules();

  Relation sequential = testing::BuildTableI();
  FastRepairer repairer(kb, sequential.schema(), rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&sequential);
  MetricsSnapshot seq = Registry::Global().SnapshotAndReset();

  Relation parallel = testing::BuildTableI();
  ParallelRepairOptions options;
  options.num_threads = 4;
  options.chunk_rows = 1;
  auto stats = ParallelRepair(kb, rules, &parallel, options);
  ASSERT_TRUE(stats.ok());
  MetricsSnapshot par = Registry::Global().SnapshotAndReset();

  ASSERT_GT(seq.counter("repair.tuples_processed"), 0u);
  for (const char* name :
       {"repair.tuples_processed", "repair.rule_checks",
        "repair.rule_applications", "repair.cell_repairs", "repair.cells_marked",
        "repair.chase_rounds", "matcher.node_queries"}) {
    EXPECT_EQ(par.counter(name), seq.counter(name)) << name;
  }
  // Sharing bookkeeping: every node check is exactly one shared-cache
  // lookup, the plan built its indexes exactly once, workers built none, and
  // the steal counter mirrors the merged stats.
  EXPECT_EQ(par.counter("cache.hits") + par.counter("cache.misses"),
            par.counter("matcher.node_queries"));
  EXPECT_GT(par.counter("matchplan.indexes_built"), 0u);
  EXPECT_EQ(par.counter("matcher.index_builds"), 0u);
  EXPECT_EQ(par.counter("steal.count"), stats->chunks_stolen);
}

#endif  // DETECTIVE_METRICS_ENABLED

}  // namespace
}  // namespace detective::metrics
