#ifndef DETECTIVE_TESTS_TEST_FIXTURES_H_
#define DETECTIVE_TESTS_TEST_FIXTURES_H_

// Shared fixtures: the paper's Fig. 1 knowledge base excerpt (extended to
// cover all four tuples of Table I), the Table I relation, and the Fig. 4
// detective rules. Tests across modules reuse these so expectations can be
// cross-checked against the paper's worked examples.

#include <string>
#include <vector>

#include "core/rule.h"
#include "core/rule_io.h"
#include "kb/knowledge_base.h"
#include "relation/relation.h"

namespace detective::testing {

/// The Fig. 1 excerpt: laureates, institutions, cities, countries, prizes.
/// Extended with Marie Curie / Roald Hoffmann / Melvin Calvin facts so every
/// Table I repair is derivable (Melvin Calvin has two worksAt institutions,
/// enabling the multi-version Example 10).
KnowledgeBase BuildFigure1Kb();

/// Table I with its errors:
///   r1: Prize + City wrong; r2: Institution typo; r3: Country + Prize
///   wrong; r4: Institution + City wrong (multi-version).
Relation BuildTableI();

/// Ground truth for Table I (the bracketed values), with UC Berkeley as the
/// canonical Calvin institution.
Relation BuildTableIClean();

/// The four Fig. 4 rules: phi1 (Institution), phi2 (City), phi3 (Country),
/// phi4 (Prize).
std::vector<DetectiveRule> BuildFigure4Rules();

}  // namespace detective::testing

#endif  // DETECTIVE_TESTS_TEST_FIXTURES_H_
