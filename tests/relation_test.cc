// Unit tests for src/relation: Schema, Tuple (marks + provenance), Relation
// and its CSV round-trip.

#include <gtest/gtest.h>

#include "relation/relation.h"

namespace detective {
namespace {

TEST(SchemaTest, FindColumn) {
  Schema schema({"Name", "DOB", "City"});
  EXPECT_EQ(schema.num_columns(), 3u);
  EXPECT_EQ(schema.FindColumn("DOB"), 1u);
  EXPECT_EQ(schema.FindColumn("dob"), kInvalidColumn);  // case sensitive
  EXPECT_EQ(schema.FindColumn("Missing"), kInvalidColumn);
}

TEST(SchemaTest, Equality) {
  EXPECT_EQ(Schema({"a", "b"}), Schema({"a", "b"}));
  EXPECT_FALSE(Schema({"a", "b"}) == Schema({"b", "a"}));
}

TEST(TupleTest, MarksStartUnknown) {
  Tuple t({"x", "y"});
  EXPECT_EQ(t.CountPositive(), 0u);
  EXPECT_FALSE(t.IsPositive(0));
  t.MarkPositive(0);
  EXPECT_TRUE(t.IsPositive(0));
  EXPECT_EQ(t.CountPositive(), 1u);
}

TEST(TupleTest, RepairRecordsProvenance) {
  Tuple t({"Karcag", "Israel"});
  EXPECT_FALSE(t.WasRepaired(0));
  t.Repair(0, "Haifa");
  EXPECT_TRUE(t.WasRepaired(0));
  EXPECT_EQ(t.value(0), "Haifa");
  EXPECT_EQ(t.OriginalValue(0), "Karcag");
  // A second repair keeps the original original.
  t.Repair(0, "Tel Aviv");
  EXPECT_EQ(t.OriginalValue(0), "Karcag");
  EXPECT_EQ(t.CountRepaired(), 1u);
}

TEST(TupleTest, ToStringShowsMarks) {
  Tuple t({"a", "b"});
  t.MarkPositive(1);
  EXPECT_EQ(t.ToString(), "(a, b+)");
}

TEST(TupleTest, EqualityIgnoresMarks) {
  Tuple a({"x"});
  Tuple b({"x"});
  b.MarkPositive(0);
  EXPECT_EQ(a, b);
}

TEST(RelationTest, AppendChecksArity) {
  Relation r{Schema({"a", "b"})};
  EXPECT_TRUE(r.Append({"1", "2"}).ok());
  EXPECT_TRUE(r.Append({"1"}).IsInvalidArgument());
  EXPECT_TRUE(r.Append({"1", "2", "3"}).IsInvalidArgument());
  EXPECT_EQ(r.num_tuples(), 1u);
  EXPECT_EQ(r.num_cells(), 2u);
}

TEST(RelationTest, CountPositiveCells) {
  Relation r{Schema({"a", "b"})};
  ASSERT_TRUE(r.Append({"1", "2"}).ok());
  ASSERT_TRUE(r.Append({"3", "4"}).ok());
  r.MarkPositive(0, 0);
  r.MarkPositive(1, 0);
  r.MarkPositive(1, 1);
  EXPECT_EQ(r.CountPositiveCells(), 3u);
}

TEST(RelationTest, CsvRoundTrip) {
  Relation r{Schema({"Name", "City"})};
  ASSERT_TRUE(r.Append({"Avram, Hershko", "Haifa"}).ok());
  ASSERT_TRUE(r.Append({"says \"hi\"", ""}).ok());
  auto loaded = Relation::FromCsv(r.ToCsv());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->schema(), r.schema());
  ASSERT_EQ(loaded->num_tuples(), 2u);
  EXPECT_EQ(loaded->tuple(0).values(), r.tuple(0).values());
  EXPECT_EQ(loaded->tuple(1).values(), r.tuple(1).values());
}

TEST(RelationTest, CsvFileRoundTrip) {
  std::string path = ::testing::TempDir() + "/detective_relation.csv";
  Relation r{Schema({"a", "b"})};
  ASSERT_TRUE(r.Append({"1", "2"}).ok());
  ASSERT_TRUE(r.ToCsvFile(path).ok());
  auto loaded = Relation::FromCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_tuples(), 1u);
}

TEST(RelationTest, FromCsvRejectsEmpty) {
  EXPECT_TRUE(Relation::FromCsv("").status().IsInvalidArgument());
}

TEST(RelationTest, FromCsvRejectsRaggedRows) {
  EXPECT_FALSE(Relation::FromCsv("a,b\n1\n").ok());
}

}  // namespace
}  // namespace detective
