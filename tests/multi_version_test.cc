// Deeper tests for multi-version repairs (§IV-C): nested branching across
// several ambiguous rules, cap interaction, branch-local marks, and the
// agreement between the basic and fast drivers' fixpoint sets.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/repair.h"
#include "core/rule_io.h"
#include "test_fixtures.h"

namespace detective {
namespace {

/// A world where a person has two offices and each office building has two
/// mail stops: repairing (Office, MailStop) branches twice -> up to 4
/// fixpoints.
KnowledgeBase BranchyKb() {
  KbBuilder b;
  ClassId person = b.AddClass("person");
  ClassId office = b.AddClass("office");
  ClassId stop = b.AddClass("mailstop");
  RelationId works = b.AddRelation("worksIn");
  RelationId old_office = b.AddRelation("formerOffice");
  RelationId served = b.AddRelation("servedBy");
  RelationId old_stop = b.AddRelation("formerStop");

  ItemId alice = b.AddEntity("Alice", {person});
  ItemId north = b.AddEntity("North Wing", {office});
  ItemId south = b.AddEntity("South Wing", {office});
  ItemId attic = b.AddEntity("Attic", {office});
  b.AddEdge(alice, works, north);
  b.AddEdge(alice, works, south);
  b.AddEdge(alice, old_office, attic);

  auto add_stop = [&](const char* label, ItemId o) {
    ItemId s = b.AddEntity(label, {stop});
    b.AddEdge(o, served, s);
    return s;
  };
  add_stop("N1", north);
  add_stop("N2", north);
  add_stop("S1", south);
  ItemId basement = b.AddEntity("Basement", {stop});
  b.AddEdge(attic, old_stop, basement);
  b.AddEdge(alice, b.AddRelation("legacyStop"), basement);
  return std::move(b).Freeze();
}

std::vector<DetectiveRule> BranchyRules() {
  auto rules = ParseRules(R"(
RULE office_rule
NODE a col=Name type=person sim="="
POS  p col=Office type=office sim="="
NEG  n col=Office type=office sim="="
EDGE a worksIn p
EDGE a formerOffice n
END
RULE stop_rule
NODE a col=Name type=person sim="="
NODE o col=Office type=office sim="="
POS  p col=MailStop type=mailstop sim="="
NEG  n col=MailStop type=mailstop sim="="
EDGE a worksIn o
EDGE o servedBy p
EDGE a legacyStop n
END
)");
  rules.status().Abort("BranchyRules");
  return *rules;
}

std::set<std::vector<std::string>> FixpointSet(const std::vector<Tuple>& tuples) {
  std::set<std::vector<std::string>> out;
  for (const Tuple& t : tuples) out.insert(t.values());
  return out;
}

TEST(MultiVersionTest, NestedBranchingProducesAllCombinations) {
  KnowledgeBase kb = BranchyKb();
  std::vector<DetectiveRule> rules = BranchyRules();
  Relation table{Schema({"Name", "Office", "MailStop"})};
  ASSERT_TRUE(table.Append({"Alice", "Attic", "Basement"}).ok());

  RepairOptions options;
  options.max_versions = 16;
  FastRepairer repairer(kb, table.schema(), rules, options);
  ASSERT_TRUE(repairer.Init().ok());
  std::vector<Tuple> versions = repairer.RepairMultiVersion(table.tuple(0));

  // Office branches to {North Wing, South Wing}; North Wing then branches
  // the mail stop to {N1, N2}; South Wing has only S1 -> 3 fixpoints.
  std::set<std::vector<std::string>> expected = {
      {"Alice", "North Wing", "N1"},
      {"Alice", "North Wing", "N2"},
      {"Alice", "South Wing", "S1"},
  };
  EXPECT_EQ(FixpointSet(versions), expected);
  // Every version is fully marked.
  for (const Tuple& version : versions) {
    EXPECT_EQ(version.CountPositive(), version.size());
  }
}

TEST(MultiVersionTest, CapTruncatesButKeepsValidFixpoints) {
  KnowledgeBase kb = BranchyKb();
  std::vector<DetectiveRule> rules = BranchyRules();
  Relation table{Schema({"Name", "Office", "MailStop"})};
  ASSERT_TRUE(table.Append({"Alice", "Attic", "Basement"}).ok());

  RepairOptions options;
  options.max_versions = 2;
  FastRepairer repairer(kb, table.schema(), rules, options);
  ASSERT_TRUE(repairer.Init().ok());
  std::vector<Tuple> versions = repairer.RepairMultiVersion(table.tuple(0));
  EXPECT_EQ(versions.size(), 2u);
  std::set<std::vector<std::string>> all = {
      {"Alice", "North Wing", "N1"},
      {"Alice", "North Wing", "N2"},
      {"Alice", "South Wing", "S1"},
  };
  for (const auto& values : FixpointSet(versions)) {
    EXPECT_TRUE(all.contains(values));
  }
}

TEST(MultiVersionTest, BasicAndFastDriversAgreeOnFixpointSets) {
  KnowledgeBase kb = BranchyKb();
  std::vector<DetectiveRule> rules = BranchyRules();
  Relation table{Schema({"Name", "Office", "MailStop"})};
  ASSERT_TRUE(table.Append({"Alice", "Attic", "Basement"}).ok());

  RepairOptions options;
  options.max_versions = 16;
  BasicRepairer basic(kb, table.schema(), rules, options);
  ASSERT_TRUE(basic.Init().ok());
  FastRepairer fast(kb, table.schema(), rules, options);
  ASSERT_TRUE(fast.Init().ok());
  EXPECT_EQ(FixpointSet(basic.RepairMultiVersion(table.tuple(0))),
            FixpointSet(fast.RepairMultiVersion(table.tuple(0))));
}

TEST(MultiVersionTest, CleanTupleYieldsOneFullyMarkedVersion) {
  KnowledgeBase kb = BranchyKb();
  std::vector<DetectiveRule> rules = BranchyRules();
  Relation table{Schema({"Name", "Office", "MailStop"})};
  ASSERT_TRUE(table.Append({"Alice", "South Wing", "S1"}).ok());

  FastRepairer repairer(kb, table.schema(), rules);
  ASSERT_TRUE(repairer.Init().ok());
  std::vector<Tuple> versions = repairer.RepairMultiVersion(table.tuple(0));
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].values(),
            (std::vector<std::string>{"Alice", "South Wing", "S1"}));
  EXPECT_EQ(versions[0].CountPositive(), 3u);
}

TEST(MultiVersionTest, MatcherCorrectionCapBoundsBranching) {
  KnowledgeBase kb = BranchyKb();
  std::vector<DetectiveRule> rules = BranchyRules();
  Relation table{Schema({"Name", "Office", "MailStop"})};
  ASSERT_TRUE(table.Append({"Alice", "Attic", "Basement"}).ok());

  RepairOptions options;
  options.matcher.max_corrections = 1;  // the matcher itself truncates
  FastRepairer repairer(kb, table.schema(), rules, options);
  ASSERT_TRUE(repairer.Init().ok());
  std::vector<Tuple> versions = repairer.RepairMultiVersion(table.tuple(0));
  EXPECT_EQ(versions.size(), 1u);
}

}  // namespace
}  // namespace detective
