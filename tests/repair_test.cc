// Tests for core/repair and core/rule_graph: the basic (Alg. 1) and fast
// (Alg. 2) repairers, rule ordering, marks, multi-version repair (§IV-C),
// and the Church–Rosser equivalence property that consistent rule sets make
// both algorithms (and any order) reach the same fixpoint.

#include <gtest/gtest.h>

#include "core/repair.h"
#include "core/rule_graph.h"
#include "datagen/error_injector.h"
#include "datagen/nobel_gen.h"
#include "test_fixtures.h"

namespace detective {
namespace {

class RepairTest : public ::testing::Test {
 protected:
  RepairTest()
      : kb_(testing::BuildFigure1Kb()),
        dirty_(testing::BuildTableI()),
        clean_(testing::BuildTableIClean()),
        rules_(testing::BuildFigure4Rules()) {}

  KnowledgeBase kb_;
  Relation dirty_;
  Relation clean_;
  std::vector<DetectiveRule> rules_;
};

// ---- RuleGraph ---------------------------------------------------------------

TEST_F(RepairTest, RuleGraphCapturesDependencies) {
  RuleGraph graph(rules_);
  // phi1 writes Institution, used as evidence by phi2 and phi3;
  // phi2 writes City, used by phi3; phi4 is isolated.
  EXPECT_EQ(graph.Successors(0), (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(graph.Successors(1), (std::vector<uint32_t>{2}));
  EXPECT_TRUE(graph.Successors(2).empty());
  EXPECT_TRUE(graph.Successors(3).empty());
  EXPECT_TRUE(graph.IsAcyclic());

  // The topological order must check phi1 before phi2 before phi3.
  const std::vector<uint32_t>& order = graph.CheckOrder();
  auto position = [&](uint32_t rule) {
    return std::find(order.begin(), order.end(), rule) - order.begin();
  };
  EXPECT_LT(position(0), position(1));
  EXPECT_LT(position(1), position(2));
}

TEST_F(RepairTest, RuleGraphHandlesCycles) {
  // Two artificial rules that feed each other: A repairs col X with evidence
  // Y, B repairs Y with evidence X.
  auto make = [&](const char* name, const char* evidence_col, const char* target_col) {
    SchemaMatchingGraph g;
    uint32_t e = g.AddNode({evidence_col, "t", Similarity::Equality()});
    uint32_t p = g.AddNode({target_col, "t2", Similarity::Equality()});
    uint32_t n = g.AddNode({target_col, "t2", Similarity::Equality()});
    g.AddEdge(e, p, "pos").Abort("e");
    g.AddEdge(e, n, "neg").Abort("e");
    return DetectiveRule(name, g, p, n);
  };
  std::vector<DetectiveRule> cyclic = {make("a", "Y", "X"), make("b", "X", "Y")};
  RuleGraph graph(cyclic);
  EXPECT_FALSE(graph.IsAcyclic());
  EXPECT_EQ(graph.num_components(), 1u);
  EXPECT_EQ(graph.ComponentOf()[0], graph.ComponentOf()[1]);
}

// ---- Single-rule engine semantics ------------------------------------------------

TEST_F(RepairTest, EvaluateProofPositive) {
  RuleEngine engine(kb_, dirty_.schema(), rules_);
  ASSERT_TRUE(engine.Init().ok());
  RuleEvaluation eval = engine.Evaluate(0, dirty_.tuple(0));  // phi1 on r1
  EXPECT_EQ(eval.action, RuleEvaluation::Action::kProofPositive);
  EXPECT_TRUE(eval.normalizations.empty());  // values match exactly
}

TEST_F(RepairTest, EvaluateNormalizationForTypo) {
  RuleEngine engine(kb_, dirty_.schema(), rules_);
  ASSERT_TRUE(engine.Init().ok());
  RuleEvaluation eval = engine.Evaluate(0, dirty_.tuple(1));  // phi1 on r2
  EXPECT_EQ(eval.action, RuleEvaluation::Action::kProofPositive);
  ASSERT_EQ(eval.normalizations.size(), 1u);
  EXPECT_EQ(eval.normalizations[0].second, "Pasteur Institute");
}

TEST_F(RepairTest, EvaluateRepairAction) {
  RuleEngine engine(kb_, dirty_.schema(), rules_);
  ASSERT_TRUE(engine.Init().ok());
  RuleEvaluation eval = engine.Evaluate(1, dirty_.tuple(0));  // phi2 on r1
  EXPECT_EQ(eval.action, RuleEvaluation::Action::kRepair);
  EXPECT_EQ(eval.corrections, (std::vector<std::string>{"Haifa"}));
}

TEST_F(RepairTest, MarkedCellsAreNeverRepaired) {
  RuleEngine engine(kb_, dirty_.schema(), rules_);
  ASSERT_TRUE(engine.Init().ok());
  Tuple tuple = dirty_.tuple(0);
  tuple.MarkPositive(5);  // protect the (wrong) City cell
  RuleEvaluation eval = engine.Evaluate(1, tuple);
  EXPECT_EQ(eval.action, RuleEvaluation::Action::kNone);
}

TEST_F(RepairTest, FullyMarkedTupleIsNotTouched) {
  RuleEngine engine(kb_, dirty_.schema(), rules_);
  ASSERT_TRUE(engine.Init().ok());
  Tuple tuple = dirty_.tuple(0);
  for (ColumnIndex c = 0; c < tuple.size(); ++c) tuple.MarkPositive(c);
  for (uint32_t r = 0; r < rules_.size(); ++r) {
    EXPECT_EQ(engine.Evaluate(r, tuple).action, RuleEvaluation::Action::kNone);
  }
}

// ---- End-to-end repair --------------------------------------------------------

TEST_F(RepairTest, BasicRepairFixesTableI) {
  BasicRepairer repairer(kb_, dirty_.schema(), rules_);
  ASSERT_TRUE(repairer.Init().ok());
  Relation repaired = dirty_;
  repairer.RepairRelation(&repaired);
  for (size_t row = 0; row < repaired.num_tuples(); ++row) {
    EXPECT_EQ(repaired.tuple(row).values(), clean_.tuple(row).values())
        << "row " << row;
  }
}

TEST_F(RepairTest, FastRepairFixesTableI) {
  FastRepairer repairer(kb_, dirty_.schema(), rules_);
  ASSERT_TRUE(repairer.Init().ok());
  Relation repaired = dirty_;
  repairer.RepairRelation(&repaired);
  for (size_t row = 0; row < repaired.num_tuples(); ++row) {
    EXPECT_EQ(repaired.tuple(row).values(), clean_.tuple(row).values())
        << "row " << row;
  }
}

TEST_F(RepairTest, RepairedCellsAreMarkedPositive) {
  FastRepairer repairer(kb_, dirty_.schema(), rules_);
  ASSERT_TRUE(repairer.Init().ok());
  Tuple tuple = dirty_.tuple(0);
  repairer.RepairTuple(&tuple);
  // Every column of r1 is covered by some rule and ends up marked.
  EXPECT_EQ(tuple.CountPositive(), tuple.size());
  EXPECT_TRUE(tuple.WasRepaired(5));  // City was repaired
  EXPECT_EQ(tuple.OriginalValue(5), "Karcag");
}

TEST_F(RepairTest, RepairIsIdempotent) {
  FastRepairer repairer(kb_, dirty_.schema(), rules_);
  ASSERT_TRUE(repairer.Init().ok());
  Relation once = dirty_;
  repairer.RepairRelation(&once);
  Relation twice = once;
  FastRepairer second(kb_, dirty_.schema(), rules_);
  ASSERT_TRUE(second.Init().ok());
  second.RepairRelation(&twice);
  for (size_t row = 0; row < once.num_tuples(); ++row) {
    EXPECT_EQ(twice.tuple(row).values(), once.tuple(row).values());
  }
}

TEST_F(RepairTest, StatsAreConsistent) {
  FastRepairer repairer(kb_, dirty_.schema(), rules_);
  ASSERT_TRUE(repairer.Init().ok());
  Relation repaired = dirty_;
  repairer.RepairRelation(&repaired);
  const RepairStats& stats = repairer.stats();
  EXPECT_EQ(stats.tuples_processed, 4u);
  EXPECT_GT(stats.rule_checks, 0u);
  EXPECT_GE(stats.rule_checks, stats.rule_applications);
  // repairs counts rewritten cells: each kRepair application rewrites one,
  // and proof-positive normalizations (typo fixes) add more.
  EXPECT_GE(stats.proofs_positive + stats.repairs, stats.rule_applications);
  EXPECT_GT(stats.cells_marked, 0u);
}

TEST_F(RepairTest, UnusableRulesNeverFire) {
  KbBuilder b;
  b.AddClass("unrelated");
  KnowledgeBase empty_kb = std::move(b).Freeze();
  FastRepairer repairer(empty_kb, dirty_.schema(), rules_);
  ASSERT_TRUE(repairer.Init().ok());
  EXPECT_EQ(repairer.engine().num_usable_rules(), 0u);
  Relation repaired = dirty_;
  repairer.RepairRelation(&repaired);
  for (size_t row = 0; row < repaired.num_tuples(); ++row) {
    EXPECT_EQ(repaired.tuple(row).values(), dirty_.tuple(row).values());
  }
}

// ---- Multi-version (§IV-C) -----------------------------------------------------

TEST_F(RepairTest, MultiVersionExample10) {
  FastRepairer repairer(kb_, dirty_.schema(), rules_);
  ASSERT_TRUE(repairer.Init().ok());
  std::vector<Tuple> versions = repairer.RepairMultiVersion(dirty_.tuple(3));
  ASSERT_EQ(versions.size(), 2u);
  // One fixpoint per institution, each with its consistent city.
  EXPECT_EQ(versions[0].value(4), "UC Berkeley");
  EXPECT_EQ(versions[0].value(5), "Berkeley");
  EXPECT_EQ(versions[1].value(4), "University of Manchester");
  EXPECT_EQ(versions[1].value(5), "Manchester");
}

TEST_F(RepairTest, MultiVersionSingleFixpointForUnambiguousTuples) {
  FastRepairer repairer(kb_, dirty_.schema(), rules_);
  ASSERT_TRUE(repairer.Init().ok());
  for (size_t row : {0u, 1u, 2u}) {
    std::vector<Tuple> versions = repairer.RepairMultiVersion(dirty_.tuple(row));
    ASSERT_EQ(versions.size(), 1u) << "row " << row;
    EXPECT_EQ(versions[0].values(), clean_.tuple(row).values());
  }
}

TEST_F(RepairTest, MultiVersionRespectsCap) {
  RepairOptions options;
  options.max_versions = 1;
  FastRepairer repairer(kb_, dirty_.schema(), rules_, options);
  ASSERT_TRUE(repairer.Init().ok());
  EXPECT_EQ(repairer.RepairMultiVersion(dirty_.tuple(3)).size(), 1u);
}

// ---- Church–Rosser property ------------------------------------------------------

/// For a consistent rule set, both algorithms and all matcher configurations
/// must agree on every fixpoint — swept over noisy variants of the Nobel
/// dataset.
class ChurchRosserProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChurchRosserProperty, BasicAndFastAgree) {
  NobelOptions nobel_options;
  nobel_options.num_laureates = 40;
  nobel_options.seed = GetParam();
  Dataset dataset = GenerateNobel(nobel_options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);

  Relation dirty = dataset.clean;
  ErrorSpec spec;
  spec.error_rate = 0.15;
  spec.seed = GetParam() * 31 + 1;
  InjectErrors(&dirty, spec, dataset.alternatives);

  RepairOptions basic_options;
  basic_options.matcher.use_signature_index = false;
  basic_options.matcher.use_value_memo = false;
  BasicRepairer basic(kb, dirty.schema(), dataset.rules, basic_options);
  ASSERT_TRUE(basic.Init().ok());
  Relation by_basic = dirty;
  basic.RepairRelation(&by_basic);

  FastRepairer fast(kb, dirty.schema(), dataset.rules);
  ASSERT_TRUE(fast.Init().ok());
  Relation by_fast = dirty;
  fast.RepairRelation(&by_fast);

  for (size_t row = 0; row < dirty.num_tuples(); ++row) {
    EXPECT_EQ(by_basic.tuple(row).values(), by_fast.tuple(row).values())
        << "row " << row << " dirty=" << dirty.tuple(row).ToString();
    EXPECT_EQ(by_basic.tuple(row).CountPositive(),
              by_fast.tuple(row).CountPositive())
        << "row " << row;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurchRosserProperty,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace detective
