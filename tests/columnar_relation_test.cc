// Tests for the columnar Relation storage: the checkout/commit row bridge,
// repair provenance transfer, arena view stability, deep-copy semantics,
// stable row ids, and the columnar-vs-row equivalence round trip (a relation
// rebuilt row-by-row through materialized Tuples is byte-identical).

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "relation/relation.h"

namespace detective {
namespace {

Relation BuildSmall() {
  Relation r{Schema({"Name", "Inst", "City"})};
  EXPECT_TRUE(r.Append({"Avram Hershko", "Technion", "Karcag"}).ok());
  EXPECT_TRUE(r.Append({"Dan Shechtman", "Technion", "Haifa"}).ok());
  EXPECT_TRUE(r.Append({"Ada Yonath", "Weizmann", "Rehovot"}).ok());
  return r;
}

TEST(ColumnarRelationTest, CheckoutCommitRoundTrip) {
  Relation r = BuildSmall();
  Tuple t = r.tuple(0);
  EXPECT_EQ(t.value(2), "Karcag");
  t.Repair(2, "Haifa");
  t.MarkPositive(1);
  r.CommitRow(0, t);

  EXPECT_EQ(r.value(0, 2), "Haifa");
  EXPECT_TRUE(r.WasRepaired(0, 2));
  EXPECT_EQ(r.OriginalValue(0, 2), "Karcag");
  EXPECT_TRUE(r.IsPositive(0, 1));
  EXPECT_FALSE(r.IsPositive(0, 0));
  EXPECT_EQ(r.CountRepairedCells(), 1u);
  EXPECT_EQ(r.CountPositiveCells(), 1u);

  // A second checkout carries the provenance back out.
  Tuple again = r.tuple(0);
  EXPECT_TRUE(again.WasRepaired(2));
  EXPECT_EQ(again.OriginalValue(2), "Karcag");
  EXPECT_TRUE(again.IsPositive(1));

  // A second repair (new checkout) keeps the first original.
  again.Repair(2, "Tel Aviv");
  r.CommitRow(0, again);
  EXPECT_EQ(r.value(0, 2), "Tel Aviv");
  EXPECT_EQ(r.OriginalValue(0, 2), "Karcag");
}

TEST(ColumnarRelationTest, CommitMergesMarksMonotonically) {
  Relation r = BuildSmall();
  // A checkout taken before the mark carries kUnknown for the cell;
  // committing it back must not clear the mark meanwhile placed on the
  // relation (positive marks are monotone).
  Tuple stale = r.tuple(1);
  r.MarkPositive(1, 0);
  r.CommitRow(1, stale);
  EXPECT_TRUE(r.IsPositive(1, 0));
}

TEST(ColumnarRelationTest, RepairCellMirrorsTupleRepair) {
  Relation r = BuildSmall();
  r.RepairCell(2, 2, "Jerusalem");
  EXPECT_EQ(r.value(2, 2), "Jerusalem");
  EXPECT_TRUE(r.WasRepaired(2, 2));
  EXPECT_EQ(r.OriginalValue(2, 2), "Rehovot");
  r.RepairCell(2, 2, "Haifa");
  EXPECT_EQ(r.OriginalValue(2, 2), "Rehovot");  // original survives re-repair
  EXPECT_EQ(r.CountRepairedCells(), 1u);
}

TEST(ColumnarRelationTest, ArenaViewsSurviveLaterWrites) {
  Relation r = BuildSmall();
  std::string_view before = r.value(0, 0);
  // Force many re-interns; arena blocks must never move or reuse live bytes.
  for (int i = 0; i < 2000; ++i) {
    r.SetValue(1, 0, "value-" + std::to_string(i));
  }
  EXPECT_EQ(before, "Avram Hershko");
  EXPECT_EQ(r.value(1, 0), "value-1999");
}

TEST(ColumnarRelationTest, DeepCopyIsIndependent) {
  Relation r = BuildSmall();
  r.RepairCell(0, 2, "Haifa");
  r.MarkPositive(0, 2);

  Relation copy = r;
  EXPECT_EQ(copy.ToCsv(), r.ToCsv());
  EXPECT_TRUE(copy.WasRepaired(0, 2));
  EXPECT_EQ(copy.OriginalValue(0, 2), "Karcag");
  EXPECT_TRUE(copy.IsPositive(0, 2));
  EXPECT_EQ(copy.row_id(2), r.row_id(2));

  copy.SetValue(1, 1, "MIT");
  EXPECT_EQ(copy.value(1, 1), "MIT");
  EXPECT_EQ(r.value(1, 1), "Technion");  // the source is untouched

  r = copy;  // copy-assign back
  EXPECT_EQ(r.value(1, 1), "MIT");
}

TEST(ColumnarRelationTest, RowIdsAreStableAndAppendOrdered) {
  Relation r = BuildSmall();
  EXPECT_EQ(r.row_id(0), 0u);
  EXPECT_EQ(r.row_id(2), 2u);
  ASSERT_TRUE(r.Append({"x", "y", "z"}).ok());
  EXPECT_EQ(r.row_id(3), 3u);
  // Mutation never renumbers rows.
  r.SetValue(0, 0, "overwritten");
  EXPECT_EQ(r.row_id(0), 0u);
}

TEST(ColumnarRelationTest, ColumnStreamingAccessors) {
  Relation r = BuildSmall();
  const Column& inst = r.column(1);
  ASSERT_EQ(inst.size(), 3u);
  EXPECT_EQ(inst.value(0), "Technion");
  EXPECT_EQ(inst.value(2), "Weizmann");
  EXPECT_GT(inst.bytes_used(), 0u);
  r.RepairCell(0, 1, "MIT");
  EXPECT_TRUE(inst.WasRepaired(0));
  EXPECT_EQ(inst.original(0), "Technion");
}

// The columnar-vs-row equivalence round trip: rebuilding a relation row by
// row through materialized Tuples (the row representation) reproduces the
// columnar original byte for byte — values, marks, and repair provenance.
TEST(ColumnarRelationTest, RowMaterializationRoundTripIsLossless) {
  Relation r = BuildSmall();
  r.RepairCell(0, 2, "Haifa");
  r.MarkPositive(0, 2);
  r.MarkPositive(1, 0);
  r.RepairCell(2, 0, "A. Yonath");

  Relation rebuilt{r.schema()};
  for (size_t row = 0; row < r.num_tuples(); ++row) {
    rebuilt.Append(r.tuple(row));
  }

  ASSERT_EQ(rebuilt.num_tuples(), r.num_tuples());
  EXPECT_EQ(rebuilt.ToCsv(), r.ToCsv());
  for (size_t row = 0; row < r.num_tuples(); ++row) {
    for (ColumnIndex c = 0; c < r.schema().num_columns(); ++c) {
      SCOPED_TRACE("row=" + std::to_string(row) + " c=" + std::to_string(c));
      EXPECT_EQ(rebuilt.value(row, c), r.value(row, c));
      EXPECT_EQ(rebuilt.mark(row, c), r.mark(row, c));
      EXPECT_EQ(rebuilt.WasRepaired(row, c), r.WasRepaired(row, c));
      if (r.WasRepaired(row, c)) {
        EXPECT_EQ(rebuilt.OriginalValue(row, c), r.OriginalValue(row, c));
      }
    }
  }
}

TEST(ColumnarRelationTest, CommitOfUnchangedCheckoutIsANoOp) {
  Relation r = BuildSmall();
  std::string csv = r.ToCsv();
  size_t bytes = r.column(0).bytes_used();
  r.CommitRow(1, r.tuple(1));
  EXPECT_EQ(r.ToCsv(), csv);
  EXPECT_EQ(r.CountRepairedCells(), 0u);
  EXPECT_EQ(r.column(0).bytes_used(), bytes);  // nothing re-interned
}

}  // namespace
}  // namespace detective
