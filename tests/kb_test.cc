// Unit tests for src/kb: builder, taxonomy closure, graph queries, and the
// hand-rolled N-Triples / TSV parsers.

#include <gtest/gtest.h>

#include <algorithm>

#include "kb/knowledge_base.h"
#include "kb/ntriples_parser.h"
#include "test_fixtures.h"

namespace detective {
namespace {

KnowledgeBase SmallKb() {
  KbBuilder b;
  ClassId city = b.AddClass("city", {"populated place"});
  ClassId country = b.AddClass("country", {"populated place"});
  RelationId located = b.AddRelation("locatedIn");
  RelationId capital = b.AddRelation("hasCapital");
  ItemId israel = b.AddEntity("Israel", {country});
  ItemId haifa = b.AddEntity("Haifa", {city});
  ItemId jerusalem = b.AddEntity("Jerusalem", {city});
  b.AddEdge(haifa, located, israel);
  b.AddEdge(jerusalem, located, israel);
  b.AddEdge(israel, capital, jerusalem);
  return std::move(b).Freeze();
}

// ---- Builder + queries -----------------------------------------------------

TEST(KbBuilderTest, VocabularyLookups) {
  KnowledgeBase kb = SmallKb();
  EXPECT_TRUE(kb.FindClass("city").valid());
  EXPECT_TRUE(kb.FindClass("populated place").valid());
  EXPECT_FALSE(kb.FindClass("planet").valid());
  EXPECT_TRUE(kb.FindRelation("locatedIn").valid());
  EXPECT_FALSE(kb.FindRelation("flowsInto").valid());
  EXPECT_EQ(kb.ClassName(kb.FindClass("city")), "city");
  EXPECT_EQ(kb.RelationName(kb.FindRelation("hasCapital")), "hasCapital");
}

TEST(KbBuilderTest, CountsAreAccurate) {
  KnowledgeBase kb = SmallKb();
  EXPECT_EQ(kb.num_entities(), 3u);
  EXPECT_EQ(kb.num_items(), 3u);  // no literals
  EXPECT_EQ(kb.num_edges(), 3u);
  EXPECT_EQ(kb.num_relations(), 2u);
  // literal + city + country + populated place
  EXPECT_EQ(kb.num_classes(), 4u);
}

TEST(KbBuilderTest, LabelLookupIsNormalized) {
  KbBuilder b;
  ClassId city = b.AddClass("city");
  b.AddEntity("  New   York ", {city});
  KnowledgeBase kb = std::move(b).Freeze();
  ASSERT_EQ(kb.ItemsWithLabel("New York").size(), 1u);
  EXPECT_TRUE(kb.ItemsWithLabel("New   York").empty());  // queries are exact
}

TEST(KbBuilderTest, HomonymsAreDistinctEntities) {
  KbBuilder b;
  ClassId city = b.AddClass("city");
  ClassId person = b.AddClass("person");
  b.AddEntity("Paris", {city});
  b.AddEntity("Paris", {person});
  KnowledgeBase kb = std::move(b).Freeze();
  EXPECT_EQ(kb.ItemsWithLabel("Paris").size(), 2u);
}

TEST(KbBuilderTest, LiteralsAreDeduplicated) {
  KbBuilder b;
  ClassId person = b.AddClass("person");
  ItemId alice = b.AddEntity("Alice", {person});
  ItemId bob = b.AddEntity("Bob", {person});
  RelationId born = b.AddRelation("bornOnDate");
  ItemId d1 = b.AddLiteral("1901-01-01");
  ItemId d2 = b.AddLiteral("1901-01-01");
  EXPECT_EQ(d1, d2);
  b.AddEdge(alice, born, d1);
  b.AddEdge(bob, born, d2);
  KnowledgeBase kb = std::move(b).Freeze();
  EXPECT_EQ(kb.Subjects(kb.FindRelation("bornOnDate"), d1).size(), 2u);
  EXPECT_TRUE(kb.IsLiteral(d1));
  EXPECT_TRUE(kb.IsInstanceOf(d1, kb.literal_class()));
}

TEST(KbQueryTest, EdgeQueries) {
  KnowledgeBase kb = SmallKb();
  ItemId haifa = kb.ItemsWithLabel("Haifa")[0];
  ItemId israel = kb.ItemsWithLabel("Israel")[0];
  RelationId located = kb.FindRelation("locatedIn");
  EXPECT_TRUE(kb.HasEdge(haifa, located, israel));
  EXPECT_FALSE(kb.HasEdge(israel, located, haifa));
  ASSERT_EQ(kb.Objects(haifa, located).size(), 1u);
  EXPECT_EQ(kb.Objects(haifa, located)[0].target, israel);
  EXPECT_EQ(kb.Subjects(located, israel).size(), 2u);
  EXPECT_TRUE(kb.Objects(haifa, kb.FindRelation("hasCapital")).empty());
}

TEST(KbQueryTest, DuplicateEdgesAreDeduplicated) {
  KbBuilder b;
  ClassId c = b.AddClass("c");
  ItemId x = b.AddEntity("x", {c});
  ItemId y = b.AddEntity("y", {c});
  RelationId r = b.AddRelation("r");
  b.AddEdge(x, r, y);
  b.AddEdge(x, r, y);
  KnowledgeBase kb = std::move(b).Freeze();
  EXPECT_EQ(kb.OutEdges(x).size(), 1u);
  EXPECT_EQ(kb.num_edges(), 1u);
}

// ---- Taxonomy ---------------------------------------------------------------

TEST(TaxonomyTest, TransitiveClosure) {
  KbBuilder b;
  b.AddSubclass("laureate", "scientist");
  b.AddSubclass("scientist", "person");
  ClassId laureate = b.AddClass("laureate");
  ItemId alice = b.AddEntity("Alice", {laureate});
  KnowledgeBase kb = std::move(b).Freeze();

  ClassId person = kb.FindClass("person");
  ClassId scientist = kb.FindClass("scientist");
  EXPECT_TRUE(kb.IsSubclassOf(laureate, person));
  EXPECT_TRUE(kb.IsSubclassOf(laureate, laureate));
  EXPECT_FALSE(kb.IsSubclassOf(person, laureate));
  EXPECT_TRUE(kb.IsInstanceOf(alice, person));
  EXPECT_TRUE(kb.IsInstanceOf(alice, scientist));
  EXPECT_FALSE(kb.IsInstanceOf(alice, kb.literal_class()));
  // Instance lists include the closure.
  EXPECT_EQ(kb.InstancesOf(person).size(), 1u);
  EXPECT_EQ(kb.InstancesOf(laureate).size(), 1u);
}

TEST(TaxonomyTest, DiamondHierarchy) {
  KbBuilder b;
  b.AddSubclass("d", "b");
  b.AddSubclass("d", "c");
  b.AddSubclass("b", "a");
  b.AddSubclass("c", "a");
  ClassId d = b.AddClass("d");
  ItemId x = b.AddEntity("x", {d});
  KnowledgeBase kb = std::move(b).Freeze();
  ClassId a = kb.FindClass("a");
  EXPECT_TRUE(kb.IsInstanceOf(x, a));
  // Despite two paths, x appears once in a's instance list.
  EXPECT_EQ(kb.InstancesOf(a).size(), 1u);
  EXPECT_EQ(kb.AncestorsOf(d).size(), 4u);
}

TEST(TaxonomyTest, CycleIsRejected) {
  KbBuilder b;
  b.AddSubclass("a", "b");
  b.AddSubclass("b", "c");
  b.AddSubclass("c", "a");
  KnowledgeBase kb;
  EXPECT_TRUE(std::move(b).FreezeInto(&kb).IsInvalidArgument());
}

TEST(TaxonomyTest, MultipleDirectClasses) {
  KbBuilder b;
  ClassId writer = b.AddClass("writer");
  ClassId chemist = b.AddClass("chemist");
  ItemId alice = b.AddEntity("Alice", {writer, chemist});
  KnowledgeBase kb = std::move(b).Freeze();
  EXPECT_TRUE(kb.IsInstanceOf(alice, writer));
  EXPECT_TRUE(kb.IsInstanceOf(alice, chemist));
  EXPECT_EQ(kb.DirectClasses(alice).size(), 2u);
}

// ---- Parsers ------------------------------------------------------------------

TEST(NTriplesTest, ParsesBasicTriples) {
  auto kb = ParseNTriples(R"(
# laureates
<Avram_Hershko> <rdf:type> <laureate> .
<Avram_Hershko> <worksAt> <Technion> .
<Avram_Hershko> <bornOnDate> "1937-12-31" .
)");
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  ItemId hershko = kb->ItemsWithLabel("Avram Hershko")[0];
  EXPECT_TRUE(kb->IsInstanceOf(hershko, kb->FindClass("laureate")));
  EXPECT_EQ(kb->Objects(hershko, kb->FindRelation("worksAt")).size(), 1u);
  EXPECT_EQ(kb->Objects(hershko, kb->FindRelation("bornOnDate")).size(), 1u);
  ItemId dob = kb->Objects(hershko, kb->FindRelation("bornOnDate"))[0].target;
  EXPECT_TRUE(kb->IsLiteral(dob));
  EXPECT_EQ(kb->Label(dob), "1937-12-31");
}

TEST(NTriplesTest, SubclassAndExplicitClassDeclaration) {
  auto kb = ParseNTriples(R"(
<laureate> rdfs:subClassOf <person> .
<award> rdf:type <rdfs:Class> .
<X> rdf:type <laureate> .
)");
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  EXPECT_TRUE(kb->FindClass("award").valid());
  EXPECT_TRUE(kb->IsSubclassOf(kb->FindClass("laureate"), kb->FindClass("person")));
  ItemId x = kb->ItemsWithLabel("X")[0];
  EXPECT_TRUE(kb->IsInstanceOf(x, kb->FindClass("person")));
}

TEST(NTriplesTest, LabelsOverridePrettifiedIris) {
  auto kb = ParseNTriples(R"(
<e1> rdfs:label "Marie Curie" .
<e1> rdf:type <laureate> .
)");
  ASSERT_TRUE(kb.ok());
  EXPECT_EQ(kb->ItemsWithLabel("Marie Curie").size(), 1u);
  EXPECT_TRUE(kb->ItemsWithLabel("e1").empty());
}

TEST(NTriplesTest, LiteralEscapesAndTags) {
  auto kb = ParseNTriples(
      "<x> <says> \"he said \\\"hi\\\"\" .\n"
      "<x> <num> \"42\"^^<xsd:integer> .\n"
      "<x> <name> \"Jean\"@fr .\n");
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  ItemId x = kb->ItemsWithLabel("x")[0];
  EXPECT_EQ(kb->Label(kb->Objects(x, kb->FindRelation("says"))[0].target),
            "he said \"hi\"");
  EXPECT_EQ(kb->Label(kb->Objects(x, kb->FindRelation("num"))[0].target), "42");
  EXPECT_EQ(kb->Label(kb->Objects(x, kb->FindRelation("name"))[0].target), "Jean");
}

TEST(NTriplesTest, RejectsMalformedLines) {
  EXPECT_TRUE(ParseNTriples("<a> <b> <c>").status().IsParseError());    // no dot
  EXPECT_TRUE(ParseNTriples("<a> <b> .").status().IsParseError());      // no object
  EXPECT_TRUE(ParseNTriples("a <b> <c> .").status().IsParseError());    // bare subject
  EXPECT_TRUE(ParseNTriples("<a> <b> \"x .").status().IsParseError());  // open quote
  EXPECT_TRUE(ParseNTriples("<a> <b> <c> . junk").status().IsParseError());
}

TEST(NTriplesTest, ParseErrorsCarryByteOffsetAndOffendingLine) {
  // The bad record sits after two good 21-byte lines; the error must name
  // its byte offset into the input and quote the line itself.
  const std::string input =
      "<a> <locatedIn> <b> .\n"
      "<b> <locatedIn> <c> .\n"
      "<c> <locatedIn> broken .\n";
  auto result = ParseNTriples(input);
  ASSERT_FALSE(result.ok());
  const std::string message = result.status().ToString();
  EXPECT_NE(message.find("byte offset 44"), std::string::npos) << message;
  EXPECT_NE(message.find("<c> <locatedIn> broken ."), std::string::npos)
      << message;

  // Very long offending lines are truncated in the quote.
  const std::string long_line = "<d> <locatedIn> " + std::string(300, 'x');
  auto truncated = ParseNTriples(long_line);
  ASSERT_FALSE(truncated.ok());
  EXPECT_NE(truncated.status().ToString().find("\"..."), std::string::npos);
  EXPECT_LT(truncated.status().ToString().size(), 300u);
}

TEST(TsvTest, ParseErrorsCarryByteOffsetAndOffendingLine) {
  const std::string input = "a\trdf:type\tb\nbad line without tabs\n";
  auto result = ParseTsvTriples(input);
  ASSERT_FALSE(result.ok());
  const std::string message = result.status().ToString();
  EXPECT_NE(message.find("byte offset 13"), std::string::npos) << message;
  EXPECT_NE(message.find("bad line without tabs"), std::string::npos)
      << message;
}

TEST(NTriplesTest, UnderscoresBecomeSpaces) {
  auto kb = ParseNTriples("<New_York> <locatedIn> <United_States> .\n");
  ASSERT_TRUE(kb.ok());
  EXPECT_EQ(kb->ItemsWithLabel("New York").size(), 1u);
  EXPECT_EQ(kb->ItemsWithLabel("United States").size(), 1u);
}

TEST(NTriplesTest, RoundTripThroughToNTriples) {
  KnowledgeBase original = testing::BuildFigure1Kb();
  auto reparsed = ParseNTriples(ToNTriples(original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->num_entities(), original.num_entities());
  EXPECT_EQ(reparsed->num_edges(), original.num_edges());
  EXPECT_EQ(reparsed->num_relations(), original.num_relations());
  // Spot-check a fact survives: Hershko worksAt Technion.
  ItemId hershko = reparsed->ItemsWithLabel("Avram Hershko")[0];
  RelationId works = reparsed->FindRelation("worksAt");
  ASSERT_TRUE(works.valid());
  ASSERT_EQ(reparsed->Objects(hershko, works).size(), 1u);
  EXPECT_EQ(reparsed->Label(reparsed->Objects(hershko, works)[0].target),
            "Israel Institute of Technology");
  // Taxonomy survives too.
  EXPECT_TRUE(reparsed->IsSubclassOf(
      reparsed->FindClass("Nobel laureates in Chemistry"),
      reparsed->FindClass("person")));
}

TEST(TsvTest, ParsesTabSeparatedTriples) {
  auto kb = ParseTsvTriples(
      "Haifa\tlocatedIn\tIsrael\n"
      "Haifa\trdf:type\tcity\n"
      "Haifa\tfoundedOn\t\"1905\"\n");
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  ItemId haifa = kb->ItemsWithLabel("Haifa")[0];
  EXPECT_TRUE(kb->IsInstanceOf(haifa, kb->FindClass("city")));
  EXPECT_EQ(kb->Objects(haifa, kb->FindRelation("locatedIn")).size(), 1u);
  EXPECT_TRUE(
      kb->IsLiteral(kb->Objects(haifa, kb->FindRelation("foundedOn"))[0].target));
}

TEST(TsvTest, RejectsWrongColumnCount) {
  EXPECT_TRUE(ParseTsvTriples("a\tb\n").status().IsParseError());
  EXPECT_TRUE(ParseTsvTriples("a\tb\tc\td\n").status().IsParseError());
}

TEST(TsvTest, RoundTripThroughToTsvTriples) {
  KnowledgeBase original = testing::BuildFigure1Kb();
  auto reparsed = ParseTsvTriples(ToTsvTriples(original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->num_entities(), original.num_entities());
  EXPECT_EQ(reparsed->num_edges(), original.num_edges());
  ItemId calvin = reparsed->ItemsWithLabel("Melvin Calvin")[0];
  RelationId works = reparsed->FindRelation("worksAt");
  ASSERT_TRUE(works.valid());
  EXPECT_EQ(reparsed->Objects(calvin, works).size(), 2u);  // Example 10 intact
}

TEST(KbDebugTest, SummaryMentionsCounts) {
  std::string summary = SmallKb().DebugSummary();
  EXPECT_NE(summary.find("entities=3"), std::string::npos);
  EXPECT_NE(summary.find("edges=3"), std::string::npos);
}

}  // namespace
}  // namespace detective
