// Tests for core/consistency (§III-C): the dataset-specific PTIME check,
// including a deliberately inconsistent rule set that the checker must
// expose with a witness.

#include <gtest/gtest.h>

#include "core/consistency.h"
#include "test_fixtures.h"

namespace detective {
namespace {

TEST(ConsistencyTest, Figure4RulesAreConsistentOnTableI) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  auto report = CheckConsistency(kb, testing::BuildFigure4Rules(),
                                 testing::BuildTableI());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->consistent) << report->ToString();
  EXPECT_TRUE(report->exhaustive);  // 4! = 24 orders all enumerated
  EXPECT_EQ(report->tuples_checked, 4u);
  EXPECT_EQ(report->orders_per_tuple, 24u);
}

TEST(ConsistencyTest, EmptyRuleSetIsTriviallyConsistent) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  auto report = CheckConsistency(kb, {}, testing::BuildTableI());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent);
}

TEST(ConsistencyTest, SchemaMismatchIsAnError) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  Relation wrong{Schema({"A", "B"})};
  ASSERT_TRUE(wrong.Append({"x", "y"}).ok());
  EXPECT_FALSE(CheckConsistency(kb, testing::BuildFigure4Rules(), wrong).ok());
}

/// Two rules that repair the same column from different, conflicting
/// evidence: whichever runs first marks the cell positive and blocks the
/// other, so different orders reach different fixpoints.
TEST(ConsistencyTest, DetectsConflictingRules) {
  KbBuilder b;
  ClassId person = b.AddClass("person");
  ClassId city = b.AddClass("city");
  RelationId lives = b.AddRelation("livesIn");
  RelationId works = b.AddRelation("worksIn");
  RelationId born = b.AddRelation("bornIn");
  ItemId alice = b.AddEntity("Alice", {person});
  ItemId rome = b.AddEntity("Rome", {city});
  ItemId oslo = b.AddEntity("Oslo", {city});
  ItemId cairo = b.AddEntity("Cairo", {city});
  b.AddEdge(alice, lives, rome);
  b.AddEdge(alice, works, oslo);
  b.AddEdge(alice, born, cairo);
  KnowledgeBase kb = std::move(b).Freeze();

  // Rule A: City should be where Alice lives (negative: born city).
  // Rule B: City should be where Alice works (negative: born city).
  // On t = (Alice, Cairo), A repairs to Rome and B to Oslo.
  auto make = [&](const char* name, const char* pos_rel) {
    SchemaMatchingGraph g;
    uint32_t e = g.AddNode({"Name", "person", Similarity::Equality()});
    uint32_t p = g.AddNode({"City", "city", Similarity::Equality()});
    uint32_t n = g.AddNode({"City", "city", Similarity::Equality()});
    g.AddEdge(e, p, pos_rel).Abort("e");
    g.AddEdge(e, n, "bornIn").Abort("e");
    return DetectiveRule(name, g, p, n);
  };
  std::vector<DetectiveRule> rules = {make("via_lives", "livesIn"),
                                      make("via_works", "worksIn")};

  Relation table{Schema({"Name", "City"})};
  ASSERT_TRUE(table.Append({"Alice", "Cairo"}).ok());

  auto report = CheckConsistency(kb, rules, table);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->consistent);
  EXPECT_EQ(report->witness_row, 0u);
  EXPECT_NE(report->witness_fixpoint_a, report->witness_fixpoint_b);
  // The witness fixpoints carry the two competing repairs.
  std::string both = report->witness_fixpoint_a + report->witness_fixpoint_b;
  EXPECT_NE(both.find("Rome"), std::string::npos);
  EXPECT_NE(both.find("Oslo"), std::string::npos);
}

TEST(ConsistencyTest, SamplingCapsTuples) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  ConsistencyOptions options;
  options.max_tuples = 2;
  auto report = CheckConsistency(kb, testing::BuildFigure4Rules(),
                                 testing::BuildTableI(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->tuples_checked, 2u);
}

TEST(ConsistencyTest, ReportToStringIsInformative) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  auto report = CheckConsistency(kb, testing::BuildFigure4Rules(),
                                 testing::BuildTableI());
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->ToString().find("consistent"), std::string::npos);
}

}  // namespace
}  // namespace detective
