// Unit tests for core/matching_graph, core/rule, core/rule_io: graph
// validation, rule well-formedness (§II-C), rule merging (§III-A S3), and
// the rule DSL round-trip.

#include <gtest/gtest.h>

#include "core/matching_graph.h"
#include "core/rule.h"
#include "core/rule_io.h"
#include "test_fixtures.h"

namespace detective {
namespace {

SchemaMatchingGraph TwoNodeGraph(const std::string& relation = "worksAt") {
  SchemaMatchingGraph g;
  uint32_t a = g.AddNode({"Name", "person", Similarity::Equality()});
  uint32_t b = g.AddNode({"Institution", "organization", Similarity::EditDistance(2)});
  g.AddEdge(a, b, relation).Abort("edge");
  return g;
}

// ---- SchemaMatchingGraph ----------------------------------------------------

TEST(MatchingGraphTest, ValidGraphPasses) {
  EXPECT_TRUE(TwoNodeGraph().Validate().ok());
}

TEST(MatchingGraphTest, EmptyGraphFails) {
  EXPECT_TRUE(SchemaMatchingGraph().Validate().IsInvalidArgument());
}

TEST(MatchingGraphTest, DuplicateColumnsFail) {
  SchemaMatchingGraph g;
  g.AddNode({"Name", "person", Similarity::Equality()});
  g.AddNode({"Name", "city", Similarity::Equality()});
  EXPECT_TRUE(g.Validate().IsInvalidArgument());
}

TEST(MatchingGraphTest, DisconnectedGraphFails) {
  SchemaMatchingGraph g;
  g.AddNode({"A", "person", Similarity::Equality()});
  g.AddNode({"B", "city", Similarity::Equality()});
  EXPECT_TRUE(g.Validate().IsInvalidArgument());
}

TEST(MatchingGraphTest, SelfLoopRejected) {
  SchemaMatchingGraph g;
  uint32_t a = g.AddNode({"A", "person", Similarity::Equality()});
  EXPECT_TRUE(g.AddEdge(a, a, "r").IsInvalidArgument());
}

TEST(MatchingGraphTest, EdgeOutOfRangeRejected) {
  SchemaMatchingGraph g;
  g.AddNode({"A", "person", Similarity::Equality()});
  EXPECT_TRUE(g.AddEdge(0, 5, "r").IsInvalidArgument());
}

TEST(MatchingGraphTest, FindNodeByColumn) {
  SchemaMatchingGraph g = TwoNodeGraph();
  EXPECT_EQ(g.FindNodeByColumn("Institution"), 1u);
  EXPECT_EQ(g.FindNodeByColumn("Missing"), g.nodes().size());
}

TEST(MatchingGraphTest, ConnectedWithout) {
  // Path A - B - C: dropping B disconnects it.
  SchemaMatchingGraph g;
  uint32_t a = g.AddNode({"A", "t", Similarity::Equality()});
  uint32_t b = g.AddNode({"B", "t2", Similarity::Equality()});
  uint32_t c = g.AddNode({"C", "t3", Similarity::Equality()});
  g.AddEdge(a, b, "r1").Abort("e");
  g.AddEdge(b, c, "r2").Abort("e");
  EXPECT_TRUE(g.Connected());
  EXPECT_FALSE(g.ConnectedWithout(b));
  EXPECT_TRUE(g.ConnectedWithout(a));
  EXPECT_TRUE(g.ConnectedWithout(c));
}

TEST(MatchingGraphTest, EquivalentExceptNode) {
  SchemaMatchingGraph g1 = TwoNodeGraph("worksAt");
  SchemaMatchingGraph g2 = TwoNodeGraph("graduatedFrom");
  // Dropping the Institution node (index 1) leaves just the Name node.
  EXPECT_TRUE(SchemaMatchingGraph::EquivalentExceptNode(g1, 1, g2, 1));
  // Dropping the Name node leaves differing edges? No — edges touching the
  // dropped node are removed, so both reduce to the bare Institution node.
  EXPECT_TRUE(SchemaMatchingGraph::EquivalentExceptNode(g1, 0, g2, 0));
  // Without dropping the differing edge's node, graphs differ.
  SchemaMatchingGraph g3 = TwoNodeGraph("worksAt");
  uint32_t extra = const_cast<SchemaMatchingGraph&>(g3).AddNode(
      {"City", "city", Similarity::Equality()});
  g3.AddEdge(1, extra, "locatedIn").Abort("e");
  EXPECT_FALSE(SchemaMatchingGraph::EquivalentExceptNode(g1, 0, g3, 0));
}

// ---- DetectiveRule ------------------------------------------------------------

TEST(RuleTest, Figure4RulesAreValid) {
  for (const DetectiveRule& rule : testing::BuildFigure4Rules()) {
    EXPECT_TRUE(rule.Validate().ok()) << rule.name();
  }
}

TEST(RuleTest, EvidenceAccessors) {
  std::vector<DetectiveRule> rules = testing::BuildFigure4Rules();
  const DetectiveRule& phi2 = rules[1];
  EXPECT_EQ(phi2.name(), "phi2");
  EXPECT_EQ(phi2.TargetColumn(), "City");
  EXPECT_EQ(phi2.EvidenceColumns(),
            (std::vector<std::string>{"Name", "Institution"}));
  EXPECT_EQ(phi2.EvidenceNodes().size(), 2u);
}

TEST(RuleTest, MismatchedTargetColumnsRejected) {
  SchemaMatchingGraph g;
  uint32_t a = g.AddNode({"Name", "person", Similarity::Equality()});
  uint32_t p = g.AddNode({"City", "city", Similarity::Equality()});
  uint32_t n = g.AddNode({"Country", "country", Similarity::Equality()});
  g.AddEdge(a, p, "livesIn").Abort("e");
  g.AddEdge(a, n, "bornIn").Abort("e");
  DetectiveRule rule("bad", g, p, n);
  EXPECT_TRUE(rule.Validate().IsInvalidArgument());
}

TEST(RuleTest, EdgeBetweenPandNRejected) {
  SchemaMatchingGraph g;
  uint32_t a = g.AddNode({"Name", "person", Similarity::Equality()});
  uint32_t p = g.AddNode({"City", "city", Similarity::Equality()});
  uint32_t n = g.AddNode({"City", "city", Similarity::Equality()});
  g.AddEdge(a, p, "livesIn").Abort("e");
  g.AddEdge(p, n, "near").Abort("e");
  DetectiveRule rule("bad", g, p, n);
  EXPECT_TRUE(rule.Validate().IsInvalidArgument());
}

TEST(RuleTest, DisconnectedNegativeSideRejected) {
  SchemaMatchingGraph g;
  uint32_t a = g.AddNode({"Name", "person", Similarity::Equality()});
  uint32_t p = g.AddNode({"City", "city", Similarity::Equality()});
  g.AddNode({"City", "city", Similarity::Equality()});  // n, no edges
  g.AddEdge(a, p, "livesIn").Abort("e");
  DetectiveRule rule("bad", g, 1, 2);
  EXPECT_TRUE(rule.Validate().IsInvalidArgument());
}

TEST(RuleTest, NeedsEvidence) {
  SchemaMatchingGraph g;
  g.AddNode({"City", "city", Similarity::Equality()});
  g.AddNode({"City", "city", Similarity::Equality()});
  DetectiveRule rule("bad", g, 0, 1);
  EXPECT_TRUE(rule.Validate().IsInvalidArgument());
}

TEST(RuleTest, MergeIntoRuleBuildsPhi1Shape) {
  // Positive: Name -worksAt-> Institution; negative: Name -graduatedFrom->.
  SchemaMatchingGraph positive = TwoNodeGraph("worksAt");
  SchemaMatchingGraph negative = TwoNodeGraph("graduatedFrom");
  auto rule = MergeIntoRule("merged", positive, negative, "Institution");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_TRUE(rule->Validate().ok());
  EXPECT_EQ(rule->TargetColumn(), "Institution");
  EXPECT_EQ(rule->EvidenceColumns(), (std::vector<std::string>{"Name"}));
  EXPECT_EQ(rule->graph().edges().size(), 2u);
}

TEST(RuleTest, MergeRejectsDivergentEvidence) {
  SchemaMatchingGraph positive = TwoNodeGraph("worksAt");
  SchemaMatchingGraph negative;
  uint32_t a = negative.AddNode({"Name", "city", Similarity::Equality()});  // type differs
  uint32_t b =
      negative.AddNode({"Institution", "organization", Similarity::EditDistance(2)});
  negative.AddEdge(a, b, "graduatedFrom").Abort("e");
  EXPECT_FALSE(MergeIntoRule("bad", positive, negative, "Institution").ok());
}

TEST(RuleTest, MergeRejectsMissingTarget) {
  SchemaMatchingGraph g = TwoNodeGraph();
  EXPECT_FALSE(MergeIntoRule("bad", g, g, "City").ok());
}

// ---- Rule DSL -------------------------------------------------------------------

TEST(RuleIoTest, FormatParseRoundTrip) {
  std::vector<DetectiveRule> rules = testing::BuildFigure4Rules();
  auto reparsed = ParseRules(FormatRules(rules));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->size(), rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ((*reparsed)[i], rules[i]) << rules[i].name();
  }
}

TEST(RuleIoTest, QuotedValuesAndComments) {
  auto rules = ParseRules(R"(
# leading comment
RULE r1
NODE a col="Full Name" type="Nobel laureates in Chemistry" sim="="
POS  p col=City type=city sim="ED,2"  # trailing comment
NEG  n col=City type=city
EDGE a "lives in" p
EDGE a wasBornIn n
END
)");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules->size(), 1u);
  const DetectiveRule& rule = (*rules)[0];
  EXPECT_EQ(rule.graph().node(0).column, "Full Name");
  EXPECT_EQ(rule.graph().edges()[0].relation, "lives in");
  // NEG without sim defaults to equality.
  EXPECT_EQ(rule.graph().node(rule.negative_node()).sim, Similarity::Equality());
}

TEST(RuleIoTest, Errors) {
  EXPECT_TRUE(ParseRules("NODE a col=x type=t\n").status().IsParseError());
  EXPECT_TRUE(ParseRules("RULE r\nEND\n").status().IsParseError());  // no nodes
  EXPECT_TRUE(ParseRules("RULE r\nRULE s\n").status().IsParseError());
  EXPECT_TRUE(ParseRules("RULE r\nNODE a col=x type=t\n").status().IsParseError());
  EXPECT_TRUE(
      ParseRules("RULE r\nNODE a col=x bogus=1\nEND\n").status().IsParseError());
  EXPECT_TRUE(ParseRules("RULE r\nEDGE a b\nEND\n").status().IsParseError());
  EXPECT_TRUE(ParseRules("FROB x\n").status().IsParseError());
}

TEST(RuleIoTest, DuplicateAliasRejected) {
  EXPECT_TRUE(ParseRules(R"(
RULE r
NODE a col=x type=t
NODE a col=y type=t2
END
)")
                  .status()
                  .IsParseError());
}

TEST(RuleIoTest, UnknownEdgeAliasRejected) {
  EXPECT_TRUE(ParseRules(R"(
RULE r
NODE a col=x type=t
POS  p col=y type=t2
NEG  n col=y type=t2
EDGE a r1 p
EDGE a r2 q
END
)")
                  .status()
                  .IsParseError());
}

TEST(RuleIoTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/rules.dr";
  std::vector<DetectiveRule> rules = testing::BuildFigure4Rules();
  ASSERT_TRUE(WriteRulesFile(path, rules).ok());
  auto loaded = ParseRulesFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), rules.size());
}

}  // namespace
}  // namespace detective
