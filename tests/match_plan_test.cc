// Tests for core/match_plan: the frozen shared plan must expose exactly the
// indexes the bound rules need, candidate-for-candidate identical to the
// private per-matcher builds it replaces, at any build parallelism.

#include <gtest/gtest.h>

#include <vector>

#include "common/metrics.h"
#include "core/match_plan.h"
#include "core/repair.h"
#include "test_fixtures.h"

namespace detective {
namespace {

/// Binds the Fig. 4 rules against the Fig. 1 KB and Table I schema.
struct BoundFixture {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  Relation relation = testing::BuildTableI();
  RuleEngine engine{kb, relation.schema(), testing::BuildFigure4Rules()};

  BoundFixture() { EXPECT_TRUE(engine.Init().ok()); }
};

/// Every distinct non-equality (type, sim) pair of column-bearing nodes.
std::vector<std::pair<ClassId, Similarity>> FuzzyPairs(
    std::span<const BoundRule> rules) {
  std::vector<std::pair<ClassId, Similarity>> pairs;
  for (const BoundRule& rule : rules) {
    if (!rule.usable) continue;
    for (const BoundNode& node : rule.nodes) {
      if (node.IsExistential()) continue;
      if (node.sim.kind() == SimilarityKind::kEquality) continue;
      const auto pair = std::make_pair(node.type, node.sim);
      if (std::find(pairs.begin(), pairs.end(), pair) == pairs.end()) {
        pairs.push_back(pair);
      }
    }
  }
  return pairs;
}

/// The private index a matcher would lazily build for (type, sim).
SignatureIndex BuildPrivateIndex(const KnowledgeBase& kb, ClassId type,
                                 const Similarity& sim) {
  SignatureIndex index(sim);
  for (ItemId item : kb.InstancesOf(type)) {
    index.Add(item.value(), kb.Label(item));
  }
  index.Build();
  return index;
}

/// Every cell value of Table I plus a couple of typos — the query mix the
/// repair loop sends at the indexes.
std::vector<std::string> QueryMix(const Relation& relation) {
  std::vector<std::string> queries;
  for (size_t row = 0; row < relation.num_tuples(); ++row) {
    for (ColumnIndex c = 0; c < relation.tuple(row).size(); ++c) {
      queries.push_back(relation.tuple(row).value(c));
    }
  }
  queries.emplace_back("Paster Institute");
  queries.emplace_back("Colombia University");
  queries.emplace_back("");
  return queries;
}

TEST(MatchPlanTest, CoversExactlyTheFuzzyPairsOfTheBoundRules) {
  BoundFixture fx;
  const auto pairs = FuzzyPairs(fx.engine.bound_rules());
  ASSERT_FALSE(pairs.empty());  // Fig. 4 rules carry ED,2 organization nodes

  MatchPlan plan = MatchPlan::Build(fx.kb, fx.engine.bound_rules(), 1);
  EXPECT_EQ(plan.num_indexes(), pairs.size());
  for (const auto& [type, sim] : pairs) {
    EXPECT_NE(plan.IndexFor(type, sim), nullptr);
  }
  // Equality never gets a plan entry (the KB label hash index serves it).
  EXPECT_EQ(plan.IndexFor(pairs[0].first, Similarity::Equality()), nullptr);
}

TEST(MatchPlanTest, PlanIndexesMatchPrivateBuildsCandidateForCandidate) {
  BoundFixture fx;
  MatchPlan plan = MatchPlan::Build(fx.kb, fx.engine.bound_rules(), 1);
  const std::vector<std::string> queries = QueryMix(fx.relation);

  for (const auto& [type, sim] : FuzzyPairs(fx.engine.bound_rules())) {
    const SignatureIndex* shared = plan.IndexFor(type, sim);
    ASSERT_NE(shared, nullptr);
    SignatureIndex private_index = BuildPrivateIndex(fx.kb, type, sim);
    ASSERT_EQ(shared->size(), private_index.size());
    for (const std::string& query : queries) {
      EXPECT_EQ(shared->Candidates(query), private_index.Candidates(query))
          << "query='" << query << "'";
      EXPECT_EQ(shared->Matches(query), private_index.Matches(query))
          << "query='" << query << "'";
    }
  }
}

TEST(MatchPlanTest, BuildIsDeterministicAcrossThreadCounts) {
  BoundFixture fx;
  MatchPlan one = MatchPlan::Build(fx.kb, fx.engine.bound_rules(), 1);
  MatchPlan eight = MatchPlan::Build(fx.kb, fx.engine.bound_rules(), 8);
  ASSERT_EQ(one.num_indexes(), eight.num_indexes());

  const std::vector<std::string> queries = QueryMix(fx.relation);
  for (const auto& [type, sim] : FuzzyPairs(fx.engine.bound_rules())) {
    const SignatureIndex* a = one.IndexFor(type, sim);
    const SignatureIndex* b = eight.IndexFor(type, sim);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    for (const std::string& query : queries) {
      EXPECT_EQ(a->Matches(query), b->Matches(query));
    }
  }
}

// Completeness (paper §IV-B(2)): the plan's Matches equals a brute-force
// scan over the type's instances — no candidate lost to signature pruning,
// hashed segment keys, or the shared arena.
TEST(MatchPlanTest, MatchesEqualBruteForceScan) {
  BoundFixture fx;
  MatchPlan plan = MatchPlan::Build(fx.kb, fx.engine.bound_rules(), 1);

  for (const auto& [type, sim] : FuzzyPairs(fx.engine.bound_rules())) {
    const SignatureIndex* shared = plan.IndexFor(type, sim);
    ASSERT_NE(shared, nullptr);
    for (const std::string& query : QueryMix(fx.relation)) {
      std::vector<uint32_t> brute;
      for (ItemId item : fx.kb.InstancesOf(type)) {
        if (sim.Matches(query, fx.kb.Label(item))) brute.push_back(item.value());
      }
      std::sort(brute.begin(), brute.end());
      brute.erase(std::unique(brute.begin(), brute.end()), brute.end());
      EXPECT_EQ(shared->Matches(query), brute) << "query='" << query << "'";
    }
  }
}

// A matcher holding the plan serves identical candidates and never builds a
// private index.
TEST(MatchPlanTest, MatcherWithPlanMatchesMatcherWithout) {
  BoundFixture fx;
  MatchPlan plan = MatchPlan::Build(fx.kb, fx.engine.bound_rules(), 1);

  EvidenceMatcher with_plan(fx.kb);
  with_plan.SetShared(&plan, nullptr);
  EvidenceMatcher without_plan(fx.kb);

#if DETECTIVE_METRICS_ENABLED
  metrics::Registry::Global().Reset();
#endif
  for (const auto& [type, sim] : FuzzyPairs(fx.engine.bound_rules())) {
    for (const std::string& query : QueryMix(fx.relation)) {
      EXPECT_EQ(with_plan.NodeCandidates(type, sim, query),
                without_plan.NodeCandidates(type, sim, query));
    }
  }
#if DETECTIVE_METRICS_ENABLED
  metrics::MetricsSnapshot snapshot = metrics::Registry::Global().Snapshot();
  // Exactly the plan-less matcher's lazy builds; the plan-holder built none.
  EXPECT_EQ(snapshot.counter("matcher.index_builds"),
            FuzzyPairs(fx.engine.bound_rules()).size());
#endif
}

TEST(MatchPlanTest, EmptyRuleSetYieldsEmptyPlan) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  MatchPlan plan = MatchPlan::Build(kb, {}, 4);
  EXPECT_EQ(plan.num_indexes(), 0u);
}

}  // namespace
}  // namespace detective
