// Tests for core/parallel_repair: sharded repair must be bit-identical to
// the sequential fast repairer, for any thread count.

#include <gtest/gtest.h>

#include "core/parallel_repair.h"
#include "datagen/uis_gen.h"
#include "test_fixtures.h"

namespace detective {
namespace {

TEST(ParallelRepairTest, MatchesSequentialOnTableI) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  std::vector<DetectiveRule> rules = testing::BuildFigure4Rules();
  Relation sequential = testing::BuildTableI();
  FastRepairer repairer(kb, sequential.schema(), rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&sequential);

  for (size_t threads : {1u, 2u, 3u, 8u}) {
    Relation parallel = testing::BuildTableI();
    ParallelRepairOptions options;
    options.num_threads = threads;
    auto stats = ParallelRepair(kb, rules, &parallel, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->tuples_processed, parallel.num_tuples());
    for (size_t row = 0; row < parallel.num_tuples(); ++row) {
      EXPECT_EQ(parallel.tuple(row).values(), sequential.tuple(row).values())
          << "threads=" << threads << " row=" << row;
      EXPECT_EQ(parallel.tuple(row).CountPositive(),
                sequential.tuple(row).CountPositive());
    }
  }
}

class ParallelEquivalenceProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelEquivalenceProperty, MatchesSequentialOnNoisyUis) {
  UisOptions options;
  options.num_tuples = 400;
  Dataset dataset = GenerateUis(options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  Relation dirty = dataset.clean;
  ErrorSpec spec;
  spec.error_rate = 0.12;
  InjectErrors(&dirty, spec, dataset.alternatives);

  Relation sequential = dirty;
  FastRepairer repairer(kb, dirty.schema(), dataset.rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&sequential);

  Relation parallel = dirty;
  ParallelRepairOptions popts;
  popts.num_threads = GetParam();
  auto stats = ParallelRepair(kb, dataset.rules, &parallel, popts);
  ASSERT_TRUE(stats.ok());
  for (size_t row = 0; row < parallel.num_tuples(); ++row) {
    EXPECT_EQ(parallel.tuple(row).values(), sequential.tuple(row).values())
        << "row " << row;
  }
  // Merged stats match the sequential engine's totals for tuple-level work.
  EXPECT_EQ(stats->tuples_processed, repairer.stats().tuples_processed);
  EXPECT_EQ(stats->repairs, repairer.stats().repairs);
  EXPECT_EQ(stats->cells_marked, repairer.stats().cells_marked);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelEquivalenceProperty,
                         ::testing::Values(1, 2, 4, 7));

TEST(ParallelRepairTest, EmptyRelationIsFine) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  std::vector<DetectiveRule> rules = testing::BuildFigure4Rules();
  Relation empty{testing::BuildTableI().schema()};
  auto stats = ParallelRepair(kb, rules, &empty);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->tuples_processed, 0u);
}

TEST(ParallelRepairTest, BindingErrorsSurface) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  std::vector<DetectiveRule> rules = testing::BuildFigure4Rules();
  Relation wrong{Schema({"A", "B"})};
  ASSERT_TRUE(wrong.Append({"x", "y"}).ok());
  EXPECT_FALSE(ParallelRepair(kb, rules, &wrong).ok());
}

}  // namespace
}  // namespace detective
