// Tests for core/parallel_repair: sharded repair must be bit-identical to
// the sequential fast repairer, for any thread count.

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "core/parallel_repair.h"
#include "datagen/uis_gen.h"
#include "test_fixtures.h"

namespace detective {
namespace {

TEST(ParallelRepairTest, MatchesSequentialOnTableI) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  std::vector<DetectiveRule> rules = testing::BuildFigure4Rules();
  Relation sequential = testing::BuildTableI();
  FastRepairer repairer(kb, sequential.schema(), rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&sequential);

  for (size_t threads : {1u, 2u, 3u, 8u}) {
    Relation parallel = testing::BuildTableI();
    ParallelRepairOptions options;
    options.num_threads = threads;
    auto stats = ParallelRepair(kb, rules, &parallel, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->tuples_processed, parallel.num_tuples());
    for (size_t row = 0; row < parallel.num_tuples(); ++row) {
      EXPECT_EQ(parallel.tuple(row).values(), sequential.tuple(row).values())
          << "threads=" << threads << " row=" << row;
      EXPECT_EQ(parallel.tuple(row).CountPositive(),
                sequential.tuple(row).CountPositive());
    }
  }
}

class ParallelEquivalenceProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelEquivalenceProperty, MatchesSequentialOnNoisyUis) {
  UisOptions options;
  options.num_tuples = 400;
  Dataset dataset = GenerateUis(options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  Relation dirty = dataset.clean;
  ErrorSpec spec;
  spec.error_rate = 0.12;
  InjectErrors(&dirty, spec, dataset.alternatives);

  Relation sequential = dirty;
  FastRepairer repairer(kb, dirty.schema(), dataset.rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&sequential);

  Relation parallel = dirty;
  ParallelRepairOptions popts;
  popts.num_threads = GetParam();
  auto stats = ParallelRepair(kb, dataset.rules, &parallel, popts);
  ASSERT_TRUE(stats.ok());
  for (size_t row = 0; row < parallel.num_tuples(); ++row) {
    EXPECT_EQ(parallel.tuple(row).values(), sequential.tuple(row).values())
        << "row " << row;
  }
  // Merged stats match the sequential engine's totals for tuple-level work.
  EXPECT_EQ(stats->tuples_processed, repairer.stats().tuples_processed);
  EXPECT_EQ(stats->repairs, repairer.stats().repairs);
  EXPECT_EQ(stats->cells_marked, repairer.stats().cells_marked);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelEquivalenceProperty,
                         ::testing::Values(1, 2, 4, 7));

#if DETECTIVE_METRICS_ENABLED
// The per-worker thread-local metric shards must merge to the same totals
// the sequential repairer produces: parallel repair shards the relation, so
// the summed per-tuple work is identical even though it happened on many
// threads. Only the repair.* counters are compared — matcher memo counters
// legitimately differ because each worker owns a private memo.
TEST(ParallelRepairTest, WorkerMetricsSumToSequentialRun) {
  UisOptions options;
  options.num_tuples = 300;
  Dataset dataset = GenerateUis(options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  Relation dirty = dataset.clean;
  ErrorSpec spec;
  spec.error_rate = 0.12;
  InjectErrors(&dirty, spec, dataset.alternatives);

  metrics::Registry& registry = metrics::Registry::Global();

  registry.Reset();
  Relation sequential = dirty;
  FastRepairer repairer(kb, dirty.schema(), dataset.rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&sequential);
  metrics::MetricsSnapshot seq = registry.Snapshot();

  registry.Reset();
  Relation parallel = dirty;
  ParallelRepairOptions popts;
  popts.num_threads = 4;
  ASSERT_TRUE(ParallelRepair(kb, dataset.rules, &parallel, popts).ok());
  metrics::MetricsSnapshot par = registry.Snapshot();

  ASSERT_GT(seq.counter("repair.tuples_processed"), 0u);
  for (const char* name :
       {"repair.tuples_processed", "repair.rule_checks", "repair.rule_applications",
        "repair.cell_repairs", "repair.cells_marked", "repair.chase_rounds"}) {
    EXPECT_EQ(par.counter(name), seq.counter(name)) << name;
  }
  EXPECT_EQ(par.counter("parallel.workers_launched"), 4u);
  EXPECT_EQ(par.timer("parallel.worker").count, 4u);
}
#endif  // DETECTIVE_METRICS_ENABLED

TEST(ParallelRepairTest, EmptyRelationIsFine) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  std::vector<DetectiveRule> rules = testing::BuildFigure4Rules();
  Relation empty{testing::BuildTableI().schema()};
  auto stats = ParallelRepair(kb, rules, &empty);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->tuples_processed, 0u);
}

TEST(ParallelRepairTest, BindingErrorsSurface) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  std::vector<DetectiveRule> rules = testing::BuildFigure4Rules();
  Relation wrong{Schema({"A", "B"})};
  ASSERT_TRUE(wrong.Append({"x", "y"}).ok());
  EXPECT_FALSE(ParallelRepair(kb, rules, &wrong).ok());
}

}  // namespace
}  // namespace detective
