// Tests for core/parallel_repair: work-stealing chunked repair must be
// bit-identical to the sequential fast repairer — cell values, provenance
// log, and quarantine ledger — for any thread count, with or without the
// shared match plan / candidate cache, with or without a fault plan.

#include <gtest/gtest.h>

#include <string_view>

#include "common/fault.h"
#include "common/metrics.h"
#include "core/match_plan.h"
#include "core/parallel_repair.h"
#include "datagen/uis_gen.h"
#include "test_fixtures.h"

namespace detective {
namespace {

/// A dirty UIS relation plus everything needed to repair it.
struct UisCase {
  Dataset dataset;
  KnowledgeBase kb;
  Relation dirty;
};

UisCase BuildUisCase(size_t tuples) {
  UisCase c;
  UisOptions options;
  options.num_tuples = tuples;
  c.dataset = GenerateUis(options);
  c.kb = c.dataset.world.ToKb(YagoProfile(), c.dataset.key_entities);
  c.dirty = c.dataset.clean;
  ErrorSpec spec;
  spec.error_rate = 0.12;
  InjectErrors(&c.dirty, spec, c.dataset.alternatives);
  return c;
}

TEST(ParallelRepairTest, MatchesSequentialOnTableI) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  std::vector<DetectiveRule> rules = testing::BuildFigure4Rules();
  Relation sequential = testing::BuildTableI();
  FastRepairer repairer(kb, sequential.schema(), rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&sequential);

  for (size_t threads : {1u, 2u, 3u, 8u}) {
    Relation parallel = testing::BuildTableI();
    ParallelRepairOptions options;
    options.num_threads = threads;
    auto stats = ParallelRepair(kb, rules, &parallel, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->tuples_processed, parallel.num_tuples());
    for (size_t row = 0; row < parallel.num_tuples(); ++row) {
      EXPECT_EQ(parallel.tuple(row).values(), sequential.tuple(row).values())
          << "threads=" << threads << " row=" << row;
      EXPECT_EQ(parallel.tuple(row).CountPositive(),
                sequential.tuple(row).CountPositive());
    }
  }
}

class ParallelEquivalenceProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelEquivalenceProperty, MatchesSequentialOnNoisyUis) {
  UisOptions options;
  options.num_tuples = 400;
  Dataset dataset = GenerateUis(options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  Relation dirty = dataset.clean;
  ErrorSpec spec;
  spec.error_rate = 0.12;
  InjectErrors(&dirty, spec, dataset.alternatives);

  Relation sequential = dirty;
  FastRepairer repairer(kb, dirty.schema(), dataset.rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&sequential);

  Relation parallel = dirty;
  ParallelRepairOptions popts;
  popts.num_threads = GetParam();
  auto stats = ParallelRepair(kb, dataset.rules, &parallel, popts);
  ASSERT_TRUE(stats.ok());
  for (size_t row = 0; row < parallel.num_tuples(); ++row) {
    EXPECT_EQ(parallel.tuple(row).values(), sequential.tuple(row).values())
        << "row " << row;
  }
  // Merged stats match the sequential engine's totals for tuple-level work.
  EXPECT_EQ(stats->tuples_processed, repairer.stats().tuples_processed);
  EXPECT_EQ(stats->repairs, repairer.stats().repairs);
  EXPECT_EQ(stats->cells_marked, repairer.stats().cells_marked);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelEquivalenceProperty,
                         ::testing::Values(1, 2, 4, 7));

#if DETECTIVE_METRICS_ENABLED
// The per-worker thread-local metric shards must merge to the same totals
// the sequential repairer produces: parallel repair shards the relation, so
// the summed per-tuple work is identical even though it happened on many
// threads. Only the repair.* counters are compared — matcher memo counters
// legitimately differ because each worker owns a private memo.
TEST(ParallelRepairTest, WorkerMetricsSumToSequentialRun) {
  UisOptions options;
  options.num_tuples = 300;
  Dataset dataset = GenerateUis(options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  Relation dirty = dataset.clean;
  ErrorSpec spec;
  spec.error_rate = 0.12;
  InjectErrors(&dirty, spec, dataset.alternatives);

  metrics::Registry& registry = metrics::Registry::Global();

  registry.Reset();
  Relation sequential = dirty;
  FastRepairer repairer(kb, dirty.schema(), dataset.rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&sequential);
  metrics::MetricsSnapshot seq = registry.Snapshot();

  registry.Reset();
  Relation parallel = dirty;
  ParallelRepairOptions popts;
  popts.num_threads = 4;
  ASSERT_TRUE(ParallelRepair(kb, dataset.rules, &parallel, popts).ok());
  metrics::MetricsSnapshot par = registry.Snapshot();

  ASSERT_GT(seq.counter("repair.tuples_processed"), 0u);
  for (const char* name :
       {"repair.tuples_processed", "repair.rule_checks", "repair.rule_applications",
        "repair.cell_repairs", "repair.cells_marked", "repair.chase_rounds"}) {
    EXPECT_EQ(par.counter(name), seq.counter(name)) << name;
  }
  EXPECT_EQ(par.counter("parallel.workers_launched"), 4u);
  EXPECT_EQ(par.timer("parallel.worker").count, 4u);
}
#endif  // DETECTIVE_METRICS_ENABLED

// chunk_rows=1 maximizes scheduling freedom: every row is claimed off the
// atomic counter independently, so chunks land on "wrong" workers constantly
// — and the output, provenance log included, must not care.
TEST(ParallelRepairTest, WorkStealingIsInvisibleInOutputAndProvenance) {
  UisCase c = BuildUisCase(200);

  Relation sequential = c.dirty;
  ProvenanceLog sequential_log;
  FastRepairer repairer(c.kb, c.dirty.schema(), c.dataset.rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.engine().set_provenance(&sequential_log);
  repairer.RepairRelation(&sequential);

  size_t total_steals = 0;
  for (size_t threads : {2u, 3u, 8u}) {
    Relation parallel = c.dirty;
    ProvenanceLog parallel_log;
    ParallelRepairOptions options;
    options.num_threads = threads;
    options.chunk_rows = 1;
    options.provenance = &parallel_log;
    auto stats = ParallelRepair(c.kb, c.dataset.rules, &parallel, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    total_steals += stats->chunks_stolen;
    EXPECT_EQ(parallel_log, sequential_log) << "threads=" << threads;
    for (size_t row = 0; row < parallel.num_tuples(); ++row) {
      EXPECT_EQ(parallel.tuple(row).values(), sequential.tuple(row).values())
          << "threads=" << threads << " row=" << row;
    }
  }
  // 600 one-row chunks across three runs: some always land off their static
  // owner (a zero here would mean the claims exactly reproduced contiguous
  // sharding three times over).
  EXPECT_GT(total_steals, 0u);
}

// Turning the shared plan and cache off restores per-worker private state —
// and must not change a single byte of output either.
TEST(ParallelRepairTest, SharedAndPrivateStateProduceIdenticalRepairs) {
  UisCase c = BuildUisCase(200);
  Relation shared = c.dirty;
  Relation private_state = c.dirty;
  ProvenanceLog shared_log;
  ProvenanceLog private_log;

  ParallelRepairOptions options;
  options.num_threads = 4;
  options.provenance = &shared_log;
  ASSERT_TRUE(ParallelRepair(c.kb, c.dataset.rules, &shared, options).ok());

  options.share_match_plan = false;
  options.share_value_cache = false;
  options.provenance = &private_log;
  ASSERT_TRUE(
      ParallelRepair(c.kb, c.dataset.rules, &private_state, options).ok());

  EXPECT_EQ(shared_log, private_log);
  for (size_t row = 0; row < shared.num_tuples(); ++row) {
    EXPECT_EQ(shared.tuple(row).values(), private_state.tuple(row).values());
  }
}

// A tiny cache forces capacity rejections, so workers exercise the private
// overflow-memo fallback — results still cannot change.
TEST(ParallelRepairTest, CacheCapacityRejectionsAreHarmless) {
  UisCase c = BuildUisCase(200);
  Relation reference = c.dirty;
  FastRepairer repairer(c.kb, c.dirty.schema(), c.dataset.rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&reference);

  Relation parallel = c.dirty;
  ParallelRepairOptions options;
  options.num_threads = 4;
  options.cache_capacity = 64;  // one entry per shard
  auto stats = ParallelRepair(c.kb, c.dataset.rules, &parallel, options);
  ASSERT_TRUE(stats.ok());
  for (size_t row = 0; row < parallel.num_tuples(); ++row) {
    EXPECT_EQ(parallel.tuple(row).values(), reference.tuple(row).values());
  }
}

#if DETECTIVE_FAULT_ENABLED
class ArmedPlan {
 public:
  explicit ArmedPlan(std::string_view spec) {
    auto plan = fault::FaultPlan::Parse(spec);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    if (plan.ok()) fault::Injector::Global().Arm(*plan);
  }
  ~ArmedPlan() { fault::Injector::Global().Disarm(); }
};

// The PR 4 determinism contract under work stealing: fault decisions are
// keyed by (seed, site, row, hit), never by which worker or chunk reached
// the row, so the repaired cells, the provenance log, and the quarantine
// ledger match the sequential guarded run bit for bit at every thread count.
TEST(ParallelRepairTest, WorkStealingPreservesFaultDeterminism) {
  constexpr std::string_view kPlan = "seed=13; site=kb.lookup, p=0.01";
  UisCase c = BuildUisCase(200);

  Relation sequential = c.dirty;
  ProvenanceLog sequential_log;
  QuarantineLog sequential_quarantine;
  {
    ArmedPlan armed(kPlan);
    FastRepairer repairer(c.kb, c.dirty.schema(), c.dataset.rules);
    ASSERT_TRUE(repairer.Init().ok());
    repairer.engine().set_provenance(&sequential_log);
    repairer.RepairRelationGuarded(&sequential, &sequential_quarantine);
  }
  EXPECT_FALSE(sequential_quarantine.empty());  // seed 13 trips at least once

  for (size_t threads : {2u, 3u, 8u}) {
    ArmedPlan armed(kPlan);
    Relation parallel = c.dirty;
    ProvenanceLog parallel_log;
    QuarantineLog parallel_quarantine;
    ParallelRepairOptions options;
    options.num_threads = threads;
    options.chunk_rows = 1;  // maximal stealing
    options.provenance = &parallel_log;
    options.quarantine = &parallel_quarantine;
    auto stats = ParallelRepair(c.kb, c.dataset.rules, &parallel, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(parallel_quarantine, sequential_quarantine)
        << "threads=" << threads;
    EXPECT_EQ(parallel_log, sequential_log) << "threads=" << threads;
    for (size_t row = 0; row < parallel.num_tuples(); ++row) {
      EXPECT_EQ(parallel.tuple(row).values(), sequential.tuple(row).values())
          << "threads=" << threads << " row=" << row;
    }
  }
}
#endif  // DETECTIVE_FAULT_ENABLED

#if DETECTIVE_METRICS_ENABLED
// The whole point of the plan: across an 8-worker run, each (type, sim)
// signature index is built exactly once — by the plan — and never lazily by
// a worker's matcher.
TEST(ParallelRepairTest, SignatureIndexesBuiltExactlyOncePerPair) {
  UisCase c = BuildUisCase(128);

  // The expected pair count, from an out-of-band plan over the same rules.
  RuleEngine probe(c.kb, c.dirty.schema(), c.dataset.rules, RepairOptions{});
  ASSERT_TRUE(probe.Init().ok());
  MatchPlan expected = MatchPlan::Build(c.kb, probe.bound_rules(), 1);
  ASSERT_GT(expected.num_indexes(), 0u);  // UIS rules use ED,2 nodes

  metrics::Registry& registry = metrics::Registry::Global();
  registry.Reset();
  Relation parallel = c.dirty;
  ParallelRepairOptions options;
  options.num_threads = 8;
  options.chunk_rows = 4;
  ASSERT_TRUE(ParallelRepair(c.kb, c.dataset.rules, &parallel, options).ok());
  metrics::MetricsSnapshot par = registry.Snapshot();

  EXPECT_EQ(par.counter("matchplan.indexes_built"), expected.num_indexes());
  EXPECT_EQ(par.counter("matcher.index_builds"), 0u);
  // Every node check goes through the shared cache exactly once.
  EXPECT_EQ(par.counter("cache.hits") + par.counter("cache.misses"),
            par.counter("matcher.node_queries"));
}
#endif  // DETECTIVE_METRICS_ENABLED

// With the columnar relation, workers chase detached row copies and the main
// thread commits them in row order — so the *serialized* repaired relation,
// not just the per-row values, must be byte-identical at every thread count.
TEST(ParallelRepairTest, RepairedCsvBytesIdenticalAcrossThreadCounts) {
  UisCase c = BuildUisCase(200);
  std::string reference;
  for (size_t threads : {1u, 2u, 8u}) {
    Relation parallel = c.dirty;
    ParallelRepairOptions options;
    options.num_threads = threads;
    options.chunk_rows = 3;
    auto stats = ParallelRepair(c.kb, c.dataset.rules, &parallel, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    std::string csv = parallel.ToCsv();
    if (threads == 1u) {
      reference = std::move(csv);
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(csv, reference) << "threads=" << threads;
    }
  }
}

#if DETECTIVE_FAULT_ENABLED
// Same bar under an armed fault plan: quarantined rollbacks included, the
// committed bytes cannot depend on the thread count.
TEST(ParallelRepairTest, GuardedCsvBytesIdenticalAcrossThreadCounts) {
  constexpr std::string_view kPlan = "seed=13; site=kb.lookup, p=0.01";
  UisCase c = BuildUisCase(200);
  std::string reference;
  for (size_t threads : {1u, 2u, 8u}) {
    ArmedPlan armed(kPlan);
    Relation parallel = c.dirty;
    QuarantineLog quarantine;
    ParallelRepairOptions options;
    options.num_threads = threads;
    options.chunk_rows = 1;
    options.quarantine = &quarantine;
    auto stats = ParallelRepair(c.kb, c.dataset.rules, &parallel, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    std::string csv = parallel.ToCsv();
    if (threads == 1u) {
      reference = std::move(csv);
    } else {
      EXPECT_EQ(csv, reference) << "threads=" << threads;
    }
  }
}
#endif  // DETECTIVE_FAULT_ENABLED

TEST(ParallelRepairTest, EmptyRelationIsFine) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  std::vector<DetectiveRule> rules = testing::BuildFigure4Rules();
  Relation empty{testing::BuildTableI().schema()};
  auto stats = ParallelRepair(kb, rules, &empty);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->tuples_processed, 0u);
}

TEST(ParallelRepairTest, BindingErrorsSurface) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  std::vector<DetectiveRule> rules = testing::BuildFigure4Rules();
  Relation wrong{Schema({"A", "B"})};
  ASSERT_TRUE(wrong.Append({"x", "y"}).ok());
  EXPECT_FALSE(ParallelRepair(kb, rules, &wrong).ok());
}

}  // namespace
}  // namespace detective
