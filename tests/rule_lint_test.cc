// Tests for the static rule-set analyzer (src/analysis): one fixture per
// diagnostic class, the soundness refutations that must stay silent, and the
// cross-check that a lint-clean rule set is dynamically consistent under the
// §III-C sampler.

#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/diagnostics.h"
#include "analysis/rule_interaction_graph.h"
#include "analysis/rule_lint.h"
#include "core/consistency.h"
#include "core/rule.h"
#include "core/rule_io.h"
#include "kb/knowledge_base.h"
#include "kb/ntriples_parser.h"
#include "test_fixtures.h"

namespace detective::analysis {
namespace {

using detective::testing::BuildFigure1Kb;
using detective::testing::BuildFigure4Rules;
using detective::testing::BuildTableI;

std::vector<DetectiveRule> MustParse(std::string_view text) {
  Result<std::vector<DetectiveRule>> rules = ParseRules(text);
  EXPECT_TRUE(rules.ok()) << rules.status().ToString();
  return rules.ok() ? std::move(rules).ValueOrDie() : std::vector<DetectiveRule>{};
}

size_t CountCode(const DiagnosticReport& report, DiagnosticCode code) {
  size_t count = 0;
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.code == code) ++count;
  }
  return count;
}

// Both rules judge City; the negative patterns unify on Name, Institution and
// City, but the positive sides derive the correction through different KB
// paths (worksAt.locatedIn vs wasBornIn).
constexpr std::string_view kConflictingPair = R"(
RULE work_city
NODE w1 col=Name type="Nobel laureates in Chemistry" sim="="
NODE w2 col=Institution type=organization sim="ED,2"
POS  p col=City type=city sim="="
NEG  n col=City type=city sim="="
EDGE w1 worksAt w2
EDGE w2 locatedIn p
EDGE w1 wasBornIn n
END
RULE birth_city
NODE b1 col=Name type="Nobel laureates in Chemistry" sim="="
NODE b2 col=Institution type=organization sim="ED,2"
POS  p col=City type=city sim="="
NEG  n col=City type=city sim="="
EDGE b1 wasBornIn p
EDGE b1 worksAt b2
EDGE b2 locatedIn n
END
)";

constexpr std::string_view kMutualCycle = R"(
RULE city_from_country
NODE a1 col=Country type=country sim="="
POS  p col=City type=city sim="="
NEG  n col=City type=city sim="="
EDGE p locatedIn a1
EDGE n locatedIn a1
END
RULE country_from_city
NODE b1 col=City type=city sim="="
POS  p col=Country type=country sim="="
NEG  n col=Country type=country sim="="
EDGE b1 locatedIn p
EDGE b1 locatedIn n
END
)";

TEST(RuleLintTest, Figure4SetIsClean) {
  DiagnosticReport report = LintRules(BuildFigure4Rules(), BuildFigure1Kb());
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_TRUE(report.empty()) << report.ToString();
}

// The promise the analyzer makes: a lint-clean rule set really is
// dynamically consistent under the §III-C chase sampler.
TEST(RuleLintTest, LintCleanSetIsDynamicallyConsistent) {
  KnowledgeBase kb = BuildFigure1Kb();
  std::vector<DetectiveRule> rules = BuildFigure4Rules();
  ASSERT_TRUE(LintRules(rules, kb).clean());

  Result<ConsistencyReport> dynamic = CheckConsistency(kb, rules, BuildTableI());
  ASSERT_TRUE(dynamic.ok()) << dynamic.status().ToString();
  EXPECT_TRUE(dynamic.ValueOrDie().consistent) << dynamic.ValueOrDie().ToString();
}

TEST(RuleLintTest, ConflictingCorrectionsAreAnError) {
  DiagnosticReport report =
      LintRules(MustParse(kConflictingPair), BuildFigure1Kb());
  ASSERT_EQ(report.errors(), 1u) << report.ToString();
  const Diagnostic& d = report.diagnostics().front();
  EXPECT_EQ(d.code, DiagnosticCode::kConflictingRules);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.column, "City");
  EXPECT_EQ(d.rules, (std::vector<std::string>{"work_city", "birth_city"}));
}

// The one sound refutation: both negative nodes use exact equality and their
// classes have provably disjoint label sets (Chemistry vs American awards in
// Fig. 1), so no single cell value can fire both rules — no conflict, even
// though the positive derivations differ.
TEST(RuleLintTest, LabelDisjointNegativesSuppressTheConflict) {
  DiagnosticReport report = LintRules(MustParse(R"(
RULE chem_prize
NODE v1 col=Name type="Nobel laureates in Chemistry" sim="="
POS  p col=Prize type="Chemistry awards" sim="="
NEG  n col=Prize type="Chemistry awards" sim="="
EDGE v1 wonPrize p
EDGE v1 wonPrize n
END
RULE us_prize
NODE v1 col=Name type="Nobel laureates in Chemistry" sim="="
POS  p col=Prize type="American awards" sim="="
NEG  n col=Prize type="American awards" sim="="
EDGE v1 wonPrize p
EDGE v1 wonPrize n
END
)"),
                                      BuildFigure1Kb());
  EXPECT_TRUE(report.empty()) << report.ToString();
}

TEST(RuleLintTest, IdenticalRulesAreAnInfo) {
  std::vector<DetectiveRule> rules = BuildFigure4Rules();
  std::vector<DetectiveRule> doubled = {rules[0], rules[0]};
  DiagnosticReport report = LintRules(doubled, BuildFigure1Kb());
  EXPECT_TRUE(report.clean()) << report.ToString();
  ASSERT_EQ(report.infos(), 1u) << report.ToString();
  EXPECT_EQ(report.diagnostics().front().code, DiagnosticCode::kConflictingRules);
  EXPECT_EQ(report.diagnostics().front().severity, Severity::kInfo);

  LintOptions quiet;
  quiet.emit_info = false;
  EXPECT_TRUE(LintRules(doubled, BuildFigure1Kb(), quiet).empty());
}

// Equal positive sides derive equal corrections regardless of how the
// negative sides differ ("award" is a superclass, so the negatives DO
// co-bind) — observation, not a conflict.
TEST(RuleLintTest, AgreeingPositiveSidesAreAnInfo) {
  DiagnosticReport report = LintRules(MustParse(R"(
RULE narrow_negative
NODE v1 col=Name type="Nobel laureates in Chemistry" sim="="
POS  p col=Prize type="Chemistry awards" sim="="
NEG  n col=Prize type="American awards" sim="="
EDGE v1 wonPrize p
EDGE v1 wonPrize n
END
RULE wide_negative
NODE v1 col=Name type="Nobel laureates in Chemistry" sim="="
POS  p col=Prize type="Chemistry awards" sim="="
NEG  n col=Prize type=award sim="="
EDGE v1 wonPrize p
EDGE v1 wonPrize n
END
)"),
                                      BuildFigure1Kb());
  EXPECT_TRUE(report.clean()) << report.ToString();
  ASSERT_EQ(report.infos(), 1u) << report.ToString();
  EXPECT_EQ(report.diagnostics().front().severity, Severity::kInfo);
}

// The positive graphs differ (worksAt vs graduatedFrom anchor the
// Institution hop) but the derivation around p is identical — the rules can
// disagree only through evidence selection, which is a warning, not an error.
TEST(RuleLintTest, SameDerivationDifferentEvidenceIsAWarning) {
  DiagnosticReport report = LintRules(MustParse(R"(
RULE via_work
NODE w1 col=Name type="Nobel laureates in Chemistry" sim="="
NODE w2 col=Institution type=organization sim="ED,2"
POS  p col=City type=city sim="="
NEG  n col=City type=city sim="="
EDGE w1 worksAt w2
EDGE w2 locatedIn p
EDGE w1 wasBornIn n
END
RULE via_school
NODE w1 col=Name type="Nobel laureates in Chemistry" sim="="
NODE w2 col=Institution type=organization sim="ED,2"
POS  p col=City type=city sim="="
NEG  n col=City type=city sim="="
EDGE w1 graduatedFrom w2
EDGE w2 locatedIn p
EDGE w1 wasBornIn n
END
)"),
                                      BuildFigure1Kb());
  EXPECT_TRUE(report.clean()) << report.ToString();
  ASSERT_EQ(report.warnings(), 1u) << report.ToString();
  EXPECT_EQ(report.diagnostics().front().code, DiagnosticCode::kConflictingRules);
}

TEST(RuleLintTest, MutualFeedingRulesAreAnOscillationError) {
  DiagnosticReport report = LintRules(MustParse(kMutualCycle), BuildFigure1Kb());
  ASSERT_EQ(report.errors(), 1u) << report.ToString();
  const Diagnostic& d = report.diagnostics().front();
  EXPECT_EQ(d.code, DiagnosticCode::kOscillationCycle);
  EXPECT_EQ(d.rules,
            (std::vector<std::string>{"city_from_country", "country_from_city",
                                      "city_from_country"}));
}

TEST(RuleLintTest, UnknownClassIsAnError) {
  DiagnosticReport report = LintRules(MustParse(R"(
RULE volcano_city
NODE v1 col=Name type=volcano sim="="
POS  p col=City type=city sim="="
NEG  n col=City type=city sim="="
EDGE v1 worksAt p
EDGE v1 wasBornIn n
END
)"),
                                      BuildFigure1Kb());
  EXPECT_FALSE(report.clean());
  ASSERT_EQ(CountCode(report, DiagnosticCode::kUnsupportedClass), 1u)
      << report.ToString();
  EXPECT_EQ(report.diagnostics().front().column, "Name");
}

TEST(RuleLintTest, UnknownRelationIsAnError) {
  DiagnosticReport report = LintRules(MustParse(R"(
RULE died_city
NODE w1 col=Name type="Nobel laureates in Chemistry" sim="="
POS  p col=City type=city sim="="
NEG  n col=City type=city sim="="
EDGE w1 diedIn p
EDGE w1 wasBornIn n
END
)"),
                                      BuildFigure1Kb());
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(CountCode(report, DiagnosticCode::kUnsupportedRelation), 1u)
      << report.ToString();
}

TEST(RuleLintTest, DeclaredButEmptyClassIsAWarning) {
  Result<KnowledgeBase> kb = ParseNTriples(R"(
<hamlet> rdf:type <rdfs:Class> .
<city> rdf:type <rdfs:Class> .
<country> rdf:type <rdfs:Class> .
<e1> rdfs:label "Paris" .
<e1> rdf:type <city> .
<e2> rdfs:label "France" .
<e2> rdf:type <country> .
<e1> <locatedIn> <e2> .
)");
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  DiagnosticReport report = LintRules(MustParse(R"(
RULE ghost
NODE a1 col=Country type=country sim="="
POS  p col=City type=hamlet sim="="
NEG  n col=City type=city sim="="
EDGE p locatedIn a1
EDGE n locatedIn a1
END
)"),
                                      kb.ValueOrDie());
  EXPECT_TRUE(report.clean()) << report.ToString();
  ASSERT_EQ(CountCode(report, DiagnosticCode::kEmptyClass), 1u)
      << report.ToString();
  EXPECT_EQ(report.diagnostics().front().severity, Severity::kWarning);
}

// graduatedFrom only ever reaches organizations in Fig. 1, so routing it
// into a city-typed node has zero static match possibility.
TEST(RuleLintTest, UnjoinableEdgeIsAWarning) {
  DiagnosticReport report = LintRules(MustParse(R"(
RULE grad_city
NODE v1 col=Name type="Nobel laureates in Chemistry" sim="="
POS  p col=City type=city sim="="
NEG  n col=City type=city sim="="
EDGE v1 graduatedFrom p
EDGE v1 wasBornIn n
END
)"),
                                      BuildFigure1Kb());
  EXPECT_TRUE(report.clean()) << report.ToString();
  ASSERT_EQ(CountCode(report, DiagnosticCode::kUnsupportedEdge), 1u)
      << report.ToString();

  LintOptions no_probe;
  no_probe.check_edge_support = false;
  EXPECT_TRUE(LintRules(MustParse(R"(
RULE grad_city
NODE v1 col=Name type="Nobel laureates in Chemistry" sim="="
POS  p col=City type=city sim="="
NEG  n col=City type=city sim="="
EDGE v1 graduatedFrom p
EDGE v1 wasBornIn n
END
)"),
                        BuildFigure1Kb(), no_probe)
                  .empty());
}

TEST(RuleLintTest, LiteralSubjectIsUnsatisfiable) {
  DiagnosticReport report = LintRules(MustParse(R"(
RULE person_from_dob
NODE d col=DOB type=literal sim="="
POS  p col=Name type="Nobel laureates in Chemistry" sim="="
NEG  n col=Name type=person sim="="
EDGE d bornOnDate p
EDGE d bornOnDate n
END
)"),
                                      BuildFigure1Kb());
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(CountCode(report, DiagnosticCode::kUnsatisfiablePattern), 2u)
      << report.ToString();
  EXPECT_EQ(report.diagnostics().front().column, "DOB");
}

// A rule that fails §II-C validation surfaces as a diagnostic (uniform
// programmatic surface) and is excluded from the cross-rule analyses.
TEST(RuleLintTest, MalformedRuleIsReportedNotAnalyzed) {
  std::vector<DetectiveRule> rules = BuildFigure4Rules();
  DetectiveRule broken("broken", rules[0].graph(), rules[0].positive_node(),
                       rules[0].positive_node());  // p == n: invalid
  DiagnosticReport report = LintRules({broken}, BuildFigure1Kb());
  ASSERT_EQ(report.size(), 1u) << report.ToString();
  EXPECT_EQ(report.diagnostics().front().code, DiagnosticCode::kMalformedRule);
  EXPECT_EQ(report.diagnostics().front().severity, Severity::kError);
}

TEST(RuleInteractionGraphTest, Figure4IsAcyclicWithExpectedFeeds) {
  std::vector<DetectiveRule> rules = BuildFigure4Rules();
  RuleInteractionGraph graph(rules);
  ASSERT_EQ(graph.num_rules(), 4u);
  EXPECT_TRUE(graph.IsAcyclic());
  // phi1 repairs Institution, which phi2 and phi3 bind as evidence.
  std::vector<RuleInteractionGraph::Edge> expected = {{1, "Institution"},
                                                      {2, "Institution"}};
  EXPECT_EQ(graph.Successors(0), expected);
  // Nothing reads Prize, so phi4 feeds nobody.
  EXPECT_TRUE(graph.Successors(3).empty());
}

TEST(RuleInteractionGraphTest, MutualFeedYieldsOneWitnessCycle) {
  RuleInteractionGraph graph(MustParse(kMutualCycle));
  ASSERT_EQ(graph.Cycles().size(), 1u);
  const std::vector<uint32_t>& cycle = graph.Cycles().front();
  EXPECT_EQ(cycle, (std::vector<uint32_t>{0, 1, 0}));
  EXPECT_EQ(graph.CycleColumns(cycle),
            (std::vector<std::string>{"City", "Country"}));
}

TEST(DiagnosticReportTest, SortsAndSerializes) {
  DiagnosticReport report;
  report.Add({.severity = Severity::kInfo,
              .code = DiagnosticCode::kConflictingRules,
              .message = "identical",
              .rules = {"a", "b"},
              .column = "City"});
  report.Add({.severity = Severity::kError,
              .code = DiagnosticCode::kUnsupportedClass,
              .message = "class \"volcano\" unknown",
              .rules = {"c"},
              .column = "Name"});
  report.SortBySeverity();
  EXPECT_EQ(report.diagnostics().front().severity, Severity::kError);
  EXPECT_EQ(report.errors(), 1u);
  EXPECT_EQ(report.infos(), 1u);
  EXPECT_FALSE(report.clean());

  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"summary\": {\"errors\": 1, \"warnings\": 0, \"infos\": 1}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"code\": \"unsupported-class\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"rules\": [\"a\", \"b\"]"), std::string::npos) << json;
  // Embedded quotes must be escaped.
  EXPECT_NE(json.find("class \\\"volcano\\\" unknown"), std::string::npos) << json;
}

}  // namespace
}  // namespace detective::analysis
