// Tests for common/logging and the abort paths of Status/Result: the CHECK
// macros must abort with a diagnostic on violation and be free of side
// effects when satisfied.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/result.h"
#include "common/status.h"

namespace detective {
namespace {

TEST(LoggingTest, LevelsFilter) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Emitting below the threshold must be side-effect free (nothing to
  // assert on stderr portably; this exercises the disabled path).
  LOG_DEBUG() << "invisible";
  LOG_INFO() << "invisible";
  SetLogLevel(original);
}

TEST(LoggingTest, StreamAcceptsMixedTypes) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  LOG_INFO() << "text " << 42 << ' ' << 3.5 << " " << std::string("str");
  SetLogLevel(original);
}

TEST(CheckDeathTest, CheckAbortsWithMessage) {
  EXPECT_DEATH({ DETECTIVE_CHECK(1 == 2) << "custom context"; },
               "Check failed: 1 == 2");
}

TEST(CheckDeathTest, CheckEqAborts) {
  int a = 1;
  int b = 2;
  EXPECT_DEATH({ DETECTIVE_CHECK_EQ(a, b); }, "Check failed");
}

TEST(CheckDeathTest, SatisfiedCheckIsSilent) {
  DETECTIVE_CHECK(true) << "never evaluated";
  DETECTIVE_CHECK_EQ(2, 2);
  DETECTIVE_CHECK_LT(1, 2);
  DETECTIVE_CHECK_GE(2, 2);
}

TEST(CheckDeathTest, CheckConditionEvaluatedExactlyOnce) {
  int count = 0;
  auto bump = [&] {
    ++count;
    return true;
  };
  DETECTIVE_CHECK(bump());
  EXPECT_EQ(count, 1);
}

TEST(StatusDeathTest, AbortOnErrorStatus) {
  EXPECT_DEATH(Status::Internal("boom").Abort("ctx"), "boom");
}

TEST(StatusDeathTest, AbortOnOkIsNoop) {
  Status::OK().Abort("fine");  // must not die
}

TEST(ResultDeathTest, ValueOrDieOnErrorAborts) {
  Result<int> result = Status::NotFound("gone");
  EXPECT_DEATH({ (void)result.ValueOrDie(); }, "gone");
}

TEST(ResultDeathTest, OkStatusIntoResultAborts) {
  EXPECT_DEATH({ Result<int> bad = Status::OK(); (void)bad; },
               "Result constructed from OK status");
}

}  // namespace
}  // namespace detective
