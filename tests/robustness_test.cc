// Robustness ("fuzz-lite") tests: every parser must reject arbitrary input
// with a Status — never crash, never accept garbage silently — and parsing
// must be deterministic. Inputs are seeded random byte strings plus mutated
// valid documents.

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/fault.h"
#include "common/json_util.h"
#include "common/random.h"
#include "core/provenance.h"
#include "core/quarantine.h"
#include "core/repair.h"
#include "core/rule_io.h"
#include "kb/kb_stats.h"
#include "kb/ntriples_parser.h"
#include "kb/snapshot.h"
#include "test_fixtures.h"
#include "text/similarity.h"

namespace detective {
namespace {

std::string RandomBytes(Rng* rng, size_t max_length, bool printable) {
  size_t length = rng->NextIndex(max_length + 1);
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    if (printable) {
      // Bias toward structural characters that stress the parsers.
      static constexpr char kAlphabet[] =
          "<>\"\\.,#=\n\t abcdefgRULENODEPOSEDGEXIST0123_:";
      out.push_back(kAlphabet[rng->NextIndex(sizeof(kAlphabet) - 1)]);
    } else {
      out.push_back(static_cast<char>(rng->NextUint64(256)));
    }
  }
  return out;
}

std::string Mutate(const std::string& input, Rng* rng, size_t mutations) {
  std::string out = input;
  for (size_t i = 0; i < mutations && !out.empty(); ++i) {
    size_t pos = rng->NextIndex(out.size());
    switch (rng->NextUint64(3)) {
      case 0:
        out[pos] = static_cast<char>(rng->NextUint64(256));
        break;
      case 1:
        out.erase(pos, 1);
        break;
      default:
        out.insert(pos, 1, static_cast<char>(rng->NextUint64(256)));
        break;
    }
  }
  return out;
}

class ParserRobustness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRobustness, CsvNeverCrashes) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    std::string input = RandomBytes(&rng, 200, trial % 2 == 0);
    auto result = ParseCsv(input);
    if (result.ok()) {
      // Accepted input must round-trip through the formatter.
      auto again = ParseCsv(FormatCsv(*result));
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(*again, *result);
    }
  }
}

TEST_P(ParserRobustness, NTriplesNeverCrashes) {
  Rng rng(GetParam() + 100);
  for (int trial = 0; trial < 300; ++trial) {
    std::string input = RandomBytes(&rng, 200, trial % 2 == 0);
    (void)ParseNTriples(input);  // must return, OK or error
  }
}

TEST_P(ParserRobustness, TsvTriplesNeverCrashes) {
  Rng rng(GetParam() + 200);
  for (int trial = 0; trial < 300; ++trial) {
    (void)ParseTsvTriples(RandomBytes(&rng, 200, trial % 2 == 0));
  }
}

TEST_P(ParserRobustness, RuleDslNeverCrashes) {
  Rng rng(GetParam() + 300);
  for (int trial = 0; trial < 300; ++trial) {
    auto result = ParseRules(RandomBytes(&rng, 300, trial % 2 == 0));
    if (result.ok()) {
      // Anything accepted must be valid and format/parse round-trippable.
      for (const DetectiveRule& rule : *result) {
        EXPECT_TRUE(rule.Validate().ok());
      }
      EXPECT_TRUE(ParseRules(FormatRules(*result)).ok());
    }
  }
}

TEST_P(ParserRobustness, MutatedValidRulesNeverCrash) {
  Rng rng(GetParam() + 400);
  std::string valid = FormatRules(testing::BuildFigure4Rules());
  for (int trial = 0; trial < 300; ++trial) {
    (void)ParseRules(Mutate(valid, &rng, 1 + rng.NextIndex(8)));
  }
}

TEST_P(ParserRobustness, MutatedValidNTriplesNeverCrash) {
  Rng rng(GetParam() + 500);
  std::string valid = ToNTriples(testing::BuildFigure1Kb());
  for (int trial = 0; trial < 100; ++trial) {
    (void)ParseNTriples(Mutate(valid, &rng, 1 + rng.NextIndex(12)));
  }
}

TEST_P(ParserRobustness, KbSnapshotNeverCrashes) {
  Rng rng(GetParam() + 800);
  for (int trial = 0; trial < 300; ++trial) {
    (void)ParseKbSnapshot(RandomBytes(&rng, 512, false));
  }
}

TEST_P(ParserRobustness, MutatedValidKbSnapshotNeverCrashes) {
  Rng rng(GetParam() + 900);
  std::string valid = SerializeKbSnapshot(testing::BuildFigure1Kb());
  for (int trial = 0; trial < 200; ++trial) {
    auto result = ParseKbSnapshot(Mutate(valid, &rng, 1 + rng.NextIndex(16)));
    if (result.ok()) {
      // Anything that slipped past every validator must still be usable.
      (void)result->DebugSummary();
    }
  }
}

TEST_P(ParserRobustness, SimilarityParseNeverCrashes) {
  Rng rng(GetParam() + 600);
  for (int trial = 0; trial < 500; ++trial) {
    (void)Similarity::Parse(RandomBytes(&rng, 24, trial % 2 == 0));
  }
}

TEST_P(ParserRobustness, JsonCursorNeverCrashes) {
  Rng rng(GetParam() + 700);
  for (int trial = 0; trial < 500; ++trial) {
    // Drive the cursor the way the schema readers do; every method must
    // return a Status/Result on arbitrary bytes.
    JsonCursor cursor(RandomBytes(&rng, 100, trial % 2 == 0));
    if (cursor.TryConsume('{')) {
      while (true) {
        if (!cursor.TakeString().ok()) break;
        if (!cursor.Expect(':').ok()) break;
        if (!cursor.TakeUint().ok() && !cursor.TakeString().ok()) break;
        if (!cursor.TryConsume(',')) break;
      }
      (void)cursor.Expect('}');
    } else {
      (void)cursor.TakeString();
      (void)cursor.TakeUint();
    }
    (void)cursor.ExpectEnd();
  }
}

TEST_P(ParserRobustness, ProvenanceJsonLinesNeverCrash) {
  // A real provenance log from the paper's worked example, then mutated.
  KnowledgeBase kb = testing::BuildFigure1Kb();
  Relation table = testing::BuildTableI();
  ProvenanceLog log;
  FastRepairer repairer(kb, table.schema(), testing::BuildFigure4Rules());
  ASSERT_TRUE(repairer.Init().ok());
  repairer.engine().set_provenance(&log);
  repairer.RepairRelation(&table);
  std::string valid = log.ToJsonLines();
  ASSERT_FALSE(valid.empty());
  auto round = ProvenanceLog::FromJsonLines(valid);
  ASSERT_TRUE(round.ok()) << round.status().ToString();

  Rng rng(GetParam() + 800);
  for (int trial = 0; trial < 200; ++trial) {
    (void)ProvenanceLog::FromJsonLines(Mutate(valid, &rng, 1 + rng.NextIndex(8)));
    (void)ProvenanceLog::FromJsonLines(RandomBytes(&rng, 200, trial % 2 == 0));
  }
}

TEST_P(ParserRobustness, FaultPlanParseNeverCrashes) {
  Rng rng(GetParam() + 900);
  std::string valid =
      "seed=7; site=kb.load, hit=1; site=kb.*, kind=latency, latency_ms=5, p=0.5";
  for (int trial = 0; trial < 500; ++trial) {
    (void)fault::FaultPlan::Parse(RandomBytes(&rng, 120, trial % 2 == 0));
    auto mutated = fault::FaultPlan::Parse(Mutate(valid, &rng, 1 + rng.NextIndex(6)));
    if (mutated.ok()) {
      // Anything accepted must round-trip through ToString.
      auto again = fault::FaultPlan::Parse(mutated->ToString());
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(*again, *mutated);
    }
  }
}

TEST_P(ParserRobustness, QuarantineJsonLinesNeverCrash) {
  QuarantineLog log;
  log.Add({1, "phi1", "kb.lookup", CancelReason::kFault, 2, "injected"});
  log.Add({3, "", "", CancelReason::kRunDeadline, 0, ""});
  std::string valid = log.ToJsonLines();
  auto round = QuarantineLog::FromJsonLines(valid);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(*round, log);

  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 300; ++trial) {
    (void)QuarantineLog::FromJsonLines(Mutate(valid, &rng, 1 + rng.NextIndex(8)));
    (void)QuarantineLog::FromJsonLines(RandomBytes(&rng, 200, trial % 2 == 0));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness, ::testing::Values(1, 7, 42));

// ---- Resource-exhaustion limits ---------------------------------------------

TEST(ResourceLimitsTest, CsvFieldLimitRejectsOversizedFields) {
  CsvOptions options;
  options.max_field_bytes = 8;
  auto result = ParseCsv("a,bbbbbbbbbbbbbbbb\n", options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("field limit"), std::string::npos);
  EXPECT_TRUE(ParseCsv("a,bbbb\n", options).ok());
  options.max_field_bytes = 0;  // 0 = unlimited
  EXPECT_TRUE(ParseCsv("a,bbbbbbbbbbbbbbbb\n", options).ok());
}

TEST(ResourceLimitsTest, CsvRowLimitRejectsOversizedFiles) {
  CsvOptions options;
  options.max_rows = 2;
  auto result = ParseCsv("a\nb\nc\n", options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("row limit"), std::string::npos);
  EXPECT_TRUE(ParseCsv("a\nb\n", options).ok());
}

TEST(ResourceLimitsTest, KbLineLimitRejectsOversizedLines) {
  // One triple whose literal pushes the line past kMaxKbLineBytes must be
  // rejected with a descriptive error, in both triple formats.
  std::string huge(kMaxKbLineBytes + 16, 'x');
  auto nt = ParseNTriples("<s> <label> \"" + huge + "\" .\n");
  ASSERT_FALSE(nt.ok());
  EXPECT_NE(nt.status().ToString().find("line limit"), std::string::npos);

  auto tsv = ParseTsvTriples("s\tlabel\t\"" + huge + "\"\n");
  ASSERT_FALSE(tsv.ok());
  EXPECT_NE(tsv.status().ToString().find("line limit"), std::string::npos);

  // At the boundary everything still parses.
  EXPECT_TRUE(ParseNTriples("<s> <label> \"small\" .\n").ok());
  EXPECT_TRUE(ParseTsvTriples("s\tlabel\t\"small\"\n").ok());
}

TEST(ParserDeterminism, SameInputSameOutcome) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    std::string input = RandomBytes(&rng, 150, true);
    auto a = ParseRules(input);
    auto b = ParseRules(input);
    EXPECT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_EQ(*a, *b);
    }
  }
}

// ---- KbStats (exercised here since it feeds reports) -------------------------

TEST(KbStatsTest, CountsMatchTheKb) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  KbStats stats = ComputeKbStats(kb);
  EXPECT_EQ(stats.num_entities, kb.num_entities());
  EXPECT_EQ(stats.num_edges, kb.num_edges());
  EXPECT_EQ(stats.num_classes, kb.num_classes());
  EXPECT_EQ(stats.num_relations, kb.num_relations());
  EXPECT_GT(stats.mean_out_degree, 0.0);
  EXPECT_GE(stats.max_out_degree, 8u);  // each laureate has >= 8 out-edges

  // Relation edge counts must sum to the total edge count.
  size_t sum = 0;
  for (const auto& relation : stats.relations) sum += relation.edges;
  EXPECT_EQ(sum, stats.num_edges);

  // Classes are sorted by descending closure size.
  for (size_t i = 1; i < stats.classes.size(); ++i) {
    EXPECT_GE(stats.classes[i - 1].closure_instances,
              stats.classes[i].closure_instances);
  }
  EXPECT_NE(stats.ToString().find("top classes:"), std::string::npos);
}

TEST(KbStatsTest, EmptyKb) {
  KnowledgeBase kb = KbBuilder().Freeze();
  KbStats stats = ComputeKbStats(kb);
  EXPECT_EQ(stats.num_entities, 0u);
  EXPECT_EQ(stats.num_edges, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_out_degree, 0.0);
}

}  // namespace
}  // namespace detective
