// Tests for common/trace: the thread-sharded span recorder, the enable
// gate, ring wrap/dropped accounting, and the Chrome trace-event exporter.

#include "common/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace detective::trace {
namespace {

// The registry is process-global; every test starts a fresh recording epoch
// and stops it on the way out so a failing test cannot leak an enabled gate.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::Global().Start(); }
  void TearDown() override { Registry::Global().Stop(); }
};

const Event* FindEvent(const std::vector<Event>& events, std::string_view name) {
  for (const Event& event : events) {
    if (event.name == name) return &event;
  }
  return nullptr;
}

TEST_F(TraceTest, DisabledGateRecordsNothing) {
  Registry::Global().Stop();
  { DETECTIVE_TRACE_SPAN("test.gated.span"); }
  DETECTIVE_TRACE_INSTANT("test.gated.instant");
  std::vector<Event> events = Registry::Global().Collect();
  EXPECT_EQ(FindEvent(events, "test.gated.span"), nullptr);
  EXPECT_EQ(FindEvent(events, "test.gated.instant"), nullptr);
}

TEST_F(TraceTest, SpansAndInstantsRecordNamesArgsAndPhases) {
  {
    DETECTIVE_TRACE_SPAN("test.basic.span", {"rows", int64_t{42}});
    volatile uint64_t sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<uint64_t>(i);
  }
  DETECTIVE_TRACE_INSTANT("test.basic.instant");
  Registry::Global().Stop();

  std::vector<Event> events = Registry::Global().Collect();
#if DETECTIVE_METRICS_ENABLED
  const Event* span = FindEvent(events, "test.basic.span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->phase, 'X');
  ASSERT_EQ(span->num_args, 1u);
  EXPECT_STREQ(span->args[0].key, "rows");
  EXPECT_EQ(span->args[0].value, 42);

  const Event* instant = FindEvent(events, "test.basic.instant");
  ASSERT_NE(instant, nullptr);
  EXPECT_EQ(instant->phase, 'i');
  EXPECT_EQ(instant->dur_ns, 0u);
  EXPECT_GE(instant->ts_ns, span->ts_ns + span->dur_ns);
#else
  EXPECT_EQ(FindEvent(events, "test.basic.span"), nullptr);
#endif
}

#if DETECTIVE_METRICS_ENABLED

TEST_F(TraceTest, NestedSpansEncloseAndSortParentFirst) {
  {
    DETECTIVE_TRACE_SPAN("test.nest.outer");
    DETECTIVE_TRACE_SPAN("test.nest.inner");
  }
  Registry::Global().Stop();
  std::vector<Event> events = Registry::Global().Collect();
  const Event* outer = FindEvent(events, "test.nest.outer");
  const Event* inner = FindEvent(events, "test.nest.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_LE(outer->ts_ns, inner->ts_ns);
  EXPECT_GE(outer->ts_ns + outer->dur_ns, inner->ts_ns + inner->dur_ns);
  // The (tid, ts, -dur) sort puts the enclosing span before its children.
  EXPECT_LT(outer - events.data(), inner - events.data());
}

TEST_F(TraceTest, CollectIsSortedMonotonicallyPerThread) {
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 100; ++i) {
        DETECTIVE_TRACE_SPAN("test.mt.span");
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  Registry::Global().Stop();

  std::vector<Event> events = Registry::Global().Collect();
  size_t recorded = 0;
  uint32_t last_tid = 0;
  uint64_t last_ts = 0;
  for (const Event& event : events) {
    if (std::string_view(event.name) != "test.mt.span") continue;
    ++recorded;
    if (event.tid != last_tid) {
      last_tid = event.tid;
      last_ts = 0;
    }
    EXPECT_GE(event.ts_ns, last_ts);
    last_ts = event.ts_ns;
  }
  EXPECT_EQ(recorded, 400u);
}

TEST_F(TraceTest, RingWrapKeepsNewestAndCountsDropped) {
  constexpr uint64_t kOverflow = 37;
  for (uint64_t i = 0; i < kRingCapacity + kOverflow; ++i) {
    EmitInstant("test.wrap.instant", {"i", static_cast<int64_t>(i)});
  }
  Registry::Global().Stop();

  EXPECT_EQ(Registry::Global().dropped_events(), kOverflow);
  std::vector<Event> events = Registry::Global().Collect();
  uint64_t live = 0;
  int64_t min_seen = -1;
  for (const Event& event : events) {
    if (std::string_view(event.name) != "test.wrap.instant") continue;
    ++live;
    if (min_seen < 0 || event.args[0].value < min_seen) {
      min_seen = event.args[0].value;
    }
  }
  EXPECT_EQ(live, kRingCapacity);
  // The oldest kOverflow events were overwritten, not an arbitrary subset.
  EXPECT_EQ(min_seen, static_cast<int64_t>(kOverflow));
}

TEST_F(TraceTest, StartDiscardsEarlierEpoch) {
  { DETECTIVE_TRACE_SPAN("test.epoch.stale"); }
  Registry::Global().Start();
  { DETECTIVE_TRACE_SPAN("test.epoch.fresh"); }
  Registry::Global().Stop();
  std::vector<Event> events = Registry::Global().Collect();
  EXPECT_EQ(FindEvent(events, "test.epoch.stale"), nullptr);
  EXPECT_NE(FindEvent(events, "test.epoch.fresh"), nullptr);
  EXPECT_EQ(Registry::Global().dropped_events(), 0u);
}

// The exporter contract the CI validator (tools/check_trace.py) rechecks on
// real output: a JSON array whose X events carry ts and dur in microseconds.
TEST_F(TraceTest, ChromeTraceJsonIsWellFormed) {
  {
    DETECTIVE_TRACE_SPAN("test.json.span", {"rows", int64_t{7}});
  }
  DETECTIVE_TRACE_INSTANT("test.json.mark");
  Registry::Global().Stop();

  std::string json = ToChromeTraceJson(Registry::Global().Collect());
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.substr(json.size() - 2), "]\n");
  // Metadata names the thread rows before any event of that thread.
  size_t meta = json.find("\"thread_name\"");
  size_t span = json.find("\"test.json.span\"");
  ASSERT_NE(meta, std::string::npos);
  ASSERT_NE(span, std::string::npos);
  EXPECT_LT(meta, span);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"rows\": 7}"), std::string::npos);

  // Structural sanity a viewer depends on: one object per line, balanced
  // braces, every non-bracket line an object.
  std::istringstream lines(json);
  std::string line;
  size_t objects = 0;
  while (std::getline(lines, line)) {
    if (line == "[" || line == "]") continue;
    EXPECT_EQ(line.front(), '{') << line;
    ++objects;
  }
  EXPECT_GE(objects, 3u);  // metadata + span + instant at least
}

TEST_F(TraceTest, WriteChromeTraceJsonRoundTripsThroughDisk) {
  { DETECTIVE_TRACE_SPAN("test.file.span"); }
  Registry::Global().Stop();
  std::vector<Event> events = Registry::Global().Collect();

  std::string path = ::testing::TempDir() + "/trace_test_out.json";
  ASSERT_TRUE(WriteChromeTraceJson(events, path).ok());
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), ToChromeTraceJson(events));

  EXPECT_FALSE(
      WriteChromeTraceJson(events, "/nonexistent-dir/trace.json").ok());
}

TEST_F(TraceTest, EmptyCollectionExportsEmptyArray) {
  Registry::Global().Stop();
  Registry::Global().Start();
  Registry::Global().Stop();
  EXPECT_EQ(ToChromeTraceJson({}), "[]\n");
}

#endif  // DETECTIVE_METRICS_ENABLED

}  // namespace
}  // namespace detective::trace
