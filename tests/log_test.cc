// Tests for common/log: the structured JSONL sink, reserved-key collision
// handling, level thresholds, rate-limited macros, and the legacy bridge
// from common/logging.h.

#include "common/log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"

namespace detective::logs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Every test restores the global sink + threshold it touched.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "log_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".jsonl";
    SetLevel(Level::kInfo);
  }
  void TearDown() override {
    CloseJsonFile();
    SetLevel(Level::kInfo);
    std::remove(path_.c_str());
  }

  std::string path_;
};

TEST_F(LogTest, JsonlLineCarriesSchemaAndTypedFields) {
  ASSERT_TRUE(OpenJsonFile(path_).ok());
  ASSERT_TRUE(JsonFileOpen());
  Info("clean", "kb_loaded", "knowledge base ready",
       {{"path", "fig1.nt"},
        {"labels", uint64_t{12}},
        {"depth", -3},
        {"ratio", 0.5},
        {"frozen", true}});
  CloseJsonFile();
  EXPECT_FALSE(JsonFileOpen());

  std::vector<std::string> lines = Lines(ReadFile(path_));
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"ts_ms\":"), std::string::npos);
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(line.find("\"component\":\"clean\""), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"kb_loaded\""), std::string::npos);
  EXPECT_NE(line.find("\"msg\":\"knowledge base ready\""), std::string::npos);
  EXPECT_NE(line.find("\"path\":\"fig1.nt\""), std::string::npos);
  EXPECT_NE(line.find("\"labels\":12"), std::string::npos);
  EXPECT_NE(line.find("\"depth\":-3"), std::string::npos);
  EXPECT_NE(line.find("\"ratio\":0.5"), std::string::npos);
  EXPECT_NE(line.find("\"frozen\":true"), std::string::npos);
}

TEST_F(LogTest, ReservedFieldKeysGetPrefixed) {
  ASSERT_TRUE(OpenJsonFile(path_).ok());
  Warn("obs", "collision", "reserved keys renamed",
       {{"level", "sneaky"}, {"msg", "also sneaky"}, {"row", 7}});
  CloseJsonFile();
  std::string line = ReadFile(path_);
  EXPECT_NE(line.find("\"f_level\":\"sneaky\""), std::string::npos);
  EXPECT_NE(line.find("\"f_msg\":\"also sneaky\""), std::string::npos);
  EXPECT_NE(line.find("\"row\":7"), std::string::npos);
  // The real schema keys are still present exactly once each.
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos);
}

TEST_F(LogTest, StringsAreJsonEscaped) {
  ASSERT_TRUE(OpenJsonFile(path_).ok());
  Info("clean", "escapes", "quote \" slash \\ newline \n tab \t",
       {{"value", std::string_view("ctrl \x01 done")}});
  CloseJsonFile();
  std::string text = ReadFile(path_);
  EXPECT_NE(text.find("quote \\\" slash \\\\ newline \\n tab \\t"),
            std::string::npos);
  EXPECT_NE(text.find("ctrl \\u0001 done"), std::string::npos);
  // Still a single physical line despite the embedded newline.
  EXPECT_EQ(Lines(text).size(), 1u);
}

TEST_F(LogTest, ThresholdSuppressesBelowLevel) {
  ASSERT_TRUE(OpenJsonFile(path_).ok());
  SetLevel(Level::kWarn);
  uint64_t before = EventsEmitted();
  Debug("clean", "hidden", "below threshold");
  Info("clean", "hidden", "below threshold");
  Warn("clean", "visible", "at threshold");
  EXPECT_EQ(EventsEmitted(), before + 1);
  SetLevel(Level::kDebug);
  Debug("clean", "visible_now", "threshold lowered");
  EXPECT_EQ(EventsEmitted(), before + 2);
  CloseJsonFile();
  std::vector<std::string> lines = Lines(ReadFile(path_));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"event\":\"visible\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"event\":\"visible_now\""), std::string::npos);
}

TEST_F(LogTest, LogOnceFiresExactlyOncePerSite) {
  ASSERT_TRUE(OpenJsonFile(path_).ok());
  uint64_t before = EventsEmitted();
  for (int i = 0; i < 100; ++i) {
    DETECTIVE_WARN_ONCE("obs", "once", "should appear a single time");
  }
  EXPECT_EQ(EventsEmitted(), before + 1);
  CloseJsonFile();
  EXPECT_EQ(Lines(ReadFile(path_)).size(), 1u);
}

TEST_F(LogTest, LogEveryNFiresOnTheModulus) {
  ASSERT_TRUE(OpenJsonFile(path_).ok());
  uint64_t before = EventsEmitted();
  for (int i = 0; i < 100; ++i) {
    DETECTIVE_LOG_EVERY_N(10, Level::kWarn, "obs", "sampled",
                          "1st, 11th, 21st...", {"i", i});
  }
  EXPECT_EQ(EventsEmitted(), before + 10);
  CloseJsonFile();
  std::vector<std::string> lines = Lines(ReadFile(path_));
  ASSERT_EQ(lines.size(), 10u);
  EXPECT_NE(lines[0].find("\"i\":0"), std::string::npos);
  EXPECT_NE(lines[1].find("\"i\":10"), std::string::npos);
}

TEST_F(LogTest, LegacyStreamMacrosLandInTheJsonlSink) {
  ASSERT_TRUE(OpenJsonFile(path_).ok());
  LOG_WARNING() << "legacy warning via stream macro";
  CloseJsonFile();
  std::string text = ReadFile(path_);
  EXPECT_NE(text.find("\"component\":\"legacy\""), std::string::npos);
  EXPECT_NE(text.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(text.find("legacy warning via stream macro"), std::string::npos);
}

TEST_F(LogTest, LegacyDebugRespectsLegacyThresholdNotLogsThreshold) {
  // logging.h's own SetLogLevel gates LOG_DEBUG; the logs:: threshold must
  // not double-filter (it stays at kInfo here).
  ASSERT_TRUE(OpenJsonFile(path_).ok());
  SetLogLevel(LogLevel::kDebug);
  LOG_DEBUG() << "legacy debug line";
  SetLogLevel(LogLevel::kInfo);
  LOG_DEBUG() << "suppressed by legacy threshold";
  CloseJsonFile();
  std::string text = ReadFile(path_);
  EXPECT_NE(text.find("legacy debug line"), std::string::npos);
  EXPECT_EQ(text.find("suppressed by legacy threshold"), std::string::npos);
}

TEST_F(LogTest, ReopeningTruncates) {
  ASSERT_TRUE(OpenJsonFile(path_).ok());
  Info("clean", "first_epoch", "before reopen");
  ASSERT_TRUE(OpenJsonFile(path_).ok());  // same path: truncate + swap
  Info("clean", "second_epoch", "after reopen");
  CloseJsonFile();
  std::string text = ReadFile(path_);
  EXPECT_EQ(text.find("first_epoch"), std::string::npos);
  EXPECT_NE(text.find("second_epoch"), std::string::npos);
}

TEST_F(LogTest, OpenJsonFileFailureLeavesTextSinkActive) {
  Status status = OpenJsonFile("/nonexistent-dir-xyz/log.jsonl");
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(JsonFileOpen());
}

TEST(LogLevelNameTest, WireNamesAreStable) {
  EXPECT_EQ(LevelName(Level::kDebug), "debug");
  EXPECT_EQ(LevelName(Level::kInfo), "info");
  EXPECT_EQ(LevelName(Level::kWarn), "warn");
  EXPECT_EQ(LevelName(Level::kError), "error");
}

}  // namespace
}  // namespace detective::logs
