// Unit and property tests for src/text: edit distance, tokenizers,
// similarity functions, and the signature-based inverted index (§IV-B(2)).

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "text/edit_distance.h"
#include "text/signature_index.h"
#include "text/similarity.h"
#include "text/tokenizer.h"

namespace detective {
namespace {

// ---- EditDistance ---------------------------------------------------------

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(EditDistance("Chemistry", "Chamstry"), 2u);  // the paper's example
}

TEST(EditDistanceTest, Symmetry) {
  EXPECT_EQ(EditDistance("paris", "parma"), EditDistance("parma", "paris"));
}

TEST(EditDistanceTest, BoundedAgreesWhenWithin) {
  EXPECT_EQ(BoundedEditDistance("kitten", "sitting", 3), 3u);
  EXPECT_TRUE(WithinEditDistance("kitten", "sitting", 3));
  EXPECT_FALSE(WithinEditDistance("kitten", "sitting", 2));
}

TEST(EditDistanceTest, BoundedRejectsLengthGap) {
  EXPECT_FALSE(WithinEditDistance("ab", "abcdef", 2));
  EXPECT_TRUE(WithinEditDistance("ab", "abcd", 2));
}

TEST(EditDistanceTest, EmptyStrings) {
  EXPECT_TRUE(WithinEditDistance("", "", 0));
  EXPECT_TRUE(WithinEditDistance("", "ab", 2));
  EXPECT_FALSE(WithinEditDistance("", "abc", 2));
}

/// Property: banded computation agrees with the full DP for every threshold,
/// over randomly generated string pairs.
class BandedEditDistanceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BandedEditDistanceProperty, AgreesWithFullDp) {
  Rng rng(GetParam());
  auto random_string = [&](size_t max_len) {
    size_t len = rng.NextIndex(max_len + 1);
    std::string s;
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.NextIndex(4)));  // small alphabet
    }
    return s;
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::string a = random_string(12);
    std::string b = random_string(12);
    size_t exact = EditDistance(a, b);
    for (size_t k = 0; k <= 5; ++k) {
      SCOPED_TRACE("a=" + a + " b=" + b + " k=" + std::to_string(k));
      EXPECT_EQ(WithinEditDistance(a, b, k), exact <= k);
      if (exact <= k) {
        EXPECT_EQ(BoundedEditDistance(a, b, k), exact);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandedEditDistanceProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---- Tokenizers --------------------------------------------------------------

TEST(TokenizerTest, WordTokensLowercaseAndSplit) {
  EXPECT_EQ(WordTokens("Hello, World!"), (std::vector<std::string>{"hello", "world"}));
  EXPECT_EQ(WordTokens("  a-b_c  "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(WordTokens("...").empty());
}

TEST(TokenizerTest, WordTokenSetSortedUnique) {
  EXPECT_EQ(WordTokenSet("b a b A"), (std::vector<std::string>{"a", "b"}));
}

TEST(TokenizerTest, QGramsPadded) {
  std::vector<std::string> grams = QGrams("ab", 2, /*pad=*/true);
  // "#ab$" -> {#a, ab, b$}
  EXPECT_EQ(grams.size(), 3u);
  EXPECT_TRUE(std::is_sorted(grams.begin(), grams.end()));
}

TEST(TokenizerTest, QGramsUnpaddedShortString) {
  EXPECT_TRUE(QGrams("a", 2, /*pad=*/false).empty());
  EXPECT_EQ(QGrams("ab", 2, /*pad=*/false).size(), 1u);
}

TEST(TokenizerTest, QGramsZeroQ) { EXPECT_TRUE(QGrams("abc", 0).empty()); }

// ---- Similarity ---------------------------------------------------------------

TEST(SimilarityTest, EqualityMatches) {
  Similarity eq = Similarity::Equality();
  EXPECT_TRUE(eq.Matches("abc", "abc"));
  EXPECT_FALSE(eq.Matches("abc", "abd"));
  EXPECT_DOUBLE_EQ(eq.Score("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(eq.Score("abc", "abd"), 0.0);
}

TEST(SimilarityTest, EditDistanceMatches) {
  Similarity ed2 = Similarity::EditDistance(2);
  EXPECT_TRUE(ed2.Matches("Pasteur Institute", "Paster Institute"));
  EXPECT_FALSE(ed2.Matches("Pasteur Institute", "P. Institute"));
  EXPECT_GT(ed2.Score("abcd", "abcx"), 0.7);
}

TEST(SimilarityTest, JaccardMatches) {
  Similarity jac = Similarity::Jaccard(0.5);
  EXPECT_TRUE(jac.Matches("university of berkeley", "Berkeley University"));
  EXPECT_FALSE(jac.Matches("alpha beta", "gamma delta"));
}

TEST(SimilarityTest, JaccardValues) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity("a b", "a b"), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity("a b", "b c"), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity("a", ""), 0.0);
}

TEST(SimilarityTest, CosineValues) {
  EXPECT_DOUBLE_EQ(CosineSimilarity("a b", "a b"), 1.0);
  EXPECT_NEAR(CosineSimilarity("a b", "b c"), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(CosineSimilarity("", ""), 1.0);
}

TEST(SimilarityTest, ToStringRoundTripsThroughParse) {
  for (const Similarity& sim :
       {Similarity::Equality(), Similarity::EditDistance(2), Similarity::Jaccard(0.8),
        Similarity::Cosine(0.75)}) {
    auto parsed = Similarity::Parse(sim.ToString());
    ASSERT_TRUE(parsed.ok()) << sim.ToString();
    EXPECT_EQ(*parsed, sim);
  }
}

TEST(SimilarityTest, ParseAcceptsAliases) {
  EXPECT_TRUE(Similarity::Parse("=")->Matches("x", "x"));
  EXPECT_EQ(Similarity::Parse("ed, 3")->max_edits(), 3u);
  EXPECT_EQ(Similarity::Parse("jaccard,0.5")->kind(), SimilarityKind::kJaccard);
  EXPECT_EQ(Similarity::Parse("COSINE,0.5")->kind(), SimilarityKind::kCosine);
}

TEST(SimilarityTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Similarity::Parse("bogus").ok());
  EXPECT_FALSE(Similarity::Parse("ED,notanumber").ok());
  EXPECT_FALSE(Similarity::Parse("JAC,1.5").ok());
  EXPECT_FALSE(Similarity::Parse("ED,100").ok());
}

// ---- SignatureIndex -------------------------------------------------------------

TEST(SignatureIndexTest, EqualityLookup) {
  SignatureIndex index(Similarity::Equality());
  index.Add(1, "Haifa");
  index.Add(2, "Paris");
  index.Add(3, "Haifa");
  index.Build();
  EXPECT_EQ(index.Matches("Haifa"), (std::vector<uint32_t>{1, 3}));
  EXPECT_TRUE(index.Matches("haifa").empty());  // equality is case-sensitive
  EXPECT_TRUE(index.Matches("Rome").empty());
}

TEST(SignatureIndexTest, EditDistanceFindsFuzzyMatches) {
  SignatureIndex index(Similarity::EditDistance(2));
  index.Add(1, "Pasteur Institute");
  index.Add(2, "Cornell University");
  index.Build();
  EXPECT_EQ(index.Matches("Paster Institute"), (std::vector<uint32_t>{1}));
  EXPECT_TRUE(index.Matches("MIT").empty());
}

TEST(SignatureIndexTest, ShortStringsAreIndexed) {
  SignatureIndex index(Similarity::EditDistance(2));
  index.Add(1, "ab");
  index.Add(2, "a");
  index.Build();
  EXPECT_EQ(index.Matches("b"), (std::vector<uint32_t>{1, 2}));
}

/// Property: for every similarity kind, Candidates() is a superset of the
/// brute-force matches (the completeness guarantee of §IV-B(2)), and
/// Matches() equals brute force exactly.
struct IndexPropertyParam {
  Similarity sim;
  uint64_t seed;
};

class SignatureIndexProperty : public ::testing::TestWithParam<IndexPropertyParam> {};

TEST_P(SignatureIndexProperty, CandidatesCompleteMatchesExact) {
  const IndexPropertyParam& param = GetParam();
  Rng rng(param.seed);
  auto random_string = [&] {
    size_t words = 1 + rng.NextIndex(3);
    std::string s;
    for (size_t w = 0; w < words; ++w) {
      if (w > 0) s.push_back(' ');
      size_t len = 1 + rng.NextIndex(8);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + rng.NextIndex(5)));
      }
    }
    return s;
  };

  std::vector<std::string> values;
  SignatureIndex index(param.sim);
  for (uint32_t i = 0; i < 150; ++i) {
    values.push_back(random_string());
    index.Add(i, values.back());
  }
  index.Build();

  for (int trial = 0; trial < 60; ++trial) {
    std::string query = random_string();
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < values.size(); ++i) {
      if (param.sim.Matches(query, values[i])) expected.push_back(i);
    }
    std::vector<uint32_t> candidates = index.Candidates(query);
    for (uint32_t id : expected) {
      EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(), id))
          << "query '" << query << "' lost true match '" << values[id] << "'";
    }
    EXPECT_EQ(index.Matches(query), expected) << "query '" << query << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SignatureIndexProperty,
    ::testing::Values(IndexPropertyParam{Similarity::Equality(), 17},
                      IndexPropertyParam{Similarity::EditDistance(1), 18},
                      IndexPropertyParam{Similarity::EditDistance(2), 19},
                      IndexPropertyParam{Similarity::EditDistance(3), 20},
                      IndexPropertyParam{Similarity::Jaccard(0.6), 21},
                      IndexPropertyParam{Similarity::Jaccard(0.9), 22},
                      IndexPropertyParam{Similarity::Cosine(0.7), 23}));

TEST(SignatureIndexTest, EmptyIndexIsSafe) {
  SignatureIndex index(Similarity::EditDistance(2));
  index.Build();
  EXPECT_TRUE(index.Candidates("anything").empty());
  EXPECT_TRUE(index.Matches("anything").empty());
}

TEST(SignatureIndexTest, EmptyQueryOnPrefixFilter) {
  SignatureIndex index(Similarity::Jaccard(0.5));
  index.Add(1, "some words");
  index.Add(2, "");
  index.Build();
  EXPECT_EQ(index.Matches(""), (std::vector<uint32_t>{2}));
}

}  // namespace
}  // namespace detective
