// Tests for 2-hop path discovery in rule generation (discover_paths): when
// two columns share no direct KB relationship, discovery finds
// colA -rel1-> (existential mid) -rel2-> colB and rule generation can emit
// rules whose positive or negative side is a path.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/repair.h"
#include "core/rule_generation.h"

namespace detective {
namespace {

/// World: person works at an institution located in a city (no direct
/// person->city "work city" relation), and person is a member of a club
/// that meets in a (different) city — the confusable path semantics.
KnowledgeBase PathKb() {
  KbBuilder b;
  ClassId person = b.AddClass("person");
  ClassId org = b.AddClass("organization");
  ClassId club = b.AddClass("club");
  ClassId city = b.AddClass("city");
  RelationId works = b.AddRelation("worksAt");
  RelationId located = b.AddRelation("locatedIn");
  RelationId member = b.AddRelation("memberOf");
  RelationId meets = b.AddRelation("meetsIn");

  ItemId haifa = b.AddEntity("Haifa", {city});
  ItemId paris = b.AddEntity("Paris", {city});
  ItemId oslo = b.AddEntity("Oslo", {city});
  ItemId rome = b.AddEntity("Rome", {city});
  ItemId technion = b.AddEntity("Technion", {org});
  ItemId pasteur = b.AddEntity("Pasteur", {org});
  b.AddEdge(technion, located, haifa);
  b.AddEdge(pasteur, located, paris);
  ItemId chess = b.AddEntity("Chess Club", {club});
  ItemId rowing = b.AddEntity("Rowing Club", {club});
  b.AddEdge(chess, meets, oslo);
  b.AddEdge(rowing, meets, rome);

  auto person_at = [&](const char* name, ItemId inst, ItemId c) {
    ItemId p = b.AddEntity(name, {person});
    b.AddEdge(p, works, inst);
    b.AddEdge(p, member, c);
    return p;
  };
  person_at("Alice", technion, chess);
  person_at("Bob", pasteur, rowing);
  person_at("Carol", technion, rowing);
  return std::move(b).Freeze();
}

Relation Positives() {
  Relation r{Schema({"Name", "City"})};
  r.Append({"Alice", "Haifa"}).Abort("p");
  r.Append({"Bob", "Paris"}).Abort("p");
  r.Append({"Carol", "Haifa"}).Abort("p");
  return r;
}

Relation Negatives() {
  // City wrongly holds the club's meeting city.
  Relation r{Schema({"Name", "City"})};
  r.Append({"Alice", "Oslo"}).Abort("n");
  r.Append({"Bob", "Rome"}).Abort("n");
  return r;
}

TEST(PathDiscoveryTest, OffByDefaultFindsNoConnection) {
  KnowledgeBase kb = PathKb();
  auto discovered = DiscoverMatchingGraph(kb, Positives(), "City");
  // Without paths there is no direct Name-City relationship, so the
  // component containing City is just the City node — an invalid
  // single-node disconnected graph is still "connected", but no edges.
  ASSERT_TRUE(discovered.ok()) << discovered.status().ToString();
  EXPECT_TRUE(discovered->graph.edges().empty());
  EXPECT_TRUE(discovered->target_paths.empty());
}

TEST(PathDiscoveryTest, FindsTheWorkCityPath) {
  KnowledgeBase kb = PathKb();
  DiscoveryOptions options;
  options.discover_paths = true;
  auto discovered = DiscoverMatchingGraph(kb, Positives(), "City", options);
  ASSERT_TRUE(discovered.ok()) << discovered.status().ToString();

  // The graph gained an existential organization node with worksAt/locatedIn.
  const SchemaMatchingGraph& g = discovered->graph;
  bool found_existential = false;
  for (const MatchNode& node : g.nodes()) {
    if (node.IsExistential()) {
      found_existential = true;
      EXPECT_EQ(node.type, "organization");
    }
  }
  EXPECT_TRUE(found_existential);
  ASSERT_FALSE(discovered->target_paths.empty());
  EXPECT_EQ(discovered->target_paths[0].rel1, "worksAt");
  EXPECT_EQ(discovered->target_paths[0].rel2, "locatedIn");
  EXPECT_DOUBLE_EQ(discovered->target_paths[0].support, 1.0);
}

TEST(PathDiscoveryTest, GeneratesAPathRuleThatRepairs) {
  KnowledgeBase kb = PathKb();
  DiscoveryOptions options;
  options.discover_paths = true;
  auto rules = GenerateRules(kb, Positives(), Negatives(), "City", options);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_FALSE(rules->empty());

  // At least one candidate must carry the club path as negative semantics.
  const DetectiveRule* path_rule = nullptr;
  for (const DetectiveRule& rule : *rules) {
    size_t existentials = 0;
    for (const MatchNode& node : rule.graph().nodes()) {
      existentials += node.IsExistential() ? 1 : 0;
    }
    if (existentials >= 2) path_rule = &rule;  // positive path + negative path
  }
  ASSERT_NE(path_rule, nullptr);
  EXPECT_TRUE(path_rule->Validate().ok());

  // The generated rule repairs a fresh dirty tuple end to end.
  Relation table{Schema({"Name", "City"})};
  ASSERT_TRUE(table.Append({"Carol", "Rome"}).ok());  // rowing club city
  std::vector<DetectiveRule> one = {*path_rule};
  FastRepairer repairer(kb, table.schema(), one);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&table);
  EXPECT_EQ(table.tuple(0).value(1), "Haifa");
  EXPECT_TRUE(table.tuple(0).IsPositive(1));
}

TEST(PathDiscoveryTest, DirectEdgeStillPreferredWhenPresent) {
  // Add a direct livesIn relation: discovery must use it, not a path.
  KbBuilder b;
  ClassId person = b.AddClass("person");
  ClassId city = b.AddClass("city");
  RelationId lives = b.AddRelation("livesIn");
  ItemId haifa = b.AddEntity("Haifa", {city});
  ItemId alice = b.AddEntity("Alice", {person});
  b.AddEdge(alice, lives, haifa);
  KnowledgeBase kb = std::move(b).Freeze();

  Relation examples{Schema({"Name", "City"})};
  ASSERT_TRUE(examples.Append({"Alice", "Haifa"}).ok());
  DiscoveryOptions options;
  options.discover_paths = true;
  auto discovered = DiscoverMatchingGraph(kb, examples, "City", options);
  ASSERT_TRUE(discovered.ok());
  for (const MatchNode& node : discovered->graph.nodes()) {
    EXPECT_FALSE(node.IsExistential());
  }
}

}  // namespace
}  // namespace detective
