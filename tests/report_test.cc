// Tests for eval/report: relation diffing and the markdown cleaning report.

#include <gtest/gtest.h>

#include "core/repair.h"
#include "eval/report.h"
#include "test_fixtures.h"

namespace detective {
namespace {

TEST(DiffRelationsTest, FindsExactlyTheChangedCells) {
  Relation before{Schema({"A", "B"})};
  ASSERT_TRUE(before.Append({"1", "2"}).ok());
  ASSERT_TRUE(before.Append({"3", "4"}).ok());
  Relation after = before;
  after.SetValue(0, 1, "x");
  after.SetValue(1, 0, "y");

  std::vector<CellDiff> diffs = DiffRelations(before, after);
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_EQ(diffs[0], (CellDiff{0, 1, "2", "x"}));
  EXPECT_EQ(diffs[1], (CellDiff{1, 0, "3", "y"}));
}

TEST(DiffRelationsTest, IdenticalRelationsProduceNoDiff) {
  Relation r = testing::BuildTableI();
  EXPECT_TRUE(DiffRelations(r, r).empty());
}

TEST(DiffRelationsTest, EndToEndDiffMatchesRepairProvenance) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  Relation dirty = testing::BuildTableI();
  Relation repaired = dirty;
  FastRepairer repairer(kb, dirty.schema(), testing::BuildFigure4Rules());
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&repaired);

  std::vector<CellDiff> diffs = DiffRelations(dirty, repaired);
  // Every diff corresponds to a provenance-recorded repair and vice versa.
  size_t provenance_repairs = 0;
  for (size_t row = 0; row < repaired.num_tuples(); ++row) {
    for (ColumnIndex c = 0; c < repaired.schema().num_columns(); ++c) {
      if (repaired.tuple(row).WasRepaired(c)) ++provenance_repairs;
    }
  }
  EXPECT_EQ(diffs.size(), provenance_repairs);
  for (const CellDiff& diff : diffs) {
    EXPECT_TRUE(repaired.tuple(diff.row).WasRepaired(diff.column));
    EXPECT_EQ(repaired.tuple(diff.row).OriginalValue(diff.column), diff.before);
    EXPECT_EQ(repaired.tuple(diff.row).value(diff.column), diff.after);
  }
}

TEST(MarkdownReportTest, ContainsQualityAndRepairs) {
  Schema schema({"Name", "City"});
  RepairQuality quality;
  quality.errors = 2;
  quality.repairs = 2;
  quality.exact_correct = 2;
  quality.weighted_correct = 2;
  quality.pos_marks = 4;
  std::vector<CellDiff> repairs = {{0, 1, "Karcag", "Haifa"},
                                   {3, 1, "St. Paul", "Berkeley"}};
  std::string report = MarkdownReport(schema, quality, repairs);
  EXPECT_NE(report.find("precision: 1"), std::string::npos);
  EXPECT_NE(report.find("| City | 2 |"), std::string::npos);
  EXPECT_NE(report.find("| 0 | City | Karcag | Haifa |"), std::string::npos);
  EXPECT_EQ(report.find("truncated"), std::string::npos);
}

TEST(MarkdownReportTest, TruncatesLongDiffLists) {
  Schema schema({"A"});
  RepairQuality quality;
  std::vector<CellDiff> repairs;
  for (size_t i = 0; i < 150; ++i) {
    repairs.push_back({i, 0, "x", "y"});
  }
  std::string report = MarkdownReport(schema, quality, repairs, /*max_rows=*/100);
  EXPECT_NE(report.find("(50 more repairs truncated)"), std::string::npos);
}

TEST(MarkdownReportTest, EscapesTableBreakers) {
  Schema schema({"A"});
  RepairQuality quality;
  std::vector<CellDiff> repairs = {{0, 0, "a|b", "c\nd"}};
  std::string report = MarkdownReport(schema, quality, repairs);
  EXPECT_NE(report.find("a\\|b"), std::string::npos);
  EXPECT_NE(report.find("c d"), std::string::npos);
}

TEST(MarkdownReportTest, EmptyRepairs) {
  Schema schema({"A"});
  RepairQuality quality;
  std::string report = MarkdownReport(schema, quality, {});
  EXPECT_NE(report.find("(none)"), std::string::npos);
}

}  // namespace
}  // namespace detective
