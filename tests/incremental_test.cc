// Tests for core/incremental.h: the byte-identity contract (incremental
// re-clean of a delta == full re-clean of the delta-applied relation, for
// CSV, provenance, and quarantine, at every thread count, with and without
// an armed fault plan), plus delta parsing and the documented rejections.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fault.h"
#include "core/incremental.h"
#include "core/parallel_repair.h"
#include "datagen/uis_gen.h"
#include "eval/experiment.h"
#include "test_fixtures.h"

namespace detective {
namespace {

/// Arms the global injector for one test body and always disarms on exit.
class ArmedPlan {
 public:
  explicit ArmedPlan(std::string_view spec) {
    auto plan = fault::FaultPlan::Parse(spec);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    if (plan.ok()) fault::Injector::Global().Arm(*plan);
  }
  ~ArmedPlan() { fault::Injector::Global().Disarm(); }
};

/// A small UIS world with injected errors: enough rows that a 2% delta and
/// its closure are a strict subset, small enough to chase many times.
struct World {
  Dataset dataset;
  Relation dirty;
  KnowledgeBase kb;

  World() : dataset(GenerateUis(MakeOptions())) {
    dirty = dataset.clean;
    ErrorSpec spec;
    spec.error_rate = 0.10;
    InjectErrors(&dirty, spec, dataset.alternatives);
    kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  }

  static UisOptions MakeOptions() {
    UisOptions options;
    options.num_tuples = 400;
    return options;
  }
};

/// Every 50th row gets a rewritten (row-unique) Name cell.
RelationDelta MakeDelta(const Relation& relation) {
  RelationDelta delta;
  const Schema& schema = relation.schema();
  for (size_t row = 0; row < relation.num_tuples(); row += 50) {
    DeltaChange change;
    change.row = row;
    for (ColumnIndex c = 0; c < schema.num_columns(); ++c) {
      change.values.push_back(std::string(relation.value(row, c)));
    }
    change.values[0] = "Delta Person " + std::to_string(row);
    delta.changes.push_back(std::move(change));
    ++delta.num_updates;
  }
  return delta;
}

struct RunLogs {
  Relation relation;
  ProvenanceLog provenance;
  QuarantineLog quarantine;

  explicit RunLogs(Relation r) : relation(std::move(r)) {}
};

/// Full clean of `input` through the parallel driver.
RunLogs FullClean(const World& world, const Relation& input, size_t threads,
                  bool guarded) {
  RunLogs run(input);
  ParallelRepairOptions options;
  options.num_threads = threads;
  options.provenance = &run.provenance;
  options.quarantine = guarded ? &run.quarantine : nullptr;
  auto stats = ParallelRepair(world.kb, world.dataset.rules, &run.relation,
                              options);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return run;
}

/// Incremental re-clean of `input` + `delta`, replaying `prev`'s logs.
RunLogs Incremental(const World& world, const Relation& input,
                    const RelationDelta& delta, const RunLogs& prev,
                    size_t threads, bool guarded) {
  RunLogs run(input);
  auto plan = PlanIncremental(delta, &run.relation, prev.provenance,
                              guarded ? &prev.quarantine : nullptr);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  IncrementalOptions options;
  options.num_threads = threads;
  options.provenance = &run.provenance;
  options.quarantine = guarded ? &run.quarantine : nullptr;
  ProvenanceLog prev_provenance = prev.provenance;  // consumed by the call
  auto stats = IncrementalRepair(world.kb, world.dataset.rules, &run.relation,
                                 *plan, std::move(prev_provenance),
                                 guarded ? &prev.quarantine : nullptr, options);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  if (stats.ok()) {
    EXPECT_EQ(stats->rows_rechased, plan->affected_rows.size());
    EXPECT_EQ(stats->rows_rechased + stats->rows_replayed,
              run.relation.num_tuples());
  }
  return run;
}

Relation ApplyDelta(const Relation& relation, const RelationDelta& delta) {
  Relation out = relation;
  for (const DeltaChange& change : delta.changes) {
    if (change.insert) {
      EXPECT_TRUE(out.Append(change.values).ok());
      continue;
    }
    for (ColumnIndex c = 0; c < out.schema().num_columns(); ++c) {
      out.SetValue(change.row, c, change.values[c]);
    }
  }
  return out;
}

void ExpectByteIdentity(const RunLogs& full, const RunLogs& incremental) {
  EXPECT_EQ(full.relation.ToCsv(), incremental.relation.ToCsv());
  EXPECT_EQ(full.provenance.ToJsonLines(), incremental.provenance.ToJsonLines());
  EXPECT_EQ(full.quarantine.ToJsonLines(), incremental.quarantine.ToJsonLines());
}

// ---- Byte-identity at every thread count ------------------------------------

TEST(IncrementalByteIdentityTest, MatchesFullRecleanAcrossThreadCounts) {
  World world;
  RunLogs first = FullClean(world, world.dirty, 1, /*guarded=*/false);
  RelationDelta delta = MakeDelta(world.dirty);
  Relation delta_applied = ApplyDelta(world.dirty, delta);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    RunLogs full = FullClean(world, delta_applied, threads, false);
    RunLogs inc =
        Incremental(world, world.dirty, delta, first, threads, false);
    ExpectByteIdentity(full, inc);
  }
}

TEST(IncrementalByteIdentityTest, HoldsUnderAnArmedFaultPlan) {
  // The per-tuple fault scope keys off the row index, so a quarantining
  // plan fires identically under a full re-clean and an incremental one —
  // including for the previously quarantined rows the plan re-chases.
  constexpr std::string_view kPlan = "seed=11; site=repair.tuple, p=0.1";
  World world;
  RelationDelta delta = MakeDelta(world.dirty);
  Relation delta_applied = ApplyDelta(world.dirty, delta);

  RunLogs first(world.dirty);
  {
    ArmedPlan armed(kPlan);
    first = FullClean(world, world.dirty, 1, /*guarded=*/true);
  }
  EXPECT_FALSE(first.quarantine.empty()) << "fault plan quarantined nothing";
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ArmedPlan armed(kPlan);
    RunLogs full = FullClean(world, delta_applied, threads, true);
    RunLogs inc = Incremental(world, world.dirty, delta, first, threads, true);
    ExpectByteIdentity(full, inc);
  }
}

TEST(IncrementalByteIdentityTest, InsertsAreChasedAsNewRows) {
  World world;
  RunLogs first = FullClean(world, world.dirty, 1, false);
  RelationDelta delta;
  DeltaChange insert;
  insert.insert = true;
  for (ColumnIndex c = 0; c < world.dirty.schema().num_columns(); ++c) {
    insert.values.push_back(std::string(world.dirty.value(3, c)));
  }
  delta.changes.push_back(insert);
  ++delta.num_inserts;
  Relation delta_applied = ApplyDelta(world.dirty, delta);
  RunLogs full = FullClean(world, delta_applied, 1, false);
  RunLogs inc = Incremental(world, world.dirty, delta, first, 1, false);
  EXPECT_EQ(inc.relation.num_tuples(), world.dirty.num_tuples() + 1);
  ExpectByteIdentity(full, inc);
}

// ---- Plan construction -------------------------------------------------------

TEST(IncrementalPlanTest, EmptyDeltaAffectsNothing) {
  World world;
  RunLogs first = FullClean(world, world.dirty, 1, false);
  Relation relation = world.dirty;
  auto plan = PlanIncremental(RelationDelta{}, &relation, first.provenance,
                              nullptr);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->affected_rows.empty());
  EXPECT_EQ(plan->delta_rows, 0u);
}

TEST(IncrementalPlanTest, OutOfRangeUpdateIsRejected) {
  World world;
  Relation relation = world.dirty;
  RelationDelta delta;
  DeltaChange change;
  change.row = relation.num_tuples() + 5;
  change.values.assign(relation.schema().num_columns(), "x");
  delta.changes.push_back(change);
  ++delta.num_updates;
  auto plan = PlanIncremental(delta, &relation, ProvenanceLog(), nullptr);
  ASSERT_FALSE(plan.ok());
  EXPECT_TRUE(plan.status().IsInvalidArgument());
}

TEST(IncrementalPlanTest, PreviouslyQuarantinedRowsAreRechased) {
  World world;
  RunLogs first(world.dirty);
  {
    ArmedPlan armed("seed=11; site=repair.tuple, p=0.1");
    first = FullClean(world, world.dirty, 1, true);
  }
  ASSERT_FALSE(first.quarantine.empty());
  Relation relation = world.dirty;
  auto plan = PlanIncremental(RelationDelta{}, &relation, first.provenance,
                              &first.quarantine);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->quarantined_rows, plan->affected_rows.size());
  EXPECT_GT(plan->quarantined_rows, 0u);
}

// ---- Documented rejections ---------------------------------------------------

TEST(IncrementalRejectionTest, CircuitBreakerAndDeadlineAreRejected) {
  World world;
  RunLogs first = FullClean(world, world.dirty, 1, false);
  RelationDelta delta = MakeDelta(world.dirty);
  for (const bool breaker : {true, false}) {
    Relation relation = world.dirty;
    auto plan = PlanIncremental(delta, &relation, first.provenance, nullptr);
    ASSERT_TRUE(plan.ok());
    IncrementalOptions options;
    if (breaker) {
      options.repair.max_rule_failures = 3;
    } else {
      options.repair.deadline_ms = 1000;
    }
    auto stats =
        IncrementalRepair(world.kb, world.dataset.rules, &relation, *plan,
                          ProvenanceLog(first.provenance), nullptr, options);
    ASSERT_FALSE(stats.ok());
    EXPECT_TRUE(stats.status().IsInvalidArgument());
  }
}

TEST(IncrementalRejectionTest, PlanRelationMismatchIsRejected) {
  World world;
  RunLogs first = FullClean(world, world.dirty, 1, false);
  Relation relation = world.dirty;
  auto plan = PlanIncremental(RelationDelta{}, &relation, first.provenance,
                              nullptr);
  ASSERT_TRUE(plan.ok());
  IncrementalPlan truncated = *plan;
  truncated.is_affected.pop_back();
  auto stats = IncrementalRepair(world.kb, world.dataset.rules, &relation,
                                 truncated, ProvenanceLog(first.provenance),
                                 nullptr, IncrementalOptions{});
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsInvalidArgument());
}

// ---- Delta CSV parsing -------------------------------------------------------

Schema UisSchema() {
  return Schema({"Name", "University", "City", "State", "Zip"});
}

TEST(DeltaCsvTest, ParsesUpdatesAndInserts) {
  auto delta = ParseDeltaCsv(
      "row,Name,University,City,State,Zip\n"
      "4,Ada Lovelace,Technion,Haifa,HA,31000\n"
      ",New Person,MIT,Cambridge,MA,02139\n",
      UisSchema());
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->num_updates, 1u);
  EXPECT_EQ(delta->num_inserts, 1u);
  ASSERT_EQ(delta->changes.size(), 2u);
  EXPECT_EQ(delta->changes[0].row, 4u);
  EXPECT_FALSE(delta->changes[0].insert);
  EXPECT_TRUE(delta->changes[1].insert);
  EXPECT_EQ(delta->changes[1].values[0], "New Person");
}

TEST(DeltaCsvTest, RejectsMissingRowHeader) {
  auto delta = ParseDeltaCsv("Name,University,City,State,Zip\n", UisSchema());
  ASSERT_FALSE(delta.ok());
  EXPECT_TRUE(delta.status().IsParseError());
}

TEST(DeltaCsvTest, RejectsSchemaMismatch) {
  auto delta = ParseDeltaCsv("row,Name,College\n1,a,b\n", UisSchema());
  ASSERT_FALSE(delta.ok());
  EXPECT_TRUE(delta.status().IsParseError());
}

TEST(DeltaCsvTest, RejectsShortRecordAndBadRowIndex) {
  const Schema schema = UisSchema();
  auto short_record = ParseDeltaCsv(
      "row,Name,University,City,State,Zip\n1,only-two\n", schema);
  ASSERT_FALSE(short_record.ok());
  EXPECT_TRUE(short_record.status().IsParseError());

  auto bad_row = ParseDeltaCsv(
      "row,Name,University,City,State,Zip\nxyz,a,b,c,d,e\n", schema);
  ASSERT_FALSE(bad_row.ok());
  EXPECT_TRUE(bad_row.status().IsParseError());
}

TEST(DeltaCsvTest, RejectsEmptyInput) {
  auto delta = ParseDeltaCsv("", UisSchema());
  ASSERT_FALSE(delta.ok());
  EXPECT_TRUE(delta.status().IsParseError());
}

}  // namespace
}  // namespace detective
