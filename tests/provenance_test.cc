// Tests for core/provenance: capture during repair (every cell change gets
// an explainable record naming the rule and KB evidence), determinism under
// ParallelRepair, the JSONL round-trip, and cell lookup.

#include "core/provenance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/parallel_repair.h"
#include "core/repair.h"
#include "datagen/uis_gen.h"
#include "test_fixtures.h"

namespace detective {
namespace {

ProvenanceLog CaptureSequential(const KnowledgeBase& kb,
                                const std::vector<DetectiveRule>& rules,
                                Relation* relation) {
  ProvenanceLog log;
  FastRepairer repairer(kb, relation->schema(), rules);
  EXPECT_TRUE(repairer.Init().ok());
  repairer.engine().set_provenance(&log);
  repairer.RepairRelation(relation);
  return log;
}

TEST(ProvenanceTest, EveryRepairedCellGetsARecordWithKbEvidence) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  std::vector<DetectiveRule> rules = testing::BuildFigure4Rules();
  Relation before = testing::BuildTableI();
  Relation repaired = before;
  ProvenanceLog log = CaptureSequential(kb, rules, &repaired);
  ASSERT_FALSE(log.empty());

  // Every cell whose value changed must be covered by a repair or
  // normalization record carrying the old and new values.
  size_t changed_cells = 0;
  for (size_t row = 0; row < before.num_tuples(); ++row) {
    for (uint32_t col = 0; col < before.schema().num_columns(); ++col) {
      std::string_view old_value = before.value(row, col);
      std::string_view new_value = repaired.value(row, col);
      if (old_value == new_value) continue;
      ++changed_cells;
      auto matches = log.ForCell(row, before.schema().column_name(col));
      bool covered = false;
      for (const RepairProvenance* record : matches) {
        if (record->kind == ProvenanceKind::kProofPositive) continue;
        EXPECT_FALSE(record->rule.empty());
        if (record->new_value == new_value) covered = true;
      }
      EXPECT_TRUE(covered) << "row " << row << " column "
                           << before.schema().column_name(col) << ": "
                           << old_value << " -> " << new_value;
    }
  }
  ASSERT_GT(changed_cells, 0u);

  // Repairs must be justified by at least one KB evidence edge; proofs and
  // repairs alike must bind at least one rule node to a KB item.
  size_t repairs = 0;
  for (const RepairProvenance& record : log.records()) {
    if (record.kind != ProvenanceKind::kRepair) continue;
    ++repairs;
    EXPECT_FALSE(record.evidence_edges.empty())
        << record.column << " @ row " << record.row;
    EXPECT_FALSE(record.bindings.empty());
    EXPECT_GE(record.round, 1u);
    EXPECT_NE(record.old_value, record.new_value);
  }
  EXPECT_GT(repairs, 0u);
}

TEST(ProvenanceTest, ParallelCaptureMatchesSequential) {
  UisOptions options;
  options.num_tuples = 300;
  Dataset dataset = GenerateUis(options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  Relation dirty = dataset.clean;
  ErrorSpec spec;
  spec.error_rate = 0.12;
  InjectErrors(&dirty, spec, dataset.alternatives);

  Relation sequential = dirty;
  ProvenanceLog expected = CaptureSequential(kb, dataset.rules, &sequential);
  ASSERT_FALSE(expected.empty());

  for (size_t threads : {1u, 3u, 8u}) {
    Relation parallel = dirty;
    ProvenanceLog log;
    ParallelRepairOptions popts;
    popts.num_threads = threads;
    popts.provenance = &log;
    ASSERT_TRUE(ParallelRepair(kb, dataset.rules, &parallel, popts).ok());
    // Workers own contiguous row ranges and merge in worker order, so the
    // records match the sequential log exactly, not just as a multiset.
    EXPECT_EQ(log.records(), expected.records()) << "threads=" << threads;
  }
}

TEST(ProvenanceTest, CanonicalizeOrdersByRowColumnRound) {
  ProvenanceLog log;
  RepairProvenance a;
  a.row = 2;
  a.column_index = 1;
  a.column = "B";
  a.kind = ProvenanceKind::kRepair;
  a.rule = "r1";
  a.round = 1;
  RepairProvenance b = a;
  b.row = 0;
  RepairProvenance c = a;
  c.row = 2;
  c.column_index = 0;
  c.column = "A";
  log.Add(a);
  log.Add(b);
  log.Add(c);
  log.Canonicalize();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.records()[0].row, 0u);
  EXPECT_EQ(log.records()[1].column, "A");
  EXPECT_EQ(log.records()[2].column, "B");
}

TEST(ProvenanceTest, JsonLinesRoundTripPreservesEveryField) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  std::vector<DetectiveRule> rules = testing::BuildFigure4Rules();
  Relation repaired = testing::BuildTableI();
  ProvenanceLog log = CaptureSequential(kb, rules, &repaired);
  ASSERT_FALSE(log.empty());

  std::string jsonl = log.ToJsonLines();
  Result<ProvenanceLog> parsed = ProvenanceLog::FromJsonLines(jsonl);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->records(), log.records());
  // One line per record, each a self-contained JSON object.
  EXPECT_EQ(static_cast<size_t>(
                std::count(jsonl.begin(), jsonl.end(), '\n')),
            log.size());
}

TEST(ProvenanceTest, FromJsonLinesRejectsMalformedRecords) {
  // Sound records parse.
  ASSERT_TRUE(ProvenanceLog::FromJsonLines(
                  "{\"row\": 1, \"column\": \"A\", \"column_index\": 0, "
                  "\"kind\": \"repair\", \"rule\": \"r\", \"round\": 1, "
                  "\"old_value\": \"x\", \"new_value\": \"y\"}\n")
                  .ok());
  // Blank lines are fine (trailing newline tolerance).
  ASSERT_TRUE(ProvenanceLog::FromJsonLines("\n\n").ok());

  for (const char* bad : {
           "not json",
           "[]",
           "{\"column\": \"A\", \"kind\": \"repair\"}",      // missing row
           "{\"row\": 1, \"kind\": \"repair\"}",             // missing column
           "{\"row\": 1, \"column\": \"A\"}",                // missing kind
           "{\"row\": 1, \"column\": \"A\", \"kind\": \"bogus\"}",
           "{\"row\": 1, \"column\": \"A\", \"kind\": \"repair\", "
           "\"surprise\": 1}",
       }) {
    Result<ProvenanceLog> parsed = ProvenanceLog::FromJsonLines(bad);
    EXPECT_FALSE(parsed.ok()) << bad;
    // Errors carry the 1-based line number for JSONL debugging.
    EXPECT_NE(parsed.status().message().find("line 1"), std::string::npos)
        << parsed.status().message();
  }
}

TEST(ProvenanceTest, ForCellMatchesByNameOrIndex) {
  ProvenanceLog log;
  RepairProvenance record;
  record.row = 4;
  record.column_index = 2;
  record.column = "Institution";
  record.kind = ProvenanceKind::kNormalization;
  record.rule = "phi2";
  record.round = 1;
  log.Add(record);

  EXPECT_EQ(log.ForCell(4, "Institution").size(), 1u);
  EXPECT_EQ(log.ForCell(4, "2").size(), 1u);  // decimal index works too
  EXPECT_TRUE(log.ForCell(4, "Prize").empty());
  EXPECT_TRUE(log.ForCell(5, "Institution").empty());
}

TEST(ProvenanceTest, ToTextNamesRuleEvidenceAndChange) {
  RepairProvenance record;
  record.row = 1;
  record.column_index = 3;
  record.column = "Institution";
  record.kind = ProvenanceKind::kRepair;
  record.rule = "phi1";
  record.round = 2;
  record.old_value = "MIT";
  record.new_value = "Technion";
  record.bindings.push_back(
      {"Laureate", "person", "Avram Hershko", "Avram Hershko", 7});
  record.evidence_edges.push_back(
      {"Avram Hershko", "worksAt", "Technion"});

  std::string text = record.ToText();
  for (const char* needle :
       {"row 1", "Institution", "phi1", "repair", "MIT", "Technion",
        "worksAt", "Avram Hershko", "round 2"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "missing " << needle << " in:\n" << text;
  }
}

}  // namespace
}  // namespace detective
