// Tests for src/eval: the quality metrics (precision / recall / F-measure,
// llun partial credit, #-POS, eligibility) and the method runner.

#include <gtest/gtest.h>

#include "baselines/llunatic.h"
#include "datagen/nobel_gen.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "test_fixtures.h"

namespace detective {
namespace {

Relation OneColumn(std::vector<std::string> values) {
  Relation r{Schema({"V"})};
  for (std::string& v : values) r.Append({std::move(v)}).Abort("row");
  return r;
}

TEST(MetricsTest, PerfectRepairScoresOne) {
  Relation clean = OneColumn({"a", "b", "c"});
  Relation dirty = OneColumn({"a", "X", "c"});
  Relation repaired = OneColumn({"a", "b", "c"});
  RepairQuality q = EvaluateRepair(clean, dirty, repaired);
  EXPECT_EQ(q.errors, 1u);
  EXPECT_EQ(q.repairs, 1u);
  EXPECT_DOUBLE_EQ(q.precision(), 1.0);
  EXPECT_DOUBLE_EQ(q.recall(), 1.0);
  EXPECT_DOUBLE_EQ(q.f_measure(), 1.0);
}

TEST(MetricsTest, WrongRepairHurtsPrecision) {
  Relation clean = OneColumn({"a", "b"});
  Relation dirty = OneColumn({"a", "X"});
  Relation repaired = OneColumn({"a", "Y"});  // repaired to the wrong value
  RepairQuality q = EvaluateRepair(clean, dirty, repaired);
  EXPECT_EQ(q.repairs, 1u);
  EXPECT_DOUBLE_EQ(q.precision(), 0.0);
  EXPECT_DOUBLE_EQ(q.recall(), 0.0);
}

TEST(MetricsTest, MissedErrorHurtsRecallOnly) {
  Relation clean = OneColumn({"a", "b"});
  Relation dirty = OneColumn({"X", "Y"});
  Relation repaired = OneColumn({"a", "Y"});  // only one fixed
  RepairQuality q = EvaluateRepair(clean, dirty, repaired);
  EXPECT_DOUBLE_EQ(q.precision(), 1.0);
  EXPECT_DOUBLE_EQ(q.recall(), 0.5);
  EXPECT_NEAR(q.f_measure(), 2.0 / 3.0, 1e-9);
}

TEST(MetricsTest, DamagingACleanCellCountsAgainstPrecision) {
  Relation clean = OneColumn({"a"});
  Relation dirty = OneColumn({"a"});
  Relation repaired = OneColumn({"Z"});
  RepairQuality q = EvaluateRepair(clean, dirty, repaired);
  EXPECT_EQ(q.errors, 0u);
  EXPECT_EQ(q.repairs, 1u);
  EXPECT_DOUBLE_EQ(q.precision(), 0.0);
}

TEST(MetricsTest, LlunOverErrorGetsHalfCredit) {
  Relation clean = OneColumn({"a", "b"});
  Relation dirty = OneColumn({"X", "b"});
  Relation repaired = OneColumn({kLlunValue, "b"});
  RepairQuality q = EvaluateRepair(clean, dirty, repaired);
  EXPECT_DOUBLE_EQ(q.precision(), 0.5);
  EXPECT_DOUBLE_EQ(q.recall(), 0.5);
}

TEST(MetricsTest, LlunOverCleanCellGetsNoCredit) {
  Relation clean = OneColumn({"a"});
  Relation dirty = OneColumn({"a"});
  Relation repaired = OneColumn({kLlunValue});
  RepairQuality q = EvaluateRepair(clean, dirty, repaired);
  EXPECT_DOUBLE_EQ(q.precision(), 0.0);
}

TEST(MetricsTest, NoRepairsMeansVacuousPrecision) {
  Relation clean = OneColumn({"a"});
  Relation dirty = OneColumn({"X"});
  RepairQuality q = EvaluateRepair(clean, dirty, dirty);
  EXPECT_DOUBLE_EQ(q.precision(), 1.0);
  EXPECT_DOUBLE_EQ(q.recall(), 0.0);
  EXPECT_DOUBLE_EQ(q.f_measure(), 0.0);
}

TEST(MetricsTest, PosMarksCounted) {
  Relation clean = OneColumn({"a", "b"});
  Relation dirty = OneColumn({"a", "X"});
  Relation repaired = dirty;
  repaired.MarkPositive(0, 0);  // justified
  repaired.MarkPositive(1, 0);  // unjustified (value is X)
  RepairQuality q = EvaluateRepair(clean, dirty, repaired);
  EXPECT_EQ(q.pos_marks, 2u);
  EXPECT_EQ(q.pos_marks_correct, 1u);
  EXPECT_DOUBLE_EQ(q.annotation_precision(), 0.5);
}

TEST(MetricsTest, EligibilityRestrictsScope) {
  Relation clean = OneColumn({"a", "b"});
  Relation dirty = OneColumn({"X", "Y"});
  Relation repaired = OneColumn({"a", "Y"});
  RepairQuality q = EvaluateRepair(clean, dirty, repaired, {1, 0});
  EXPECT_EQ(q.eligible_rows, 1u);
  EXPECT_EQ(q.errors, 1u);
  EXPECT_DOUBLE_EQ(q.recall(), 1.0);
}

TEST(MetricsTest, EligibleRowsMatchesKbPresence) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  Relation clean = testing::BuildTableIClean();
  std::vector<char> eligible = EligibleRows(clean, kb, 0);
  EXPECT_EQ(eligible, (std::vector<char>{1, 1, 1, 1}));

  Relation stranger{clean.schema()};
  stranger
      .Append({"Nobody Anyone", "1900-01-01", "Israel", "Nobel Prize in Chemistry",
               "Technion", "Haifa"})
      .Abort("row");
  EXPECT_EQ(EligibleRows(stranger, kb, 0), (std::vector<char>{0}));
}

TEST(MetricsTest, MergeQualitiesSumsCounts) {
  RepairQuality a;
  a.errors = 2;
  a.repairs = 2;
  a.weighted_correct = 2;
  RepairQuality b;
  b.errors = 2;
  b.repairs = 0;
  RepairQuality merged = MergeQualities({a, b});
  EXPECT_EQ(merged.errors, 4u);
  EXPECT_DOUBLE_EQ(merged.precision(), 1.0);
  EXPECT_DOUBLE_EQ(merged.recall(), 0.5);
}

// ---- RunMethod -------------------------------------------------------------------

TEST(ExperimentTest, MethodNames) {
  EXPECT_EQ(MethodName(Method::kBasicRepair), "bRepair");
  EXPECT_EQ(MethodName(Method::kFastRepair), "fRepair");
  EXPECT_EQ(MethodName(Method::kKatara), "KATARA");
  EXPECT_EQ(MethodName(Method::kLlunatic), "Llunatic");
  EXPECT_EQ(MethodName(Method::kConstantCfd), "constant CFDs");
}

TEST(ExperimentTest, RunsAllMethodsOnSmallNobel) {
  NobelOptions options;
  options.num_laureates = 60;
  Dataset dataset = GenerateNobel(options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);

  Relation dirty = dataset.clean;
  ErrorSpec spec;
  spec.error_rate = 0.1;
  InjectErrors(&dirty, spec, dataset.alternatives);
  std::vector<char> eligible = EligibleRows(dataset.clean, kb, dataset.key_column);

  for (Method method : {Method::kBasicRepair, Method::kFastRepair, Method::kKatara,
                        Method::kLlunatic, Method::kConstantCfd}) {
    auto result = RunMethod(method, dataset, &kb, dirty, eligible);
    ASSERT_TRUE(result.ok()) << MethodName(method) << ": "
                             << result.status().ToString();
    EXPECT_GE(result->seconds, 0.0);
    EXPECT_LE(result->quality.precision(), 1.0);
  }
}

TEST(ExperimentTest, KbMethodsRequireKb) {
  NobelOptions options;
  options.num_laureates = 5;
  Dataset dataset = GenerateNobel(options);
  EXPECT_FALSE(RunMethod(Method::kFastRepair, dataset, nullptr, dataset.clean, {}).ok());
  EXPECT_FALSE(RunMethod(Method::kKatara, dataset, nullptr, dataset.clean, {}).ok());
}

TEST(ExperimentTest, DetectiveRulesHavePerfectPrecisionOnNobel) {
  NobelOptions options;
  options.num_laureates = 120;
  Dataset dataset = GenerateNobel(options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);

  Relation dirty = dataset.clean;
  ErrorSpec spec;
  spec.error_rate = 0.1;
  InjectErrors(&dirty, spec, dataset.alternatives);
  std::vector<char> eligible = EligibleRows(dataset.clean, kb, dataset.key_column);

  auto result = RunMethod(Method::kFastRepair, dataset, &kb, dirty, eligible);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->quality.precision(), 1.0)
      << result->quality.ToString();
  EXPECT_GT(result->quality.recall(), 0.4) << result->quality.ToString();
}

}  // namespace
}  // namespace detective
