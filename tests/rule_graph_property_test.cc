// Property tests for core/rule_graph over randomly generated rule sets:
// the check order must respect every cross-component dependency edge, the
// component numbering must be topological, and IsAcyclic must agree with a
// reference cycle detector.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "core/rule_graph.h"

namespace detective {
namespace {

/// Builds a random rule set over `num_columns` columns: each rule targets a
/// random column and reads 1-3 other columns as evidence. Dependencies (and
/// cycles) arise naturally from target/evidence overlaps.
std::vector<DetectiveRule> RandomRules(Rng* rng, size_t num_rules,
                                       size_t num_columns) {
  auto column_name = [](size_t c) { return "C" + std::to_string(c); };
  std::vector<DetectiveRule> rules;
  for (size_t r = 0; r < num_rules; ++r) {
    size_t target = rng->NextIndex(num_columns);
    SchemaMatchingGraph g;
    size_t num_evidence = 1 + rng->NextIndex(3);
    std::vector<size_t> evidence_columns;
    for (size_t e = 0; e < num_evidence; ++e) {
      size_t c = rng->NextIndex(num_columns);
      if (c == target) c = (c + 1) % num_columns;
      if (std::find(evidence_columns.begin(), evidence_columns.end(), c) !=
          evidence_columns.end()) {
        continue;
      }
      evidence_columns.push_back(c);
    }
    std::vector<uint32_t> evidence_nodes;
    for (size_t c : evidence_columns) {
      evidence_nodes.push_back(
          g.AddNode({column_name(c), "t" + std::to_string(c), Similarity::Equality()}));
    }
    uint32_t p = g.AddNode(
        {column_name(target), "t" + std::to_string(target), Similarity::Equality()});
    uint32_t n = g.AddNode(
        {column_name(target), "t" + std::to_string(target), Similarity::Equality()});
    for (uint32_t e : evidence_nodes) {
      g.AddEdge(e, p, "pos").Abort("edge");
      g.AddEdge(e, n, "neg").Abort("edge");
    }
    DetectiveRule rule("r" + std::to_string(r), std::move(g), p, n);
    rule.Validate().Abort("RandomRules");
    rules.push_back(std::move(rule));
  }
  return rules;
}

/// Reference cycle check: DFS over the adjacency.
bool HasCycle(const RuleGraph& graph) {
  const size_t n = graph.num_rules();
  std::vector<int> color(n, 0);
  std::vector<std::pair<uint32_t, size_t>> stack;
  for (uint32_t root = 0; root < n; ++root) {
    if (color[root] != 0) continue;
    stack.push_back({root, 0});
    color[root] = 1;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      const std::vector<uint32_t>& successors = graph.Successors(v);
      if (next < successors.size()) {
        uint32_t w = successors[next++];
        if (color[w] == 1) return true;
        if (color[w] == 0) {
          color[w] = 1;
          stack.push_back({w, 0});
        }
      } else {
        color[v] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

class RuleGraphProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RuleGraphProperty, InvariantsHoldOnRandomRuleSets) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    size_t num_rules = 1 + rng.NextIndex(12);
    size_t num_columns = 2 + rng.NextIndex(6);
    std::vector<DetectiveRule> rules = RandomRules(&rng, num_rules, num_columns);
    RuleGraph graph(rules);

    // CheckOrder is a permutation of the rules.
    std::vector<uint32_t> order = graph.CheckOrder();
    std::vector<uint32_t> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (uint32_t i = 0; i < num_rules; ++i) ASSERT_EQ(sorted[i], i);

    // Component ids never decrease along an edge, and strictly increase for
    // cross-component edges.
    const std::vector<uint32_t>& component = graph.ComponentOf();
    for (uint32_t r = 0; r < num_rules; ++r) {
      for (uint32_t s : graph.Successors(r)) {
        ASSERT_LE(component[r], component[s]);
      }
    }

    // Positions in CheckOrder respect component order.
    std::vector<size_t> position(num_rules);
    for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
    for (uint32_t r = 0; r < num_rules; ++r) {
      for (uint32_t s : graph.Successors(r)) {
        if (component[r] != component[s]) {
          ASSERT_LT(position[r], position[s])
              << "producer r" << r << " must be checked before consumer r" << s;
        }
      }
    }

    // IsAcyclic agrees with the reference detector.
    ASSERT_EQ(graph.IsAcyclic(), !HasCycle(graph));
    // Acyclic <=> every rule is its own component.
    ASSERT_EQ(graph.IsAcyclic(), graph.num_components() == num_rules);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleGraphProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(RuleGraphTest, EmptyRuleSet) {
  RuleGraph graph({});
  EXPECT_EQ(graph.num_rules(), 0u);
  EXPECT_TRUE(graph.CheckOrder().empty());
  EXPECT_TRUE(graph.IsAcyclic());
}

TEST(RuleGraphTest, ThreeCycleCondensesToOneComponent) {
  auto make = [&](const char* name, const char* evidence, const char* target) {
    SchemaMatchingGraph g;
    uint32_t e = g.AddNode({evidence, "t", Similarity::Equality()});
    uint32_t p = g.AddNode({target, "t2", Similarity::Equality()});
    uint32_t n = g.AddNode({target, "t2", Similarity::Equality()});
    g.AddEdge(e, p, "pos").Abort("e");
    g.AddEdge(e, n, "neg").Abort("e");
    return DetectiveRule(name, g, p, n);
  };
  // A -> B -> C -> A.
  std::vector<DetectiveRule> rules = {make("a", "Z", "X"), make("b", "X", "Y"),
                                      make("c", "Y", "Z")};
  RuleGraph graph(rules);
  EXPECT_FALSE(graph.IsAcyclic());
  EXPECT_EQ(graph.num_components(), 1u);
}

}  // namespace
}  // namespace detective
