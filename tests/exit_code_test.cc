// Asserts the documented exit-code contract of the CLI tools end to end
// (docs/robustness.md): detective_clean exits 0 success, 1 load/runtime
// failure, 2 inconsistent under --check-consistency, 3 lint-rejected under
// --lint=strict, 4 completed degraded, 64 usage; detective_lint 0/1/3/64;
// detective_explain 0/1/64. The binaries are driven as subprocesses — the
// same way CI and downstream scripts consume them.

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <string>

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "obs/http_server.h"

namespace detective {
namespace {

constexpr const char* kCleanBin = DETECTIVE_CLEAN_BIN;
constexpr const char* kLintBin = DETECTIVE_LINT_BIN;
constexpr const char* kExplainBin = DETECTIVE_EXPLAIN_BIN;
constexpr const char* kDataDir = DETECTIVE_SOURCE_DIR "/data";

/// Runs `command` (with stdout/stderr silenced) and returns its exit code,
/// or -1 if the child did not exit normally.
int ExitCode(const std::string& command) {
  int raw = std::system((command + " >/dev/null 2>&1").c_str());
  if (raw == -1 || !WIFEXITED(raw)) return -1;
  return WEXITSTATUS(raw);
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

/// The paper's shipped example: clean run, all codes 0.
std::string CleanCommand(const std::string& extra) {
  return std::string(kCleanBin) + " --kb=" + kDataDir + "/figure1.nt" +
         " --rules=" + kDataDir + "/figure4.dr" + " --input=" + kDataDir +
         "/table1.csv --output=" + TempPath("exit_out.csv") + " " + extra;
}

TEST(CleanExitCodes, SuccessIsZero) {
  EXPECT_EQ(ExitCode(CleanCommand("")), 0);
}

TEST(CleanExitCodes, LoadFailureIsOne) {
  std::string cmd = std::string(kCleanBin) +
                    " --kb=/nonexistent.nt --rules=" + kDataDir +
                    "/figure4.dr --input=" + kDataDir +
                    "/table1.csv --output=" + TempPath("exit_out.csv");
  EXPECT_EQ(ExitCode(cmd), 1);
}

TEST(CleanExitCodes, InconsistentRuleSetIsTwo) {
  // Two rules that repair City from conflicting evidence (cf.
  // consistency_test.cc): different chase orders reach different fixpoints,
  // so --check-consistency must refuse. Lint is off — the static analyzer
  // flags the same conflict ahead of time, which is exit 3's job.
  std::string kb_path = TempPath("exit_conflict.nt");
  WriteFile(kb_path,
            "<Alice> <rdf:type> <person> .\n"
            "<Rome> <rdf:type> <city> .\n"
            "<Oslo> <rdf:type> <city> .\n"
            "<Cairo> <rdf:type> <city> .\n"
            "<Alice> <livesIn> <Rome> .\n"
            "<Alice> <worksIn> <Oslo> .\n"
            "<Alice> <bornIn> <Cairo> .\n");
  std::string rules_path = TempPath("exit_conflict.dr");
  WriteFile(rules_path,
            "RULE via_lives\n"
            "NODE e col=\"Name\" type=\"person\"\n"
            "POS p col=\"City\" type=\"city\"\n"
            "NEG n col=\"City\" type=\"city\"\n"
            "EDGE e \"livesIn\" p\n"
            "EDGE e \"bornIn\" n\n"
            "END\n"
            "RULE via_works\n"
            "NODE e col=\"Name\" type=\"person\"\n"
            "POS p col=\"City\" type=\"city\"\n"
            "NEG n col=\"City\" type=\"city\"\n"
            "EDGE e \"worksIn\" p\n"
            "EDGE e \"bornIn\" n\n"
            "END\n");
  std::string csv_path = TempPath("exit_conflict.csv");
  WriteFile(csv_path, "Name,City\nAlice,Cairo\n");
  std::string cmd = std::string(kCleanBin) + " --kb=" + kb_path +
                    " --rules=" + rules_path + " --input=" + csv_path +
                    " --output=" + TempPath("exit_out.csv") +
                    " --lint=off --check-consistency";
  EXPECT_EQ(ExitCode(cmd), 2);
}

TEST(CleanExitCodes, LintRejectionIsThree) {
  // A rule over a type the KB does not declare is an error-level lint
  // finding; --lint=strict refuses to run, --lint=warn proceeds (the rule
  // just never fires).
  std::string rules_path = TempPath("exit_unknown_type.dr");
  WriteFile(rules_path,
            "RULE ghost\n"
            "NODE e col=\"Name\" type=\"martian\"\n"
            "POS p col=\"Prize\" type=\"prize\"\n"
            "NEG n col=\"Prize\" type=\"prize\"\n"
            "EDGE e \"hasWonPrize\" p\n"
            "EDGE e \"hasWonPrize\" n\n"
            "END\n");
  std::string base = std::string(kCleanBin) + " --kb=" + kDataDir +
                     "/figure1.nt --rules=" + rules_path +
                     " --input=" + kDataDir +
                     "/table1.csv --output=" + TempPath("exit_out.csv");
  EXPECT_EQ(ExitCode(base + " --lint=strict"), 3);
  EXPECT_EQ(ExitCode(base + " --lint=warn"), 0);
}

#if DETECTIVE_FAULT_ENABLED
TEST(CleanExitCodes, DegradedCompletionIsFour) {
  std::string quarantine_path = TempPath("exit_quarantine.jsonl");
  std::string cmd = CleanCommand(
      "--fault-plan='seed=7; site=repair.tuple, p=0.5' --quarantine-json=" +
      quarantine_path);
  EXPECT_EQ(ExitCode(cmd), 4);
  // The ledger was still written before the degraded exit.
  std::ifstream in(quarantine_path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"reason\": \"fault\""), std::string::npos) << line;
}

TEST(CleanExitCodes, FaultPlanFromEnvironmentAlsoDegrades) {
  std::string cmd = "DETECTIVE_FAULT_PLAN='seed=7; site=repair.tuple, p=0.5' " +
                    CleanCommand("");
  EXPECT_EQ(ExitCode(cmd), 4);
}
#endif  // DETECTIVE_FAULT_ENABLED

TEST(CleanExitCodes, UsageErrorsAreSixtyFour) {
  EXPECT_EQ(ExitCode(kCleanBin), 64);  // required flags missing
  EXPECT_EQ(ExitCode(CleanCommand("--no-such-flag")), 64);
  EXPECT_EQ(ExitCode(CleanCommand("--algorithm=quantum")), 64);
  EXPECT_EQ(ExitCode(CleanCommand("--deadline-ms=soon")), 64);
  EXPECT_EQ(ExitCode(CleanCommand("--fault-plan=bogus")), 64);
  EXPECT_EQ(ExitCode(CleanCommand("--multi-version --tuple-budget-ms=5")), 64);
  EXPECT_EQ(ExitCode(CleanCommand("--algorithm=basic --max-rule-failures=1")),
            64);
  EXPECT_EQ(ExitCode(CleanCommand("--stratify=always")), 64);
}

TEST(CleanExitCodes, IntrospectPortInUseIsUsageError) {
  // Occupy a loopback port, then ask the CLI to introspect on it: binding
  // fails before any cleaning starts, which is a usage error by contract.
  obs::HttpServer squatter;
  ASSERT_TRUE(squatter.Start().ok());
  std::string cmd = CleanCommand("--introspect=" +
                                 std::to_string(squatter.port()));
  EXPECT_EQ(ExitCode(cmd), 64);
  squatter.Stop();
  // Bad port values are usage errors too.
  EXPECT_EQ(ExitCode(CleanCommand("--introspect=99999")), 64);
  EXPECT_EQ(ExitCode(CleanCommand("--introspect=soon")), 64);
  // An ephemeral-port run succeeds and still cleans.
  EXPECT_EQ(ExitCode(CleanCommand("--introspect=0")), 0);
}

TEST(CleanExitCodes, StratifyContract) {
  // auto and off always run; the figure4 rules keep an interaction cycle no
  // refutation breaks (phi1-phi3 feed each other's evidence), so strict
  // refuses with the lint-rejected code. The shipped showcase pair
  // (examples/rules/nobel_strata.dr) certifies fully acyclic — its nominal
  // cycle is statically refuted — so strict accepts it.
  EXPECT_EQ(ExitCode(CleanCommand("--stratify=auto")), 0);
  EXPECT_EQ(ExitCode(CleanCommand("--stratify=off")), 0);
  EXPECT_EQ(ExitCode(CleanCommand("--stratify=strict")), 3);
  std::string showcase = std::string(kCleanBin) + " --kb=" + kDataDir +
                         "/figure1.nt --rules=" DETECTIVE_SOURCE_DIR
                         "/examples/rules/nobel_strata.dr --input=" + kDataDir +
                         "/table1.csv --output=" + TempPath("exit_out.csv") +
                         " --stratify=strict";
  EXPECT_EQ(ExitCode(showcase), 0);
}

TEST(LintExitCodes, Contract) {
  std::string clean = std::string(kLintBin) + " --kb=" + kDataDir +
                      "/figure1.nt --rules=" + kDataDir + "/figure4.dr";
  EXPECT_EQ(ExitCode(clean), 0);
  EXPECT_EQ(ExitCode(std::string(kLintBin) + " --kb=/nonexistent.nt --rules=" +
                     kDataDir + "/figure4.dr"),
            1);
  EXPECT_EQ(ExitCode(kLintBin), 64);

  std::string rules_path = TempPath("exit_lint_unknown.dr");
  WriteFile(rules_path,
            "RULE ghost\n"
            "NODE e col=\"Name\" type=\"martian\"\n"
            "POS p col=\"Prize\" type=\"prize\"\n"
            "NEG n col=\"Prize\" type=\"prize\"\n"
            "EDGE e \"hasWonPrize\" p\n"
            "EDGE e \"hasWonPrize\" n\n"
            "END\n");
  std::string bad = std::string(kLintBin) + " --kb=" + kDataDir +
                    "/figure1.nt --rules=" + rules_path;
  EXPECT_EQ(ExitCode(bad), 3);
  EXPECT_EQ(ExitCode(bad + " --fail-on=never"), 0);
}

// ---- detective_serve ---------------------------------------------------------
// The daemon's lifecycle contract (docs/serving.md): 64 for unusable
// configuration — bad flags, a port that cannot be bound — so supervisors
// distinguish "fix the config" from "crashed" (1), 3 when strict analysis
// rejects the rule set, and 0 for a SIGTERM-initiated graceful drain.

constexpr const char* kServeBin = DETECTIVE_SERVE_BIN;

std::string ServeCommand(const std::string& extra) {
  return std::string(kServeBin) + " --kb=" + kDataDir + "/figure1.nt" +
         " --rules=" + kDataDir + "/figure4.dr" +
         " --schema-csv=" + kDataDir + "/table1.csv " + extra;
}

/// Spawns `command` (split on spaces — no argument here contains one),
/// parses the "detective_serve: http://127.0.0.1:PORT" handshake off its
/// stdout, and exposes the port + the eventual exit code. fork/exec directly
/// — no shell in between — because the test must SIGTERM the daemon itself
/// and harvest its exit status.
class ServeProcess {
 public:
  explicit ServeProcess(const std::string& command) {
    int out_pipe[2] = {-1, -1};
    if (pipe(out_pipe) != 0) return;
    std::vector<std::string> words;
    for (size_t pos = 0; pos < command.size();) {
      const size_t space = command.find(' ', pos);
      const size_t end = space == std::string::npos ? command.size() : space;
      if (end > pos) words.push_back(command.substr(pos, end - pos));
      pos = end + 1;
    }
    pid_ = fork();
    if (pid_ == 0) {
      dup2(out_pipe[1], STDOUT_FILENO);
      close(out_pipe[0]);
      close(out_pipe[1]);
      int devnull = open("/dev/null", O_WRONLY);
      if (devnull >= 0) dup2(devnull, STDERR_FILENO);
      std::vector<char*> argv;
      argv.reserve(words.size() + 1);
      for (std::string& word : words) argv.push_back(word.data());
      argv.push_back(nullptr);
      execv(argv[0], argv.data());
      _exit(127);
    }
    close(out_pipe[1]);
    // Read stdout a byte at a time until the handshake line completes (the
    // daemon keeps the descriptor open, so "read to EOF" would hang).
    std::string line;
    char byte = 0;
    while (line.find('\n') == std::string::npos && line.size() < 4096 &&
           read(out_pipe[0], &byte, 1) == 1) {
      line.push_back(byte);
    }
    close(out_pipe[0]);
    const size_t at = line.rfind(':');
    if (line.find("detective_serve: http://127.0.0.1:") == 0 &&
        at != std::string::npos) {
      port_ = static_cast<uint16_t>(std::stoi(line.substr(at + 1)));
    }
  }

  ~ServeProcess() {
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
    }
  }

  uint16_t port() const { return port_; }
  bool started() const { return pid_ > 0 && port_ != 0; }

  /// SIGTERMs the daemon and returns its exit code (-1 on abnormal exit).
  int Terminate() {
    if (pid_ <= 0) return -1;
    kill(pid_, SIGTERM);
    int raw = 0;
    if (waitpid(pid_, &raw, 0) != pid_) return -1;
    pid_ = -1;
    return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  }

 private:
  pid_t pid_ = -1;
  uint16_t port_ = 0;
};

TEST(ServeExitCodes, UsageErrorsAre64) {
  EXPECT_EQ(ExitCode(kServeBin), 64);
  EXPECT_EQ(ExitCode(ServeCommand("--port=99999")), 64);
  EXPECT_EQ(ExitCode(ServeCommand("--queue-depth=0")), 64);
  EXPECT_EQ(ExitCode(ServeCommand("--lint=sometimes")), 64);
  // --schema and --schema-csv are mutually exclusive, one is required.
  EXPECT_EQ(ExitCode(std::string(kServeBin) + " --kb=" + kDataDir +
                     "/figure1.nt --rules=" + kDataDir + "/figure4.dr"),
            64);
}

TEST(ServeExitCodes, LoadFailureIsOne) {
  EXPECT_EQ(ExitCode(std::string(kServeBin) +
                     " --kb=/nonexistent.nt --rules=" + kDataDir +
                     "/figure4.dr --schema-csv=" + kDataDir + "/table1.csv"),
            1);
}

TEST(ServeExitCodes, StrictAnalysisRejectionIsThree) {
  // The figure4 rules keep an interaction cycle no refutation breaks, so
  // --stratify=strict refuses to serve with the same code the batch tool
  // uses (see CleanExitCodes.StratifyContract).
  EXPECT_EQ(ExitCode(ServeCommand("--stratify=strict")), 3);
}

TEST(ServeExitCodes, SigtermDrainsToZeroAndPortInUseIs64) {
  ServeProcess daemon(ServeCommand(""));
  ASSERT_TRUE(daemon.started());
  // A second daemon asking for the same (now taken) port is a usage error.
  EXPECT_EQ(ExitCode(ServeCommand("--port=" + std::to_string(daemon.port()))),
            64);
  EXPECT_EQ(daemon.Terminate(), 0);
}

// ---- KB snapshots + incremental cleaning -------------------------------------
// docs/performance.md: a rejected snapshot (bad magic / version / checksum)
// is configuration, not a crash — exit 64, same as detective_kb_build.

constexpr const char* kKbBuildBin = DETECTIVE_KB_BUILD_BIN;

std::string SnapshotCleanCommand(const std::string& snapshot_path,
                                 const std::string& extra) {
  return std::string(kCleanBin) + " --kb-snapshot=" + snapshot_path +
         " --rules=" + kDataDir + "/figure4.dr --input=" + kDataDir +
         "/table1.csv --output=" + TempPath("exit_out.csv") + " " + extra;
}

TEST(SnapshotExitCodes, BuildCleanAndRejectContract) {
  const std::string snapshot_path = TempPath("exit_kb.dkb");
  // Build a snapshot from the shipped KB, then clean from it: both succeed.
  EXPECT_EQ(ExitCode(std::string(kKbBuildBin) + " --kb=" + kDataDir +
                     "/figure1.nt --out=" + snapshot_path + " --verify"),
            0);
  EXPECT_EQ(ExitCode(SnapshotCleanCommand(snapshot_path, "")), 0);
  EXPECT_EQ(ExitCode(kKbBuildBin), 64);

  // A text KB handed to --kb-snapshot fails the magic sniff: exit 64.
  EXPECT_EQ(ExitCode(SnapshotCleanCommand(
                std::string(kDataDir) + "/figure1.nt", "")),
            64);

  // A bit-flipped payload fails the checksum: exit 64, not a crash.
  std::ifstream in(snapshot_path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  const std::string corrupt_path = TempPath("exit_kb_corrupt.dkb");
  WriteFile(corrupt_path, bytes);
  EXPECT_EQ(ExitCode(SnapshotCleanCommand(corrupt_path, "")), 64);

  // A truncated snapshot is rejected the same way.
  const std::string truncated_path = TempPath("exit_kb_truncated.dkb");
  WriteFile(truncated_path, bytes.substr(0, bytes.size() / 3));
  EXPECT_EQ(ExitCode(SnapshotCleanCommand(truncated_path, "")), 64);

  // --kb and --kb-snapshot are mutually exclusive, one is required.
  EXPECT_EQ(ExitCode(CleanCommand("--kb-snapshot=" + snapshot_path)), 64);
}

TEST(IncrementalExitCodes, FlagContract) {
  // --delta without --prev-provenance (or with an incompatible algorithm or
  // robustness knob) is a usage error before any work starts.
  const std::string delta_path = TempPath("exit_delta.csv");
  WriteFile(delta_path, "row,Name,DOB,Country,Prize,Institution,City\n");
  EXPECT_EQ(ExitCode(CleanCommand("--delta=" + delta_path)), 64);
  const std::string provenance_path = TempPath("exit_prev_provenance.jsonl");
  ASSERT_EQ(ExitCode(CleanCommand("--explain-json=" + provenance_path)), 0);
  const std::string incremental_flags =
      "--delta=" + delta_path + " --prev-provenance=" + provenance_path;
  EXPECT_EQ(ExitCode(CleanCommand(incremental_flags + " --algorithm=basic")),
            64);
  EXPECT_EQ(ExitCode(CleanCommand(incremental_flags + " --max-rule-failures=1")),
            64);
  EXPECT_EQ(ExitCode(CleanCommand(incremental_flags + " --deadline-ms=1000")),
            64);
  // A well-formed incremental run over an empty delta succeeds.
  EXPECT_EQ(ExitCode(CleanCommand(incremental_flags)), 0);
  // A missing previous provenance file is a load failure, not usage.
  EXPECT_EQ(ExitCode(CleanCommand("--delta=" + delta_path +
                                  " --prev-provenance=/nonexistent.jsonl")),
            1);
}

TEST(ExplainExitCodes, Contract) {
  std::string explain_path = TempPath("exit_explain.jsonl");
  std::string cmd =
      CleanCommand("--explain-json=" + explain_path);
  ASSERT_EQ(ExitCode(cmd), 0);
  EXPECT_EQ(
      ExitCode(std::string(kExplainBin) + " --explain-json=" + explain_path),
      0);
  EXPECT_EQ(ExitCode(std::string(kExplainBin) +
                     " --explain-json=/nonexistent.jsonl"),
            1);
  EXPECT_EQ(ExitCode(kExplainBin), 64);
  EXPECT_EQ(ExitCode(std::string(kExplainBin) + " --explain-json=" +
                     explain_path + " --cell=notacell"),
            64);
}

}  // namespace
}  // namespace detective
