// Tests for src/datagen: world -> KB projection under profiles, the error
// injector's accounting, and the three dataset generators.

#include <gtest/gtest.h>

#include <set>

#include "baselines/fd.h"
#include "core/bound_rule.h"
#include "core/consistency.h"
#include "datagen/error_injector.h"
#include "datagen/names.h"
#include "datagen/nobel_gen.h"
#include "datagen/uis_gen.h"
#include "datagen/webtables_gen.h"
#include "datagen/world.h"
#include "text/edit_distance.h"

namespace detective {
namespace {

// ---- NameGenerator -----------------------------------------------------------

TEST(NamesTest, Deterministic) {
  Rng a(1), b(1);
  NameGenerator ga(&a), gb(&b);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ga.PersonName(), gb.PersonName());
}

TEST(NamesTest, ShapesAreReasonable) {
  Rng rng(2);
  NameGenerator names(&rng);
  std::string person = names.PersonName();
  EXPECT_NE(person.find(' '), std::string::npos);
  EXPECT_TRUE(std::isupper(static_cast<unsigned char>(person[0])));
  std::string date = names.DateString(1900, 1950);
  EXPECT_EQ(date.size(), 10u);
  EXPECT_EQ(date[4], '-');
  std::string zip = names.ZipCode();
  EXPECT_EQ(zip.size(), 5u);
}

// ---- World -> KB projection -----------------------------------------------------

TEST(WorldTest, FullCoverageKeepsEverything) {
  World world;
  auto c1 = world.AddEntity("Haifa", "city");
  auto c2 = world.AddEntity("Israel", "country");
  world.AddFact(c1, "locatedIn", c2);
  world.AddLiteralFact(c1, "founded", "1905");
  world.AddSubclass("city", "place");

  KbProfile full;
  full.entity_coverage = 1.0;
  full.fact_coverage = 1.0;
  KnowledgeBase kb = world.ToKb(full);
  EXPECT_EQ(kb.num_entities(), 2u);
  EXPECT_EQ(kb.num_edges(), 2u);
  EXPECT_TRUE(kb.IsSubclassOf(kb.FindClass("city"), kb.FindClass("place")));
}

TEST(WorldTest, FlatProfileDropsTaxonomy) {
  World world;
  world.AddEntity("Haifa", "city");
  world.AddSubclass("city", "place");
  KbProfile flat;
  flat.rich_taxonomy = false;
  flat.entity_coverage = 1.0;
  KnowledgeBase kb = world.ToKb(flat);
  EXPECT_TRUE(kb.FindClass("city").valid());
  EXPECT_FALSE(kb.FindClass("place").valid());
}

TEST(WorldTest, CoverageShrinksTheKb) {
  World world;
  std::vector<World::EntityIndex> people;
  for (int i = 0; i < 500; ++i) {
    people.push_back(world.AddEntity("P" + std::to_string(i), "person"));
  }
  for (int i = 1; i < 500; ++i) world.AddFact(people[i - 1], "knows", people[i]);

  KbProfile half;
  half.entity_coverage = 0.5;
  half.fact_coverage = 0.5;
  KnowledgeBase kb = world.ToKb(half);
  EXPECT_LT(kb.num_entities(), 350u);
  EXPECT_GT(kb.num_entities(), 150u);
  EXPECT_LT(kb.num_edges(), 200u);
}

TEST(WorldTest, PinnedEntitiesSurviveAnyCoverage) {
  World world;
  std::vector<World::EntityIndex> keys;
  for (int i = 0; i < 100; ++i) {
    keys.push_back(world.AddEntity("K" + std::to_string(i), "person"));
  }
  KbProfile tiny;
  tiny.entity_coverage = 0.01;
  KnowledgeBase kb = world.ToKb(tiny, keys);
  EXPECT_EQ(kb.num_entities(), 100u);
}

TEST(WorldTest, ProjectionIsDeterministicPerSeed) {
  World world;
  for (int i = 0; i < 100; ++i) world.AddEntity("E" + std::to_string(i), "thing");
  KbProfile profile;
  profile.entity_coverage = 0.7;
  EXPECT_EQ(world.ToKb(profile).num_entities(), world.ToKb(profile).num_entities());
}

TEST(WorldTest, BuiltInProfilesDiffer) {
  KbProfile yago = YagoProfile();
  KbProfile dbpedia = DBpediaProfile();
  EXPECT_GT(yago.fact_coverage, dbpedia.fact_coverage);
  EXPECT_TRUE(yago.rich_taxonomy);
  EXPECT_FALSE(dbpedia.rich_taxonomy);
}

// ---- Error injector ---------------------------------------------------------------

TEST(ErrorInjectorTest, MakeTypoAlwaysChanges) {
  Rng rng(3);
  for (const char* value : {"Haifa", "a", "", "University of Sandoria"}) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_NE(MakeTypo(value, &rng), value);
    }
  }
}

TEST(ErrorInjectorTest, MakeTypoStaysWithinTwoEdits) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    std::string typo = MakeTypo("Pasteur Institute", &rng);
    EXPECT_LE(EditDistance("Pasteur Institute", typo), 2u);
  }
}

Relation ThreeColumnRelation(size_t rows) {
  Relation r{Schema({"A", "B", "C"})};
  for (size_t i = 0; i < rows; ++i) {
    r.Append({"a" + std::to_string(i), "b" + std::to_string(i),
              "c" + std::to_string(i)})
        .Abort("row");
  }
  return r;
}

TEST(ErrorInjectorTest, ExactErrorBudget) {
  Relation r = ThreeColumnRelation(100);  // 300 cells
  ErrorSpec spec;
  spec.error_rate = 0.10;
  std::vector<ErrorRecord> errors = InjectErrors(&r, spec);
  EXPECT_EQ(errors.size(), 30u);
  // Every record points at a cell that indeed changed to the dirty value.
  std::set<std::pair<size_t, ColumnIndex>> cells;
  for (const ErrorRecord& e : errors) {
    EXPECT_NE(e.clean_value, e.dirty_value);
    EXPECT_EQ(r.tuple(e.row).value(e.column), e.dirty_value);
    EXPECT_TRUE(cells.insert({e.row, e.column}).second) << "duplicate cell";
  }
}

TEST(ErrorInjectorTest, TypoFractionExtremes) {
  Relation all_typos = ThreeColumnRelation(100);
  ErrorSpec spec;
  spec.error_rate = 0.2;
  spec.typo_fraction = 1.0;
  SemanticAlternatives alternatives(100,
                                    {{{"altA"}}, {{"altB"}}, {{"altC"}}});
  for (const ErrorRecord& e : InjectErrors(&all_typos, spec, alternatives)) {
    EXPECT_EQ(e.type, ErrorType::kTypo);
  }

  Relation all_semantic = ThreeColumnRelation(100);
  spec.typo_fraction = 0.0;
  for (const ErrorRecord& e : InjectErrors(&all_semantic, spec, alternatives)) {
    EXPECT_EQ(e.type, ErrorType::kSemantic);
  }
}

TEST(ErrorInjectorTest, SemanticFallsBackToTypoWithoutAlternatives) {
  Relation r = ThreeColumnRelation(50);
  ErrorSpec spec;
  spec.error_rate = 0.2;
  spec.typo_fraction = 0.0;
  for (const ErrorRecord& e : InjectErrors(&r, spec)) {
    EXPECT_EQ(e.type, ErrorType::kTypo);
  }
}

TEST(ErrorInjectorTest, DeterministicPerSeed) {
  Relation a = ThreeColumnRelation(50);
  Relation b = ThreeColumnRelation(50);
  ErrorSpec spec;
  spec.error_rate = 0.15;
  spec.seed = 77;
  InjectErrors(&a, spec);
  InjectErrors(&b, spec);
  for (size_t row = 0; row < a.num_tuples(); ++row) {
    EXPECT_EQ(a.tuple(row).values(), b.tuple(row).values());
  }
}

// ---- Dataset generators -------------------------------------------------------------

TEST(NobelGenTest, ShapeAndAlternatives) {
  NobelOptions options;
  options.num_laureates = 50;
  Dataset nobel = GenerateNobel(options);
  EXPECT_EQ(nobel.clean.num_tuples(), 50u);
  EXPECT_EQ(nobel.clean.schema().num_columns(), 6u);
  EXPECT_EQ(nobel.rules.size(), 5u);
  EXPECT_EQ(nobel.alternatives.size(), 50u);
  EXPECT_EQ(nobel.key_entities.size(), 50u);
  for (const DetectiveRule& rule : nobel.rules) {
    EXPECT_TRUE(rule.Validate().ok()) << rule.name();
  }
  EXPECT_TRUE(nobel.katara_pattern.Validate().ok());
  // Semantic alternatives differ from the clean values.
  for (size_t row = 0; row < nobel.clean.num_tuples(); ++row) {
    for (ColumnIndex c = 0; c < 6; ++c) {
      for (const std::string& alt : nobel.alternatives[row][c]) {
        EXPECT_NE(alt, nobel.clean.tuple(row).value(c));
      }
    }
  }
}

TEST(NobelGenTest, RulesBindToBothProfiles) {
  NobelOptions options;
  options.num_laureates = 30;
  Dataset nobel = GenerateNobel(options);
  for (const KbProfile& profile : {YagoProfile(), DBpediaProfile()}) {
    KnowledgeBase kb = nobel.world.ToKb(profile, nobel.key_entities);
    for (const DetectiveRule& rule : nobel.rules) {
      auto bound = BindRule(rule, nobel.clean.schema(), kb);
      ASSERT_TRUE(bound.ok()) << profile.name << " " << rule.name();
      EXPECT_TRUE(bound->usable) << profile.name << " " << rule.name();
    }
  }
}

TEST(NobelGenTest, RulesAreConsistentOnSample) {
  NobelOptions options;
  options.num_laureates = 25;
  Dataset nobel = GenerateNobel(options);
  KnowledgeBase kb = nobel.world.ToKb(YagoProfile(), nobel.key_entities);
  ConsistencyOptions copts;
  copts.max_orders = 24;
  copts.max_tuples = 10;
  auto report = CheckConsistency(kb, nobel.rules, nobel.clean, copts);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent) << report->ToString();
}

TEST(UisGenTest, ShapeAndFds) {
  UisOptions options;
  options.num_tuples = 200;
  Dataset uis = GenerateUis(options);
  EXPECT_EQ(uis.clean.num_tuples(), 200u);
  EXPECT_EQ(uis.clean.schema().num_columns(), 5u);
  EXPECT_EQ(uis.rules.size(), 5u);
  EXPECT_EQ(uis.fds.size(), 3u);
  for (const DetectiveRule& rule : uis.rules) {
    EXPECT_TRUE(rule.Validate().ok()) << rule.name();
  }
  // The clean data satisfies its own FDs.
  auto violations = FindViolations(uis.clean, uis.fds);
  ASSERT_TRUE(violations.ok());
  EXPECT_TRUE(violations->empty());
}

TEST(WebTablesGenTest, CorpusShape) {
  WebTablesOptions options;
  WebTablesCorpus corpus = GenerateWebTables(options);
  EXPECT_EQ(corpus.tables.size(), 37u);
  EXPECT_EQ(corpus.total_rules(), 50u);
  size_t total_tuples = 0;
  for (const WebTable& table : corpus.tables) {
    EXPECT_GE(table.clean.schema().num_columns(), 2u);
    EXPECT_LE(table.clean.schema().num_columns(), 3u);
    EXPECT_EQ(table.clean.num_tuples(), table.dirty.num_tuples());
    EXPECT_FALSE(table.errors.empty());
    total_tuples += table.clean.num_tuples();
    for (const DetectiveRule& rule : table.rules) {
      EXPECT_TRUE(rule.Validate().ok()) << table.name << " " << rule.name();
    }
  }
  // Average around 44 tuples per table.
  double average = static_cast<double>(total_tuples) /
                   static_cast<double>(corpus.tables.size());
  EXPECT_NEAR(average, 44.0, 8.0);
}

TEST(WebTablesGenTest, DirtyDiffersExactlyAtErrorRecords) {
  WebTablesCorpus corpus = GenerateWebTables({});
  const WebTable& table = corpus.tables[0];
  std::set<std::pair<size_t, ColumnIndex>> recorded;
  for (const ErrorRecord& e : table.errors) recorded.insert({e.row, e.column});
  for (size_t row = 0; row < table.clean.num_tuples(); ++row) {
    for (ColumnIndex c = 0; c < table.clean.schema().num_columns(); ++c) {
      bool differs = table.clean.tuple(row).value(c) != table.dirty.tuple(row).value(c);
      EXPECT_EQ(differs, recorded.contains({row, c})) << row << "," << c;
    }
  }
}

}  // namespace
}  // namespace detective
