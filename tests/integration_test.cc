// Cross-module integration tests: full generate -> project -> dirty ->
// repair -> evaluate pipelines over all three datasets, checking the
// qualitative relationships the paper's evaluation establishes.

#include <gtest/gtest.h>

#include "core/consistency.h"
#include "core/repair.h"
#include "datagen/nobel_gen.h"
#include "datagen/uis_gen.h"
#include "datagen/webtables_gen.h"
#include "eval/experiment.h"

namespace detective {
namespace {

struct Pipeline {
  Dataset dataset;
  KnowledgeBase kb;
  Relation dirty;
  std::vector<char> eligible;
};

Pipeline MakeNobelPipeline(size_t laureates, double error_rate,
                           double typo_fraction = 0.5) {
  Pipeline p;
  NobelOptions options;
  options.num_laureates = laureates;
  p.dataset = GenerateNobel(options);
  p.kb = p.dataset.world.ToKb(YagoProfile(), p.dataset.key_entities);
  p.dirty = p.dataset.clean;
  ErrorSpec spec;
  spec.error_rate = error_rate;
  spec.typo_fraction = typo_fraction;
  InjectErrors(&p.dirty, spec, p.dataset.alternatives);
  p.eligible = EligibleRows(p.dataset.clean, p.kb, p.dataset.key_column);
  return p;
}

TEST(IntegrationTest, NobelDetectiveRulesBeatBaselines) {
  Pipeline p = MakeNobelPipeline(300, 0.10);

  auto dr = RunMethod(Method::kFastRepair, p.dataset, &p.kb, p.dirty, p.eligible);
  auto katara = RunMethod(Method::kKatara, p.dataset, &p.kb, p.dirty, p.eligible);
  auto llunatic = RunMethod(Method::kLlunatic, p.dataset, &p.kb, p.dirty, p.eligible);
  auto cfd = RunMethod(Method::kConstantCfd, p.dataset, &p.kb, p.dirty, p.eligible);
  ASSERT_TRUE(dr.ok() && katara.ok() && llunatic.ok() && cfd.ok());

  // The paper's Table III relationships.
  EXPECT_DOUBLE_EQ(dr->quality.precision(), 1.0) << dr->quality.ToString();
  EXPECT_GT(dr->quality.precision(), katara->quality.precision());
  EXPECT_GT(dr->quality.f_measure(), llunatic->quality.f_measure());
  EXPECT_GT(dr->quality.f_measure(), cfd->quality.f_measure());
  EXPECT_GT(dr->quality.pos_marks, katara->quality.pos_marks);
  EXPECT_GT(dr->quality.recall(), 0.5);
}

TEST(IntegrationTest, NobelYagoBeatsDBpediaOnRecall) {
  Pipeline p = MakeNobelPipeline(300, 0.10);
  KnowledgeBase dbpedia = p.dataset.world.ToKb(DBpediaProfile(), p.dataset.key_entities);

  auto yago = RunMethod(Method::kFastRepair, p.dataset, &p.kb, p.dirty, p.eligible);
  auto dbp = RunMethod(Method::kFastRepair, p.dataset, &dbpedia, p.dirty,
                       EligibleRows(p.dataset.clean, dbpedia, p.dataset.key_column));
  ASSERT_TRUE(yago.ok() && dbp.ok());
  EXPECT_GT(yago->quality.recall(), dbp->quality.recall());
  EXPECT_DOUBLE_EQ(dbp->quality.precision(), 1.0);
}

TEST(IntegrationTest, LlunaticDegradesWithErrorRate) {
  Pipeline low = MakeNobelPipeline(300, 0.04);
  Pipeline high = MakeNobelPipeline(300, 0.20);
  auto low_result =
      RunMethod(Method::kLlunatic, low.dataset, nullptr, low.dirty, low.eligible);
  auto high_result =
      RunMethod(Method::kLlunatic, high.dataset, nullptr, high.dirty, high.eligible);
  ASSERT_TRUE(low_result.ok() && high_result.ok());
  EXPECT_GT(low_result->quality.precision(), high_result->quality.precision());
}

TEST(IntegrationTest, DetectiveRulesStableAcrossErrorRates) {
  // Fig. 6: "our methods had stable performance when error rates increased."
  Pipeline low = MakeNobelPipeline(300, 0.04);
  Pipeline high = MakeNobelPipeline(300, 0.20);
  auto low_result =
      RunMethod(Method::kFastRepair, low.dataset, &low.kb, low.dirty, low.eligible);
  auto high_result = RunMethod(Method::kFastRepair, high.dataset, &high.kb,
                               high.dirty, high.eligible);
  ASSERT_TRUE(low_result.ok() && high_result.ok());
  EXPECT_DOUBLE_EQ(low_result->quality.precision(), 1.0);
  EXPECT_DOUBLE_EQ(high_result->quality.precision(), 1.0);
  EXPECT_NEAR(low_result->quality.recall(), high_result->quality.recall(), 0.15);
}

TEST(IntegrationTest, TyposRepairBetterThanSemanticForDrAndLlunatic) {
  // Fig. 7: both DRs and Llunatic handle typos better than semantic errors.
  Pipeline typos = MakeNobelPipeline(300, 0.10, /*typo_fraction=*/1.0);
  Pipeline semantic = MakeNobelPipeline(300, 0.10, /*typo_fraction=*/0.0);
  auto dr_typo =
      RunMethod(Method::kFastRepair, typos.dataset, &typos.kb, typos.dirty,
                typos.eligible);
  auto dr_sem = RunMethod(Method::kFastRepair, semantic.dataset, &semantic.kb,
                          semantic.dirty, semantic.eligible);
  ASSERT_TRUE(dr_typo.ok() && dr_sem.ok());
  EXPECT_GE(dr_typo->quality.f_measure(), dr_sem->quality.f_measure());
}

TEST(IntegrationTest, UisEndToEnd) {
  UisOptions options;
  options.num_tuples = 500;
  Dataset dataset = GenerateUis(options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  Relation dirty = dataset.clean;
  ErrorSpec spec;
  spec.error_rate = 0.10;
  InjectErrors(&dirty, spec, dataset.alternatives);
  std::vector<char> eligible = EligibleRows(dataset.clean, kb, dataset.key_column);

  auto dr = RunMethod(Method::kFastRepair, dataset, &kb, dirty, eligible);
  ASSERT_TRUE(dr.ok());
  EXPECT_DOUBLE_EQ(dr->quality.precision(), 1.0) << dr->quality.ToString();
  EXPECT_GT(dr->quality.recall(), 0.5) << dr->quality.ToString();

  auto llunatic = RunMethod(Method::kLlunatic, dataset, nullptr, dirty, eligible);
  ASSERT_TRUE(llunatic.ok());
  EXPECT_GT(dr->quality.f_measure(), llunatic->quality.f_measure());
}

TEST(IntegrationTest, UisRulesAreConsistent) {
  UisOptions options;
  options.num_tuples = 100;
  Dataset dataset = GenerateUis(options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  ConsistencyOptions copts;
  copts.max_orders = 30;
  copts.max_tuples = 20;
  auto report = CheckConsistency(kb, dataset.rules, dataset.clean, copts);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent) << report->ToString();
}

TEST(IntegrationTest, WebTablesCorpusEndToEnd) {
  WebTablesOptions options;
  WebTablesCorpus corpus = GenerateWebTables(options);
  KnowledgeBase kb = corpus.world.ToKb(YagoProfile(), corpus.key_entities);

  std::vector<RepairQuality> qualities;
  for (const WebTable& table : corpus.tables) {
    FastRepairer repairer(kb, table.clean.schema(), table.rules);
    ASSERT_TRUE(repairer.Init().ok()) << table.name;
    Relation repaired = table.dirty;
    repairer.RepairRelation(&repaired);
    std::vector<char> eligible = EligibleRows(table.clean, kb, table.key_column);
    qualities.push_back(EvaluateRepair(table.clean, table.dirty, repaired, eligible));
  }
  RepairQuality total = MergeQualities(qualities);
  EXPECT_DOUBLE_EQ(total.precision(), 1.0) << total.ToString();
  // Few attributes per table bound what DRs can repair (paper: R=0.38-0.43).
  EXPECT_GT(total.recall(), 0.15) << total.ToString();
  EXPECT_LT(total.recall(), 0.75) << total.ToString();
  EXPECT_GT(total.pos_marks, 0u);
}

TEST(IntegrationTest, FastAndBasicAgreeOnUis) {
  UisOptions options;
  options.num_tuples = 200;
  Dataset dataset = GenerateUis(options);
  KnowledgeBase kb = dataset.world.ToKb(DBpediaProfile(), dataset.key_entities);
  Relation dirty = dataset.clean;
  ErrorSpec spec;
  spec.error_rate = 0.12;
  InjectErrors(&dirty, spec, dataset.alternatives);

  auto basic = RunMethod(Method::kBasicRepair, dataset, &kb, dirty, {});
  auto fast = RunMethod(Method::kFastRepair, dataset, &kb, dirty, {});
  ASSERT_TRUE(basic.ok() && fast.ok());
  for (size_t row = 0; row < dirty.num_tuples(); ++row) {
    EXPECT_EQ(basic->repaired.tuple(row).values(), fast->repaired.tuple(row).values())
        << "row " << row;
  }
}

TEST(IntegrationTest, FastRepairDoesLessWorkThanBasic) {
  Pipeline p = MakeNobelPipeline(200, 0.10);

  RepairOptions basic_options;
  basic_options.matcher.use_signature_index = false;
  basic_options.matcher.use_value_memo = false;
  BasicRepairer basic(p.kb, p.dirty.schema(), p.dataset.rules, basic_options);
  ASSERT_TRUE(basic.Init().ok());
  Relation r1 = p.dirty;
  basic.RepairRelation(&r1);

  FastRepairer fast(p.kb, p.dirty.schema(), p.dataset.rules);
  ASSERT_TRUE(fast.Init().ok());
  Relation r2 = p.dirty;
  fast.RepairRelation(&r2);

  // The fast repairer issues fewer rule checks (one ordered sweep vs the
  // rescan loop) and far fewer candidate scans (memo + indexes).
  EXPECT_LE(fast.stats().rule_checks, basic.stats().rule_checks);
  EXPECT_LT(fast.engine().matcher().stats().scans,
            std::max<size_t>(basic.engine().matcher().stats().scans, 1));
}

}  // namespace
}  // namespace detective
