// End-to-end tests of the detective_serve stack (serve/service.h,
// serve/router.h, serve/worker_pool.h, serve/admission.h) against a real
// obs::HttpServer on an ephemeral loopback port — the request-level contract
// of docs/serving.md: repairs match the paper's worked example, repaired
// bytes are identical at every worker count, degradation (deadlines,
// injected faults) is per-request and answered 200 + degraded, refusals map
// to 400/403/413/429/503, a request-level panic answers 500 and the server
// survives, and drain finishes in-flight work while refusing new work.

#include "serve/service.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "core/repair.h"
#include "core/rule_io.h"
#include "kb/ntriples_parser.h"
#include "obs/http_server.h"
#include "relation/relation.h"
#include "serve/admission.h"
#include "serve/router.h"
#include "serve/worker_pool.h"

namespace detective::serve {
namespace {

constexpr const char* kKbPath = DETECTIVE_SOURCE_DIR "/data/figure1.nt";
constexpr const char* kRulesPath = DETECTIVE_SOURCE_DIR "/data/figure4.dr";
constexpr const char* kCsvPath = DETECTIVE_SOURCE_DIR "/data/table1.csv";
const std::vector<std::string> kSchema = {"Name",  "DOB",         "Country",
                                          "Prize", "Institution", "City"};

// ---- Raw-socket HTTP client (the obs_http_test idiom) -----------------------

int Connect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string ReadUntilClose(int fd) {
  std::string out;
  char buf[4096];
  while (out.size() < (1u << 22)) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

std::string Fetch(uint16_t port, const std::string& request) {
  int fd = Connect(port);
  if (fd < 0) return "";
  std::string response;
  if (SendAll(fd, request)) response = ReadUntilClose(fd);
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return Fetch(port, "GET " + path +
                         " HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
}

/// One-shot POST with a Content-Length body and optional extra header lines
/// (each "Name: value\r\n").
std::string Post(uint16_t port, const std::string& path,
                 const std::string& body, const std::string& extra = "") {
  return Fetch(port, "POST " + path + " HTTP/1.1\r\nHost: x\r\n" + extra +
                         "Content-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body);
}

int StatusOf(const std::string& response) {
  if (response.size() < 12 || response.compare(0, 9, "HTTP/1.1 ") != 0) {
    return -1;
  }
  return std::stoi(response.substr(9, 3));
}

std::string BodyOf(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

/// Value of `name` in the response head, or "" when absent.
std::string HeaderOf(const std::string& response, const std::string& name) {
  const size_t head_end = response.find("\r\n\r\n");
  const std::string needle = "\r\n" + name + ": ";
  const size_t at = response.find(needle);
  if (at == std::string::npos || at > head_end) return "";
  const size_t start = at + needle.size();
  return response.substr(start, response.find("\r\n", start) - start);
}

// ---- Harness ----------------------------------------------------------------

/// A service + router + listener wired exactly as tools/detective_serve.cc
/// wires them, on an ephemeral port.
struct Harness {
  explicit Harness(size_t workers, size_t queue = 32,
                   bool allow_fault_header = false, size_t max_body = 1 << 20,
                   uint64_t default_deadline_ms = 0) {
    ServiceOptions options;
    options.kb_path = kKbPath;
    options.rules_path = kRulesPath;
    options.schema_columns = kSchema;
    options.workers = workers;
    options.queue_capacity = queue;
    options.allow_fault_header = allow_fault_header;
    options.default_deadline_ms = default_deadline_ms;
    init = service.Init(std::move(options));
    obs::HttpServerOptions http;
    http.dispatch_threads = 4;
    http.max_body_bytes = max_body;
    server = std::make_unique<obs::HttpServer>(http);
    RegisterServiceHandlers(server.get(), &service);
    started = server->Start();
    service.MarkReady();
  }
  ~Harness() {
    service.Shutdown();
    if (server != nullptr) server->Stop();
  }

  uint16_t port() const { return server->port(); }

  CleaningService service;
  std::unique_ptr<obs::HttpServer> server;
  Status init = Status::OK();
  Status started = Status::OK();
};

std::string ReadFile(const std::string& path) {
  std::string out;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

/// The batch ground truth: the same inputs through a fresh single-threaded
/// FastRepairer — what /v1/clean-table must reproduce byte for byte.
std::string BatchRepairedCsv() {
  auto kb = LoadKbFile(kKbPath);
  EXPECT_TRUE(kb.ok());
  auto rules = ParseRulesFile(kRulesPath);
  EXPECT_TRUE(rules.ok());
  auto relation = Relation::FromCsvFile(kCsvPath);
  EXPECT_TRUE(relation.ok());
  FastRepairer repairer(*kb, relation->schema(), *rules);
  EXPECT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&*relation);
  return relation->ToCsv();
}

const char* kHershkoTuple =
    R"({"tuple":{"Name":"Avram Hershko","DOB":"1937-12-31",)"
    R"("Country":"Israel","Prize":"Albert Lasker Award for Medicine",)"
    R"("Institution":"Israel Institute of Technology","City":"Karcag"}})";

// ---- Request/response contract ----------------------------------------------

TEST(ServeCleanTuple, RepairsThePaperRow) {
  Harness harness(/*workers=*/2);
  ASSERT_TRUE(harness.init.ok()) << harness.init.ToString();
  ASSERT_TRUE(harness.started.ok()) << harness.started.ToString();
  std::string response =
      Post(harness.port(), "/v1/clean-tuple", kHershkoTuple);
  EXPECT_EQ(StatusOf(response), 200);
  const std::string body = BodyOf(response);
  // Table I row r1: Prize and City are wrong; the Fig. 4 rules repair both.
  EXPECT_NE(body.find("\"degraded\":false"), std::string::npos) << body;
  EXPECT_NE(body.find("\"Prize\":\"Nobel Prize in Chemistry\""),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("\"City\":\"Haifa\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"from\":\"Karcag\""), std::string::npos) << body;
  EXPECT_EQ(body.find("\"quarantine\":[]"), body.size() - 17) << body;
}

TEST(ServeCleanTuple, RequestErrorsAre400) {
  Harness harness(/*workers=*/1);
  ASSERT_TRUE(harness.started.ok());
  // Malformed JSON, unknown field, unknown column, missing column.
  EXPECT_EQ(StatusOf(Post(harness.port(), "/v1/clean-tuple", "{nope")), 400);
  EXPECT_EQ(StatusOf(Post(harness.port(), "/v1/clean-tuple",
                          R"({"bogus":"x"})")),
            400);
  EXPECT_EQ(StatusOf(Post(harness.port(), "/v1/clean-tuple",
                          R"({"tuple":{"Martian":"x"}})")),
            400);
  EXPECT_EQ(StatusOf(Post(harness.port(), "/v1/clean-tuple",
                          R"({"tuple":{"Name":"x"}})")),
            400);
  // The daemon took all four bad requests in stride.
  EXPECT_EQ(StatusOf(Post(harness.port(), "/v1/clean-tuple", kHershkoTuple)),
            200);
}

TEST(ServeCleanTable, ByteIdenticalToBatchAtEveryWorkerCount) {
  const std::string want = BatchRepairedCsv();
  const std::string input = ReadFile(kCsvPath);
  ASSERT_FALSE(want.empty());
  ASSERT_FALSE(input.empty());
  for (size_t workers : {1u, 2u, 8u}) {
    Harness harness(workers);
    ASSERT_TRUE(harness.started.ok());
    std::string response = Post(harness.port(), "/v1/clean-table", input);
    EXPECT_EQ(StatusOf(response), 200);
    EXPECT_EQ(HeaderOf(response, "X-Detective-Degraded"), "false");
    EXPECT_EQ(HeaderOf(response, "X-Detective-Quarantined"), "0");
    EXPECT_EQ(BodyOf(response), want) << "workers=" << workers;
  }
}

TEST(ServeCleanTable, BadCsvAndSchemaMismatchAre400) {
  Harness harness(/*workers=*/1);
  ASSERT_TRUE(harness.started.ok());
  EXPECT_EQ(StatusOf(Post(harness.port(), "/v1/clean-table",
                          "Name,City\n\"unterminated\n")),
            400);
  EXPECT_EQ(StatusOf(Post(harness.port(), "/v1/clean-table",
                          "Name,City\nAlice,Rome\n")),
            400);
}

TEST(ServeExplain, RoundTripsProvenanceAndUnknownIdIs404) {
  Harness harness(/*workers=*/1);
  ASSERT_TRUE(harness.started.ok());
  std::string response =
      Post(harness.port(), "/v1/clean-table", ReadFile(kCsvPath));
  ASSERT_EQ(StatusOf(response), 200);
  const std::string id = HeaderOf(response, "X-Detective-Request-Id");
  ASSERT_FALSE(id.empty());
  std::string explain = Get(
      harness.port(), "/v1/explain?id=" + id + "&row=0&column=City");
  EXPECT_EQ(StatusOf(explain), 200);
  // Row r1's City repair (Karcag -> Haifa) is on record, blaming phi2.
  EXPECT_NE(BodyOf(explain).find("\"rule\": \"phi2\""), std::string::npos)
      << explain;
  EXPECT_EQ(StatusOf(Get(harness.port(), "/v1/explain?id=r-999&row=0"
                                         "&column=City")),
            404);
  EXPECT_EQ(StatusOf(Get(harness.port(), "/v1/explain?id=" + id)), 400);
}

TEST(ServeRules, ReportsTheFrozenRuleSet) {
  Harness harness(/*workers=*/1);
  ASSERT_TRUE(harness.started.ok());
  std::string response = Get(harness.port(), "/v1/rules");
  EXPECT_EQ(StatusOf(response), 200);
  const std::string body = BodyOf(response);
  EXPECT_NE(body.find("\"total\":4"), std::string::npos) << body;
  EXPECT_NE(body.find("\"name\":\"phi2\",\"target\":\"City\""),
            std::string::npos)
      << body;
}

TEST(ServeLimits, OversizedBodyIs413) {
  Harness harness(/*workers=*/1, /*queue=*/32, /*allow_fault_header=*/false,
                  /*max_body=*/128);
  ASSERT_TRUE(harness.started.ok());
  std::string response = Post(harness.port(), "/v1/clean-table",
                              std::string(256, 'x'));
  EXPECT_EQ(StatusOf(response), 413);
}

TEST(ServeFaultHeader, RefusedWithoutOptIn) {
  Harness harness(/*workers=*/1);  // --allow-fault-header NOT set
  ASSERT_TRUE(harness.started.ok());
  std::string response =
      Post(harness.port(), "/v1/clean-tuple", kHershkoTuple,
           "X-Detective-Fault-Plan: site=repair.tuple, hit=1\r\n");
  EXPECT_EQ(StatusOf(response), 403);
}

// ---- Availability -----------------------------------------------------------

TEST(ServeReadyz, TracksLifecycle) {
  Harness harness(/*workers=*/1);
  ASSERT_TRUE(harness.started.ok());
  std::string ready = Get(harness.port(), "/readyz");
  EXPECT_EQ(StatusOf(ready), 200);
  // Exact-key JSON contract, schema-checked in CI by check_serve_response.py
  // --kind=readyz; the KB here is loaded from text.
  EXPECT_NE(BodyOf(ready).find("\"status\":\"ready\""), std::string::npos);
  EXPECT_NE(BodyOf(ready).find("\"kb_source\":\"text\""), std::string::npos);
  EXPECT_NE(BodyOf(ready).find("\"kb_load_ms\":"), std::string::npos);
  harness.service.BeginDrain(/*grace_ms=*/1000);
  std::string draining = Get(harness.port(), "/readyz");
  EXPECT_EQ(StatusOf(draining), 503);
  EXPECT_NE(BodyOf(draining).find("draining"), std::string::npos);
  EXPECT_EQ(HeaderOf(draining, "Retry-After"), "1");
  // Cleaning requests are refused the same way once drain begins.
  EXPECT_EQ(StatusOf(Post(harness.port(), "/v1/clean-tuple", kHershkoTuple)),
            503);
}

TEST(ServeDrain, ShedsAtTheServiceLayerToo) {
  Harness harness(/*workers=*/1);
  ASSERT_TRUE(harness.init.ok());
  harness.service.BeginDrain(/*grace_ms=*/1000);
  TupleOutcome outcome;
  uint64_t retry_after = 0;
  EXPECT_EQ(harness.service.CleanTuple(
                {"Avram Hershko", "1937-12-31", "Israel", "x", "y", "z"}, 0,
                fault::FaultPlan{}, &outcome, &retry_after),
            CleaningService::Admit::kShed);
  EXPECT_GE(retry_after, 1u);
  EXPECT_TRUE(harness.service.WaitIdle(/*timeout_ms=*/2000));
}

// ---- Chaos: per-request fault plans, deadlines, shedding, drain -------------

#if DETECTIVE_FAULT_ENABLED

TEST(ServeFaultHeader, QuarantinesOnlyTheFaultedRequest) {
  Harness harness(/*workers=*/2, /*queue=*/32, /*allow_fault_header=*/true);
  ASSERT_TRUE(harness.started.ok());
  std::string faulted =
      Post(harness.port(), "/v1/clean-tuple", kHershkoTuple,
           "X-Detective-Fault-Plan: seed=7; site=repair.tuple, p=1\r\n");
  // Degradation is an outcome, not an error: 200 with the ledger attached
  // and the tuple returned pristine (the batch exit-4 contract).
  EXPECT_EQ(StatusOf(faulted), 200);
  const std::string body = BodyOf(faulted);
  EXPECT_NE(body.find("\"degraded\":true"), std::string::npos) << body;
  EXPECT_NE(body.find("\"reason\": \"fault\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"Prize\":\"Albert Lasker Award for Medicine\""),
            std::string::npos)
      << body;
  // A malformed plan is the caller's error.
  EXPECT_EQ(StatusOf(Post(harness.port(), "/v1/clean-tuple", kHershkoTuple,
                          "X-Detective-Fault-Plan: site=\r\n")),
            400);
  // The very next un-faulted request — and a whole post-chaos table — are
  // byte-identical to a fresh batch run: the thread-scoped plan leaked into
  // nothing.
  std::string clean = Post(harness.port(), "/v1/clean-tuple", kHershkoTuple);
  EXPECT_EQ(StatusOf(clean), 200);
  EXPECT_NE(BodyOf(clean).find("\"degraded\":false"), std::string::npos);
  std::string table =
      Post(harness.port(), "/v1/clean-table", ReadFile(kCsvPath));
  EXPECT_EQ(BodyOf(table), BatchRepairedCsv());
}

TEST(ServeDeadline, ExpiredDeadlineDegradesTheWholeRequest) {
  Harness harness(/*workers=*/1, /*queue=*/32, /*allow_fault_header=*/true);
  ASSERT_TRUE(harness.started.ok());
  // The request-level probe sleeps past the deadline, so every row's
  // pre-chase deadline check trips: 200, degraded, all rows quarantined
  // with reason "deadline", bytes returned unrepaired.
  std::string response = Post(
      harness.port(), "/v1/clean-table?deadline_ms=20", ReadFile(kCsvPath),
      "X-Detective-Fault-Plan: site=serve.request, kind=latency, "
      "latency_ms=80\r\n");
  EXPECT_EQ(StatusOf(response), 200);
  EXPECT_EQ(HeaderOf(response, "X-Detective-Degraded"), "true");
  EXPECT_EQ(HeaderOf(response, "X-Detective-Quarantined"), "4");
  EXPECT_EQ(BodyOf(response), ReadFile(kCsvPath));
  // Same contract for a single tuple, via the body's deadline_ms field.
  std::string tuple = Post(
      harness.port(), "/v1/clean-tuple",
      std::string(R"({"deadline_ms":20,)") + (kHershkoTuple + 1),
      "X-Detective-Fault-Plan: site=serve.request, kind=latency, "
      "latency_ms=80\r\n");
  EXPECT_EQ(StatusOf(tuple), 200);
  EXPECT_NE(BodyOf(tuple).find("\"reason\": \"run_deadline\""),
            std::string::npos)
      << BodyOf(tuple);
}

TEST(ServeAdmission, FullQueueSheds429WithRetryAfter) {
  Harness harness(/*workers=*/1, /*queue=*/1, /*allow_fault_header=*/true);
  ASSERT_TRUE(harness.started.ok());
  const std::string slow_header =
      "X-Detective-Fault-Plan: site=serve.request, kind=latency, "
      "latency_ms=400\r\n";
  // A occupies the only worker; B fills the only queue slot.
  std::thread a([&] {
    EXPECT_EQ(StatusOf(Post(harness.port(), "/v1/clean-tuple", kHershkoTuple,
                            slow_header)),
              200);
  });
  std::thread b;
  for (int i = 0; i < 200 && harness.service.admission().admitted() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  b = std::thread([&] {
    EXPECT_EQ(StatusOf(Post(harness.port(), "/v1/clean-tuple", kHershkoTuple,
                            slow_header)),
              200);
  });
  for (int i = 0; i < 200 && harness.service.queued() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // C finds worker busy + queue full: shed, with an honest retry estimate.
  std::string shed = Post(harness.port(), "/v1/clean-tuple", kHershkoTuple);
  EXPECT_EQ(StatusOf(shed), 429);
  EXPECT_FALSE(HeaderOf(shed, "Retry-After").empty());
  EXPECT_GE(harness.service.admission().sheds(), 1u);
  a.join();
  b.join();
}

TEST(ServeDrain, FinishesInFlightRequestsBeforeExit) {
  Harness harness(/*workers=*/1, /*queue=*/4, /*allow_fault_header=*/true);
  ASSERT_TRUE(harness.started.ok());
  std::string in_flight_response;
  std::thread in_flight([&] {
    in_flight_response = Post(
        harness.port(), "/v1/clean-tuple", kHershkoTuple,
        "X-Detective-Fault-Plan: site=serve.request, kind=latency, "
        "latency_ms=300\r\n");
  });
  for (int i = 0; i < 200 && harness.service.admission().admitted() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  harness.service.BeginDrain(/*grace_ms=*/5000);
  harness.server->BeginDrain();
  EXPECT_TRUE(harness.server->WaitIdle(/*timeout_ms=*/5000));
  EXPECT_TRUE(harness.service.WaitIdle(/*timeout_ms=*/5000));
  in_flight.join();
  // The request admitted before the drain completed normally.
  EXPECT_EQ(StatusOf(in_flight_response), 200);
  EXPECT_NE(BodyOf(in_flight_response).find("\"degraded\":false"),
            std::string::npos);
}

TEST(ServePanic, RequestFaultIs500AndTheServerSurvives) {
  Harness harness(/*workers=*/1, /*queue=*/32, /*allow_fault_header=*/true);
  ASSERT_TRUE(harness.started.ok());
  std::string panicked =
      Post(harness.port(), "/v1/clean-tuple", kHershkoTuple,
           "X-Detective-Fault-Plan: seed=3; site=serve.request, hit=1\r\n");
  EXPECT_EQ(StatusOf(panicked), 500);
  // The worker, the pool, and the listener all survived the panic.
  EXPECT_EQ(StatusOf(Post(harness.port(), "/v1/clean-tuple", kHershkoTuple)),
            200);
}

#endif  // DETECTIVE_FAULT_ENABLED

// ---- Unit coverage for the serve primitives ---------------------------------

TEST(BoundedWorkerPool, RefusesBeyondCapacityAndDrainsGracefully) {
  BoundedWorkerPool pool(/*workers=*/1, /*queue_capacity=*/1);
  std::atomic<int> ran{0};
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  ASSERT_TRUE(pool.Submit([&](size_t) {
    gate.wait();
    ++ran;
  }));
  // Wait for the worker to pick the blocker up, then fill the queue slot.
  for (int i = 0; i < 200 && pool.in_flight() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(pool.Submit([&](size_t) { ++ran; }));
  EXPECT_FALSE(pool.Submit([&](size_t) { ++ran; }));  // full → shed
  release.set_value();
  EXPECT_TRUE(pool.WaitIdle(/*timeout_ms=*/2000));
  EXPECT_EQ(ran.load(), 2);
  pool.BeginDrain();
  EXPECT_FALSE(pool.Submit([&](size_t) { ++ran; }));  // draining → shed
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 2);
}

TEST(AdmissionController, RetryAfterTracksServiceTime) {
  AdmissionController admission(/*workers=*/2);
  EXPECT_EQ(admission.RetryAfterSeconds(/*queued=*/5), 1u);  // no sample yet
  for (int i = 0; i < 50; ++i) admission.RecordServiceMs(2000.0);
  // ~2s per request, 2 workers, 3 queued + mine → ceil(2*4/2) = 4s.
  EXPECT_EQ(admission.RetryAfterSeconds(/*queued=*/3), 4u);
  // Clamped to the ceiling so a pathological EWMA never tells a client to
  // go away for minutes.
  for (int i = 0; i < 50; ++i) admission.RecordServiceMs(600000.0);
  EXPECT_EQ(admission.RetryAfterSeconds(/*queued=*/10), 30u);
  admission.RecordShed();
  admission.RecordAdmit();
  EXPECT_EQ(admission.sheds(), 1u);
  EXPECT_EQ(admission.admitted(), 1u);
}

}  // namespace
}  // namespace detective::serve
