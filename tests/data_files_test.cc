// Keeps the shipped data/ files (the paper's running example as loadable
// artifacts) valid: they must parse, be mutually consistent, and repair
// Table I to its ground truth — the same guarantee the README quickstart
// relies on.

#include <gtest/gtest.h>

#include <fstream>

#include "core/consistency.h"
#include "core/repair.h"
#include "core/rule_io.h"
#include "kb/ntriples_parser.h"
#include "test_fixtures.h"

namespace detective {
namespace {

// Tests run from the build tree; data/ lives at the repository root. The
// source dir baked in at configure time covers out-of-tree builds; the
// relative fallbacks keep direct binary invocation working from odd cwds.
std::string DataPath(const std::string& name) {
  for (const char* prefix : {
#ifdef DETECTIVE_SOURCE_DIR
           DETECTIVE_SOURCE_DIR "/data/",
#endif
           "../data/", "data/", "../../data/"}) {
    std::string candidate = prefix + name;
    if (std::ifstream(candidate).good()) return candidate;
  }
  return "data/" + name;
}

TEST(DataFilesTest, Figure1KbParses) {
  auto kb = ParseNTriplesFile(DataPath("figure1.nt"));
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  EXPECT_EQ(kb->num_entities(), testing::BuildFigure1Kb().num_entities());
  EXPECT_EQ(kb->num_edges(), testing::BuildFigure1Kb().num_edges());
}

TEST(DataFilesTest, Figure4RulesParse) {
  auto rules = ParseRulesFile(DataPath("figure4.dr"));
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules->size(), 4u);
  // They are exactly the fixture rules.
  std::vector<DetectiveRule> expected = testing::BuildFigure4Rules();
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*rules)[i], expected[i]) << expected[i].name();
  }
}

TEST(DataFilesTest, Table1Parses) {
  auto table = Relation::FromCsvFile(DataPath("table1.csv"));
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_tuples(), 4u);
  EXPECT_EQ(table->schema(), testing::BuildTableI().schema());
}

TEST(DataFilesTest, ShippedArtifactsRepairTableI) {
  auto kb = ParseNTriplesFile(DataPath("figure1.nt"));
  auto rules = ParseRulesFile(DataPath("figure4.dr"));
  auto table = Relation::FromCsvFile(DataPath("table1.csv"));
  ASSERT_TRUE(kb.ok() && rules.ok() && table.ok());

  auto report = CheckConsistency(*kb, *rules, *table);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent) << report->ToString();

  FastRepairer repairer(*kb, table->schema(), *rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&*table);
  Relation clean = testing::BuildTableIClean();
  for (size_t row = 0; row < table->num_tuples(); ++row) {
    EXPECT_EQ(table->tuple(row).values(), clean.tuple(row).values()) << row;
  }
}

}  // namespace
}  // namespace detective
