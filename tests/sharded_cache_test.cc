// Tests for common/sharded_cache: insert-once determinism, the capacity
// bound (reject, never evict — pointer stability), and a concurrent hammer
// that the CI TSan job runs race-checked.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/sharded_cache.h"

namespace detective {
namespace {

using IntVecCache = ShardedCache<std::vector<int>>;

TEST(ShardedCacheTest, FindMissesThenHitsAfterInsert) {
  IntVecCache cache;
  EXPECT_EQ(cache.Find("alpha"), nullptr);

  const std::vector<int>* stored = cache.Insert("alpha", {1, 2, 3});
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(*stored, (std::vector<int>{1, 2, 3}));

  const std::vector<int>* found = cache.Find("alpha");
  EXPECT_EQ(found, stored);

  ShardedCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(ShardedCacheTest, FirstInsertWins) {
  IntVecCache cache;
  const std::vector<int>* first = cache.Insert("key", {1});
  const std::vector<int>* second = cache.Insert("key", {2});
  // The second insert returns the incumbent entry, untouched.
  EXPECT_EQ(second, first);
  EXPECT_EQ(*first, std::vector<int>{1});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().inserts, 1u);
}

TEST(ShardedCacheTest, RejectedInsertLeavesValueUsable) {
  IntVecCache cache(1);  // one entry per shard
  std::vector<const std::vector<int>*> stored;
  size_t rejected = 0;
  for (int i = 0; i < 512; ++i) {
    std::vector<int> value{i};
    const std::vector<int>* entry =
        cache.Insert("key-" + std::to_string(i), std::move(value));
    if (entry == nullptr) {
      // Rejected: the value must still be intact for local use.
      ++rejected;
      EXPECT_EQ(value, std::vector<int>{i});
    } else {
      stored.push_back(entry);
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_LE(cache.size(), IntVecCache::kNumShards);
  EXPECT_EQ(cache.stats().rejected, rejected);
}

// No eviction means no dangling entry pointers: everything handed out stays
// readable after the cache filled up and rejected hundreds of inserts.
TEST(ShardedCacheTest, CapacityBoundNeverInvalidatesStoredEntries) {
  IntVecCache cache(64);
  struct Handle {
    std::string key;
    const std::vector<int>* entry;
    int payload;
  };
  std::vector<Handle> handles;
  for (int i = 0; i < 4096; ++i) {
    std::string key = "entry-" + std::to_string(i);
    if (const std::vector<int>* entry = cache.Insert(key, {i, i + 1})) {
      handles.push_back({std::move(key), entry, i});
    }
  }
  ASSERT_FALSE(handles.empty());
  EXPECT_LT(handles.size(), 4096u);  // the bound actually bit
  for (const Handle& handle : handles) {
    EXPECT_EQ(*handle.entry, (std::vector<int>{handle.payload, handle.payload + 1}));
    EXPECT_EQ(cache.Find(handle.key), handle.entry);
  }
}

// Concurrent hammer (race-checked under TSan in CI): 8 threads race Find and
// Insert over a shared key space. Insert-once means every thread must observe
// the same winning entry per key — pointer-equal and content-stable — no
// matter the interleaving.
TEST(ShardedCacheTest, ConcurrentHammerObservesOneWinnerPerKey) {
  constexpr size_t kThreads = 8;
  constexpr size_t kKeys = 64;
  constexpr size_t kRounds = 400;
  IntVecCache cache(1 << 16);

  // observed[t][k]: the entry thread t saw for key k (first observation).
  std::vector<std::vector<const std::vector<int>*>> observed(
      kThreads, std::vector<const std::vector<int>*>(kKeys, nullptr));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &cache, &observed] {
      for (size_t round = 0; round < kRounds; ++round) {
        const size_t k = (round * 7 + t * 13) % kKeys;
        const std::string key = "key-" + std::to_string(k);
        const std::vector<int>* entry = cache.Find(key);
        if (entry == nullptr) {
          // Tag the candidate value with the inserting thread: if two
          // inserts ever both "won", some thread would observe a foreign
          // tag change under it.
          entry = cache.Insert(
              key, {static_cast<int>(k), static_cast<int>(t)});
        }
        ASSERT_NE(entry, nullptr);
        ASSERT_EQ(entry->front(), static_cast<int>(k));
        if (observed[t][k] == nullptr) observed[t][k] = entry;
        // Same entry on every later encounter.
        ASSERT_EQ(observed[t][k], entry);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Cross-thread agreement: one winner per key.
  for (size_t k = 0; k < kKeys; ++k) {
    const std::vector<int>* winner = nullptr;
    for (size_t t = 0; t < kThreads; ++t) {
      if (observed[t][k] == nullptr) continue;
      if (winner == nullptr) winner = observed[t][k];
      EXPECT_EQ(observed[t][k], winner) << "key " << k << " thread " << t;
    }
    ASSERT_NE(winner, nullptr);
    EXPECT_EQ(winner->front(), static_cast<int>(k));
  }
  EXPECT_EQ(cache.size(), kKeys);
  EXPECT_EQ(cache.stats().inserts, kKeys);
}

TEST(ShardedCacheStatsTest, ToStringReportsHitRate) {
  IntVecCache cache;
  cache.Insert("a", {1});
  cache.Find("a");
  cache.Find("b");
  std::string text = cache.stats().ToString();
  EXPECT_NE(text.find("hits=1"), std::string::npos);
  EXPECT_NE(text.find("misses=1"), std::string::npos);
  EXPECT_NE(text.find("hit_rate=0.500"), std::string::npos);
}

}  // namespace
}  // namespace detective
