// Property tests for the text/edit_distance kernels: the banded (Ukkonen)
// and bit-parallel (Myers) kernels must agree with the naive full-DP
// reference on random strings — including the threshold early-exit contract
// (any value > max_edits when the true distance exceeds it) and the >64-char
// fallback from the bit-parallel kernel to the banded one.

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "text/edit_distance.h"

namespace detective {
namespace {

std::string RandomString(Rng* rng, size_t max_len, int alphabet) {
  size_t len = rng->NextIndex(max_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng->NextIndex(alphabet)));
  }
  return s;
}

/// Checks the shared kernel contract against the naive reference: exact when
/// the true distance is <= k, anything > k otherwise.
void CheckKernelContract(std::string_view a, std::string_view b, size_t k,
                         size_t kernel_result, const char* kernel) {
  const size_t exact = EditDistance(a, b);
  SCOPED_TRACE(std::string(kernel) + " a=" + std::string(a) + " b=" +
               std::string(b) + " k=" + std::to_string(k));
  if (exact <= k) {
    EXPECT_EQ(kernel_result, exact);
  } else {
    EXPECT_GT(kernel_result, k);
  }
}

class KernelAgreementProperty : public ::testing::TestWithParam<uint64_t> {};

// Short strings: both kernels are eligible; all three must agree with the
// reference at every threshold.
TEST_P(KernelAgreementProperty, ShortStringsAllKernelsAgree) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    std::string a = RandomString(&rng, 16, 4);  // small alphabet: real edits
    std::string b = RandomString(&rng, 16, 4);
    for (size_t k = 0; k <= 6; ++k) {
      CheckKernelContract(a, b, k, BitParallelEditDistance(a, b, k), "myers");
      CheckKernelContract(a, b, k, BandedEditDistance(a, b, k), "banded");
      CheckKernelContract(a, b, k, BoundedEditDistance(a, b, k), "dispatch");
      EXPECT_EQ(WithinEditDistance(a, b, k), EditDistance(a, b) <= k);
    }
  }
}

// Long strings (> 64 chars): the bit-parallel kernel is ineligible, so the
// dispatcher must fall back to the banded kernel — and stay exact.
TEST_P(KernelAgreementProperty, LongStringsFallBackToBanded) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    std::string a = RandomString(&rng, 60, 3);
    a += RandomString(&rng, 60, 3);  // up to 120 chars, frequently > 64
    std::string b = a;
    // Perturb a copy so distances concentrate near the thresholds.
    for (int e = 0; e < 4 && !b.empty(); ++e) {
      size_t at = rng.NextIndex(b.size());
      switch (rng.NextIndex(3)) {
        case 0: b[at] = static_cast<char>('a' + rng.NextIndex(3)); break;
        case 1: b.erase(at, 1); break;
        default: b.insert(at, 1, static_cast<char>('a' + rng.NextIndex(3)));
      }
    }
    for (size_t k = 0; k <= 5; ++k) {
      CheckKernelContract(a, b, k, BoundedEditDistance(a, b, k), "dispatch");
      CheckKernelContract(a, b, k, BandedEditDistance(a, b, k), "banded");
    }
  }
}

// The batched verifier must make decisions identical to WithinEditDistance —
// for queries on both sides of the 64-char bit-parallel eligibility line.
TEST_P(KernelAgreementProperty, VerifierMatchesWithinEditDistance) {
  Rng rng(GetParam());
  for (size_t query_max : {16u, 100u}) {
    for (int trial = 0; trial < 100; ++trial) {
      std::string query = RandomString(&rng, query_max, 4);
      for (size_t k = 0; k <= 3; ++k) {
        EditDistanceVerifier verifier(query, k);
        for (int c = 0; c < 8; ++c) {
          std::string candidate = RandomString(&rng, query_max, 4);
          SCOPED_TRACE("q=" + query + " c=" + candidate + " k=" +
                       std::to_string(k));
          EXPECT_EQ(verifier.Matches(candidate),
                    WithinEditDistance(query, candidate, k));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelAgreementProperty,
                         ::testing::Values(11, 12, 13, 14, 15));

// The m == 64 boundary exercises the full-word mask path (1 << 64 would be
// undefined behaviour if the kernel computed the start vector naively).
TEST(KernelEdgeCases, ExactlySixtyFourCharPattern) {
  std::string a(64, 'a');
  std::string b = a;
  b[10] = 'b';
  b[50] = 'c';
  EXPECT_EQ(BitParallelEditDistance(a, b, 5), 2u);
  EXPECT_EQ(BoundedEditDistance(a, b, 5), 2u);
  EXPECT_EQ(BitParallelEditDistance(a, a, 0), 0u);
  std::string c(65, 'a');
  EXPECT_EQ(BoundedEditDistance(a, c, 2), 1u);  // shorter side is exactly 64
}

TEST(KernelEdgeCases, EmptyStrings) {
  EXPECT_EQ(BitParallelEditDistance("", "", 0), 0u);
  EXPECT_EQ(BitParallelEditDistance("", "ab", 2), 2u);
  EXPECT_GT(BitParallelEditDistance("", "abc", 2), 2u);
  EditDistanceVerifier verifier("", 2);
  EXPECT_TRUE(verifier.Matches("xy"));
  EXPECT_FALSE(verifier.Matches("xyz"));
}

// Early exit: a huge length gap must be rejected before any scan, and a
// mid-string divergence must not produce a value <= k.
TEST(KernelEdgeCases, ThresholdEarlyExit) {
  std::string a(40, 'a');
  std::string b(40, 'b');
  EXPECT_GT(BitParallelEditDistance(a, b, 3), 3u);
  EXPECT_GT(BandedEditDistance(a, b, 3), 3u);
  EXPECT_GT(BoundedEditDistance(std::string(200, 'a'), "a", 5), 5u);
}

}  // namespace
}  // namespace detective
