// Chaos tests for the fault-tolerant pipeline (docs/robustness.md): the
// guarded repair path must never crash, must quarantine deterministically
// under a fixed seed, must leave set-aside tuples bit-identical to their
// input bytes, and must reconcile (every row is either repaired/clean or
// quarantined). Sequential and parallel guarded repair must agree exactly
// under the same fault plan.

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "core/parallel_repair.h"
#include "core/quarantine.h"
#include "core/repair.h"
#include "test_fixtures.h"

namespace detective {
namespace {

/// Arms the global injector for one test body and always disarms on exit so
/// tests cannot leak faults into each other.
class ArmedPlan {
 public:
  explicit ArmedPlan(std::string_view spec) {
    auto plan = fault::FaultPlan::Parse(spec);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    if (plan.ok()) fault::Injector::Global().Arm(*plan);
  }
  ~ArmedPlan() { fault::Injector::Global().Disarm(); }
};

/// Runs a guarded sequential repair of Table I under `options`, returning the
/// repaired relation and the quarantine ledger.
struct GuardedRun {
  Relation relation = testing::BuildTableI();
  QuarantineLog quarantine;
  RepairStats stats;
  size_t disabled_rules = 0;
};

GuardedRun RunGuarded(const RepairOptions& options) {
  GuardedRun run;
  KnowledgeBase kb = testing::BuildFigure1Kb();
  FastRepairer repairer(kb, run.relation.schema(), testing::BuildFigure4Rules(),
                        options);
  EXPECT_TRUE(repairer.Init().ok());
  repairer.RepairRelationGuarded(&run.relation, &run.quarantine);
  run.stats = repairer.stats();
  run.disabled_rules = repairer.engine().num_disabled_rules();
  return run;
}

// ---- Fault-plan grammar -----------------------------------------------------

TEST(FaultPlanTest, ParsesAndRoundTrips) {
  auto plan = fault::FaultPlan::Parse(
      "seed=7; site=kb.load, hit=1; "
      "site=kb.*, kind=latency, latency_ms=50, p=0.25");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->seed, 7u);
  ASSERT_EQ(plan->clauses.size(), 2u);
  EXPECT_EQ(plan->clauses[0].site_glob, "kb.load");
  EXPECT_EQ(plan->clauses[0].kind, fault::FaultKind::kStatus);
  EXPECT_EQ(plan->clauses[0].nth_hit, 1u);
  EXPECT_EQ(plan->clauses[1].kind, fault::FaultKind::kLatency);
  EXPECT_EQ(plan->clauses[1].latency_ms, 50u);
  EXPECT_DOUBLE_EQ(plan->clauses[1].probability, 0.25);

  auto reparsed = fault::FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(*plan, *reparsed);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(fault::FaultPlan::Parse("bogus").ok());
  EXPECT_FALSE(fault::FaultPlan::Parse("site=x, p=1.5").ok());
  EXPECT_FALSE(fault::FaultPlan::Parse("site=x, p=-0.1").ok());
  EXPECT_FALSE(fault::FaultPlan::Parse("kind=status").ok());  // no site
  EXPECT_FALSE(fault::FaultPlan::Parse("site=x, frequency=2").ok());
  EXPECT_FALSE(fault::FaultPlan::Parse("site=x, kind=sparks").ok());
  EXPECT_FALSE(fault::FaultPlan::Parse("seed=banana").ok());
}

TEST(FaultPlanTest, GlobMatching) {
  EXPECT_TRUE(fault::GlobMatch("kb.lookup", "kb.lookup"));
  EXPECT_TRUE(fault::GlobMatch("kb.*", "kb.lookup"));
  EXPECT_TRUE(fault::GlobMatch("*", "anything"));
  EXPECT_TRUE(fault::GlobMatch("*.load", "csv.load"));
  EXPECT_FALSE(fault::GlobMatch("kb.*", "csv.load"));
  EXPECT_FALSE(fault::GlobMatch("kb.lookup", "kb.look"));
  EXPECT_TRUE(fault::GlobMatch("a*b*c", "axxbyyc"));
  EXPECT_FALSE(fault::GlobMatch("a*b*c", "axxbyy"));
}

// ---- Deadlines and tokens ---------------------------------------------------

TEST(DeadlineTest, ZeroExpiresInfiniteNever) {
  EXPECT_TRUE(Deadline::AfterMs(0).Expired());
  EXPECT_FALSE(Deadline::Infinite().Expired());
  EXPECT_TRUE(Deadline::Infinite().infinite());
}

TEST(DeadlineTest, FirstTripWins) {
  CancelToken token;
  token.Trip(CancelReason::kFault, "kb.lookup", "first");
  token.Trip(CancelReason::kRunDeadline, "elsewhere", "second");
  EXPECT_TRUE(token.tripped());
  EXPECT_EQ(token.reason(), CancelReason::kFault);
  EXPECT_EQ(token.site(), "kb.lookup");
  EXPECT_EQ(token.detail(), "first");
  token.BlameOnce("phi1", 2);
  token.BlameOnce("phi9", 9);
  EXPECT_EQ(token.blamed_rule(), "phi1");
  EXPECT_EQ(token.blamed_round(), 2u);
  token.Reset();
  EXPECT_FALSE(token.tripped());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
}

TEST(DeadlineTest, ExpiredTupleBudgetTripsOnPoll) {
  CancelToken token;
  token.ArmDeadlines(Deadline::Infinite(), Deadline::AfterMs(0));
  EXPECT_TRUE(token.CheckNow());
  EXPECT_EQ(token.reason(), CancelReason::kTupleBudget);
}

// ---- Quarantine serialization ----------------------------------------------

TEST(QuarantineTest, RecordJsonRoundTrip) {
  QuarantineRecord record{3, "phi1", "kb.lookup", CancelReason::kFault, 2,
                          "injected fault at kb.lookup (hit 4)"};
  auto parsed = QuarantineRecord::FromJson(record.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, record);
}

TEST(QuarantineTest, RecordParserRejectsBadDocuments) {
  EXPECT_FALSE(QuarantineRecord::FromJson("{}").ok());  // row+reason required
  EXPECT_FALSE(QuarantineRecord::FromJson("{\"row\": 1}").ok());
  EXPECT_FALSE(
      QuarantineRecord::FromJson("{\"row\": 1, \"reason\": \"gremlins\"}").ok());
  EXPECT_FALSE(QuarantineRecord::FromJson(
                   "{\"row\": 1, \"reason\": \"fault\", \"surprise\": 1}")
                   .ok());
  EXPECT_TRUE(
      QuarantineRecord::FromJson("{\"row\": 1, \"reason\": \"tuple_budget\"}")
          .ok());
}

TEST(QuarantineTest, LogJsonLinesRoundTripAndCanonicalOrder) {
  QuarantineLog log;
  log.Add({5, "phi2", "", CancelReason::kTupleBudget, 1, ""});
  log.Add({1, "", "repair.tuple", CancelReason::kFault, 0, "boom"});
  log.Add({5, "phi1", "", CancelReason::kRunDeadline, 0, ""});

  auto parsed = QuarantineLog::FromJsonLines(log.ToJsonLines() + "\n\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, log);

  log.Canonicalize();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.records()[0].row, 1u);
  EXPECT_EQ(log.records()[1].row, 5u);
  EXPECT_EQ(log.records()[1].round, 0u);  // stable sort by (row, round)
  EXPECT_EQ(log.records()[2].round, 1u);
  EXPECT_EQ(log.Rows(), (std::vector<uint64_t>{1, 5}));

  EXPECT_FALSE(QuarantineLog::FromJsonLines("not json\n").ok());
}

// ---- Guarded repair semantics ----------------------------------------------

TEST(ChaosTest, GuardedWithNothingArmedMatchesUnguarded) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  Relation expected = testing::BuildTableI();
  FastRepairer plain(kb, expected.schema(), testing::BuildFigure4Rules());
  ASSERT_TRUE(plain.Init().ok());
  plain.RepairRelation(&expected);

  GuardedRun guarded = RunGuarded(RepairOptions{});
  EXPECT_TRUE(guarded.quarantine.empty());
  EXPECT_EQ(guarded.stats.tuples_quarantined, 0u);
  ASSERT_EQ(guarded.relation.num_tuples(), expected.num_tuples());
  for (size_t row = 0; row < expected.num_tuples(); ++row) {
    EXPECT_EQ(guarded.relation.tuple(row).values(), expected.tuple(row).values())
        << "row " << row;
  }
}

// The remaining chaos scenarios need probes that actually fire; under
// DETECTIVE_FAULT=OFF the macros are empty statements, which is exactly the
// compile-out contract — so they only run in probed builds. (Guarded repair
// itself stays covered above either way.)
#if DETECTIVE_FAULT_ENABLED

TEST(ChaosTest, FixedSeedFaultsAreDeterministic) {
  constexpr std::string_view kPlan = "seed=7; site=repair.tuple, p=0.5";
  GuardedRun first = [&] {
    ArmedPlan armed(kPlan);
    return RunGuarded(RepairOptions{});
  }();
  GuardedRun second = [&] {
    ArmedPlan armed(kPlan);
    return RunGuarded(RepairOptions{});
  }();
  EXPECT_FALSE(first.quarantine.empty());  // seed 7 quarantines at least one
  EXPECT_EQ(first.quarantine, second.quarantine);
  for (size_t row = 0; row < first.relation.num_tuples(); ++row) {
    EXPECT_EQ(first.relation.tuple(row).values(),
              second.relation.tuple(row).values());
  }
}

TEST(ChaosTest, QuarantinedTuplesAreBitIdenticalToInputAndRunsReconcile) {
  ArmedPlan armed("seed=11; site=kb.lookup, p=0.02");
  GuardedRun run = RunGuarded(RepairOptions{});
  Relation input = testing::BuildTableI();

  // Reference repair without faults, for the rows that were not set aside.
  Relation reference = testing::BuildTableI();
  KnowledgeBase kb = testing::BuildFigure1Kb();
  FastRepairer plain(kb, reference.schema(), testing::BuildFigure4Rules());
  ASSERT_TRUE(plain.Init().ok());
  plain.RepairRelation(&reference);

  std::vector<uint64_t> quarantined = run.quarantine.Rows();
  for (size_t row = 0; row < run.relation.num_tuples(); ++row) {
    const bool set_aside =
        std::find(quarantined.begin(), quarantined.end(), row) !=
        quarantined.end();
    if (set_aside) {
      // Pristine bytes: values, original values, and no repair marks.
      EXPECT_EQ(run.relation.tuple(row).values(), input.tuple(row).values());
      EXPECT_EQ(run.relation.tuple(row).CountPositive(),
                input.tuple(row).CountPositive());
      for (ColumnIndex c = 0; c < run.relation.tuple(row).size(); ++c) {
        EXPECT_FALSE(run.relation.tuple(row).WasRepaired(c));
      }
    } else {
      EXPECT_EQ(run.relation.tuple(row).values(), reference.tuple(row).values());
    }
  }
  // Reconciliation: every row is accounted for exactly once.
  EXPECT_EQ(quarantined.size() +
                (run.relation.num_tuples() - quarantined.size()),
            run.relation.num_tuples());
  EXPECT_LE(quarantined.size(), run.relation.num_tuples());
}

TEST(ChaosTest, SequentialAndParallelGuardedRunsAgree) {
  constexpr std::string_view kPlan = "seed=13; site=kb.lookup, p=0.01";
  GuardedRun sequential = [&] {
    ArmedPlan armed(kPlan);
    return RunGuarded(RepairOptions{});
  }();

  KnowledgeBase kb = testing::BuildFigure1Kb();
  std::vector<DetectiveRule> rules = testing::BuildFigure4Rules();
  for (size_t threads : {2u, 3u, 8u}) {
    ArmedPlan armed(kPlan);
    Relation parallel = testing::BuildTableI();
    QuarantineLog quarantine;
    ParallelRepairOptions options;
    options.num_threads = threads;
    options.quarantine = &quarantine;
    auto stats = ParallelRepair(kb, rules, &parallel, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(quarantine, sequential.quarantine) << "threads=" << threads;
    EXPECT_EQ(stats->tuples_quarantined, sequential.stats.tuples_quarantined);
    for (size_t row = 0; row < parallel.num_tuples(); ++row) {
      EXPECT_EQ(parallel.tuple(row).values(),
                sequential.relation.tuple(row).values())
          << "threads=" << threads << " row=" << row;
    }
  }
}

TEST(ChaosTest, TupleBudgetQuarantinesSlowTuples) {
  // Every KB lookup sleeps well past the per-tuple budget, so every tuple
  // that consults the KB is set aside — with the budget as the reason.
  ArmedPlan armed("seed=1; site=kb.lookup, kind=latency, latency_ms=30");
  RepairOptions options;
  options.tuple_budget_ms = 5;
  GuardedRun run = RunGuarded(options);
  ASSERT_FALSE(run.quarantine.empty());
  Relation input = testing::BuildTableI();
  for (const QuarantineRecord& record : run.quarantine.records()) {
    EXPECT_EQ(record.reason, CancelReason::kTupleBudget);
    EXPECT_EQ(run.relation.tuple(record.row).values(),
              input.tuple(record.row).values());
  }
}

TEST(ChaosTest, ExpiredRunDeadlineQuarantinesEveryRow) {
  RepairOptions options;
  options.deadline_ms = 0;  // 0 = off ...
  GuardedRun clean = RunGuarded(options);
  EXPECT_TRUE(clean.quarantine.empty());

  options.deadline_ms = 1;  // ... but 1ms expires before any chase finishes
  ArmedPlan armed("seed=1; site=kb.lookup, kind=latency, latency_ms=30");
  GuardedRun run = RunGuarded(options);
  Relation input = testing::BuildTableI();
  EXPECT_EQ(run.quarantine.Rows().size(), input.num_tuples());
  for (const QuarantineRecord& record : run.quarantine.records()) {
    EXPECT_EQ(record.reason, CancelReason::kRunDeadline);
  }
  for (size_t row = 0; row < run.relation.num_tuples(); ++row) {
    EXPECT_EQ(run.relation.tuple(row).values(), input.tuple(row).values());
  }
}

TEST(ChaosTest, CircuitBreakerDisablesBlamedRulesAndRechasesVictims) {
  // Every KB lookup fails, so each chase is abandoned blaming the rule in
  // flight. With a threshold of one failure the breaker disables that rule
  // and re-chases; the fixpoint ends with every KB-powered rule disabled,
  // the re-chases completing without faults, and the ledger empty — the
  // degraded-but-deterministic endpoint.
  ArmedPlan armed("seed=1; site=kb.lookup");
  RepairOptions options;
  options.max_rule_failures = 1;
  GuardedRun run = RunGuarded(options);
  EXPECT_TRUE(run.quarantine.empty());
  EXPECT_GE(run.disabled_rules, 1u);
  EXPECT_GT(run.stats.tuples_quarantined, 0u);  // events before the breaker
  Relation input = testing::BuildTableI();
  for (size_t row = 0; row < run.relation.num_tuples(); ++row) {
    EXPECT_EQ(run.relation.tuple(row).values(), input.tuple(row).values());
  }
}

TEST(ChaosTest, BreakerOffKeepsBlamedRuleRecords) {
  ArmedPlan armed("seed=1; site=kb.lookup");
  GuardedRun run = RunGuarded(RepairOptions{});  // breaker off
  Relation input = testing::BuildTableI();
  EXPECT_EQ(run.quarantine.Rows().size(), input.num_tuples());
  EXPECT_EQ(run.disabled_rules, 0u);
  for (const QuarantineRecord& record : run.quarantine.records()) {
    EXPECT_EQ(record.reason, CancelReason::kFault);
    EXPECT_EQ(record.site, "kb.lookup");
    EXPECT_FALSE(record.rule.empty());
  }
}

#endif  // DETECTIVE_FAULT_ENABLED

// ---- Transient retry --------------------------------------------------------

TEST(TransientRetryTest, RetriesIoErrorsUntilSuccess) {
  int attempts = 0;
  auto result = fault::RetryTransient([&]() -> Result<int> {
    if (++attempts < 3) return Status::IOError("flaky");
    return 42;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(attempts, 3);
}

TEST(TransientRetryTest, PermanentErrorsAreNotRetried) {
  int attempts = 0;
  auto result = fault::RetryTransient([&]() -> Result<int> {
    ++attempts;
    return Status::ParseError("broken for good");
  });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(attempts, 1);
}

TEST(TransientRetryTest, GivesUpAfterTheLadder) {
  int attempts = 0;
  auto result = fault::RetryTransient([&]() -> Result<int> {
    ++attempts;
    return Status::IOError("always down");
  });
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
  EXPECT_EQ(attempts, 1 + fault::kTransientRetries);
}

#if DETECTIVE_FAULT_ENABLED
TEST(TransientRetryTest, LoaderSurvivesSingleShotFault) {
  std::string path = ::testing::TempDir() + "/chaos_retry.csv";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "a,b\n1,2\n";
  }
  ArmedPlan armed("seed=1; site=csv.load, hit=1");
  auto rows = ReadCsvFile(path);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 2u);
  EXPECT_GT(fault::Injector::Global().fires(), 0u);
}

TEST(TransientRetryTest, LoaderGivesUpUnderPersistentFault) {
  std::string path = ::testing::TempDir() + "/chaos_retry2.csv";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "a,b\n";
  }
  ArmedPlan armed("seed=1; site=csv.load");
  auto rows = ReadCsvFile(path);
  ASSERT_FALSE(rows.ok());
  EXPECT_TRUE(rows.status().IsIOError());
}
#endif  // DETECTIVE_FAULT_ENABLED

}  // namespace
}  // namespace detective
