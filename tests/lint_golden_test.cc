// Golden-file lock on the machine-readable surfaces of detective_lint: the
// --json diagnostics document (including the strata summary section) and
// the --strata-json stratification certificate. Downstream consumers —
// tools/check_certificate.py, the CI lint job, editor integrations — parse
// these bytes; any schema change must be deliberate, i.e. show up here as a
// fixture update, not as silent drift.
//
// To refresh after an intentional schema change:
//   build/tools/detective_lint --kb=data/figure1.nt --rules=data/figure4.dr
//     --json=tests/fixtures/golden/lint_figure4.json
//     --strata-json=tests/fixtures/strata/figure4.json
// (one line; the same for examples/rules/nobel_strata.dr), then re-run
// tools/check_certificate.py against the refreshed certificates.

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace detective {
namespace {

constexpr const char* kLintBin = DETECTIVE_LINT_BIN;
constexpr const char* kSourceDir = DETECTIVE_SOURCE_DIR;

int ExitCode(const std::string& command) {
  int raw = std::system((command + " >/dev/null 2>&1").c_str());
  if (raw == -1 || !WIFEXITED(raw)) return -1;
  return WEXITSTATUS(raw);
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Regenerates `flag`=<temp> for the given rule set and byte-compares the
/// result against the checked-in golden file.
void ExpectMatchesGolden(const std::string& rules_rel, const char* flag,
                         const std::string& golden_rel,
                         const std::string& temp_name) {
  const std::string out = ::testing::TempDir() + "/" + temp_name;
  const std::string command = std::string(kLintBin) + " --kb=" + kSourceDir +
                              "/data/figure1.nt --rules=" + kSourceDir + "/" +
                              rules_rel + " --" + flag + "=" + out;
  ASSERT_EQ(ExitCode(command), 0) << command;
  EXPECT_EQ(ReadFileOrDie(out),
            ReadFileOrDie(std::string(kSourceDir) + "/" + golden_rel))
      << "regenerate with: " << command << " (see file header)";
}

TEST(LintGoldenTest, JsonDocumentMatchesGolden) {
  ExpectMatchesGolden("data/figure4.dr", "json",
                      "tests/fixtures/golden/lint_figure4.json",
                      "lint_figure4.json");
  ExpectMatchesGolden("examples/rules/nobel_strata.dr", "json",
                      "tests/fixtures/golden/lint_nobel_strata.json",
                      "lint_nobel_strata.json");
}

TEST(LintGoldenTest, StrataCertificateMatchesGolden) {
  ExpectMatchesGolden("data/figure4.dr", "strata-json",
                      "tests/fixtures/strata/figure4.json",
                      "cert_figure4.json");
  ExpectMatchesGolden("examples/rules/nobel_strata.dr", "strata-json",
                      "tests/fixtures/strata/nobel_strata.json",
                      "cert_nobel_strata.json");
}

/// The independent checker must accept every shipped certificate and reject
/// the forged fixtures (a disjointness claim contradicted by the footprints;
/// a unification refutation naming the wrong class). CI runs the same
/// commands as a blocking step; this keeps them honest locally too.
TEST(LintGoldenTest, CheckerVerifiesShippedAndRejectsForgedCertificates) {
  if (ExitCode("python3 --version") != 0) {
    GTEST_SKIP() << "python3 unavailable";
  }
  const std::string checker =
      std::string("python3 ") + kSourceDir + "/tools/check_certificate.py ";
  const std::string src(kSourceDir);
  EXPECT_EQ(ExitCode(checker + src + "/tests/fixtures/strata/figure4.json" +
                     " --rules=" + src + "/data/figure4.dr --kb=" + src +
                     "/data/figure1.nt"),
            0);
  EXPECT_EQ(ExitCode(checker + src +
                     "/tests/fixtures/strata/nobel_strata.json --rules=" +
                     src + "/examples/rules/nobel_strata.dr --kb=" + src +
                     "/data/figure1.nt"),
            0);
  EXPECT_EQ(ExitCode(checker + src +
                     "/tests/fixtures/strata/figure4_forged_disjoint.json" +
                     " --rules=" + src + "/data/figure4.dr --kb=" + src +
                     "/data/figure1.nt"),
            1);
  EXPECT_EQ(
      ExitCode(checker + src +
               "/tests/fixtures/strata/nobel_strata_forged_unification.json" +
               " --rules=" + src + "/examples/rules/nobel_strata.dr --kb=" +
               src + "/data/figure1.nt"),
      1);
}

}  // namespace
}  // namespace detective
