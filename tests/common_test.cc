// Unit tests for src/common: Status/Result, string utilities, CSV, RNG.

#include <gtest/gtest.h>

#include <set>

#include "common/csv.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace detective {
namespace {

// ---- Status -------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad ", 42, " things");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad 42 things");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad 42 things");
}

TEST(StatusTest, AllFactoriesMapToCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::Inconsistent("x").IsInconsistent());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, WithContextPrependsAndKeepsCode) {
  Status st = Status::NotFound("row 3").WithContext("loading table");
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "loading table: row 3");
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  EXPECT_TRUE(Status::OK().WithContext("whatever").ok());
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::IOError("disk");
  Status copy = st;
  EXPECT_EQ(copy, st);
  Status moved = std::move(copy);
  EXPECT_EQ(moved, st);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::Internal("inner"); };
  auto outer = [&]() -> Status {
    RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsInternal());
}

// ---- Result ---------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto produce = []() -> Result<std::string> { return std::string("hello"); };
  auto consume = [&]() -> Result<size_t> {
    ASSIGN_OR_RETURN(std::string s, produce());
    return s.size();
  };
  ASSERT_TRUE(consume().ok());
  EXPECT_EQ(*consume(), 5u);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto produce = []() -> Result<std::string> { return Status::IOError("gone"); };
  auto consume = [&]() -> Result<size_t> {
    ASSIGN_OR_RETURN(std::string s, produce());
    return s.size();
  };
  EXPECT_TRUE(consume().status().IsIOError());
}

// ---- string_util ----------------------------------------------------------

TEST(StringUtilTest, SplitBasics) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
}

TEST(StringUtilTest, SplitAndTrim) {
  EXPECT_EQ(SplitAndTrim(" a , b ,c ", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(Split(Join(pieces, ";"), ';'), pieces);
}

TEST(StringUtilTest, TrimVariants) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nhi"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
  EXPECT_EQ(ToUpper("MiXeD 123"), "MIXED 123");
  EXPECT_TRUE(EqualsIgnoreCase("Hello", "hELLO"));
  EXPECT_FALSE(EqualsIgnoreCase("Hello", "Hellos"));
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("detective", "det"));
  EXPECT_FALSE(StartsWith("det", "detective"));
  EXPECT_TRUE(EndsWith("detective", "ive"));
  EXPECT_FALSE(EndsWith("ive", "detective"));
}

TEST(StringUtilTest, NormalizeWhitespace) {
  EXPECT_EQ(NormalizeWhitespace("  a \t b\n c  "), "a b c");
  EXPECT_EQ(NormalizeWhitespace("abc"), "abc");
  EXPECT_EQ(NormalizeWhitespace("   "), "");
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a_b_c", "_", " "), "a b c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("abc", "x", "y"), "abc");
}

TEST(StringUtilTest, ParseUint64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("12345", &v));
  EXPECT_EQ(v, 12345u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));  // max
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // overflow
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12x", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
}

TEST(StringUtilTest, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(ParseInt64("+7", &v));
  EXPECT_EQ(v, 7);
  EXPECT_TRUE(ParseInt64("-9223372036854775808", &v));  // min
  EXPECT_EQ(v, std::numeric_limits<int64_t>::min());
  EXPECT_FALSE(ParseInt64("9223372036854775808", &v));  // overflow
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(StringUtilTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("0.5", &v));
  EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
}

// ---- CSV --------------------------------------------------------------------

TEST(CsvTest, ParseSimple) {
  auto rows = ParseCsv("a,b\n1,2\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, ParseQuotedFields) {
  auto rows = ParseCsv("\"a,b\",\"x\"\"y\",\"line\nbreak\"\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a,b", "x\"y", "line\nbreak"}));
}

TEST(CsvTest, ParseCrLf) {
  auto rows = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(CsvTest, MissingFinalNewlineStillCounts) {
  auto rows = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_TRUE(ParseCsv("\"abc\n").status().IsParseError());
}

TEST(CsvTest, RejectsStrayQuote) {
  EXPECT_TRUE(ParseCsv("ab\"c\n").status().IsParseError());
}

TEST(CsvTest, RejectsContentAfterClosingQuote) {
  EXPECT_TRUE(ParseCsv("\"abc\"def\n").status().IsParseError());
}

TEST(CsvTest, EscapeOnlyWhenNeeded) {
  EXPECT_EQ(EscapeCsvField("plain"), "plain");
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, RoundTrip) {
  std::vector<std::vector<std::string>> rows = {
      {"h1", "h,2", "h\"3"},
      {"", "multi\nline", "plain"},
  };
  auto parsed = ParseCsv(FormatCsv(rows));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, rows);
}

TEST(CsvTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/detective_csv_test.csv";
  std::vector<std::vector<std::string>> rows = {{"a", "b"}, {"1", "2,3"}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, rows);
}

TEST(CsvTest, ReadMissingFileFails) {
  EXPECT_TRUE(ReadCsvFile("/nonexistent/path.csv").status().IsIOError());
}

// ---- Rng ----------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_different = false;
  for (int i = 0; i < 10; ++i) any_different |= a.NextUint64() != b.NextUint64();
  EXPECT_TRUE(any_different);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextUint64(10), 10u);
}

TEST(RngTest, NextInt64Range) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(6);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(9);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleAllYieldsPermutation) {
  Rng rng(10);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(ZipfTest, SkewsTowardLowRanks) {
  Rng rng(12);
  ZipfDistribution zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[50]);
  EXPECT_GT(counts[0], 20000 / 100);  // far above uniform share
}

TEST(ZipfTest, ZeroExponentIsRoughlyUniform) {
  Rng rng(13);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  for (int count : counts) EXPECT_NEAR(count, 2000, 300);
}

// ---- hash ----------------------------------------------------------------------

TEST(HashTest, Fnv1aStableAndSensitive) {
  EXPECT_EQ(Fnv1a("abc"), Fnv1a("abc"));
  EXPECT_NE(Fnv1a("abc"), Fnv1a("abd"));
  EXPECT_NE(Fnv1a(""), Fnv1a("a"));
}

TEST(HashTest, PairHashUsable) {
  PairHash hasher;
  EXPECT_EQ(hasher(std::make_pair(1, 2)), hasher(std::make_pair(1, 2)));
  EXPECT_NE(hasher(std::make_pair(1, 2)), hasher(std::make_pair(2, 1)));
}

}  // namespace
}  // namespace detective
