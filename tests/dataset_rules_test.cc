// Per-rule behavioural tests for the generated Nobel and UIS datasets: each
// curated rule must repair exactly its own error class and leave the others
// alone, and the rule-dependency chains must be ordered correctly.

#include <gtest/gtest.h>

#include "core/repair.h"
#include "core/rule_graph.h"
#include "datagen/nobel_gen.h"
#include "datagen/uis_gen.h"

namespace detective {
namespace {

/// Plants the semantic alternative into `column` of row 0 and repairs with
/// only `rule_index` active; returns the repaired value.
std::string RepairWithSingleRule(const Dataset& dataset, const KnowledgeBase& kb,
                                 size_t row, ColumnIndex column,
                                 size_t rule_index) {
  Tuple tuple = dataset.clean.tuple(row);
  EXPECT_FALSE(dataset.alternatives[row][column].empty());
  tuple.SetValue(column, dataset.alternatives[row][column][0]);

  std::vector<DetectiveRule> one = {dataset.rules[rule_index]};
  FastRepairer repairer(kb, dataset.clean.schema(), one);
  repairer.Init().Abort("init");
  repairer.RepairTuple(&tuple);
  return tuple.value(column);
}

class NobelRulesTest : public ::testing::Test {
 protected:
  NobelRulesTest() {
    NobelOptions options;
    options.num_laureates = 40;
    dataset_ = GenerateNobel(options);
    KbProfile full = YagoProfile();
    full.entity_coverage = 1.0;
    full.fact_coverage = 1.0;  // rule semantics, not coverage, under test
    kb_ = dataset_.world.ToKb(full, dataset_.key_entities);
  }

  Dataset dataset_;
  KnowledgeBase kb_;
};

TEST_F(NobelRulesTest, InstitutionRuleRepairsAlmaMater) {
  ColumnIndex col = dataset_.clean.schema().FindColumn("Institution");
  for (size_t row : {0u, 5u, 11u}) {
    EXPECT_EQ(RepairWithSingleRule(dataset_, kb_, row, col, 0),
              dataset_.clean.tuple(row).value(col))
        << "row " << row;
  }
}

TEST_F(NobelRulesTest, CityRuleRepairsBirthCity) {
  ColumnIndex col = dataset_.clean.schema().FindColumn("City");
  for (size_t row : {1u, 7u, 19u}) {
    EXPECT_EQ(RepairWithSingleRule(dataset_, kb_, row, col, 1),
              dataset_.clean.tuple(row).value(col))
        << "row " << row;
  }
}

TEST_F(NobelRulesTest, CountryRuleRepairsBirthCountry) {
  ColumnIndex col = dataset_.clean.schema().FindColumn("Country");
  for (size_t row : {2u, 8u, 23u}) {
    EXPECT_EQ(RepairWithSingleRule(dataset_, kb_, row, col, 2),
              dataset_.clean.tuple(row).value(col))
        << "row " << row;
  }
}

TEST_F(NobelRulesTest, PrizeRuleRepairsOtherAward) {
  ColumnIndex col = dataset_.clean.schema().FindColumn("Prize");
  for (size_t row : {3u, 9u, 27u}) {
    EXPECT_EQ(RepairWithSingleRule(dataset_, kb_, row, col, 3),
              dataset_.clean.tuple(row).value(col))
        << "row " << row;
  }
}

TEST_F(NobelRulesTest, DobRuleRepairsDeathDate) {
  ColumnIndex col = dataset_.clean.schema().FindColumn("DOB");
  for (size_t row : {4u, 10u, 31u}) {
    EXPECT_EQ(RepairWithSingleRule(dataset_, kb_, row, col, 4),
              dataset_.clean.tuple(row).value(col))
        << "row " << row;
  }
}

TEST_F(NobelRulesTest, RuleGraphChainsInstitutionCityCountry) {
  RuleGraph graph(dataset_.rules);
  const std::vector<uint32_t>& order = graph.CheckOrder();
  auto position = [&](const char* name) {
    for (size_t i = 0; i < order.size(); ++i) {
      if (dataset_.rules[order[i]].name() == name) return i;
    }
    return order.size();
  };
  EXPECT_LT(position("nobel_institution"), position("nobel_city"));
  EXPECT_LT(position("nobel_city"), position("nobel_country"));
  EXPECT_TRUE(graph.IsAcyclic());
}

TEST_F(NobelRulesTest, CrossColumnErrorsNeedTheChain) {
  // Institution AND City both wrong: the city rule alone cannot repair City
  // (its evidence is dirty), but the full rule set can.
  ColumnIndex inst = dataset_.clean.schema().FindColumn("Institution");
  ColumnIndex city = dataset_.clean.schema().FindColumn("City");
  size_t row = 13;
  Tuple tuple = dataset_.clean.tuple(row);
  tuple.SetValue(inst, dataset_.alternatives[row][inst][0]);
  tuple.SetValue(city, dataset_.alternatives[row][city][0]);

  // City rule alone: Institution evidence (the alma mater) breaks the
  // worksAt edge, so no repair happens.
  {
    std::vector<DetectiveRule> one = {dataset_.rules[1]};
    FastRepairer repairer(kb_, dataset_.clean.schema(), one);
    ASSERT_TRUE(repairer.Init().ok());
    Tuple copy = tuple;
    repairer.RepairTuple(&copy);
    EXPECT_EQ(copy.value(city), tuple.value(city));
  }
  // Whole set: institution rule fires first (topological order), city rule
  // follows.
  {
    FastRepairer repairer(kb_, dataset_.clean.schema(), dataset_.rules);
    ASSERT_TRUE(repairer.Init().ok());
    Tuple copy = tuple;
    repairer.RepairTuple(&copy);
    EXPECT_EQ(copy.value(inst), dataset_.clean.tuple(row).value(inst));
    EXPECT_EQ(copy.value(city), dataset_.clean.tuple(row).value(city));
  }
}

class UisRulesTest : public ::testing::Test {
 protected:
  UisRulesTest() {
    UisOptions options;
    options.num_tuples = 60;
    dataset_ = GenerateUis(options);
    KbProfile full = YagoProfile();
    full.entity_coverage = 1.0;
    full.fact_coverage = 1.0;
    kb_ = dataset_.world.ToKb(full, dataset_.key_entities);
  }

  Dataset dataset_;
  KnowledgeBase kb_;
};

TEST_F(UisRulesTest, EachRuleRepairsItsErrorClass) {
  struct Case {
    const char* column;
    size_t rule_index;
  };
  for (const Case& c : {Case{"University", 0}, Case{"City", 1}, Case{"State", 2},
                        Case{"Zip", 3}}) {
    ColumnIndex col = dataset_.clean.schema().FindColumn(c.column);
    ASSERT_NE(col, kInvalidColumn);
    for (size_t row : {0u, 17u, 42u}) {
      EXPECT_EQ(RepairWithSingleRule(dataset_, kb_, row, col, c.rule_index),
                dataset_.clean.tuple(row).value(col))
          << c.column << " row " << row;
    }
  }
}

TEST_F(UisRulesTest, StateHasTwoConsistentWitnessRules) {
  // uis_state (via City) and uis_state_via_zip (via Zip) both repair State;
  // run each alone and both together on a dirty State cell.
  ColumnIndex col = dataset_.clean.schema().FindColumn("State");
  size_t row = 9;
  std::string via_city = RepairWithSingleRule(dataset_, kb_, row, col, 2);
  std::string via_zip = RepairWithSingleRule(dataset_, kb_, row, col, 4);
  EXPECT_EQ(via_city, via_zip);
  EXPECT_EQ(via_city, dataset_.clean.tuple(row).value(col));
}

TEST_F(UisRulesTest, RuleGraphOrdersTheChain) {
  RuleGraph graph(dataset_.rules);
  const std::vector<uint32_t>& order = graph.CheckOrder();
  auto position = [&](const char* name) {
    for (size_t i = 0; i < order.size(); ++i) {
      if (dataset_.rules[order[i]].name() == name) return i;
    }
    return order.size();
  };
  EXPECT_LT(position("uis_university"), position("uis_city"));
  EXPECT_LT(position("uis_city"), position("uis_state"));
  EXPECT_LT(position("uis_city"), position("uis_zip"));
  EXPECT_LT(position("uis_zip"), position("uis_state_via_zip"));
}

}  // namespace
}  // namespace detective
