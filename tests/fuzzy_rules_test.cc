// Rules whose nodes use the set-similarity operations (Jaccard / Cosine) —
// exercising the prefix-filter signature indexes through the full matcher
// and repair stack, plus matcher budget behaviour.

#include <gtest/gtest.h>

#include "core/repair.h"
#include "core/rule_io.h"

namespace detective {
namespace {

/// KB where institution names are word-set variants of the cell values
/// ("Berkeley University" vs "University of Berkeley").
KnowledgeBase WordyKb() {
  KbBuilder b;
  ClassId person = b.AddClass("person");
  ClassId org = b.AddClass("organization");
  ClassId city = b.AddClass("city");
  RelationId works = b.AddRelation("worksAt");
  RelationId located = b.AddRelation("locatedIn");
  RelationId born = b.AddRelation("wasBornIn");

  ItemId berkeley = b.AddEntity("Berkeley", {city});
  ItemId st_paul = b.AddEntity("St. Paul", {city});
  ItemId uc = b.AddEntity("University of California Berkeley", {org});
  b.AddEdge(uc, located, berkeley);
  ItemId calvin = b.AddEntity("Melvin Calvin", {person});
  b.AddEdge(calvin, works, uc);
  b.AddEdge(calvin, born, st_paul);
  return std::move(b).Freeze();
}

TEST(FuzzyRuleTest, JaccardEvidenceMatchesWordReordering) {
  KnowledgeBase kb = WordyKb();
  auto rules = ParseRules(R"(
RULE city_jac
NODE a col=Name type=person sim="="
NODE i col=Institution type=organization sim="JAC,0.7"
POS  p col=City type=city sim="="
NEG  n col=City type=city sim="="
EDGE a worksAt i
EDGE i locatedIn p
EDGE a wasBornIn n
END
)");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();

  Relation table{Schema({"Name", "Institution", "City"})};
  // The cell reorders and drops one token: Jaccard({berkeley, california,
  // university}) vs {university, of, california, berkeley}: note tokenizer
  // drops nothing but "of" counts — 3/4 = 0.75 >= 0.7.
  ASSERT_TRUE(
      table.Append({"Melvin Calvin", "California University Berkeley", "St. Paul"})
          .ok());
  FastRepairer repairer(kb, table.schema(), *rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&table);
  EXPECT_EQ(table.tuple(0).value(2), "Berkeley");
  // The fuzzily matched evidence cell was standardized to the KB label.
  EXPECT_EQ(table.tuple(0).value(1), "University of California Berkeley");
}

TEST(FuzzyRuleTest, CosineNodeWorksThroughTheStack) {
  KnowledgeBase kb = WordyKb();
  auto rules = ParseRules(R"(
RULE city_cos
NODE a col=Name type=person sim="="
NODE i col=Institution type=organization sim="COS,0.8"
POS  p col=City type=city sim="="
NEG  n col=City type=city sim="="
EDGE a worksAt i
EDGE i locatedIn p
EDGE a wasBornIn n
END
)");
  ASSERT_TRUE(rules.ok());
  Relation table{Schema({"Name", "Institution", "City"})};
  ASSERT_TRUE(
      table.Append({"Melvin Calvin", "university of berkeley california", "St. Paul"})
          .ok());
  FastRepairer repairer(kb, table.schema(), *rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&table);
  EXPECT_EQ(table.tuple(0).value(2), "Berkeley");
}

TEST(FuzzyRuleTest, BelowThresholdDoesNotMatch) {
  KnowledgeBase kb = WordyKb();
  auto rules = ParseRules(R"(
RULE city_jac_strict
NODE a col=Name type=person sim="="
NODE i col=Institution type=organization sim="JAC,0.9"
POS  p col=City type=city sim="="
NEG  n col=City type=city sim="="
EDGE a worksAt i
EDGE i locatedIn p
EDGE a wasBornIn n
END
)");
  ASSERT_TRUE(rules.ok());
  Relation table{Schema({"Name", "Institution", "City"})};
  ASSERT_TRUE(table.Append({"Melvin Calvin", "Berkeley Labs", "St. Paul"}).ok());
  FastRepairer repairer(kb, table.schema(), *rules);
  ASSERT_TRUE(repairer.Init().ok());
  Relation before = table;
  repairer.RepairRelation(&table);
  EXPECT_EQ(table.tuple(0).values(), before.tuple(0).values());
}

TEST(FuzzyRuleTest, AssignmentBudgetBoundsTheSearch) {
  // A pathological node (type literal, ED huge tolerance) with a tiny budget
  // must terminate and simply find nothing.
  KbBuilder b;
  ClassId person = b.AddClass("person");
  RelationId has = b.AddRelation("hasCode");
  ItemId alice = b.AddEntity("Alice", {person});
  for (int i = 0; i < 500; ++i) {
    b.AddEdge(alice, has, b.AddLiteral("code" + std::to_string(i)));
  }
  KnowledgeBase kb = std::move(b).Freeze();
  auto rules = ParseRules(R"(
RULE code
NODE a col=Name type=person sim="="
POS  p col=Code type=literal sim="ED,8"
NEG  n col=Code type=literal sim="ED,8"
EDGE a hasCode p
EDGE a oldCode n
END
)");
  ASSERT_TRUE(rules.ok());

  RepairOptions options;
  options.matcher.max_assignments = 10;  // absurdly small
  Relation table{Schema({"Name", "Code"})};
  ASSERT_TRUE(table.Append({"Alice", "code9999"}).ok());
  FastRepairer bounded(kb, table.schema(), *rules, options);
  ASSERT_TRUE(bounded.Init().ok());
  Relation copy = table;
  bounded.RepairRelation(&copy);  // must terminate promptly
  EXPECT_LE(bounded.engine().matcher().stats().assignments_explored, 40u);
}

}  // namespace
}  // namespace detective
