#include "test_fixtures.h"

#include "common/logging.h"

namespace detective::testing {

KnowledgeBase BuildFigure1Kb() {
  KbBuilder b;

  ClassId laureate = b.AddClass("Nobel laureates in Chemistry", {"person"});
  ClassId organization = b.AddClass("organization");
  ClassId city = b.AddClass("city", {"populated place"});
  ClassId country = b.AddClass("country", {"populated place"});
  ClassId chem_award = b.AddClass("Chemistry awards", {"award"});
  ClassId us_award = b.AddClass("American awards", {"award"});

  RelationId worksAt = b.AddRelation("worksAt");
  RelationId graduatedFrom = b.AddRelation("graduatedFrom");
  RelationId locatedIn = b.AddRelation("locatedIn");
  RelationId wasBornIn = b.AddRelation("wasBornIn");
  RelationId isCitizenOf = b.AddRelation("isCitizenOf");
  RelationId bornInCountry = b.AddRelation("bornInCountry");
  RelationId wonPrize = b.AddRelation("wonPrize");
  RelationId bornOnDate = b.AddRelation("bornOnDate");

  ItemId israel = b.AddEntity("Israel", {country});
  ItemId france = b.AddEntity("France", {country});
  ItemId usa = b.AddEntity("United States", {country});
  ItemId ukraine = b.AddEntity("Ukraine", {country});
  ItemId hungary = b.AddEntity("Hungary", {country});

  auto add_city = [&](const char* label, ItemId in_country) {
    ItemId c = b.AddEntity(label, {city});
    b.AddEdge(c, locatedIn, in_country);
    return c;
  };
  ItemId karcag = add_city("Karcag", hungary);
  ItemId haifa = add_city("Haifa", israel);
  ItemId paris = add_city("Paris", france);
  ItemId ithaca = add_city("Ithaca", usa);
  ItemId berkeley = add_city("Berkeley", usa);
  ItemId manchester = add_city("Manchester", usa);
  ItemId st_paul = add_city("St. Paul", usa);

  auto add_inst = [&](const char* label, ItemId in_city) {
    ItemId i = b.AddEntity(label, {organization});
    b.AddEdge(i, locatedIn, in_city);
    return i;
  };
  ItemId technion = add_inst("Israel Institute of Technology", haifa);
  ItemId pasteur = add_inst("Pasteur Institute", paris);
  ItemId cornell = add_inst("Cornell University", ithaca);
  ItemId uc_berkeley = add_inst("UC Berkeley", berkeley);
  ItemId u_manchester = add_inst("University of Manchester", manchester);
  ItemId u_minnesota = add_inst("University of Minnesota", st_paul);

  ItemId nobel = b.AddEntity("Nobel Prize in Chemistry", {chem_award});
  ItemId lasker = b.AddEntity("Albert Lasker Award for Medicine", {us_award});
  ItemId medal = b.AddEntity("National Medal of Science", {us_award});

  auto add_person = [&](const char* name, const char* dob, ItemId works,
                        ItemId studied, ItemId born_city, ItemId citizen,
                        ItemId born_country) {
    ItemId p = b.AddEntity(name, {laureate});
    b.AddEdge(p, bornOnDate, b.AddLiteral(dob));
    b.AddEdge(p, worksAt, works);
    b.AddEdge(p, graduatedFrom, studied);
    b.AddEdge(p, wasBornIn, born_city);
    b.AddEdge(p, isCitizenOf, citizen);
    b.AddEdge(p, bornInCountry, born_country);
    b.AddEdge(p, wonPrize, nobel);
    return p;
  };
  ItemId hershko = add_person("Avram Hershko", "1937-12-31", technion, technion,
                              karcag, israel, hungary);
  b.AddEdge(hershko, wonPrize, lasker);
  add_person("Marie Curie", "1867-11-07", pasteur, pasteur, paris, france, france);
  ItemId hoffmann = add_person("Roald Hoffmann", "1937-07-18", cornell, cornell,
                               ithaca, usa, ukraine);
  b.AddEdge(hoffmann, wonPrize, medal);
  ItemId calvin = add_person("Melvin Calvin", "1911-04-08", uc_berkeley,
                             u_minnesota, st_paul, usa, usa);
  b.AddEdge(calvin, worksAt, u_manchester);

  return std::move(b).Freeze();
}

Relation BuildTableI() {
  Relation table{
      Schema({"Name", "DOB", "Country", "Prize", "Institution", "City"})};
  table
      .Append({"Avram Hershko", "1937-12-31", "Israel",
               "Albert Lasker Award for Medicine", "Israel Institute of Technology",
               "Karcag"})
      .Abort("r1");
  table
      .Append({"Marie Curie", "1867-11-07", "France", "Nobel Prize in Chemistry",
               "Paster Institute", "Paris"})
      .Abort("r2");
  table
      .Append({"Roald Hoffmann", "1937-07-18", "Ukraine", "National Medal of Science",
               "Cornell University", "Ithaca"})
      .Abort("r3");
  table
      .Append({"Melvin Calvin", "1911-04-08", "United States",
               "Nobel Prize in Chemistry", "University of Minnesota", "St. Paul"})
      .Abort("r4");
  return table;
}

Relation BuildTableIClean() {
  Relation table{
      Schema({"Name", "DOB", "Country", "Prize", "Institution", "City"})};
  table
      .Append({"Avram Hershko", "1937-12-31", "Israel", "Nobel Prize in Chemistry",
               "Israel Institute of Technology", "Haifa"})
      .Abort("r1");
  table
      .Append({"Marie Curie", "1867-11-07", "France", "Nobel Prize in Chemistry",
               "Pasteur Institute", "Paris"})
      .Abort("r2");
  table
      .Append({"Roald Hoffmann", "1937-07-18", "United States",
               "Nobel Prize in Chemistry", "Cornell University", "Ithaca"})
      .Abort("r3");
  table
      .Append({"Melvin Calvin", "1911-04-08", "United States",
               "Nobel Prize in Chemistry", "UC Berkeley", "Berkeley"})
      .Abort("r4");
  return table;
}

std::vector<DetectiveRule> BuildFigure4Rules() {
  constexpr const char kRules[] = R"(
RULE phi1
NODE x1 col=Name type="Nobel laureates in Chemistry" sim="="
NODE x2 col=DOB type=literal sim="="
POS  p1 col=Institution type=organization sim="ED,2"
NEG  n1 col=Institution type=organization sim="ED,2"
EDGE x1 bornOnDate x2
EDGE x1 worksAt p1
EDGE x1 graduatedFrom n1
END
RULE phi2
NODE w1 col=Name type="Nobel laureates in Chemistry" sim="="
NODE w2 col=Institution type=organization sim="ED,2"
POS  p2 col=City type=city sim="="
NEG  n2 col=City type=city sim="="
EDGE w1 worksAt w2
EDGE w2 locatedIn p2
EDGE w1 wasBornIn n2
END
RULE phi3
NODE z1 col=Name type="Nobel laureates in Chemistry" sim="="
NODE z2 col=Institution type=organization sim="ED,2"
NODE z3 col=City type=city sim="="
POS  p3 col=Country type=country sim="="
NEG  n3 col=Country type=country sim="="
EDGE z1 worksAt z2
EDGE z2 locatedIn z3
EDGE z3 locatedIn p3
EDGE z1 isCitizenOf p3
EDGE z1 bornInCountry n3
END
RULE phi4
NODE v1 col=Name type="Nobel laureates in Chemistry" sim="="
POS  p4 col=Prize type="Chemistry awards" sim="="
NEG  n4 col=Prize type="American awards" sim="="
EDGE v1 wonPrize p4
EDGE v1 wonPrize n4
END
)";
  auto rules = ParseRules(kRules);
  rules.status().Abort("BuildFigure4Rules");
  return *rules;
}

}  // namespace detective::testing
