// Tests for kb/snapshot.h: round-trip fidelity against the freshly frozen
// KB, and the fail-closed contract — a truncated, bit-flipped, oversized,
// or hand-crafted snapshot must come back as a ParseError naming the
// mismatch, never crash the loader, and never yield a half-built KB.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>

#include "datagen/uis_gen.h"
#include "eval/experiment.h"
#include "kb/knowledge_base.h"
#include "kb/ntriples_parser.h"
#include "kb/snapshot.h"
#include "test_fixtures.h"

namespace detective {
namespace {

namespace fs = std::filesystem;

KnowledgeBase RoundTrip(const KnowledgeBase& kb) {
  auto loaded = ParseKbSnapshot(SerializeKbSnapshot(kb));
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return std::move(*loaded);
}

// ---- Round-trip fidelity ---------------------------------------------------

TEST(SnapshotRoundTripTest, Figure1KbSurvivesUnchanged) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  KnowledgeBase loaded = RoundTrip(kb);
  std::string diff;
  EXPECT_TRUE(KbEquals(kb, loaded, &diff)) << diff;
}

TEST(SnapshotRoundTripTest, GeneratedUisKbSurvivesUnchanged) {
  UisOptions options;
  options.num_tuples = 500;
  Dataset dataset = GenerateUis(options);
  KnowledgeBase kb = dataset.world.ToKb(YagoProfile(), dataset.key_entities);
  KnowledgeBase loaded = RoundTrip(kb);
  std::string diff;
  EXPECT_TRUE(KbEquals(kb, loaded, &diff)) << diff;
  // The reconstructed KB answers queries, not just comparisons.
  EXPECT_EQ(loaded.num_entities(), kb.num_entities());
  EXPECT_EQ(loaded.num_edges(), kb.num_edges());
}

TEST(SnapshotRoundTripTest, EmptyKbRoundTrips) {
  KnowledgeBase kb = KbBuilder().Freeze();  // just the literal class
  KnowledgeBase loaded = RoundTrip(kb);
  std::string diff;
  EXPECT_TRUE(KbEquals(kb, loaded, &diff)) << diff;
  EXPECT_EQ(loaded.num_items(), 0u);
}

TEST(SnapshotRoundTripTest, SerializationIsDeterministic) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  EXPECT_EQ(SerializeKbSnapshot(kb), SerializeKbSnapshot(kb));
}

TEST(SnapshotRoundTripTest, FileRoundTripViaWriteAndLoad) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  const std::string path =
      (fs::temp_directory_path() / "snapshot_test_roundtrip.dkb").string();
  ASSERT_TRUE(WriteKbSnapshot(kb, path).ok());
  auto loaded = LoadKbSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::string diff;
  EXPECT_TRUE(KbEquals(kb, *loaded, &diff)) << diff;
  std::error_code ec;
  fs::remove(path, ec);
}

TEST(SnapshotRoundTripTest, MagicSniffing) {
  std::string bytes = SerializeKbSnapshot(testing::BuildFigure1Kb());
  EXPECT_TRUE(HasKbSnapshotMagic(bytes));
  EXPECT_FALSE(HasKbSnapshotMagic("<e0> rdfs:label \"x\" ."));
  EXPECT_FALSE(HasKbSnapshotMagic(""));
}

// ---- Fail-closed on corrupt input ------------------------------------------

TEST(SnapshotCorruptionTest, WrongMagicIsRejected) {
  std::string bytes = SerializeKbSnapshot(testing::BuildFigure1Kb());
  bytes[0] = 'X';
  auto result = ParseKbSnapshot(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsParseError());
  EXPECT_NE(result.status().ToString().find("magic"), std::string::npos);
}

TEST(SnapshotCorruptionTest, WrongVersionIsRejected) {
  std::string bytes = SerializeKbSnapshot(testing::BuildFigure1Kb());
  uint32_t bogus = kKbSnapshotVersion + 7;
  std::memcpy(bytes.data() + kKbSnapshotMagic.size(), &bogus, sizeof(bogus));
  auto result = ParseKbSnapshot(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("version"), std::string::npos);
}

TEST(SnapshotCorruptionTest, EveryTruncationFailsClosed) {
  std::string bytes = SerializeKbSnapshot(testing::BuildFigure1Kb());
  // Exhaustive for a small KB: every prefix must be rejected, never parsed
  // and never crash.
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto result = ParseKbSnapshot(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(result.ok()) << "prefix of " << len << " bytes parsed";
  }
}

TEST(SnapshotCorruptionTest, OversizedInputIsRejected) {
  std::string bytes = SerializeKbSnapshot(testing::BuildFigure1Kb());
  bytes += std::string(17, '\0');  // trailing garbage breaks payload_bytes
  auto result = ParseKbSnapshot(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsParseError());
}

TEST(SnapshotCorruptionTest, EveryBitFlipInPayloadIsCaughtByChecksum) {
  KnowledgeBase kb = testing::BuildFigure1Kb();
  const std::string clean = SerializeKbSnapshot(kb);
  // Flip one bit per byte position, stepping through the file. Header flips
  // must fail header validation; payload flips must fail the checksum (or,
  // equivalently, structural validation) — either way ParseKbSnapshot
  // returns an error instead of a KB.
  for (size_t pos = 0; pos < clean.size(); pos += 7) {
    std::string bytes = clean;
    bytes[pos] = static_cast<char>(bytes[pos] ^ (1 << (pos % 8)));
    auto result = ParseKbSnapshot(bytes);
    EXPECT_FALSE(result.ok()) << "bit flip at byte " << pos << " parsed";
  }
}

TEST(SnapshotCorruptionTest, RandomFuzzNeverCrashes) {
  const std::string seed_bytes =
      SerializeKbSnapshot(testing::BuildFigure1Kb());
  std::mt19937_64 rng(20260809);
  for (int round = 0; round < 200; ++round) {
    std::string bytes = seed_bytes;
    // Mutate a random run of bytes; keep the magic half the time so the
    // deeper validators are exercised too.
    const size_t begin = rng() % bytes.size();
    const size_t len = 1 + rng() % 64;
    for (size_t i = begin; i < std::min(bytes.size(), begin + len); ++i) {
      bytes[i] = static_cast<char>(rng());
    }
    if (round % 3 == 0) bytes.resize(rng() % bytes.size());
    auto result = ParseKbSnapshot(bytes);  // must not crash
    if (result.ok()) {
      // A mutation that survives every check must still yield a usable KB.
      (void)result->DebugSummary();
    }
  }
}

TEST(SnapshotCorruptionTest, PureGarbageIsRejected) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 50; ++round) {
    std::string bytes(rng() % 4096, '\0');
    for (char& c : bytes) c = static_cast<char>(rng());
    auto result = ParseKbSnapshot(bytes);
    EXPECT_FALSE(result.ok());
  }
}

TEST(SnapshotCorruptionTest, LoadOfMissingFileIsIOError) {
  auto result = LoadKbSnapshot("/nonexistent/kb.dkb");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

// ---- KbEquals sensitivity --------------------------------------------------

TEST(KbEqualsTest, DetectsDifferences) {
  KnowledgeBase a = testing::BuildFigure1Kb();
  KnowledgeBase b = testing::BuildFigure1Kb();
  std::string diff;
  EXPECT_TRUE(KbEquals(a, b, &diff)) << diff;

  KbBuilder builder;
  builder.AddEntity("Lone Entity", {builder.AddClass("thing")});
  KnowledgeBase c = std::move(builder).Freeze();
  EXPECT_FALSE(KbEquals(a, c, &diff));
  EXPECT_FALSE(diff.empty());
}

}  // namespace
}  // namespace detective
