// Unit tests for core/bound_rule and core/evidence_matcher: binding against
// (schema, KB) pairs, node candidates, instance-level matching (§II-B),
// proof-positive / proof-negative semantics, and the matcher's ablation
// knobs (signature index, value memo).

#include <gtest/gtest.h>

#include "core/bound_rule.h"
#include "core/evidence_matcher.h"
#include "test_fixtures.h"

namespace detective {
namespace {

class MatcherTest : public ::testing::Test {
 protected:
  MatcherTest()
      : kb_(testing::BuildFigure1Kb()),
        table_(testing::BuildTableI()),
        rules_(testing::BuildFigure4Rules()) {}

  BoundRule Bind(size_t rule_index) {
    auto bound = BindRule(rules_[rule_index], table_.schema(), kb_);
    bound.status().Abort("bind");
    return *bound;
  }

  KnowledgeBase kb_;
  Relation table_;
  std::vector<DetectiveRule> rules_;
};

// ---- Binding ---------------------------------------------------------------

TEST_F(MatcherTest, BindResolvesEverything) {
  BoundRule phi2 = Bind(1);
  EXPECT_TRUE(phi2.usable);
  EXPECT_EQ(phi2.nodes.size(), 4u);
  EXPECT_EQ(phi2.edges.size(), 3u);
  EXPECT_EQ(phi2.positive, 2u);
  EXPECT_EQ(phi2.negative, 3u);
  EXPECT_EQ(phi2.PositiveSideNodes(), (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(phi2.NegativeSideNodes(), (std::vector<uint32_t>{0, 1, 3}));
}

TEST_F(MatcherTest, BindFailsOnUnknownColumn) {
  Schema other({"X", "Y"});
  EXPECT_TRUE(BindRule(rules_[0], other, kb_).status().IsInvalidArgument());
}

TEST_F(MatcherTest, BindMarksUnusableOnMissingVocabulary) {
  // A KB without the wonPrize relation cannot power phi4.
  KbBuilder b;
  ClassId c = b.AddClass("Nobel laureates in Chemistry");
  b.AddClass("Chemistry awards");
  b.AddClass("American awards");
  b.AddEntity("Someone", {c});
  KnowledgeBase sparse = std::move(b).Freeze();
  auto bound = BindRule(rules_[3], table_.schema(), sparse);
  ASSERT_TRUE(bound.ok());
  EXPECT_FALSE(bound->usable);
}

// ---- NodeCandidates -----------------------------------------------------------

TEST_F(MatcherTest, NodeCandidatesEquality) {
  EvidenceMatcher matcher(kb_);
  ClassId city = kb_.FindClass("city");
  EXPECT_EQ(matcher.NodeCandidates(city, Similarity::Equality(), "Haifa").size(), 1u);
  EXPECT_TRUE(matcher.NodeCandidates(city, Similarity::Equality(), "Nowhere").empty());
  // Type filter: "Israel" is a country, not a city.
  EXPECT_TRUE(matcher.NodeCandidates(city, Similarity::Equality(), "Israel").empty());
}

TEST_F(MatcherTest, NodeCandidatesFuzzy) {
  EvidenceMatcher matcher(kb_);
  ClassId org = kb_.FindClass("organization");
  EXPECT_EQ(
      matcher.NodeCandidates(org, Similarity::EditDistance(2), "Paster Institute")
          .size(),
      1u);
}

TEST_F(MatcherTest, NodeCandidatesIndexAndScanAgree) {
  MatcherOptions with_index;
  with_index.use_signature_index = true;
  MatcherOptions without_index;
  without_index.use_signature_index = false;
  EvidenceMatcher indexed(kb_, with_index);
  EvidenceMatcher scanning(kb_, without_index);
  ClassId org = kb_.FindClass("organization");
  for (const char* query : {"Paster Institute", "Cornell University", "UC Berkley",
                            "Technion", ""}) {
    EXPECT_EQ(indexed.NodeCandidates(org, Similarity::EditDistance(2), query),
              scanning.NodeCandidates(org, Similarity::EditDistance(2), query))
        << query;
  }
}

TEST_F(MatcherTest, ValueMemoHits) {
  MatcherOptions options;
  options.use_value_memo = true;
  EvidenceMatcher matcher(kb_, options);
  ClassId city = kb_.FindClass("city");
  matcher.NodeCandidates(city, Similarity::Equality(), "Haifa");
  size_t before = matcher.stats().memo_hits;
  matcher.NodeCandidates(city, Similarity::Equality(), "Haifa");
  EXPECT_EQ(matcher.stats().memo_hits, before + 1);
  matcher.ClearMemo();
  matcher.NodeCandidates(city, Similarity::Equality(), "Haifa");
  EXPECT_EQ(matcher.stats().memo_hits, before + 1);  // miss after clear
}

// ---- Proof positive -------------------------------------------------------------

TEST_F(MatcherTest, PositiveMatchOnCleanSide) {
  EvidenceMatcher matcher(kb_);
  // phi1 on r1: Name/DOB/Institution are all correct -> proof positive.
  EXPECT_TRUE(matcher.HasPositiveMatch(Bind(0), table_.tuple(0)));
  // phi2 on r1: City is wrong (Karcag is not the work city) -> no positive.
  EXPECT_FALSE(matcher.HasPositiveMatch(Bind(1), table_.tuple(0)));
  // phi4 on r1: Prize is wrong.
  EXPECT_FALSE(matcher.HasPositiveMatch(Bind(3), table_.tuple(0)));
}

TEST_F(MatcherTest, PositiveMatchThroughFuzzyInstitution) {
  EvidenceMatcher matcher(kb_);
  // r2 has the typo "Paster Institute"; phi1's ED,2 node still matches.
  EXPECT_TRUE(matcher.HasPositiveMatch(Bind(0), table_.tuple(1)));
}

TEST_F(MatcherTest, BestPositiveMatchReturnsAssignment) {
  EvidenceMatcher matcher(kb_);
  BoundRule phi1 = Bind(0);
  std::vector<ItemId> assignment;
  ASSERT_TRUE(matcher.BestPositiveMatch(phi1, table_.tuple(1), &assignment));
  // The institution node should be assigned the Pasteur Institute entity.
  ItemId inst = assignment[phi1.positive];
  ASSERT_TRUE(inst.valid());
  EXPECT_EQ(kb_.Label(inst), "Pasteur Institute");
}

// ---- Proof negative + corrections --------------------------------------------

TEST_F(MatcherTest, NegativeCorrectionForCity) {
  EvidenceMatcher matcher(kb_);
  // r1: City=Karcag matches wasBornIn; correction is the work city Haifa.
  EXPECT_EQ(matcher.NegativeCorrections(Bind(1), table_.tuple(0)),
            (std::vector<std::string>{"Haifa"}));
}

TEST_F(MatcherTest, NegativeCorrectionForPrize) {
  EvidenceMatcher matcher(kb_);
  EXPECT_EQ(matcher.NegativeCorrections(Bind(3), table_.tuple(0)),
            (std::vector<std::string>{"Nobel Prize in Chemistry"}));
}

TEST_F(MatcherTest, NegativeCorrectionForCountry) {
  EvidenceMatcher matcher(kb_);
  // r3: Country=Ukraine (birth country); correction United States.
  EXPECT_EQ(matcher.NegativeCorrections(Bind(2), table_.tuple(2)),
            (std::vector<std::string>{"United States"}));
}

TEST_F(MatcherTest, MultiVersionCorrections) {
  EvidenceMatcher matcher(kb_);
  // r4: Institution=University of Minnesota (alma mater); Calvin worked at
  // two places -> two corrections (Example 10).
  EXPECT_EQ(matcher.NegativeCorrections(Bind(0), table_.tuple(3)),
            (std::vector<std::string>{"UC Berkeley", "University of Manchester"}));
}

TEST_F(MatcherTest, NoCorrectionWhenValueIsCorrect) {
  EvidenceMatcher matcher(kb_);
  // r2's City (Paris) is correct; the negative side happens to match too
  // (Curie was born in Paris in our fixture), but the only positive target
  // equals the current value, so no correction is offered.
  EXPECT_TRUE(matcher.NegativeCorrections(Bind(1), table_.tuple(1)).empty());
}

TEST_F(MatcherTest, NoCorrectionWithoutNegativeWitness) {
  EvidenceMatcher matcher(kb_);
  // r1's Institution is correct and not his alma mater mismatch: Technion is
  // both work and study place for Hershko, so x_p == x_n and nothing fires.
  EXPECT_TRUE(matcher.NegativeCorrections(Bind(0), table_.tuple(0)).empty());
}

// ---- Generic graph API ---------------------------------------------------------

TEST_F(MatcherTest, FindAssignmentOnSubset) {
  EvidenceMatcher matcher(kb_);
  BoundRule phi2 = Bind(1);
  std::vector<ItemId> assignment;
  // Match only the evidence nodes {Name, Institution} of r1.
  EXPECT_TRUE(matcher.FindAssignment(phi2.nodes, phi2.edges, {0, 1},
                                     table_.tuple(0), &assignment));
  EXPECT_TRUE(assignment[0].valid());
  EXPECT_TRUE(assignment[1].valid());
  EXPECT_FALSE(assignment[2].valid());  // p not in subset
}

TEST_F(MatcherTest, TargetsForDerivesRepairCandidates) {
  EvidenceMatcher matcher(kb_);
  BoundRule phi2 = Bind(1);
  std::vector<ItemId> assignment;
  ASSERT_TRUE(matcher.FindAssignment(phi2.nodes, phi2.edges, {0, 1},
                                     table_.tuple(0), &assignment));
  std::vector<ItemId> targets =
      matcher.TargetsFor(phi2.nodes, phi2.edges, phi2.positive, assignment);
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(kb_.Label(targets[0]), "Haifa");
}

TEST_F(MatcherTest, StatsAccumulate) {
  EvidenceMatcher matcher(kb_);
  matcher.HasPositiveMatch(Bind(0), table_.tuple(0));
  EXPECT_GT(matcher.stats().node_checks, 0u);
  EXPECT_GT(matcher.stats().assignments_explored, 0u);
  matcher.ResetStats();
  EXPECT_EQ(matcher.stats().node_checks, 0u);
}

}  // namespace
}  // namespace detective
