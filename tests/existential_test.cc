// Tests for existential nodes — the "negative path" extension the paper
// sketches in §II-C ("It is straightforward to extend from one negative node
// (i.e., one relationship) to a negative path (i.e., a sequence of nodes)").
// An existential node binds to some KB instance of its type without a value
// constraint, so rules can route evidence through entities the table does
// not mention.

#include <gtest/gtest.h>

#include "core/consistency.h"
#include "core/repair.h"
#include "core/rule_io.h"
#include "test_fixtures.h"

namespace detective {
namespace {

/// A City rule over a table WITHOUT an Institution column: the institution
/// hop is existential. Positive path: Name -worksAt-> (inst) -locatedIn->
/// City; negative: Name -wasBornIn-> City.
constexpr const char kExistentialCityRule[] = R"(
RULE city_via_some_institution
NODE a col=Name type="Nobel laureates in Chemistry" sim="="
EXIST e type=organization
POS  p col=City type=city sim="="
NEG  n col=City type=city sim="="
EDGE a worksAt e
EDGE e locatedIn p
EDGE a wasBornIn n
END
)";

class ExistentialTest : public ::testing::Test {
 protected:
  ExistentialTest() : kb_(testing::BuildFigure1Kb()) {}

  KnowledgeBase kb_;
};

TEST_F(ExistentialTest, DslParsesExistNodes) {
  auto rules = ParseRules(kExistentialCityRule);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules->size(), 1u);
  const DetectiveRule& rule = (*rules)[0];
  EXPECT_TRUE(rule.Validate().ok()) << rule.Validate().ToString();
  EXPECT_EQ(rule.graph().nodes().size(), 4u);
  EXPECT_TRUE(rule.graph().node(1).IsExistential());
  // Existential nodes contribute no evidence column.
  EXPECT_EQ(rule.EvidenceColumns(), (std::vector<std::string>{"Name"}));
}

TEST_F(ExistentialTest, DslRoundTripsExistNodes) {
  auto rules = ParseRules(kExistentialCityRule);
  ASSERT_TRUE(rules.ok());
  auto reparsed = ParseRules(FormatRules(*rules));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ((*reparsed)[0], (*rules)[0]);
}

TEST_F(ExistentialTest, DslRejectsExistWithColumn) {
  EXPECT_TRUE(ParseRules(R"(
RULE r
EXIST e col=City type=city
POS p col=X type=t
NEG n col=X type=t
END
)")
                  .status()
                  .IsParseError());
}

TEST_F(ExistentialTest, PandNMustBeAnchored) {
  SchemaMatchingGraph g;
  uint32_t a = g.AddNode({"Name", "person", Similarity::Equality()});
  uint32_t p = g.AddNode({"", "city", Similarity::Equality()});  // existential p
  uint32_t n = g.AddNode({"", "city", Similarity::Equality()});
  g.AddEdge(a, p, "livesIn").Abort("e");
  g.AddEdge(a, n, "bornIn").Abort("e");
  EXPECT_TRUE(DetectiveRule("bad", g, p, n).Validate().IsInvalidArgument());
}

TEST_F(ExistentialTest, NeedsOneAnchoredEvidenceNode) {
  SchemaMatchingGraph g;
  uint32_t e = g.AddNode({"", "person", Similarity::Equality()});  // existential
  uint32_t p = g.AddNode({"City", "city", Similarity::Equality()});
  uint32_t n = g.AddNode({"City", "city", Similarity::Equality()});
  g.AddEdge(e, p, "livesIn").Abort("e");
  g.AddEdge(e, n, "bornIn").Abort("e");
  EXPECT_TRUE(DetectiveRule("bad", g, p, n).Validate().IsInvalidArgument());
}

TEST_F(ExistentialTest, RepairsThroughExistentialHop) {
  auto rules = ParseRules(kExistentialCityRule);
  ASSERT_TRUE(rules.ok());

  // No Institution column: the rule must route through the KB on its own.
  Relation table{Schema({"Name", "City"})};
  ASSERT_TRUE(table.Append({"Avram Hershko", "Karcag"}).ok());     // wrong: birth city
  ASSERT_TRUE(table.Append({"Roald Hoffmann", "Ithaca"}).ok());    // correct
  ASSERT_TRUE(table.Append({"Marie Curie", "Paris"}).ok());        // correct

  FastRepairer repairer(kb_, table.schema(), *rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&table);

  EXPECT_EQ(table.tuple(0).value(1), "Haifa");
  EXPECT_TRUE(table.tuple(0).IsPositive(1));
  EXPECT_EQ(table.tuple(1).value(1), "Ithaca");
  EXPECT_TRUE(table.tuple(1).IsPositive(1));
  EXPECT_EQ(table.tuple(2).value(1), "Paris");
}

TEST_F(ExistentialTest, MultiVersionThroughExistentialHop) {
  auto rules = ParseRules(kExistentialCityRule);
  ASSERT_TRUE(rules.ok());
  // Melvin Calvin works at two institutions in two cities; with the
  // institution existential, a wrong City yields two corrections.
  Relation table{Schema({"Name", "City"})};
  ASSERT_TRUE(table.Append({"Melvin Calvin", "St. Paul"}).ok());  // birth city

  FastRepairer repairer(kb_, table.schema(), *rules);
  ASSERT_TRUE(repairer.Init().ok());
  std::vector<Tuple> versions = repairer.RepairMultiVersion(table.tuple(0));
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0].value(1), "Berkeley");
  EXPECT_EQ(versions[1].value(1), "Manchester");
}

TEST_F(ExistentialTest, ConsistentWithAnchoredVariantOnFunctionalData) {
  // The existential rule and the paper's phi2 (institution anchored) agree
  // wherever the worksAt relationship is functional: rows r1-r3 of Table I.
  std::vector<DetectiveRule> rules = testing::BuildFigure4Rules();
  auto existential = ParseRules(kExistentialCityRule);
  ASSERT_TRUE(existential.ok());
  rules.push_back((*existential)[0]);

  Relation functional{testing::BuildTableI().schema()};
  for (size_t row : {0u, 1u, 2u}) {
    functional.Append(testing::BuildTableI().tuple(row));
  }
  auto report = CheckConsistency(kb_, rules, functional);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent) << report->ToString();

  FastRepairer repairer(kb_, functional.schema(), rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&functional);
  Relation clean = testing::BuildTableIClean();
  for (size_t row = 0; row < functional.num_tuples(); ++row) {
    EXPECT_EQ(functional.tuple(row).values(), clean.tuple(row).values()) << row;
  }
}

TEST_F(ExistentialTest, ConsistencyCheckerCatchesNonFunctionalShortcut) {
  // On the two-institution tuple (Melvin Calvin, Example 10), the
  // existential city rule is NOT functional: it can pick the city of either
  // institution independently of what phi1 chooses for the Institution
  // column, producing mixed fixpoints under some orders. This is precisely
  // the hazard the paper warns about ("the user picks the ones that
  // semantically, the repair is approximately functional") — and the
  // dataset-specific consistency check (§III-C) must expose it.
  std::vector<DetectiveRule> rules = testing::BuildFigure4Rules();
  auto existential = ParseRules(kExistentialCityRule);
  ASSERT_TRUE(existential.ok());
  rules.push_back((*existential)[0]);

  Relation table = testing::BuildTableI();  // includes r4 (Calvin)
  auto report = CheckConsistency(kb_, rules, table);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->consistent);
  EXPECT_EQ(report->witness_row, 3u);
}

TEST_F(ExistentialTest, UnanchoredExistentialFallsBackToTypeScan) {
  // An existential node whose only edges lead to other not-yet-assigned
  // nodes still matches via the instances-of-type fallback: chain
  // Name -> e1 -> e2 -> City with two existential hops.
  KbBuilder b;
  ClassId person = b.AddClass("person");
  ClassId dept = b.AddClass("department");
  ClassId building = b.AddClass("building");
  ClassId room = b.AddClass("room");
  RelationId in_dept = b.AddRelation("memberOf");
  RelationId housed = b.AddRelation("housedIn");
  RelationId has_room = b.AddRelation("hasRoom");
  RelationId assigned = b.AddRelation("assignedRoom");
  ItemId alice = b.AddEntity("Alice", {person});
  ItemId cs = b.AddEntity("CS", {dept});
  ItemId tower = b.AddEntity("Tower", {building});
  ItemId r101 = b.AddEntity("Room 101", {room});
  ItemId r102 = b.AddEntity("Room 102", {room});
  b.AddEdge(alice, in_dept, cs);
  b.AddEdge(cs, housed, tower);
  b.AddEdge(tower, has_room, r101);
  b.AddEdge(alice, assigned, r102);
  KnowledgeBase kb = std::move(b).Freeze();

  auto rules = ParseRules(R"(
RULE room_via_building
NODE a col=Name type=person sim="="
EXIST d type=department
EXIST bu type=building
POS  p col=Room type=room sim="="
NEG  n col=Room type=room sim="="
EDGE a memberOf d
EDGE d housedIn bu
EDGE bu hasRoom p
EDGE a assignedRoom n
END
)");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();

  Relation table{Schema({"Name", "Room"})};
  ASSERT_TRUE(table.Append({"Alice", "Room 102"}).ok());
  FastRepairer repairer(kb, table.schema(), *rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.RepairRelation(&table);
  EXPECT_EQ(table.tuple(0).value(1), "Room 101");
}

}  // namespace
}  // namespace detective
