// The stratified chase (RepairOptions::schedule) must be byte-identical to
// the classic unstratified sequential chase — cell values, positive marks,
// provenance, quarantine — at every thread count and under a fault plan,
// while actually eliding confirming fixpoint sweeps on workloads whose
// interaction cycles the analyzer refutes (docs/static_analysis.md).

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "analysis/stratification.h"
#include "common/fault.h"
#include "core/parallel_repair.h"
#include "core/repair.h"
#include "core/rule_io.h"
#include "datagen/error_injector.h"
#include "datagen/nobel_gen.h"
#include "datagen/world.h"
#include "kb/ntriples_parser.h"
#include "test_fixtures.h"

namespace detective {
namespace {

/// The elision workload: the Nobel set with the mutually-exclusive
/// City/Country pair and without nobel_prize (so the Prize witness column
/// stays stable and the analyzer can refute the pair's nominal cycle).
struct StrataCase {
  Dataset dataset;
  KnowledgeBase kb;
  std::vector<DetectiveRule> rules;
  Relation dirty;
  analysis::Stratification strata;
};

StrataCase BuildStrataCase(size_t laureates = 160) {
  StrataCase c;
  NobelOptions options;
  options.num_laureates = laureates;
  options.exclusive_strata_rules = true;
  c.dataset = GenerateNobel(options);
  c.kb = c.dataset.world.ToKb(YagoProfile(), c.dataset.key_entities);
  for (const DetectiveRule& rule : c.dataset.rules) {
    if (rule.name() != "nobel_prize") c.rules.push_back(rule);
  }
  c.dirty = c.dataset.clean;
  ErrorSpec spec;
  spec.error_rate = 0.12;
  InjectErrors(&c.dirty, spec, c.dataset.alternatives);
  auto strata = analysis::ComputeStratification(c.rules, c.kb);
  strata.status().Abort("BuildStrataCase");
  c.strata = std::move(*strata);
  return c;
}

void ExpectIdenticalRelations(const Relation& actual, const Relation& expected,
                              const std::string& label) {
  ASSERT_EQ(actual.num_tuples(), expected.num_tuples()) << label;
  for (size_t row = 0; row < actual.num_tuples(); ++row) {
    EXPECT_EQ(actual.tuple(row).values(), expected.tuple(row).values())
        << label << " row=" << row;
    EXPECT_EQ(actual.tuple(row).CountPositive(),
              expected.tuple(row).CountPositive())
        << label << " row=" << row;
  }
}

TEST(StratifiedRepairTest, SequentialElisionIsByteIdentical) {
  StrataCase c = BuildStrataCase();

  Relation classic = c.dirty;
  ProvenanceLog classic_log;
  FastRepairer classic_repairer(c.kb, c.dirty.schema(), c.rules);
  ASSERT_TRUE(classic_repairer.Init().ok());
  classic_repairer.engine().set_provenance(&classic_log);
  classic_repairer.RepairRelation(&classic);
  EXPECT_EQ(classic_repairer.stats().rounds_skipped, 0u);

  Relation stratified = c.dirty;
  ProvenanceLog stratified_log;
  RepairOptions options;
  options.schedule = &c.strata.schedule;
  FastRepairer stratified_repairer(c.kb, c.dirty.schema(), c.rules, options);
  ASSERT_TRUE(stratified_repairer.Init().ok());
  stratified_repairer.engine().set_provenance(&stratified_log);
  stratified_repairer.RepairRelation(&stratified);

  ExpectIdenticalRelations(stratified, classic, "sequential");
  // Provenance identity is the strong form of "byte-identical": every cell
  // change carries the same rule, round number, and witness either way.
  EXPECT_EQ(stratified_log, classic_log);
  // The schedule must actually pay for itself: the refuted City <-> Country
  // cycle makes the classic confirming sweep provably futile on every tuple
  // where one of the demo pair fired.
  EXPECT_GT(stratified_repairer.stats().rounds_skipped, 0u);
  EXPECT_EQ(stratified_repairer.stats().rule_applications,
            classic_repairer.stats().rule_applications);
  EXPECT_LT(stratified_repairer.stats().rule_checks,
            classic_repairer.stats().rule_checks);
}

TEST(StratifiedRepairTest, ParallelStratifiedMatchesClassicSequential) {
  StrataCase c = BuildStrataCase();

  Relation classic = c.dirty;
  ProvenanceLog classic_log;
  FastRepairer repairer(c.kb, c.dirty.schema(), c.rules);
  ASSERT_TRUE(repairer.Init().ok());
  repairer.engine().set_provenance(&classic_log);
  repairer.RepairRelation(&classic);

  for (size_t threads : {1u, 2u, 8u}) {
    Relation parallel = c.dirty;
    ProvenanceLog parallel_log;
    ParallelRepairOptions options;
    options.num_threads = threads;
    options.provenance = &parallel_log;
    options.repair.schedule = &c.strata.schedule;
    auto stats = ParallelRepair(c.kb, c.rules, &parallel, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ExpectIdenticalRelations(parallel, classic,
                             "threads=" + std::to_string(threads));
    EXPECT_EQ(parallel_log, classic_log) << "threads=" << threads;
    EXPECT_GT(stats->rounds_skipped, 0u) << "threads=" << threads;
  }
}

TEST(StratifiedRepairTest, ExampleRuleSetElidesOnTableI) {
  // The shipped showcase pair (examples/rules/nobel_strata.dr) against the
  // Fig. 1 KB and Table I: certified with two refuted-unification
  // separations, byte-identical output, sweeps elided.
  auto rules = ParseRulesFile(DETECTIVE_SOURCE_DIR
                              "/examples/rules/nobel_strata.dr");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  auto kb = LoadKbFile(DETECTIVE_SOURCE_DIR "/data/figure1.nt");
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  auto table = Relation::FromCsvFile(DETECTIVE_SOURCE_DIR "/data/table1.csv");
  ASSERT_TRUE(table.ok()) << table.status().ToString();

  auto strata = analysis::ComputeStratification(*rules, *kb);
  ASSERT_TRUE(strata.ok()) << strata.status().ToString();
  EXPECT_EQ(strata->pairs_refuted, 1u);
  EXPECT_EQ(strata->certificate.num_cyclic_strata(), 0u);

  Relation classic = *table;
  FastRepairer classic_repairer(*kb, table->schema(), *rules);
  ASSERT_TRUE(classic_repairer.Init().ok());
  classic_repairer.RepairRelation(&classic);

  Relation stratified = *table;
  RepairOptions options;
  options.schedule = &strata->schedule;
  FastRepairer stratified_repairer(*kb, table->schema(), *rules, options);
  ASSERT_TRUE(stratified_repairer.Init().ok());
  stratified_repairer.RepairRelation(&stratified);

  ExpectIdenticalRelations(stratified, classic, "table1");
  EXPECT_GT(stratified_repairer.stats().rounds_skipped, 0u);
}

#if DETECTIVE_FAULT_ENABLED
/// Arms a fault plan for one scope (the chaos_test idiom).
class ArmedPlan {
 public:
  explicit ArmedPlan(std::string_view spec) {
    auto plan = fault::FaultPlan::Parse(spec);
    plan.status().Abort("ArmedPlan");
    fault::Injector::Global().Arm(*plan);
  }
  ~ArmedPlan() { fault::Injector::Global().Disarm(); }
};

// Under an armed PR 4 fault plan the guarded chase runs instead, elision
// self-disables (a skipped sweep would skip the fault probes inside
// Evaluate, which is observable), and the schedule must change nothing:
// same cells, same quarantine ledger, at every thread count.
TEST(StratifiedRepairTest, FaultPlanDisablesElisionButNotIdentity) {
  StrataCase c = BuildStrataCase(/*laureates=*/120);
  constexpr std::string_view kPlan = "seed=7; site=repair.tuple, p=0.5";

  Relation classic = c.dirty;
  QuarantineLog classic_quarantine;
  {
    ArmedPlan armed(kPlan);
    FastRepairer repairer(c.kb, c.dirty.schema(), c.rules);
    ASSERT_TRUE(repairer.Init().ok());
    repairer.RepairRelationGuarded(&classic, &classic_quarantine);
  }
  EXPECT_GT(classic_quarantine.size(), 0u);

  for (size_t threads : {1u, 2u, 8u}) {
    Relation parallel = c.dirty;
    QuarantineLog parallel_quarantine;
    ArmedPlan armed(kPlan);
    ParallelRepairOptions options;
    options.num_threads = threads;
    options.quarantine = &parallel_quarantine;
    options.repair.schedule = &c.strata.schedule;
    auto stats = ParallelRepair(c.kb, c.rules, &parallel, options);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ExpectIdenticalRelations(parallel, classic,
                             "faulted threads=" + std::to_string(threads));
    EXPECT_EQ(parallel_quarantine, classic_quarantine)
        << "threads=" << threads;
    EXPECT_EQ(stats->rounds_skipped, 0u) << "threads=" << threads;
  }
}
#endif  // DETECTIVE_FAULT_ENABLED

}  // namespace
}  // namespace detective
