// detective_kb_build: compiles a text knowledge base (N-triples or TSV) into
// the binary snapshot format of kb/snapshot.h, so detective_clean and
// detective_serve can mmap the frozen KB in milliseconds instead of
// re-parsing and re-freezing it on every run.
//
//   detective_kb_build --kb=IN.nt --out=OUT.dkb [--verify]
//
// The input may itself be a snapshot (magic-sniffed), which re-encodes it —
// useful for upgrading a snapshot to a newer format version. --verify
// reloads the written file and asserts deep structural equality against the
// in-memory KB before reporting success.
//
// Exit codes follow the shared contract: 0 ok, 1 load/write failure,
// 64 usage error or rejected snapshot (bad magic/version/checksum).

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "common/string_util.h"
#include "kb/knowledge_base.h"
#include "kb/ntriples_parser.h"
#include "kb/snapshot.h"

namespace detective {
namespace {

struct Args {
  std::string kb_path;
  std::string out_path;
  bool verify = false;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value_of = [&](std::string_view name) -> std::string_view {
      std::string prefix = std::string("--") + std::string(name) + "=";
      if (StartsWith(arg, prefix)) return arg.substr(prefix.size());
      return {};
    };
    if (auto v = value_of("kb"); !v.empty()) {
      args->kb_path = std::string(v);
    } else if (auto v2 = value_of("out"); !v2.empty()) {
      args->out_path = std::string(v2);
    } else if (arg == "--verify") {
      args->verify = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return false;
    }
  }
  return !args->kb_path.empty() && !args->out_path.empty();
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int Run(const Args& args) {
  Result<bool> is_snapshot = FileHasKbSnapshotMagic(args.kb_path);
  if (!is_snapshot.ok()) {
    std::fprintf(stderr, "detective_kb_build: %s\n",
                 is_snapshot.status().ToString().c_str());
    return 1;
  }

  auto load_start = std::chrono::steady_clock::now();
  Result<KnowledgeBase> kb = *is_snapshot ? LoadKbSnapshot(args.kb_path)
                                          : LoadKbFile(args.kb_path);
  if (!kb.ok()) {
    std::fprintf(stderr, "detective_kb_build: %s\n",
                 kb.status().ToString().c_str());
    return kb.status().IsParseError() && *is_snapshot ? 64 : 1;
  }
  const double load_ms = MillisSince(load_start);

  auto write_start = std::chrono::steady_clock::now();
  if (Status st = WriteKbSnapshot(*kb, args.out_path); !st.ok()) {
    std::fprintf(stderr, "detective_kb_build: %s\n", st.ToString().c_str());
    return 1;
  }
  const double write_ms = MillisSince(write_start);

  double reload_ms = 0;
  if (args.verify) {
    auto reload_start = std::chrono::steady_clock::now();
    Result<KnowledgeBase> reloaded = LoadKbSnapshot(args.out_path);
    reload_ms = MillisSince(reload_start);
    if (!reloaded.ok()) {
      std::fprintf(stderr, "detective_kb_build: verify reload failed: %s\n",
                   reloaded.status().ToString().c_str());
      return 1;
    }
    std::string diff;
    if (!KbEquals(*kb, *reloaded, &diff)) {
      std::fprintf(stderr,
                   "detective_kb_build: verify failed: reloaded snapshot "
                   "differs from the source KB (%s)\n",
                   diff.c_str());
      return 1;
    }
  }

  std::error_code ec;
  const uintmax_t out_bytes = std::filesystem::file_size(args.out_path, ec);
  std::printf("%s -> %s (%ju bytes)\n", args.kb_path.c_str(),
              args.out_path.c_str(), ec ? static_cast<uintmax_t>(0) : out_bytes);
  std::printf("  %s\n", kb->DebugSummary().c_str());
  std::printf("  load %.1f ms, serialize+write %.1f ms", load_ms, write_ms);
  if (args.verify) {
    std::printf(", verify reload %.1f ms (equal)", reload_ms);
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  detective::Args args;
  if (!detective::ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: detective_kb_build --kb=IN.nt --out=OUT.dkb "
                 "[--verify]\n");
    return 64;
  }
  return detective::Run(args);
}
