#!/usr/bin/env python3
"""Independent verifier for stratification certificates.

Re-verifies a StratificationCertificate (written by `detective_lint
--strata-json=CERT.json`) from first principles: it re-parses the rule DSL
and the knowledge base with its own minimal readers — sharing no code with
the C++ analyzer — recomputes every footprint, and re-derives the evidence
behind every edge and separation claim. A certificate passes only if:

  * footprints match a from-scratch recomputation exactly;
  * the strata are a partition of the rules, cyclic flags are consistent,
    and every edge respects the topological stratum order;
  * every edge's witness column really is written by its source rule and
    read by its destination rule;
  * every "disjoint-footprints" separation really has an empty
    writes(from) ∩ reads(to) intersection;
  * every "refuted-unification" separation names a witness column that is
    pure evidence in both rules under exact-match similarity, is written by
    no rule in the set, and whose two classes are provably label-disjoint
    in the KB (not subclass-related, no shared instance label);
  * every ordered rule pair appears in exactly one of edges/separations.

Usage:
  check_certificate.py CERT.json --rules=RULES.dr --kb=KB.nt

Exit codes: 0 certificate verified, 1 certificate rejected, 2 usage or
input load failure.

See docs/static_analysis.md for the certificate format contract.
"""

import json
import sys

# ---------------------------------------------------------------------------
# Rule DSL reader (docs/rule_dsl.md) — independent of src/core/rule_io.cc.
# ---------------------------------------------------------------------------


class Node:
    def __init__(self, column, type_, sim):
        self.column = column
        self.type = type_
        self.sim = sim  # raw sim text, "=" means exact equality

    @property
    def existential(self):
        return self.column == ""


class Rule:
    def __init__(self, name):
        self.name = name
        self.nodes = []  # [Node]
        self.edges = []  # [(from_idx, relation, to_idx)]
        self.positive = None
        self.negative = None

    @property
    def target(self):
        return self.nodes[self.positive].column

    def pure_evidence_indexes(self):
        """Node indexes that are neither the positive/negative node nor
        existential: the only nodes that constrain the tuple on a column the
        rule does not itself judge."""
        out = []
        for i, node in enumerate(self.nodes):
            if i in (self.positive, self.negative) or node.existential:
                continue
            out.append(i)
        return out


def tokenize_dsl_line(line, line_number):
    """Whitespace-separated tokens; double quotes group, '""' escapes a
    quote, '#' starts a comment outside quotes."""
    tokens = []
    current = []
    in_quotes = False
    token_active = False
    i = 0
    while i < len(line):
        c = line[i]
        if in_quotes:
            if c == '"':
                if i + 1 < len(line) and line[i + 1] == '"':
                    current.append('"')
                    i += 1
                else:
                    in_quotes = False
            else:
                current.append(c)
        elif c == '"':
            in_quotes = True
            token_active = True
        elif c.isspace():
            if token_active:
                tokens.append("".join(current))
                current = []
                token_active = False
        elif c == "#":
            break
        else:
            current.append(c)
            token_active = True
        i += 1
    if in_quotes:
        raise ValueError(f"unterminated quote on line {line_number}")
    if token_active:
        tokens.append("".join(current))
    return tokens


def parse_attributes(tokens, line_number):
    column, type_, sim = "", "", "="
    for token in tokens:
        if "=" not in token:
            raise ValueError(f"expected key=value on line {line_number}: {token!r}")
        key, value = token.split("=", 1)
        key = key.lower()
        if key in ("col", "column"):
            column = value
        elif key == "type":
            type_ = value
        elif key == "sim":
            sim = value
        else:
            raise ValueError(f"unknown attribute {key!r} on line {line_number}")
    return column, type_, sim


def parse_rules(text):
    rules = []
    rule = None
    aliases = {}
    pending_edges = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        tokens = tokenize_dsl_line(line, line_number)
        if not tokens:
            continue
        keyword = tokens[0].upper()
        if keyword == "RULE":
            if rule is not None:
                raise ValueError(f"RULE before END on line {line_number}")
            rule = Rule(tokens[1])
            aliases = {}
            pending_edges = []
        elif keyword == "EXIST":
            _, type_, _ = parse_attributes(tokens[2:], line_number)
            aliases[tokens[1]] = len(rule.nodes)
            rule.nodes.append(Node("", type_, "="))
        elif keyword in ("NODE", "POS", "NEG"):
            column, type_, sim = parse_attributes(tokens[2:], line_number)
            index = len(rule.nodes)
            aliases[tokens[1]] = index
            rule.nodes.append(Node(column, type_, sim))
            if keyword == "POS":
                rule.positive = index
            elif keyword == "NEG":
                rule.negative = index
        elif keyword == "EDGE":
            pending_edges.append((tokens[1], tokens[2], tokens[3], line_number))
        elif keyword == "END":
            for from_alias, relation, to_alias, edge_line in pending_edges:
                rule.edges.append((aliases[from_alias], relation, aliases[to_alias]))
            if rule.positive is None or rule.negative is None:
                raise ValueError(f"rule {rule.name!r} needs POS and NEG")
            rules.append(rule)
            rule = None
        else:
            raise ValueError(f"unknown keyword {tokens[0]!r} on line {line_number}")
    if rule is not None:
        raise ValueError(f"rule {rule.name!r} missing END")
    return rules


# ---------------------------------------------------------------------------
# Knowledge base reader (N-Triples subset / TSV triples) — independent of
# src/kb/ntriples_parser.cc but mirroring its semantics.
# ---------------------------------------------------------------------------

TYPE_PREDICATES = {"rdf:type", "a", "type"}
SUBCLASS_PREDICATES = {"rdfs:subClassOf", "subClassOf"}
LABEL_PREDICATES = {"rdfs:label", "label"}
CLASS_MARKERS = {"rdfs:Class", "owl:Class"}


def prettify(iri):
    """Strip the namespace prefix and map underscores to spaces, the way KB
    IRIs are matched against relational cell values."""
    cut = max(iri.rfind("/"), iri.rfind("#"))
    local = iri if cut < 0 else iri[cut + 1:]
    return local.replace("_", " ")


def parse_nt_literal(text, pos, line_number):
    """Parses a double-quoted literal at text[pos]; returns (value, end)."""
    out = []
    i = pos + 1
    while i < len(text):
        c = text[i]
        if c == "\\" and i + 1 < len(text):
            escapes = {"n": "\n", "t": "\t"}
            out.append(escapes.get(text[i + 1], text[i + 1]))
            i += 2
            continue
        if c == '"':
            i += 1
            if i < len(text) and text[i] == "@":
                while i < len(text) and not text[i].isspace():
                    i += 1
            elif i + 1 < len(text) and text[i] == "^" and text[i + 1] == "^":
                while i < len(text) and not text[i].isspace():
                    i += 1
            return "".join(out), i
        out.append(c)
        i += 1
    raise ValueError(f"unterminated literal on line {line_number}")


def parse_nt_line(line, line_number):
    """Returns (subject, predicate, object, object_is_literal) or None."""
    line = line.strip()
    if not line or line.startswith("#"):
        return None

    def read_iri(i):
        if i >= len(line) or line[i] != "<":
            raise ValueError(f"expected '<' on line {line_number}")
        end = line.index(">", i)
        return line[i + 1:end], end + 1

    def skip_ws(i):
        while i < len(line) and line[i].isspace():
            i += 1
        return i

    subject, i = read_iri(0)
    i = skip_ws(i)
    if line[i] == "<":
        predicate, i = read_iri(i)
    else:
        start = i
        while i < len(line) and not line[i].isspace():
            i += 1
        predicate = line[start:i]
    i = skip_ws(i)
    if line[i] == '"':
        obj, i = parse_nt_literal(line, i, line_number)
        literal = True
    else:
        obj, i = read_iri(i)
        literal = False
    return subject, predicate, obj, literal


def parse_tsv_line(line, line_number):
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    fields = line.split("\t")
    if len(fields) != 3:
        raise ValueError(f"expected 3 tab-separated fields on line {line_number}")
    subject, predicate, obj = (f.strip() for f in fields)
    literal = len(obj) >= 2 and obj[0] == '"' and obj[-1] == '"'
    if literal:
        obj = obj[1:-1]
    return subject, predicate, obj, literal


class Kb:
    """The slice of the KB the certificate evidence depends on: the class
    taxonomy (reflexive-transitive ancestor closure) and per-class instance
    label sets over that closure."""

    def __init__(self, triples):
        class_iris = set()
        for subject, predicate, obj, literal in triples:
            if predicate in SUBCLASS_PREDICATES:
                class_iris.add(subject)
                class_iris.add(obj)
            elif predicate in TYPE_PREDICATES and not literal:
                if obj in CLASS_MARKERS:
                    class_iris.add(subject)
                else:
                    class_iris.add(obj)

        explicit_labels = {}
        for subject, predicate, obj, literal in triples:
            if predicate in LABEL_PREDICATES and literal:
                explicit_labels[subject] = obj

        self.classes = {prettify(iri) for iri in class_iris}
        parents = {name: set() for name in self.classes}
        for subject, predicate, obj, literal in triples:
            if predicate in SUBCLASS_PREDICATES:
                parents[prettify(subject)].add(prettify(obj))

        # Reflexive-transitive ancestor closure (the taxonomy is acyclic by
        # the loader's contract; a cycle here would hang the builder too, so
        # guard with a visited set).
        self.ancestors = {}

        def closure(name, stack):
            if name in self.ancestors:
                return self.ancestors[name]
            if name in stack:
                raise ValueError(f"subClassOf cycle involving {name!r}")
            stack.add(name)
            out = {name}
            for parent in parents[name]:
                out |= closure(parent, stack)
            stack.discard(name)
            self.ancestors[name] = out
            return out

        for name in self.classes:
            closure(name, set())

        # Instance labels per class, over the ancestor closure of each
        # entity's direct classes (mirrors KnowledgeBase::InstancesOf).
        self.instance_labels = {name: set() for name in self.classes}
        for subject, predicate, obj, literal in triples:
            if predicate not in TYPE_PREDICATES or literal:
                continue
            if obj in CLASS_MARKERS or subject in class_iris:
                continue
            label = explicit_labels.get(subject, prettify(subject))
            for ancestor in self.ancestors[prettify(obj)]:
                self.instance_labels[ancestor].add(label)

    def subclass_related(self, a, b):
        return b in self.ancestors[a] or a in self.ancestors[b]


def load_kb(path):
    parse_line = parse_tsv_line if path.endswith(".tsv") else parse_nt_line
    triples = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            triple = parse_line(line, line_number)
            if triple is not None:
                triples.append(triple)
    return Kb(triples)


# ---------------------------------------------------------------------------
# Footprints and certificate verification.
# ---------------------------------------------------------------------------


def compute_footprint(rule):
    reads, writes, classes, relations = set(), {rule.target}, set(), set()
    for node in rule.nodes:
        classes.add(node.type)
        if node.existential:
            continue
        reads.add(node.column)
        if node.sim != "=":
            # Fuzzy match: proving the cell standardizes it to the KB label.
            writes.add(node.column)
    for _, relation, _ in rule.edges:
        relations.add(relation)
    return {
        "name": rule.name,
        "target": rule.target,
        "reads": sorted(reads),
        "writes": sorted(writes),
        "classes": sorted(classes),
        "relations": sorted(relations),
    }


class Rejection(Exception):
    pass


def verify_refuted_unification(separation, rules, kb, all_writes):
    """Re-derives the mutual-exclusion proof behind a refuted-unification
    separation: the witness column must be stable pure evidence in both
    rules under exact matching, and the two classes provably label-disjoint."""
    a, b = separation["from"], separation["to"]
    column = separation["column"]
    class_from, class_to = separation["class_from"], separation["class_to"]

    if column in all_writes:
        raise Rejection(
            f"separation {a}->{b}: witness column {column!r} is written by a "
            "rule in the set, so it is not stable across the chase")

    def find_witness_node(rule, wanted_class, role):
        for i in rule.pure_evidence_indexes():
            node = rule.nodes[i]
            if node.column == column and node.type == wanted_class:
                if node.sim != "=":
                    raise Rejection(
                        f"separation {a}->{b}: {role} witness node uses fuzzy "
                        f"similarity {node.sim!r}; only exact matching "
                        "supports a label-disjointness proof")
                return node
        raise Rejection(
            f"separation {a}->{b}: rule {rule.name!r} has no pure-evidence "
            f"node on column {column!r} with class {wanted_class!r}")

    find_witness_node(rules[a], class_from, "from")
    find_witness_node(rules[b], class_to, "to")

    if class_from == class_to:
        raise Rejection(
            f"separation {a}->{b}: witness classes are identical "
            f"({class_from!r})")
    for name in (class_from, class_to):
        if name not in kb.classes:
            raise Rejection(
                f"separation {a}->{b}: class {name!r} does not resolve in the KB")
    if kb.subclass_related(class_from, class_to):
        raise Rejection(
            f"separation {a}->{b}: classes {class_from!r} and {class_to!r} "
            "are subclass-related")
    shared = kb.instance_labels[class_from] & kb.instance_labels[class_to]
    if shared:
        example = sorted(shared)[0]
        raise Rejection(
            f"separation {a}->{b}: classes {class_from!r} and {class_to!r} "
            f"share instance label {example!r}; not label-disjoint")


def verify(cert, rules, kb):
    if cert.get("schema_version") != 1:
        raise Rejection(f"unsupported schema_version {cert.get('schema_version')!r}")

    n = len(rules)
    cert_rules = cert.get("rules", [])
    if len(cert_rules) != n:
        raise Rejection(
            f"certificate covers {len(cert_rules)} rules, rule file has {n}")
    footprints = []
    for index, (claimed, rule) in enumerate(zip(cert_rules, rules)):
        recomputed = compute_footprint(rule)
        if claimed != recomputed:
            raise Rejection(
                f"rule {index} ({rule.name!r}): footprint mismatch\n"
                f"  claimed:    {json.dumps(claimed, sort_keys=True)}\n"
                f"  recomputed: {json.dumps(recomputed, sort_keys=True)}")
        footprints.append(recomputed)
    all_writes = set()
    for footprint in footprints:
        all_writes |= set(footprint["writes"])

    # Strata: a partition of rule indexes, cyclic iff more than one member
    # (self-enabling is impossible: a rule fires at most once per tuple).
    strata = cert.get("strata", [])
    stratum_of = {}
    for s, stratum in enumerate(strata):
        for rule_index in stratum["rules"]:
            if rule_index in stratum_of:
                raise Rejection(f"rule {rule_index} appears in two strata")
            if not 0 <= rule_index < n:
                raise Rejection(f"stratum {s} names unknown rule {rule_index}")
            stratum_of[rule_index] = s
        if stratum["cyclic"] != (len(stratum["rules"]) > 1):
            raise Rejection(
                f"stratum {s}: cyclic flag {stratum['cyclic']} inconsistent "
                f"with {len(stratum['rules'])} member(s)")
    if len(stratum_of) != n:
        raise Rejection("strata do not cover every rule")

    seen_pairs = set()
    for edge in cert.get("edges", []):
        a, b = edge["from"], edge["to"]
        pair = (a, b)
        if pair in seen_pairs:
            raise Rejection(f"pair {a}->{b} appears twice")
        seen_pairs.add(pair)
        column = edge["column"]
        if column not in footprints[a]["writes"]:
            raise Rejection(
                f"edge {a}->{b}: column {column!r} is not written by rule {a}")
        if column not in footprints[b]["reads"]:
            raise Rejection(
                f"edge {a}->{b}: column {column!r} is not read by rule {b}")
        if edge["evidence"] == "ordered":
            if stratum_of[a] >= stratum_of[b]:
                raise Rejection(
                    f"edge {a}->{b}: claimed ordered but strata are not "
                    f"topologically ordered ({stratum_of[a]} >= {stratum_of[b]})")
        elif edge["evidence"] == "scc-membership":
            if stratum_of[a] != stratum_of[b]:
                raise Rejection(
                    f"edge {a}->{b}: claimed scc-membership but the rules are "
                    "in different strata")
        else:
            raise Rejection(f"edge {a}->{b}: unknown evidence {edge['evidence']!r}")

    for separation in cert.get("separations", []):
        a, b = separation["from"], separation["to"]
        pair = (a, b)
        if pair in seen_pairs:
            raise Rejection(f"pair {a}->{b} appears twice")
        seen_pairs.add(pair)
        evidence = separation["evidence"]
        if evidence == "disjoint-footprints":
            overlap = set(footprints[a]["writes"]) & set(footprints[b]["reads"])
            if overlap:
                raise Rejection(
                    f"separation {a}->{b}: claimed disjoint footprints but "
                    f"writes({a}) ∩ reads({b}) = {sorted(overlap)}")
        elif evidence == "refuted-unification":
            verify_refuted_unification(separation, rules, kb, all_writes)
        else:
            raise Rejection(
                f"separation {a}->{b}: unknown evidence {evidence!r}")

    expected_pairs = {(a, b) for a in range(n) for b in range(n) if a != b}
    missing = expected_pairs - seen_pairs
    if missing:
        a, b = sorted(missing)[0]
        raise Rejection(
            f"pair {a}->{b} is covered by neither an edge nor a separation "
            f"({len(missing)} uncovered pair(s))")
    extra = seen_pairs - expected_pairs
    if extra:
        a, b = sorted(extra)[0]
        raise Rejection(f"certificate names out-of-range pair {a}->{b}")


def main(argv):
    cert_path = None
    rules_path = None
    kb_path = None
    for arg in argv[1:]:
        if arg.startswith("--rules="):
            rules_path = arg[len("--rules="):]
        elif arg.startswith("--kb="):
            kb_path = arg[len("--kb="):]
        elif arg.startswith("--"):
            print(f"unknown argument: {arg}", file=sys.stderr)
            return 2
        elif cert_path is None:
            cert_path = arg
        else:
            print(f"unexpected positional argument: {arg}", file=sys.stderr)
            return 2
    if not cert_path or not rules_path or not kb_path:
        print(__doc__.strip().splitlines()[-8], file=sys.stderr)
        print("usage: check_certificate.py CERT.json --rules=RULES.dr --kb=KB.nt",
              file=sys.stderr)
        return 2

    try:
        with open(cert_path, encoding="utf-8") as handle:
            cert = json.load(handle)
        with open(rules_path, encoding="utf-8") as handle:
            rules = parse_rules(handle.read())
        kb = load_kb(kb_path)
    except (OSError, ValueError) as error:
        print(f"error loading inputs: {error}", file=sys.stderr)
        return 2

    try:
        verify(cert, rules, kb)
    except Rejection as rejection:
        print(f"CERTIFICATE REJECTED: {rejection}", file=sys.stderr)
        return 1
    print(f"certificate verified: {len(rules)} rules, "
          f"{len(cert.get('strata', []))} strata, "
          f"{len(cert.get('edges', []))} edge(s), "
          f"{len(cert.get('separations', []))} separation(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
