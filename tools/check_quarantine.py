#!/usr/bin/env python3
"""Validate a quarantine ledger written by detective_clean --quarantine-json.

  check_quarantine.py QUARANTINE.jsonl [--input IN.csv --output OUT.csv]
                      [--expect-empty | --expect-nonempty]

Checks every JSONL record against the schema documented in
docs/robustness.md: required `row` (non-negative integer) and `reason`
(fault | tuple_budget | run_deadline), optional `rule`/`site`/`detail`
strings and `round` integer, nothing else. With --input/--output the
quarantined rows of the repaired CSV must be field-identical to the input
CSV — a quarantined tuple is left untouched, the invariant the chaos
harness asserts end to end.

Exit status: 0 valid, 1 on any violation.
"""

import argparse
import csv
import json
import sys

REQUIRED = {"row", "reason"}
OPTIONAL = {"rule", "site", "detail", "round"}
REASONS = {"fault", "tuple_budget", "run_deadline"}


def fail(message):
    print(f"FAIL {message}", file=sys.stderr)
    return 1


def load_records(path):
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"line {number}: not JSON: {error}") from error
            if not isinstance(doc, dict):
                raise ValueError(f"line {number}: not a JSON object")
            missing = REQUIRED - doc.keys()
            if missing:
                raise ValueError(f"line {number}: missing {sorted(missing)}")
            unknown = doc.keys() - REQUIRED - OPTIONAL
            if unknown:
                raise ValueError(f"line {number}: unknown fields {sorted(unknown)}")
            if not isinstance(doc["row"], int) or doc["row"] < 0:
                raise ValueError(f"line {number}: row must be a non-negative integer")
            if doc["reason"] not in REASONS:
                raise ValueError(
                    f"line {number}: reason {doc['reason']!r} not in {sorted(REASONS)}"
                )
            if not isinstance(doc.get("round", 0), int):
                raise ValueError(f"line {number}: round must be an integer")
            for key in ("rule", "site", "detail"):
                if key in doc and not isinstance(doc[key], str):
                    raise ValueError(f"line {number}: {key} must be a string")
            records.append(doc)
    return records


def load_csv_rows(path):
    with open(path, "r", encoding="utf-8", newline="") as handle:
        rows = list(csv.reader(handle))
    if not rows:
        raise ValueError(f"{path}: empty CSV (no header)")
    return rows[0], rows[1:]  # header, data rows


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("quarantine", help="quarantine JSONL from detective_clean")
    parser.add_argument("--input", help="dirty input CSV the run consumed")
    parser.add_argument("--output", help="repaired output CSV the run wrote")
    parser.add_argument(
        "--expect-empty",
        action="store_true",
        help="fail if anything was quarantined (exit-0 runs)",
    )
    parser.add_argument(
        "--expect-nonempty",
        action="store_true",
        help="fail if nothing was quarantined (exit-4 runs)",
    )
    args = parser.parse_args()
    if bool(args.input) != bool(args.output):
        parser.error("--input and --output go together")

    try:
        records = load_records(args.quarantine)
    except (OSError, ValueError) as error:
        return fail(f"{args.quarantine}: {error}")

    rows = sorted({record["row"] for record in records})
    if args.expect_empty and records:
        return fail(f"expected an empty ledger, found {len(records)} record(s)")
    if args.expect_nonempty and not records:
        return fail("expected a non-empty ledger, found none")

    if args.input:
        try:
            in_header, in_rows = load_csv_rows(args.input)
            out_header, out_rows = load_csv_rows(args.output)
        except (OSError, ValueError) as error:
            return fail(str(error))
        if in_header != out_header:
            return fail("input and output headers differ")
        if len(in_rows) != len(out_rows):
            return fail(
                f"row count changed: {len(in_rows)} in, {len(out_rows)} out"
            )
        for row in rows:
            if row >= len(in_rows):
                return fail(f"quarantined row {row} outside the relation")
            if in_rows[row] != out_rows[row]:
                return fail(
                    f"quarantined row {row} was modified: "
                    f"{in_rows[row]!r} -> {out_rows[row]!r}"
                )

    print(
        f"quarantine OK: {len(records)} record(s) over {len(rows)} row(s)"
        + (f", untouched among {args.output}" if args.output else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
