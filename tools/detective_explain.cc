// detective_explain: query the repair provenance emitted by
// `detective_clean --explain-json=FILE`.
//
//   detective_explain --explain-json=EXPLAIN.jsonl            # summary
//   detective_explain --explain-json=EXPLAIN.jsonl --cell=ROW:COL
//   detective_explain --explain-json=EXPLAIN.jsonl --rule=NAME
//
// Without a filter, prints a per-kind / per-rule summary of the log. With
// --cell (COL is a schema column name or its index) prints the full
// human-readable evidence chain for every record touching that cell; with
// --rule, for every record that rule produced.
//
// Exit codes: 0 success, 1 load failure or no record matched the filter,
// 64 usage.

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/provenance.h"

namespace detective {
namespace {

constexpr int kExitFailure = 1;
constexpr int kExitUsage = 64;

struct Args {
  std::string explain_json_path;
  std::string cell;
  std::string rule;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: detective_explain --explain-json=EXPLAIN.jsonl\n"
      "                         [--cell=ROW:COL] [--rule=NAME]\n\n"
      "  --explain-json  provenance JSONL written by detective_clean\n"
      "  --cell          explain one cell; ROW is the 0-based input row,\n"
      "                  COL a schema column name or 0-based column index\n"
      "  --rule          show every record produced by one rule\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto take = [&](std::string_view name, std::string* out) {
      std::string prefix = std::string("--") + std::string(name) + "=";
      if (StartsWith(arg, prefix)) {
        *out = std::string(arg.substr(prefix.size()));
        return true;
      }
      return false;
    };
    if (take("explain-json", &args->explain_json_path) ||
        take("cell", &args->cell) || take("rule", &args->rule)) {
      continue;
    }
    std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
    return false;
  }
  return !args->explain_json_path.empty();
}

Result<ProvenanceLog> LoadLog(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open ", path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ProvenanceLog::FromJsonLines(buffer.str());
}

void PrintSummary(const ProvenanceLog& log) {
  std::map<std::string, size_t> by_kind;
  std::map<std::string, size_t> by_rule;
  std::map<uint64_t, size_t> by_row;
  for (const RepairProvenance& record : log.records()) {
    ++by_kind[std::string(ProvenanceKindName(record.kind))];
    ++by_rule[record.rule];
    ++by_row[record.row];
  }
  std::printf("%zu provenance records over %zu rows\n", log.size(), by_row.size());
  std::printf("by kind:\n");
  for (const auto& [kind, count] : by_kind) {
    std::printf("  %-16s %zu\n", kind.c_str(), count);
  }
  std::printf("by rule:\n");
  for (const auto& [rule, count] : by_rule) {
    std::printf("  %-16s %zu\n", rule.c_str(), count);
  }
  std::printf("records (row, column, kind, rule, change):\n");
  for (const RepairProvenance& record : log.records()) {
    if (record.kind == ProvenanceKind::kProofPositive) {
      std::printf("  %llu, %s, %s, %s, \"%s\" proven\n",
                  static_cast<unsigned long long>(record.row),
                  record.column.c_str(),
                  std::string(ProvenanceKindName(record.kind)).c_str(),
                  record.rule.c_str(), record.old_value.c_str());
    } else {
      std::printf("  %llu, %s, %s, %s, \"%s\" -> \"%s\"\n",
                  static_cast<unsigned long long>(record.row),
                  record.column.c_str(),
                  std::string(ProvenanceKindName(record.kind)).c_str(),
                  record.rule.c_str(), record.old_value.c_str(),
                  record.new_value.c_str());
    }
  }
}

int Run(const Args& args) {
  auto log = LoadLog(args.explain_json_path);
  if (!log.ok()) {
    std::fprintf(stderr, "error loading provenance: %s\n",
                 log.status().ToString().c_str());
    return kExitFailure;
  }

  if (!args.cell.empty()) {
    size_t colon = args.cell.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == args.cell.size()) {
      std::fprintf(stderr, "--cell must be ROW:COL, got '%s'\n",
                   args.cell.c_str());
      return kExitUsage;
    }
    uint64_t row = 0;
    for (char c : args.cell.substr(0, colon)) {
      if (c < '0' || c > '9') {
        std::fprintf(stderr, "--cell ROW must be a non-negative integer\n");
        return kExitUsage;
      }
      row = row * 10 + static_cast<uint64_t>(c - '0');
    }
    std::string column = args.cell.substr(colon + 1);
    std::vector<const RepairProvenance*> matches = log->ForCell(row, column);
    if (matches.empty()) {
      std::fprintf(stderr, "no provenance for cell %llu:%s\n",
                   static_cast<unsigned long long>(row), column.c_str());
      return kExitFailure;
    }
    for (const RepairProvenance* record : matches) {
      std::printf("%s", record->ToText().c_str());
    }
    return 0;
  }

  if (!args.rule.empty()) {
    size_t matched = 0;
    for (const RepairProvenance& record : log->records()) {
      if (record.rule != args.rule) continue;
      ++matched;
      std::printf("%s", record.ToText().c_str());
    }
    if (matched == 0) {
      std::fprintf(stderr, "no provenance records from rule '%s'\n",
                   args.rule.c_str());
      return kExitFailure;
    }
    return 0;
  }

  PrintSummary(*log);
  return 0;
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  detective::Args args;
  if (!detective::ParseArgs(argc, argv, &args)) {
    detective::PrintUsage();
    return detective::kExitUsage;
  }
  return detective::Run(args);
}
