// detective_lint: static analyzer for detective-rule sets.
//
//   detective_lint --kb=yago.nt --rules=nobel.dr [--json=DIAG.json]
//                  [--fail-on=error|warning|never] [--no-edge-support]
//
// Analyzes the rule set against the KB schema without touching any data
// (docs/static_analysis.md): conflicting rule pairs, oscillation cycles,
// KB-unsupported vocabulary, and unsatisfiable patterns. Prints the report
// most-severe-first and exits non-zero when findings reach the --fail-on
// threshold, so CI can gate rule-set changes.
//
// Exit codes: 0 clean (below threshold), 1 load failure, 3 findings at or
// above the threshold, 64 usage.

#include <cstdio>
#include <fstream>
#include <string>

#include "analysis/rule_lint.h"
#include "common/string_util.h"
#include "core/rule_io.h"
#include "kb/ntriples_parser.h"

namespace detective {
namespace {

constexpr int kExitClean = 0;
constexpr int kExitLoadFailure = 1;
constexpr int kExitFindings = 3;
constexpr int kExitUsage = 64;

struct Args {
  std::string kb_path;
  std::string rules_path;
  std::string json_path;
  std::string fail_on = "error";
  bool edge_support = true;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: detective_lint --kb=KB.nt --rules=RULES.dr [--json=DIAG.json]\n"
      "                      [--fail-on=error|warning|never] [--no-edge-support]\n\n"
      "  --kb               RDF knowledge base (N-Triples subset; a .tsv\n"
      "                     extension selects tab-separated triples)\n"
      "  --rules            detective rules in the rule DSL\n"
      "  --json             write the diagnostics report as JSON\n"
      "  --fail-on          lowest severity that makes the exit code %d\n"
      "                     (default: error)\n"
      "  --no-edge-support  skip the KB joint-support probes (vocabulary\n"
      "                     checks only; faster on very large KBs)\n",
      kExitFindings);
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto take = [&](std::string_view name, std::string* out) {
      std::string prefix = std::string("--") + std::string(name) + "=";
      if (StartsWith(arg, prefix)) {
        *out = std::string(arg.substr(prefix.size()));
        return true;
      }
      return false;
    };
    if (take("kb", &args->kb_path) || take("rules", &args->rules_path) ||
        take("json", &args->json_path) || take("fail-on", &args->fail_on)) {
      continue;
    }
    if (arg == "--no-edge-support") {
      args->edge_support = false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return false;
    }
  }
  if (args->kb_path.empty() || args->rules_path.empty()) return false;
  if (args->fail_on != "error" && args->fail_on != "warning" &&
      args->fail_on != "never") {
    std::fprintf(stderr, "--fail-on must be 'error', 'warning', or 'never'\n");
    return false;
  }
  return true;
}

int Run(const Args& args) {
  auto kb = LoadKbFile(args.kb_path);
  if (!kb.ok()) {
    std::fprintf(stderr, "error loading KB: %s\n", kb.status().ToString().c_str());
    return kExitLoadFailure;
  }

  auto rules = ParseRulesFile(args.rules_path);
  if (!rules.ok()) {
    std::fprintf(stderr, "error loading rules: %s\n",
                 rules.status().ToString().c_str());
    return kExitLoadFailure;
  }

  analysis::LintOptions options;
  options.check_edge_support = args.edge_support;
  analysis::DiagnosticReport report = analysis::LintRules(*rules, *kb, options);
  report.SortBySeverity();

  std::printf("%s: %zu rules against %s\n%s\n", args.rules_path.c_str(),
              rules->size(), args.kb_path.c_str(), report.ToString().c_str());

  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path, std::ios::trunc);
    out << report.ToJson();
    if (!out) {
      std::fprintf(stderr, "error writing diagnostics to %s\n",
                   args.json_path.c_str());
      return kExitLoadFailure;
    }
    std::printf("diagnostics written to %s\n", args.json_path.c_str());
  }

  bool failed = (args.fail_on == "error" && report.errors() > 0) ||
                (args.fail_on == "warning" &&
                 report.errors() + report.warnings() > 0);
  return failed ? kExitFindings : kExitClean;
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  detective::Args args;
  if (!detective::ParseArgs(argc, argv, &args)) {
    detective::PrintUsage();
    return detective::kExitUsage;
  }
  return detective::Run(args);
}
