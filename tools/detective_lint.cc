// detective_lint: static analyzer for detective-rule sets.
//
//   detective_lint --kb=yago.nt --rules=nobel.dr [--json=DIAG.json]
//                  [--fail-on=error|warning|never] [--no-edge-support]
//                  [--strata] [--strata-json=CERT.json]
//
// Analyzes the rule set against the KB schema without touching any data
// (docs/static_analysis.md): conflicting rule pairs, oscillation cycles,
// KB-unsupported vocabulary, and unsatisfiable patterns. Prints the report
// most-severe-first and exits non-zero when findings reach the --fail-on
// threshold, so CI can gate rule-set changes.
//
// --strata prints the stratification report (strata in topological order,
// cyclic strata naming their SCC rules); --strata-json writes the full
// machine-checkable StratificationCertificate, re-verifiable with
// tools/check_certificate.py. The --json document always carries a "strata"
// summary section (null when the rule set cannot be stratified).
//
// Exit codes: 0 clean (below threshold), 1 load failure, 3 findings at or
// above the threshold, 64 usage.

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>

#include "analysis/rule_lint.h"
#include "analysis/stratification.h"
#include "common/string_util.h"
#include "core/rule_io.h"
#include "kb/ntriples_parser.h"

namespace detective {
namespace {

constexpr int kExitClean = 0;
constexpr int kExitLoadFailure = 1;
constexpr int kExitFindings = 3;
constexpr int kExitUsage = 64;

struct Args {
  std::string kb_path;
  std::string rules_path;
  std::string json_path;
  std::string strata_json_path;
  std::string fail_on = "error";
  bool edge_support = true;
  bool strata = false;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: detective_lint --kb=KB.nt --rules=RULES.dr [--json=DIAG.json]\n"
      "                      [--fail-on=error|warning|never] [--no-edge-support]\n"
      "                      [--strata] [--strata-json=CERT.json]\n\n"
      "  --kb               RDF knowledge base (N-Triples subset; a .tsv\n"
      "                     extension selects tab-separated triples)\n"
      "  --rules            detective rules in the rule DSL\n"
      "  --json             write the diagnostics report as JSON (includes a\n"
      "                     \"strata\" summary section)\n"
      "  --strata           print the stratification report (cyclic strata\n"
      "                     name their SCC rules)\n"
      "  --strata-json      write the machine-checkable stratification\n"
      "                     certificate (verify with check_certificate.py)\n"
      "  --fail-on          lowest severity that makes the exit code %d\n"
      "                     (default: error)\n"
      "  --no-edge-support  skip the KB joint-support probes (vocabulary\n"
      "                     checks only; faster on very large KBs)\n",
      kExitFindings);
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto take = [&](std::string_view name, std::string* out) {
      std::string prefix = std::string("--") + std::string(name) + "=";
      if (StartsWith(arg, prefix)) {
        *out = std::string(arg.substr(prefix.size()));
        return true;
      }
      return false;
    };
    if (take("kb", &args->kb_path) || take("rules", &args->rules_path) ||
        take("json", &args->json_path) ||
        take("strata-json", &args->strata_json_path) ||
        take("fail-on", &args->fail_on)) {
      continue;
    }
    if (arg == "--no-edge-support") {
      args->edge_support = false;
    } else if (arg == "--strata") {
      args->strata = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return false;
    }
  }
  if (args->kb_path.empty() || args->rules_path.empty()) return false;
  if (args->fail_on != "error" && args->fail_on != "warning" &&
      args->fail_on != "never") {
    std::fprintf(stderr, "--fail-on must be 'error', 'warning', or 'never'\n");
    return false;
  }
  return true;
}

/// The "strata" summary object of the --json document: counts plus the
/// strata with rule names. Null (the literal) when stratification failed.
std::string StrataSummaryJson(
    const std::optional<analysis::Stratification>& strata,
    const std::vector<DetectiveRule>& rules) {
  if (!strata.has_value()) return "null";
  std::string out = "{\"count\": ";
  out += std::to_string(strata->certificate.strata.size());
  out += ", \"cyclic\": ";
  out += std::to_string(strata->certificate.num_cyclic_strata());
  out += ", \"edges\": ";
  out += std::to_string(strata->certificate.edges.size());
  out += ", \"pairs_refuted\": ";
  out += std::to_string(strata->pairs_refuted);
  out += ", \"list\": [";
  for (size_t s = 0; s < strata->certificate.strata.size(); ++s) {
    out += s == 0 ? "\n    " : ",\n    ";
    out += "{\"rules\": [";
    const std::vector<uint32_t>& members = strata->certificate.strata[s];
    for (size_t i = 0; i < members.size(); ++i) {
      if (i > 0) out += ", ";
      AppendJsonString(rules[members[i]].name(), &out);
    }
    out += "], \"cyclic\": ";
    out += strata->certificate.cyclic[s] != 0 ? "true" : "false";
    out += '}';
  }
  out += strata->certificate.strata.empty() ? "]}" : "\n  ]}";
  return out;
}

void PrintStrataReport(const analysis::Stratification& strata,
                       const std::vector<DetectiveRule>& rules) {
  const analysis::StratificationCertificate& cert = strata.certificate;
  std::printf(
      "Strata: %zu stratum/strata (%zu cyclic), %zu interaction edge(s), "
      "%zu pair(s) refuted by unification\n",
      cert.strata.size(), cert.num_cyclic_strata(), cert.edges.size(),
      strata.pairs_refuted);
  for (size_t s = 0; s < cert.strata.size(); ++s) {
    std::string members;
    for (uint32_t rule : cert.strata[s]) {
      if (!members.empty()) members += ", ";
      members += rules[rule].name();
    }
    std::printf("  stratum %zu%s: %s\n", s,
                cert.cyclic[s] != 0 ? " (cyclic SCC)" : "", members.c_str());
  }
}

int Run(const Args& args) {
  auto kb = LoadKbFile(args.kb_path);
  if (!kb.ok()) {
    std::fprintf(stderr, "error loading KB: %s\n", kb.status().ToString().c_str());
    return kExitLoadFailure;
  }

  auto rules = ParseRulesFile(args.rules_path);
  if (!rules.ok()) {
    std::fprintf(stderr, "error loading rules: %s\n",
                 rules.status().ToString().c_str());
    return kExitLoadFailure;
  }

  analysis::LintOptions options;
  options.check_edge_support = args.edge_support;
  analysis::DiagnosticReport report = analysis::LintRules(*rules, *kb, options);
  report.SortBySeverity();

  std::printf("%s: %zu rules against %s\n%s\n", args.rules_path.c_str(),
              rules->size(), args.kb_path.c_str(), report.ToString().c_str());

  // Stratification (analysis/stratification.h): computed whenever any output
  // consumes it. Failure (a malformed rule) is not a lint exit condition —
  // the malformed-rule diagnostic above already covers it — except when the
  // caller explicitly asked for the certificate.
  std::optional<analysis::Stratification> strata;
  if (args.strata || !args.strata_json_path.empty() || !args.json_path.empty()) {
    analysis::StratifyOptions strata_options;
    strata_options.max_probes = options.max_support_probes;
    auto computed = analysis::ComputeStratification(*rules, *kb, strata_options);
    if (computed.ok()) {
      strata = std::move(*computed);
    } else {
      std::fprintf(stderr, "stratification failed: %s\n",
                   computed.status().ToString().c_str());
      if (!args.strata_json_path.empty()) return kExitLoadFailure;
    }
  }
  if (args.strata && strata.has_value()) PrintStrataReport(*strata, *rules);
  if (!args.strata_json_path.empty()) {
    std::ofstream out(args.strata_json_path, std::ios::trunc);
    out << strata->certificate.ToJson();
    if (!out) {
      std::fprintf(stderr, "error writing certificate to %s\n",
                   args.strata_json_path.c_str());
      return kExitLoadFailure;
    }
    std::printf("stratification certificate written to %s\n",
                args.strata_json_path.c_str());
  }

  if (!args.json_path.empty()) {
    // The report document plus the "strata" summary section (the schema the
    // lint golden test locks; docs/static_analysis.md).
    std::string document = report.ToJson();
    const std::string tail = "\n}\n";
    if (document.size() >= tail.size() &&
        document.compare(document.size() - tail.size(), tail.size(), tail) == 0) {
      document.resize(document.size() - tail.size());
    }
    document += ",\n  \"strata\": ";
    document += StrataSummaryJson(strata, *rules);
    document += "\n}\n";
    std::ofstream out(args.json_path, std::ios::trunc);
    out << document;
    if (!out) {
      std::fprintf(stderr, "error writing diagnostics to %s\n",
                   args.json_path.c_str());
      return kExitLoadFailure;
    }
    std::printf("diagnostics written to %s\n", args.json_path.c_str());
  }

  bool failed = (args.fail_on == "error" && report.errors() > 0) ||
                (args.fail_on == "warning" &&
                 report.errors() + report.warnings() > 0);
  return failed ? kExitFindings : kExitClean;
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  detective::Args args;
  if (!detective::ParseArgs(argc, argv, &args)) {
    detective::PrintUsage();
    return detective::kExitUsage;
  }
  return detective::Run(args);
}
