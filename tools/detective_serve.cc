// detective_serve: the long-lived cleaning daemon (docs/serving.md).
//
//   detective_serve --kb=yago.nt --rules=nobel.dr --schema=Name,Country
//                   [--port=0] [--threads=1] [--queue-depth=32]
//                   [--default-deadline-ms=N] [--tuple-budget-ms=N]
//                   [--drain-timeout-ms=5000] [--allow-fault-header] ...
//
// Loads the KB and rule set once, freezes the match plan and shared
// candidate cache, and serves cleaning requests over loopback HTTP until
// SIGTERM/SIGINT, then drains gracefully: the listener closes, queued and
// in-flight requests finish under a tightened deadline, and the process
// exits 0. The endpoint surface, request/response formats, and the
// error-code mapping live in serve/router.h and docs/serving.md; the
// introspection endpoints (/healthz /metrics /metrics.json /progress
// /trace) share the same listener.
//
// Exit codes: 0 clean start + clean drain, 1 load/runtime failure, 3 rule
// set rejected (--lint=strict / --stratify=strict), 64 usage — including a
// port that cannot be bound, so supervisors distinguish "bad config" from
// "crashed".

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/fault.h"
#include "common/log.h"
#include "common/string_util.h"
#include "obs/http_server.h"
#include "obs/introspect.h"
#include "relation/relation.h"
#include "serve/router.h"
#include "serve/service.h"

namespace detective {
namespace {

constexpr int kExitRuntimeFailure = 1;
constexpr int kExitRejectedByAnalysis = 3;
constexpr int kExitUsage = 64;

struct Args {
  std::string kb_path;
  std::string kb_snapshot_path;
  std::string rules_path;
  /// Comma-separated column names, or --schema-csv: a CSV whose header row
  /// is the schema (typically the workload the service will clean).
  std::string schema;
  std::string schema_csv_path;
  uint64_t port = 0;  // 0 = ephemeral, reported on stdout
  /// Repair workers (0 = hardware concurrency); one FastRepairer each.
  uint64_t threads = 1;
  /// Connection threads in the HTTP layer; 0 = threads + 4.
  uint64_t http_threads = 0;
  /// Bounded request queue; a full queue sheds with 429 + Retry-After.
  uint64_t queue_depth = 32;
  uint64_t max_body_bytes = 1 << 20;
  /// Applied to requests that do not carry their own deadline_ms.
  uint64_t default_deadline_ms = 0;
  uint64_t tuple_budget_ms = 0;
  /// Grace for in-flight work after SIGTERM/SIGINT before a hard stop.
  uint64_t drain_timeout_ms = 5000;
  bool allow_fault_header = false;
  std::string lint = "warn";
  std::string stratify = "auto";
  /// Process-wide fault plan (chaos runs); per-request plans arrive via the
  /// X-Detective-Fault-Plan header when --allow-fault-header is set.
  std::string fault_plan;
  std::string log_json_path;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: detective_serve --kb=KB.nt|--kb-snapshot=KB.dkb --rules=RULES.dr\n"
      "                       --schema=Col1,Col2,... | --schema-csv=FILE.csv\n"
      "                       [--port=N] [--threads=N] [--http-threads=N]\n"
      "                       [--queue-depth=N] [--max-body-bytes=N]\n"
      "                       [--default-deadline-ms=N] [--tuple-budget-ms=N]\n"
      "                       [--drain-timeout-ms=N] [--allow-fault-header]\n"
      "                       [--lint=strict|warn|off]\n"
      "                       [--stratify=off|auto|strict]\n"
      "                       [--fault-plan=PLAN] [--log-json=FILE]\n\n"
      "  --kb-snapshot        binary KB snapshot built by detective_kb_build\n"
      "                       (mmap cold start); a rejected snapshot exits 64\n"
      "  --schema             the served relation schema; every request must\n"
      "                       match it exactly\n"
      "  --schema-csv         read the schema from a CSV header row instead\n"
      "  --port               listen on 127.0.0.1:PORT (0 = ephemeral; the\n"
      "                       bound port is printed on stdout at startup)\n"
      "  --threads            repair workers (0 = hardware concurrency)\n"
      "  --http-threads       HTTP connection threads (0 = threads + 4)\n"
      "  --queue-depth        waiting requests before shedding with 429\n"
      "  --default-deadline-ms\n"
      "                       deadline for requests that do not set one\n"
      "  --drain-timeout-ms   grace for in-flight requests after SIGTERM\n"
      "  --allow-fault-header honor X-Detective-Fault-Plan per request\n"
      "                       (chaos testing; off by default)\n"
      "exit codes: 0 served and drained cleanly, 1 load/runtime failure,\n"
      "3 rule set rejected under strict lint/stratify, 64 usage (including\n"
      "a port that cannot be bound)\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  bool numeric_ok = true;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto take = [&](std::string_view name, std::string* out) {
      std::string prefix = std::string("--") + std::string(name) + "=";
      if (StartsWith(arg, prefix)) {
        *out = std::string(arg.substr(prefix.size()));
        return true;
      }
      return false;
    };
    auto take_u64 = [&](std::string_view name, uint64_t* out) {
      std::string raw;
      if (!take(name, &raw)) return false;
      if (!ParseUint64(raw, out)) {
        std::fprintf(stderr,
                     "--%.*s expects a non-negative integer, got '%s'\n",
                     static_cast<int>(name.size()), name.data(), raw.c_str());
        numeric_ok = false;
      }
      return true;
    };
    if (take("kb", &args->kb_path) ||
        take("kb-snapshot", &args->kb_snapshot_path) ||
        take("rules", &args->rules_path) || take("schema", &args->schema) ||
        take("schema-csv", &args->schema_csv_path) ||
        take_u64("port", &args->port) || take_u64("threads", &args->threads) ||
        take_u64("http-threads", &args->http_threads) ||
        take_u64("queue-depth", &args->queue_depth) ||
        take_u64("max-body-bytes", &args->max_body_bytes) ||
        take_u64("default-deadline-ms", &args->default_deadline_ms) ||
        take_u64("tuple-budget-ms", &args->tuple_budget_ms) ||
        take_u64("drain-timeout-ms", &args->drain_timeout_ms) ||
        take("lint", &args->lint) || take("stratify", &args->stratify) ||
        take("fault-plan", &args->fault_plan) ||
        take("log-json", &args->log_json_path)) {
      continue;
    }
    if (arg == "--allow-fault-header") {
      args->allow_fault_header = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return false;
    }
  }
  if (args->rules_path.empty()) return false;
  if (args->kb_path.empty() == args->kb_snapshot_path.empty()) {
    std::fprintf(stderr, "exactly one of --kb and --kb-snapshot is required\n");
    return false;
  }
  if (args->schema.empty() == args->schema_csv_path.empty()) {
    std::fprintf(stderr,
                 "exactly one of --schema / --schema-csv is required\n");
    return false;
  }
  if (args->port > 65535) {
    std::fprintf(stderr, "--port expects a port in [0, 65535]\n");
    return false;
  }
  if (args->queue_depth == 0) {
    std::fprintf(stderr, "--queue-depth must be at least 1\n");
    return false;
  }
  if (args->lint != "strict" && args->lint != "warn" && args->lint != "off") {
    std::fprintf(stderr, "--lint must be 'strict', 'warn', or 'off'\n");
    return false;
  }
  if (args->stratify != "auto" && args->stratify != "strict" &&
      args->stratify != "off") {
    std::fprintf(stderr, "--stratify must be 'off', 'auto', or 'strict'\n");
    return false;
  }
  return numeric_ok;
}

// ---- Shutdown signal plumbing -----------------------------------------------
// The handler only writes one byte to a self-pipe; the main thread blocks on
// the read end and runs the (async-signal-unsafe) drain sequence itself.

int g_signal_pipe[2] = {-1, -1};

void OnShutdownSignal(int /*signum*/) {
  const char byte = 1;
  // The pipe is written at most a few times and is never full in practice;
  // a failed write just means a signal already queued the shutdown.
  [[maybe_unused]] ssize_t n = write(g_signal_pipe[1], &byte, 1);
}

int Run(const Args& args) {
  if (!args.log_json_path.empty()) {
    Status log_status = logs::OpenJsonFile(args.log_json_path);
    if (!log_status.ok()) {
      logs::Error("serve", "log_sink_failed", log_status.ToString());
      return kExitRuntimeFailure;
    }
  }

  // ---- Arm process-wide fault injection (docs/robustness.md) ----
  std::string fault_spec = args.fault_plan;
  if (fault_spec.empty()) {
    if (const char* env = std::getenv("DETECTIVE_FAULT_PLAN")) fault_spec = env;
  }
  if (!fault_spec.empty()) {
    auto plan = fault::FaultPlan::Parse(fault_spec);
    if (!plan.ok()) {
      logs::Error("serve", "bad_fault_plan",
                  "bad fault plan: " + plan.status().ToString());
      return kExitUsage;
    }
    fault::Injector::Global().Arm(*plan);
    std::printf("Fault plan armed: %s\n", plan->ToString().c_str());
#if !DETECTIVE_FAULT_ENABLED
    logs::Warn("serve", "fault_compiled_out",
               "note: built with DETECTIVE_FAULT=OFF; the plan never fires");
#endif
  }

  // ---- Resolve the frozen schema ----
  std::vector<std::string> columns;
  if (!args.schema_csv_path.empty()) {
    auto relation = Relation::FromCsvFile(args.schema_csv_path);
    if (!relation.ok()) {
      logs::Error("serve", "schema_csv_failed",
                  "cannot read schema CSV: " + relation.status().ToString(),
                  {{"path", args.schema_csv_path}});
      return kExitRuntimeFailure;
    }
    columns = relation->schema().columns();
  } else {
    columns = SplitAndTrim(args.schema, ',');
  }

  // ---- Load everything once ----
  serve::ServiceOptions options;
  options.kb_path = args.kb_path;
  options.kb_snapshot_path = args.kb_snapshot_path;
  options.rules_path = args.rules_path;
  options.schema_columns = std::move(columns);
  options.workers = args.threads;
  options.queue_capacity = args.queue_depth;
  options.default_deadline_ms = args.default_deadline_ms;
  options.tuple_budget_ms = args.tuple_budget_ms;
  options.lint = args.lint;
  options.stratify = args.stratify;
  options.allow_fault_header = args.allow_fault_header;

  serve::CleaningService service;
  Status init = service.Init(std::move(options));
  if (!init.ok()) {
    logs::Error("serve", "init_failed", init.ToString());
    if (service.rejected_snapshot()) return kExitUsage;
    return service.rejected_by_analysis() ? kExitRejectedByAnalysis
                                          : kExitRuntimeFailure;
  }

  // ---- Start the listener ----
  obs::HttpServerOptions http;
  http.port = static_cast<uint16_t>(args.port);
  http.max_body_bytes = args.max_body_bytes;
  http.dispatch_threads = args.http_threads > 0
                              ? args.http_threads
                              : service.options().workers + 4;
  obs::HttpServer server(http);
  obs::RegisterIntrospectionHandlers(&server);
  serve::RegisterServiceHandlers(&server, &service);
  Status started = server.Start();
  if (!started.ok()) {
    // Port in use (or any bind failure) is a usage error: the operator
    // asked for an address this process cannot have.
    logs::Error("serve", "start_failed",
                "cannot start server: " + started.ToString());
    service.Shutdown();
    return kExitUsage;
  }

  // Parsed by clients, CI, and the serve tests to find an ephemeral port.
  std::printf("detective_serve: http://127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);
  service.MarkReady();
  logs::Info("serve", "ready", "serving",
             {{"port", static_cast<uint64_t>(server.port())},
              {"workers", static_cast<uint64_t>(service.options().workers)},
              {"queue_depth",
               static_cast<uint64_t>(service.options().queue_capacity)}});

  // ---- Block until SIGTERM/SIGINT ----
  for (;;) {
    char byte = 0;
    const ssize_t n = read(g_signal_pipe[0], &byte, 1);
    if (n == 1) break;
    if (n < 0 && errno == EINTR) continue;
    logs::Error("serve", "signal_pipe_failed", "signal pipe read failed");
    break;
  }

  // ---- Graceful drain ----
  logs::Info("serve", "drain_begin", "shutdown signal received",
             {{"grace_ms", args.drain_timeout_ms}});
  service.BeginDrain(args.drain_timeout_ms);
  server.BeginDrain();
  const bool server_idle = server.WaitIdle(args.drain_timeout_ms);
  const bool service_idle = service.WaitIdle(args.drain_timeout_ms);
  service.Shutdown();
  server.Stop();
  const bool clean = server_idle && service_idle;
  logs::Info("serve", "drain_end", clean ? "drained cleanly" : "drain timed out",
             {{"requests_served", server.requests_served()},
              {"requests_shed", service.admission().sheds()}});
  logs::CloseJsonFile();
  return clean ? 0 : kExitRuntimeFailure;
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  detective::Args args;
  if (!detective::ParseArgs(argc, argv, &args)) {
    detective::PrintUsage();
    return detective::kExitUsage;
  }
  // A client that disconnects mid-response must surface as a write error on
  // that connection, never kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
  if (pipe(detective::g_signal_pipe) != 0) {
    std::fprintf(stderr, "detective_serve: cannot create signal pipe\n");
    return detective::kExitRuntimeFailure;
  }
  std::signal(SIGTERM, detective::OnShutdownSignal);
  std::signal(SIGINT, detective::OnShutdownSignal);
  return detective::Run(args);
}
