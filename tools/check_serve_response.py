#!/usr/bin/env python3
"""Schema checker for detective_serve response bodies (docs/serving.md).

Validates that a response document carries exactly the advertised shape, so
the CI serve-smoke job fails on contract drift rather than on a downstream
consumer. Reads the body from FILE (or '-'/stdin):

  curl -fsS .../v1/clean-tuple -d @req.json |
      check_serve_response.py --kind=tuple --expect-degraded=false
  curl -fsS .../v1/rules | check_serve_response.py --kind=rules
  curl -fsS '.../v1/explain?id=r-1&row=0&column=City' |
      check_serve_response.py --kind=explain

Kinds:
  tuple    POST /v1/clean-tuple body: request_id/degraded/tuple/repaired/
           positive/quarantine, with the cross-field invariants (degraded
           <=> non-empty quarantine ledger, repaired entries consistent
           with the returned tuple).
  rules    GET /v1/rules body: total/usable/rules[{name,target,evidence}].
  explain  GET /v1/explain body: request_id + provenance records.
  readyz   GET /readyz body (200 only): status/kb_source/kb_load_ms, with
           status == "ready" and kb_source in {snapshot, text}.

Expectations (all optional):
  --expect-degraded=true|false   assert the degraded flag
  --expect-repair Col=Value      assert some repair set Col to Value
                                 (repeatable)
  --expect-quarantine-reason=R   assert some ledger record has reason R

Exit status: 0 when the document validates, 1 otherwise.
"""

import argparse
import json
import re
import sys

_FAILURES = []


def fail(message):
    _FAILURES.append(message)


def expect_keys(obj, keys, label):
    if not isinstance(obj, dict):
        fail(f"{label}: not an object")
        return False
    missing = set(keys) - set(obj)
    extra = set(obj) - set(keys)
    if missing:
        fail(f"{label}: missing keys {sorted(missing)}")
    if extra:
        fail(f"{label}: unexpected keys {sorted(extra)}")
    return not missing and not extra


def check_quarantine(records, label):
    if not isinstance(records, list):
        fail(f"{label}: not an array")
        return
    for i, record in enumerate(records):
        if not expect_keys(
            record,
            ("row", "rule", "site", "reason", "round", "detail"),
            f"{label}[{i}]",
        ):
            continue
        if not isinstance(record["row"], int) or record["row"] < 0:
            fail(f"{label}[{i}]: row is not a non-negative integer")
        if not isinstance(record["reason"], str) or not record["reason"]:
            fail(f"{label}[{i}]: reason is not a non-empty string")


def check_tuple(doc, args):
    if not expect_keys(
        doc,
        ("request_id", "degraded", "tuple", "repaired", "positive",
         "quarantine"),
        "response",
    ):
        return
    if not re.fullmatch(r"r-\d+", doc["request_id"]):
        fail(f"request_id {doc['request_id']!r} is not r-<n>")
    if not isinstance(doc["degraded"], bool):
        fail("degraded is not a boolean")
    cells = doc["tuple"]
    if not isinstance(cells, dict) or not all(
        isinstance(v, str) for v in cells.values()
    ):
        fail("tuple is not an object of strings")
        cells = {}
    for i, repair in enumerate(doc["repaired"]):
        if not expect_keys(repair, ("column", "from", "to"), f"repaired[{i}]"):
            continue
        if repair["column"] not in cells:
            fail(f"repaired[{i}]: column {repair['column']!r} not in tuple")
        elif cells[repair["column"]] != repair["to"]:
            fail(f"repaired[{i}]: tuple cell disagrees with \"to\"")
        if repair["from"] == repair["to"]:
            fail(f"repaired[{i}]: from == to is not a repair")
    for i, column in enumerate(doc["positive"]):
        if column not in cells:
            fail(f"positive[{i}]: column {column!r} not in tuple")
    check_quarantine(doc["quarantine"], "quarantine")
    # The degradation contract: the flag IS the ledger, never out of sync.
    if isinstance(doc["degraded"], bool) and doc["degraded"] != bool(
        doc["quarantine"]
    ):
        fail("degraded flag disagrees with the quarantine ledger")

    if args.expect_degraded is not None:
        want = args.expect_degraded == "true"
        if doc["degraded"] is not want:
            fail(f"expected degraded={want}, got {doc['degraded']}")
    for spec in args.expect_repair:
        column, _, value = spec.partition("=")
        if not any(
            r.get("column") == column and r.get("to") == value
            for r in doc["repaired"]
        ):
            fail(f"expected a repair {column!r} -> {value!r}; repairs: "
                 f"{doc['repaired']}")
    if args.expect_quarantine_reason is not None:
        if not any(
            r.get("reason") == args.expect_quarantine_reason
            for r in doc["quarantine"]
        ):
            fail(f"expected a quarantine record with reason "
                 f"{args.expect_quarantine_reason!r}; got {doc['quarantine']}")


def check_rules(doc, _args):
    if not expect_keys(doc, ("total", "usable", "rules"), "response"):
        return
    if not isinstance(doc["total"], int) or not isinstance(doc["usable"], int):
        fail("total/usable are not integers")
        return
    if not 0 <= doc["usable"] <= doc["total"]:
        fail(f"usable {doc['usable']} outside [0, total={doc['total']}]")
    if len(doc["rules"]) != doc["total"]:
        fail(f"rules array has {len(doc['rules'])} entries, total says "
             f"{doc['total']}")
    for i, rule in enumerate(doc["rules"]):
        if not expect_keys(rule, ("name", "target", "evidence"), f"rules[{i}]"):
            continue
        if not isinstance(rule["evidence"], list):
            fail(f"rules[{i}]: evidence is not an array")


def check_readyz(doc, args):
    if not expect_keys(doc, ("status", "kb_source", "kb_load_ms"), "response"):
        return
    if doc["status"] != "ready":
        fail(f"status is {doc['status']!r}, expected 'ready'")
    if doc["kb_source"] not in ("snapshot", "text"):
        fail(f"kb_source is {doc['kb_source']!r}, expected snapshot|text")
    if not isinstance(doc["kb_load_ms"], (int, float)) or doc["kb_load_ms"] < 0:
        fail("kb_load_ms is not a non-negative number")
    if args.expect_kb_source and doc["kb_source"] != args.expect_kb_source:
        fail(f"expected kb_source={args.expect_kb_source!r}, got "
             f"{doc['kb_source']!r}")


def check_explain(doc, _args):
    if not expect_keys(doc, ("request_id", "records"), "response"):
        return
    for i, record in enumerate(doc["records"]):
        label = f"records[{i}]"
        if not isinstance(record, dict):
            fail(f"{label}: not an object")
            continue
        for key in ("row", "column_index", "column", "kind", "rule", "round",
                    "old_value", "new_value", "bindings"):
            if key not in record:
                fail(f"{label}: missing key {key!r}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kind", required=True,
                        choices=("tuple", "rules", "explain", "readyz"))
    parser.add_argument("--expect-degraded", choices=("true", "false"))
    parser.add_argument("--expect-kb-source", choices=("snapshot", "text"))
    parser.add_argument("--expect-repair", action="append", default=[],
                        metavar="COLUMN=VALUE")
    parser.add_argument("--expect-quarantine-reason", metavar="REASON")
    parser.add_argument("file", nargs="?", default="-",
                        help="response body file, or '-' for stdin")
    args = parser.parse_args()

    raw = sys.stdin.read() if args.file == "-" else open(
        args.file, "r", encoding="utf-8").read()
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as error:
        print(f"FAIL: body is not JSON: {error}", file=sys.stderr)
        return 1

    {"tuple": check_tuple, "rules": check_rules, "explain": check_explain,
     "readyz": check_readyz}[args.kind](doc, args)

    if _FAILURES:
        for failure in _FAILURES:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"{args.kind} response ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
