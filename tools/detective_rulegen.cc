// detective_rulegen: generates candidate detective rules from example files
// (the paper's §III-A workflow, S1-S3, from the command line).
//
//   detective_rulegen --kb=KB.nt --positives=GOOD.csv --negatives=BAD.csv
//                     --target=COLUMN --out=RULES.dr
//                     [--min-support=0.6] [--paths]
//
// positives: tuples whose values are all correct; negatives: tuples where
// only the target column is wrong. The generated candidates are written to
// --out for the user to review (the paper: "the number is not large so the
// user can manually pick").

#include <cstdio>
#include <string>

#include "common/string_util.h"
#include "core/rule_generation.h"
#include "core/rule_io.h"
#include "kb/ntriples_parser.h"
#include "relation/relation.h"

namespace detective {
namespace {

struct Args {
  std::string kb_path;
  std::string positives_path;
  std::string negatives_path;
  std::string target;
  std::string out_path;
  double min_support = 0.6;
  bool paths = false;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto take = [&](std::string_view name, std::string* out) {
      std::string prefix = std::string("--") + std::string(name) + "=";
      if (StartsWith(arg, prefix)) {
        *out = std::string(arg.substr(prefix.size()));
        return true;
      }
      return false;
    };
    std::string support;
    if (take("kb", &args->kb_path) || take("positives", &args->positives_path) ||
        take("negatives", &args->negatives_path) || take("target", &args->target) ||
        take("out", &args->out_path)) {
      continue;
    }
    if (take("min-support", &support)) {
      if (!ParseDouble(support, &args->min_support)) return false;
      continue;
    }
    if (arg == "--paths") {
      args->paths = true;
      continue;
    }
    std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
    return false;
  }
  return !args->kb_path.empty() && !args->positives_path.empty() &&
         !args->negatives_path.empty() && !args->target.empty() &&
         !args->out_path.empty();
}

int Run(const Args& args) {
  auto kb = ParseNTriplesFile(args.kb_path);
  if (!kb.ok()) {
    std::fprintf(stderr, "error loading KB: %s\n", kb.status().ToString().c_str());
    return 1;
  }
  auto positives = Relation::FromCsvFile(args.positives_path);
  auto negatives = Relation::FromCsvFile(args.negatives_path);
  if (!positives.ok() || !negatives.ok()) {
    std::fprintf(stderr, "error loading examples: %s / %s\n",
                 positives.status().ToString().c_str(),
                 negatives.status().ToString().c_str());
    return 1;
  }
  std::printf("KB: %s\n%zu positive / %zu negative examples, target '%s'\n",
              kb->DebugSummary().c_str(), positives->num_tuples(),
              negatives->num_tuples(), args.target.c_str());

  DiscoveryOptions options;
  options.min_support = args.min_support;
  options.discover_paths = args.paths;
  auto rules = GenerateRules(*kb, *positives, *negatives, args.target, options);
  if (!rules.ok()) {
    std::fprintf(stderr, "rule generation failed: %s\n",
                 rules.status().ToString().c_str());
    return 1;
  }
  if (rules->empty()) {
    std::fprintf(stderr,
                 "no candidate rules found — check that the negatives' wrong "
                 "values carry a KB-expressible semantics%s\n",
                 args.paths ? "" : " (try --paths)");
    return 2;
  }
  Status st = WriteRulesFile(args.out_path, *rules);
  if (!st.ok()) {
    std::fprintf(stderr, "error writing rules: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%zu candidate rule(s) written to %s — review before use:\n\n%s",
              rules->size(), args.out_path.c_str(), FormatRules(*rules).c_str());
  return 0;
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  detective::Args args;
  if (!detective::ParseArgs(argc, argv, &args)) {
    std::fprintf(
        stderr,
        "usage: detective_rulegen --kb=KB.nt --positives=GOOD.csv\n"
        "                         --negatives=BAD.csv --target=COLUMN\n"
        "                         --out=RULES.dr [--min-support=0.6] [--paths]\n");
    return 64;
  }
  return detective::Run(args);
}
