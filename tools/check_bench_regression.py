#!/usr/bin/env python3
"""Compare freshly generated BENCH_*.json files against committed baselines.

Two invocation modes:

  check_bench_regression.py FRESH.json BASELINE.json     # one pair
  check_bench_regression.py --baseline-dir bench/baselines --fresh-dir .

Directory mode pairs every BENCH_*.json in --baseline-dir with the
same-named file in --fresh-dir and compares each pair; a baseline whose
fresh counterpart is missing is a note (a failure under --strict). A fresh
BENCH_*.json with no committed baseline is always an error — a new
benchmark must land together with its baseline, otherwise it would never
be compared and regressions in it would go unnoticed.

All files must follow the schema emitted by bench/bench_util.h
(BenchJsonWriter): {"schema_version": 1, "bench": ..., "entries":
[{"series", "x", "wall_ms", "counters"}, ...]}.

Entries are matched by (series, x). Counters present in both entries must
match the baseline EXACTLY by default (they count work, not time — any
drift is a behaviour change); wall_ms must stay within --wall-tolerance.
Entries only present on one side are reported but are not failures
(benchmarks come and go), unless --strict is given.

Per-metric tolerance bands override the defaults for metrics that are
legitimately noisy. --band PATTERN=TOL is repeatable; PATTERN is an
fnmatch pattern tested against the metric id, which is

  "<series>/wall_ms"   for wall-clock values, and
  "<counter name>"     for counters (e.g. "cache.hits");

TOL is a relative band (0.25 = +/-25%), "inf" (any value passes), or
"skip" (the metric is not compared at all). The first matching band wins.
Example — the shared candidate cache fills in claim order, so its hit/miss
split is nondeterministic under threads while the sum is not:

  --band 'cache.*=inf' --band 'sigindex.queries=0.05'

A few metric shapes are banded BY DEFAULT (DEFAULT_BANDS below): latency
percentiles (*p50_us/*p95_us/*p99_us), throughput (*_rps), shed rates
(*shed_pct), and peak memory (*rss_bytes, +/-10%) are environment
measurements smuggled into counters — p99 on a shared CI runner is
legitimately noisy — so they get a documented generous tolerance instead
of the exact-match counter default. User --band entries are matched first,
so a caller can still tighten, loosen, or skip them.

--update refreshes the baselines instead of comparing: each fresh file is
copied over its baseline counterpart (pair mode: FRESH over BASELINE).
Run the benches on a quiet machine, eyeball the diff, and commit.

Exit status: 0 when everything is within tolerance, 1 on regressions or
malformed input.
"""

import argparse
import fnmatch
import glob
import json
import os
import shutil
import sys


# Default tolerance bands for time-derived counter metrics, tried AFTER any
# user-provided --band entries (first match wins, so user bands override).
# Latency percentiles get wider bands toward the tail: p50 is fairly stable
# under load, p99 is one scheduling hiccup away from doubling.
DEFAULT_BANDS = [
    ("*p50_us", 2.0),
    ("*p95_us", 3.0),
    ("*p99_us", 4.0),
    ("*_rps", 1.0),
    ("*shed_pct", 1.0),
    # Peak RSS is an environment measurement, not a work counter: allocator
    # arena sizing and runner image drift move it a few percent run to run.
    ("*rss_bytes", 0.10),
]


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("schema_version") != 1:
        raise ValueError(f"{path}: schema_version != 1")
    entries = {}
    for entry in doc["entries"]:
        key = (entry["series"], entry["x"])
        if key in entries:
            raise ValueError(f"{path}: duplicate entry for {key}")
        entries[key] = entry
    return doc.get("bench", "?"), entries


def within(fresh, baseline, tolerance):
    """True when fresh is inside [baseline/(1+t), baseline*(1+t)]."""
    if tolerance == float("inf"):
        return True
    if baseline == 0:
        return fresh == 0 if tolerance == 0 else fresh <= tolerance
    ratio = fresh / baseline
    return 1 / (1 + tolerance) <= ratio <= 1 + tolerance


def parse_band(spec):
    """Parses one PATTERN=TOL band; TOL is a float, 'inf', or 'skip'."""
    pattern, sep, value = spec.rpartition("=")
    if not sep or not pattern:
        raise argparse.ArgumentTypeError(f"band {spec!r} is not PATTERN=TOL")
    if value == "skip":
        return pattern, None
    try:
        tolerance = float(value)  # accepts 'inf'
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"band {spec!r}: TOL must be a float, 'inf', or 'skip'"
        ) from error
    if tolerance < 0:
        raise argparse.ArgumentTypeError(f"band {spec!r}: TOL must be >= 0")
    return pattern, tolerance


def tolerance_for(metric_id, default, bands):
    """The first matching band tolerance, else the default.

    User-provided bands are consulted first, then DEFAULT_BANDS, so an
    explicit --band always overrides the built-in latency/throughput bands.
    Returns None when the metric should be skipped entirely.
    """
    for pattern, tolerance in list(bands) + DEFAULT_BANDS:
        if fnmatch.fnmatchcase(metric_id, pattern):
            return tolerance
    return default


def compare(fresh_path, baseline_path, args):
    """Compares one fresh/baseline pair; returns the list of failures."""
    try:
        fresh_name, fresh = load(fresh_path)
        base_name, baseline = load(baseline_path)
    except (OSError, KeyError, ValueError, json.JSONDecodeError) as error:
        return [f"error: {error}"]
    if fresh_name != base_name:
        return [f"bench mismatch: fresh={fresh_name!r} baseline={base_name!r}"]

    failures = []
    compared = 0
    for key in sorted(set(fresh) | set(baseline), key=str):
        series, x = key
        label = f"{series} @ x={x}"
        if key not in fresh or key not in baseline:
            side = "baseline" if key not in fresh else "fresh run"
            print(f"  note: {label} missing from {side}")
            if args.strict:
                failures.append(f"{label}: missing entry")
            continue
        f, b = fresh[key], baseline[key]
        if not args.counters_only:
            wall_tolerance = tolerance_for(
                f"{series}/wall_ms", args.wall_tolerance, args.band
            )
            fw, bw = f["wall_ms"], b["wall_ms"]
            if wall_tolerance is not None and max(fw, bw) >= args.min_wall_ms:
                compared += 1
                if not within(fw, bw, wall_tolerance):
                    failures.append(
                        f"{label}: wall_ms {bw:.4f} -> {fw:.4f} "
                        f"({fw / bw:+.1%} of baseline)" if bw else
                        f"{label}: wall_ms 0 -> {fw:.4f}"
                    )
        shared = set(f.get("counters", {})) & set(b.get("counters", {}))
        for counter in sorted(shared):
            counter_tolerance = tolerance_for(
                counter, args.counter_tolerance, args.band
            )
            if counter_tolerance is None:
                continue
            fc, bc = f["counters"][counter], b["counters"][counter]
            compared += 1
            if not within(fc, bc, counter_tolerance):
                failures.append(f"{label}: counter {counter} {bc} -> {fc}")

    print(
        f"compared {compared} values across {len(set(fresh) & set(baseline))} "
        f"entries of bench {fresh_name!r} (wall +/-{args.wall_tolerance:.0%}, "
        f"counters +/-{args.counter_tolerance:.0%}, {len(args.band)} band(s))"
    )
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", nargs="?", help="newly generated BENCH_*.json")
    parser.add_argument("baseline", nargs="?", help="committed baseline BENCH_*.json")
    parser.add_argument(
        "--baseline-dir",
        help="directory of committed baselines; compares every BENCH_*.json in it",
    )
    parser.add_argument(
        "--fresh-dir",
        default=".",
        help="directory holding the fresh runs for --baseline-dir (default: .)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="legacy alias: sets --wall-tolerance (and --counter-tolerance if "
        "that is not given)",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=None,
        help="allowed relative wall_ms deviation, e.g. 0.25 = +/-25%% (default)",
    )
    parser.add_argument(
        "--counter-tolerance",
        type=float,
        default=None,
        help="allowed relative counter deviation (default 0.0: exact match)",
    )
    parser.add_argument(
        "--band",
        type=parse_band,
        action="append",
        default=[],
        metavar="PATTERN=TOL",
        help="per-metric tolerance override (repeatable; first match wins). "
        "PATTERN fnmatches '<series>/wall_ms' or a counter name; TOL is a "
        "float, 'inf', or 'skip'",
    )
    parser.add_argument(
        "--min-wall-ms",
        type=float,
        default=0.001,
        help="skip wall_ms comparison below this value (clock-noise floor)",
    )
    parser.add_argument(
        "--counters-only",
        action="store_true",
        help="compare only counters, not wall_ms (machine-independent mode)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="entries missing from either side are failures too",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy each fresh file over its baseline instead of comparing",
    )
    args = parser.parse_args()

    # Resolve the tolerance defaults: the legacy --tolerance feeds both knobs
    # unless the specific one is given; otherwise wall +/-25%, counters exact.
    if args.wall_tolerance is None:
        args.wall_tolerance = args.tolerance if args.tolerance is not None else 0.25
    if args.counter_tolerance is None:
        args.counter_tolerance = args.tolerance if args.tolerance is not None else 0.0

    if args.baseline_dir:
        if args.fresh or args.baseline:
            parser.error("--baseline-dir replaces the positional FRESH/BASELINE pair")
        baselines = sorted(glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json")))
        if not baselines:
            print(f"error: no BENCH_*.json under {args.baseline_dir}", file=sys.stderr)
            return 1
        pairs = []
        for baseline_path in baselines:
            fresh_path = os.path.join(args.fresh_dir, os.path.basename(baseline_path))
            if not os.path.exists(fresh_path):
                print(f"  note: no fresh run for {os.path.basename(baseline_path)}")
                if args.strict and not args.update:
                    pairs.append((None, baseline_path))
                continue
            pairs.append((fresh_path, baseline_path))
        baseline_names = {os.path.basename(path) for path in baselines}
        unmatched = sorted(
            path
            for path in glob.glob(os.path.join(args.fresh_dir, "BENCH_*.json"))
            if os.path.basename(path) not in baseline_names
        )
        if unmatched and args.update:
            # New benchmark: --update seeds its first baseline.
            for path in unmatched:
                pairs.append((path, os.path.join(args.baseline_dir,
                                                 os.path.basename(path))))
        elif unmatched:
            for path in unmatched:
                print(
                    f"error: {os.path.basename(path)} has no baseline under "
                    f"{args.baseline_dir}; commit one (run with --update, see "
                    f"docs/performance.md) so it is compared",
                    file=sys.stderr,
                )
            return 1
    else:
        if not args.fresh or not args.baseline:
            parser.error("need FRESH and BASELINE files (or --baseline-dir)")
        pairs = [(args.fresh, args.baseline)]

    if args.update:
        for fresh_path, baseline_path in pairs:
            load(fresh_path)  # refuse to install malformed baselines
            shutil.copyfile(fresh_path, baseline_path)
            print(f"updated {baseline_path} from {fresh_path}")
        print(f"{len(pairs)} baseline(s) refreshed")
        return 0

    failures = []
    for fresh_path, baseline_path in pairs:
        if fresh_path is None:
            failures.append(f"{os.path.basename(baseline_path)}: no fresh run")
            continue
        print(f"== {fresh_path} vs {baseline_path}")
        failures.extend(compare(fresh_path, baseline_path, args))

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
