#!/usr/bin/env python3
"""Compare freshly generated BENCH_*.json files against committed baselines.

Two invocation modes:

  check_bench_regression.py FRESH.json BASELINE.json     # one pair
  check_bench_regression.py --baseline-dir bench/baselines --fresh-dir .

Directory mode pairs every BENCH_*.json in --baseline-dir with the
same-named file in --fresh-dir and compares each pair; a baseline whose
fresh counterpart is missing is a note (a failure under --strict). A fresh
BENCH_*.json with no committed baseline is always an error — a new
benchmark must land together with its baseline, otherwise it would never
be compared and regressions in it would go unnoticed.

All files must follow the schema emitted by bench/bench_util.h
(BenchJsonWriter): {"schema_version": 1, "bench": ..., "entries":
[{"series", "x", "wall_ms", "counters"}, ...]}.

Entries are matched by (series, x). For every matched pair the wall_ms
ratio fresh/baseline must stay within the tolerance band; counters present
in both entries are compared the same way. Entries only present on one
side are reported but are not failures (benchmarks come and go), unless
--strict is given.

Wall-clock numbers move with the host, so CI calls this with a generous
tolerance; the default +/-30% is meant for same-machine comparisons such
as the committed-baseline refresh workflow described in
docs/observability.md.

Exit status: 0 when everything is within tolerance, 1 on regressions or
malformed input.
"""

import argparse
import glob
import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("schema_version") != 1:
        raise ValueError(f"{path}: schema_version != 1")
    entries = {}
    for entry in doc["entries"]:
        key = (entry["series"], entry["x"])
        if key in entries:
            raise ValueError(f"{path}: duplicate entry for {key}")
        entries[key] = entry
    return doc.get("bench", "?"), entries


def within(fresh, baseline, tolerance):
    """True when fresh is inside [baseline/(1+t), baseline*(1+t)]."""
    if baseline == 0:
        return fresh == 0
    ratio = fresh / baseline
    return 1 / (1 + tolerance) <= ratio <= 1 + tolerance


def compare(fresh_path, baseline_path, args):
    """Compares one fresh/baseline pair; returns the list of failures."""
    try:
        fresh_name, fresh = load(fresh_path)
        base_name, baseline = load(baseline_path)
    except (OSError, KeyError, ValueError, json.JSONDecodeError) as error:
        return [f"error: {error}"]
    if fresh_name != base_name:
        return [f"bench mismatch: fresh={fresh_name!r} baseline={base_name!r}"]

    failures = []
    compared = 0
    for key in sorted(set(fresh) | set(baseline), key=str):
        series, x = key
        label = f"{series} @ x={x}"
        if key not in fresh or key not in baseline:
            side = "baseline" if key not in fresh else "fresh run"
            print(f"  note: {label} missing from {side}")
            if args.strict:
                failures.append(f"{label}: missing entry")
            continue
        f, b = fresh[key], baseline[key]
        if not args.counters_only:
            fw, bw = f["wall_ms"], b["wall_ms"]
            if max(fw, bw) >= args.min_wall_ms:
                compared += 1
                if not within(fw, bw, args.tolerance):
                    failures.append(
                        f"{label}: wall_ms {bw:.4f} -> {fw:.4f} "
                        f"({fw / bw:+.1%} of baseline)" if bw else
                        f"{label}: wall_ms 0 -> {fw:.4f}"
                    )
        shared = set(f.get("counters", {})) & set(b.get("counters", {}))
        for counter in sorted(shared):
            fc, bc = f["counters"][counter], b["counters"][counter]
            compared += 1
            if not within(fc, bc, args.tolerance):
                failures.append(f"{label}: counter {counter} {bc} -> {fc}")

    print(
        f"compared {compared} values across {len(set(fresh) & set(baseline))} "
        f"entries of bench {fresh_name!r} (tolerance +/-{args.tolerance:.0%})"
    )
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", nargs="?", help="newly generated BENCH_*.json")
    parser.add_argument("baseline", nargs="?", help="committed baseline BENCH_*.json")
    parser.add_argument(
        "--baseline-dir",
        help="directory of committed baselines; compares every BENCH_*.json in it",
    )
    parser.add_argument(
        "--fresh-dir",
        default=".",
        help="directory holding the fresh runs for --baseline-dir (default: .)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed relative deviation, e.g. 0.30 = +/-30%% (default)",
    )
    parser.add_argument(
        "--min-wall-ms",
        type=float,
        default=0.001,
        help="skip wall_ms comparison below this value (clock-noise floor)",
    )
    parser.add_argument(
        "--counters-only",
        action="store_true",
        help="compare only counters, not wall_ms (machine-independent mode)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="entries missing from either side are failures too",
    )
    args = parser.parse_args()

    if args.baseline_dir:
        if args.fresh or args.baseline:
            parser.error("--baseline-dir replaces the positional FRESH/BASELINE pair")
        baselines = sorted(glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json")))
        if not baselines:
            print(f"error: no BENCH_*.json under {args.baseline_dir}", file=sys.stderr)
            return 1
        pairs = []
        for baseline_path in baselines:
            fresh_path = os.path.join(args.fresh_dir, os.path.basename(baseline_path))
            if not os.path.exists(fresh_path):
                print(f"  note: no fresh run for {os.path.basename(baseline_path)}")
                if args.strict:
                    pairs.append((None, baseline_path))
                continue
            pairs.append((fresh_path, baseline_path))
        baseline_names = {os.path.basename(path) for path in baselines}
        unmatched = sorted(
            os.path.basename(path)
            for path in glob.glob(os.path.join(args.fresh_dir, "BENCH_*.json"))
            if os.path.basename(path) not in baseline_names
        )
        if unmatched:
            for name in unmatched:
                print(
                    f"error: {name} has no baseline under {args.baseline_dir}; "
                    f"commit one (docs/observability.md) so it is compared",
                    file=sys.stderr,
                )
            return 1
    else:
        if not args.fresh or not args.baseline:
            parser.error("need FRESH and BASELINE files (or --baseline-dir)")
        pairs = [(args.fresh, args.baseline)]

    failures = []
    for fresh_path, baseline_path in pairs:
        if fresh_path is None:
            failures.append(f"{os.path.basename(baseline_path)}: no fresh run")
            continue
        print(f"== {fresh_path} vs {baseline_path}")
        failures.extend(compare(fresh_path, baseline_path, args))

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
