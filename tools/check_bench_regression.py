#!/usr/bin/env python3
"""Compare a freshly generated BENCH_*.json against a committed baseline.

Both files must follow the schema emitted by bench/bench_util.h
(BenchJsonWriter): {"schema_version": 1, "bench": ..., "entries":
[{"series", "x", "wall_ms", "counters"}, ...]}.

Entries are matched by (series, x). For every matched pair the wall_ms
ratio fresh/baseline must stay within the tolerance band; counters present
in both entries are compared the same way. Entries only present on one
side are reported but are not failures (benchmarks come and go), unless
--strict is given.

Wall-clock numbers move with the host, so CI calls this with a generous
tolerance; the default +/-30% is meant for same-machine comparisons such
as the committed-baseline refresh workflow described in
docs/observability.md.

Exit status: 0 when everything is within tolerance, 1 on regressions or
malformed input.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("schema_version") != 1:
        raise ValueError(f"{path}: schema_version != 1")
    entries = {}
    for entry in doc["entries"]:
        key = (entry["series"], entry["x"])
        if key in entries:
            raise ValueError(f"{path}: duplicate entry for {key}")
        entries[key] = entry
    return doc.get("bench", "?"), entries


def within(fresh, baseline, tolerance):
    """True when fresh is inside [baseline/(1+t), baseline*(1+t)]."""
    if baseline == 0:
        return fresh == 0
    ratio = fresh / baseline
    return 1 / (1 + tolerance) <= ratio <= 1 + tolerance


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="newly generated BENCH_*.json")
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed relative deviation, e.g. 0.30 = +/-30%% (default)",
    )
    parser.add_argument(
        "--min-wall-ms",
        type=float,
        default=0.001,
        help="skip wall_ms comparison below this value (clock-noise floor)",
    )
    parser.add_argument(
        "--counters-only",
        action="store_true",
        help="compare only counters, not wall_ms (machine-independent mode)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="entries missing from either side are failures too",
    )
    args = parser.parse_args()

    try:
        fresh_name, fresh = load(args.fresh)
        base_name, baseline = load(args.baseline)
    except (OSError, KeyError, ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if fresh_name != base_name:
        print(
            f"error: bench mismatch: fresh={fresh_name!r} baseline={base_name!r}",
            file=sys.stderr,
        )
        return 1

    failures = []
    compared = 0
    for key in sorted(set(fresh) | set(baseline), key=str):
        series, x = key
        label = f"{series} @ x={x}"
        if key not in fresh or key not in baseline:
            side = "baseline" if key not in fresh else "fresh run"
            print(f"  note: {label} missing from {side}")
            if args.strict:
                failures.append(f"{label}: missing entry")
            continue
        f, b = fresh[key], baseline[key]
        if not args.counters_only:
            fw, bw = f["wall_ms"], b["wall_ms"]
            if max(fw, bw) >= args.min_wall_ms:
                compared += 1
                if not within(fw, bw, args.tolerance):
                    failures.append(
                        f"{label}: wall_ms {bw:.4f} -> {fw:.4f} "
                        f"({fw / bw:+.1%} of baseline)" if bw else
                        f"{label}: wall_ms 0 -> {fw:.4f}"
                    )
        shared = set(f.get("counters", {})) & set(b.get("counters", {}))
        for counter in sorted(shared):
            fc, bc = f["counters"][counter], b["counters"][counter]
            compared += 1
            if not within(fc, bc, args.tolerance):
                failures.append(f"{label}: counter {counter} {bc} -> {fc}")

    print(
        f"compared {compared} values across {len(set(fresh) & set(baseline))} "
        f"entries of bench {fresh_name!r} (tolerance +/-{args.tolerance:.0%})"
    )
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
