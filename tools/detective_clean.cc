// detective_clean: the command-line cleaner a downstream user runs.
//
//   detective_clean --kb=yago.nt --rules=nobel.dr --input=dirty.csv
//                   --output=clean.csv [--check-consistency] [--multi-version]
//                   [--algorithm=fast|basic] [--report=report.txt]
//                   [--lint=strict|warn|off] [--lint-json=DIAG.json]
//                   [--explain-json=EXPLAIN.jsonl] [--trace-json=TRACE.json]
//
// Loads an RDF KB (N-Triples subset; *.tsv switches to the TSV triple
// format), a detective-rule file (the DSL of core/rule_io.h) and a CSV
// relation (first row = header); statically lints the rule set against the
// KB (src/analysis); optionally verifies rule consistency on the data;
// repairs every tuple to its fixpoint; writes the repaired CSV and a
// human-readable repair report.
//
// Robustness (docs/robustness.md): --fault-plan (or the DETECTIVE_FAULT_PLAN
// environment variable) arms deterministic fault injection; --deadline-ms /
// --tuple-budget-ms bound the run and each tuple's chase;
// --max-rule-failures trips a per-rule circuit breaker. Tuples that fault or
// run over budget are left unmodified and recorded in the quarantine ledger
// (--quarantine-json); the run then exits 4, "completed degraded".
//
// Exit codes (the contract every tool test asserts; docs/robustness.md):
// 0 success, 1 load/runtime failure, 2 rule set inconsistent on the data
// (--check-consistency), 3 rule set rejected by --lint=strict, 4 completed
// degraded (at least one tuple quarantined), 64 usage.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>

#include "analysis/rule_lint.h"
#include "analysis/stratification.h"
#include "common/fault.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "obs/introspect.h"
#include "obs/progress.h"
#include "core/consistency.h"
#include "core/incremental.h"
#include "core/parallel_repair.h"
#include "core/provenance.h"
#include "core/quarantine.h"
#include "core/repair.h"
#include "core/rule_io.h"
#include "eval/experiment.h"
#include "kb/ntriples_parser.h"
#include "kb/snapshot.h"
#include "relation/relation.h"

namespace detective {
namespace {

constexpr int kExitRuntimeFailure = 1;
constexpr int kExitInconsistent = 2;
constexpr int kExitLintRejected = 3;
constexpr int kExitDegraded = 4;
constexpr int kExitUsage = 64;

struct Args {
  std::string kb_path;
  /// Binary KB snapshot (kb/snapshot.h) instead of --kb text. A snapshot
  /// passed as --kb is magic-sniffed and loads the same way; this flag exists
  /// so scripts can insist on the snapshot path (a rejected snapshot is a
  /// usage error, exit 64, never a silent text re-parse).
  std::string kb_snapshot_path;
  std::string rules_path;
  // Incremental (delta) cleaning (docs/performance.md): --input stays the
  // ORIGINAL dirty relation of the previous run; --delta applies on top.
  std::string delta_path;
  std::string prev_provenance_path;
  std::string prev_quarantine_path;
  std::string input_path;
  std::string output_path;
  std::string report_path;
  std::string metrics_json_path;
  std::string lint_json_path;
  std::string explain_json_path;
  std::string trace_json_path;
  std::string algorithm = "fast";
  std::string lint = "warn";
  /// Stratified chase scheduling (docs/static_analysis.md): auto computes a
  /// stratification certificate and lets the fast repairer elide provably
  /// futile fixpoint sweeps (falling back to the classic loop when the set
  /// cannot be certified); strict refuses to run on certification failure
  /// (exit 3); off never stratifies.
  std::string stratify = "auto";
  bool check_consistency = false;
  bool multi_version = false;
  // Robustness (docs/robustness.md).
  std::string fault_plan;
  std::string quarantine_json_path;
  uint64_t deadline_ms = 0;
  uint64_t tuple_budget_ms = 0;
  uint64_t max_rule_failures = 0;
  /// Repair worker threads (docs/performance.md). 1 = sequential in-process;
  /// >1 = work-stealing ParallelRepair over a shared match plan and candidate
  /// cache; 0 = hardware concurrency.
  uint64_t threads = 1;
  // Live introspection (docs/observability.md "Live endpoints").
  bool introspect = false;
  uint64_t introspect_port = 0;  // 0 = ephemeral, printed at startup
  /// Keeps the introspection server up this long after the run completes,
  /// so a poller can read the final /progress and /metrics documents.
  uint64_t introspect_linger_ms = 0;
  /// Structured log sink: JSONL to this file instead of text to stderr.
  std::string log_json_path;
  /// Print every registered metric name at end of run (docs drift check).
  bool list_metrics = false;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: detective_clean --kb=KB.nt --rules=RULES.dr --input=IN.csv\n"
      "                       --output=OUT.csv [--report=REPORT.txt]\n"
      "                       [--algorithm=fast|basic] [--check-consistency]\n"
      "                       [--multi-version] [--metrics-json=METRICS.json]\n"
      "                       [--lint=strict|warn|off] [--lint-json=DIAG.json]\n"
      "                       [--stratify=off|auto|strict]\n"
      "                       [--explain-json=EXPLAIN.jsonl]\n"
      "                       [--trace-json=TRACE.json]\n\n"
      "  --kb                RDF knowledge base (N-Triples subset; a .tsv\n"
      "                      extension selects tab-separated triples; a binary\n"
      "                      snapshot is magic-sniffed and mmap-loaded)\n"
      "  --kb-snapshot       binary KB snapshot built by detective_kb_build;\n"
      "                      a rejected snapshot (bad magic/version/checksum)\n"
      "                      exits %d. Exactly one of --kb/--kb-snapshot\n"
      "  --rules             detective rules in the rule DSL\n"
      "  --input/--output    CSV relation, first record is the header\n"
      "  --delta             incremental cleaning: CSV of updates/inserts on\n"
      "                      top of --input (header: 'row' + schema columns;\n"
      "                      empty row = append). Re-chases only affected\n"
      "                      rows; output is byte-identical to a full clean\n"
      "  --prev-provenance   the previous run's --explain-json log (required\n"
      "                      with --delta; replayed onto unaffected rows)\n"
      "  --prev-quarantine   the previous run's --quarantine-json ledger\n"
      "                      (those rows re-chase)\n"
      "  --check-consistency run the dataset-specific consistency check and\n"
      "                      refuse to repair on divergence (exit %d)\n"
      "  --multi-version     emit one output row per repair fixpoint\n"
      "  --metrics-json      dump the per-stage metrics snapshot (KB lookups,\n"
      "                      rule matches, chase rounds, timers) as JSON\n"
      "  --lint              static rule-set analysis at load time (default\n"
      "                      warn): strict refuses to run on error-level\n"
      "                      findings (exit %d), warn prints them, off skips\n"
      "  --stratify          stratum-aware chase scheduling (default auto):\n"
      "                      auto certifies the rule set and skips provably\n"
      "                      futile fixpoint sweeps (output byte-identical),\n"
      "                      strict exits %d unless the set certifies fully\n"
      "                      acyclic, off runs the classic loop\n"
      "  --lint-json         where to write the lint diagnostics JSON\n"
      "                      (default: OUT.csv.lint.json, written whenever\n"
      "                      the lint finds anything)\n"
      "  --explain-json      record repair provenance (one JSON line per\n"
      "                      cell change, naming the rule, node bindings and\n"
      "                      KB evidence edges; query with detective_explain)\n"
      "  --trace-json        record a span-level timeline and write it in\n"
      "                      Chrome trace-event format (chrome://tracing,\n"
      "                      Perfetto)\n"
      "  --fault-plan        arm deterministic fault injection (also read\n"
      "                      from $DETECTIVE_FAULT_PLAN); grammar in\n"
      "                      docs/robustness.md\n"
      "  --deadline-ms       whole-run deadline; remaining tuples quarantine\n"
      "  --tuple-budget-ms   per-tuple chase budget\n"
      "  --max-rule-failures circuit breaker: disable a rule after this many\n"
      "                      quarantined tuples blame it, re-chase its victims\n"
      "  --quarantine-json   write the quarantine ledger (one JSON line per\n"
      "                      set-aside tuple); any quarantine exits %d\n"
      "                      (completed degraded)\n"
      "  --threads           repair worker threads (default 1 = sequential;\n"
      "                      0 = hardware concurrency). Workers share one\n"
      "                      frozen match plan and candidate cache; output is\n"
      "                      identical at every thread count\n"
      "  --introspect        serve live introspection on 127.0.0.1:PORT\n"
      "                      (0 = ephemeral, printed at startup): /healthz,\n"
      "                      /metrics (OpenMetrics), /metrics.json, /progress,\n"
      "                      /trace. Port already in use exits %d\n"
      "  --introspect-linger-ms\n"
      "                      keep the server up this long after the run so a\n"
      "                      poller can read the final documents\n"
      "  --log-json          write structured logs as JSONL to FILE instead\n"
      "                      of text to stderr (errors still mirror there)\n"
      "  --list-metrics      after the run, print one 'counter NAME' /\n"
      "                      'timer NAME' line per registered metric\n",
      kExitUsage, kExitInconsistent, kExitLintRejected, kExitLintRejected,
      kExitDegraded, kExitUsage);
}

bool ParseArgs(int argc, char** argv, Args* args) {
  bool numeric_ok = true;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto take = [&](std::string_view name, std::string* out) {
      std::string prefix = std::string("--") + std::string(name) + "=";
      if (StartsWith(arg, prefix)) {
        *out = std::string(arg.substr(prefix.size()));
        return true;
      }
      return false;
    };
    auto take_u64 = [&](std::string_view name, uint64_t* out) {
      std::string raw;
      if (!take(name, &raw)) return false;
      if (!ParseUint64(raw, out)) {
        std::fprintf(stderr, "--%.*s expects a non-negative integer, got '%s'\n",
                     static_cast<int>(name.size()), name.data(), raw.c_str());
        numeric_ok = false;
      }
      return true;
    };
    if (take("kb", &args->kb_path) ||
        take("kb-snapshot", &args->kb_snapshot_path) ||
        take("rules", &args->rules_path) ||
        take("delta", &args->delta_path) ||
        take("prev-provenance", &args->prev_provenance_path) ||
        take("prev-quarantine", &args->prev_quarantine_path) ||
        take("input", &args->input_path) || take("output", &args->output_path) ||
        take("report", &args->report_path) || take("algorithm", &args->algorithm) ||
        take("metrics-json", &args->metrics_json_path) ||
        take("lint", &args->lint) || take("lint-json", &args->lint_json_path) ||
        take("stratify", &args->stratify) ||
        take("explain-json", &args->explain_json_path) ||
        take("trace-json", &args->trace_json_path) ||
        take("fault-plan", &args->fault_plan) ||
        take("quarantine-json", &args->quarantine_json_path) ||
        take_u64("deadline-ms", &args->deadline_ms) ||
        take_u64("tuple-budget-ms", &args->tuple_budget_ms) ||
        take_u64("max-rule-failures", &args->max_rule_failures) ||
        take_u64("threads", &args->threads) ||
        take_u64("introspect-linger-ms", &args->introspect_linger_ms) ||
        take("log-json", &args->log_json_path)) {
      continue;
    }
    if (take_u64("introspect", &args->introspect_port)) {
      args->introspect = true;
      if (args->introspect_port > 65535) {
        std::fprintf(stderr, "--introspect expects a port in [0, 65535]\n");
        numeric_ok = false;
      }
      continue;
    }
    if (arg == "--check-consistency") {
      args->check_consistency = true;
    } else if (arg == "--multi-version") {
      args->multi_version = true;
    } else if (arg == "--list-metrics") {
      args->list_metrics = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return false;
    }
  }
  if (args->rules_path.empty() || args->input_path.empty() ||
      args->output_path.empty()) {
    return false;
  }
  if (args->kb_path.empty() == args->kb_snapshot_path.empty()) {
    std::fprintf(stderr, "exactly one of --kb and --kb-snapshot is required\n");
    return false;
  }
  if (args->algorithm != "fast" && args->algorithm != "basic") {
    std::fprintf(stderr, "--algorithm must be 'fast' or 'basic'\n");
    return false;
  }
  if (args->lint != "strict" && args->lint != "warn" && args->lint != "off") {
    std::fprintf(stderr, "--lint must be 'strict', 'warn', or 'off'\n");
    return false;
  }
  if (args->stratify != "auto" && args->stratify != "strict" &&
      args->stratify != "off") {
    std::fprintf(stderr, "--stratify must be 'off', 'auto', or 'strict'\n");
    return false;
  }
  if (!numeric_ok) return false;
  // Incremental (delta) cleaning replays the previous run's provenance, so it
  // needs that log; it rejects the run-global couplings (breaker, run
  // deadline) whose outcomes depend on rows it will not re-chase.
  if (args->delta_path.empty() &&
      (!args->prev_provenance_path.empty() ||
       !args->prev_quarantine_path.empty())) {
    std::fprintf(stderr,
                 "--prev-provenance/--prev-quarantine only make sense with "
                 "--delta\n");
    return false;
  }
  if (!args->delta_path.empty()) {
    if (args->prev_provenance_path.empty()) {
      std::fprintf(stderr, "--delta requires --prev-provenance\n");
      return false;
    }
    if (args->multi_version || args->algorithm == "basic") {
      std::fprintf(stderr,
                   "--delta requires --algorithm=fast without "
                   "--multi-version\n");
      return false;
    }
    if (args->max_rule_failures > 0 || args->deadline_ms > 0) {
      std::fprintf(stderr,
                   "--delta cannot combine with --max-rule-failures or "
                   "--deadline-ms (both couple rows across the whole run; "
                   "see docs/performance.md)\n");
      return false;
    }
  }
  // The guarded repair path (deadlines, budgets, breaker, quarantine) is only
  // implemented for the default fast single-version pipeline.
  const bool robustness_requested =
      args->deadline_ms > 0 || args->tuple_budget_ms > 0 ||
      args->max_rule_failures > 0 || !args->quarantine_json_path.empty();
  if (robustness_requested &&
      (args->multi_version || args->algorithm == "basic")) {
    std::fprintf(stderr,
                 "--deadline-ms/--tuple-budget-ms/--max-rule-failures/"
                 "--quarantine-json require --algorithm=fast without "
                 "--multi-version\n");
    return false;
  }
  // Parallel repair drives FastRepairer workers; the basic algorithm and the
  // multi-version expansion stay sequential.
  if (args->threads != 1 && (args->multi_version || args->algorithm == "basic")) {
    std::fprintf(stderr,
                 "--threads requires --algorithm=fast without --multi-version\n");
    return false;
  }
  return true;
}

/// Writes the lint diagnostics JSON and returns the path it went to (empty on
/// write failure). CI log lines reference this path.
std::string WriteLintJson(const analysis::DiagnosticReport& report,
                          const Args& args) {
  std::string path = args.lint_json_path.empty()
                         ? args.output_path + ".lint.json"
                         : args.lint_json_path;
  std::ofstream out(path, std::ios::trunc);
  out << report.ToJson();
  if (!out) {
    logs::Error("clean", "lint_write_failed",
                "error writing lint diagnostics to " + path, {{"path", path}});
    return std::string();
  }
  return path;
}

int Run(const Args& args) {
  // ---- Structured log sink (src/common/log.h) ----
  if (!args.log_json_path.empty()) {
    Status log_status = logs::OpenJsonFile(args.log_json_path);
    if (!log_status.ok()) {
      logs::Error("clean", "log_sink_failed", log_status.ToString());
      return kExitRuntimeFailure;
    }
  }

  // ---- Arm fault injection (docs/robustness.md) ----
  std::string fault_spec = args.fault_plan;
  if (fault_spec.empty()) {
    if (const char* env = std::getenv("DETECTIVE_FAULT_PLAN")) fault_spec = env;
  }
  if (!fault_spec.empty()) {
    auto plan = fault::FaultPlan::Parse(fault_spec);
    if (!plan.ok()) {
      logs::Error("clean", "bad_fault_plan",
                  "bad fault plan: " + plan.status().ToString());
      return kExitUsage;
    }
    fault::Injector::Global().Arm(*plan);
    std::printf("Fault plan armed: %s\n", plan->ToString().c_str());
#if !DETECTIVE_FAULT_ENABLED
    // The "DETECTIVE_FAULT=OFF" stderr note is load-bearing: CI greps it.
    logs::Warn("clean", "fault_compiled_out",
               "note: built with DETECTIVE_FAULT=OFF; the plan never fires");
#endif
  }

  if (!args.trace_json_path.empty()) {
    trace::Registry::Global().Start();
#if !DETECTIVE_METRICS_ENABLED
    logs::Warn("clean", "metrics_compiled_out",
               "note: built with DETECTIVE_METRICS=OFF; the trace is empty");
#endif
  }

  // ---- Live introspection (docs/observability.md "Live endpoints") ----
  obs::IntrospectServer introspect_server(
      obs::IntrospectOptions{static_cast<uint16_t>(args.introspect_port)});
  if (args.introspect) {
    if (obs::ShouldDisableUnderFaultPlan()) {
      // A chaos run aiming at obs.* must not get fault-distorted answers;
      // the pipeline itself runs unchanged.
      logs::Warn("obs", "introspect_disabled",
                 "introspection disabled: the armed fault plan targets "
                 "obs.* sites",
                 {{"site", obs::kObsFaultSite}});
    } else {
      Status serve_status = introspect_server.Start();
      if (!serve_status.ok()) {
        // Port in use (or any bind failure) is a usage error: the operator
        // asked for an address this process cannot have.
        logs::Error("obs", "introspect_start_failed",
                    "cannot start introspection server: " +
                        serve_status.ToString());
        return kExitUsage;
      }
      // Parsed by pollers (and the CI smoke job) to find an ephemeral port.
      std::printf("introspection: http://127.0.0.1:%u (healthz metrics "
                  "metrics.json progress trace)\n",
                  static_cast<unsigned>(introspect_server.port()));
      // /trace should show the live timeline even without --trace-json.
      if (args.trace_json_path.empty()) trace::Registry::Global().Start();
    }
  }

  obs::ProgressTracker& progress = obs::ProgressTracker::Global();
  progress.BeginRun(/*rows_total=*/0, args.deadline_ms);

  // ---- Load inputs ----
  // --kb-snapshot insists on the binary format; a --kb file is magic-sniffed
  // so a snapshot passed there loads the fast path too (sniff IO errors fall
  // through to the text loader, which reports them properly).
  const bool snapshot_requested = !args.kb_snapshot_path.empty();
  const std::string& kb_input =
      snapshot_requested ? args.kb_snapshot_path : args.kb_path;
  bool kb_is_snapshot = snapshot_requested;
  if (!snapshot_requested) {
    if (auto sniff = FileHasKbSnapshotMagic(kb_input); sniff.ok()) {
      kb_is_snapshot = *sniff;
    }
  }
  auto kb = [&] {
    DETECTIVE_TRACE_SPAN("clean.load_kb");
    return kb_is_snapshot ? LoadKbSnapshot(kb_input) : LoadKbFile(kb_input);
  }();
  if (!kb.ok()) {
    logs::Error("clean", "kb_load_failed",
                "error loading KB: " + kb.status().ToString(),
                {{"path", kb_input}});
    // A rejected snapshot (bad magic/version/checksum/structure) is a usage
    // error — the operator pointed us at a file this build cannot accept.
    return kb_is_snapshot && kb.status().IsParseError() ? kExitUsage
                                                        : kExitRuntimeFailure;
  }
  std::printf("KB: %s (%s)\n", kb->DebugSummary().c_str(),
              kb_is_snapshot ? "snapshot" : "text");

  auto rules = ParseRulesFile(args.rules_path);
  if (!rules.ok()) {
    logs::Error("clean", "rules_load_failed",
                "error loading rules: " + rules.status().ToString(),
                {{"path", args.rules_path}});
    return kExitRuntimeFailure;
  }
  std::printf("Rules: %zu loaded from %s\n", rules->size(), args.rules_path.c_str());

  // ---- Static lint gate (paper §III-C ahead-of-time; docs/static_analysis.md) ----
  if (args.lint != "off") {
    DETECTIVE_TRACE_SPAN("clean.lint");
    analysis::DiagnosticReport lint = analysis::LintRules(*rules, *kb);
    lint.SortBySeverity();
    std::printf("Lint: %s\n", lint.Summary().c_str());
    if (!lint.empty()) {
      logs::Warn("lint", "findings", lint.ToString(),
                 {{"errors", lint.errors()}});
      std::string json_path = WriteLintJson(lint, args);
      if (!json_path.empty()) {
        std::printf("lint diagnostics written to %s\n", json_path.c_str());
      }
      if (args.lint == "strict" && !lint.clean()) {
        logs::Error("lint", "strict_rejected",
                    "refusing to run: " + std::to_string(lint.errors()) +
                        " error-level lint finding(s) under --lint=strict "
                        "(diagnostics: " +
                        json_path + ")");
        return kExitLintRejected;
      }
    }
  }

  auto relation = Relation::FromCsvFile(args.input_path);
  if (!relation.ok()) {
    logs::Error("clean", "relation_load_failed",
                "error loading relation: " + relation.status().ToString(),
                {{"path", args.input_path}});
    return kExitRuntimeFailure;
  }
  std::printf("Relation: %zu tuples x %zu columns\n", relation->num_tuples(),
              relation->schema().num_columns());

  // ---- Incremental (delta) cleaning: apply the delta and plan the closure
  // before anything downstream (consistency, repair, report) sees the
  // relation, so every stage operates on the delta-applied rows.
  const bool incremental = !args.delta_path.empty();
  ProvenanceLog prev_provenance;
  QuarantineLog prev_quarantine;
  const QuarantineLog* prev_quarantine_ptr = nullptr;
  std::optional<IncrementalPlan> inc_plan;
  if (incremental) {
    DETECTIVE_TRACE_SPAN("clean.plan_incremental");
    auto delta = LoadDeltaFile(args.delta_path, relation->schema());
    if (!delta.ok()) {
      logs::Error("clean", "delta_load_failed",
                  "error loading delta: " + delta.status().ToString(),
                  {{"path", args.delta_path}});
      return kExitRuntimeFailure;
    }
    auto read_jsonl = [](const std::string& path,
                         std::string* out) -> Status {
      std::ifstream in(path, std::ios::binary);
      if (!in) return Status::IOError("cannot open '", path, "'");
      std::ostringstream buffer;
      buffer << in.rdbuf();
      *out = buffer.str();
      return Status::OK();
    };
    std::string prev_text;
    if (Status read_st = read_jsonl(args.prev_provenance_path, &prev_text);
        !read_st.ok()) {
      logs::Error("clean", "prev_provenance_load_failed", read_st.ToString(),
                  {{"path", args.prev_provenance_path}});
      return kExitRuntimeFailure;
    }
    auto prev_log = ProvenanceLog::FromJsonLines(prev_text);
    if (!prev_log.ok()) {
      logs::Error("clean", "prev_provenance_load_failed",
                  "error parsing previous provenance: " +
                      prev_log.status().ToString(),
                  {{"path", args.prev_provenance_path}});
      return kExitRuntimeFailure;
    }
    prev_provenance = std::move(*prev_log);
    if (!args.prev_quarantine_path.empty()) {
      std::string quarantine_text;
      if (Status read_st =
              read_jsonl(args.prev_quarantine_path, &quarantine_text);
          !read_st.ok()) {
        logs::Error("clean", "prev_quarantine_load_failed", read_st.ToString(),
                    {{"path", args.prev_quarantine_path}});
        return kExitRuntimeFailure;
      }
      auto prev_ledger = QuarantineLog::FromJsonLines(quarantine_text);
      if (!prev_ledger.ok()) {
        logs::Error("clean", "prev_quarantine_load_failed",
                    "error parsing previous quarantine: " +
                        prev_ledger.status().ToString(),
                    {{"path", args.prev_quarantine_path}});
        return kExitRuntimeFailure;
      }
      prev_quarantine = std::move(*prev_ledger);
      prev_quarantine_ptr = &prev_quarantine;
    }
    auto plan = PlanIncremental(*delta, &*relation, prev_provenance,
                                prev_quarantine_ptr);
    if (!plan.ok()) {
      logs::Error("clean", "incremental_plan_failed",
                  "cannot plan incremental run: " + plan.status().ToString());
      return kExitRuntimeFailure;
    }
    inc_plan = std::move(*plan);
    std::printf(
        "Delta: %zu update(s), %zu insert(s) -> %zu of %zu rows affected "
        "(%zu delta, %zu closure, %zu prev-quarantined)\n",
        delta->num_updates, delta->num_inserts, inc_plan->affected_rows.size(),
        relation->num_tuples(), inc_plan->delta_rows, inc_plan->closure_rows,
        inc_plan->quarantined_rows);
  }
  progress.SetRowsTotal(relation->num_tuples());
  progress.SetPhase(obs::Phase::kIndex);

  // ---- Optional consistency gate (paper §III-C) ----
  if (args.check_consistency) {
    DETECTIVE_TRACE_SPAN("clean.consistency");
    auto report = CheckConsistency(*kb, *rules, *relation);
    if (!report.ok()) {
      logs::Error("clean", "consistency_check_failed",
                  "consistency check failed: " + report.status().ToString());
      return kExitRuntimeFailure;
    }
    std::printf("Consistency: %s\n", report->ToString().c_str());
    if (!report->consistent) {
      logs::Error("clean", "inconsistent_rules",
                  "refusing to repair with an inconsistent rule set");
      return kExitInconsistent;
    }
  }

  // ---- Stratification (docs/static_analysis.md) ----
  // The certificate's schedule licenses the fast repairer to elide provably
  // futile confirming sweeps; the repaired bytes are identical either way.
  // `strata` must outlive the repair: RepairOptions borrows the schedule.
  std::optional<analysis::Stratification> strata;
  if (args.stratify != "off") {
    DETECTIVE_TRACE_SPAN("clean.stratify");
    auto computed = analysis::ComputeStratification(*rules, *kb);
    if (computed.ok()) {
      strata = std::move(*computed);
      std::printf(
          "Strata: %zu stratum/strata (%zu cyclic), %zu pair(s) refuted\n",
          strata->certificate.strata.size(),
          strata->certificate.num_cyclic_strata(), strata->pairs_refuted);
      // strict demands a *full* stratification: a cyclic stratum means some
      // interaction cycle survived every refutation attempt, i.e. the set
      // cannot be certified confluent-by-strata. auto still runs it (the
      // schedule is sound either way — intra-stratum sweeps just persist).
      if (args.stratify == "strict" &&
          strata->certificate.num_cyclic_strata() > 0) {
        logs::Error(
            "clean", "stratify_strict_rejected",
            "refusing to run: " +
                std::to_string(strata->certificate.num_cyclic_strata()) +
                " stratum/strata remain cyclic under --stratify=strict "
                "(rule interaction cycles could not be statically refuted)");
        return kExitLintRejected;
      }
      progress.SetStrataTotal(strata->certificate.strata.size());
    } else if (args.stratify == "strict") {
      logs::Error("clean", "stratify_strict_rejected",
                  "refusing to run: rule set cannot be certified under "
                  "--stratify=strict: " +
                      computed.status().ToString());
      return kExitLintRejected;
    } else {
      logs::Warn("clean", "stratify_unavailable",
                 "stratification unavailable (" +
                     computed.status().ToString() +
                     "); running the classic chase loop");
    }
  }

  // ---- Repair ----
  double start = NowSeconds();
  Relation repaired = *relation;
  RepairStats stats;
  IncrementalStats inc_stats;
  size_t extra_versions = 0;
  ProvenanceLog provenance;
  ProvenanceLog* provenance_sink =
      args.explain_json_path.empty() ? nullptr : &provenance;
  QuarantineLog quarantine;
  RepairOptions repair_options;
  repair_options.deadline_ms = args.deadline_ms;
  repair_options.tuple_budget_ms = args.tuple_budget_ms;
  repair_options.max_rule_failures = args.max_rule_failures;
  if (strata.has_value()) repair_options.schedule = &strata->schedule;
  const bool guarded = GuardedRepairRequested(repair_options) ||
                       !args.quarantine_json_path.empty();

  progress.SetPhase(obs::Phase::kRepair);
  {
    DETECTIVE_TRACE_SPAN("clean.repair",
                         {"rows", static_cast<int64_t>(relation->num_tuples())});
    if (args.multi_version) {
      Relation expanded{relation->schema()};
      FastRepairer repairer(*kb, relation->schema(), *rules);
      Status st = repairer.Init();
      if (!st.ok()) {
        logs::Error("clean", "init_failed", "init failed: " + st.ToString());
        return kExitRuntimeFailure;
      }
      repairer.engine().set_provenance(provenance_sink);
      for (size_t row = 0; row < relation->num_tuples(); ++row) {
        repairer.engine().set_current_row(row);
        std::vector<Tuple> versions =
            repairer.RepairMultiVersion(relation->tuple(row));
        extra_versions += versions.size() - 1;
        for (Tuple& version : versions) expanded.Append(std::move(version));
      }
      stats = repairer.stats();
      repaired = std::move(expanded);
    } else if (args.algorithm == "basic") {
      RepairOptions options;
      options.matcher.use_signature_index = false;
      options.matcher.use_value_memo = false;
      BasicRepairer repairer(*kb, relation->schema(), *rules, options);
      Status st = repairer.Init();
      if (!st.ok()) {
        logs::Error("clean", "init_failed", "init failed: " + st.ToString());
        return kExitRuntimeFailure;
      }
      repairer.engine().set_provenance(provenance_sink);
      repairer.RepairRelation(&repaired);
      stats = repairer.stats();
    } else if (incremental) {
      IncrementalOptions inc_options;
      inc_options.repair = repair_options;
      inc_options.num_threads = args.threads;
      inc_options.provenance = provenance_sink;
      inc_options.quarantine = guarded ? &quarantine : nullptr;
      auto result = IncrementalRepair(*kb, *rules, &repaired, *inc_plan,
                                      std::move(prev_provenance),
                                      prev_quarantine_ptr, inc_options);
      if (!result.ok()) {
        logs::Error("clean", "incremental_failed",
                    "incremental repair failed: " + result.status().ToString());
        return kExitRuntimeFailure;
      }
      inc_stats = *result;
      stats = inc_stats.repair;
    } else if (args.threads != 1) {
      ParallelRepairOptions parallel_options;
      parallel_options.repair = repair_options;
      parallel_options.num_threads = args.threads;
      parallel_options.provenance = provenance_sink;
      parallel_options.quarantine = guarded ? &quarantine : nullptr;
      auto result = ParallelRepair(*kb, *rules, &repaired, parallel_options);
      if (!result.ok()) {
        logs::Error("clean", "init_failed",
                    "init failed: " + result.status().ToString());
        return kExitRuntimeFailure;
      }
      stats = *result;
    } else {
      FastRepairer repairer(*kb, relation->schema(), *rules, repair_options);
      Status st = repairer.Init();
      if (!st.ok()) {
        logs::Error("clean", "init_failed", "init failed: " + st.ToString());
        return kExitRuntimeFailure;
      }
      repairer.engine().set_provenance(provenance_sink);
      if (guarded) {
        repairer.RepairRelationGuarded(&repaired, &quarantine);
      } else {
        repairer.RepairRelation(&repaired);
      }
      stats = repairer.stats();
    }
  }
  double elapsed = NowSeconds() - start;

  // ---- Write output + report ----
  progress.SetPhase(obs::Phase::kWrite);
  Status st = [&] {
    DETECTIVE_TRACE_SPAN("clean.write_output");
    return repaired.ToCsvFile(args.output_path);
  }();
  if (!st.ok()) {
    logs::Error("clean", "output_write_failed",
                "error writing output: " + st.ToString(),
                {{"path", args.output_path}});
    return kExitRuntimeFailure;
  }

  std::string summary;
  {
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "repaired %zu tuples in %.3fs: %zu cells repaired, %zu cells "
                  "marked correct, %zu rule applications",
                  stats.tuples_processed, elapsed, stats.repairs,
                  stats.cells_marked, stats.rule_applications);
    summary = buffer;
    if (args.threads != 1) {
      std::snprintf(buffer, sizeof(buffer), " (%llu threads, %zu chunks stolen)",
                    static_cast<unsigned long long>(args.threads),
                    stats.chunks_stolen);
      summary += buffer;
    }
    if (args.multi_version) {
      std::snprintf(buffer, sizeof(buffer), ", %zu extra versions emitted",
                    extra_versions);
      summary += buffer;
    }
    if (incremental) {
      std::snprintf(buffer, sizeof(buffer),
                    ", %zu row(s) re-chased + %zu replayed (%zu records)",
                    inc_stats.rows_rechased, inc_stats.rows_replayed,
                    inc_stats.replayed_records);
      summary += buffer;
    }
    if (strata.has_value()) {
      std::snprintf(buffer, sizeof(buffer), ", %zu fixpoint sweeps elided",
                    stats.rounds_skipped);
      summary += buffer;
    }
    if (guarded) {
      // quarantine.Rows() is the final ledger; stats.tuples_quarantined counts
      // quarantine *events* and can exceed it when the breaker re-chases rows.
      std::snprintf(buffer, sizeof(buffer),
                    ", %zu tuples quarantined (%zu of %zu rows clean or "
                    "repaired)",
                    quarantine.Rows().size(),
                    repaired.num_tuples() - quarantine.Rows().size(),
                    repaired.num_tuples());
      summary += buffer;
    }
  }
  std::printf("%s\n", summary.c_str());

  if (!args.report_path.empty()) {
    std::ofstream report(args.report_path, std::ios::trunc);
    report << summary << "\n\nPer-cell repairs (row, column, before -> after):\n";
    for (size_t row = 0; row < repaired.num_tuples(); ++row) {
      const Tuple& tuple = repaired.tuple(row);
      for (ColumnIndex c = 0; c < tuple.size(); ++c) {
        if (tuple.WasRepaired(c)) {
          report << "  " << row << ", " << repaired.schema().column_name(c) << ", '"
                 << tuple.OriginalValue(c) << "' -> '" << tuple.value(c) << "'\n";
        }
      }
    }
    if (!report) {
      logs::Error("clean", "report_write_failed",
                  "error writing report to " + args.report_path,
                  {{"path", args.report_path}});
      return kExitRuntimeFailure;
    }
    std::printf("report written to %s\n", args.report_path.c_str());
  }

  if (!args.explain_json_path.empty()) {
    Status explain_status = provenance.WriteJsonLines(args.explain_json_path);
    if (!explain_status.ok()) {
      logs::Error("clean", "explain_write_failed", explain_status.ToString(),
                  {{"path", args.explain_json_path}});
      return kExitRuntimeFailure;
    }
    std::printf("provenance written to %s (%zu records)\n",
                args.explain_json_path.c_str(), provenance.size());
  }

  if (!args.trace_json_path.empty()) {
    trace::Registry& tracer = trace::Registry::Global();
    tracer.Stop();
    std::vector<trace::Event> events = tracer.Collect();
    Status trace_status = trace::WriteChromeTraceJson(events, args.trace_json_path);
    if (!trace_status.ok()) {
      logs::Error("clean", "trace_write_failed", trace_status.ToString(),
                  {{"path", args.trace_json_path}});
      return kExitRuntimeFailure;
    }
    std::printf("trace written to %s (%zu events, %llu dropped)\n",
                args.trace_json_path.c_str(), events.size(),
                static_cast<unsigned long long>(tracer.dropped_events()));
  }

  if (!args.metrics_json_path.empty()) {
    metrics::MetricsSnapshot snapshot = metrics::Registry::Global().Snapshot();
    std::ofstream out(args.metrics_json_path, std::ios::trunc);
    out << snapshot.ToJson();
    if (!out) {
      logs::Error("clean", "metrics_write_failed",
                  "error writing metrics to " + args.metrics_json_path,
                  {{"path", args.metrics_json_path}});
      return kExitRuntimeFailure;
    }
    std::printf("metrics written to %s (%zu counters, %zu timers)\n",
                args.metrics_json_path.c_str(), snapshot.counters.size(),
                snapshot.timers.size());
#if !DETECTIVE_METRICS_ENABLED
    logs::Warn("clean", "metrics_compiled_out",
               "note: built with DETECTIVE_METRICS=OFF; the snapshot is empty");
#endif
  }

  if (!args.quarantine_json_path.empty()) {
    Status quarantine_status =
        quarantine.WriteJsonLines(args.quarantine_json_path);
    if (!quarantine_status.ok()) {
      logs::Error("clean", "quarantine_write_failed",
                  quarantine_status.ToString(),
                  {{"path", args.quarantine_json_path}});
      return kExitRuntimeFailure;
    }
    std::printf("quarantine written to %s (%zu records, %zu rows)\n",
                args.quarantine_json_path.c_str(), quarantine.size(),
                quarantine.Rows().size());
  }

  int exit_code = 0;
  if (!quarantine.empty()) {
    logs::Error("clean", "degraded",
                "completed degraded: " +
                    std::to_string(quarantine.Rows().size()) +
                    " tuples quarantined (left unmodified)",
                {{"rows", quarantine.Rows().size()}});
    exit_code = kExitDegraded;
  }

  // done=true + frozen elapsed must be observable before any linger window.
  progress.EndRun();

  if (args.list_metrics) {
    // Only sites whose code path executed are registered, so the listing
    // reflects this run — the docs drift check runs a representative clean.
    for (const std::string& name : metrics::Registry::Global().CounterNames()) {
      std::printf("counter %s\n", name.c_str());
    }
    for (const std::string& name : metrics::Registry::Global().TimerNames()) {
      std::printf("timer %s\n", name.c_str());
    }
  }

  if (introspect_server.running() && args.introspect_linger_ms > 0) {
    std::fflush(stdout);  // pollers wait on the "introspection:" line
    std::this_thread::sleep_for(
        std::chrono::milliseconds(args.introspect_linger_ms));
  }
  introspect_server.Stop();
  logs::CloseJsonFile();
  return exit_code;
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  detective::Args args;
  if (!detective::ParseArgs(argc, argv, &args)) {
    detective::PrintUsage();
    return detective::kExitUsage;
  }
  return detective::Run(args);
}
