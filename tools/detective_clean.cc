// detective_clean: the command-line cleaner a downstream user runs.
//
//   detective_clean --kb=yago.nt --rules=nobel.dr --input=dirty.csv
//                   --output=clean.csv [--check-consistency] [--multi-version]
//                   [--algorithm=fast|basic] [--report=report.txt]
//
// Loads an RDF KB (N-Triples subset; *.tsv switches to the TSV triple
// format), a detective-rule file (the DSL of core/rule_io.h) and a CSV
// relation (first row = header); optionally verifies rule consistency on the
// data; repairs every tuple to its fixpoint; writes the repaired CSV and a
// human-readable repair report.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/metrics.h"
#include "common/string_util.h"
#include "core/consistency.h"
#include "core/repair.h"
#include "core/rule_io.h"
#include "eval/experiment.h"
#include "kb/ntriples_parser.h"
#include "relation/relation.h"

namespace detective {
namespace {

struct Args {
  std::string kb_path;
  std::string rules_path;
  std::string input_path;
  std::string output_path;
  std::string report_path;
  std::string metrics_json_path;
  std::string algorithm = "fast";
  bool check_consistency = false;
  bool multi_version = false;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: detective_clean --kb=KB.nt --rules=RULES.dr --input=IN.csv\n"
      "                       --output=OUT.csv [--report=REPORT.txt]\n"
      "                       [--algorithm=fast|basic] [--check-consistency]\n"
      "                       [--multi-version] [--metrics-json=METRICS.json]\n\n"
      "  --kb                RDF knowledge base (N-Triples subset; a .tsv\n"
      "                      extension selects tab-separated triples)\n"
      "  --rules             detective rules in the rule DSL\n"
      "  --input/--output    CSV relation, first record is the header\n"
      "  --check-consistency run the dataset-specific consistency check and\n"
      "                      refuse to repair on divergence\n"
      "  --multi-version     emit one output row per repair fixpoint\n"
      "  --metrics-json      dump the per-stage metrics snapshot (KB lookups,\n"
      "                      rule matches, chase rounds, timers) as JSON\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto take = [&](std::string_view name, std::string* out) {
      std::string prefix = std::string("--") + std::string(name) + "=";
      if (StartsWith(arg, prefix)) {
        *out = std::string(arg.substr(prefix.size()));
        return true;
      }
      return false;
    };
    if (take("kb", &args->kb_path) || take("rules", &args->rules_path) ||
        take("input", &args->input_path) || take("output", &args->output_path) ||
        take("report", &args->report_path) || take("algorithm", &args->algorithm) ||
        take("metrics-json", &args->metrics_json_path)) {
      continue;
    }
    if (arg == "--check-consistency") {
      args->check_consistency = true;
    } else if (arg == "--multi-version") {
      args->multi_version = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return false;
    }
  }
  if (args->kb_path.empty() || args->rules_path.empty() ||
      args->input_path.empty() || args->output_path.empty()) {
    return false;
  }
  if (args->algorithm != "fast" && args->algorithm != "basic") {
    std::fprintf(stderr, "--algorithm must be 'fast' or 'basic'\n");
    return false;
  }
  return true;
}

int Run(const Args& args) {
  // ---- Load inputs ----
  auto kb = EndsWith(args.kb_path, ".tsv")
                ? [&] {
                    std::ifstream in(args.kb_path, std::ios::binary);
                    std::string text((std::istreambuf_iterator<char>(in)),
                                     std::istreambuf_iterator<char>());
                    return ParseTsvTriples(text);
                  }()
                : ParseNTriplesFile(args.kb_path);
  if (!kb.ok()) {
    std::fprintf(stderr, "error loading KB: %s\n", kb.status().ToString().c_str());
    return 1;
  }
  std::printf("KB: %s\n", kb->DebugSummary().c_str());

  auto rules = ParseRulesFile(args.rules_path);
  if (!rules.ok()) {
    std::fprintf(stderr, "error loading rules: %s\n",
                 rules.status().ToString().c_str());
    return 1;
  }
  std::printf("Rules: %zu loaded from %s\n", rules->size(), args.rules_path.c_str());

  auto relation = Relation::FromCsvFile(args.input_path);
  if (!relation.ok()) {
    std::fprintf(stderr, "error loading relation: %s\n",
                 relation.status().ToString().c_str());
    return 1;
  }
  std::printf("Relation: %zu tuples x %zu columns\n", relation->num_tuples(),
              relation->schema().num_columns());

  // ---- Optional consistency gate (paper §III-C) ----
  if (args.check_consistency) {
    auto report = CheckConsistency(*kb, *rules, *relation);
    if (!report.ok()) {
      std::fprintf(stderr, "consistency check failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("Consistency: %s\n", report->ToString().c_str());
    if (!report->consistent) {
      std::fprintf(stderr, "refusing to repair with an inconsistent rule set\n");
      return 2;
    }
  }

  // ---- Repair ----
  double start = NowSeconds();
  Relation repaired = *relation;
  RepairStats stats;
  size_t extra_versions = 0;

  if (args.multi_version) {
    Relation expanded{relation->schema()};
    FastRepairer repairer(*kb, relation->schema(), *rules);
    Status st = repairer.Init();
    if (!st.ok()) {
      std::fprintf(stderr, "init failed: %s\n", st.ToString().c_str());
      return 1;
    }
    for (size_t row = 0; row < relation->num_tuples(); ++row) {
      std::vector<Tuple> versions = repairer.RepairMultiVersion(relation->tuple(row));
      extra_versions += versions.size() - 1;
      for (Tuple& version : versions) expanded.Append(std::move(version));
    }
    stats = repairer.stats();
    repaired = std::move(expanded);
  } else if (args.algorithm == "basic") {
    RepairOptions options;
    options.matcher.use_signature_index = false;
    options.matcher.use_value_memo = false;
    BasicRepairer repairer(*kb, relation->schema(), *rules, options);
    Status st = repairer.Init();
    if (!st.ok()) {
      std::fprintf(stderr, "init failed: %s\n", st.ToString().c_str());
      return 1;
    }
    repairer.RepairRelation(&repaired);
    stats = repairer.stats();
  } else {
    FastRepairer repairer(*kb, relation->schema(), *rules);
    Status st = repairer.Init();
    if (!st.ok()) {
      std::fprintf(stderr, "init failed: %s\n", st.ToString().c_str());
      return 1;
    }
    repairer.RepairRelation(&repaired);
    stats = repairer.stats();
  }
  double elapsed = NowSeconds() - start;

  // ---- Write output + report ----
  Status st = repaired.ToCsvFile(args.output_path);
  if (!st.ok()) {
    std::fprintf(stderr, "error writing output: %s\n", st.ToString().c_str());
    return 1;
  }

  std::string summary;
  {
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "repaired %zu tuples in %.3fs: %zu cells repaired, %zu cells "
                  "marked correct, %zu rule applications",
                  stats.tuples_processed, elapsed, stats.repairs,
                  stats.cells_marked, stats.rule_applications);
    summary = buffer;
    if (args.multi_version) {
      std::snprintf(buffer, sizeof(buffer), ", %zu extra versions emitted",
                    extra_versions);
      summary += buffer;
    }
  }
  std::printf("%s\n", summary.c_str());

  if (!args.report_path.empty()) {
    std::ofstream report(args.report_path, std::ios::trunc);
    report << summary << "\n\nPer-cell repairs (row, column, before -> after):\n";
    for (size_t row = 0; row < repaired.num_tuples(); ++row) {
      const Tuple& tuple = repaired.tuple(row);
      for (ColumnIndex c = 0; c < tuple.size(); ++c) {
        if (tuple.WasRepaired(c)) {
          report << "  " << row << ", " << repaired.schema().column_name(c) << ", '"
                 << tuple.OriginalValue(c) << "' -> '" << tuple.value(c) << "'\n";
        }
      }
    }
    if (!report) {
      std::fprintf(stderr, "error writing report to %s\n", args.report_path.c_str());
      return 1;
    }
    std::printf("report written to %s\n", args.report_path.c_str());
  }

  if (!args.metrics_json_path.empty()) {
    metrics::MetricsSnapshot snapshot = metrics::Registry::Global().Snapshot();
    std::ofstream out(args.metrics_json_path, std::ios::trunc);
    out << snapshot.ToJson();
    if (!out) {
      std::fprintf(stderr, "error writing metrics to %s\n",
                   args.metrics_json_path.c_str());
      return 1;
    }
    std::printf("metrics written to %s (%zu counters, %zu timers)\n",
                args.metrics_json_path.c_str(), snapshot.counters.size(),
                snapshot.timers.size());
#if !DETECTIVE_METRICS_ENABLED
    std::fprintf(stderr,
                 "note: built with DETECTIVE_METRICS=OFF; the snapshot is empty\n");
#endif
  }
  return 0;
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  detective::Args args;
  if (!detective::ParseArgs(argc, argv, &args)) {
    detective::PrintUsage();
    return 64;
  }
  return detective::Run(args);
}
