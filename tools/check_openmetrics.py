#!/usr/bin/env python3
"""Validate an OpenMetrics text exposition (what GET /metrics serves).

  check_openmetrics.py METRICS.txt
  curl -s http://127.0.0.1:PORT/metrics | check_openmetrics.py -

Checks, in the order a scraper would hit them:
  * the document ends with the mandatory `# EOF` terminator;
  * every sample line parses as `name{labels} value` with a valid metric
    name and a parseable float value, and every label value uses the
    OpenMetrics escaping rules (only \\\\, \\" and \\n escapes);
  * every sample belongs to a family announced by a `# TYPE` line (and the
    HELP/TYPE/UNIT lines precede the family's samples);
  * counter families expose only `_total` samples with non-negative values;
  * histogram families expose `_bucket`/`_sum`/`_count`: bucket `le` values
    strictly increase, bucket counts are monotone non-decreasing, the last
    bucket is `le="+Inf"` and equals `_count`.

Exit status: 0 when the document validates, 1 otherwise.
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)(?: (?P<timestamp>\S+))?$")
LABEL_RE = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')
ESCAPE_RE = re.compile(r"\\(.)")
SUFFIXES = ("_total", "_bucket", "_sum", "_count", "_created")


def parse_labels(raw, where, errors):
    """Splits a label body on top-level commas, honoring escaped quotes."""
    labels = {}
    if raw is None or raw == "":
        return labels
    parts, depth_in_string, start = [], False, 0
    i = 0
    while i < len(raw):
        c = raw[i]
        if c == "\\" and depth_in_string:
            i += 2
            continue
        if c == '"':
            depth_in_string = not depth_in_string
        elif c == "," and not depth_in_string:
            parts.append(raw[start:i])
            start = i + 1
        i += 1
    parts.append(raw[start:])
    for part in parts:
        match = LABEL_RE.match(part)
        if not match:
            errors.append(f"{where}: malformed label {part!r}")
            continue
        for escape in ESCAPE_RE.finditer(match.group("value")):
            if escape.group(1) not in ("\\", '"', "n"):
                errors.append(
                    f"{where}: invalid escape \\{escape.group(1)} in label "
                    f"{match.group('key')}")
        labels[match.group("key")] = ESCAPE_RE.sub(
            lambda m: {"\\": "\\", '"': '"', "n": "\n"}.get(
                m.group(1), m.group(1)),
            match.group("value"))
    return labels


def family_of(sample_name, families):
    """The announced family a sample belongs to, or None."""
    if sample_name in families:
        return sample_name
    for suffix in SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families:
                return base
    return None


def parse_float(raw):
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)


def check(lines, path):
    errors = []
    families = {}  # name -> type
    # family -> list of (le, count) in document order
    buckets = {}
    sums = {}
    counts = {}
    samples = 0
    saw_eof = False
    for lineno, line in enumerate(lines, start=1):
        where = f"{path}:{lineno}"
        if saw_eof and line:
            errors.append(f"{where}: content after # EOF")
            break
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if parts[0] == "#" and len(parts) >= 2 and parts[1] == "EOF":
                saw_eof = True
                continue
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE", "UNIT"):
                errors.append(f"{where}: malformed comment line {line!r}")
                continue
            kind, name = parts[1], parts[2]
            if not NAME_RE.match(name):
                errors.append(f"{where}: invalid metric name {name!r}")
                continue
            if kind == "TYPE":
                if name in families:
                    errors.append(f"{where}: duplicate TYPE for {name}")
                body = parts[3] if len(parts) > 3 else ""
                families[name] = body.strip()
            continue
        match = SAMPLE_RE.match(line)
        if not match:
            errors.append(f"{where}: malformed sample line {line!r}")
            continue
        samples += 1
        name = match.group("name")
        labels = parse_labels(match.group("labels"), where, errors)
        try:
            value = parse_float(match.group("value"))
        except ValueError:
            errors.append(f"{where}: unparseable value {match.group('value')!r}")
            continue
        family = family_of(name, families)
        if family is None:
            errors.append(f"{where}: sample {name} has no TYPE line")
            continue
        ftype = families[family]
        if ftype == "counter":
            if not name.endswith("_total") and not name.endswith("_created"):
                errors.append(
                    f"{where}: counter sample {name} must end in _total")
            if value < 0:
                errors.append(f"{where}: counter {name} is negative")
        elif ftype == "histogram":
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"{where}: histogram bucket without le")
                    continue
                try:
                    le = parse_float(labels["le"])
                except ValueError:
                    errors.append(f"{where}: unparseable le {labels['le']!r}")
                    continue
                buckets.setdefault(family, []).append((where, le, value))
            elif name.endswith("_sum"):
                sums[family] = (where, value)
            elif name.endswith("_count"):
                counts[family] = (where, value)
            else:
                errors.append(
                    f"{where}: unexpected histogram sample {name}")
    if not saw_eof:
        errors.append(f"{path}: missing # EOF terminator")
    for family, rows in buckets.items():
        prev_le, prev_count = -math.inf, -math.inf
        for where, le, count in rows:
            if le <= prev_le:
                errors.append(
                    f"{where}: {family} bucket le {le} not increasing")
            if count < prev_count:
                errors.append(
                    f"{where}: {family} bucket count {count} decreases")
            prev_le, prev_count = le, count
        if rows[-1][1] != math.inf:
            errors.append(f"{path}: {family} last bucket is not le=\"+Inf\"")
        if family not in counts:
            errors.append(f"{path}: {family} has buckets but no _count")
        elif rows[-1][2] != counts[family][1]:
            errors.append(
                f"{path}: {family} +Inf bucket {rows[-1][2]} != _count "
                f"{counts[family][1]}")
        if family not in sums:
            errors.append(f"{path}: {family} has buckets but no _sum")
        elif sums[family][1] < 0:
            errors.append(f"{path}: {family} _sum is negative")
    if samples == 0:
        errors.append(f"{path}: no samples")
    if not errors:
        histograms = sum(1 for t in families.values() if t == "histogram")
        print(f"{path}: OK ({samples} samples, {len(families)} families, "
              f"{histograms} histograms)")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="exposition file, or - for stdin")
    args = parser.parse_args()
    if args.path == "-":
        lines = sys.stdin.read().splitlines()
        label = "<stdin>"
    else:
        try:
            with open(args.path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError as error:
            print(f"FAIL {error}", file=sys.stderr)
            return 1
        label = args.path
    errors = check(lines, label)
    for error in errors:
        print(f"FAIL {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
