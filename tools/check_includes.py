#!/usr/bin/env python3
"""Include-hygiene lint for the detective tree (CI: lint job).

Checks, over every C++ file under src/, tools/, tests/, bench/, examples/:

  1. guard     — every header carries an include guard named after its
                 repo-relative path: src/analysis/rule_lint.h must use
                 DETECTIVE_ANALYSIS_RULE_LINT_H_ (the src/ prefix is
                 dropped; other roots keep theirs, e.g.
                 DETECTIVE_TESTS_TEST_FIXTURES_H_), with matching #define
                 and a trailing  // NAME  comment on the #endif.
  2. relative  — no '..' or '.' path components in includes; project
                 headers are addressed root-relative from src/ (or from
                 the including file's own directory, for test helpers).
  3. resolve   — every quoted include must resolve to a file in the repo;
                 every angle include must NOT shadow a repo header
                 (quoted = ours, angled = system/third-party).

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOTS = ("src", "tools", "tests", "bench", "examples")
# Quoted includes resolve against these directories (in order), then
# against the including file's own directory.
INCLUDE_DIRS = ("src", "tests")
SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')
GUARD_IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+(\S+)")
GUARD_DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\S+)")
GUARD_ENDIF_RE = re.compile(r"^\s*#\s*endif\s*//\s*(\S+)\s*$")


def expected_guard(path: pathlib.Path) -> str:
    rel = path.as_posix()
    if rel.startswith("src/"):
        rel = rel[len("src/"):]
    return "DETECTIVE_" + re.sub(r"[^A-Za-z0-9]", "_", rel).upper() + "_"


def check_guard(path: pathlib.Path, lines: list[str], findings: list[str]) -> None:
    want = expected_guard(path)
    ifndef = define = endif = None
    for line in lines:
        if ifndef is None:
            m = GUARD_IFNDEF_RE.match(line)
            if m:
                ifndef = m.group(1)
            continue
        if define is None:
            m = GUARD_DEFINE_RE.match(line)
            define = m.group(1) if m else ""
            break
    for line in reversed(lines):
        if not line.strip():
            continue
        m = GUARD_ENDIF_RE.match(line)
        endif = m.group(1) if m else ""
        break
    if ifndef != want:
        findings.append(f"{path}: guard #ifndef is {ifndef!r}, expected {want!r}")
    if define != want:
        findings.append(f"{path}: guard #define is {define!r}, expected {want!r}")
    if endif != want:
        findings.append(
            f"{path}: closing #endif lacks the '// {want}' comment (found {endif!r})")


def check_includes(repo: pathlib.Path, path: pathlib.Path,
                   lines: list[str], findings: list[str]) -> None:
    for number, line in enumerate(lines, 1):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        quoted = m.group(1) == '"'
        target = m.group(2)
        where = f"{path}:{number}"
        parts = pathlib.PurePosixPath(target).parts
        if ".." in parts or "." in parts:
            findings.append(f"{where}: include '{target}' uses a relative "
                            "path component; address headers from the tree root")
            continue
        resolved = [d for d in INCLUDE_DIRS if (repo / d / target).is_file()]
        if (path.parent / target).is_file():
            resolved.append(path.parent.as_posix())
        if quoted and not resolved:
            findings.append(f"{where}: quoted include '{target}' does not "
                            "resolve to a repo header (use <...> for system "
                            "headers)")
        elif not quoted and resolved:
            findings.append(f"{where}: angle include <{target}> shadows repo "
                            f"header {resolved[0]}/{target}; use \"...\"")


def main() -> int:
    repo = pathlib.Path(__file__).resolve().parent.parent
    findings: list[str] = []
    checked = 0
    for root in ROOTS:
        base = repo / root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(repo)
            lines = path.read_text(encoding="utf-8").splitlines()
            checked += 1
            if path.suffix in (".h", ".hpp"):
                check_guard(rel, lines, findings)
            check_includes(repo, rel, lines, findings)
    if checked == 0:
        print("check_includes: no C++ sources found — wrong checkout?",
              file=sys.stderr)
        return 2
    for finding in findings:
        print(finding)
    print(f"check_includes: {checked} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
