#!/usr/bin/env python3
"""Unit tests for the bench-gate band matcher (tools/check_bench_regression.py).

Runnable both ways:

  python3 -m unittest discover -s tools/tests -t .
  python3 -m pytest tools/tests/

CI runs these in the lint job; ctest registers them as
check_bench_regression_unit (tests/CMakeLists.txt).
"""

import argparse
import importlib.util
import json
import os
import sys
import tempfile
import unittest

_TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression",
    os.path.join(_TOOLS_DIR, "check_bench_regression.py"),
)
cbr = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(cbr)


def bench_doc(bench="parallel", entries=()):
    return {"schema_version": 1, "bench": bench, "entries": list(entries)}


def entry(series, x, wall_ms, counters=None):
    return {
        "series": series,
        "x": x,
        "wall_ms": wall_ms,
        "counters": counters or {},
    }


class ParseBandTest(unittest.TestCase):
    def test_accepts_float_inf_and_skip(self):
        self.assertEqual(cbr.parse_band("cache.*=0.25"), ("cache.*", 0.25))
        self.assertEqual(cbr.parse_band("cache.*=inf"), ("cache.*", float("inf")))
        self.assertEqual(cbr.parse_band("cache.*=skip"), ("cache.*", None))

    def test_pattern_may_contain_equals(self):
        # rpartition: everything before the LAST '=' is the pattern.
        self.assertEqual(cbr.parse_band("a=b=0.5"), ("a=b", 0.5))

    def test_rejects_malformed_specs(self):
        for spec in ("no-tolerance", "=0.5", "cache.*=-0.1", "cache.*=fast"):
            with self.assertRaises(argparse.ArgumentTypeError, msg=spec):
                cbr.parse_band(spec)


class ToleranceForTest(unittest.TestCase):
    def test_first_matching_band_wins(self):
        bands = [("cache.*", None), ("cache.hits", 0.5), ("*", 0.1)]
        # cache.hits matches the skip band first, never its exact band.
        self.assertIsNone(cbr.tolerance_for("cache.hits", 0.0, bands))
        self.assertEqual(cbr.tolerance_for("sigindex.queries", 0.0, bands), 0.1)

    def test_default_when_nothing_matches(self):
        bands = [("cache.*", 0.5)]
        self.assertEqual(cbr.tolerance_for("repair.rule_checks", 0.0, bands), 0.0)
        self.assertEqual(cbr.tolerance_for("shared/wall_ms", 0.25, bands), 0.25)

    def test_wall_metric_ids_are_series_scoped(self):
        bands = [("nobel-*/wall_ms", float("inf"))]
        self.assertEqual(
            cbr.tolerance_for("nobel-stratified/wall_ms", 0.25, bands),
            float("inf"),
        )
        self.assertEqual(cbr.tolerance_for("shared/wall_ms", 0.25, bands), 0.25)


class DefaultBandsTest(unittest.TestCase):
    """The built-in bands for time-derived counters (latency percentiles,
    throughput, shed rate) apply when no user band matches, and an explicit
    user band — given first — always overrides them."""

    def test_latency_percentiles_have_default_bands(self):
        self.assertEqual(cbr.tolerance_for("latency.p50_us", 0.0, []), 2.0)
        self.assertEqual(cbr.tolerance_for("latency.p95_us", 0.0, []), 3.0)
        self.assertEqual(cbr.tolerance_for("latency.p99_us", 0.0, []), 4.0)
        self.assertEqual(cbr.tolerance_for("throughput_rps", 0.0, []), 1.0)
        self.assertEqual(cbr.tolerance_for("requests.shed_pct", 0.0, []), 1.0)

    def test_plain_counters_keep_the_exact_default(self):
        self.assertEqual(cbr.tolerance_for("requests.ok", 0.0, []), 0.0)
        self.assertEqual(cbr.tolerance_for("repair.rule_checks", 0.0, []), 0.0)

    def test_user_band_overrides_the_default(self):
        bands = [("latency.*", 0.05), ("*_rps", None)]
        self.assertEqual(cbr.tolerance_for("latency.p99_us", 0.0, bands), 0.05)
        self.assertIsNone(cbr.tolerance_for("throughput_rps", 0.0, bands))


class WithinTest(unittest.TestCase):
    def test_relative_band_is_symmetric(self):
        # The band is [b/(1+t), b*(1+t)]: a 2x speedup and a 2x slowdown are
        # both out of a 25% band, both inside a 100% band.
        self.assertTrue(cbr.within(100.0, 100.0, 0.0))
        self.assertTrue(cbr.within(124.0, 100.0, 0.25))
        self.assertTrue(cbr.within(81.0, 100.0, 0.25))
        self.assertFalse(cbr.within(200.0, 100.0, 0.25))
        self.assertFalse(cbr.within(50.0, 100.0, 0.25))
        self.assertTrue(cbr.within(200.0, 100.0, 1.0))
        self.assertTrue(cbr.within(50.0, 100.0, 1.0))

    def test_inf_accepts_anything(self):
        self.assertTrue(cbr.within(1e9, 0.0, float("inf")))

    def test_zero_baseline(self):
        # Exact mode: 0 must stay 0. Tolerant mode: the tolerance doubles as
        # an absolute ceiling (relative deviation from 0 is undefined).
        self.assertTrue(cbr.within(0, 0, 0.0))
        self.assertFalse(cbr.within(3, 0, 0.0))
        self.assertTrue(cbr.within(0.2, 0, 0.25))
        self.assertFalse(cbr.within(0.3, 0, 0.25))


class CompareArgs(argparse.Namespace):
    """The argparse surface compare() consumes, with gate defaults."""

    def __init__(self, **overrides):
        defaults = dict(
            wall_tolerance=0.25,
            counter_tolerance=0.0,
            band=[],
            min_wall_ms=0.001,
            counters_only=False,
            strict=False,
        )
        defaults.update(overrides)
        super().__init__(**defaults)


class CompareTest(unittest.TestCase):
    def write(self, name, doc):
        path = os.path.join(self.dir.name, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
        return path

    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def test_counter_drift_fails_exact_default(self):
        fresh = self.write(
            "fresh.json",
            bench_doc(entries=[entry("s", 1, 10.0, {"repair.rule_checks": 101})]),
        )
        base = self.write(
            "base.json",
            bench_doc(entries=[entry("s", 1, 10.0, {"repair.rule_checks": 100})]),
        )
        failures = cbr.compare(fresh, base, CompareArgs())
        self.assertEqual(len(failures), 1)
        self.assertIn("repair.rule_checks", failures[0])

    def test_skip_band_suppresses_the_counter(self):
        fresh = self.write(
            "fresh.json", bench_doc(entries=[entry("s", 1, 10.0, {"noisy": 7})])
        )
        base = self.write(
            "base.json", bench_doc(entries=[entry("s", 1, 10.0, {"noisy": 999})])
        )
        self.assertEqual(
            cbr.compare(fresh, base, CompareArgs(band=[("noisy", None)])), []
        )

    def test_missing_entry_is_note_unless_strict(self):
        fresh = self.write("fresh.json", bench_doc(entries=[entry("s", 1, 10.0)]))
        base = self.write(
            "base.json",
            bench_doc(entries=[entry("s", 1, 10.0), entry("gone", 1, 5.0)]),
        )
        self.assertEqual(cbr.compare(fresh, base, CompareArgs()), [])
        failures = cbr.compare(fresh, base, CompareArgs(strict=True))
        self.assertEqual(len(failures), 1)
        self.assertIn("gone", failures[0])

    def test_latency_drift_passes_within_default_band_and_fails_beyond(self):
        base = self.write(
            "base.json",
            bench_doc(entries=[entry("s", 1, 10.0, {"latency.p99_us": 100})]),
        )
        drifted = self.write(
            "fresh.json",
            bench_doc(entries=[entry("s", 1, 10.0, {"latency.p99_us": 390})]),
        )
        self.assertEqual(cbr.compare(drifted, base, CompareArgs()), [])
        regressed = self.write(
            "fresh2.json",
            bench_doc(entries=[entry("s", 1, 10.0, {"latency.p99_us": 600})]),
        )
        failures = cbr.compare(regressed, base, CompareArgs())
        self.assertEqual(len(failures), 1)
        self.assertIn("latency.p99_us", failures[0])

    def test_bench_name_mismatch_is_a_failure(self):
        fresh = self.write("fresh.json", bench_doc(bench="a"))
        base = self.write("base.json", bench_doc(bench="b"))
        failures = cbr.compare(fresh, base, CompareArgs())
        self.assertEqual(len(failures), 1)
        self.assertIn("bench mismatch", failures[0])


class UpdateSeedingTest(unittest.TestCase):
    """--update must seed a baseline for a brand-new benchmark, and without
    --update a fresh file lacking a baseline is a hard error."""

    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)
        self.baseline_dir = os.path.join(self.dir.name, "baselines")
        self.fresh_dir = os.path.join(self.dir.name, "fresh")
        os.makedirs(self.baseline_dir)
        os.makedirs(self.fresh_dir)

    def run_main(self, *argv):
        old = sys.argv
        sys.argv = ["check_bench_regression.py", *argv]
        try:
            return cbr.main()
        finally:
            sys.argv = old

    def write(self, directory, name, doc):
        path = os.path.join(directory, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
        return path

    def test_new_bench_without_baseline_fails_and_update_seeds_it(self):
        self.write(self.baseline_dir, "BENCH_old.json", bench_doc(bench="old"))
        self.write(self.fresh_dir, "BENCH_old.json", bench_doc(bench="old"))
        self.write(self.fresh_dir, "BENCH_new.json", bench_doc(bench="new"))

        self.assertEqual(
            self.run_main(
                "--baseline-dir", self.baseline_dir, "--fresh-dir", self.fresh_dir
            ),
            1,
        )
        self.assertEqual(
            self.run_main(
                "--baseline-dir",
                self.baseline_dir,
                "--fresh-dir",
                self.fresh_dir,
                "--update",
            ),
            0,
        )
        seeded = os.path.join(self.baseline_dir, "BENCH_new.json")
        self.assertTrue(os.path.exists(seeded))
        # The seeded baseline now gates future runs.
        self.assertEqual(
            self.run_main(
                "--baseline-dir", self.baseline_dir, "--fresh-dir", self.fresh_dir
            ),
            0,
        )

    def test_update_refuses_malformed_fresh_files(self):
        self.write(
            self.baseline_dir, "BENCH_old.json", bench_doc(bench="old")
        )
        path = os.path.join(self.fresh_dir, "BENCH_old.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"schema_version": 2, "entries": []}')
        with self.assertRaises(ValueError):
            self.run_main(
                "--baseline-dir",
                self.baseline_dir,
                "--fresh-dir",
                self.fresh_dir,
                "--update",
            )


if __name__ == "__main__":
    unittest.main()
