#!/usr/bin/env python3
"""Unit tests for the OpenMetrics validator (tools/check_openmetrics.py).

Runnable both ways:

  python3 -m unittest discover -s tools/tests -t .
  python3 -m pytest tools/tests/

CI runs these in the lint job; ctest runs the same discovery
(tests/CMakeLists.txt).
"""

import importlib.util
import os
import unittest

_TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SPEC = importlib.util.spec_from_file_location(
    "check_openmetrics",
    os.path.join(_TOOLS_DIR, "check_openmetrics.py"),
)
com = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(com)


GOOD_COUNTER = [
    "# HELP detective_kb_lookups Monotonic event counter",
    "# TYPE detective_kb_lookups counter",
    "detective_kb_lookups_total 42",
]

GOOD_HISTOGRAM = [
    "# HELP detective_repair_seconds Wall-clock scope duration histogram",
    "# TYPE detective_repair_seconds histogram",
    "# UNIT detective_repair_seconds seconds",
    'detective_repair_seconds_bucket{le="0"} 0',
    'detective_repair_seconds_bucket{le="1e-09"} 1',
    'detective_repair_seconds_bucket{le="0.001"} 3',
    'detective_repair_seconds_bucket{le="+Inf"} 4',
    "detective_repair_seconds_sum 0.25",
    "detective_repair_seconds_count 4",
]

EOF = ["# EOF"]


def run(lines):
    return com.check(lines, "<test>")


class CheckOpenMetricsTest(unittest.TestCase):
    def test_valid_counter_and_histogram_pass(self):
        self.assertEqual(run(GOOD_COUNTER + GOOD_HISTOGRAM + EOF), [])

    def test_missing_eof_fails(self):
        errors = run(GOOD_COUNTER)
        self.assertTrue(any("EOF" in e for e in errors))

    def test_content_after_eof_fails(self):
        errors = run(GOOD_COUNTER + EOF + ["trailing 1"])
        self.assertTrue(any("after # EOF" in e for e in errors))

    def test_sample_without_type_line_fails(self):
        errors = run(["mystery_total 1"] + EOF)
        self.assertTrue(any("no TYPE line" in e for e in errors))

    def test_counter_sample_must_end_in_total(self):
        lines = [
            "# TYPE detective_kb_lookups counter",
            "detective_kb_lookups 42",
        ] + EOF
        errors = run(lines)
        self.assertTrue(any("_total" in e for e in errors))

    def test_negative_counter_fails(self):
        lines = [
            "# TYPE detective_kb_lookups counter",
            "detective_kb_lookups_total -1",
        ] + EOF
        errors = run(lines)
        self.assertTrue(any("negative" in e for e in errors))

    def test_histogram_bucket_le_must_increase(self):
        lines = [
            "# TYPE detective_t_seconds histogram",
            'detective_t_seconds_bucket{le="0.5"} 1',
            'detective_t_seconds_bucket{le="0.5"} 2',
            'detective_t_seconds_bucket{le="+Inf"} 2',
            "detective_t_seconds_sum 0.7",
            "detective_t_seconds_count 2",
        ] + EOF
        errors = run(lines)
        self.assertTrue(any("not increasing" in e for e in errors))

    def test_histogram_bucket_count_must_be_monotone(self):
        lines = [
            "# TYPE detective_t_seconds histogram",
            'detective_t_seconds_bucket{le="0.5"} 3',
            'detective_t_seconds_bucket{le="1"} 2',
            'detective_t_seconds_bucket{le="+Inf"} 3',
            "detective_t_seconds_sum 0.7",
            "detective_t_seconds_count 3",
        ] + EOF
        errors = run(lines)
        self.assertTrue(any("decreases" in e for e in errors))

    def test_histogram_inf_bucket_must_equal_count(self):
        lines = [
            "# TYPE detective_t_seconds histogram",
            'detective_t_seconds_bucket{le="+Inf"} 3',
            "detective_t_seconds_sum 0.7",
            "detective_t_seconds_count 4",
        ] + EOF
        errors = run(lines)
        self.assertTrue(any("_count" in e for e in errors))

    def test_histogram_missing_inf_bucket_fails(self):
        lines = [
            "# TYPE detective_t_seconds histogram",
            'detective_t_seconds_bucket{le="0.5"} 3',
            "detective_t_seconds_sum 0.7",
            "detective_t_seconds_count 3",
        ] + EOF
        errors = run(lines)
        self.assertTrue(any("+Inf" in e for e in errors))

    def test_label_escaping_validated(self):
        lines = [
            "# TYPE detective_x counter",
            'detective_x_total{reason="a\\qb"} 1',
        ] + EOF
        errors = run(lines)
        self.assertTrue(any("invalid escape" in e for e in errors))

    def test_escaped_quote_and_comma_in_label_ok(self):
        lines = [
            "# TYPE detective_x counter",
            'detective_x_total{reason="a\\"b,c\\n"} 1',
        ] + EOF
        self.assertEqual(run(lines), [])

    def test_malformed_sample_line_fails(self):
        errors = run(["!!! not a sample"] + EOF)
        self.assertTrue(any("malformed" in e for e in errors))

    def test_live_exposition_shape_from_renderer(self):
        # Mirrors src/obs/openmetrics.cc output: 47 finite log2 buckets then
        # the folded +Inf bucket.
        lines = list(GOOD_COUNTER)
        lines += [
            "# HELP detective_repair_relation_seconds Wall-clock scope",
            "# TYPE detective_repair_relation_seconds histogram",
            "# UNIT detective_repair_relation_seconds seconds",
        ]
        cumulative = 0
        for bucket in range(47):
            upper = 0 if bucket == 0 else (2 ** bucket - 1) / 1e9
            if bucket == 9:
                cumulative += 2
            lines.append(
                f'detective_repair_relation_seconds_bucket{{le="{upper:.9g}"}}'
                f" {cumulative}")
        lines += [
            'detective_repair_relation_seconds_bucket{le="+Inf"} 2',
            "detective_repair_relation_seconds_sum 1.024e-06",
            "detective_repair_relation_seconds_count 2",
        ]
        self.assertEqual(run(lines + EOF), [])


if __name__ == "__main__":
    unittest.main()
