#!/usr/bin/env python3
"""Validate the observability artifacts emitted by detective_clean.

  check_trace.py --trace TRACE.json        # Chrome trace-event array
  check_trace.py --explain EXPLAIN.jsonl   # provenance JSONL
  check_trace.py --trace T.json --explain E.jsonl   # both

Trace checks: the file parses as JSON, is a non-empty array, every event
carries name/ph/pid/tid/ts, every complete ("X") event carries a
non-negative dur, and ts is monotonically non-decreasing per tid — the
exact shape chrome://tracing and Perfetto ingest.

Explain checks: every non-blank line parses as a JSON object with
row/column/kind/rule, kind is one of the known values, and at least one
"repair" record carries a non-empty evidence_edges list (a repair without
KB evidence would be unexplained, which defeats the subsystem).

Exit status: 0 when every requested check passes, 1 otherwise.
"""

import argparse
import json
import sys

TRACE_REQUIRED = ("name", "ph", "pid", "tid")
EXPLAIN_REQUIRED = ("row", "column", "kind", "rule")
EXPLAIN_KINDS = {"repair", "normalization", "proof_positive"}


def check_trace(path):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            events = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path}: {error}"]
    if not isinstance(events, list):
        return [f"{path}: top-level value is not an array"]
    if not events:
        return [f"{path}: empty trace (was the recorder started?)"]
    last_ts = {}
    spans = 0
    for i, event in enumerate(events):
        where = f"{path}: event {i}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        missing = [key for key in TRACE_REQUIRED if key not in event]
        if missing:
            errors.append(f"{where}: missing {', '.join(missing)}")
            continue
        ph = event["ph"]
        if ph == "M":  # metadata events (thread_name) carry no timestamp
            continue
        if "ts" not in event:
            errors.append(f"{where}: missing ts")
            continue
        if ph == "X":
            spans += 1
            if not isinstance(event.get("dur"), (int, float)) or event["dur"] < 0:
                errors.append(f"{where}: X event without non-negative dur")
        tid = event["tid"]
        if event["ts"] < last_ts.get(tid, float("-inf")):
            errors.append(f"{where}: ts goes backwards within tid {tid}")
        last_ts[tid] = event["ts"]
    if spans == 0:
        errors.append(f"{path}: no complete (ph=X) span events")
    if not errors:
        print(f"{path}: OK ({len(events)} events, {spans} spans, "
              f"{len(last_ts)} threads)")
    return errors


def check_explain(path):
    errors = []
    records = 0
    explained_repairs = 0
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        return [f"{path}: {error}"]
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        where = f"{path}:{lineno}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            errors.append(f"{where}: {error}")
            continue
        if not isinstance(record, dict):
            errors.append(f"{where}: not an object")
            continue
        records += 1
        missing = [key for key in EXPLAIN_REQUIRED if key not in record]
        if missing:
            errors.append(f"{where}: missing {', '.join(missing)}")
            continue
        if record["kind"] not in EXPLAIN_KINDS:
            errors.append(f"{where}: unknown kind {record['kind']!r}")
        if record["kind"] == "repair" and record.get("evidence_edges"):
            explained_repairs += 1
    if records == 0:
        errors.append(f"{path}: no provenance records")
    if explained_repairs == 0:
        errors.append(
            f"{path}: no repair record carries KB evidence_edges")
    if not errors:
        print(f"{path}: OK ({records} records, "
              f"{explained_repairs} repairs with KB evidence)")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", help="Chrome trace-event JSON to validate")
    parser.add_argument("--explain", help="provenance JSONL to validate")
    args = parser.parse_args()
    if not args.trace and not args.explain:
        parser.error("nothing to check: pass --trace and/or --explain")

    errors = []
    if args.trace:
        errors.extend(check_trace(args.trace))
    if args.explain:
        errors.extend(check_explain(args.explain))
    for error in errors:
        print(f"FAIL {error}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
