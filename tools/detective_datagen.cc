// detective_datagen: materializes the paper's experimental datasets as
// plain files, so detective_clean (and any external tool) can run on them.
//
//   detective_datagen --dataset=nobel|uis --out=DIR [--tuples=N] [--seed=S]
//                     [--error-rate=R] [--typo-fraction=T]
//
// Writes into DIR:
//   kb_yago.nt / kb_dbpedia.nt   KB projections under both profiles
//   clean.csv / dirty.csv        ground truth and the dirtied instance
//   rules.dr                     the curated detective rules (rule DSL)
//   errors.csv                   injected errors (row, column, clean, dirty, type)

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/csv.h"
#include "common/string_util.h"
#include "core/rule_io.h"
#include "datagen/nobel_gen.h"
#include "datagen/uis_gen.h"
#include "kb/ntriples_parser.h"

namespace detective {
namespace {

struct Args {
  std::string dataset = "nobel";
  std::string out_dir;
  size_t tuples = 0;  // 0 = dataset default
  uint64_t seed = 7;
  double error_rate = 0.10;
  double typo_fraction = 0.5;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value_of = [&](std::string_view name) -> std::string_view {
      std::string prefix = std::string("--") + std::string(name) + "=";
      if (StartsWith(arg, prefix)) return arg.substr(prefix.size());
      return {};
    };
    if (auto v = value_of("dataset"); !v.empty()) {
      args->dataset = std::string(v);
    } else if (auto v2 = value_of("out"); !v2.empty()) {
      args->out_dir = std::string(v2);
    } else if (auto v3 = value_of("tuples"); !v3.empty()) {
      uint64_t n = 0;
      if (!ParseUint64(v3, &n)) return false;
      args->tuples = n;
    } else if (auto v4 = value_of("seed"); !v4.empty()) {
      if (!ParseUint64(v4, &args->seed)) return false;
    } else if (auto v5 = value_of("error-rate"); !v5.empty()) {
      if (!ParseDouble(v5, &args->error_rate)) return false;
    } else if (auto v6 = value_of("typo-fraction"); !v6.empty()) {
      if (!ParseDouble(v6, &args->typo_fraction)) return false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return false;
    }
  }
  return !args->out_dir.empty() &&
         (args->dataset == "nobel" || args->dataset == "uis");
}

Status WriteText(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open ", path);
  out << text;
  out.flush();
  if (!out) return Status::IOError("write failed for ", path);
  return Status::OK();
}

int Run(const Args& args) {
  Dataset dataset;
  if (args.dataset == "nobel") {
    NobelOptions options;
    options.seed = args.seed;
    if (args.tuples > 0) options.num_laureates = args.tuples;
    dataset = GenerateNobel(options);
  } else {
    UisOptions options;
    options.seed = args.seed;
    if (args.tuples > 0) options.num_tuples = args.tuples;
    dataset = GenerateUis(options);
  }

  std::filesystem::create_directories(args.out_dir);
  auto path = [&](const char* name) { return args.out_dir + "/" + name; };

  // KBs under both profiles.
  for (const KbProfile& profile : {YagoProfile(), DBpediaProfile()}) {
    KnowledgeBase kb = dataset.world.ToKb(profile, dataset.key_entities);
    std::string file = profile.name == "Yago" ? "kb_yago.nt" : "kb_dbpedia.nt";
    Status st = WriteText(path(file.c_str()), ToNTriples(kb));
    st.Abort("write KB");
    std::printf("%s: %s\n", file.c_str(), kb.DebugSummary().c_str());
  }

  // Relations.
  dataset.clean.ToCsvFile(path("clean.csv")).Abort("clean.csv");
  Relation dirty = dataset.clean;
  ErrorSpec spec;
  spec.error_rate = args.error_rate;
  spec.typo_fraction = args.typo_fraction;
  spec.seed = args.seed + 1;
  std::vector<ErrorRecord> errors = InjectErrors(&dirty, spec, dataset.alternatives);
  dirty.ToCsvFile(path("dirty.csv")).Abort("dirty.csv");

  // Rules and the error ledger.
  WriteRulesFile(path("rules.dr"), dataset.rules).Abort("rules.dr");
  std::vector<std::vector<std::string>> rows = {
      {"row", "column", "clean", "dirty", "type"}};
  for (const ErrorRecord& e : errors) {
    rows.push_back({std::to_string(e.row),
                    dataset.clean.schema().column_name(e.column), e.clean_value,
                    e.dirty_value, e.type == ErrorType::kTypo ? "typo" : "semantic"});
  }
  WriteCsvFile(path("errors.csv"), rows).Abort("errors.csv");

  std::printf(
      "%s dataset written to %s: %zu tuples, %zu injected errors, %zu rules\n",
      args.dataset.c_str(), args.out_dir.c_str(), dataset.clean.num_tuples(),
      errors.size(), dataset.rules.size());
  std::printf(
      "try: detective_clean --kb=%s/kb_yago.nt --rules=%s/rules.dr "
      "--input=%s/dirty.csv --output=%s/repaired.csv\n",
      args.out_dir.c_str(), args.out_dir.c_str(), args.out_dir.c_str(),
      args.out_dir.c_str());
  return 0;
}

}  // namespace
}  // namespace detective

int main(int argc, char** argv) {
  detective::Args args;
  if (!detective::ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: detective_datagen --dataset=nobel|uis --out=DIR\n"
                 "                         [--tuples=N] [--seed=S]\n"
                 "                         [--error-rate=R] [--typo-fraction=T]\n");
    return 64;
  }
  return detective::Run(args);
}
