#include "text/edit_distance.h"

#include <algorithm>
#include <vector>

namespace detective {

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter: less memory
  if (b.empty()) return a.size();

  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;

  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];  // DP[i-1][j-1]
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t above = row[j];  // DP[i-1][j]
      size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      row[j] = std::min({row[j - 1] + 1, above + 1, diagonal + cost});
      diagonal = above;
    }
  }
  return row[b.size()];
}

size_t BoundedEditDistance(std::string_view a, std::string_view b, size_t max_edits) {
  if (a.size() < b.size()) std::swap(a, b);
  const size_t big = max_edits + 1;
  // Length difference alone already exceeds the band.
  if (a.size() - b.size() > max_edits) return big;
  if (b.empty()) return a.size();

  // Only cells with |i - j| <= max_edits can hold a value <= max_edits, so we
  // evaluate a diagonal band of width 2*max_edits+1 per row.
  std::vector<size_t> row(b.size() + 1, big);
  for (size_t j = 0; j <= std::min(b.size(), max_edits); ++j) row[j] = j;

  for (size_t i = 1; i <= a.size(); ++i) {
    size_t lo = i > max_edits ? i - max_edits : 0;
    size_t hi = std::min(b.size(), i + max_edits);
    size_t diagonal = row[lo > 0 ? lo - 1 : 0];  // DP[i-1][lo-1]
    size_t row_min = big;
    if (lo == 0) {
      diagonal = row[0];
      row[0] = i;
      row_min = i;
    } else {
      // Left neighbour of the first band cell lies outside the band.
      row[lo - 1] = big;
    }
    for (size_t j = std::max<size_t>(lo, 1); j <= hi; ++j) {
      size_t above = row[j];
      size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      size_t best = std::min({row[j - 1] + 1, above + 1, diagonal + cost});
      row[j] = std::min(best, big);
      row_min = std::min(row_min, row[j]);
      diagonal = above;
    }
    if (hi < b.size()) row[hi + 1] = big;  // right edge of next row's band
    if (row_min > max_edits) return big;   // the band can only grow
  }
  return row[b.size()];
}

bool WithinEditDistance(std::string_view a, std::string_view b, size_t max_edits) {
  return BoundedEditDistance(a, b, max_edits) <= max_edits;
}

}  // namespace detective
