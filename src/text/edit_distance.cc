#include "text/edit_distance.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace detective {

namespace {

/// Myers bit-parallel core: exact distance between `pattern` (<= 64 bytes,
/// encoded in `peq`) and `text`, with the Ukkonen cutoff — once even a
/// -1-per-character trajectory over the remaining text cannot reach
/// `max_edits`, the scan aborts. `peq[c]` holds a set bit for every position
/// of byte c in the pattern.
size_t MyersCore(size_t pattern_size, const uint64_t* peq, std::string_view text,
                 size_t max_edits) {
  const size_t m = pattern_size;
  const size_t n = text.size();
  // Trivial columns: an empty pattern needs n insertions.
  if (m == 0) return n;

  uint64_t vp = m == 64 ? ~uint64_t{0} : (uint64_t{1} << m) - 1;
  uint64_t vn = 0;
  const uint64_t mask = uint64_t{1} << (m - 1);
  size_t score = m;
  for (size_t j = 0; j < n; ++j) {
    const uint64_t eq = peq[static_cast<unsigned char>(text[j])];
    const uint64_t d0 = (((eq & vp) + vp) ^ vp) | eq | vn;
    uint64_t hp = vn | ~(d0 | vp);
    uint64_t hn = vp & d0;
    if (hp & mask) {
      ++score;
    } else if (hn & mask) {
      --score;
    }
    hp = (hp << 1) | 1;
    hn <<= 1;
    vp = hn | ~(d0 | hp);
    vn = hp & d0;
    // Each remaining character can lower the score by at most 1.
    if (score > max_edits + (n - j - 1)) return max_edits + 1;
  }
  return score;
}

/// Builds the 256-entry PEQ table for `pattern` (<= 64 bytes).
void BuildPeq(std::string_view pattern, uint64_t* peq) {
  std::memset(peq, 0, 256 * sizeof(uint64_t));
  for (size_t i = 0; i < pattern.size(); ++i) {
    peq[static_cast<unsigned char>(pattern[i])] |= uint64_t{1} << i;
  }
}

}  // namespace

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter: less memory
  if (b.empty()) return a.size();

  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;

  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];  // DP[i-1][j-1]
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t above = row[j];  // DP[i-1][j]
      size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      row[j] = std::min({row[j - 1] + 1, above + 1, diagonal + cost});
      diagonal = above;
    }
  }
  return row[b.size()];
}

size_t BandedEditDistance(std::string_view a, std::string_view b,
                          size_t max_edits) {
  if (a.size() < b.size()) std::swap(a, b);
  const size_t big = max_edits + 1;
  // Length difference alone already exceeds the band.
  if (a.size() - b.size() > max_edits) return big;
  if (b.empty()) return a.size();

  // Only cells with |i - j| <= max_edits can hold a value <= max_edits, so we
  // evaluate a diagonal band of width 2*max_edits+1 per row.
  std::vector<size_t> row(b.size() + 1, big);
  for (size_t j = 0; j <= std::min(b.size(), max_edits); ++j) row[j] = j;

  for (size_t i = 1; i <= a.size(); ++i) {
    size_t lo = i > max_edits ? i - max_edits : 0;
    size_t hi = std::min(b.size(), i + max_edits);
    size_t diagonal = row[lo > 0 ? lo - 1 : 0];  // DP[i-1][lo-1]
    size_t row_min = big;
    if (lo == 0) {
      diagonal = row[0];
      row[0] = i;
      row_min = i;
    } else {
      // Left neighbour of the first band cell lies outside the band.
      row[lo - 1] = big;
    }
    for (size_t j = std::max<size_t>(lo, 1); j <= hi; ++j) {
      size_t above = row[j];
      size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      size_t best = std::min({row[j - 1] + 1, above + 1, diagonal + cost});
      row[j] = std::min(best, big);
      row_min = std::min(row_min, row[j]);
      diagonal = above;
    }
    if (hi < b.size()) row[hi + 1] = big;  // right edge of next row's band
    if (row_min > max_edits) return big;   // the band can only grow
  }
  return row[b.size()];
}

size_t BitParallelEditDistance(std::string_view a, std::string_view b,
                               size_t max_edits) {
  // Pattern = the shorter string (must fit one machine word).
  if (a.size() < b.size()) std::swap(a, b);
  if (a.size() - b.size() > max_edits) return max_edits + 1;
  uint64_t peq[256];
  BuildPeq(b, peq);
  return MyersCore(b.size(), peq, a, max_edits);
}

size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t max_edits) {
  if (a.size() < b.size()) std::swap(a, b);
  if (a.size() - b.size() > max_edits) return max_edits + 1;
  if (b.size() <= 64) return BitParallelEditDistance(a, b, max_edits);
  return BandedEditDistance(a, b, max_edits);
}

bool WithinEditDistance(std::string_view a, std::string_view b, size_t max_edits) {
  return BoundedEditDistance(a, b, max_edits) <= max_edits;
}

EditDistanceVerifier::EditDistanceVerifier(std::string_view query,
                                           size_t max_edits)
    : query_(query),
      max_edits_(max_edits),
      bit_parallel_(query.size() <= 64) {
  if (bit_parallel_) BuildPeq(query_, peq_);
}

bool EditDistanceVerifier::Matches(std::string_view candidate) const {
  const size_t longer = std::max(query_.size(), candidate.size());
  const size_t shorter = std::min(query_.size(), candidate.size());
  if (longer - shorter > max_edits_) return false;
  if (bit_parallel_) {
    return MyersCore(query_.size(), peq_, candidate, max_edits_) <= max_edits_;
  }
  return BandedEditDistance(query_, candidate, max_edits_) <= max_edits_;
}

}  // namespace detective
