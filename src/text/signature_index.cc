#include "text/signature_index.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "text/edit_distance.h"
#include "text/tokenizer.h"

namespace detective {

namespace {

/// One segment of the PASS-JOIN even partition of a string of length `total`
/// into `parts` segments: the first `parts - total % parts` segments take
/// floor(total/parts) characters, the rest one more. Computed arithmetically
/// — no per-call layout vector.
struct SegmentLayout {
  size_t start;
  size_t length;
};

SegmentLayout PartitionSegment(size_t total, size_t parts, size_t slot) {
  const size_t base = total / parts;
  const size_t shorter = parts - total % parts;
  const size_t start = slot * base + (slot > shorter ? slot - shorter : 0);
  const size_t length = base + (slot >= shorter ? 1 : 0);
  return {start, length};
}

/// Packed 64-bit ED signature: segment bytes x (indexed length, slot).
uint64_t SegmentHash(size_t length, size_t slot, std::string_view segment) {
  return HashCombine(HashCombine(Fnv1a(segment), length), slot);
}

void SortUnique(std::vector<uint32_t>* ids) {
  std::sort(ids->begin(), ids->end());
  ids->erase(std::unique(ids->begin(), ids->end()), ids->end());
}

/// Size of the intersection of two sorted, duplicate-free rank vectors.
size_t SortedIntersectionSize(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b) {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

}  // namespace

SignatureIndex::SignatureIndex(Similarity similarity) : similarity_(similarity) {}

void SignatureIndex::Add(uint32_t id, std::string_view value) {
  DETECTIVE_CHECK(!built_) << "Add after Build";
  entries_.push_back({id, arena_.Intern(value)});
}

std::vector<uint32_t>& SignatureIndex::ListSlot(uint64_t key) {
  uint32_t& slot = table_.ValueFor(key);
  if (slot == FlatKeyMap::kNotFound) {
    slot = static_cast<uint32_t>(lists_.size());
    lists_.emplace_back();
  }
  return lists_[slot];
}

void SignatureIndex::AppendList(uint64_t key, std::vector<uint32_t>* out) const {
  const uint32_t slot = table_.Find(key);
  if (slot == FlatKeyMap::kNotFound) return;
  const std::vector<uint32_t>& list = lists_[slot];
  out->insert(out->end(), list.begin(), list.end());
}

void SignatureIndex::Build() {
  DETECTIVE_CHECK(!built_) << "Build called twice";
  DETECTIVE_SCOPED_TIMER("sigindex.build");
  DETECTIVE_TRACE_SPAN("sigindex.build",
                       {"entries", static_cast<int64_t>(entries_.size())});
  DETECTIVE_COUNT_N("sigindex.entries_indexed", entries_.size());
  built_ = true;
  switch (similarity_.kind()) {
    case SimilarityKind::kEquality:
      table_.Reserve(entries_.size());
      for (uint32_t e = 0; e < entries_.size(); ++e) {
        ListSlot(Fnv1a(entries_[e].value)).push_back(e);
      }
      break;
    case SimilarityKind::kEditDistance:
      BuildEditDistance();
      break;
    case SimilarityKind::kJaccard:
    case SimilarityKind::kCosine:
      BuildPrefixFilter();
      break;
  }
}

void SignatureIndex::BuildEditDistance() {
  const size_t parts = similarity_.max_edits() + 1;
  table_.Reserve(entries_.size() * parts);
  for (uint32_t e = 0; e < entries_.size(); ++e) {
    const std::string_view value = entries_[e].value;
    if (value.size() < parts) {
      // Too short to host non-empty segments: filed under a catch-all list
      // that every query probes (such strings are rare and cheap to verify).
      short_list_.push_back(e);
      continue;
    }
    for (size_t slot = 0; slot < parts; ++slot) {
      const SegmentLayout seg = PartitionSegment(value.size(), parts, slot);
      ListSlot(SegmentHash(value.size(), slot,
                           value.substr(seg.start, seg.length)))
          .push_back(e);
    }
  }
}

void SignatureIndex::CandidatesEditDistance(std::string_view query,
                                            std::vector<uint32_t>* out) const {
  const size_t k = similarity_.max_edits();
  const size_t parts = k + 1;
  size_t probes = 1;  // the short-string probe below

  out->insert(out->end(), short_list_.begin(), short_list_.end());

  // Any match has length within k of the query; for each such length we probe
  // the segments that could appear in the query, shifted by at most k.
  size_t min_len = query.size() > k ? query.size() - k : parts;
  size_t max_len = query.size() + k;
  for (size_t len = std::max(min_len, parts); len <= max_len; ++len) {
    for (size_t slot = 0; slot < parts; ++slot) {
      const SegmentLayout seg = PartitionSegment(len, parts, slot);
      if (seg.length == 0 || seg.length > query.size()) continue;
      size_t lo = seg.start > k ? seg.start - k : 0;
      size_t hi = std::min(query.size() - seg.length, seg.start + k);
      for (size_t start = lo; start <= hi; ++start) {
        ++probes;
        AppendList(SegmentHash(len, slot, query.substr(start, seg.length)), out);
      }
    }
  }
  DETECTIVE_COUNT_N("sigindex.probes", probes);
  SortUnique(out);
}

size_t SignatureIndex::PrefixLength(size_t set_size) const {
  if (set_size == 0) return 0;
  double t = similarity_.threshold();
  double keep = similarity_.kind() == SimilarityKind::kJaccard
                    ? t * static_cast<double>(set_size)
                    : t * t * static_cast<double>(set_size);
  size_t kept = static_cast<size_t>(std::ceil(keep - 1e-9));
  if (kept > set_size) kept = set_size;
  return set_size - kept + 1;
}

void SignatureIndex::BuildPrefixFilter() {
  // Global order: ascending document frequency, ties broken lexicographically
  // (rarest tokens first maximize pruning).
  std::unordered_map<std::string, uint32_t> frequency;
  std::vector<std::vector<std::string>> token_sets(entries_.size());
  for (uint32_t e = 0; e < entries_.size(); ++e) {
    token_sets[e] = WordTokenSet(entries_[e].value);
    for (const std::string& token : token_sets[e]) ++frequency[token];
  }
  std::vector<std::pair<uint32_t, std::string>> order;
  order.reserve(frequency.size());
  for (auto& [token, count] : frequency) order.emplace_back(count, token);
  std::sort(order.begin(), order.end());
  token_rank_.reserve(order.size());
  for (uint32_t rank = 0; rank < order.size(); ++rank) {
    token_rank_.emplace(order[rank].second, rank);
  }

  rank_lists_.resize(order.size());
  entry_tokens_.resize(entries_.size());
  for (uint32_t e = 0; e < entries_.size(); ++e) {
    std::vector<uint32_t>& ranks = entry_tokens_[e];
    ranks.reserve(token_sets[e].size());
    for (const std::string& token : token_sets[e]) {
      ranks.push_back(token_rank_.find(token)->second);
    }
    std::sort(ranks.begin(), ranks.end());
    size_t prefix = PrefixLength(ranks.size());
    for (size_t i = 0; i < prefix; ++i) {
      rank_lists_[ranks[i]].push_back(e);
    }
    if (ranks.empty()) empty_list_.push_back(e);
  }
}

void SignatureIndex::CandidatesPrefixFilter(std::string_view query,
                                            std::vector<uint32_t>* out) const {
  std::vector<std::string> tokens = WordTokenSet(query);
  if (tokens.empty()) {
    out->insert(out->end(), empty_list_.begin(), empty_list_.end());
    SortUnique(out);
    return;
  }
  // Order query tokens by the global rank; tokens outside the indexed
  // vocabulary sort first (they are the rarest possible) and probe nothing.
  std::vector<std::pair<uint64_t, const std::string*>> ordered;
  ordered.reserve(tokens.size());
  for (const std::string& token : tokens) {
    auto it = token_rank_.find(token);
    // Unseen tokens get rank 0, below every known token (known ranks are
    // shifted up by one); any consistent order is correct.
    uint64_t rank = it == token_rank_.end()
                        ? 0
                        : static_cast<uint64_t>(it->second) + 1;
    ordered.emplace_back(rank, &token);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t prefix = PrefixLength(ordered.size());
  DETECTIVE_COUNT_N("sigindex.probes", prefix);
  for (size_t i = 0; i < prefix; ++i) {
    if (ordered[i].first == 0) continue;  // unseen token: no list to probe
    const std::vector<uint32_t>& list =
        rank_lists_[static_cast<size_t>(ordered[i].first - 1)];
    out->insert(out->end(), list.begin(), list.end());
  }
  SortUnique(out);
}

void SignatureIndex::CandidateEntries(std::string_view query,
                                      std::vector<uint32_t>* out) const {
  out->clear();
  switch (similarity_.kind()) {
    case SimilarityKind::kEquality:
      // Hash collisions may merge lists; entries are filtered byte-exactly
      // by the callers below.
      AppendList(Fnv1a(query), out);
      SortUnique(out);
      break;
    case SimilarityKind::kEditDistance:
      CandidatesEditDistance(query, out);
      break;
    case SimilarityKind::kJaccard:
    case SimilarityKind::kCosine:
      CandidatesPrefixFilter(query, out);
      break;
  }
}

void SignatureIndex::Candidates(std::string_view query,
                                std::vector<uint32_t>* out) const {
  DETECTIVE_CHECK(built_) << "Candidates before Build";
  CandidateEntries(query, out);
  // Rewrite entry indexes to ids in place (write index trails read index).
  size_t w = 0;
  for (uint32_t e : *out) {
    if (similarity_.kind() == SimilarityKind::kEquality &&
        entries_[e].value != query) {
      continue;  // hash-collision neighbour, not the queried value
    }
    (*out)[w++] = entries_[e].id;
  }
  out->resize(w);
  SortUnique(out);
}

bool SignatureIndex::VerifyTokenSet(const std::vector<uint32_t>& query_ranks,
                                    size_t query_size,
                                    const std::vector<uint32_t>& entry_ranks) const {
  const size_t entry_size = entry_ranks.size();
  const size_t inter = SortedIntersectionSize(query_ranks, entry_ranks);
  double score = 0;
  if (similarity_.kind() == SimilarityKind::kJaccard) {
    const size_t uni = query_size + entry_size - inter;
    score = uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
  } else {
    if (query_size == 0 && entry_size == 0) {
      score = 1.0;
    } else if (query_size == 0 || entry_size == 0) {
      score = 0.0;
    } else {
      score = static_cast<double>(inter) /
              std::sqrt(static_cast<double>(query_size) *
                        static_cast<double>(entry_size));
    }
  }
  return score >= similarity_.threshold();
}

void SignatureIndex::Matches(std::string_view query,
                             std::vector<uint32_t>* out) const {
  DETECTIVE_CHECK(built_) << "Matches before Build";
  DETECTIVE_COUNT("sigindex.queries");
  CandidateEntries(query, out);
  if (similarity_.kind() != SimilarityKind::kEquality) {
    DETECTIVE_COUNT_N("sigindex.candidates_verified", out->size());
  }
  // Verification is batched per query: candidate entry indexes arrive sorted
  // (arena order = Add order), so the value bytes stream through the column
  // arena nearly sequentially, and the per-query setup below is amortized
  // over every candidate the probed buckets produced.
  size_t w = 0;
  switch (similarity_.kind()) {
    case SimilarityKind::kEquality:
      for (uint32_t e : *out) {
        if (entries_[e].value == query) (*out)[w++] = entries_[e].id;
      }
      break;
    case SimilarityKind::kEditDistance: {
      // The Myers alphabet masks for `query` are built once, not per
      // candidate; decisions are identical to WithinEditDistance.
      EditDistanceVerifier verifier(query, similarity_.max_edits());
      for (uint32_t e : *out) {
        if (verifier.Matches(entries_[e].value)) (*out)[w++] = entries_[e].id;
      }
      break;
    }
    case SimilarityKind::kJaccard:
    case SimilarityKind::kCosine: {
      // The query is tokenized once and compared against the entries'
      // precomputed rank sets — no re-tokenization of candidate labels in
      // the loop. Ranks are bijective with in-vocabulary tokens; query
      // tokens outside the vocabulary intersect nothing and only count
      // toward the set sizes, so the scores equal Similarity::Matches'.
      const std::vector<std::string> tokens = WordTokenSet(query);
      std::vector<uint32_t> query_ranks;
      query_ranks.reserve(tokens.size());
      for (const std::string& token : tokens) {
        auto it = token_rank_.find(token);
        if (it != token_rank_.end()) query_ranks.push_back(it->second);
      }
      std::sort(query_ranks.begin(), query_ranks.end());
      for (uint32_t e : *out) {
        if (VerifyTokenSet(query_ranks, tokens.size(), entry_tokens_[e])) {
          (*out)[w++] = entries_[e].id;
        }
      }
      break;
    }
  }
  out->resize(w);
  SortUnique(out);
}

std::vector<uint32_t> SignatureIndex::Candidates(std::string_view query) const {
  std::vector<uint32_t> ids;
  Candidates(query, &ids);
  return ids;
}

std::vector<uint32_t> SignatureIndex::Matches(std::string_view query) const {
  std::vector<uint32_t> ids;
  Matches(query, &ids);
  return ids;
}

}  // namespace detective
