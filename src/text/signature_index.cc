#include "text/signature_index.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "text/tokenizer.h"

namespace detective {

namespace {

/// Segment layout of the PASS-JOIN even partition for a string of length
/// `total` split into `parts` segments: the first `parts - total % parts`
/// segments take floor(total/parts) characters, the rest one more.
struct SegmentLayout {
  size_t start;
  size_t length;
};

std::vector<SegmentLayout> PartitionLayout(size_t total, size_t parts) {
  std::vector<SegmentLayout> layout(parts);
  size_t base = total / parts;
  size_t longer = total % parts;
  size_t pos = 0;
  for (size_t i = 0; i < parts; ++i) {
    size_t len = base + (i >= parts - longer ? 1 : 0);
    layout[i] = {pos, len};
    pos += len;
  }
  return layout;
}

std::string SegmentKey(size_t length, size_t slot, std::string_view segment) {
  std::string key = std::to_string(length);
  key.push_back('|');
  key += std::to_string(slot);
  key.push_back('|');
  key.append(segment);
  return key;
}

void SortUnique(std::vector<uint32_t>* ids) {
  std::sort(ids->begin(), ids->end());
  ids->erase(std::unique(ids->begin(), ids->end()), ids->end());
}

}  // namespace

SignatureIndex::SignatureIndex(Similarity similarity) : similarity_(similarity) {}

void SignatureIndex::Add(uint32_t id, std::string_view value) {
  DETECTIVE_CHECK(!built_) << "Add after Build";
  entries_.push_back({id, std::string(value)});
}

void SignatureIndex::Build() {
  DETECTIVE_CHECK(!built_) << "Build called twice";
  DETECTIVE_SCOPED_TIMER("sigindex.build");
  DETECTIVE_TRACE_SPAN("sigindex.build",
                       {"entries", static_cast<int64_t>(entries_.size())});
  DETECTIVE_COUNT_N("sigindex.entries_indexed", entries_.size());
  built_ = true;
  switch (similarity_.kind()) {
    case SimilarityKind::kEquality:
      for (uint32_t e = 0; e < entries_.size(); ++e) {
        exact_[entries_[e].value].push_back(e);
      }
      break;
    case SimilarityKind::kEditDistance:
      BuildEditDistance();
      break;
    case SimilarityKind::kJaccard:
    case SimilarityKind::kCosine:
      BuildPrefixFilter();
      break;
  }
}

void SignatureIndex::BuildEditDistance() {
  const size_t parts = similarity_.max_edits() + 1;
  for (uint32_t e = 0; e < entries_.size(); ++e) {
    const std::string& value = entries_[e].value;
    if (value.size() < parts) {
      // Too short to host non-empty segments: filed under a catch-all list
      // that every query probes (such strings are rare and cheap to verify).
      lists_["~short"].push_back(e);
      continue;
    }
    for (size_t slot = 0; slot < parts; ++slot) {
      std::vector<SegmentLayout> layout = PartitionLayout(value.size(), parts);
      std::string_view segment(value.data() + layout[slot].start, layout[slot].length);
      lists_[SegmentKey(value.size(), slot, segment)].push_back(e);
    }
  }
}

std::vector<uint32_t> SignatureIndex::CandidatesEditDistance(
    std::string_view query) const {
  const size_t k = similarity_.max_edits();
  const size_t parts = k + 1;
  std::vector<uint32_t> out;
  size_t probes = 1;  // the ~short probe below

  if (auto it = lists_.find("~short"); it != lists_.end()) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }

  // Any match has length within k of the query; for each such length we probe
  // the segments that could appear in the query, shifted by at most k.
  size_t min_len = query.size() > k ? query.size() - k : parts;
  size_t max_len = query.size() + k;
  for (size_t len = std::max(min_len, parts); len <= max_len; ++len) {
    std::vector<SegmentLayout> layout = PartitionLayout(len, parts);
    for (size_t slot = 0; slot < parts; ++slot) {
      const SegmentLayout& seg = layout[slot];
      if (seg.length == 0 || seg.length > query.size()) continue;
      size_t lo = seg.start > k ? seg.start - k : 0;
      size_t hi = std::min(query.size() - seg.length, seg.start + k);
      for (size_t start = lo; start <= hi; ++start) {
        std::string key =
            SegmentKey(len, slot, query.substr(start, seg.length));
        ++probes;
        if (auto it = lists_.find(key); it != lists_.end()) {
          out.insert(out.end(), it->second.begin(), it->second.end());
        }
      }
    }
  }
  DETECTIVE_COUNT_N("sigindex.probes", probes);
  SortUnique(&out);
  return out;
}

size_t SignatureIndex::PrefixLength(size_t set_size) const {
  if (set_size == 0) return 0;
  double t = similarity_.threshold();
  double keep = similarity_.kind() == SimilarityKind::kJaccard
                    ? t * static_cast<double>(set_size)
                    : t * t * static_cast<double>(set_size);
  size_t kept = static_cast<size_t>(std::ceil(keep - 1e-9));
  if (kept > set_size) kept = set_size;
  return set_size - kept + 1;
}

void SignatureIndex::BuildPrefixFilter() {
  // Global order: ascending document frequency, ties broken lexicographically
  // (rarest tokens first maximize pruning).
  std::unordered_map<std::string, uint32_t> frequency;
  std::vector<std::vector<std::string>> token_sets(entries_.size());
  for (uint32_t e = 0; e < entries_.size(); ++e) {
    token_sets[e] = WordTokenSet(entries_[e].value);
    for (const std::string& token : token_sets[e]) ++frequency[token];
  }
  std::vector<std::pair<uint32_t, std::string>> order;
  order.reserve(frequency.size());
  for (auto& [token, count] : frequency) order.emplace_back(count, token);
  std::sort(order.begin(), order.end());
  token_rank_.reserve(order.size());
  for (uint32_t rank = 0; rank < order.size(); ++rank) {
    token_rank_.emplace(order[rank].second, rank);
  }

  entry_tokens_.resize(entries_.size());
  for (uint32_t e = 0; e < entries_.size(); ++e) {
    std::vector<uint32_t>& ranks = entry_tokens_[e];
    ranks.reserve(token_sets[e].size());
    for (const std::string& token : token_sets[e]) {
      ranks.push_back(token_rank_.at(token));
    }
    std::sort(ranks.begin(), ranks.end());
    size_t prefix = PrefixLength(ranks.size());
    for (size_t i = 0; i < prefix; ++i) {
      lists_[order[ranks[i]].second].push_back(e);
    }
    if (ranks.empty()) lists_["~empty"].push_back(e);
  }
}

std::vector<uint32_t> SignatureIndex::CandidatesPrefixFilter(
    std::string_view query) const {
  std::vector<std::string> tokens = WordTokenSet(query);
  std::vector<uint32_t> out;
  if (tokens.empty()) {
    if (auto it = lists_.find("~empty"); it != lists_.end()) {
      out = it->second;
    }
    SortUnique(&out);
    return out;
  }
  // Order query tokens by the global rank; tokens outside the indexed
  // vocabulary sort first (they are the rarest possible) and probe nothing.
  std::vector<std::pair<uint64_t, const std::string*>> ordered;
  ordered.reserve(tokens.size());
  for (const std::string& token : tokens) {
    auto it = token_rank_.find(token);
    // Unseen tokens get rank below every known token; disambiguate by hash
    // only for ordering stability (any consistent order is correct).
    uint64_t rank = it == token_rank_.end()
                        ? 0
                        : static_cast<uint64_t>(it->second) + 1;
    ordered.emplace_back(rank, &token);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t prefix = PrefixLength(ordered.size());
  DETECTIVE_COUNT_N("sigindex.probes", prefix);
  for (size_t i = 0; i < prefix; ++i) {
    auto it = lists_.find(*ordered[i].second);
    if (it != lists_.end()) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  SortUnique(&out);
  return out;
}

std::vector<uint32_t> SignatureIndex::Candidates(std::string_view query) const {
  DETECTIVE_CHECK(built_) << "Candidates before Build";
  std::vector<uint32_t> entry_indexes;
  switch (similarity_.kind()) {
    case SimilarityKind::kEquality: {
      auto it = exact_.find(std::string(query));
      if (it != exact_.end()) entry_indexes = it->second;
      break;
    }
    case SimilarityKind::kEditDistance:
      entry_indexes = CandidatesEditDistance(query);
      break;
    case SimilarityKind::kJaccard:
    case SimilarityKind::kCosine:
      entry_indexes = CandidatesPrefixFilter(query);
      break;
  }
  std::vector<uint32_t> ids;
  ids.reserve(entry_indexes.size());
  for (uint32_t e : entry_indexes) ids.push_back(entries_[e].id);
  SortUnique(&ids);
  return ids;
}

std::vector<uint32_t> SignatureIndex::Matches(std::string_view query) const {
  DETECTIVE_CHECK(built_) << "Matches before Build";
  DETECTIVE_COUNT("sigindex.queries");
  std::vector<uint32_t> entry_indexes;
  switch (similarity_.kind()) {
    case SimilarityKind::kEquality: {
      // Exact lookups need no verification.
      auto it = exact_.find(std::string(query));
      if (it == exact_.end()) return {};
      std::vector<uint32_t> ids;
      ids.reserve(it->second.size());
      for (uint32_t e : it->second) ids.push_back(entries_[e].id);
      SortUnique(&ids);
      return ids;
    }
    case SimilarityKind::kEditDistance:
      entry_indexes = CandidatesEditDistance(query);
      break;
    case SimilarityKind::kJaccard:
    case SimilarityKind::kCosine:
      entry_indexes = CandidatesPrefixFilter(query);
      break;
  }
  DETECTIVE_COUNT_N("sigindex.candidates_verified", entry_indexes.size());
  std::vector<uint32_t> ids;
  for (uint32_t e : entry_indexes) {
    if (similarity_.Matches(query, entries_[e].value)) ids.push_back(entries_[e].id);
  }
  SortUnique(&ids);
  return ids;
}

}  // namespace detective
