#include "text/tokenizer.h"

#include <algorithm>
#include <cctype>

namespace detective {

std::vector<std::string> WordTokens(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> WordTokenSet(std::string_view text) {
  std::vector<std::string> tokens = WordTokens(text);
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

std::vector<std::string> QGrams(std::string_view text, size_t q, bool pad) {
  std::vector<std::string> grams;
  if (q == 0) return grams;
  std::string lowered;
  lowered.reserve(text.size() + (pad ? 2 * (q - 1) : 0));
  if (pad) lowered.append(q - 1, '#');
  for (char c : text) {
    lowered.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (pad) lowered.append(q - 1, '$');
  if (lowered.size() < q) return grams;
  grams.reserve(lowered.size() - q + 1);
  for (size_t i = 0; i + q <= lowered.size(); ++i) {
    grams.emplace_back(lowered.substr(i, q));
  }
  std::sort(grams.begin(), grams.end());
  return grams;
}

}  // namespace detective
