#ifndef DETECTIVE_TEXT_EDIT_DISTANCE_H_
#define DETECTIVE_TEXT_EDIT_DISTANCE_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace detective {

/// Levenshtein distance (insert / delete / substitute, unit costs).
/// O(|a|·|b|) time, O(min(|a|,|b|)) space. The reference kernel: the banded
/// and bit-parallel kernels below are tested against it property-style.
size_t EditDistance(std::string_view a, std::string_view b);

/// Banded (Ukkonen) Levenshtein: returns the exact distance when it is
/// <= `max_edits`, otherwise any value > `max_edits`. Only cells within
/// `max_edits` of the diagonal can hold an in-band value, so the DP runs a
/// band of width 2k+1 per row and exits as soon as the whole band exceeds
/// the threshold. O((|a|+|b|)·max_edits) time, O(min) space.
size_t BandedEditDistance(std::string_view a, std::string_view b,
                          size_t max_edits);

/// Bit-parallel (Myers 1999) Levenshtein with the Ukkonen early exit:
/// requires min(|a|,|b|) <= 64 (the shorter string is encoded in one 64-bit
/// word per alphabet byte). Returns the exact distance when it is
/// <= `max_edits`, otherwise any value > `max_edits`. One word of ~15
/// bit-ops per text character — the whole DP column in a register.
size_t BitParallelEditDistance(std::string_view a, std::string_view b,
                               size_t max_edits);

/// Kernel dispatcher — the verification step behind the paper's "ED, k"
/// matching operation. Length-difference prefilter, then the bit-parallel
/// kernel when the shorter string fits 64 characters, the banded kernel
/// otherwise. Same contract as the kernels: exact when <= `max_edits`,
/// any value > `max_edits` otherwise.
size_t BoundedEditDistance(std::string_view a, std::string_view b,
                           size_t max_edits);

/// True iff EditDistance(a, b) <= max_edits.
bool WithinEditDistance(std::string_view a, std::string_view b, size_t max_edits);

/// Batched verifier for one query against many candidates (the
/// per-signature-bucket verification loop of text/signature_index.cc, where
/// each query is checked against ~tens of bucket candidates). Hoists the
/// per-query work out of the loop: the Myers alphabet masks (PEQ) are built
/// once here, so each Matches() call is just the O(|candidate|) scan.
///
/// Holds a view of `query`; the caller keeps the bytes alive while the
/// verifier is in use. No allocation; safe to place on the stack per query.
class EditDistanceVerifier {
 public:
  EditDistanceVerifier(std::string_view query, size_t max_edits);

  /// True iff EditDistance(query, candidate) <= max_edits. Identical
  /// decisions to WithinEditDistance(query, candidate, max_edits).
  bool Matches(std::string_view candidate) const;

  size_t max_edits() const { return max_edits_; }

 private:
  std::string_view query_;
  size_t max_edits_;
  bool bit_parallel_;   // query fits the 64-bit kernel
  uint64_t peq_[256];   // PEQ[c]: positions of byte c in query (bit-parallel)
};

}  // namespace detective

#endif  // DETECTIVE_TEXT_EDIT_DISTANCE_H_
