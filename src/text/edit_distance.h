#ifndef DETECTIVE_TEXT_EDIT_DISTANCE_H_
#define DETECTIVE_TEXT_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace detective {

/// Levenshtein distance (insert / delete / substitute, unit costs).
/// O(|a|·|b|) time, O(min(|a|,|b|)) space.
size_t EditDistance(std::string_view a, std::string_view b);

/// Banded Levenshtein: returns the exact distance when it is <= `max_edits`,
/// otherwise any value > `max_edits`. O((|a|+|b|)·max_edits) time — this is
/// the verification step behind the paper's "ED, k" matching operation.
size_t BoundedEditDistance(std::string_view a, std::string_view b, size_t max_edits);

/// True iff EditDistance(a, b) <= max_edits.
bool WithinEditDistance(std::string_view a, std::string_view b, size_t max_edits);

}  // namespace detective

#endif  // DETECTIVE_TEXT_EDIT_DISTANCE_H_
