#ifndef DETECTIVE_TEXT_SIGNATURE_INDEX_H_
#define DETECTIVE_TEXT_SIGNATURE_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/string_util.h"
#include "text/similarity.h"

namespace detective {

/// Signature-based inverted index over a string collection (paper §IV-B(2)).
///
/// "For each type(u), we generate signatures for each instance in KB
///  belonging to type(u). If a cell value can match an instance, they must
///  share a common signature... for each signature we maintain an inverted
///  list of instances that contain the signature."
///
/// Signature schemes by similarity kind:
///   - equality:      the whole string (a plain hash index);
///   - edit distance: PASS-JOIN partitions — each indexed string is split
///     into `max_edits`+1 segments; by pigeonhole, any string within k edits
///     must contain one segment verbatim at a compatible position;
///   - Jaccard/Cosine: prefix filtering — tokens are globally ordered by
///     ascending frequency; two sets meeting the threshold must share a token
///     in each other's prefix.
///
/// `Candidates()` returns a superset of the true matches (the completeness
/// property our tests check); `Matches()` verifies candidates with the exact
/// similarity predicate.
///
/// Storage: indexed strings are interned into an arena (one compact copy,
/// `string_view` entries), and ED/equality signatures are packed 64-bit
/// hashes in a flat open-addressed table (common/hash.h) instead of
/// "slot|len|segment" string keys. A hash collision merges two inverted
/// lists, which only widens the candidate superset — soundness is preserved
/// because Matches() verifies, and the equality path re-checks stored bytes.
///
/// Frozen after Build(): all lookups are const and safe to share across
/// threads (core/match_plan.h).
class SignatureIndex {
 public:
  explicit SignatureIndex(Similarity similarity);

  /// Registers a string under the caller's id (ids may repeat across values;
  /// one id per Add call). Must be called before Build().
  void Add(uint32_t id, std::string_view value);

  /// Finalizes the index. Add() must not be called afterwards.
  void Build();

  /// Ids whose values *may* match `query` (no false negatives). Sorted,
  /// deduplicated.
  std::vector<uint32_t> Candidates(std::string_view query) const;

  /// Ids whose values match `query` under the similarity. Sorted.
  std::vector<uint32_t> Matches(std::string_view query) const;

  /// Scratch-buffer overloads for the hot path: `*out` is cleared and
  /// refilled, reusing its capacity across calls instead of allocating a
  /// fresh vector per lookup.
  void Candidates(std::string_view query, std::vector<uint32_t>* out) const;
  void Matches(std::string_view query, std::vector<uint32_t>* out) const;

  size_t size() const { return entries_.size(); }
  const Similarity& similarity() const { return similarity_; }

 private:
  struct Entry {
    uint32_t id;
    std::string_view value;  // bytes live in arena_
  };

  /// Fills `*out` with entry indexes (sorted, deduplicated) that may match.
  void CandidateEntries(std::string_view query, std::vector<uint32_t>* out) const;

  // --- edit-distance scheme (PASS-JOIN segment signatures) ---
  void BuildEditDistance();
  void CandidatesEditDistance(std::string_view query,
                              std::vector<uint32_t>* out) const;

  // --- prefix-filter scheme ---
  void BuildPrefixFilter();
  void CandidatesPrefixFilter(std::string_view query,
                              std::vector<uint32_t>* out) const;
  size_t PrefixLength(size_t set_size) const;

  /// Batched Jaccard/Cosine verification: does the query token set
  /// (represented by its sorted in-vocabulary ranks + total distinct-token
  /// count) meet the threshold against entry rank set `entry_ranks`? Same
  /// decisions as Similarity::Matches over the raw strings.
  bool VerifyTokenSet(const std::vector<uint32_t>& query_ranks, size_t query_size,
                      const std::vector<uint32_t>& entry_ranks) const;

  /// Appends the inverted list stored under the packed `key`, if any.
  void AppendList(uint64_t key, std::vector<uint32_t>* out) const;
  /// The pool list for `key` during Build(), minted on first use.
  std::vector<uint32_t>& ListSlot(uint64_t key);

  Similarity similarity_;
  bool built_ = false;
  std::vector<Entry> entries_;
  StringArena arena_;

  // equality / ED: packed 64-bit signature hash -> index into lists_.
  FlatKeyMap table_;
  std::vector<std::vector<uint32_t>> lists_;
  // ED: entries too short to host non-empty segments; probed by every query.
  std::vector<uint32_t> short_list_;

  // prefix filter: token -> global frequency rank. Kept exact (no hashed
  // keys): a collision here would reorder the global token preorder and
  // break the prefix-filter completeness guarantee, not just widen it.
  std::unordered_map<std::string, uint32_t, StringViewHash, std::equal_to<>>
      token_rank_;
  // rank -> entry indexes whose prefix contains the token of that rank.
  std::vector<std::vector<uint32_t>> rank_lists_;
  // entries that tokenize to nothing; probed by token-free queries.
  std::vector<uint32_t> empty_list_;
  // token sets of indexed entries, ordered by rank (parallel to entries_)
  std::vector<std::vector<uint32_t>> entry_tokens_;
};

}  // namespace detective

#endif  // DETECTIVE_TEXT_SIGNATURE_INDEX_H_
