#ifndef DETECTIVE_TEXT_SIGNATURE_INDEX_H_
#define DETECTIVE_TEXT_SIGNATURE_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/similarity.h"

namespace detective {

/// Signature-based inverted index over a string collection (paper §IV-B(2)).
///
/// "For each type(u), we generate signatures for each instance in KB
///  belonging to type(u). If a cell value can match an instance, they must
///  share a common signature... for each signature we maintain an inverted
///  list of instances that contain the signature."
///
/// Signature schemes by similarity kind:
///   - equality:      the whole string (a plain hash index);
///   - edit distance: PASS-JOIN partitions — each indexed string is split
///     into `max_edits`+1 segments; by pigeonhole, any string within k edits
///     must contain one segment verbatim at a compatible position;
///   - Jaccard/Cosine: prefix filtering — tokens are globally ordered by
///     ascending frequency; two sets meeting the threshold must share a token
///     in each other's prefix.
///
/// `Candidates()` returns a superset of the true matches (the completeness
/// property our tests check); `Matches()` verifies candidates with the exact
/// similarity predicate.
class SignatureIndex {
 public:
  explicit SignatureIndex(Similarity similarity);

  /// Registers a string under the caller's id (ids may repeat across values;
  /// one id per Add call). Must be called before Build().
  void Add(uint32_t id, std::string_view value);

  /// Finalizes the index. Add() must not be called afterwards.
  void Build();

  /// Ids whose values *may* match `query` (no false negatives). Sorted,
  /// deduplicated.
  std::vector<uint32_t> Candidates(std::string_view query) const;

  /// Ids whose values match `query` under the similarity. Sorted.
  std::vector<uint32_t> Matches(std::string_view query) const;

  size_t size() const { return entries_.size(); }
  const Similarity& similarity() const { return similarity_; }

  /// Number of inverted-list probes the last Candidates() call performed —
  /// exposed for the micro-benchmarks and tests of pruning power.
  struct Stats {
    size_t probes = 0;
    size_t candidates = 0;
  };

 private:
  struct Entry {
    uint32_t id;
    std::string value;
  };

  // --- edit-distance scheme ---
  // Key: (segment slot, segment length bucket...) encoded into the string key
  // "slot|len|segment"; value: entry indexes.
  void BuildEditDistance();
  std::vector<uint32_t> CandidatesEditDistance(std::string_view query) const;

  // --- prefix-filter scheme ---
  void BuildPrefixFilter();
  std::vector<uint32_t> CandidatesPrefixFilter(std::string_view query) const;
  size_t PrefixLength(size_t set_size) const;

  Similarity similarity_;
  bool built_ = false;
  std::vector<Entry> entries_;

  // equality: value -> entry indexes
  std::unordered_map<std::string, std::vector<uint32_t>> exact_;
  // ED / prefix: signature -> entry indexes
  std::unordered_map<std::string, std::vector<uint32_t>> lists_;
  // prefix filter: token -> global frequency rank
  std::unordered_map<std::string, uint32_t> token_rank_;
  // token sets of indexed entries, ordered by rank (parallel to entries_)
  std::vector<std::vector<uint32_t>> entry_tokens_;
};

}  // namespace detective

#endif  // DETECTIVE_TEXT_SIGNATURE_INDEX_H_
