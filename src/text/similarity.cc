#include "text/similarity.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "text/edit_distance.h"
#include "text/tokenizer.h"

namespace detective {

namespace {

size_t IntersectionSize(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

}  // namespace

double JaccardSimilarity(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = WordTokenSet(a);
  std::vector<std::string> tb = WordTokenSet(b);
  if (ta.empty() && tb.empty()) return 1.0;
  size_t inter = IntersectionSize(ta, tb);
  size_t uni = ta.size() + tb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double CosineSimilarity(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = WordTokenSet(a);
  std::vector<std::string> tb = WordTokenSet(b);
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  size_t inter = IntersectionSize(ta, tb);
  return static_cast<double>(inter) /
         std::sqrt(static_cast<double>(ta.size()) * static_cast<double>(tb.size()));
}

bool Similarity::Matches(std::string_view a, std::string_view b) const {
  switch (kind_) {
    case SimilarityKind::kEquality:
      return a == b;
    case SimilarityKind::kEditDistance:
      return WithinEditDistance(a, b, max_edits_);
    case SimilarityKind::kJaccard:
      return JaccardSimilarity(a, b) >= threshold_;
    case SimilarityKind::kCosine:
      return CosineSimilarity(a, b) >= threshold_;
  }
  return false;
}

double Similarity::Score(std::string_view a, std::string_view b) const {
  switch (kind_) {
    case SimilarityKind::kEquality:
      return a == b ? 1.0 : 0.0;
    case SimilarityKind::kEditDistance: {
      if (a.empty() && b.empty()) return 1.0;
      double ed = static_cast<double>(::detective::EditDistance(a, b));
      return 1.0 - ed / static_cast<double>(std::max(a.size(), b.size()));
    }
    case SimilarityKind::kJaccard:
      return JaccardSimilarity(a, b);
    case SimilarityKind::kCosine:
      return CosineSimilarity(a, b);
  }
  return 0.0;
}

std::string Similarity::ToString() const {
  switch (kind_) {
    case SimilarityKind::kEquality:
      return "=";
    case SimilarityKind::kEditDistance:
      return "ED," + std::to_string(max_edits_);
    case SimilarityKind::kJaccard:
    case SimilarityKind::kCosine: {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%s,%.2f",
                    kind_ == SimilarityKind::kJaccard ? "JAC" : "COS", threshold_);
      return buffer;
    }
  }
  return "?";
}

Result<Similarity> Similarity::Parse(std::string_view text) {
  std::string_view trimmed = TrimView(text);
  if (trimmed == "=" || EqualsIgnoreCase(trimmed, "EQ")) return Equality();

  size_t comma = trimmed.find(',');
  if (comma == std::string_view::npos) {
    return Status::ParseError("cannot parse similarity '", trimmed, "'");
  }
  std::string_view name = TrimView(trimmed.substr(0, comma));
  std::string_view arg = TrimView(trimmed.substr(comma + 1));
  if (EqualsIgnoreCase(name, "ED")) {
    uint64_t edits = 0;
    if (!ParseUint64(arg, &edits) || edits > 16) {
      return Status::ParseError("bad edit-distance bound '", arg, "'");
    }
    return EditDistance(static_cast<uint32_t>(edits));
  }
  double threshold = 0;
  if (!ParseDouble(arg, &threshold) || threshold < 0 || threshold > 1) {
    return Status::ParseError("bad similarity threshold '", arg, "'");
  }
  if (EqualsIgnoreCase(name, "JAC") || EqualsIgnoreCase(name, "JACCARD")) {
    return Jaccard(threshold);
  }
  if (EqualsIgnoreCase(name, "COS") || EqualsIgnoreCase(name, "COSINE")) {
    return Cosine(threshold);
  }
  return Status::ParseError("unknown similarity function '", name, "'");
}

}  // namespace detective
