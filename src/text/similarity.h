#ifndef DETECTIVE_TEXT_SIMILARITY_H_
#define DETECTIVE_TEXT_SIMILARITY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace detective {

/// The matching operations a detective-rule node may carry (paper §II-B:
/// "We can utilize similarity functions, e.g., Jaccard, Cosine or edit
/// distance"; equality and ED are the paper's running examples).
enum class SimilarityKind : uint8_t {
  kEquality,      // exact string equality ("=")
  kEditDistance,  // EditDistance(a, b) <= max_edits ("ED,k")
  kJaccard,       // Jaccard(tokens) >= threshold ("JAC,t")
  kCosine,        // Cosine(tokens)  >= threshold ("COS,t")
};

/// A value object describing one matching operation. Cheap to copy, hashable
/// and comparable so it can key per-(column,type,sim) index caches.
class Similarity {
 public:
  /// Defaults to exact equality — the most common operation in the paper.
  Similarity() = default;

  static Similarity Equality() { return Similarity(SimilarityKind::kEquality, 0, 0); }
  static Similarity EditDistance(uint32_t max_edits) {
    return Similarity(SimilarityKind::kEditDistance, max_edits, 0);
  }
  static Similarity Jaccard(double threshold) {
    return Similarity(SimilarityKind::kJaccard, 0, threshold);
  }
  static Similarity Cosine(double threshold) {
    return Similarity(SimilarityKind::kCosine, 0, threshold);
  }

  SimilarityKind kind() const { return kind_; }
  uint32_t max_edits() const { return max_edits_; }
  double threshold() const { return threshold_; }

  /// Whether `a` and `b` refer to the same entity under this operation.
  bool Matches(std::string_view a, std::string_view b) const;

  /// Normalized similarity in [0, 1] (1 = identical); used by baselines that
  /// rank repair candidates.
  double Score(std::string_view a, std::string_view b) const;

  /// "=", "ED,2", "JAC,0.80", "COS,0.80" — the notation of paper Fig. 2.
  std::string ToString() const;

  /// Inverse of ToString; accepts what the rule DSL writes.
  static Result<Similarity> Parse(std::string_view text);

  friend bool operator==(const Similarity&, const Similarity&) = default;

 private:
  Similarity(SimilarityKind kind, uint32_t max_edits, double threshold)
      : kind_(kind), max_edits_(max_edits), threshold_(threshold) {}

  SimilarityKind kind_ = SimilarityKind::kEquality;
  uint32_t max_edits_ = 0;
  double threshold_ = 0;
};

/// Jaccard coefficient of the word-token sets of `a` and `b`.
double JaccardSimilarity(std::string_view a, std::string_view b);

/// Cosine similarity of the word-token sets (binary weights).
double CosineSimilarity(std::string_view a, std::string_view b);

}  // namespace detective

template <>
struct std::hash<detective::Similarity> {
  size_t operator()(const detective::Similarity& s) const {
    size_t h = static_cast<size_t>(s.kind());
    h = h * 1000003 + s.max_edits();
    h = h * 1000003 + std::hash<double>{}(s.threshold());
    return h;
  }
};

#endif  // DETECTIVE_TEXT_SIMILARITY_H_
