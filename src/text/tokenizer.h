#ifndef DETECTIVE_TEXT_TOKENIZER_H_
#define DETECTIVE_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace detective {

/// Splits on non-alphanumeric characters and lowercases (ASCII); used by the
/// set-similarity functions (Jaccard / Cosine).
std::vector<std::string> WordTokens(std::string_view text);

/// Distinct sorted word tokens — the set representation.
std::vector<std::string> WordTokenSet(std::string_view text);

/// Overlapping character q-grams of the lowercased input. When
/// `pad` is true the string is padded with q-1 '#' / '$' sentinels so every
/// character participates in q grams. Returns the multiset (duplicates kept,
/// sorted).
std::vector<std::string> QGrams(std::string_view text, size_t q, bool pad = true);

}  // namespace detective

#endif  // DETECTIVE_TEXT_TOKENIZER_H_
