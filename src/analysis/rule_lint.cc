#include "analysis/rule_lint.h"

#include <algorithm>
#include <string>
#include <utility>

#include "analysis/rule_interaction_graph.h"
#include "analysis/stratification.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/tarjan.h"

namespace detective::analysis {
namespace {

/// True when `node` is anchored on the KB literal vertex space.
bool IsLiteralType(const KnowledgeBase& kb, const MatchNode& node) {
  return node.type == kb.ClassName(kb.literal_class());
}

/// Can a single cell value simultaneously satisfy the two node constraints?
/// Distinct rule nodes may bind distinct KB items, so different types do NOT
/// preclude co-binding in general; the one sound refutation is
/// ProvablyLabelDisjoint (analysis/stratification.h): both sims exact
/// equality over provably label-disjoint classes.
bool NodesCanCoBind(const KnowledgeBase& kb, const MatchNode& a, const MatchNode& b,
                    size_t max_probes, size_t* probes) {
  return !ProvablyLabelDisjoint(kb, a, b, max_probes, probes);
}

/// The way a rule derives corrections: the target node's constraints plus its
/// incident edges, each with direction, relation, and the constraints of the
/// far endpoint. Two rules with equal derivation signatures compute the same
/// candidate corrections from the same evidence binding.
std::vector<std::string> DerivationSignature(const DetectiveRule& rule,
                                             uint32_t target) {
  const SchemaMatchingGraph& graph = rule.graph();
  const MatchNode& node = graph.node(target);
  std::vector<std::string> parts;
  parts.push_back("target type=" + node.type + " sim=" + node.sim.ToString());
  for (const MatchEdge& edge : graph.edges()) {
    if (edge.from != target && edge.to != target) continue;
    bool outgoing = edge.from == target;
    const MatchNode& other = graph.node(outgoing ? edge.to : edge.from);
    parts.push_back(std::string(outgoing ? "out " : "in ") + edge.relation +
                    " col=" + other.column + " type=" + other.type +
                    " sim=" + other.sim.ToString());
  }
  std::sort(parts.begin() + 1, parts.end());
  return parts;
}

/// Per-rule checks: well-formedness, satisfiability, KB vocabulary and
/// coverage. Returns false when the rule is malformed (cross-rule analyses
/// must skip it).
bool LintSingleRule(const DetectiveRule& rule, const KnowledgeBase& kb,
                    const LintOptions& options, size_t* probes,
                    DiagnosticReport* report) {
  Status valid = rule.Validate();
  if (!valid.ok()) {
    report->Add({.severity = Severity::kError,
                 .code = DiagnosticCode::kMalformedRule,
                 .message = valid.ToString(),
                 .rules = {rule.name()},
                 .column = {}});
    return false;
  }

  const SchemaMatchingGraph& graph = rule.graph();

  // Satisfiability: a literal-typed node with an out-edge can never be
  // instantiated — KB literals are leaf vertices (never triple subjects).
  for (const MatchEdge& edge : graph.edges()) {
    const MatchNode& from = graph.node(edge.from);
    if (!IsLiteralType(kb, from)) continue;
    std::string where = from.IsExistential() ? std::string("an existential node")
                                             : "the node on column '" + from.column + "'";
    report->Add({.severity = Severity::kError,
                 .code = DiagnosticCode::kUnsatisfiablePattern,
                 .message = where + " is literal-typed but is the subject of edge '" +
                            edge.relation +
                            "' — KB literals have no out-edges, so the pattern can "
                            "never be instantiated",
                 .rules = {rule.name()},
                 .column = from.column});
  }

  // KB vocabulary: unknown class or relationship means zero static match
  // possibility — the rule can never fire against this KB.
  for (const MatchNode& node : graph.nodes()) {
    ClassId cls = kb.FindClass(node.type);
    if (!cls.valid()) {
      report->Add({.severity = Severity::kError,
                   .code = DiagnosticCode::kUnsupportedClass,
                   .message = "class '" + node.type +
                              "' is not declared in the KB; the node can never "
                              "match and the rule is dead",
                   .rules = {rule.name()},
                   .column = node.column});
    } else if (kb.InstancesOf(cls).empty()) {
      report->Add({.severity = Severity::kWarning,
                   .code = DiagnosticCode::kEmptyClass,
                   .message = "class '" + node.type +
                              "' has no instances in the KB; the rule cannot fire "
                              "until the KB gains coverage",
                   .rules = {rule.name()},
                   .column = node.column});
    }
  }
  for (const MatchEdge& edge : graph.edges()) {
    if (!kb.FindRelation(edge.relation).valid()) {
      report->Add({.severity = Severity::kError,
                   .code = DiagnosticCode::kUnsupportedRelation,
                   .message = "relationship '" + edge.relation +
                              "' is not declared in the KB; the edge can never "
                              "match and the rule is dead",
                   .rules = {rule.name()},
                   .column = {}});
    }
  }

  // KB coverage: relation and endpoint classes all exist — does any triple
  // actually join instances of the two types? Bounded probe; inconclusive
  // beyond the cap.
  if (options.check_edge_support) {
    for (const MatchEdge& edge : graph.edges()) {
      RelationId relation = kb.FindRelation(edge.relation);
      const MatchNode& from = graph.node(edge.from);
      const MatchNode& to = graph.node(edge.to);
      ClassId from_class = kb.FindClass(from.type);
      ClassId to_class = kb.FindClass(to.type);
      if (!relation.valid() || !from_class.valid() || !to_class.valid()) continue;
      if (IsLiteralType(kb, from)) continue;  // already unsatisfiable above
      std::span<const ItemId> sources = kb.InstancesOf(from_class);
      if (sources.empty()) continue;  // already kEmptyClass above
      bool witness = false;
      bool conclusive = true;
      for (ItemId source : sources) {
        if (++*probes > options.max_support_probes) {
          conclusive = false;
          break;
        }
        for (const KbEdge& kb_edge : kb.Objects(source, relation)) {
          if (++*probes > options.max_support_probes) {
            conclusive = false;
            break;
          }
          if (kb.IsInstanceOf(kb_edge.target, to_class)) {
            witness = true;
            break;
          }
        }
        if (witness || !conclusive) break;
      }
      if (conclusive && !witness) {
        report->Add({.severity = Severity::kWarning,
                     .code = DiagnosticCode::kUnsupportedEdge,
                     .message = "no KB triple with relationship '" + edge.relation +
                                "' joins an instance of '" + from.type +
                                "' to an instance of '" + to.type +
                                "': zero static match possibility for this edge",
                     .rules = {rule.name()},
                     .column = {}});
      }
    }
  }
  return true;
}

/// Cross-rule conflict analysis for one pair over a shared target column
/// (pairwise pattern unification, the static form of §III-C compatibility).
void LintRulePair(const DetectiveRule& a, const DetectiveRule& b,
                  const KnowledgeBase& kb, const LintOptions& options,
                  size_t* probes, DiagnosticReport* report) {
  const std::string& column = a.TargetColumn();

  if (a.graph() == b.graph() && a.positive_node() == b.positive_node() &&
      a.negative_node() == b.negative_node()) {
    if (options.emit_info) {
      report->Add({.severity = Severity::kInfo,
                   .code = DiagnosticCode::kConflictingRules,
                   .message = "rules are identical; one of them is redundant",
                   .rules = {a.name(), b.name()},
                   .column = column});
    }
    return;
  }

  // Unify the negative patterns: both rules fire on one tuple only if every
  // column their negative sides share can co-bind. One provably disjoint
  // column refutes the pair ever colliding. The positive nodes stay out of
  // it — they constrain the correction, not the firing tuple.
  for (uint32_t i = 0; i < a.graph().nodes().size(); ++i) {
    if (i == a.positive_node()) continue;
    const MatchNode& node_a = a.graph().node(i);
    if (node_a.IsExistential()) continue;
    uint32_t j = node_a.column == column ? b.negative_node()
                                         : b.graph().FindNodeByColumn(node_a.column);
    if (j == b.graph().nodes().size() || j == b.positive_node()) continue;
    const MatchNode& node_b = b.graph().node(j);
    if (!NodesCanCoBind(kb, node_a, node_b, options.max_support_probes, probes)) {
      return;  // statically disjoint: the rules can never fire together
    }
  }

  // Same corrections? Equal positive sides (graphs minus the negative nodes)
  // derive equal corrections, so the pair is compatible.
  if (SchemaMatchingGraph::EquivalentExceptNode(a.graph(), a.negative_node(),
                                                b.graph(), b.negative_node())) {
    if (options.emit_info) {
      report->Add({.severity = Severity::kInfo,
                   .code = DiagnosticCode::kConflictingRules,
                   .message = "rules share one positive pattern and differ only in "
                              "the negative pattern; corrections always agree",
                   .rules = {a.name(), b.name()},
                   .column = column});
    }
    return;
  }

  // The positive sides differ. If the correction derivation around p is
  // still identical, the rules disagree only through evidence selection —
  // report as a warning; a diverging derivation is a hard conflict.
  bool same_derivation = DerivationSignature(a, a.positive_node()) ==
                         DerivationSignature(b, b.positive_node());
  if (same_derivation) {
    report->Add(
        {.severity = Severity::kWarning,
         .code = DiagnosticCode::kConflictingRules,
         .message = "rules derive corrections identically but constrain different "
                    "evidence; different evidence bindings may still select "
                    "different corrections for one cell",
         .rules = {a.name(), b.name()},
         .column = column});
  } else {
    report->Add(
        {.severity = Severity::kError,
         .code = DiagnosticCode::kConflictingRules,
         .message = "negative patterns can bind the same cell but the positive "
                    "patterns derive corrections differently, so the two rules "
                    "can force different repairs (order-dependent fixpoint)",
         .rules = {a.name(), b.name()},
         .column = column});
  }
}

}  // namespace

DiagnosticReport LintRules(const std::vector<DetectiveRule>& rules,
                           const KnowledgeBase& kb, const LintOptions& options) {
  DETECTIVE_SCOPED_TIMER("lint.rules");
  DETECTIVE_COUNT_N("lint.rules_checked", rules.size());

  DiagnosticReport report;
  size_t probes = 0;
  std::vector<char> well_formed(rules.size(), 0);
  for (size_t i = 0; i < rules.size(); ++i) {
    well_formed[i] =
        LintSingleRule(rules[i], kb, options, &probes, &report) ? 1 : 0;
  }

  // Conflicts: pairwise over rules that judge the same column.
  for (size_t i = 0; i < rules.size(); ++i) {
    if (!well_formed[i]) continue;
    for (size_t j = i + 1; j < rules.size(); ++j) {
      if (!well_formed[j]) continue;
      if (rules[i].TargetColumn() != rules[j].TargetColumn()) continue;
      DETECTIVE_COUNT("lint.conflict_pairs_checked");
      LintRulePair(rules[i], rules[j], kb, options, &probes, &report);
    }
  }

  // Termination: cycles of the interaction graph. Malformed rules are
  // excluded (their columns are not trustworthy), preserving rule names.
  std::vector<DetectiveRule> sound;
  sound.reserve(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    if (well_formed[i]) sound.push_back(rules[i]);
  }
  RuleInteractionGraph interactions(sound);
  if (!interactions.Cycles().empty()) {
    // Refine the nominal interaction graph with pairwise pattern unification
    // before judging cycles: an edge between two statically mutually
    // exclusive rules (analysis/stratification.h) can never be traversed at
    // chase time, so a cycle whose SCC dissolves without those edges cannot
    // oscillate and is downgraded to an observation.
    const size_t n = sound.size();
    std::vector<char> exclusive(n * n, 0);
    for (const ExclusivePair& pair : FindExclusivePairs(
             sound, kb, options.max_support_probes, &probes)) {
      exclusive[pair.a * n + pair.b] = 1;
      exclusive[pair.b * n + pair.a] = 1;
    }
    std::vector<std::vector<uint32_t>> nominal(n);
    std::vector<std::vector<uint32_t>> refined(n);
    for (uint32_t r = 0; r < n; ++r) {
      for (const RuleInteractionGraph::Edge& edge : interactions.Successors(r)) {
        nominal[r].push_back(edge.to);
        if (exclusive[r * n + edge.to] == 0) refined[r].push_back(edge.to);
      }
    }
    TarjanScc nominal_scc(nominal);
    nominal_scc.Run();
    TarjanScc refined_scc(refined);
    refined_scc.Run();
    std::vector<uint32_t> refined_size(refined_scc.count(), 0);
    for (uint32_t r = 0; r < n; ++r) ++refined_size[refined_scc.component()[r]];

    for (const std::vector<uint32_t>& cycle : interactions.Cycles()) {
      std::vector<std::string> names;
      names.reserve(cycle.size());
      for (uint32_t r : cycle) names.push_back(sound[r].name());
      std::vector<std::string> columns = interactions.CycleColumns(cycle);
      std::string path = names.front();
      for (size_t i = 0; i + 1 < cycle.size(); ++i) {
        path += " -[" + columns[i] + "]-> " + names[i + 1];
      }
      // The cycle's nominal SCC survives refinement iff any of the SCC's
      // rules still lives in a multi-rule refined component (a refuted edge
      // elsewhere in the SCC may leave a smaller cycle behind, so the whole
      // SCC is checked, not just the witness path).
      const uint32_t scc = nominal_scc.component()[cycle.front()];
      bool survives = false;
      for (uint32_t r = 0; r < n && !survives; ++r) {
        survives = nominal_scc.component()[r] == scc &&
                   refined_size[refined_scc.component()[r]] > 1;
      }
      if (survives) {
        report.Add({.severity = Severity::kError,
                    .code = DiagnosticCode::kOscillationCycle,
                    .message = "rule interaction cycle " + path +
                               ": each rule repairs a column the next binds as "
                               "evidence, so corrections can oscillate and the "
                               "fixpoint depends on application order",
                    .rules = std::move(names),
                    .column = columns.empty() ? std::string() : columns.front()});
      } else if (options.emit_info) {
        report.Add({.severity = Severity::kInfo,
                    .code = DiagnosticCode::kOscillationCycle,
                    .message = "rule interaction cycle " + path +
                               " is statically refuted: pattern unification "
                               "proves the rules mutually exclusive per tuple "
                               "(label-disjoint evidence on a stable column), "
                               "so the cycle can never be traversed",
                    .rules = std::move(names),
                    .column = columns.empty() ? std::string() : columns.front()});
      }
    }
  }

  DETECTIVE_COUNT_N("lint.support_probes", probes);
  DETECTIVE_COUNT_N("lint.errors", report.errors());
  DETECTIVE_COUNT_N("lint.warnings", report.warnings());
  return report;
}

}  // namespace detective::analysis
