#ifndef DETECTIVE_ANALYSIS_DIAGNOSTICS_H_
#define DETECTIVE_ANALYSIS_DIAGNOSTICS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace detective::analysis {

/// How bad a finding is. `kError` findings make a rule set unloadable under
/// `--lint=strict`; `kWarning` findings are surfaced but do not block;
/// `kInfo` findings are observations (e.g. a rule pair that provably agrees).
enum class Severity : uint8_t {
  kInfo = 0,
  kWarning = 1,
  kError = 2,
};

/// Stable lowercase name ("info", "warning", "error").
std::string_view SeverityName(Severity severity);

/// The diagnostic classes of the static rule analyzer (docs/static_analysis.md).
enum class DiagnosticCode : uint8_t {
  /// Two rules over the same target column whose negative patterns can bind
  /// the same cell while their positive patterns force different corrections
  /// (paper §III-C: the rules are not compatible).
  kConflictingRules = 0,
  /// A cycle in the rule interaction graph: each rule's repaired column
  /// feeds the next rule's pattern, so corrections can oscillate between
  /// application orders instead of converging to one fixpoint.
  kOscillationCycle = 1,
  /// A rule node names a class the KB does not declare: the node can never
  /// match an instance, so the rule is dead.
  kUnsupportedClass = 2,
  /// A rule edge names a relationship the KB does not declare.
  kUnsupportedRelation = 3,
  /// The class exists but has zero instances — statically dead until the KB
  /// gains coverage.
  kEmptyClass = 4,
  /// Class and relationship both exist, but no KB edge with that label joins
  /// instances of the two endpoint types: zero static match possibility.
  kUnsupportedEdge = 5,
  /// The pattern graph cannot be instantiated against any KB: a literal-typed
  /// node used as an edge subject, a disconnected side, or contradictory node
  /// constraints.
  kUnsatisfiablePattern = 6,
  /// The rule failed DetectiveRule::Validate (§II-C well-formedness); kept as
  /// a diagnostic so programmatic callers get one uniform report.
  kMalformedRule = 7,
};

/// Stable kebab-case name, e.g. "conflicting-rules"; used in JSON output.
std::string_view DiagnosticCodeName(DiagnosticCode code);

/// One finding of the static analyzer, with enough of a witness to act on:
/// the rules involved (a pair for conflicts, the cycle path for oscillation,
/// a single rule otherwise) and the contested column when there is one.
struct Diagnostic {
  Severity severity = Severity::kWarning;
  DiagnosticCode code = DiagnosticCode::kMalformedRule;
  /// Self-contained human-readable explanation.
  std::string message;
  /// Witness rules, in evidence order (conflict: the two rules; cycle: the
  /// rules along the cycle, first repeated at the end).
  std::vector<std::string> rules;
  /// The column the finding is about; empty when not column-specific.
  std::string column;

  /// "error[conflicting-rules] rules=phi1,phi2 column=City: ..." one-liner.
  std::string ToString() const;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// The analyzer's output: an ordered list of diagnostics plus severity
/// tallies, serializable to the JSON schema of docs/static_analysis.md.
class DiagnosticReport {
 public:
  void Add(Diagnostic diagnostic);

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  size_t size() const { return diagnostics_.size(); }

  size_t errors() const { return counts_[static_cast<size_t>(Severity::kError)]; }
  size_t warnings() const {
    return counts_[static_cast<size_t>(Severity::kWarning)];
  }
  size_t infos() const { return counts_[static_cast<size_t>(Severity::kInfo)]; }

  /// True iff no error-level finding exists (warnings allowed).
  bool clean() const { return errors() == 0; }

  /// Reorders diagnostics most-severe-first, stable within a severity.
  void SortBySeverity();

  /// Multi-line human-readable rendering, one diagnostic per line, plus a
  /// summary line ("3 diagnostics: 1 error, 2 warnings").
  std::string ToString() const;

  /// One summary line only.
  std::string Summary() const;

  /// Stable JSON:
  ///   {"summary": {"errors": 1, "warnings": 2, "infos": 0},
  ///    "diagnostics": [{"severity": "error", "code": "conflicting-rules",
  ///                     "rules": ["phi1", "phi2"], "column": "City",
  ///                     "message": "..."}]}
  std::string ToJson() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  size_t counts_[3] = {0, 0, 0};
};

}  // namespace detective::analysis

#endif  // DETECTIVE_ANALYSIS_DIAGNOSTICS_H_
