#include "analysis/rule_interaction_graph.h"

#include <algorithm>

#include "core/rule_graph.h"

namespace detective::analysis {

RuleInteractionGraph::RuleInteractionGraph(const std::vector<DetectiveRule>& rules) {
  const size_t n = rules.size();
  adjacency_.resize(n);

  // A → B iff col(p) of A is an evidence column of B. The same adjacency the
  // repairer's RuleGraph orders by; here the mediating column is retained as
  // the diagnostic witness.
  for (uint32_t a = 0; a < n; ++a) {
    const std::string& produced = rules[a].TargetColumn();
    for (uint32_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const std::vector<std::string> evidence = rules[b].EvidenceColumns();
      if (std::find(evidence.begin(), evidence.end(), produced) != evidence.end()) {
        adjacency_[a].push_back({b, produced});
      }
    }
  }

  // SCC condensation comes from the core RuleGraph (identical edges); any
  // component with >= 2 rules contains a cycle, for which we extract one
  // witness path by DFS inside the component.
  RuleGraph scc(rules);
  const std::vector<uint32_t>& component = scc.ComponentOf();
  for (uint32_t c = 0; c < scc.num_components(); ++c) {
    uint32_t start = static_cast<uint32_t>(n);
    size_t members = 0;
    for (uint32_t r = 0; r < n; ++r) {
      if (component[r] != c) continue;
      ++members;
      if (start == n) start = r;  // lowest rule index: deterministic entry
    }
    if (members < 2) continue;

    // DFS within the component from `start` until an edge returns to it.
    std::vector<uint32_t> path{start};
    std::vector<char> visited(n, 0);
    visited[start] = 1;
    while (!path.empty()) {
      uint32_t v = path.back();
      bool closed = false;
      bool advanced = false;
      for (const Edge& edge : adjacency_[v]) {
        if (component[edge.to] != c) continue;
        if (edge.to == start) {
          closed = true;
          break;
        }
        if (!visited[edge.to]) {
          visited[edge.to] = 1;
          path.push_back(edge.to);
          advanced = true;
          break;
        }
      }
      if (closed) break;
      // Dead end inside the SCC: backtrack (a vertex with an edge to `start`
      // is always reached before the path empties, because every path between
      // SCC members stays inside the SCC).
      if (!advanced) path.pop_back();
    }
    if (path.empty()) continue;  // unreachable; guards the invariant above
    path.push_back(start);
    cycles_.push_back(std::move(path));
  }
}

std::vector<std::string> RuleInteractionGraph::CycleColumns(
    const std::vector<uint32_t>& cycle) const {
  std::vector<std::string> columns;
  if (cycle.size() < 2) return columns;
  columns.reserve(cycle.size() - 1);
  for (size_t i = 0; i + 1 < cycle.size(); ++i) {
    for (const Edge& edge : adjacency_[cycle[i]]) {
      if (edge.to == cycle[i + 1]) {
        columns.push_back(edge.column);
        break;
      }
    }
  }
  return columns;
}

}  // namespace detective::analysis
