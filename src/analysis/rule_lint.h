#ifndef DETECTIVE_ANALYSIS_RULE_LINT_H_
#define DETECTIVE_ANALYSIS_RULE_LINT_H_

#include <cstddef>
#include <vector>

#include "analysis/diagnostics.h"
#include "core/rule.h"
#include "kb/knowledge_base.h"

namespace detective::analysis {

/// Knobs of the static rule analyzer.
struct LintOptions {
  /// Probe the KB for joint edge support (an actual triple joining instances
  /// of the two endpoint types). Off = vocabulary checks only.
  bool check_edge_support = true;

  /// Cap on KB instances examined across all edge-support and type-overlap
  /// probes of one lint run. Once exhausted, remaining probes are
  /// inconclusive (no diagnostic) instead of quadratic.
  size_t max_support_probes = 20000;

  /// Emit kInfo diagnostics (duplicate rules, agreeing pairs). Errors and
  /// warnings are always emitted.
  bool emit_info = true;
};

/// Static analysis of a rule set against a KB schema — no data, no chase
/// (paper §III-C turned into a load-time check). Four diagnostic classes:
///
///   1. Conflicts: two rules on one target column whose negative patterns can
///      bind the same cell while their positive patterns can force different
///      corrections — the static shadow of the paper's compatible-rules
///      condition (dynamic counterpart: core/consistency.h).
///   2. Termination: cycles in the rule interaction graph (rule A repairs a
///      column rule B binds as evidence), which can oscillate between
///      application orders.
///   3. KB support: classes/relationships the KB does not declare (dead
///      rule), declared classes with zero instances, and edges with no
///      KB triple joining the endpoint types.
///   4. Satisfiability: patterns no KB instance assignment can ever satisfy,
///      e.g. a literal-typed node used as an edge subject (KB literals have
///      no out-edges) or a malformed/disconnected pattern graph.
///
/// The verdict is conservative in the safe direction: a rule set with no
/// error-level finding may still be data-inconsistent (that is what the
/// dynamic sampler is for), but every error-level finding is a real defect
/// of the rule set against this KB.
DiagnosticReport LintRules(const std::vector<DetectiveRule>& rules,
                           const KnowledgeBase& kb, const LintOptions& options = {});

}  // namespace detective::analysis

#endif  // DETECTIVE_ANALYSIS_RULE_LINT_H_
