#include "analysis/stratification.h"

#include <algorithm>
#include <span>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "common/metrics.h"
#include "common/string_util.h"
#include "common/tarjan.h"

namespace detective::analysis {
namespace {

void SortUnique(std::vector<std::string>* values) {
  std::sort(values->begin(), values->end());
  values->erase(std::unique(values->begin(), values->end()), values->end());
}

bool Contains(const std::vector<std::string>& sorted, const std::string& value) {
  return std::binary_search(sorted.begin(), sorted.end(), value);
}

RuleFootprint ComputeFootprint(const DetectiveRule& rule) {
  RuleFootprint footprint;
  footprint.name = rule.name();
  footprint.target = rule.TargetColumn();
  footprint.writes.push_back(footprint.target);
  for (const MatchNode& node : rule.graph().nodes()) {
    footprint.classes.push_back(node.type);
    if (node.IsExistential()) continue;
    footprint.reads.push_back(node.column);
    if (node.sim.kind() != SimilarityKind::kEquality) {
      // Fuzzy match: proving the cell standardizes it to the KB label — a
      // value write. (For p/n nodes this duplicates the target, removed by
      // SortUnique below.)
      footprint.writes.push_back(node.column);
    }
  }
  for (const MatchEdge& edge : rule.graph().edges()) {
    footprint.relations.push_back(edge.relation);
  }
  SortUnique(&footprint.reads);
  SortUnique(&footprint.writes);
  SortUnique(&footprint.classes);
  SortUnique(&footprint.relations);
  return footprint;
}

/// True when `index` is a pure-evidence node of `rule`: not the positive or
/// negative node, not existential. Only those constrain the firing tuple on a
/// column the rule does not itself judge.
bool IsPureEvidence(const DetectiveRule& rule, uint32_t index) {
  return index != rule.positive_node() && index != rule.negative_node() &&
         !rule.graph().node(index).IsExistential();
}

}  // namespace

bool ProvablyLabelDisjoint(const KnowledgeBase& kb, const MatchNode& a,
                           const MatchNode& b, size_t max_probes,
                           size_t* probes) {
  if (a.type == b.type) return false;
  if (a.sim.kind() != SimilarityKind::kEquality ||
      b.sim.kind() != SimilarityKind::kEquality) {
    return false;  // fuzzy sims can bridge different label sets
  }
  ClassId class_a = kb.FindClass(a.type);
  ClassId class_b = kb.FindClass(b.type);
  if (!class_a.valid() || !class_b.valid()) return false;  // unresolved
  if (kb.IsSubclassOf(class_a, class_b) || kb.IsSubclassOf(class_b, class_a)) {
    return false;
  }
  std::span<const ItemId> items_a = kb.InstancesOf(class_a);
  std::span<const ItemId> items_b = kb.InstancesOf(class_b);
  if (items_a.size() > items_b.size()) std::swap(items_a, items_b);
  if (*probes + items_a.size() + items_b.size() > max_probes) return false;
  *probes += items_a.size() + items_b.size();
  std::unordered_set<std::string_view> labels;
  labels.reserve(items_a.size());
  for (ItemId item : items_a) labels.insert(kb.Label(item));
  for (ItemId item : items_b) {
    if (labels.contains(kb.Label(item))) return false;
  }
  return true;  // proven label-disjoint under exact matching
}

std::vector<ExclusivePair> FindExclusivePairs(
    const std::vector<DetectiveRule>& rules, const KnowledgeBase& kb,
    size_t max_probes, size_t* probes) {
  const size_t n = rules.size();
  std::vector<char> usable(n, 1);
  // Columns any rule of the set can write (repairs + fuzzy standardization):
  // a witness column must be stable across the whole chase, otherwise a fired
  // rule could rewrite it into the other rule's label set.
  std::vector<std::string> written;
  for (size_t r = 0; r < n; ++r) {
    if (!rules[r].Validate().ok()) {
      usable[r] = 0;
      continue;
    }
    RuleFootprint footprint = ComputeFootprint(rules[r]);
    written.insert(written.end(), footprint.writes.begin(),
                   footprint.writes.end());
  }
  SortUnique(&written);

  std::vector<ExclusivePair> pairs;
  for (uint32_t a = 0; a < n; ++a) {
    if (!usable[a]) continue;
    for (uint32_t b = a + 1; b < n; ++b) {
      if (!usable[b]) continue;
      bool refuted = false;
      for (uint32_t ia = 0; ia < rules[a].graph().nodes().size() && !refuted;
           ++ia) {
        if (!IsPureEvidence(rules[a], ia)) continue;
        const MatchNode& node_a = rules[a].graph().node(ia);
        if (Contains(written, node_a.column)) continue;  // not stable
        for (uint32_t ib = 0; ib < rules[b].graph().nodes().size(); ++ib) {
          if (!IsPureEvidence(rules[b], ib)) continue;
          const MatchNode& node_b = rules[b].graph().node(ib);
          if (node_b.column != node_a.column) continue;
          if (ProvablyLabelDisjoint(kb, node_a, node_b, max_probes, probes)) {
            pairs.push_back({a, b, node_a.column, node_a.type, node_b.type});
            refuted = true;
            break;
          }
        }
      }
    }
  }
  return pairs;
}

size_t StratificationCertificate::num_cyclic_strata() const {
  size_t count = 0;
  for (char flag : cyclic) count += flag != 0 ? 1 : 0;
  return count;
}

std::string StratificationCertificate::ToJson() const {
  std::string out = "{\n  \"schema_version\": 1,\n  \"rules\": [";
  auto append_list = [&out](const std::vector<std::string>& values) {
    out += '[';
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ", ";
      AppendJsonString(values[i], &out);
    }
    out += ']';
  };
  for (size_t r = 0; r < footprints.size(); ++r) {
    const RuleFootprint& footprint = footprints[r];
    out += r == 0 ? "\n    " : ",\n    ";
    out += "{\"name\": ";
    AppendJsonString(footprint.name, &out);
    out += ", \"target\": ";
    AppendJsonString(footprint.target, &out);
    out += ", \"reads\": ";
    append_list(footprint.reads);
    out += ", \"writes\": ";
    append_list(footprint.writes);
    out += ", \"classes\": ";
    append_list(footprint.classes);
    out += ", \"relations\": ";
    append_list(footprint.relations);
    out += '}';
  }
  out += footprints.empty() ? "],\n  \"strata\": [" : "\n  ],\n  \"strata\": [";
  for (size_t s = 0; s < strata.size(); ++s) {
    out += s == 0 ? "\n    " : ",\n    ";
    out += "{\"rules\": [";
    for (size_t i = 0; i < strata[s].size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(strata[s][i]);
    }
    out += "], \"cyclic\": ";
    out += cyclic[s] != 0 ? "true" : "false";
    out += '}';
  }
  out += strata.empty() ? "],\n  \"edges\": [" : "\n  ],\n  \"edges\": [";
  // Rule-index -> stratum map for the per-edge evidence kind.
  std::vector<size_t> stratum_of(footprints.size(), 0);
  for (size_t s = 0; s < strata.size(); ++s) {
    for (uint32_t rule : strata[s]) stratum_of[rule] = s;
  }
  for (size_t e = 0; e < edges.size(); ++e) {
    const StratumEdge& edge = edges[e];
    out += e == 0 ? "\n    " : ",\n    ";
    out += "{\"from\": " + std::to_string(edge.from);
    out += ", \"to\": " + std::to_string(edge.to);
    out += ", \"column\": ";
    AppendJsonString(edge.column, &out);
    out += ", \"evidence\": ";
    out += stratum_of[edge.from] == stratum_of[edge.to] ? "\"scc-membership\""
                                                        : "\"ordered\"";
    out += '}';
  }
  out += edges.empty() ? "],\n  \"separations\": ["
                       : "\n  ],\n  \"separations\": [";
  for (size_t s = 0; s < separations.size(); ++s) {
    const Separation& separation = separations[s];
    out += s == 0 ? "\n    " : ",\n    ";
    out += "{\"from\": " + std::to_string(separation.from);
    out += ", \"to\": " + std::to_string(separation.to);
    out += ", \"evidence\": ";
    if (separation.kind == Separation::Kind::kDisjointFootprints) {
      out += "\"disjoint-footprints\"}";
    } else {
      out += "\"refuted-unification\", \"column\": ";
      AppendJsonString(separation.column, &out);
      out += ", \"class_from\": ";
      AppendJsonString(separation.class_from, &out);
      out += ", \"class_to\": ";
      AppendJsonString(separation.class_to, &out);
      out += '}';
    }
  }
  out += separations.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

Result<Stratification> ComputeStratification(
    const std::vector<DetectiveRule>& rules, const KnowledgeBase& kb,
    const StratifyOptions& options) {
  DETECTIVE_SCOPED_TIMER("strata.compute");
  for (const DetectiveRule& rule : rules) {
    Status valid = rule.Validate();
    if (!valid.ok()) {
      return Status::InvalidArgument("cannot stratify: rule '", rule.name(),
                                     "' is malformed: ", valid.ToString());
    }
  }

  const size_t n = rules.size();
  Stratification out;
  out.certificate.footprints.reserve(n);
  for (const DetectiveRule& rule : rules) {
    out.certificate.footprints.push_back(ComputeFootprint(rule));
  }

  size_t probes = 0;
  std::vector<ExclusivePair> exclusive_pairs =
      FindExclusivePairs(rules, kb, options.max_probes, &probes);
  out.pairs_refuted = exclusive_pairs.size();
  std::vector<char> exclusive(n * n, 0);
  for (const ExclusivePair& pair : exclusive_pairs) {
    exclusive[pair.a * n + pair.b] = 1;
    exclusive[pair.b * n + pair.a] = 1;
  }

  // Can-enable edges: a writes a column b reads, and the pair is not refuted.
  out.schedule.num_rules = n;
  out.schedule.can_enable.assign(n * n, 0);
  std::vector<std::vector<uint32_t>> adjacency(n);
  for (uint32_t a = 0; a < n; ++a) {
    const RuleFootprint& from = out.certificate.footprints[a];
    for (uint32_t b = 0; b < n; ++b) {
      if (a == b || exclusive[a * n + b] != 0) continue;
      for (const std::string& column : from.writes) {
        if (!Contains(out.certificate.footprints[b].reads, column)) continue;
        out.schedule.can_enable[a * n + b] = 1;
        adjacency[a].push_back(b);
        out.certificate.edges.push_back({a, b, column});
        break;
      }
    }
  }

  // Strata: topological SCC condensation of the can-enable graph.
  TarjanScc tarjan(adjacency);
  tarjan.Run();
  out.certificate.strata.assign(tarjan.count(), {});
  for (uint32_t r = 0; r < n; ++r) {
    out.certificate.strata[tarjan.component()[r]].push_back(r);
  }
  out.certificate.cyclic.resize(tarjan.count());
  for (size_t s = 0; s < tarjan.count(); ++s) {
    out.certificate.cyclic[s] = out.certificate.strata[s].size() > 1 ? 1 : 0;
  }
  out.schedule.strata = out.certificate.strata;

  // Separations: every ordered non-edge pair carries its evidence. By
  // construction a non-edge pair is either refuted or footprint-disjoint.
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b = 0; b < n; ++b) {
      if (a == b || out.schedule.can_enable[a * n + b] != 0) continue;
      Separation separation;
      separation.from = a;
      separation.to = b;
      if (exclusive[a * n + b] != 0) {
        const auto witness = std::find_if(
            exclusive_pairs.begin(), exclusive_pairs.end(),
            [&](const ExclusivePair& pair) {
              return pair.a == std::min(a, b) && pair.b == std::max(a, b);
            });
        separation.kind = Separation::Kind::kRefutedUnification;
        separation.column = witness->column;
        separation.class_from = a == witness->a ? witness->class_a : witness->class_b;
        separation.class_to = a == witness->a ? witness->class_b : witness->class_a;
      } else {
        separation.kind = Separation::Kind::kDisjointFootprints;
      }
      out.certificate.separations.push_back(std::move(separation));
    }
  }

  DETECTIVE_COUNT_N("strata.count", out.certificate.strata.size());
  DETECTIVE_COUNT_N("strata.cyclic", out.certificate.num_cyclic_strata());
  DETECTIVE_COUNT_N("strata.pairs_refuted", out.pairs_refuted);
  DETECTIVE_COUNT_N("strata.probes", probes);
  return out;
}

}  // namespace detective::analysis
