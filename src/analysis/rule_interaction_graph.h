#ifndef DETECTIVE_ANALYSIS_RULE_INTERACTION_GRAPH_H_
#define DETECTIVE_ANALYSIS_RULE_INTERACTION_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/rule.h"

namespace detective::analysis {

/// Write-to-read interaction graph over a rule set, the static object behind
/// the termination analysis (paper §III-C): an edge A → B, labelled with a
/// column, means rule A repairs that column and rule B binds it as evidence —
/// so applying A can re-trigger B. Every cycle is a potential oscillation:
/// rules in the cycle can keep re-deriving corrections from each other's
/// output, and the fixpoint reached may depend on application order.
///
/// The core repairer's RuleGraph uses the same adjacency to pick a check
/// order; this class keeps the mediating columns (the witness a diagnostic
/// needs) and extracts one concrete cycle per strongly connected component.
class RuleInteractionGraph {
 public:
  struct Edge {
    uint32_t to = 0;
    std::string column;  // col(p) of the source = evidence column of `to`

    friend bool operator==(const Edge&, const Edge&) = default;
  };

  explicit RuleInteractionGraph(const std::vector<DetectiveRule>& rules);

  size_t num_rules() const { return adjacency_.size(); }
  const std::vector<Edge>& Successors(uint32_t rule) const {
    return adjacency_[rule];
  }

  bool IsAcyclic() const { return cycles_.empty(); }

  /// One witness cycle per non-trivial strongly connected component: rule
  /// indexes in traversal order, with the first rule repeated at the end
  /// (e.g. {0, 2, 0}). Deterministic for a given rule order.
  const std::vector<std::vector<uint32_t>>& Cycles() const { return cycles_; }

  /// The columns along `cycle` (as returned by Cycles()): element i is the
  /// column through which cycle[i] feeds cycle[i+1].
  std::vector<std::string> CycleColumns(const std::vector<uint32_t>& cycle) const;

 private:
  std::vector<std::vector<Edge>> adjacency_;
  std::vector<std::vector<uint32_t>> cycles_;
};

}  // namespace detective::analysis

#endif  // DETECTIVE_ANALYSIS_RULE_INTERACTION_GRAPH_H_
