#ifndef DETECTIVE_ANALYSIS_STRATIFICATION_H_
#define DETECTIVE_ANALYSIS_STRATIFICATION_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/rule.h"
#include "core/stratified_schedule.h"
#include "kb/knowledge_base.h"

namespace detective::analysis {

/// Knobs of the stratification analyzer.
struct StratifyOptions {
  /// Cap on KB instances examined across all label-disjointness probes of one
  /// run. Once exhausted, remaining refutations are inconclusive (the pair is
  /// conservatively assumed to interact) instead of quadratic.
  size_t max_probes = 20000;
};

/// The honest read/write column footprint of one rule, plus the KB vocabulary
/// it touches. Reads are every non-existential node column (both pattern
/// sides). Writes are the target column *plus* every fuzzily-matched evidence
/// column: a fuzzy sim standardizes the cell to the KB label on proof
/// (docs/rule_dsl.md), which is a value write other rules can observe; an
/// exact-equality match implies cell == label, so proving it writes nothing.
struct RuleFootprint {
  std::string name;
  std::string target;
  std::vector<std::string> reads;      // sorted, unique
  std::vector<std::string> writes;     // sorted, unique
  std::vector<std::string> classes;    // sorted, unique KB class names
  std::vector<std::string> relations;  // sorted, unique KB relationship names
};

/// One unordered rule pair proven mutually exclusive per tuple: both rules
/// constrain the shared evidence column `column` with exact-equality nodes
/// whose classes have provably disjoint label sets, and no rule in the set
/// ever writes `column` — so the cell's value is fixed for the whole chase
/// and can satisfy at most one of the two constraints. At most one of the
/// pair ever fires on any tuple, in either order.
struct ExclusivePair {
  uint32_t a = 0;  // a < b, rule indexes
  uint32_t b = 0;
  std::string column;   // the shared stable evidence column
  std::string class_a;  // rule a's class on that column
  std::string class_b;  // rule b's class on that column
};

/// A surviving can-enable edge: rule `from` writes `column` and rule `to`
/// reads it, and the pair is not refuted.
struct StratumEdge {
  uint32_t from = 0;
  uint32_t to = 0;
  std::string column;  // first shared column in sorted order
};

/// Non-interference evidence for one ordered rule pair WITHOUT a can-enable
/// edge. Every ordered pair (a, b), a != b, appears in exactly one of the
/// certificate's `edges` or `separations` lists.
struct Separation {
  enum class Kind : uint8_t {
    kDisjointFootprints = 0,  // writes(from) and reads(to) share no column
    kRefutedUnification = 1,  // the pair is an ExclusivePair (see above)
  };
  uint32_t from = 0;
  uint32_t to = 0;
  Kind kind = Kind::kDisjointFootprints;
  // Witness for kRefutedUnification (empty otherwise).
  std::string column;
  std::string class_from;
  std::string class_to;
};

/// The machine-checkable stratification certificate: everything
/// tools/check_certificate.py re-derives independently from the .dr and .nt
/// sources (docs/static_analysis.md documents the JSON schema and the checker
/// contract). Rule order matches the input rule vector; edges/separations
/// reference rules by index into `footprints`.
struct StratificationCertificate {
  std::vector<RuleFootprint> footprints;
  /// SCC condensation of the can-enable graph, strata in topological order,
  /// rule indexes ascending within a stratum.
  std::vector<std::vector<uint32_t>> strata;
  /// cyclic[s] != 0 iff stratum s has more than one rule (intra-stratum edges
  /// carry no non-interference claim: "scc-membership").
  std::vector<char> cyclic;
  std::vector<StratumEdge> edges;
  std::vector<Separation> separations;

  size_t num_cyclic_strata() const;
  /// Stable JSON (schema_version 1); strings go through AppendJsonString.
  std::string ToJson() const;
};

/// Analyzer output: the certificate plus the engine-facing schedule derived
/// from it (they agree by construction; the checker guards against drift).
struct Stratification {
  StratificationCertificate certificate;
  StratifiedSchedule schedule;
  size_t pairs_refuted = 0;
};

/// Sound static label-disjointness: true only when a cell value can PROVABLY
/// not satisfy both node constraints — both sims are exact equality, both
/// classes resolve in the KB, neither is a subclass of the other, and a
/// bounded probe shows their instance label sets are disjoint. Anything
/// inconclusive (fuzzy sims, unresolved classes, probe budget exhausted)
/// returns false. Shared by LintRules' conflict refutation and the
/// stratification analyzer.
bool ProvablyLabelDisjoint(const KnowledgeBase& kb, const MatchNode& a,
                           const MatchNode& b, size_t max_probes,
                           size_t* probes);

/// All statically refutable rule pairs of the set (see ExclusivePair).
/// Deterministic: pairs in (a, b) lexicographic order, first qualifying
/// witness column in rule-a node order. Rules failing Validate() never pair.
std::vector<ExclusivePair> FindExclusivePairs(
    const std::vector<DetectiveRule>& rules, const KnowledgeBase& kb,
    size_t max_probes, size_t* probes);

/// The static pass: footprints -> pairwise refutation -> can-enable graph ->
/// SCC condensation -> certificate + schedule. Fails only when a rule fails
/// Validate() (the engine could not run it either); the result is otherwise
/// always a sound (possibly trivial, fully-cyclic) stratification.
Result<Stratification> ComputeStratification(
    const std::vector<DetectiveRule>& rules, const KnowledgeBase& kb,
    const StratifyOptions& options = {});

}  // namespace detective::analysis

#endif  // DETECTIVE_ANALYSIS_STRATIFICATION_H_
