#include "analysis/diagnostics.h"

#include <algorithm>

#include "common/string_util.h"

namespace detective::analysis {

std::string_view SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string_view DiagnosticCodeName(DiagnosticCode code) {
  switch (code) {
    case DiagnosticCode::kConflictingRules:
      return "conflicting-rules";
    case DiagnosticCode::kOscillationCycle:
      return "oscillation-cycle";
    case DiagnosticCode::kUnsupportedClass:
      return "unsupported-class";
    case DiagnosticCode::kUnsupportedRelation:
      return "unsupported-relation";
    case DiagnosticCode::kEmptyClass:
      return "empty-class";
    case DiagnosticCode::kUnsupportedEdge:
      return "unsupported-edge";
    case DiagnosticCode::kUnsatisfiablePattern:
      return "unsatisfiable-pattern";
    case DiagnosticCode::kMalformedRule:
      return "malformed-rule";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out;
  out += SeverityName(severity);
  out += '[';
  out += DiagnosticCodeName(code);
  out += ']';
  if (!rules.empty()) {
    out += " rules=";
    out += Join(rules, ",");
  }
  if (!column.empty()) {
    out += " column=";
    out += column;
  }
  out += ": ";
  out += message;
  return out;
}

void DiagnosticReport::Add(Diagnostic diagnostic) {
  ++counts_[static_cast<size_t>(diagnostic.severity)];
  diagnostics_.push_back(std::move(diagnostic));
}

void DiagnosticReport::SortBySeverity() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return static_cast<int>(a.severity) > static_cast<int>(b.severity);
                   });
}

std::string DiagnosticReport::Summary() const {
  std::string out = std::to_string(size());
  out += size() == 1 ? " diagnostic: " : " diagnostics: ";
  out += std::to_string(errors());
  out += errors() == 1 ? " error, " : " errors, ";
  out += std::to_string(warnings());
  out += warnings() == 1 ? " warning, " : " warnings, ";
  out += std::to_string(infos());
  out += infos() == 1 ? " info" : " infos";
  return out;
}

std::string DiagnosticReport::ToString() const {
  std::string out = Summary();
  for (const Diagnostic& diagnostic : diagnostics_) {
    out += "\n  ";
    out += diagnostic.ToString();
  }
  return out;
}

std::string DiagnosticReport::ToJson() const {
  std::string out = "{\n  \"summary\": {\"errors\": ";
  out += std::to_string(errors());
  out += ", \"warnings\": ";
  out += std::to_string(warnings());
  out += ", \"infos\": ";
  out += std::to_string(infos());
  out += "},\n  \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& diagnostic : diagnostics_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"severity\": ";
    AppendJsonString(SeverityName(diagnostic.severity), &out);
    out += ", \"code\": ";
    AppendJsonString(DiagnosticCodeName(diagnostic.code), &out);
    out += ", \"rules\": [";
    for (size_t i = 0; i < diagnostic.rules.size(); ++i) {
      if (i > 0) out += ", ";
      AppendJsonString(diagnostic.rules[i], &out);
    }
    out += "], \"column\": ";
    AppendJsonString(diagnostic.column, &out);
    out += ", \"message\": ";
    AppendJsonString(diagnostic.message, &out);
    out += '}';
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace detective::analysis
