#ifndef DETECTIVE_CORE_REPAIR_H_
#define DETECTIVE_CORE_REPAIR_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/fault.h"
#include "core/bound_rule.h"
#include "core/evidence_matcher.h"
#include "core/provenance.h"
#include "core/quarantine.h"
#include "core/rule_graph.h"
#include "core/stratified_schedule.h"
#include "kb/knowledge_base.h"
#include "relation/relation.h"

namespace detective {

/// Knobs shared by both repair algorithms plus the fast-repair extras.
struct RepairOptions {
  MatcherOptions matcher;
  /// Fast repair only: check rules in the rule-graph topological order
  /// (§IV-B(1)). Off = input order, which degenerates to re-scanning.
  bool use_rule_order = true;
  /// Cap on tuple versions produced by multi-version repair (§IV-C).
  size_t max_versions = 8;
  /// Certified stratification schedule (analysis/stratification.h). Non-null
  /// lets FastRepairer elide confirming fixpoint sweeps whose evaluations are
  /// provably all "not applicable"; evaluation order is untouched, so output
  /// stays byte-identical to the classic chase. Null (the default), a rule
  /// count mismatch, use_rule_order=false, or an armed fault plan all fall
  /// back to the classic loop. The caller owns the schedule's lifetime.
  const StratifiedSchedule* schedule = nullptr;

  // Robustness knobs (guarded repair; docs/robustness.md). All default off.
  /// Whole-run deadline in milliseconds (0 = none): once it expires, every
  /// remaining tuple is quarantined with reason "run_deadline".
  uint64_t deadline_ms = 0;
  /// Per-tuple chase budget in milliseconds (0 = none).
  uint64_t tuple_budget_ms = 0;
  /// Circuit breaker: a rule blamed for this many quarantined tuples is
  /// disabled for the rest of the run and its victims re-chased (0 = off).
  size_t max_rule_failures = 0;
};

/// True when any robustness feature is active, i.e. the relation drivers
/// should take the guarded path (per-tuple tokens + quarantine) rather than
/// the zero-overhead fast path.
inline bool GuardedRepairRequested(const RepairOptions& options) {
  return options.deadline_ms > 0 || options.tuple_budget_ms > 0 ||
         options.max_rule_failures > 0 || fault::Armed();
}

/// Counters reported by the efficiency benchmarks (Fig. 8).
struct RepairStats {
  size_t tuples_processed = 0;
  size_t rule_checks = 0;        // Evaluate() calls
  size_t rule_applications = 0;  // rules that fired
  size_t proofs_positive = 0;
  size_t repairs = 0;            // cells rewritten
  size_t cells_marked = 0;       // cells newly marked positive
  /// Quarantine events (guarded repair only). Counts every abandoned chase
  /// attempt — a tuple re-chased by the circuit breaker and abandoned again
  /// counts twice; the final quarantine ledger is QuarantineLog.
  size_t tuples_quarantined = 0;
  /// Work-stealing chunks claimed by a worker other than the one a static
  /// contiguous sharding would have given them (ParallelRepair only).
  size_t chunks_stolen = 0;
  /// Confirming fixpoint sweeps elided under a certified stratification
  /// schedule (RepairOptions::schedule). Each would have been one all-kNone
  /// chase round in the classic loop; round numbering still advances past it
  /// so provenance records are identical.
  size_t rounds_skipped = 0;
};

/// Outcome of evaluating one rule against one tuple.
struct RuleEvaluation {
  enum class Action {
    kNone,           // rule not applicable
    kProofPositive,  // marks evidence + target correct, changes nothing
    kRepair,         // rewrites the target cell, then marks
  };
  Action action = Action::kNone;
  /// Candidate corrections (distinct, sorted). Size 1 in the common
  /// functional case; >1 triggers multi-version branching.
  std::vector<std::string> corrections;
  /// Cells that matched their KB instance only fuzzily and are standardized
  /// to the instance's label on Apply (this is how typos are corrected
  /// through the positive semantics; cf. the paper's "Paster Institute" →
  /// "Pasteur Institute" fix in Table I). Populated for kProofPositive (all
  /// positive-side cells) and for kRepair (evidence cells), so a cell is
  /// never marked positive while holding an unproven spelling.
  std::vector<std::pair<ColumnIndex, std::string>> normalizations;
  /// Witnessing instance-level assignment, indexed by rule-node position
  /// (Invalid where unassigned): the positive side's best assignment for
  /// kProofPositive, the best negative-side witness for kRepair. What
  /// provenance capture reports as evidence.
  std::vector<ItemId> witness;
  /// For kRepair: the KB instance whose label is corrections[i] (parallel
  /// to `corrections`).
  std::vector<ItemId> correction_items;
};

/// Shared rule-evaluation engine: binds a rule set to a (schema, KB) pair
/// and implements the single-rule semantics of §III-B, including the
/// applicability conditions over positively-marked cells:
///   (i)  a rule never changes a cell already marked positive;
///   (ii) a rule is applicable only if it marks at least one new cell.
class RuleEngine {
 public:
  /// `kb` must outlive the engine; the rules are copied (they are small
  /// value objects), so temporaries are safe to pass.
  RuleEngine(const KnowledgeBase& kb, const Schema& schema,
             std::vector<DetectiveRule> rules, RepairOptions options = {});

  /// Resolves all rules; fails on schema mismatches. Rules the KB cannot
  /// power are kept but never fire (usable() reports how many are live).
  Status Init();

  size_t num_rules() const { return bound_.size(); }
  size_t num_usable_rules() const;
  const std::vector<DetectiveRule>& rules() const { return rules_; }
  const BoundRule& bound_rule(uint32_t index) const { return bound_[index]; }
  /// All bound rules (valid after Init()); what MatchPlan::Build consumes.
  std::span<const BoundRule> bound_rules() const { return bound_; }

  /// Evaluates rule `index` against `tuple` (read-only).
  RuleEvaluation Evaluate(uint32_t index, const Tuple& tuple);

  /// Applies a previously computed evaluation; for kRepair the correction at
  /// `correction_index` is written. Updates marks and stats.
  void Apply(uint32_t index, const RuleEvaluation& evaluation, Tuple* tuple,
             size_t correction_index = 0);

  EvidenceMatcher& matcher() { return *matcher_; }
  const RepairOptions& options() const { return options_; }
  RepairStats& stats() { return stats_; }
  const RepairStats& stats() const { return stats_; }

  /// Forwards the shared frozen match plan / cross-worker candidate cache to
  /// the matcher (core/match_plan.h). Results are identical with or without
  /// sharing; only where indexes and memo entries live changes.
  void SetShared(const MatchPlan* plan, SharedCandidateCache* cache) {
    matcher_->SetShared(plan, cache);
  }

  /// Installs a provenance sink: every subsequent Apply() records one
  /// explainable entry per cell change / proof (core/provenance.h). The log
  /// must outlive the engine or be unset; nullptr disables capture (the
  /// default — capture then costs nothing).
  void set_provenance(ProvenanceLog* log) { provenance_ = log; }
  ProvenanceLog* provenance() const { return provenance_; }

  /// Row / fixpoint-round context stamped onto captured records. The chase
  /// drivers set the round; relation-level loops set the row.
  void set_current_row(size_t row) { current_row_ = row; }
  void set_current_round(size_t round) { current_round_ = round; }

  /// Installs a cancellation token on the engine and its matcher for the
  /// duration of one guarded tuple chase; nullptr restores the fast path.
  void set_cancel(CancelToken* token) {
    cancel_ = token;
    matcher_->set_cancel(token);
  }
  CancelToken* cancel() const { return cancel_; }

  /// Circuit-breaker support: a disabled rule never fires again (Evaluate
  /// returns kNone without counting a rule check). Valid after Init().
  void set_rule_disabled(uint32_t index, bool disabled);
  bool rule_disabled(uint32_t index) const {
    return index < disabled_.size() && disabled_[index] != 0;
  }
  size_t num_disabled_rules() const;

 private:
  /// Builds the provenance records for applying `evaluation` to `tuple`.
  /// Must run before the tuple is mutated (records capture pre-change cell
  /// values and marks).
  void RecordProvenance(uint32_t index, const RuleEvaluation& evaluation,
                        const Tuple& tuple, size_t correction_index);

  const KnowledgeBase& kb_;
  Schema schema_;
  std::vector<DetectiveRule> rules_;
  RepairOptions options_;
  std::unique_ptr<EvidenceMatcher> matcher_;
  std::vector<BoundRule> bound_;
  RepairStats stats_;
  ProvenanceLog* provenance_ = nullptr;
  size_t current_row_ = 0;
  size_t current_round_ = 0;
  CancelToken* cancel_ = nullptr;
  std::vector<char> disabled_;  // per rule index; sized by Init()
};

/// Algorithm 1 (bRepair): chase to fixpoint by rescanning the rule set for
/// an applicable rule after every application. No rule ordering, no shared
/// computation (unless the caller opts in through RepairOptions.matcher).
class BasicRepairer {
 public:
  BasicRepairer(const KnowledgeBase& kb, const Schema& schema,
                std::vector<DetectiveRule> rules, RepairOptions options = {});

  Status Init() { return engine_.Init(); }

  /// Repairs one tuple in place to its fixpoint (single-version: the first
  /// correction in sorted order is taken when several exist).
  void RepairTuple(Tuple* tuple);

  /// Repairs every tuple of `relation` in place.
  void RepairRelation(Relation* relation);

  /// Multi-version repair (§IV-C): all fixpoints reachable when ambiguous
  /// corrections branch. Returns at least one tuple.
  std::vector<Tuple> RepairMultiVersion(const Tuple& tuple);

  RuleEngine& engine() { return engine_; }
  const RepairStats& stats() const { return engine_.stats(); }

 private:
  RuleEngine engine_;
};

/// Algorithm 2 (fRepair): rules are checked in the rule-graph topological
/// order; node/edge work is shared across rules through the matcher's value
/// memo (the role of the paper's Fig. 5 inverted lists); components that
/// form dependency cycles are iterated locally until stable.
class FastRepairer {
 public:
  FastRepairer(const KnowledgeBase& kb, const Schema& schema,
               std::vector<DetectiveRule> rules, RepairOptions options = {});

  Status Init();

  void RepairTuple(Tuple* tuple);
  void RepairRelation(Relation* relation);
  std::vector<Tuple> RepairMultiVersion(const Tuple& tuple);

  /// Guarded single-tuple repair (graceful degradation): chases `tuple`
  /// under a fresh CancelToken armed with `run_deadline` and the per-tuple
  /// budget from RepairOptions, with fault probes scoped to `row`. If the
  /// token trips, the tuple is restored to its pristine bytes, one record is
  /// appended to `quarantine` (may be null), and false is returned.
  bool RepairTupleGuarded(size_t row, Deadline run_deadline, Tuple* tuple,
                          QuarantineLog* quarantine);

  /// Guarded relation repair: RepairTupleGuarded over every row, then the
  /// circuit-breaker fixpoint (BreakerFixpoint). The final ledger is merged
  /// into `quarantine` (may be null) in canonical order.
  void RepairRelationGuarded(Relation* relation, QuarantineLog* quarantine);

  RuleEngine& engine() { return engine_; }
  const RepairStats& stats() const { return engine_.stats(); }
  const RuleGraph& rule_graph() const { return *rule_graph_; }

 private:
  /// Shared chase loop; `cancel` null = the unguarded fast path.
  void RepairTupleImpl(Tuple* tuple, CancelToken* cancel);

  RuleEngine engine_;
  std::unique_ptr<RuleGraph> rule_graph_;
  std::vector<uint32_t> check_order_;
};

/// Circuit-breaker fixpoint shared by the sequential and parallel drivers:
/// tallies the rules blamed in `quarantine`, disables every not-yet-disabled
/// rule blamed `max_rule_failures`-or-more times (RepairOptions), re-chases
/// the rows its victims were quarantined for (their records are replaced by
/// the retry's outcome), and repeats until no new rule trips — at most
/// num_rules iterations. No-op when the breaker is off. Deterministic: the
/// tally is order-independent and retries run in ascending row order.
void BreakerFixpoint(FastRepairer& repairer, Relation* relation,
                     Deadline run_deadline, QuarantineLog* quarantine);

}  // namespace detective

#endif  // DETECTIVE_CORE_REPAIR_H_
