#include "core/rule_generation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>
#include <set>
#include <unordered_set>

#include "common/logging.h"
#include "text/signature_index.h"

namespace detective {

namespace {

/// Candidate KB items per cell of one column, plus the matching operation
/// that produced them.
struct ColumnMatch {
  std::vector<std::vector<ItemId>> row_items;  // per example row
  Similarity sim = Similarity::Equality();
  size_t covered_rows = 0;
};

ColumnMatch MatchColumn(const KnowledgeBase& kb, const Relation& examples,
                        ColumnIndex column, const DiscoveryOptions& options) {
  ColumnMatch match;
  match.row_items.resize(examples.num_tuples());
  for (size_t row = 0; row < examples.num_tuples(); ++row) {
    for (ItemId item : kb.ItemsWithLabel(examples.value(row, column))) {
      match.row_items[row].push_back(item);
    }
    if (!match.row_items[row].empty()) ++match.covered_rows;
  }
  double coverage = examples.num_tuples() == 0
                        ? 0
                        : static_cast<double>(match.covered_rows) /
                              static_cast<double>(examples.num_tuples());
  if (coverage >= options.min_support || options.ed_fallback == 0) return match;

  // Exact matching is too weak for this column: rebuild with the ED
  // fallback over the whole item collection (example sets are small, so one
  // throwaway index is fine).
  SignatureIndex index(Similarity::EditDistance(options.ed_fallback));
  for (uint32_t i = 0; i < kb.num_items(); ++i) {
    index.Add(i, kb.Label(ItemId(i)));
  }
  index.Build();
  ColumnMatch fuzzy;
  fuzzy.sim = Similarity::EditDistance(options.ed_fallback);
  fuzzy.row_items.resize(examples.num_tuples());
  for (size_t row = 0; row < examples.num_tuples(); ++row) {
    for (uint32_t raw : index.Matches(examples.value(row, column))) {
      fuzzy.row_items[row].push_back(ItemId(raw));
    }
    if (!fuzzy.row_items[row].empty()) ++fuzzy.covered_rows;
  }
  return fuzzy.covered_rows > match.covered_rows ? fuzzy : match;
}

/// Most specific class covering >= min_support of the matched rows.
ClassId ChooseType(const KnowledgeBase& kb, const ColumnMatch& match,
                   const DiscoveryOptions& options) {
  if (match.covered_rows == 0) return ClassId::Invalid();
  std::map<ClassId, size_t> support;
  for (const std::vector<ItemId>& items : match.row_items) {
    if (items.empty()) continue;
    std::set<ClassId> row_classes;
    for (ItemId item : items) {
      if (kb.IsLiteral(item)) {
        row_classes.insert(kb.literal_class());
        continue;
      }
      for (ClassId direct : kb.DirectClasses(item)) {
        for (ClassId ancestor : kb.AncestorsOf(direct)) row_classes.insert(ancestor);
      }
    }
    for (ClassId cls : row_classes) ++support[cls];
  }
  size_t needed = static_cast<size_t>(
      std::ceil(options.min_support * static_cast<double>(match.covered_rows)));
  needed = std::max<size_t>(needed, 1);

  ClassId best = ClassId::Invalid();
  size_t best_instances = 0;
  size_t best_support = 0;
  for (const auto& [cls, count] : support) {
    if (count < needed) continue;
    size_t instances = kb.InstancesOf(cls).size();
    // Most specific = fewest instances; break ties toward higher support,
    // then the smaller id for determinism.
    bool better = !best.valid() || instances < best_instances ||
                  (instances == best_instances && count > best_support);
    if (better) {
      best = cls;
      best_instances = instances;
      best_support = count;
    }
  }
  return best;
}

}  // namespace

Result<DiscoveredGraph> DiscoverMatchingGraph(const KnowledgeBase& kb,
                                              const Relation& examples,
                                              std::string_view target_column,
                                              const DiscoveryOptions& options) {
  const Schema& schema = examples.schema();
  if (examples.num_tuples() == 0) {
    return Status::InvalidArgument("no example tuples to discover from");
  }
  if (!target_column.empty() && schema.FindColumn(target_column) == kInvalidColumn) {
    return Status::InvalidArgument("target column '", target_column,
                                   "' not in the example schema");
  }

  // S1/S2 column typing.
  struct TypedColumn {
    ColumnIndex column;
    ClassId type;
    ColumnMatch match;
  };
  std::vector<TypedColumn> typed;
  for (ColumnIndex c = 0; c < schema.num_columns(); ++c) {
    ColumnMatch match = MatchColumn(kb, examples, c, options);
    ClassId type = ChooseType(kb, match, options);
    if (!type.valid()) continue;
    // Keep only items consistent with the chosen type; rows that lose all
    // items no longer support edges.
    for (std::vector<ItemId>& items : match.row_items) {
      std::erase_if(items, [&](ItemId x) { return !kb.IsInstanceOf(x, type); });
    }
    typed.push_back({c, type, std::move(match)});
  }
  if (typed.empty()) {
    return Status::NotFound("no column could be typed against the KB");
  }

  DiscoveredGraph result;
  std::vector<uint32_t> node_of(schema.num_columns(),
                                static_cast<uint32_t>(-1));
  for (const TypedColumn& tc : typed) {
    node_of[tc.column] =
        result.graph.AddNode({schema.column_name(tc.column),
                              std::string(kb.ClassName(tc.type)), tc.match.sim});
  }

  // Edge discovery per ordered column pair.
  struct ScoredEdge {
    uint32_t from_node;
    uint32_t to_node;
    std::string relation;
    double support;
  };
  std::vector<ScoredEdge> chosen;
  for (const TypedColumn& a : typed) {
    for (const TypedColumn& b : typed) {
      if (a.column == b.column) continue;
      std::map<std::string, size_t> relation_support;
      size_t rows_both = 0;
      for (size_t row = 0; row < examples.num_tuples(); ++row) {
        const std::vector<ItemId>& items_a = a.match.row_items[row];
        const std::vector<ItemId>& items_b = b.match.row_items[row];
        if (items_a.empty() || items_b.empty()) continue;
        ++rows_both;
        std::unordered_set<uint32_t> b_set;
        for (ItemId x : items_b) b_set.insert(x.value());
        std::set<std::string> row_relations;
        for (ItemId x : items_a) {
          for (const KbEdge& edge : kb.OutEdges(x)) {
            if (b_set.contains(edge.target.value())) {
              row_relations.insert(std::string(kb.RelationName(edge.relation)));
            }
          }
        }
        for (const std::string& rel : row_relations) ++relation_support[rel];
      }
      if (rows_both == 0) continue;
      const ScoredEdge* best = nullptr;
      std::vector<ScoredEdge> qualifying;
      for (const auto& [rel, count] : relation_support) {
        double support = static_cast<double>(count) / static_cast<double>(rows_both);
        if (support + 1e-9 < options.min_support) continue;
        qualifying.push_back(
            {node_of[a.column], node_of[b.column], rel, support});
      }
      std::sort(qualifying.begin(), qualifying.end(),
                [](const ScoredEdge& x, const ScoredEdge& y) {
                  if (x.support != y.support) return x.support > y.support;
                  return x.relation < y.relation;
                });
      if (!qualifying.empty()) {
        best = &qualifying.front();
        chosen.push_back(*best);
      }
      // Record every qualifying edge that touches the target column.
      if (!target_column.empty()) {
        for (const ScoredEdge& e : qualifying) {
          const std::string& from_col = result.graph.node(e.from_node).column;
          const std::string& to_col = result.graph.node(e.to_node).column;
          if (from_col == target_column || to_col == target_column) {
            result.target_edges.push_back({from_col, to_col, e.relation, e.support});
          }
        }
      }
    }
  }
  for (const ScoredEdge& e : chosen) {
    RETURN_NOT_OK(result.graph.AddEdge(e.from_node, e.to_node, e.relation));
  }

  // Optional 2-hop path discovery for pairs with no direct relationship:
  // col A -rel1-> (mid) -rel2-> col B, the mid entity existentially
  // quantified (paper §II-C's path extension applied to S1/S2).
  if (options.discover_paths) {
    std::set<std::pair<uint32_t, uint32_t>> directly_connected;
    for (const ScoredEdge& e : chosen) directly_connected.insert({e.from_node, e.to_node});

    for (const TypedColumn& a : typed) {
      for (const TypedColumn& b : typed) {
        if (a.column == b.column) continue;
        if (directly_connected.contains({node_of[a.column], node_of[b.column]})) {
          continue;  // a direct edge is always preferred
        }
        // Per-row support of (rel1, mid class, rel2) triples.
        std::map<std::tuple<std::string, std::string, std::string>, size_t> support;
        size_t rows_both = 0;
        for (size_t row = 0; row < examples.num_tuples(); ++row) {
          const std::vector<ItemId>& items_a = a.match.row_items[row];
          const std::vector<ItemId>& items_b = b.match.row_items[row];
          if (items_a.empty() || items_b.empty()) continue;
          ++rows_both;
          std::unordered_set<uint32_t> b_set;
          for (ItemId y : items_b) b_set.insert(y.value());
          std::set<std::tuple<std::string, std::string, std::string>> row_paths;
          for (ItemId x : items_a) {
            for (const KbEdge& hop1 : kb.OutEdges(x)) {
              ItemId mid = hop1.target;
              if (kb.IsLiteral(mid)) continue;
              for (const KbEdge& hop2 : kb.OutEdges(mid)) {
                if (!b_set.contains(hop2.target.value())) continue;
                for (ClassId mid_class : kb.DirectClasses(mid)) {
                  row_paths.insert({std::string(kb.RelationName(hop1.relation)),
                                    std::string(kb.ClassName(mid_class)),
                                    std::string(kb.RelationName(hop2.relation))});
                }
              }
            }
          }
          for (const auto& path : row_paths) ++support[path];
        }
        if (rows_both == 0) continue;
        std::vector<PathCandidate> qualifying;
        for (const auto& [path, count] : support) {
          double s = static_cast<double>(count) / static_cast<double>(rows_both);
          if (s + 1e-9 < options.min_support) continue;
          const auto& [rel1, mid_class, rel2] = path;
          qualifying.push_back({result.graph.node(node_of[a.column]).column,
                                result.graph.node(node_of[b.column]).column, rel1,
                                mid_class, rel2, s});
        }
        std::sort(qualifying.begin(), qualifying.end(),
                  [](const PathCandidate& x, const PathCandidate& y) {
                    if (x.support != y.support) return x.support > y.support;
                    return std::tie(x.rel1, x.mid_class, x.rel2) <
                           std::tie(y.rel1, y.mid_class, y.rel2);
                  });
        if (!qualifying.empty()) {
          const PathCandidate& best = qualifying.front();
          uint32_t mid = result.graph.AddNode(
              {"", best.mid_class, Similarity::Equality()});
          RETURN_NOT_OK(
              result.graph.AddEdge(node_of[a.column], mid, best.rel1));
          RETURN_NOT_OK(
              result.graph.AddEdge(mid, node_of[b.column], best.rel2));
        }
        if (!target_column.empty()) {
          for (const PathCandidate& path : qualifying) {
            if (path.from_column == target_column ||
                path.to_column == target_column) {
              result.target_paths.push_back(path);
            }
          }
        }
      }
    }
    std::sort(result.target_paths.begin(), result.target_paths.end(),
              [](const PathCandidate& x, const PathCandidate& y) {
                if (x.support != y.support) return x.support > y.support;
                return std::tie(x.rel1, x.mid_class, x.rel2) <
                       std::tie(y.rel1, y.mid_class, y.rel2);
              });
  }
  std::sort(result.target_edges.begin(), result.target_edges.end(),
            [](const EdgeCandidate& x, const EdgeCandidate& y) {
              if (x.support != y.support) return x.support > y.support;
              return std::tie(x.relation, x.from_column, x.to_column) <
                     std::tie(y.relation, y.from_column, y.to_column);
            });

  // Restrict to the component containing the target column, if given.
  if (!target_column.empty()) {
    uint32_t target_node = result.graph.FindNodeByColumn(target_column);
    if (target_node == result.graph.nodes().size()) {
      return Status::NotFound("target column '", target_column,
                              "' could not be typed against the KB");
    }
    // BFS over the undirected view from the target.
    const auto& nodes = result.graph.nodes();
    const auto& edges = result.graph.edges();
    std::vector<char> keep(nodes.size(), 0);
    std::vector<uint32_t> frontier{target_node};
    keep[target_node] = 1;
    while (!frontier.empty()) {
      uint32_t v = frontier.back();
      frontier.pop_back();
      for (const MatchEdge& e : edges) {
        uint32_t other = static_cast<uint32_t>(nodes.size());
        if (e.from == v) other = e.to;
        if (e.to == v) other = e.from;
        if (other < nodes.size() && !keep[other]) {
          keep[other] = 1;
          frontier.push_back(other);
        }
      }
    }
    SchemaMatchingGraph pruned;
    std::vector<uint32_t> remap(nodes.size(), static_cast<uint32_t>(-1));
    for (uint32_t v = 0; v < nodes.size(); ++v) {
      if (keep[v]) remap[v] = pruned.AddNode(nodes[v]);
    }
    for (const MatchEdge& e : edges) {
      if (keep[e.from] && keep[e.to]) {
        RETURN_NOT_OK(pruned.AddEdge(remap[e.from], remap[e.to], e.relation));
      }
    }
    result.graph = std::move(pruned);
  }
  RETURN_NOT_OK(result.graph.Validate());
  return result;
}

Result<std::vector<DetectiveRule>> GenerateRules(const KnowledgeBase& kb,
                                                 const Relation& positives,
                                                 const Relation& negatives,
                                                 std::string_view target_column,
                                                 const DiscoveryOptions& options) {
  if (positives.schema() != negatives.schema()) {
    return Status::InvalidArgument("positive and negative examples differ in schema");
  }
  // S1 and S2.
  auto positive = DiscoverMatchingGraph(kb, positives, target_column, options);
  if (!positive.ok()) return positive.status().WithContext("S1 (positive examples)");
  auto negative = DiscoverMatchingGraph(kb, negatives, target_column, options);
  if (!negative.ok()) return negative.status().WithContext("S2 (negative examples)");

  const SchemaMatchingGraph& gp = positive->graph;
  uint32_t p_node = gp.FindNodeByColumn(target_column);
  DETECTIVE_CHECK_LT(p_node, gp.nodes().size());
  uint32_t n_node_src = negative->graph.FindNodeByColumn(target_column);
  const MatchNode& negative_target = negative->graph.node(n_node_src);

  // The positive semantics of the target: its incident edges in G+.
  auto edge_semantics = [&](const EdgeCandidate& cand) {
    for (const MatchEdge& e : gp.edges()) {
      if (e.from != p_node && e.to != p_node) continue;
      const std::string& from_col = gp.node(e.from).column;
      const std::string& to_col = gp.node(e.to).column;
      if (from_col == cand.from_column && to_col == cand.to_column &&
          e.relation == cand.relation) {
        return true;  // identical to a positive edge: degenerate
      }
    }
    return false;
  };

  // S3: one candidate DR per distinct negative edge semantics.
  std::vector<DetectiveRule> rules;
  std::set<std::string> seen;
  size_t counter = 0;
  for (const EdgeCandidate& cand : negative->target_edges) {
    if (edge_semantics(cand)) continue;
    std::string signature = cand.from_column + "\x1f" + cand.relation + "\x1f" +
                            cand.to_column;
    if (!seen.insert(signature).second) continue;

    // Build the negative graph: G+ evidence (drop the target node) plus the
    // negative target node linked by this candidate edge.
    SchemaMatchingGraph gn;
    std::vector<uint32_t> remap(gp.nodes().size(), static_cast<uint32_t>(-1));
    for (uint32_t v = 0; v < gp.nodes().size(); ++v) {
      if (v == p_node) continue;
      remap[v] = gn.AddNode(gp.node(v));
    }
    uint32_t n_node = gn.AddNode(negative_target);
    for (const MatchEdge& e : gp.edges()) {
      if (e.from == p_node || e.to == p_node) continue;
      RETURN_NOT_OK(gn.AddEdge(remap[e.from], remap[e.to], e.relation));
    }
    bool target_is_source = cand.from_column == target_column;
    uint32_t other = gn.FindNodeByColumn(target_is_source ? cand.to_column
                                                          : cand.from_column);
    if (other >= gn.nodes().size()) continue;  // endpoint outside the component
    RETURN_NOT_OK(gn.AddEdge(target_is_source ? n_node : other,
                             target_is_source ? other : n_node, cand.relation));
    if (!gn.Connected()) continue;

    std::string name =
        std::string(target_column) + "_dr" + std::to_string(++counter);
    auto rule = MergeIntoRule(std::move(name), gp, gn, target_column);
    if (!rule.ok()) continue;  // e.g. positive side disconnected without n
    rules.push_back(std::move(*rule));
  }

  // Negative *paths* (discover_paths only): a candidate whose negative
  // semantics routes through an existential intermediate, e.g.
  // Name -memberOf-> (club) -meetsIn-> City. Constructed directly because
  // the merged graph gains two nodes (n and the existential mid).
  //
  // Positive path signatures incident to p, to skip degenerate candidates.
  std::set<std::string> positive_paths;
  for (uint32_t m = 0; m < gp.nodes().size(); ++m) {
    if (!gp.node(m).IsExistential()) continue;
    for (const MatchEdge& e1 : gp.edges()) {
      for (const MatchEdge& e2 : gp.edges()) {
        if (e1.to == m && e2.from == m && e2.to == p_node) {
          positive_paths.insert(gp.node(e1.from).column + "\x1f" + e1.relation +
                                "\x1f" + gp.node(m).type + "\x1f" + e2.relation);
        }
      }
    }
  }
  for (const PathCandidate& path : negative->target_paths) {
    bool target_is_source = path.from_column == target_column;
    const std::string& anchor_column =
        target_is_source ? path.to_column : path.from_column;
    if (!target_is_source) {
      std::string signature = path.from_column + "\x1f" + path.rel1 + "\x1f" +
                              path.mid_class + "\x1f" + path.rel2;
      if (positive_paths.contains(signature)) continue;  // degenerate
    }
    std::string signature = "path\x1f" + path.from_column + "\x1f" + path.rel1 +
                            "\x1f" + path.mid_class + "\x1f" + path.rel2 + "\x1f" +
                            path.to_column;
    if (!seen.insert(signature).second) continue;

    SchemaMatchingGraph graph = gp;  // positive side stays intact
    uint32_t anchor = graph.FindNodeByColumn(anchor_column);
    if (anchor >= graph.nodes().size() || anchor == p_node) continue;
    uint32_t n_node = graph.AddNode(negative_target);
    uint32_t mid = graph.AddNode({"", path.mid_class, Similarity::Equality()});
    Status st = target_is_source
                    ? graph.AddEdge(n_node, mid, path.rel1)
                    : graph.AddEdge(anchor, mid, path.rel1);
    if (!st.ok()) continue;
    st = target_is_source ? graph.AddEdge(mid, anchor, path.rel2)
                          : graph.AddEdge(mid, n_node, path.rel2);
    if (!st.ok()) continue;

    std::string name =
        std::string(target_column) + "_pathdr" + std::to_string(++counter);
    DetectiveRule rule(std::move(name), std::move(graph), p_node, n_node);
    if (!rule.Validate().ok()) continue;
    rules.push_back(std::move(rule));
  }
  return rules;
}

}  // namespace detective
