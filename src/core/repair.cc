#include "core/repair.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "obs/progress.h"

namespace detective {

// ---- RuleEngine --------------------------------------------------------------

RuleEngine::RuleEngine(const KnowledgeBase& kb, const Schema& schema,
                       std::vector<DetectiveRule> rules, RepairOptions options)
    : kb_(kb),
      schema_(schema),
      rules_(std::move(rules)),
      options_(options),
      matcher_(std::make_unique<EvidenceMatcher>(kb, options.matcher)) {}

Status RuleEngine::Init() {
  bound_.clear();
  bound_.reserve(rules_.size());
  for (const DetectiveRule& rule : rules_) {
    auto bound = BindRule(rule, schema_, kb_);
    if (!bound.ok()) return bound.status();
    bound_.push_back(std::move(*bound));
  }
  disabled_.assign(rules_.size(), 0);
  return Status::OK();
}

size_t RuleEngine::num_usable_rules() const {
  size_t count = 0;
  for (const BoundRule& rule : bound_) count += rule.usable ? 1 : 0;
  return count;
}

void RuleEngine::set_rule_disabled(uint32_t index, bool disabled) {
  DETECTIVE_CHECK_LT(index, disabled_.size()) << "Init() not called";
  disabled_[index] = disabled ? 1 : 0;
}

size_t RuleEngine::num_disabled_rules() const {
  size_t count = 0;
  for (char flag : disabled_) count += flag != 0 ? 1 : 0;
  return count;
}

RuleEvaluation RuleEngine::Evaluate(uint32_t index, const Tuple& tuple) {
  if (rule_disabled(index)) return RuleEvaluation{};
  ++stats_.rule_checks;
  DETECTIVE_COUNT("repair.rule_checks");
  RuleEvaluation evaluation;
  const BoundRule& rule = bound_[index];
  if (!rule.usable) return evaluation;

  // Applicability condition (ii): there must be something new to mark.
  bool marks_something = false;
  for (uint32_t v = 0; v < rule.nodes.size(); ++v) {
    if (v == rule.negative || rule.nodes[v].IsExistential()) continue;
    if (!tuple.IsPositive(rule.nodes[v].column)) {
      marks_something = true;
      break;
    }
  }
  if (!marks_something) return evaluation;

  std::vector<ItemId> assignment;
  if (matcher_->BestPositiveMatch(rule, tuple, &assignment)) {
    DETECTIVE_COUNT("repair.positive_matches");
    evaluation.action = RuleEvaluation::Action::kProofPositive;
    // Cells that matched fuzzily get standardized to the KB label.
    for (uint32_t v = 0; v < rule.nodes.size(); ++v) {
      if (v == rule.negative || rule.nodes[v].IsExistential()) continue;
      const BoundNode& node = rule.nodes[v];
      if (tuple.IsPositive(node.column)) continue;  // already proven
      std::string label(kb_.Label(assignment[v]));
      if (label != tuple.value(node.column)) {
        evaluation.normalizations.emplace_back(node.column, std::move(label));
      }
    }
    evaluation.witness = std::move(assignment);
    return evaluation;
  }

  // Applicability condition (i): a positively marked cell is never changed.
  if (tuple.IsPositive(rule.nodes[rule.negative].column)) return evaluation;

  NegativeWitness witness;
  evaluation.corrections = matcher_->NegativeCorrections(
      rule, tuple, &evaluation.normalizations,
      provenance_ != nullptr ? &witness : nullptr);
  if (!evaluation.corrections.empty()) {
    DETECTIVE_COUNT("repair.negative_matches");
    evaluation.action = RuleEvaluation::Action::kRepair;
    evaluation.witness = std::move(witness.assignment);
    evaluation.correction_items.reserve(evaluation.corrections.size());
    for (const std::string& label : evaluation.corrections) {
      auto it = witness.correction_items.find(label);
      evaluation.correction_items.push_back(
          it != witness.correction_items.end() ? it->second : ItemId::Invalid());
    }
    // Fuzzy-matched evidence cells are about to be marked positive; drop
    // normalizations for cells already proven.
    std::erase_if(evaluation.normalizations, [&](const auto& n) {
      return tuple.IsPositive(n.first);
    });
  } else {
    evaluation.normalizations.clear();
  }
  return evaluation;
}

void RuleEngine::RecordProvenance(uint32_t index, const RuleEvaluation& evaluation,
                                  const Tuple& tuple, size_t correction_index) {
  const BoundRule& rule = bound_[index];
  const bool is_repair = evaluation.action == RuleEvaluation::Action::kRepair;
  DETECTIVE_CHECK(!is_repair || correction_index < evaluation.corrections.size());

  // Extend the witness with the chosen correction instance on the positive
  // node so the positive side's edges can be reported as evidence too (for
  // a repair, the witness assigns only the negative side).
  std::vector<ItemId> assignment = evaluation.witness;
  assignment.resize(rule.nodes.size(), ItemId::Invalid());
  if (is_repair && correction_index < evaluation.correction_items.size()) {
    assignment[rule.positive] = evaluation.correction_items[correction_index];
  }

  RepairProvenance record;
  record.row = current_row_;
  record.round = current_round_;
  record.rule = rules_[index].name();
  const ColumnIndex target = rule.nodes[rule.negative].column;
  record.column_index = target;
  record.column = schema_.column_name(target);
  record.old_value = tuple.value(target);
  if (is_repair) {
    record.kind = ProvenanceKind::kRepair;
    record.new_value = evaluation.corrections[correction_index];
  } else {
    record.kind = ProvenanceKind::kProofPositive;
    record.new_value = record.old_value;
  }

  // The witnessing node bindings (the correction instance on the positive
  // node is excluded: it is the record's new_value, not matched evidence).
  for (uint32_t v = 0; v < rule.nodes.size() && v < evaluation.witness.size();
       ++v) {
    if (!evaluation.witness[v].valid()) continue;
    const BoundNode& node = rule.nodes[v];
    ProvenanceBinding binding;
    if (!node.IsExistential()) {
      binding.column = schema_.column_name(node.column);
      binding.cell_value = tuple.value(node.column);
    }
    binding.type = std::string(kb_.ClassName(node.type));
    binding.kb_label = std::string(kb_.Label(evaluation.witness[v]));
    binding.kb_item = evaluation.witness[v].value();
    record.bindings.push_back(std::move(binding));
  }

  // Every rule edge both of whose endpoints are assigned holds in the KB by
  // construction of the match — these are the evidence edges.
  for (const BoundEdge& edge : rule.edges) {
    if (!assignment[edge.from].valid() || !assignment[edge.to].valid()) continue;
    record.evidence_edges.push_back(
        ProvenanceEdge{std::string(kb_.Label(assignment[edge.from])),
                       std::string(kb_.RelationName(edge.relation)),
                       std::string(kb_.Label(assignment[edge.to]))});
  }

  // Columns Apply() is about to mark positive (deduplicated, sorted).
  for (uint32_t v = 0; v < rule.nodes.size(); ++v) {
    if (v == rule.negative || rule.nodes[v].IsExistential()) continue;
    if (!tuple.IsPositive(rule.nodes[v].column)) {
      record.marked_columns.push_back(schema_.column_name(rule.nodes[v].column));
    }
  }
  std::sort(record.marked_columns.begin(), record.marked_columns.end());
  record.marked_columns.erase(
      std::unique(record.marked_columns.begin(), record.marked_columns.end()),
      record.marked_columns.end());

  // One kNormalization record per cell Apply() will actually standardize,
  // sharing the primary record's evidence (the same witness justifies both).
  std::vector<RepairProvenance> normalization_records;
  for (const auto& [column, label] : evaluation.normalizations) {
    if (tuple.IsPositive(column) || tuple.value(column) == label) continue;
    RepairProvenance norm;
    norm.row = current_row_;
    norm.round = current_round_;
    norm.rule = record.rule;
    norm.kind = ProvenanceKind::kNormalization;
    norm.column_index = column;
    norm.column = schema_.column_name(column);
    norm.old_value = tuple.value(column);
    norm.new_value = label;
    norm.bindings = record.bindings;
    norm.evidence_edges = record.evidence_edges;
    norm.marked_columns = record.marked_columns;
    normalization_records.push_back(std::move(norm));
  }

  provenance_->Add(std::move(record));
  for (RepairProvenance& norm : normalization_records) {
    provenance_->Add(std::move(norm));
  }
  DETECTIVE_COUNT("provenance.records");
}

void RuleEngine::Apply(uint32_t index, const RuleEvaluation& evaluation, Tuple* tuple,
                       size_t correction_index) {
  const BoundRule& rule = bound_[index];
  DETECTIVE_CHECK(evaluation.action != RuleEvaluation::Action::kNone);
  ++stats_.rule_applications;
  DETECTIVE_COUNT("repair.rule_applications");
  if (provenance_ != nullptr) {
    // Capture before any mutation: records hold pre-change values/marks.
    RecordProvenance(index, evaluation, *tuple, correction_index);
  }

  if (evaluation.action == RuleEvaluation::Action::kRepair) {
    DETECTIVE_CHECK_LT(correction_index, evaluation.corrections.size());
    ColumnIndex target = rule.nodes[rule.negative].column;
    DETECTIVE_CHECK(!tuple->IsPositive(target));
    tuple->Repair(target, evaluation.corrections[correction_index]);
    ++stats_.repairs;
    DETECTIVE_COUNT("repair.cell_repairs");
  } else {
    ++stats_.proofs_positive;
    DETECTIVE_COUNT("repair.proofs_positive");
  }
  // Standardize fuzzy-matched cells (evidence, and for proof positive also
  // the target) before marking them: a positive mark certifies the value.
  for (const auto& [column, label] : evaluation.normalizations) {
    if (tuple->IsPositive(column)) continue;  // proven since Evaluate
    if (tuple->value(column) != label) {
      tuple->Repair(column, label);
      ++stats_.repairs;
      DETECTIVE_COUNT("repair.cell_repairs");
    }
  }

  // Both actions mark col(Ve) ∪ col(p) positive (the repaired value was just
  // drawn from the KB, so it is positive by construction); existential nodes
  // have no cell to mark.
  for (uint32_t v = 0; v < rule.nodes.size(); ++v) {
    if (v == rule.negative || rule.nodes[v].IsExistential()) continue;
    if (!tuple->IsPositive(rule.nodes[v].column)) {
      tuple->MarkPositive(rule.nodes[v].column);
      ++stats_.cells_marked;
      DETECTIVE_COUNT("repair.cells_marked");
    }
  }
}

namespace {

/// Shared multi-version chase (§IV-C): depth-first branching over ambiguous
/// corrections, following `check_order` and applying each rule at most once
/// per branch. `rescan` = true reproduces the basic algorithm's "rescan
/// after every application" discipline; false walks the order resuming where
/// the branch left off, looping until stable (fast algorithm).
void MultiVersionChase(RuleEngine& engine, const std::vector<uint32_t>& check_order,
                       size_t max_versions, Tuple tuple, std::vector<char> applied,
                       std::vector<Tuple>* out, size_t round = 0) {
  while (true) {
    DETECTIVE_COUNT("repair.chase_rounds");
    engine.set_current_round(++round);
    bool fired = false;
    for (uint32_t index : check_order) {
      if (applied[index] || engine.rule_disabled(index)) continue;
      RuleEvaluation evaluation = engine.Evaluate(index, tuple);
      if (evaluation.action == RuleEvaluation::Action::kNone) continue;
      applied[index] = 1;
      if (evaluation.action == RuleEvaluation::Action::kRepair &&
          evaluation.corrections.size() > 1) {
        // Branch: one continuation per correction, capped at max_versions
        // total fixpoints (earliest corrections win when the cap bites).
        for (size_t c = 0; c < evaluation.corrections.size(); ++c) {
          if (out->size() >= max_versions) break;
          Tuple branch = tuple;
          engine.set_current_round(round);  // recursion may have moved it
          engine.Apply(index, evaluation, &branch, c);
          MultiVersionChase(engine, check_order, max_versions, std::move(branch),
                            applied, out, round);
        }
        return;
      }
      engine.Apply(index, evaluation, &tuple, 0);
      fired = true;
      break;  // restart the scan (chase discipline)
    }
    if (!fired) {
      DETECTIVE_COUNT("repair.versions_emitted");
      DETECTIVE_TRACE_INSTANT("repair.version_emitted");
      out->push_back(std::move(tuple));
      return;
    }
  }
}

}  // namespace

// ---- BasicRepairer -----------------------------------------------------------

BasicRepairer::BasicRepairer(const KnowledgeBase& kb, const Schema& schema,
                             std::vector<DetectiveRule> rules, RepairOptions options)
    : engine_(kb, schema, std::move(rules), options) {}

void BasicRepairer::RepairTuple(Tuple* tuple) {
  ++engine_.stats().tuples_processed;
  DETECTIVE_COUNT("repair.tuples_processed");
  std::vector<char> applied(engine_.num_rules(), 0);
  // Algorithm 1: pick any applicable rule, apply, and rescan; every rule is
  // used at most once, so at most |Σ| iterations of the outer loop.
  size_t round = 0;
  while (true) {
    DETECTIVE_COUNT("repair.chase_rounds");
    engine_.set_current_round(++round);
    bool fired = false;
    for (uint32_t index = 0; index < engine_.num_rules(); ++index) {
      if (applied[index] || engine_.rule_disabled(index)) continue;
      RuleEvaluation evaluation = engine_.Evaluate(index, *tuple);
      if (evaluation.action == RuleEvaluation::Action::kNone) continue;
      engine_.Apply(index, evaluation, tuple, 0);
      applied[index] = 1;
      fired = true;
      break;
    }
    if (!fired) {
      DETECTIVE_PROGRESS(NoteRounds(round));
      return;
    }
  }
}

void BasicRepairer::RepairRelation(Relation* relation) {
  DETECTIVE_SCOPED_TIMER("repair.relation");
  DETECTIVE_TRACE_SPAN(
      "repair.relation",
      {"rows", static_cast<int64_t>(relation->num_tuples())});
  for (size_t row = 0; row < relation->num_tuples(); ++row) {
    engine_.set_current_row(row);
    Tuple tuple = relation->tuple(row);
    RepairTuple(&tuple);
    relation->CommitRow(row, tuple);
    DETECTIVE_PROGRESS(AddRowsCommitted(1));
  }
}

std::vector<Tuple> BasicRepairer::RepairMultiVersion(const Tuple& tuple) {
  ++engine_.stats().tuples_processed;
  std::vector<uint32_t> order(engine_.num_rules());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<Tuple> out;
  MultiVersionChase(engine_, order, engine_.options().max_versions, tuple,
                    std::vector<char>(engine_.num_rules(), 0), &out);
  return out;
}

// ---- FastRepairer ------------------------------------------------------------

FastRepairer::FastRepairer(const KnowledgeBase& kb, const Schema& schema,
                           std::vector<DetectiveRule> rules, RepairOptions options)
    : engine_(kb, schema, std::move(rules), options) {}

Status FastRepairer::Init() {
  RETURN_NOT_OK(engine_.Init());
  rule_graph_ = std::make_unique<RuleGraph>(engine_.rules());
  check_order_ = engine_.options().use_rule_order ? rule_graph_->CheckOrder()
                                                  : std::vector<uint32_t>{};
  if (check_order_.empty()) {
    check_order_.resize(engine_.num_rules());
    for (uint32_t i = 0; i < check_order_.size(); ++i) check_order_[i] = i;
  }
  return Status::OK();
}

void FastRepairer::RepairTuple(Tuple* tuple) { RepairTupleImpl(tuple, nullptr); }

void FastRepairer::RepairTupleImpl(Tuple* tuple, CancelToken* cancel) {
  ++engine_.stats().tuples_processed;
  DETECTIVE_COUNT("repair.tuples_processed");
  DETECTIVE_CHECK(rule_graph_ != nullptr) << "Init() not called";
  std::vector<char> applied(engine_.num_rules(), 0);

  // A certified stratification schedule licenses eliding confirming sweeps
  // inside multi-rule blocks whose evaluations are provably all-kNone
  // (docs/static_analysis.md). Evaluation order and block structure stay
  // exactly classic, so the chase is byte-identical by construction. Elision
  // disarms itself while a fault plan is armed: fault probes fire inside
  // Evaluate, so skipping an evaluation would shift per-site hit counts and
  // make the skipped sweep observable.
  const StratifiedSchedule* schedule = engine_.options().schedule;
  const bool elide = schedule != nullptr &&
                     schedule->num_rules == engine_.num_rules() &&
                     engine_.options().use_rule_order && !fault::Armed();
  std::vector<std::pair<uint32_t, size_t>> fired;  // (rule, position), per sweep

  // One forward sweep in topological order. Rules sharing a dependency
  // cycle live in one SCC; those are re-swept locally until stable.
  const std::vector<uint32_t>& components = rule_graph_->ComponentOf();
  size_t round = 0;
  size_t i = 0;
  size_t block = 0;  // component-block ordinal, reported as the stratum
  while (i < check_order_.size()) {
    DETECTIVE_PROGRESS(SetStratum(block++));
    // The component block [i, j).
    size_t j = i + 1;
    if (engine_.options().use_rule_order) {
      while (j < check_order_.size() &&
             components[check_order_[j]] == components[check_order_[i]]) {
        ++j;
      }
    } else {
      j = check_order_.size();  // no order info: sweep everything repeatedly
    }
    bool stable = false;
    while (!stable) {
      DETECTIVE_COUNT("repair.chase_rounds");
      engine_.set_current_round(++round);
      stable = true;
      if (elide) fired.clear();
      for (size_t k = i; k < j; ++k) {
        uint32_t index = check_order_[k];
        if (applied[index] || engine_.rule_disabled(index)) continue;
        RuleEvaluation evaluation = engine_.Evaluate(index, *tuple);
        // The trip may have surfaced inside the evaluation (fault probe,
        // expired budget observed by the matcher's poll): discard the
        // possibly-partial evaluation and abandon the chase, blaming the
        // rule in flight. The guarded driver restores the tuple.
        if (cancel != nullptr && cancel->Check()) {
          cancel->BlameOnce(engine_.rules()[index].name(), round);
          return;
        }
        if (evaluation.action == RuleEvaluation::Action::kNone) continue;
        engine_.Apply(index, evaluation, tuple, 0);
        applied[index] = 1;
        stable = false;
        if (elide) fired.emplace_back(index, k);
      }
      // Single-rule components cannot re-enable themselves.
      if (j - i == 1) break;
      if (!stable && elide) {
        // A re-sweep can change anything only if some still-pending rule was
        // evaluated BEFORE a fire that can enable it (a fire at an earlier
        // position was already visible to every later evaluation this
        // sweep). If no such pair exists, the classic loop's next sweep is
        // provably all-kNone: consume the round number it would have used
        // (so provenance round stamps in later blocks are unchanged) and
        // skip its evaluations.
        bool resweep = false;
        for (size_t k = i; k < j && !resweep; ++k) {
          uint32_t pending = check_order_[k];
          if (applied[pending] || engine_.rule_disabled(pending)) continue;
          for (const auto& [fired_rule, position] : fired) {
            if (position > k && schedule->CanEnable(fired_rule, pending)) {
              resweep = true;
              break;
            }
          }
        }
        if (!resweep) {
          ++round;
          ++engine_.stats().rounds_skipped;
          DETECTIVE_COUNT("strata.rounds_skipped");
          break;
        }
      }
    }
    i = j;
  }
  DETECTIVE_PROGRESS(NoteRounds(round));
}

void FastRepairer::RepairRelation(Relation* relation) {
  DETECTIVE_SCOPED_TIMER("repair.relation");
  DETECTIVE_TRACE_SPAN(
      "repair.relation",
      {"rows", static_cast<int64_t>(relation->num_tuples())});
  for (size_t row = 0; row < relation->num_tuples(); ++row) {
    engine_.set_current_row(row);
    Tuple tuple = relation->tuple(row);
    RepairTuple(&tuple);
    relation->CommitRow(row, tuple);
    DETECTIVE_PROGRESS(AddRowsCommitted(1));
  }
}

std::vector<Tuple> FastRepairer::RepairMultiVersion(const Tuple& tuple) {
  ++engine_.stats().tuples_processed;
  DETECTIVE_CHECK(rule_graph_ != nullptr) << "Init() not called";
  std::vector<Tuple> out;
  MultiVersionChase(engine_, check_order_, engine_.options().max_versions, tuple,
                    std::vector<char>(engine_.num_rules(), 0), &out);
  return out;
}

// ---- Guarded repair ----------------------------------------------------------

bool FastRepairer::RepairTupleGuarded(size_t row, Deadline run_deadline,
                                      Tuple* tuple, QuarantineLog* quarantine) {
  // Fault decisions inside are keyed to this row with fresh hit counters, so
  // they are identical no matter which worker (or breaker retry) runs them.
  fault::TupleScope fault_scope(row);
  CancelToken token;
  const uint64_t budget_ms = engine_.options().tuple_budget_ms;
  token.ArmDeadlines(run_deadline, budget_ms > 0 ? Deadline::AfterMs(budget_ms)
                                                 : Deadline::Infinite());
  engine_.set_current_row(row);
  Tuple pristine = *tuple;
  // Provenance goes through a scratch log: an abandoned chase rolls the
  // tuple back, so its records must never reach the caller's sink.
  ProvenanceLog* sink = engine_.provenance();
  ProvenanceLog scratch;
  if (sink != nullptr) engine_.set_provenance(&scratch);
  engine_.set_cancel(&token);
  // An expired run deadline (or a per-tuple probe fault) quarantines the
  // tuple before the chase starts: round 0, no blamed rule.
  token.CheckNow();
  DETECTIVE_FAULT_POINT_CANCEL("repair.tuple", &token);
  if (!token.tripped()) RepairTupleImpl(tuple, &token);
  engine_.set_cancel(nullptr);
  if (sink != nullptr) {
    engine_.set_provenance(sink);
    if (!token.tripped()) sink->Merge(std::move(scratch));
  }
  if (!token.tripped()) return true;

  *tuple = std::move(pristine);
  QuarantineRecord record;
  record.row = row;
  record.rule = token.blamed_rule();
  record.site = token.site();
  record.reason = token.reason();
  record.round = token.blamed_round();
  record.detail = token.detail();
  ++engine_.stats().tuples_quarantined;
  DETECTIVE_COUNT("quarantine.tuples");
  DETECTIVE_PROGRESS(AddQuarantined(1));
  DETECTIVE_TRACE_INSTANT("quarantine.tuple");
  if (quarantine != nullptr) quarantine->Add(std::move(record));
  return false;
}

void FastRepairer::RepairRelationGuarded(Relation* relation,
                                         QuarantineLog* quarantine) {
  DETECTIVE_SCOPED_TIMER("repair.relation");
  DETECTIVE_TRACE_SPAN(
      "repair.relation",
      {"rows", static_cast<int64_t>(relation->num_tuples())});
  const uint64_t deadline_ms = engine_.options().deadline_ms;
  Deadline run_deadline = deadline_ms > 0 ? Deadline::AfterMs(deadline_ms)
                                          : Deadline::Infinite();
  QuarantineLog ledger;
  for (size_t row = 0; row < relation->num_tuples(); ++row) {
    Tuple tuple = relation->tuple(row);
    if (RepairTupleGuarded(row, run_deadline, &tuple, &ledger)) {
      relation->CommitRow(row, tuple);
    }
    // Quarantined rows count too: the heartbeat reports rows *finalized*
    // (committed or rolled back), so it reaches rows_total even on chaos runs.
    DETECTIVE_PROGRESS(AddRowsCommitted(1));
  }
  BreakerFixpoint(*this, relation, run_deadline, &ledger);
  ledger.Canonicalize();
  if (quarantine != nullptr) quarantine->Merge(std::move(ledger));
}

void BreakerFixpoint(FastRepairer& repairer, Relation* relation,
                     Deadline run_deadline, QuarantineLog* quarantine) {
  RuleEngine& engine = repairer.engine();
  const size_t threshold = engine.options().max_rule_failures;
  if (threshold == 0 || quarantine == nullptr) return;

  // Each iteration disables at least one rule, so num_rules bounds the loop.
  for (size_t iteration = 0; iteration < engine.num_rules(); ++iteration) {
    std::map<std::string, size_t> tally;
    for (const QuarantineRecord& record : quarantine->records()) {
      if (!record.rule.empty()) ++tally[record.rule];
    }
    std::set<std::string> newly_disabled;
    for (uint32_t index = 0; index < engine.num_rules(); ++index) {
      if (engine.rule_disabled(index)) continue;
      auto it = tally.find(engine.rules()[index].name());
      if (it == tally.end() || it->second < threshold) continue;
      engine.set_rule_disabled(index, true);
      newly_disabled.insert(it->first);
      DETECTIVE_COUNT("quarantine.breaker_trips");
      DETECTIVE_TRACE_INSTANT("quarantine.breaker_trip");
    }
    if (newly_disabled.empty()) return;

    // The tripped rules' victims get another chance with those rules out of
    // the rule set; their old records are replaced by the retry's outcome.
    std::vector<QuarantineRecord> kept;
    std::vector<uint64_t> retry_rows;
    for (const QuarantineRecord& record : quarantine->records()) {
      if (newly_disabled.count(record.rule) > 0) {
        retry_rows.push_back(record.row);
      } else {
        kept.push_back(record);
      }
    }
    quarantine->Clear();
    for (QuarantineRecord& record : kept) quarantine->Add(std::move(record));
    std::sort(retry_rows.begin(), retry_rows.end());
    retry_rows.erase(std::unique(retry_rows.begin(), retry_rows.end()),
                     retry_rows.end());
    for (uint64_t row : retry_rows) {
      Tuple tuple = relation->tuple(static_cast<size_t>(row));
      if (repairer.RepairTupleGuarded(static_cast<size_t>(row), run_deadline,
                                      &tuple, quarantine)) {
        relation->CommitRow(static_cast<size_t>(row), tuple);
      }
    }
  }
}

}  // namespace detective
