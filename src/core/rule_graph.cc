#include "core/rule_graph.h"

#include <algorithm>

#include "common/logging.h"
#include "common/tarjan.h"

namespace detective {

RuleGraph::RuleGraph(const std::vector<DetectiveRule>& rules) {
  const size_t n = rules.size();
  adjacency_.resize(n);

  // Edge r -> s iff col(p) of r appears among the evidence columns of s.
  for (uint32_t r = 0; r < n; ++r) {
    const std::string& produced = rules[r].TargetColumn();
    for (uint32_t s = 0; s < n; ++s) {
      if (r == s) continue;
      const std::vector<std::string> evidence = rules[s].EvidenceColumns();
      if (std::find(evidence.begin(), evidence.end(), produced) != evidence.end()) {
        adjacency_[r].push_back(s);
      }
    }
  }

  TarjanScc tarjan(adjacency_);
  tarjan.Run();
  component_ = tarjan.component();
  num_components_ = tarjan.count();

  acyclic_ = num_components_ == n;

  // Stable order: by component (already topological), then input position.
  order_.resize(n);
  for (uint32_t i = 0; i < n; ++i) order_[i] = i;
  std::stable_sort(order_.begin(), order_.end(), [&](uint32_t a, uint32_t b) {
    return component_[a] < component_[b];
  });

  // Sanity: every edge must go forward across components.
  for (uint32_t r = 0; r < n; ++r) {
    for (uint32_t s : adjacency_[r]) {
      DETECTIVE_DCHECK(component_[r] <= component_[s]);
    }
  }
}

}  // namespace detective
