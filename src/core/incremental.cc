#include "core/incremental.h"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "common/csv.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "core/parallel_repair.h"

namespace detective {
namespace {

/// Bucketing of log records by row, preserving in-row order; what the merge
/// steps below walk in ascending row order. Pointer constness follows the
/// container's: buckets over a mutable log can move records out of it.
template <typename Records>
auto BucketByRow(Records& records, size_t num_rows) {
  using Ptr = decltype(&records.front());
  std::vector<std::vector<Ptr>> buckets(num_rows);
  for (auto& record : records) {
    if (record.row < num_rows) {
      buckets[static_cast<size_t>(record.row)].push_back(&record);
    }
  }
  return buckets;
}

/// Cheap 16-bit signature of a value: length (6 bits, saturating) plus the
/// low bits of the first and last byte. The plan's overlap scan tests a
/// 64Kbit bitmap of the delta's changed-value signatures before paying for
/// a full hash lookup — the scan touches every string of every provenance
/// record, and almost none of them match.
uint16_t ValueSignature(std::string_view value) {
  const unsigned first = value.empty() ? 0u : (unsigned char)value.front();
  const unsigned last = value.empty() ? 0u : (unsigned char)value.back();
  return static_cast<uint16_t>((std::min<size_t>(value.size(), 63)) |
                               ((first & 31u) << 6) | ((last & 31u) << 11));
}

class SignatureFilter {
 public:
  explicit SignatureFilter(const std::unordered_set<std::string>& values)
      : bits_(1024, 0) {
    for (const std::string& value : values) {
      const uint16_t sig = ValueSignature(value);
      bits_[sig >> 6] |= uint64_t{1} << (sig & 63);
    }
  }

  bool MayContain(std::string_view value) const {
    const uint16_t sig = ValueSignature(value);
    return ((bits_[sig >> 6] >> (sig & 63)) & 1) != 0;
  }

 private:
  std::vector<uint64_t> bits_;
};

}  // namespace

Result<RelationDelta> ParseDeltaCsv(std::string_view text, const Schema& schema) {
  ASSIGN_OR_RETURN(auto rows, ParseCsv(text));
  if (rows.empty()) {
    return Status::ParseError("delta CSV is empty (expected a header row)");
  }
  const std::vector<std::string>& header = rows.front();
  if (header.empty() || header.front() != "row") {
    return Status::ParseError(
        "delta CSV header must start with a 'row' column, got '",
        header.empty() ? std::string() : header.front(), "'");
  }
  if (header.size() != schema.num_columns() + 1) {
    return Status::ParseError("delta CSV header has ", header.size() - 1,
                              " data column(s); the relation schema has ",
                              schema.num_columns());
  }
  for (ColumnIndex c = 0; c < schema.num_columns(); ++c) {
    if (header[c + 1] != schema.column_name(c)) {
      return Status::ParseError("delta CSV column ", c + 1, " is '",
                                header[c + 1], "'; the relation schema expects '",
                                schema.column_name(c), "'");
    }
  }

  RelationDelta delta;
  delta.changes.reserve(rows.size() - 1);
  for (size_t i = 1; i < rows.size(); ++i) {
    const std::vector<std::string>& record = rows[i];
    if (record.size() != header.size()) {
      return Status::ParseError("delta CSV record ", i, " has ", record.size(),
                                " field(s), expected ", header.size());
    }
    DeltaChange change;
    change.values.assign(record.begin() + 1, record.end());
    if (record.front().empty()) {
      change.insert = true;
      ++delta.num_inserts;
    } else {
      uint64_t row = 0;
      if (!ParseUint64(record.front(), &row)) {
        return Status::ParseError("delta CSV record ", i,
                                  " has a non-numeric row index '",
                                  record.front(), "'");
      }
      change.row = static_cast<size_t>(row);
      ++delta.num_updates;
    }
    delta.changes.push_back(std::move(change));
  }
  return delta;
}

Result<RelationDelta> LoadDeltaFile(const std::string& path, const Schema& schema) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open delta file '", path, "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::IOError("error reading delta file '", path, "'");
  }
  return ParseDeltaCsv(buffer.str(), schema);
}

Result<IncrementalPlan> PlanIncremental(const RelationDelta& delta,
                                        Relation* relation,
                                        const ProvenanceLog& prev_provenance,
                                        const QuarantineLog* prev_quarantine) {
  DETECTIVE_SCOPED_TIMER("incremental.plan");
  const size_t pre_delta_rows = relation->num_tuples();
  const size_t num_columns = relation->schema().num_columns();

  // Apply the delta, collecting the values its updates touched (both the
  // replaced and the replacing content) — the overlap keys of the closure.
  std::unordered_set<std::string> changed_values;
  std::vector<char> is_affected(pre_delta_rows, 0);
  size_t delta_rows = 0;
  for (const DeltaChange& change : delta.changes) {
    if (change.insert) {
      RETURN_NOT_OK(relation->Append(change.values));
      is_affected.push_back(1);
      ++delta_rows;
      continue;
    }
    if (change.row >= pre_delta_rows) {
      return Status::InvalidArgument("delta updates row ", change.row,
                                     " but the relation has only ",
                                     pre_delta_rows, " row(s)");
    }
    for (ColumnIndex c = 0; c < num_columns; ++c) {
      std::string_view old_value = relation->value(change.row, c);
      if (old_value == change.values[c]) continue;
      changed_values.insert(std::string(old_value));
      changed_values.insert(change.values[c]);
      relation->SetValue(change.row, c, change.values[c]);
    }
    if (is_affected[change.row] == 0) {
      is_affected[change.row] = 1;
      ++delta_rows;
    }
  }

  // Evidence/cell-overlap closure: re-chase any row whose previous repairs
  // cite a value the delta changed. Redundant under per-tuple independence,
  // but cheap, and it keeps the byte-identity promise robust by
  // construction rather than by argument.
  size_t closure_rows = 0;
  if (!changed_values.empty()) {
    const SignatureFilter filter(changed_values);
    auto hits = [&](const std::string& value) {
      return filter.MayContain(value) && changed_values.count(value) != 0;
    };
    auto overlaps = [&](const RepairProvenance& record) {
      if (hits(record.old_value) || hits(record.new_value)) return true;
      for (const ProvenanceBinding& binding : record.bindings) {
        if (hits(binding.cell_value) || hits(binding.kb_label)) return true;
      }
      for (const ProvenanceEdge& edge : record.evidence_edges) {
        if (hits(edge.subject) || hits(edge.object)) return true;
      }
      return false;
    };
    for (const RepairProvenance& record : prev_provenance.records()) {
      const size_t row = static_cast<size_t>(record.row);
      if (row >= is_affected.size() || is_affected[row] != 0) continue;
      if (overlaps(record)) {
        is_affected[row] = 1;
        ++closure_rows;
      }
    }
  }

  // Previously quarantined rows re-chase so their ledger records regenerate
  // (deterministically, under the same fault plan) instead of replaying.
  size_t quarantined_rows = 0;
  if (prev_quarantine != nullptr) {
    for (uint64_t row : prev_quarantine->Rows()) {
      if (row >= is_affected.size() || is_affected[row] != 0) continue;
      is_affected[static_cast<size_t>(row)] = 1;
      ++quarantined_rows;
    }
  }

  IncrementalPlan plan;
  plan.is_affected = std::move(is_affected);
  plan.delta_rows = delta_rows;
  plan.closure_rows = closure_rows;
  plan.quarantined_rows = quarantined_rows;
  for (size_t row = 0; row < plan.is_affected.size(); ++row) {
    if (plan.is_affected[row] != 0) plan.affected_rows.push_back(row);
  }
  DETECTIVE_COUNT_N("incremental.rows_affected", plan.affected_rows.size());
  return plan;
}

Result<IncrementalStats> IncrementalRepair(
    const KnowledgeBase& kb, const std::vector<DetectiveRule>& rules,
    Relation* relation, const IncrementalPlan& plan,
    ProvenanceLog prev_provenance, const QuarantineLog* prev_quarantine,
    const IncrementalOptions& options) {
  DETECTIVE_SCOPED_TIMER("incremental.repair");
  DETECTIVE_TRACE_SPAN(
      "incremental.repair",
      {"rechased", static_cast<int64_t>(plan.affected_rows.size())});
  if (options.repair.max_rule_failures > 0) {
    return Status::InvalidArgument(
        "incremental repair cannot run with a rule circuit breaker "
        "(--max-rule-failures couples rows across the whole run)");
  }
  if (options.repair.deadline_ms > 0) {
    return Status::InvalidArgument(
        "incremental repair cannot run under a whole-run deadline "
        "(--deadline-ms quarantines by wall clock, not per row)");
  }
  const size_t num_rows = relation->num_tuples();
  if (plan.is_affected.size() != num_rows) {
    return Status::InvalidArgument("incremental plan covers ",
                                   plan.is_affected.size(),
                                   " row(s) but the relation has ", num_rows);
  }

  IncrementalStats stats;
  stats.rows_rechased = plan.affected_rows.size();
  stats.rows_replayed = num_rows - plan.affected_rows.size();

  // Replay the previous run's recorded repairs onto the unaffected rows:
  // apply each cell change in log order (repairs and normalizations rewrite
  // the cell; proofs only mark), reproducing the chase's final values and
  // marks without touching the KB.
  {
    DETECTIVE_SCOPED_TIMER("incremental.replay");
    const Schema& schema = relation->schema();
    for (const RepairProvenance& record : prev_provenance.records()) {
      const size_t row = static_cast<size_t>(record.row);
      if (row >= num_rows || plan.is_affected[row] != 0) continue;
      if (record.column_index >= schema.num_columns()) {
        return Status::InvalidArgument(
            "previous provenance record for row ", row, " names column index ",
            record.column_index, "; the relation has ", schema.num_columns(),
            " column(s) (wrong --prev-provenance file?)");
      }
      if (record.kind != ProvenanceKind::kProofPositive) {
        relation->RepairCell(row, record.column_index, record.new_value);
      }
      for (const std::string& marked : record.marked_columns) {
        ColumnIndex c = schema.FindColumn(marked);
        if (c != kInvalidColumn) relation->MarkPositive(row, c);
      }
      ++stats.replayed_records;
    }
  }

  // Re-chase the affected subset through the shared drivers, with original
  // row indexes keying fault scopes and provenance rows.
  ProvenanceLog fresh_provenance;
  QuarantineLog fresh_quarantine;
  {
    ParallelRepairOptions parallel_options;
    parallel_options.repair = options.repair;
    parallel_options.num_threads = options.num_threads;
    parallel_options.provenance =
        options.provenance != nullptr ? &fresh_provenance : nullptr;
    parallel_options.quarantine =
        options.quarantine != nullptr ? &fresh_quarantine : nullptr;
    parallel_options.row_subset = &plan.affected_rows;
    ASSIGN_OR_RETURN(stats.repair,
                     ParallelRepair(kb, rules, relation, parallel_options));
  }

  // Interleave previous (replayed) and fresh (re-chased) records in
  // ascending row order — each row's records come from exactly one source,
  // so the merged logs equal a full re-clean's byte for byte. Both source
  // logs are owned here (prev_provenance was passed by value), so records
  // move into the sink instead of deep-copying — at a 1% delta the previous
  // log holds ~99% of the merged output, and copying it used to dwarf the
  // re-chase itself.
  if (options.provenance != nullptr) {
    std::vector<RepairProvenance>& prev = prev_provenance.mutable_records();
    std::vector<RepairProvenance>& fresh = fresh_provenance.mutable_records();
    auto row_sorted = [](const std::vector<RepairProvenance>& records) {
      return std::is_sorted(records.begin(), records.end(),
                            [](const RepairProvenance& a,
                               const RepairProvenance& b) { return a.row < b.row; });
    };
    if (row_sorted(prev) && row_sorted(fresh)) {
      // Fast path: both logs come out of the drivers row-sorted, so the
      // merge is a single pass moving contiguous per-row runs — no buckets,
      // no reallocation. Runs for rows the chase dropped (row >= num_rows)
      // are skipped, matching the bucket path.
      std::vector<RepairProvenance>& sink =
          options.provenance->mutable_records();
      sink.reserve(sink.size() + prev.size() + fresh.size());
      size_t p = 0, f = 0;
      for (size_t row = 0; row < num_rows; ++row) {
        size_t p_end = p;
        while (p_end < prev.size() && prev[p_end].row == row) ++p_end;
        size_t f_end = f;
        while (f_end < fresh.size() && fresh[f_end].row == row) ++f_end;
        if (plan.is_affected[row] != 0) {
          sink.insert(sink.end(), std::make_move_iterator(fresh.begin() + f),
                      std::make_move_iterator(fresh.begin() + f_end));
        } else {
          sink.insert(sink.end(), std::make_move_iterator(prev.begin() + p),
                      std::make_move_iterator(prev.begin() + p_end));
        }
        p = p_end;
        f = f_end;
      }
    } else {
      auto prev_buckets = BucketByRow(prev, num_rows);
      auto fresh_buckets = BucketByRow(fresh, num_rows);
      for (size_t row = 0; row < num_rows; ++row) {
        const auto& bucket =
            plan.is_affected[row] != 0 ? fresh_buckets[row] : prev_buckets[row];
        for (RepairProvenance* record : bucket) {
          options.provenance->Add(std::move(*record));
        }
      }
    }
  }
  if (options.quarantine != nullptr) {
    // Previous quarantine records stay copied: the ledger is small (faults
    // are rare) and the caller may still want to diff it.
    std::vector<std::vector<const QuarantineRecord*>> prev_buckets(num_rows);
    if (prev_quarantine != nullptr) {
      prev_buckets = BucketByRow(prev_quarantine->records(), num_rows);
    }
    auto fresh_buckets =
        BucketByRow(fresh_quarantine.mutable_records(), num_rows);
    for (size_t row = 0; row < num_rows; ++row) {
      if (plan.is_affected[row] != 0) {
        for (QuarantineRecord* record : fresh_buckets[row]) {
          options.quarantine->Add(std::move(*record));
        }
      } else {
        for (const QuarantineRecord* record : prev_buckets[row]) {
          options.quarantine->Add(*record);
        }
      }
    }
  }
  DETECTIVE_COUNT_N("incremental.rows_replayed", stats.rows_replayed);
  DETECTIVE_COUNT_N("incremental.records_replayed", stats.replayed_records);
  return stats;
}

}  // namespace detective
