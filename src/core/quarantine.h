#ifndef DETECTIVE_CORE_QUARANTINE_H_
#define DETECTIVE_CORE_QUARANTINE_H_

// Per-tuple quarantine: the graceful-degradation ledger of the fault-tolerant
// pipeline. When a tuple's chase is abandoned — an injected fault
// (common/fault.h), an expired per-tuple budget, or the whole-run deadline
// (common/deadline.h) — the driver restores the tuple's pristine bytes and
// records one QuarantineRecord here instead of failing the run. The paper's
// independence argument (§V: "repairing one tuple is irrelevant to any other
// tuple") is what makes this sound: setting one tuple aside cannot change any
// other tuple's fixpoint.
//
// Records serialize one-per-line as JSON (JSONL) through
// `detective_clean --quarantine-json=FILE`, mirroring the provenance log
// (core/provenance.h); the schema is documented in docs/robustness.md.
// ParallelRepair gives each worker a private log and merges them in worker
// (= ascending row) order, so the combined log equals a sequential run's.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "common/status.h"

namespace detective {

/// Parses a CancelReasonName() wire name back to the enum.
Result<CancelReason> CancelReasonFromName(std::string_view name);

/// Why one tuple was set aside instead of repaired.
struct QuarantineRecord {
  uint64_t row = 0;
  /// Rule in flight when the trip was observed; empty when the trip happened
  /// outside any rule (per-tuple probe, pre-expired run deadline).
  std::string rule;
  /// Fault-probe site for reason "fault"; empty for deadline trips.
  std::string site;
  CancelReason reason = CancelReason::kNone;
  /// 1-based fixpoint round the chase had reached; 0 before the first round.
  uint64_t round = 0;
  /// Human-readable cause (e.g. the injected fault's message).
  std::string detail;

  /// One-line JSON object (JSONL-safe). Schema:
  ///   {"row": 3, "rule": "phi1", "site": "kb.lookup", "reason": "fault",
  ///    "round": 2, "detail": "injected fault at kb.lookup (hit 4)"}
  std::string ToJson() const;

  /// Parses a ToJson() document. Fields may appear in any order; unknown
  /// fields are rejected; `row` and `reason` are required.
  static Result<QuarantineRecord> FromJson(std::string_view json);

  friend bool operator==(const QuarantineRecord&,
                         const QuarantineRecord&) = default;
};

/// An append-only sequence of quarantine records for one run. Not
/// thread-safe: ParallelRepair gives each worker a private log and merges
/// them afterwards.
class QuarantineLog {
 public:
  void Add(QuarantineRecord record) { records_.push_back(std::move(record)); }

  const std::vector<QuarantineRecord>& records() const { return records_; }

  /// Mutable access for log-rewriting passes (e.g. the incremental merge,
  /// which moves records out of its freshly re-chased shard). Reordering
  /// entries breaks the row/round-order contract Canonicalize establishes.
  std::vector<QuarantineRecord>& mutable_records() { return records_; }
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  void Clear() { records_.clear(); }

  /// Appends every record of `other` (left in a valid unspecified state).
  void Merge(QuarantineLog&& other);

  /// Stable-sorts records by (row, round) so logs assembled from per-worker
  /// shards — or re-chases appended out of order by the circuit breaker —
  /// compare equal to a sequential run's log.
  void Canonicalize();

  /// Rows with at least one record, ascending and deduplicated.
  std::vector<uint64_t> Rows() const;

  /// One ToJson() line per record, each terminated by '\n'.
  std::string ToJsonLines() const;
  Status WriteJsonLines(const std::string& path) const;

  /// Parses a ToJsonLines() document (blank lines are skipped).
  static Result<QuarantineLog> FromJsonLines(std::string_view text);

  friend bool operator==(const QuarantineLog&, const QuarantineLog&) = default;

 private:
  std::vector<QuarantineRecord> records_;
};

}  // namespace detective

#endif  // DETECTIVE_CORE_QUARANTINE_H_
