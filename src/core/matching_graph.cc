#include "core/matching_graph.h"

#include <algorithm>
#include <sstream>
#include <tuple>
#include <vector>

namespace detective {

uint32_t SchemaMatchingGraph::AddNode(MatchNode node) {
  nodes_.push_back(std::move(node));
  return static_cast<uint32_t>(nodes_.size() - 1);
}

Status SchemaMatchingGraph::AddEdge(uint32_t from, uint32_t to, std::string relation) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (from == to) return Status::InvalidArgument("self-loop edges are not allowed");
  if (relation.empty()) return Status::InvalidArgument("edge relation must be named");
  edges_.push_back({from, to, std::move(relation)});
  return Status::OK();
}

uint32_t SchemaMatchingGraph::FindNodeByColumn(std::string_view column) const {
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].column == column) return i;
  }
  return static_cast<uint32_t>(nodes_.size());
}

Status SchemaMatchingGraph::Validate() const {
  if (nodes_.empty()) return Status::InvalidArgument("matching graph has no nodes");
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].type.empty()) {
      return Status::InvalidArgument("node ", i, " has no type");
    }
    if (nodes_[i].IsExistential()) continue;  // no column to clash on
    for (uint32_t j = i + 1; j < nodes_.size(); ++j) {
      if (nodes_[i].column == nodes_[j].column) {
        return Status::InvalidArgument("nodes ", i, " and ", j,
                                       " share column '", nodes_[i].column, "'");
      }
    }
  }
  for (const MatchEdge& edge : edges_) {
    if (edge.from >= nodes_.size() || edge.to >= nodes_.size()) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (edge.from == edge.to) return Status::InvalidArgument("self-loop edge");
    if (edge.relation.empty()) return Status::InvalidArgument("unnamed edge");
  }
  if (!Connected()) return Status::InvalidArgument("matching graph is disconnected");
  return Status::OK();
}

bool SchemaMatchingGraph::ConnectedWithout(uint32_t excluded) const {
  size_t remaining = nodes_.size() - (excluded < nodes_.size() ? 1 : 0);
  if (remaining <= 1) return true;
  // BFS over the undirected view, skipping the excluded node.
  std::vector<char> seen(nodes_.size(), 0);
  uint32_t start = 0;
  while (start < nodes_.size() && start == excluded) ++start;
  std::vector<uint32_t> frontier = {start};
  seen[start] = 1;
  size_t visited = 1;
  while (!frontier.empty()) {
    uint32_t current = frontier.back();
    frontier.pop_back();
    for (const MatchEdge& edge : edges_) {
      if (edge.from == excluded || edge.to == excluded) continue;
      uint32_t next = static_cast<uint32_t>(nodes_.size());
      if (edge.from == current) next = edge.to;
      if (edge.to == current) next = edge.from;
      if (next < nodes_.size() && !seen[next]) {
        seen[next] = 1;
        ++visited;
        frontier.push_back(next);
      }
    }
  }
  return visited == remaining;
}

bool SchemaMatchingGraph::Connected() const {
  return ConnectedWithout(static_cast<uint32_t>(nodes_.size()));
}

bool SchemaMatchingGraph::EquivalentExceptNode(const SchemaMatchingGraph& a,
                                               uint32_t drop_a,
                                               const SchemaMatchingGraph& b,
                                               uint32_t drop_b) {
  if (a.nodes_.size() != b.nodes_.size()) return false;
  // Map a-node index -> b-node index via the column label; columns are
  // distinct within a graph so the mapping is unique if it exists.
  const uint32_t kUnmapped = static_cast<uint32_t>(b.nodes_.size());
  std::vector<uint32_t> to_b(a.nodes_.size(), kUnmapped);
  for (uint32_t i = 0; i < a.nodes_.size(); ++i) {
    if (i == drop_a) continue;
    uint32_t j = b.FindNodeByColumn(a.nodes_[i].column);
    if (j == b.nodes_.size() || j == drop_b) return false;
    if (!(a.nodes_[i] == b.nodes_[j])) return false;
    to_b[i] = j;
  }
  // Compare edge sets restricted to the kept nodes, as sets.
  auto kept_edges = [&](const SchemaMatchingGraph& g, uint32_t drop) {
    std::vector<MatchEdge> out;
    for (const MatchEdge& e : g.edges_) {
      if (e.from != drop && e.to != drop) out.push_back(e);
    }
    return out;
  };
  std::vector<MatchEdge> ea = kept_edges(a, drop_a);
  std::vector<MatchEdge> eb = kept_edges(b, drop_b);
  if (ea.size() != eb.size()) return false;
  for (MatchEdge& e : ea) {
    e.from = to_b[e.from];
    e.to = to_b[e.to];
  }
  auto edge_less = [](const MatchEdge& x, const MatchEdge& y) {
    return std::tie(x.from, x.to, x.relation) < std::tie(y.from, y.to, y.relation);
  };
  std::sort(ea.begin(), ea.end(), edge_less);
  std::sort(eb.begin(), eb.end(), edge_less);
  return ea == eb;
}

std::string SchemaMatchingGraph::ToString() const {
  std::ostringstream out;
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    out << "  v" << i << ": col=" << nodes_[i].column << " type=" << nodes_[i].type
        << " sim=" << nodes_[i].sim.ToString() << "\n";
  }
  for (const MatchEdge& edge : edges_) {
    out << "  v" << edge.from << " -" << edge.relation << "-> v" << edge.to << "\n";
  }
  return out.str();
}

}  // namespace detective
