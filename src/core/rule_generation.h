#ifndef DETECTIVE_CORE_RULE_GENERATION_H_
#define DETECTIVE_CORE_RULE_GENERATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/rule.h"
#include "kb/knowledge_base.h"
#include "relation/relation.h"

namespace detective {

/// Knobs for discovering schema-level matching graphs from example tuples
/// (paper §III-A steps S1/S2; the same discovery doubles as KATARA-style
/// table-pattern mining, which the paper cites as prior work [7]).
struct DiscoveryOptions {
  /// Fraction of (covered) example tuples that must support a column type or
  /// an edge for it to enter the graph.
  double min_support = 0.6;
  /// When exact label matching covers fewer than min_support of a column's
  /// cells, retry with edit distance <= ed_fallback and record "ED,k" as the
  /// node's matching operation (0 disables the fallback).
  uint32_t ed_fallback = 2;
  /// Also search 2-hop connections through an intermediate KB entity when a
  /// column pair has no direct relationship: col A -rel1-> (mid) -rel2->
  /// col B. A discovered path materializes as an existential node plus two
  /// edges — the paper's "negative path" extension applied to discovery.
  bool discover_paths = false;
};

/// One discovered edge with its support; alternatives near the target column
/// are reported so rule generation can enumerate candidate negative
/// semantics.
struct EdgeCandidate {
  std::string from_column;
  std::string to_column;
  std::string relation;
  double support = 0;
};

/// A discovered 2-hop path col A -rel1-> (mid: mid_class) -rel2-> col B,
/// found only when discover_paths is on and no direct edge qualified.
struct PathCandidate {
  std::string from_column;
  std::string to_column;
  std::string rel1;
  std::string mid_class;
  std::string rel2;
  double support = 0;
};

/// Result of schema-level matching-graph discovery.
struct DiscoveredGraph {
  /// The discovered graph; when a target column was given, restricted to the
  /// connected component containing it.
  SchemaMatchingGraph graph;
  /// All supported edges incident to the target column (the chosen one plus
  /// runners-up), by descending support.
  std::vector<EdgeCandidate> target_edges;
  /// 2-hop paths ending at the target column, by descending support
  /// (discover_paths only).
  std::vector<PathCandidate> target_paths;
};

/// Discovers a schema-level matching graph for `examples` against `kb`
/// (S1 when examples are correct tuples, S2 when one column is wrong):
/// each column is typed with the most specific KB class that covers
/// min_support of its (label-matched) cells; each ordered column pair gets
/// the best-supported relationship, if any.
///
/// `target_column` may be empty (keep the whole graph — the KATARA table
/// pattern use case). Fails when no column can be typed.
Result<DiscoveredGraph> DiscoverMatchingGraph(const KnowledgeBase& kb,
                                              const Relation& examples,
                                              std::string_view target_column,
                                              const DiscoveryOptions& options = {});

/// Generates candidate detective rules for `target_column` from positive
/// examples (all values correct) and negative examples (only the target
/// column wrong), per §III-A:
///
///   S1  discover G+ from the positives;
///   S2  discover G- from the negatives;
///   S3  for every supported negative edge on the target column whose
///       semantics differ from the positive one, merge G+ and the
///       corresponding variant of G- into one candidate DR.
///
/// Candidates are returned by descending negative-edge support; the caller
/// (the paper's "user") picks the valid ones.
Result<std::vector<DetectiveRule>> GenerateRules(const KnowledgeBase& kb,
                                                 const Relation& positives,
                                                 const Relation& negatives,
                                                 std::string_view target_column,
                                                 const DiscoveryOptions& options = {});

}  // namespace detective

#endif  // DETECTIVE_CORE_RULE_GENERATION_H_
