#ifndef DETECTIVE_CORE_CONSISTENCY_H_
#define DETECTIVE_CORE_CONSISTENCY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/rule.h"
#include "kb/knowledge_base.h"
#include "relation/relation.h"

namespace detective {

/// Options for the dataset-specific consistency check.
struct ConsistencyOptions {
  /// Rule-application orders tried per tuple. When |Σ|! is at most this
  /// bound every permutation is tried (exhaustive = a proof for the tuple);
  /// beyond that, this many random permutations are sampled (the paper's
  /// practice: "we run them on random sample tuples to check whether they
  /// always compute the same results").
  size_t max_orders = 120;
  /// Tuples sampled from the relation (0 = all).
  size_t max_tuples = 256;
  uint64_t seed = 42;
};

/// Outcome of CheckConsistency.
struct ConsistencyReport {
  bool consistent = true;
  /// True when every order was enumerated for every checked tuple, making
  /// the verdict a proof for the sampled data rather than a sampling result.
  bool exhaustive = false;
  size_t tuples_checked = 0;
  size_t orders_per_tuple = 0;
  /// Witness of the first divergence found (valid iff !consistent).
  size_t witness_row = 0;
  std::string witness_fixpoint_a;
  std::string witness_fixpoint_b;

  std::string ToString() const;
};

/// Dataset-specific consistency (paper §III-C, Corollary 2): Σ is consistent
/// w.r.t. D and K iff every tuple reaches the same fixpoint(s) under every
/// rule-application order. The general problem is coNP-complete (Theorem 1);
/// with the data at hand it is checkable in PTIME, which this implements by
/// running the chase under multiple orders and comparing the resulting
/// fixpoint sets (multi-version fixpoints compare as sets).
///
/// Fails with InvalidArgument if a rule does not bind to the schema.
Result<ConsistencyReport> CheckConsistency(const KnowledgeBase& kb,
                                           const std::vector<DetectiveRule>& rules,
                                           const Relation& relation,
                                           const ConsistencyOptions& options = {});

}  // namespace detective

#endif  // DETECTIVE_CORE_CONSISTENCY_H_
