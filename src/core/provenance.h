#ifndef DETECTIVE_CORE_PROVENANCE_H_
#define DETECTIVE_CORE_PROVENANCE_H_

// Repair provenance: a machine-readable explanation for every cell a
// detective rule touches. Each record answers "why did this cell change?"
// with the rule that fired, the fixpoint round, the instance-level node
// bindings of the witnessing assignment, and the KB edges those bindings
// satisfy — the paper's evidence chain (§II-B matching graphs), captured at
// the moment RuleEngine::Apply commits the change.
//
// Records serialize one-per-line as JSON (JSONL) through
// `detective_clean --explain-json=FILE` and are queried by the
// `detective_explain` tool; the schema is documented in
// docs/observability.md. Capture is opt-in (RuleEngine::set_provenance) and
// costs nothing when no sink is installed.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace detective {

/// What a provenance record explains.
enum class ProvenanceKind : uint8_t {
  kRepair = 0,         // the target cell was rewritten (proof negative)
  kNormalization = 1,  // a fuzzily-matched cell was standardized to its label
  kProofPositive = 2,  // cells were marked correct, nothing was rewritten
};

/// Stable wire name ("repair" | "normalization" | "proof_positive").
std::string_view ProvenanceKindName(ProvenanceKind kind);
Result<ProvenanceKind> ProvenanceKindFromName(std::string_view name);

/// One rule node of the witnessing assignment: which KB instance the node
/// matched and, for column-bearing nodes, the cell it matched against.
struct ProvenanceBinding {
  std::string column;      // empty for existential (edge-only) nodes
  std::string type;        // KB class the node ranges over
  std::string cell_value;  // cell content at match time; empty if no column
  std::string kb_label;    // label of the matched KB instance
  uint64_t kb_item = 0;    // its KB item id

  friend bool operator==(const ProvenanceBinding&,
                         const ProvenanceBinding&) = default;
};

/// One KB relationship the witnessing assignment satisfies — the actual
/// evidence edges (subject --relation--> object, by label).
struct ProvenanceEdge {
  std::string subject;
  std::string relation;
  std::string object;

  friend bool operator==(const ProvenanceEdge&, const ProvenanceEdge&) = default;
};

/// The full explanation of one rule application's effect on one cell.
struct RepairProvenance {
  uint64_t row = 0;            // row of the affected cell
  uint32_t column_index = 0;   // schema position of the affected cell
  std::string column;          // schema name of the affected cell
  ProvenanceKind kind = ProvenanceKind::kRepair;
  std::string rule;            // name of the rule that fired
  uint64_t round = 0;          // 1-based fixpoint round of the chase
  std::string old_value;       // cell content before the change
  std::string new_value;       // cell content after (== old for proofs)
  std::vector<ProvenanceBinding> bindings;    // witnessing assignment
  std::vector<ProvenanceEdge> evidence_edges; // KB edges it satisfies
  std::vector<std::string> marked_columns;    // columns newly marked positive

  /// One-line JSON object (no interior newlines — JSONL-safe). Schema:
  ///   {"row": 2, "column_index": 3, "column": "Institution",
  ///    "kind": "repair", "rule": "phi1", "round": 1,
  ///    "old_value": "UCL", "new_value": "Pasteur Institute",
  ///    "bindings": [{"column": "Name", "type": "person",
  ///                  "cell_value": "Marie Curie", "kb_label": "Marie Curie",
  ///                  "kb_item": 17}, ...],
  ///    "evidence_edges": [{"subject": "Marie Curie", "relation": "worksAt",
  ///                        "object": "Pasteur Institute"}, ...],
  ///    "marked_columns": ["Institution", "Name"]}
  std::string ToJson() const;

  /// Parses a ToJson() document. Fields may appear in any order; unknown
  /// fields are rejected.
  static Result<RepairProvenance> FromJson(std::string_view json);

  /// Multi-line human-readable rendering (what `detective_explain` prints).
  std::string ToText() const;

  friend bool operator==(const RepairProvenance&,
                         const RepairProvenance&) = default;
};

/// An append-only sequence of provenance records for one relation. Not
/// thread-safe: ParallelRepair gives each worker a private log and merges
/// them in row order afterwards.
class ProvenanceLog {
 public:
  void Add(RepairProvenance record) { records_.push_back(std::move(record)); }

  const std::vector<RepairProvenance>& records() const { return records_; }

  /// Mutable access for log-rewriting passes (e.g. the incremental merge,
  /// which moves records out of a consumed previous-run log instead of deep
  /// copying them). Reordering entries breaks ForCell's log-order contract.
  std::vector<RepairProvenance>& mutable_records() { return records_; }
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  void Clear() { records_.clear(); }

  /// Appends every record of `other` (left in a valid unspecified state).
  void Merge(ProvenanceLog&& other);

  /// Stable-sorts records by (row, column_index, round) so logs assembled
  /// from per-worker shards compare equal to a sequential run's log.
  void Canonicalize();

  /// Records touching one cell, in log order. `column` matches the schema
  /// name or its decimal index.
  std::vector<const RepairProvenance*> ForCell(uint64_t row,
                                               std::string_view column) const;

  /// One ToJson() line per record, each terminated by '\n'.
  std::string ToJsonLines() const;
  Status WriteJsonLines(const std::string& path) const;

  /// Parses a ToJsonLines() document (blank lines are skipped).
  static Result<ProvenanceLog> FromJsonLines(std::string_view text);

  friend bool operator==(const ProvenanceLog&, const ProvenanceLog&) = default;

 private:
  std::vector<RepairProvenance> records_;
};

}  // namespace detective

#endif  // DETECTIVE_CORE_PROVENANCE_H_
