#include "core/rule.h"

#include <sstream>

namespace detective {

std::vector<uint32_t> DetectiveRule::EvidenceNodes() const {
  std::vector<uint32_t> out;
  out.reserve(graph_.nodes().size() - 2);
  for (uint32_t i = 0; i < graph_.nodes().size(); ++i) {
    if (i != positive_ && i != negative_) out.push_back(i);
  }
  return out;
}

std::vector<std::string> DetectiveRule::EvidenceColumns() const {
  std::vector<std::string> out;
  for (uint32_t i : EvidenceNodes()) {
    if (!graph_.node(i).IsExistential()) out.push_back(graph_.node(i).column);
  }
  return out;
}

Status DetectiveRule::Validate() const {
  const auto& nodes = graph_.nodes();
  if (nodes.size() < 3) {
    return Status::InvalidArgument("rule '", name_,
                                   "' needs >= 1 evidence node plus p and n");
  }
  if (positive_ >= nodes.size() || negative_ >= nodes.size()) {
    return Status::InvalidArgument("rule '", name_, "' has bad p/n node index");
  }
  if (positive_ == negative_) {
    return Status::InvalidArgument("rule '", name_, "' has p == n");
  }
  if (nodes[positive_].IsExistential() || nodes[negative_].IsExistential()) {
    return Status::InvalidArgument("rule '", name_,
                                   "': p and n must map table columns");
  }
  if (nodes[positive_].column != nodes[negative_].column) {
    return Status::InvalidArgument("rule '", name_, "': col(p) '",
                                   nodes[positive_].column, "' != col(n) '",
                                   nodes[negative_].column, "'");
  }
  // Column uniqueness among evidence ∪ {p} (n deliberately repeats col(p));
  // existential evidence nodes carry no column. At least one evidence node
  // must be value-anchored or the rule cannot collect evidence from tuples.
  size_t anchored_evidence = 0;
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    if (i == negative_) continue;
    if (nodes[i].type.empty()) {
      return Status::InvalidArgument("rule '", name_, "' node ", i, " has no type");
    }
    if (nodes[i].IsExistential()) continue;
    if (i != positive_) ++anchored_evidence;
    for (uint32_t j = i + 1; j < nodes.size(); ++j) {
      if (j == negative_ || nodes[j].IsExistential()) continue;
      if (nodes[i].column == nodes[j].column) {
        return Status::InvalidArgument("rule '", name_, "' nodes ", i, " and ", j,
                                       " share column '", nodes[i].column, "'");
      }
    }
  }
  if (anchored_evidence == 0) {
    return Status::InvalidArgument(
        "rule '", name_, "' needs at least one column-bearing evidence node");
  }
  for (const MatchEdge& edge : graph_.edges()) {
    if (edge.from >= nodes.size() || edge.to >= nodes.size()) {
      return Status::InvalidArgument("rule '", name_, "' edge endpoint out of range");
    }
    bool touches_p = edge.from == positive_ || edge.to == positive_;
    bool touches_n = edge.from == negative_ || edge.to == negative_;
    if (touches_p && touches_n) {
      return Status::InvalidArgument("rule '", name_, "' has an edge between p and n");
    }
    if (edge.relation.empty()) {
      return Status::InvalidArgument("rule '", name_, "' has an unnamed edge");
    }
  }
  if (!graph_.ConnectedWithout(negative_)) {
    return Status::InvalidArgument("rule '", name_,
                                   "': positive side is disconnected");
  }
  if (!graph_.ConnectedWithout(positive_)) {
    return Status::InvalidArgument("rule '", name_,
                                   "': negative side is disconnected");
  }
  return Status::OK();
}

std::string DetectiveRule::ToString() const {
  std::ostringstream out;
  out << "DR " << name_ << " (target column: " << TargetColumn() << ")\n";
  const auto& nodes = graph_.nodes();
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    const char* role = i == positive_ ? "POS" : (i == negative_ ? "NEG" : "EVD");
    out << "  [" << role << "] v" << i << ": col=" << nodes[i].column
        << " type=" << nodes[i].type << " sim=" << nodes[i].sim.ToString() << "\n";
  }
  for (const MatchEdge& edge : graph_.edges()) {
    out << "  v" << edge.from << " -" << edge.relation << "-> v" << edge.to << "\n";
  }
  return out.str();
}

Result<DetectiveRule> MergeIntoRule(std::string name,
                                    const SchemaMatchingGraph& positive_graph,
                                    const SchemaMatchingGraph& negative_graph,
                                    std::string_view target_column) {
  uint32_t p_in_pos = positive_graph.FindNodeByColumn(target_column);
  uint32_t n_in_neg = negative_graph.FindNodeByColumn(target_column);
  if (p_in_pos == positive_graph.nodes().size()) {
    return Status::InvalidArgument("positive graph lacks column '", target_column, "'");
  }
  if (n_in_neg == negative_graph.nodes().size()) {
    return Status::InvalidArgument("negative graph lacks column '", target_column, "'");
  }
  if (!SchemaMatchingGraph::EquivalentExceptNode(positive_graph, p_in_pos,
                                                 negative_graph, n_in_neg)) {
    return Status::InvalidArgument(
        "graphs differ beyond the node on column '", target_column,
        "' — cannot merge into a detective rule");
  }

  // Carry all positive nodes over, then append the negative node and remap
  // the negative graph's edges through the column labels.
  SchemaMatchingGraph merged = positive_graph;
  uint32_t negative_index = merged.AddNode(negative_graph.node(n_in_neg));
  for (const MatchEdge& edge : negative_graph.edges()) {
    if (edge.from != n_in_neg && edge.to != n_in_neg) continue;  // shared edge
    auto map_node = [&](uint32_t v) {
      if (v == n_in_neg) return negative_index;
      return merged.FindNodeByColumn(negative_graph.node(v).column);
    };
    RETURN_NOT_OK(merged.AddEdge(map_node(edge.from), map_node(edge.to),
                                 edge.relation));
  }
  DetectiveRule rule(std::move(name), std::move(merged), p_in_pos, negative_index);
  RETURN_NOT_OK(rule.Validate());
  return rule;
}

}  // namespace detective
