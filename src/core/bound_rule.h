#ifndef DETECTIVE_CORE_BOUND_RULE_H_
#define DETECTIVE_CORE_BOUND_RULE_H_

#include <vector>

#include "common/result.h"
#include "core/rule.h"
#include "kb/knowledge_base.h"
#include "relation/relation.h"

namespace detective {

/// A rule node with its column resolved against a Schema and its type
/// resolved against a KnowledgeBase. column == kInvalidColumn marks an
/// existential node (MatchNode::IsExistential): no cell constraint, matched
/// purely through its edges.
struct BoundNode {
  ColumnIndex column = kInvalidColumn;
  ClassId type;
  Similarity sim;

  bool IsExistential() const { return column == kInvalidColumn; }
};

/// A rule edge with the relationship resolved to a KB RelationId.
struct BoundEdge {
  uint32_t from = 0;
  uint32_t to = 0;
  RelationId relation;
};

/// A schema-level matching graph resolved against a (Schema, KnowledgeBase)
/// pair — the common currency of the instance-level matcher. Detective rules
/// bind to a BoundGraph plus the p/n designations; KATARA's table patterns
/// bind to a plain BoundGraph.
struct BoundGraph {
  std::vector<BoundNode> nodes;
  std::vector<BoundEdge> edges;
  bool usable = false;
};

/// Resolves a schema-level matching graph. Unknown columns are an error;
/// unknown classes/relations yield usable=false.
Result<BoundGraph> BindGraph(const SchemaMatchingGraph& graph, const Schema& schema,
                             const KnowledgeBase& kb);

/// A DetectiveRule compiled for one (Schema, KnowledgeBase) pair. Node and
/// edge arrays are parallel to the source rule's graph.
///
/// A rule that references a class or relationship the KB does not contain is
/// *unusable* rather than an error: the paper's experiments run the same
/// rules against KBs of different coverage (Yago vs DBpedia), and a rule the
/// KB cannot support simply never fires.
struct BoundRule {
  const DetectiveRule* rule = nullptr;  // not owned; must outlive the binding
  std::vector<BoundNode> nodes;
  std::vector<BoundEdge> edges;
  uint32_t positive = 0;
  uint32_t negative = 0;
  bool usable = false;

  /// Node indexes of the positive side (evidence ∪ {p}).
  std::vector<uint32_t> PositiveSideNodes() const;
  /// Node indexes of the negative side (evidence ∪ {n}).
  std::vector<uint32_t> NegativeSideNodes() const;
};

/// Resolves `rule` against `schema` and `kb`.
///
/// Unknown columns are an InvalidArgument error (the rule does not belong to
/// this relation); unknown classes/relations yield usable=false (the KB
/// cannot power the rule).
Result<BoundRule> BindRule(const DetectiveRule& rule, const Schema& schema,
                           const KnowledgeBase& kb);

}  // namespace detective

#endif  // DETECTIVE_CORE_BOUND_RULE_H_
