#include "core/evidence_matcher.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/deadline.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/match_plan.h"

namespace detective {

namespace {

template <typename T>
void AppendPod(std::string* out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out->append(bytes, sizeof(T));
}

}  // namespace

EvidenceMatcher::EvidenceMatcher(const KnowledgeBase& kb, MatcherOptions options)
    : kb_(kb), options_(options) {}

std::string_view EvidenceMatcher::MemoKey(ClassId type, const Similarity& sim,
                                          std::string_view value) {
  // Fixed-width binary header + value bytes, assembled into a reusable
  // buffer: no std::to_string / Similarity::ToString allocation per node
  // check, and the same encoding for the private memo and the shared cache.
  key_scratch_.clear();
  AppendPod(&key_scratch_, type.value());
  AppendPod(&key_scratch_, static_cast<uint8_t>(sim.kind()));
  AppendPod(&key_scratch_, static_cast<uint32_t>(sim.max_edits()));
  AppendPod(&key_scratch_, sim.threshold());
  key_scratch_.append(value);
  return key_scratch_;
}

const SignatureIndex& EvidenceMatcher::IndexFor(ClassId type, const Similarity& sim) {
  if (plan_ != nullptr) {
    if (const SignatureIndex* shared = plan_->IndexFor(type, sim)) {
      return *shared;
    }
  }
  std::string key = std::to_string(type.value());
  key.push_back('\x1f');
  key += sim.ToString();
  auto it = indexes_.find(key);
  if (it == indexes_.end()) {
    DETECTIVE_COUNT("matcher.index_builds");
    DETECTIVE_SCOPED_TIMER("matcher.index_build");
    DETECTIVE_TRACE_SPAN("matcher.index_build",
                         {"type", static_cast<int64_t>(type.value())});
    auto index = std::make_unique<SignatureIndex>(sim);
    for (ItemId item : kb_.InstancesOf(type)) {
      index->Add(item.value(), kb_.Label(item));
    }
    index->Build();
    it = indexes_.emplace(std::move(key), std::move(index)).first;
  }
  return *it->second;
}

void EvidenceMatcher::ComputeCandidates(ClassId type, const Similarity& sim,
                                        std::string_view value,
                                        std::vector<ItemId>* out) {
  out->clear();
  if (sim.kind() == SimilarityKind::kEquality) {
    // Equality always goes through the label hash index — the paper uses a
    // hash table for "=" even in the basic algorithm (§IV-B(2)).
    ++stats_.index_lookups;
    DETECTIVE_COUNT("matcher.label_index_lookups");
    for (ItemId item : kb_.ItemsWithLabel(value)) {
      if (kb_.IsInstanceOf(item, type)) out->push_back(item);
    }
  } else if (options_.use_signature_index) {
    ++stats_.index_lookups;
    DETECTIVE_COUNT("matcher.signature_lookups");
    IndexFor(type, sim).Matches(value, &u32_scratch_);
    out->reserve(u32_scratch_.size());
    for (uint32_t raw : u32_scratch_) out->push_back(ItemId(raw));
  } else {
    ++stats_.scans;
    DETECTIVE_COUNT("matcher.scans");
    for (ItemId item : kb_.InstancesOf(type)) {
      if (sim.Matches(value, kb_.Label(item))) out->push_back(item);
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

std::span<const ItemId> EvidenceMatcher::NodeCandidatesRef(
    ClassId type, const Similarity& sim, std::string_view value,
    std::vector<ItemId>* storage) {
  ++stats_.node_checks;
  DETECTIVE_COUNT("matcher.node_queries");
  // Before any memo or cache lookup, so a tuple sees the same probe-hit
  // sequence whether the caches are warm or cold — the parallel-vs-sequential
  // identity the chaos tests assert depends on it.
  DETECTIVE_FAULT_POINT_CANCEL("kb.lookup", cancel_);
  const bool memoised = options_.use_value_memo || shared_cache_ != nullptr;
  std::string_view key;
  if (memoised) key = MemoKey(type, sim, value);

  if (shared_cache_ != nullptr) {
    // Shared cache first: a value checked by any worker is free for all.
    // Exactly one Find() per node check, so cache.hits + cache.misses equals
    // matcher.node_queries for shared runs (asserted in metrics_test).
    if (const std::vector<ItemId>* cached = shared_cache_->Find(key)) {
      ++stats_.shared_hits;
      DETECTIVE_COUNT("cache.hits");
      return *cached;
    }
    ++stats_.shared_misses;
    DETECTIVE_COUNT("cache.misses");
    // The private memo doubles as the overflow store for inserts the cache
    // rejected at capacity; consult it before recomputing.
    if (auto it = memo_.find(key); it != memo_.end()) {
      ++stats_.memo_hits;
      DETECTIVE_COUNT("matcher.memo_hits");
      return it->second;
    }
    std::vector<ItemId> computed;
    ComputeCandidates(type, sim, value, &computed);
    if (const std::vector<ItemId>* stored =
            shared_cache_->Insert(key, std::move(computed))) {
      return *stored;
    }
    DETECTIVE_COUNT("cache.evictions");
    auto [it, inserted] = memo_.try_emplace(std::string(key), std::move(computed));
    return it->second;
  }

  if (options_.use_value_memo) {
    if (auto it = memo_.find(key); it != memo_.end()) {
      ++stats_.memo_hits;
      DETECTIVE_COUNT("matcher.memo_hits");
      return it->second;
    }
    std::vector<ItemId> computed;
    ComputeCandidates(type, sim, value, &computed);
    auto [it, inserted] = memo_.try_emplace(std::string(key), std::move(computed));
    return it->second;
  }

  ComputeCandidates(type, sim, value, storage);
  return *storage;
}

std::vector<ItemId> EvidenceMatcher::NodeCandidates(ClassId type,
                                                    const Similarity& sim,
                                                    std::string_view value) {
  std::vector<ItemId> storage;
  std::span<const ItemId> result = NodeCandidatesRef(type, sim, value, &storage);
  if (!storage.empty() && result.data() == storage.data()) return storage;
  return {result.begin(), result.end()};
}

template <typename OnMatch>
bool EvidenceMatcher::Search(const std::vector<BoundNode>& nodes,
                             const std::vector<BoundEdge>& edges,
                             const std::vector<uint32_t>& node_indexes,
                             const Tuple& tuple, OnMatch&& on_match) {
  struct SearchNode {
    uint32_t node;
    // View over the memoised candidate set, or over `storage` when nothing
    // memoises it. Moving the node (stable_sort below) keeps the view valid:
    // vector moves transfer the heap buffer. Empty for existential nodes.
    std::span<const ItemId> candidates;
    std::vector<ItemId> storage;
    bool existential;
  };
  std::vector<SearchNode> order;
  std::vector<SearchNode> existentials;
  order.reserve(node_indexes.size());
  for (uint32_t v : node_indexes) {
    const BoundNode& bn = nodes[v];
    if (bn.IsExistential()) {
      // No cell constraint: candidates are derived from edges at search
      // time, once neighbouring nodes are assigned.
      existentials.push_back({v, {}, {}, true});
      continue;
    }
    SearchNode node{v, {}, {}, false};
    node.candidates =
        NodeCandidatesRef(bn.type, bn.sim, tuple.value(bn.column), &node.storage);
    if (node.candidates.empty()) return true;  // no match can exist
    order.push_back(std::move(node));
  }
  // Most selective nodes first keeps the search tree narrow; existential
  // nodes go last so their edge-derived candidate sets have anchors.
  std::stable_sort(order.begin(), order.end(),
                   [](const SearchNode& a, const SearchNode& b) {
                     return a.candidates.size() < b.candidates.size();
                   });
  order.insert(order.end(), std::make_move_iterator(existentials.begin()),
               std::make_move_iterator(existentials.end()));

  std::vector<ItemId> assignment(nodes.size(), ItemId::Invalid());
  size_t budget = options_.max_assignments;
  bool within_budget = true;

  auto consistent = [&](uint32_t v, ItemId x) {
    for (const BoundEdge& edge : edges) {
      if (edge.from == v && assignment[edge.to].valid()) {
        if (!kb_.HasEdge(x, edge.relation, assignment[edge.to])) return false;
      } else if (edge.to == v && assignment[edge.from].valid()) {
        if (!kb_.HasEdge(assignment[edge.from], edge.relation, x)) return false;
      }
    }
    return true;
  };

  // Returns false to abort the whole search (caller requested stop or
  // budget exhausted).
  auto recurse = [&](auto&& self, size_t depth) -> bool {
    if (depth == order.size()) return on_match(assignment);
    const SearchNode& current = order[depth];
    // Existential nodes derive their candidates from already-assigned
    // neighbours; without an anchor, fall back to every instance of the
    // type (bounded by the assignment budget).
    std::vector<ItemId> derived;
    if (current.existential) {
      bool anchored = false;
      for (const BoundEdge& edge : edges) {
        if ((edge.from == current.node && assignment[edge.to].valid()) ||
            (edge.to == current.node && assignment[edge.from].valid())) {
          anchored = true;
          break;
        }
      }
      if (anchored) {
        derived = TargetsFor(nodes, edges, current.node, assignment);
      } else {
        std::span<const ItemId> all = kb_.InstancesOf(nodes[current.node].type);
        derived.assign(all.begin(), all.end());
      }
    }
    const std::span<const ItemId> candidates =
        current.existential ? std::span<const ItemId>(derived) : current.candidates;
    for (ItemId x : candidates) {
      if (budget == 0) {
        within_budget = false;
        return false;
      }
      // Cooperative cancellation (faults, deadlines): abandon the search;
      // the caller inspects the token and discards the partial result.
      if (cancel_ != nullptr && cancel_->Check()) {
        within_budget = false;
        return false;
      }
      --budget;
      ++stats_.assignments_explored;
      if (!consistent(current.node, x)) continue;
      assignment[current.node] = x;
      bool keep_going = self(self, depth + 1);
      assignment[current.node] = ItemId::Invalid();
      if (!keep_going) return false;
    }
    return true;
  };
  bool completed = recurse(recurse, 0);
  // One add per Search keeps the per-candidate loop free of bookkeeping.
  DETECTIVE_COUNT_N("matcher.assignments_explored", options_.max_assignments - budget);
  if (!within_budget) DETECTIVE_COUNT("matcher.budget_exhausted");
  return completed && within_budget;
}

bool EvidenceMatcher::HasPositiveMatch(const BoundRule& rule, const Tuple& tuple) {
  DETECTIVE_CHECK(rule.usable);
  bool found = false;
  Search(rule.nodes, rule.edges, rule.PositiveSideNodes(), tuple,
         [&](const std::vector<ItemId>&) {
           found = true;
           return false;  // one witness suffices
         });
  return found;
}

bool EvidenceMatcher::BestPositiveMatch(const BoundRule& rule, const Tuple& tuple,
                                        std::vector<ItemId>* best) {
  DETECTIVE_CHECK(rule.usable);
  DETECTIVE_COUNT("matcher.positive_searches");
  const std::vector<uint32_t> subset = rule.PositiveSideNodes();
  bool found = false;
  double best_score = -1;
  std::vector<std::string> best_labels;

  Search(rule.nodes, rule.edges, subset, tuple,
         [&](const std::vector<ItemId>& assignment) {
           double score = 0;
           std::vector<std::string> labels;
           labels.reserve(subset.size());
           for (uint32_t v : subset) {
             if (rule.nodes[v].IsExistential()) continue;  // no cell to score
             std::string label(kb_.Label(assignment[v]));
             score += rule.nodes[v].sim.Score(tuple.value(rule.nodes[v].column), label);
             labels.push_back(std::move(label));
           }
           bool better =
               !found || score > best_score ||
               (score == best_score && labels < best_labels);
           if (better) {
             found = true;
             best_score = score;
             best_labels = std::move(labels);
             *best = assignment;
           }
           // A perfect assignment (every label equals its cell) cannot be
           // improved; stop the enumeration.
           return best_score + 1e-9 < static_cast<double>(subset.size());
         });
  return found;
}

bool EvidenceMatcher::FindAssignment(const std::vector<BoundNode>& nodes,
                                     const std::vector<BoundEdge>& edges,
                                     const std::vector<uint32_t>& subset,
                                     const Tuple& tuple,
                                     std::vector<ItemId>* assignment) {
  bool found = false;
  Search(nodes, edges, subset, tuple, [&](const std::vector<ItemId>& match) {
    found = true;
    if (assignment != nullptr) *assignment = match;
    return false;  // one witness suffices
  });
  return found;
}

std::vector<ItemId> EvidenceMatcher::TargetsFor(
    const std::vector<BoundNode>& nodes, const std::vector<BoundEdge>& edges,
    uint32_t node, const std::vector<ItemId>& assignment) {
  std::vector<ItemId> result;
  bool first = true;
  for (const BoundEdge& edge : edges) {
    std::vector<ItemId> hop;
    if (edge.to == node) {
      ItemId source = assignment[edge.from];
      if (!source.valid()) continue;
      for (const KbEdge& e : kb_.Objects(source, edge.relation)) {
        hop.push_back(e.target);
      }
    } else if (edge.from == node) {
      ItemId target = assignment[edge.to];
      if (!target.valid()) continue;
      for (const KbEdge& e : kb_.Subjects(edge.relation, target)) {
        hop.push_back(e.target);  // in-edge payload is the subject
      }
    } else {
      continue;
    }
    std::sort(hop.begin(), hop.end());
    hop.erase(std::unique(hop.begin(), hop.end()), hop.end());
    if (first) {
      result = std::move(hop);
      first = false;
    } else {
      std::vector<ItemId> merged;
      std::set_intersection(result.begin(), result.end(), hop.begin(), hop.end(),
                            std::back_inserter(merged));
      result = std::move(merged);
    }
    if (result.empty()) return result;
  }
  if (first) return {};  // node had no incident edge with an assigned endpoint

  const BoundNode& target_node = nodes[node];
  std::erase_if(result,
                [&](ItemId x) { return !kb_.IsInstanceOf(x, target_node.type); });
  return result;
}

std::vector<std::string> EvidenceMatcher::NegativeCorrections(
    const BoundRule& rule, const Tuple& tuple,
    std::vector<std::pair<ColumnIndex, std::string>>* evidence_normalizations,
    NegativeWitness* witness) {
  DETECTIVE_CHECK(rule.usable);
  DETECTIVE_COUNT("matcher.negative_searches");
  const ColumnIndex target_column = rule.nodes[rule.negative].column;
  const std::string& current_value = tuple.value(target_column);

  // Column-bearing evidence nodes, for scoring the witnessing assignments
  // (existential nodes have no cell to score or normalize).
  std::vector<uint32_t> evidence;
  for (uint32_t v = 0; v < rule.nodes.size(); ++v) {
    if (v != rule.positive && v != rule.negative && !rule.nodes[v].IsExistential()) {
      evidence.push_back(v);
    }
  }

  const bool track_best = evidence_normalizations != nullptr || witness != nullptr;
  std::map<std::string, ItemId> corrections;  // label -> witnessing x_p
  bool have_witness = false;
  double best_score = -1;
  std::vector<std::string> best_labels;
  std::vector<ItemId> best_assignment;

  Search(rule.nodes, rule.edges, rule.NegativeSideNodes(), tuple,
         [&](const std::vector<ItemId>& assignment) {
           ItemId x_n = assignment[rule.negative];
           bool witnessed = false;
           for (ItemId x_p :
                TargetsFor(rule.nodes, rule.edges, rule.positive, assignment)) {
             if (x_p == x_n) continue;  // the wrong witness itself
             std::string label(kb_.Label(x_p));
             // A "correction" equal to the current value would be a no-op
             // repair; the positive branch owns that case.
             if (label == current_value) continue;
             if (corrections.size() >= options_.max_corrections &&
                 !corrections.contains(label)) {
               break;  // hard cap, even within one assignment
             }
             corrections.try_emplace(std::move(label), x_p);
             witnessed = true;
           }
           if (witnessed && track_best) {
             // Track the best-scoring witnessing assignment, mirroring
             // BestPositiveMatch, so normalization is order-independent.
             double score = 0;
             std::vector<std::string> labels;
             labels.reserve(evidence.size());
             for (uint32_t v : evidence) {
               std::string label(kb_.Label(assignment[v]));
               score +=
                   rule.nodes[v].sim.Score(tuple.value(rule.nodes[v].column), label);
               labels.push_back(std::move(label));
             }
             if (!have_witness || score > best_score ||
                 (score == best_score && labels < best_labels)) {
               have_witness = true;
               best_score = score;
               best_labels = std::move(labels);
               best_assignment = assignment;
             }
           }
           return corrections.size() < options_.max_corrections;
         });

  if (evidence_normalizations != nullptr) {
    evidence_normalizations->clear();
    if (have_witness) {
      for (uint32_t v : evidence) {
        std::string label(kb_.Label(best_assignment[v]));
        if (label != tuple.value(rule.nodes[v].column)) {
          evidence_normalizations->emplace_back(rule.nodes[v].column,
                                                std::move(label));
        }
      }
    }
  }
  DETECTIVE_COUNT_N("matcher.corrections_emitted", corrections.size());
  std::vector<std::string> labels;
  labels.reserve(corrections.size());
  for (const auto& [label, item] : corrections) labels.push_back(label);
  if (witness != nullptr) {
    witness->assignment = have_witness ? std::move(best_assignment)
                                       : std::vector<ItemId>{};
    witness->correction_items = std::move(corrections);
  }
  return labels;
}

void EvidenceMatcher::ClearMemo() { memo_.clear(); }

}  // namespace detective
