#include "core/quarantine.h"

#include <algorithm>
#include <fstream>

#include "common/json_util.h"
#include "common/string_util.h"

namespace detective {

Result<CancelReason> CancelReasonFromName(std::string_view name) {
  if (name == "none") return CancelReason::kNone;
  if (name == "fault") return CancelReason::kFault;
  if (name == "tuple_budget") return CancelReason::kTupleBudget;
  if (name == "run_deadline") return CancelReason::kRunDeadline;
  return Status::InvalidArgument("unknown cancel reason \"", name, "\"");
}

// ---- QuarantineRecord --------------------------------------------------------

std::string QuarantineRecord::ToJson() const {
  std::string out = "{\"row\": " + std::to_string(row);
  out += ", \"rule\": ";
  AppendJsonString(rule, &out);
  out += ", \"site\": ";
  AppendJsonString(site, &out);
  out += ", \"reason\": ";
  AppendJsonString(CancelReasonName(reason), &out);
  out += ", \"round\": " + std::to_string(round);
  out += ", \"detail\": ";
  AppendJsonString(detail, &out);
  out += "}";
  return out;
}

Result<QuarantineRecord> QuarantineRecord::FromJson(std::string_view json) {
  QuarantineRecord record;
  JsonCursor cursor(json);
  RETURN_NOT_OK(cursor.Expect('{'));
  bool saw_row = false;
  bool saw_reason = false;
  if (!cursor.TryConsume('}')) {
    do {
      ASSIGN_OR_RETURN(std::string field, cursor.TakeString());
      RETURN_NOT_OK(cursor.Expect(':'));
      if (field == "row") {
        ASSIGN_OR_RETURN(record.row, cursor.TakeUint());
        saw_row = true;
      } else if (field == "round") {
        ASSIGN_OR_RETURN(record.round, cursor.TakeUint());
      } else if (field == "rule") {
        ASSIGN_OR_RETURN(record.rule, cursor.TakeString());
      } else if (field == "site") {
        ASSIGN_OR_RETURN(record.site, cursor.TakeString());
      } else if (field == "reason") {
        ASSIGN_OR_RETURN(std::string name, cursor.TakeString());
        ASSIGN_OR_RETURN(record.reason, CancelReasonFromName(name));
        saw_reason = true;
      } else if (field == "detail") {
        ASSIGN_OR_RETURN(record.detail, cursor.TakeString());
      } else {
        return Status::InvalidArgument("quarantine JSON: unknown field \"",
                                       field, "\"");
      }
    } while (cursor.TryConsume(','));
    RETURN_NOT_OK(cursor.Expect('}'));
  }
  RETURN_NOT_OK(cursor.ExpectEnd());
  if (!saw_row || !saw_reason) {
    return Status::InvalidArgument(
        "quarantine JSON: missing required field (row, reason)");
  }
  return record;
}

// ---- QuarantineLog -----------------------------------------------------------

void QuarantineLog::Merge(QuarantineLog&& other) {
  records_.insert(records_.end(),
                  std::make_move_iterator(other.records_.begin()),
                  std::make_move_iterator(other.records_.end()));
  other.records_.clear();
}

void QuarantineLog::Canonicalize() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const QuarantineRecord& a, const QuarantineRecord& b) {
                     if (a.row != b.row) return a.row < b.row;
                     return a.round < b.round;
                   });
}

std::vector<uint64_t> QuarantineLog::Rows() const {
  std::vector<uint64_t> rows;
  rows.reserve(records_.size());
  for (const QuarantineRecord& record : records_) rows.push_back(record.row);
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

std::string QuarantineLog::ToJsonLines() const {
  std::string out;
  for (const QuarantineRecord& record : records_) {
    out += record.ToJson();
    out += '\n';
  }
  return out;
}

Status QuarantineLog::WriteJsonLines(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  out << ToJsonLines();
  if (!out) {
    return Status::IOError("error writing quarantine JSONL to ", path);
  }
  return Status::OK();
}

Result<QuarantineLog> QuarantineLog::FromJsonLines(std::string_view text) {
  QuarantineLog log;
  size_t line_number = 0;
  while (!text.empty()) {
    size_t end = text.find('\n');
    std::string_view line =
        end == std::string_view::npos ? text : text.substr(0, end);
    text = end == std::string_view::npos ? std::string_view{}
                                         : text.substr(end + 1);
    ++line_number;
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') blank = false;
    }
    if (blank) continue;
    auto record = QuarantineRecord::FromJson(line);
    if (!record.ok()) {
      return Status::InvalidArgument("quarantine JSONL line ",
                                     std::to_string(line_number), ": ",
                                     record.status().message());
    }
    log.Add(std::move(*record));
  }
  return log;
}

}  // namespace detective
