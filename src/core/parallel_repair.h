#ifndef DETECTIVE_CORE_PARALLEL_REPAIR_H_
#define DETECTIVE_CORE_PARALLEL_REPAIR_H_

#include <cstddef>

#include "common/result.h"
#include "core/repair.h"
#include "kb/knowledge_base.h"
#include "relation/relation.h"

namespace detective {

struct ParallelRepairOptions {
  RepairOptions repair;
  /// 0 = std::thread::hardware_concurrency().
  size_t num_threads = 0;
  /// Optional provenance sink. Each chunk captures into a private log; after
  /// the join the shards are appended in chunk (= ascending row) order, so
  /// the combined log equals a sequential FastRepairer run's.
  ProvenanceLog* provenance = nullptr;
  /// Optional quarantine sink (guarded repair). Merged the same way, then
  /// canonicalized; identical to a sequential RepairRelationGuarded run's
  /// ledger under the same fault plan, seed, and budgets.
  QuarantineLog* quarantine = nullptr;
  /// Build the frozen MatchPlan once, up front, and share it read-only
  /// across all workers — the §IV-B(2) signature indexes are then built
  /// exactly once per (type, sim) instead of once per worker. Off restores
  /// the per-worker private lazy build (kept for the ablation benchmarks).
  /// Only takes effect when the matcher uses signature indexes.
  bool share_match_plan = true;
  /// Share the §IV-B(3) value memo across workers through a concurrent
  /// sharded cache: a (type, sim, value) node check computed by worker 0 is
  /// free for worker 7. Off = per-worker private memos (the pre-plan
  /// behavior). Only takes effect when the matcher memoises values.
  bool share_value_cache = true;
  /// Total entry bound of the shared candidate cache (64-way sharded; a full
  /// shard rejects inserts rather than evicting, and workers fall back to
  /// their private memos).
  size_t cache_capacity = size_t{1} << 20;
  /// Rows per work-stealing chunk. Small enough that a skewed tuple (deep
  /// backtracking, many corrections) cannot serialize the tail of the run
  /// behind one worker; large enough that the atomic claim is amortized.
  size_t chunk_rows = 64;
  /// When set, only these rows (ascending original indexes into `relation`)
  /// are chased; every other row is left untouched. Original indexes key the
  /// fault scopes and provenance/quarantine records, so chasing a subset
  /// produces exactly the records a full run would produce for those rows —
  /// the contract incremental (delta) cleaning is built on. Must not name a
  /// row outside the relation. Incompatible with `max_rule_failures` (the
  /// breaker tallies failures across the whole relation). The pointee must
  /// outlive the call.
  const std::vector<size_t>* row_subset = nullptr;
};

/// Repairs `relation` in place with the fast algorithm across threads.
///
/// The paper's scalability argument (§V summary: "repairing one tuple is
/// irrelevant to any other tuple") makes the chase embarrassingly parallel.
/// Workers claim fixed-size row chunks off an atomic counter (work stealing
/// by self-scheduling: a slow chunk delays only its owner, the rest of the
/// fleet drains the remaining chunks). All workers share one frozen
/// MatchPlan and one concurrent candidate cache; the KnowledgeBase is
/// immutable and shared.
///
/// The result — cell values, provenance log, quarantine ledger — is
/// bit-identical to the sequential fast repairer at every thread count, with
/// or without a fault plan: per-chunk provenance/quarantine shards are merged
/// in chunk order (= ascending row order), cache entries are pure functions
/// of their key, and PR 4 fault decisions are row-keyed. The tests assert
/// all three identities.
///
/// Returns the merged RepairStats. Fails if the rules do not bind.
Result<RepairStats> ParallelRepair(const KnowledgeBase& kb,
                                   const std::vector<DetectiveRule>& rules,
                                   Relation* relation,
                                   ParallelRepairOptions options = {});

}  // namespace detective

#endif  // DETECTIVE_CORE_PARALLEL_REPAIR_H_
