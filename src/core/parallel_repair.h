#ifndef DETECTIVE_CORE_PARALLEL_REPAIR_H_
#define DETECTIVE_CORE_PARALLEL_REPAIR_H_

#include "common/result.h"
#include "core/repair.h"
#include "kb/knowledge_base.h"
#include "relation/relation.h"

namespace detective {

struct ParallelRepairOptions {
  RepairOptions repair;
  /// 0 = std::thread::hardware_concurrency().
  size_t num_threads = 0;
  /// Optional provenance sink. Each worker captures into a private log;
  /// after the join the shards are appended in worker (= ascending row)
  /// order, so the combined log equals a sequential FastRepairer run's.
  ProvenanceLog* provenance = nullptr;
  /// Optional quarantine sink (guarded repair). Merged the same way, then
  /// canonicalized; identical to a sequential RepairRelationGuarded run's
  /// ledger under the same fault plan, seed, and budgets.
  QuarantineLog* quarantine = nullptr;
};

/// Repairs `relation` in place with the fast algorithm across threads.
///
/// The paper's scalability argument (§V summary: "repairing one tuple is
/// irrelevant to any other tuple") makes the chase embarrassingly parallel:
/// rows are sharded contiguously, each worker owns a private FastRepairer
/// (signature indexes and value memos are per-worker; the KnowledgeBase is
/// immutable and shared). The result is bit-identical to the sequential
/// fast repairer — a property the tests assert.
///
/// Returns the merged RepairStats. Fails if the rules do not bind.
Result<RepairStats> ParallelRepair(const KnowledgeBase& kb,
                                   const std::vector<DetectiveRule>& rules,
                                   Relation* relation,
                                   ParallelRepairOptions options = {});

}  // namespace detective

#endif  // DETECTIVE_CORE_PARALLEL_REPAIR_H_
