#include "core/consistency.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/random.h"
#include "core/repair.h"

namespace detective {

namespace {

/// Canonical form of a fixpoint set: sorted multiset of value vectors,
/// rendered as one string for cheap comparison and witness reporting.
std::string CanonicalFixpoints(std::vector<Tuple> fixpoints) {
  std::vector<std::string> rendered;
  rendered.reserve(fixpoints.size());
  for (const Tuple& t : fixpoints) {
    std::string row;
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) row.push_back('\x1f');
      row += t.value(static_cast<ColumnIndex>(i));
    }
    rendered.push_back(std::move(row));
  }
  std::sort(rendered.begin(), rendered.end());
  std::string out;
  for (const std::string& row : rendered) {
    out += row;
    out.push_back('\n');
  }
  return out;
}

/// Runs the multi-version chase under one explicit rule order.
std::vector<Tuple> ChaseWithOrder(RuleEngine& engine,
                                  const std::vector<uint32_t>& order,
                                  const Tuple& tuple, size_t max_versions) {
  // Local re-implementation of the chase driver with a caller-chosen order:
  // scan for the first applicable rule in `order`, apply, rescan.
  struct Branch {
    Tuple tuple;
    std::vector<char> applied;
  };
  std::vector<Tuple> fixpoints;
  std::vector<Branch> stack{{tuple, std::vector<char>(engine.num_rules(), 0)}};
  while (!stack.empty()) {
    Branch branch = std::move(stack.back());
    stack.pop_back();
    bool done = false;
    while (!done) {
      bool fired = false;
      for (uint32_t index : order) {
        if (branch.applied[index]) continue;
        RuleEvaluation evaluation = engine.Evaluate(index, branch.tuple);
        if (evaluation.action == RuleEvaluation::Action::kNone) continue;
        branch.applied[index] = 1;
        if (evaluation.action == RuleEvaluation::Action::kRepair &&
            evaluation.corrections.size() > 1) {
          for (size_t c = 0; c < evaluation.corrections.size(); ++c) {
            if (fixpoints.size() + stack.size() >= max_versions) break;
            Branch next{branch.tuple, branch.applied};
            engine.Apply(index, evaluation, &next.tuple, c);
            stack.push_back(std::move(next));
          }
          done = true;  // this branch forked; continuations are on the stack
          fired = true;
          break;
        }
        engine.Apply(index, evaluation, &branch.tuple, 0);
        fired = true;
        break;
      }
      if (done) break;
      if (!fired) {
        fixpoints.push_back(std::move(branch.tuple));
        done = true;
      }
    }
  }
  return fixpoints;
}

std::vector<std::vector<uint32_t>> MakeOrders(size_t num_rules, size_t max_orders,
                                              uint64_t seed, bool* exhaustive) {
  std::vector<uint32_t> base(num_rules);
  for (uint32_t i = 0; i < num_rules; ++i) base[i] = i;

  // |Σ|! when small enough; avoids overflow past the cap.
  size_t factorial = 1;
  bool small = true;
  for (size_t i = 2; i <= num_rules; ++i) {
    factorial *= i;
    if (factorial > max_orders) {
      small = false;
      break;
    }
  }

  std::vector<std::vector<uint32_t>> orders;
  if (small) {
    *exhaustive = true;
    std::vector<uint32_t> permutation = base;
    do {
      orders.push_back(permutation);
    } while (std::next_permutation(permutation.begin(), permutation.end()));
  } else {
    *exhaustive = false;
    orders.push_back(base);  // always include the input order
    Rng rng(seed);
    std::set<std::vector<uint32_t>> seen{base};
    while (orders.size() < max_orders) {
      std::vector<uint32_t> permutation = base;
      rng.Shuffle(&permutation);
      if (seen.insert(permutation).second) orders.push_back(std::move(permutation));
    }
  }
  return orders;
}

}  // namespace

std::string ConsistencyReport::ToString() const {
  std::ostringstream out;
  if (consistent) {
    out << (exhaustive ? "consistent (all orders enumerated, "
                       : "consistent (sampled orders, ")
        << tuples_checked << " tuples x " << orders_per_tuple << " orders)";
  } else {
    out << "INCONSISTENT at row " << witness_row << ":\n  fixpoints A:\n"
        << witness_fixpoint_a << "  fixpoints B:\n" << witness_fixpoint_b;
  }
  return out.str();
}

Result<ConsistencyReport> CheckConsistency(const KnowledgeBase& kb,
                                           const std::vector<DetectiveRule>& rules,
                                           const Relation& relation,
                                           const ConsistencyOptions& options) {
  ConsistencyReport report;
  if (rules.empty() || relation.num_tuples() == 0) {
    report.exhaustive = true;
    return report;
  }

  RepairOptions repair_options;
  repair_options.matcher.use_value_memo = true;  // orders share all node work
  RuleEngine engine(kb, relation.schema(), rules, repair_options);
  RETURN_NOT_OK(engine.Init());

  std::vector<std::vector<uint32_t>> orders =
      MakeOrders(rules.size(), std::max<size_t>(options.max_orders, 2), options.seed,
                 &report.exhaustive);
  report.orders_per_tuple = orders.size();

  // Sample tuples deterministically.
  std::vector<size_t> rows;
  if (options.max_tuples == 0 || relation.num_tuples() <= options.max_tuples) {
    rows.resize(relation.num_tuples());
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  } else {
    Rng rng(options.seed + 1);
    rows = rng.SampleWithoutReplacement(relation.num_tuples(), options.max_tuples);
    std::sort(rows.begin(), rows.end());
  }

  const size_t max_versions = repair_options.max_versions;
  for (size_t row : rows) {
    ++report.tuples_checked;
    const Tuple& tuple = relation.tuple(row);
    std::string reference;
    for (size_t o = 0; o < orders.size(); ++o) {
      std::string fixpoint =
          CanonicalFixpoints(ChaseWithOrder(engine, orders[o], tuple, max_versions));
      if (o == 0) {
        reference = std::move(fixpoint);
      } else if (fixpoint != reference) {
        report.consistent = false;
        report.witness_row = row;
        report.witness_fixpoint_a = reference;
        report.witness_fixpoint_b = fixpoint;
        return report;
      }
    }
  }
  return report;
}

}  // namespace detective
