#ifndef DETECTIVE_CORE_RULE_IO_H_
#define DETECTIVE_CORE_RULE_IO_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/rule.h"

namespace detective {

/// Text DSL for detective rules, so rule sets are data files rather than
/// code. Example (the paper's rule φ2 of Fig. 4):
///
///   RULE phi2
///   NODE w1 col="Name" type="Nobel laureates in Chemistry" sim="="
///   NODE w2 col="Institution" type="organization" sim="ED,2"
///   POS  p2 col="City" type="city" sim="="
///   NEG  n2 col="City" type="city" sim="="
///   EDGE w1 worksAt w2
///   EDGE w2 locatedIn p2
///   EDGE w1 wasBornIn n2
///   END
///
/// Grammar notes: '#' starts a comment; attribute values and edge relations
/// may be double-quoted (required when they contain spaces); node aliases
/// (w1, p2, ...) are file-local names; exactly one POS and one NEG node per
/// rule, on the same column.
Result<std::vector<DetectiveRule>> ParseRules(std::string_view text);
Result<std::vector<DetectiveRule>> ParseRulesFile(const std::string& path);

/// Inverse of ParseRules (round-trips modulo alias names and whitespace).
std::string FormatRules(const std::vector<DetectiveRule>& rules);
Status WriteRulesFile(const std::string& path, const std::vector<DetectiveRule>& rules);

}  // namespace detective

#endif  // DETECTIVE_CORE_RULE_IO_H_
