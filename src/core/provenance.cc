#include "core/provenance.h"

#include <algorithm>
#include <fstream>

#include "common/json_util.h"
#include "common/string_util.h"

namespace detective {

std::string_view ProvenanceKindName(ProvenanceKind kind) {
  switch (kind) {
    case ProvenanceKind::kRepair:
      return "repair";
    case ProvenanceKind::kNormalization:
      return "normalization";
    case ProvenanceKind::kProofPositive:
      return "proof_positive";
  }
  return "unknown";
}

Result<ProvenanceKind> ProvenanceKindFromName(std::string_view name) {
  if (name == "repair") return ProvenanceKind::kRepair;
  if (name == "normalization") return ProvenanceKind::kNormalization;
  if (name == "proof_positive") return ProvenanceKind::kProofPositive;
  return Status::InvalidArgument("unknown provenance kind \"", name, "\"");
}

// ---- RepairProvenance --------------------------------------------------------

std::string RepairProvenance::ToJson() const {
  std::string out = "{\"row\": " + std::to_string(row);
  out += ", \"column_index\": " + std::to_string(column_index);
  out += ", \"column\": ";
  AppendJsonString(column, &out);
  out += ", \"kind\": ";
  AppendJsonString(ProvenanceKindName(kind), &out);
  out += ", \"rule\": ";
  AppendJsonString(rule, &out);
  out += ", \"round\": " + std::to_string(round);
  out += ", \"old_value\": ";
  AppendJsonString(old_value, &out);
  out += ", \"new_value\": ";
  AppendJsonString(new_value, &out);
  out += ", \"bindings\": [";
  for (size_t i = 0; i < bindings.size(); ++i) {
    const ProvenanceBinding& binding = bindings[i];
    out += i == 0 ? "{" : ", {";
    out += "\"column\": ";
    AppendJsonString(binding.column, &out);
    out += ", \"type\": ";
    AppendJsonString(binding.type, &out);
    out += ", \"cell_value\": ";
    AppendJsonString(binding.cell_value, &out);
    out += ", \"kb_label\": ";
    AppendJsonString(binding.kb_label, &out);
    out += ", \"kb_item\": " + std::to_string(binding.kb_item);
    out += "}";
  }
  out += "], \"evidence_edges\": [";
  for (size_t i = 0; i < evidence_edges.size(); ++i) {
    const ProvenanceEdge& edge = evidence_edges[i];
    out += i == 0 ? "{" : ", {";
    out += "\"subject\": ";
    AppendJsonString(edge.subject, &out);
    out += ", \"relation\": ";
    AppendJsonString(edge.relation, &out);
    out += ", \"object\": ";
    AppendJsonString(edge.object, &out);
    out += "}";
  }
  out += "], \"marked_columns\": [";
  for (size_t i = 0; i < marked_columns.size(); ++i) {
    if (i > 0) out += ", ";
    AppendJsonString(marked_columns[i], &out);
  }
  out += "]}";
  return out;
}

namespace {

Result<ProvenanceBinding> ParseBinding(JsonCursor* cursor) {
  ProvenanceBinding binding;
  RETURN_NOT_OK(cursor->Expect('{'));
  if (!cursor->TryConsume('}')) {
    do {
      ASSIGN_OR_RETURN(std::string field, cursor->TakeString());
      RETURN_NOT_OK(cursor->Expect(':'));
      if (field == "kb_item") {
        ASSIGN_OR_RETURN(binding.kb_item, cursor->TakeUint());
        continue;
      }
      ASSIGN_OR_RETURN(std::string value, cursor->TakeString());
      if (field == "column") {
        binding.column = std::move(value);
      } else if (field == "type") {
        binding.type = std::move(value);
      } else if (field == "cell_value") {
        binding.cell_value = std::move(value);
      } else if (field == "kb_label") {
        binding.kb_label = std::move(value);
      } else {
        return Status::InvalidArgument("provenance JSON: unknown binding field \"",
                                       field, "\"");
      }
    } while (cursor->TryConsume(','));
    RETURN_NOT_OK(cursor->Expect('}'));
  }
  return binding;
}

Result<ProvenanceEdge> ParseEdge(JsonCursor* cursor) {
  ProvenanceEdge edge;
  RETURN_NOT_OK(cursor->Expect('{'));
  if (!cursor->TryConsume('}')) {
    do {
      ASSIGN_OR_RETURN(std::string field, cursor->TakeString());
      RETURN_NOT_OK(cursor->Expect(':'));
      ASSIGN_OR_RETURN(std::string value, cursor->TakeString());
      if (field == "subject") {
        edge.subject = std::move(value);
      } else if (field == "relation") {
        edge.relation = std::move(value);
      } else if (field == "object") {
        edge.object = std::move(value);
      } else {
        return Status::InvalidArgument("provenance JSON: unknown edge field \"",
                                       field, "\"");
      }
    } while (cursor->TryConsume(','));
    RETURN_NOT_OK(cursor->Expect('}'));
  }
  return edge;
}

}  // namespace

Result<RepairProvenance> RepairProvenance::FromJson(std::string_view json) {
  RepairProvenance record;
  JsonCursor cursor(json);
  RETURN_NOT_OK(cursor.Expect('{'));
  bool saw_row = false;
  bool saw_column = false;
  bool saw_kind = false;
  if (!cursor.TryConsume('}')) {
    do {
      ASSIGN_OR_RETURN(std::string field, cursor.TakeString());
      RETURN_NOT_OK(cursor.Expect(':'));
      if (field == "row") {
        ASSIGN_OR_RETURN(record.row, cursor.TakeUint());
        saw_row = true;
      } else if (field == "column_index") {
        ASSIGN_OR_RETURN(uint64_t value, cursor.TakeUint());
        record.column_index = static_cast<uint32_t>(value);
      } else if (field == "round") {
        ASSIGN_OR_RETURN(record.round, cursor.TakeUint());
      } else if (field == "column") {
        ASSIGN_OR_RETURN(record.column, cursor.TakeString());
        saw_column = true;
      } else if (field == "kind") {
        ASSIGN_OR_RETURN(std::string name, cursor.TakeString());
        ASSIGN_OR_RETURN(record.kind, ProvenanceKindFromName(name));
        saw_kind = true;
      } else if (field == "rule") {
        ASSIGN_OR_RETURN(record.rule, cursor.TakeString());
      } else if (field == "old_value") {
        ASSIGN_OR_RETURN(record.old_value, cursor.TakeString());
      } else if (field == "new_value") {
        ASSIGN_OR_RETURN(record.new_value, cursor.TakeString());
      } else if (field == "bindings") {
        RETURN_NOT_OK(cursor.Expect('['));
        if (!cursor.TryConsume(']')) {
          do {
            ASSIGN_OR_RETURN(ProvenanceBinding binding, ParseBinding(&cursor));
            record.bindings.push_back(std::move(binding));
          } while (cursor.TryConsume(','));
          RETURN_NOT_OK(cursor.Expect(']'));
        }
      } else if (field == "evidence_edges") {
        RETURN_NOT_OK(cursor.Expect('['));
        if (!cursor.TryConsume(']')) {
          do {
            ASSIGN_OR_RETURN(ProvenanceEdge edge, ParseEdge(&cursor));
            record.evidence_edges.push_back(std::move(edge));
          } while (cursor.TryConsume(','));
          RETURN_NOT_OK(cursor.Expect(']'));
        }
      } else if (field == "marked_columns") {
        RETURN_NOT_OK(cursor.Expect('['));
        if (!cursor.TryConsume(']')) {
          do {
            ASSIGN_OR_RETURN(std::string name, cursor.TakeString());
            record.marked_columns.push_back(std::move(name));
          } while (cursor.TryConsume(','));
          RETURN_NOT_OK(cursor.Expect(']'));
        }
      } else {
        return Status::InvalidArgument("provenance JSON: unknown field \"", field,
                                       "\"");
      }
    } while (cursor.TryConsume(','));
    RETURN_NOT_OK(cursor.Expect('}'));
  }
  RETURN_NOT_OK(cursor.ExpectEnd());
  if (!saw_row || !saw_column || !saw_kind) {
    return Status::InvalidArgument(
        "provenance JSON: missing required field (row, column, kind)");
  }
  return record;
}

std::string RepairProvenance::ToText() const {
  std::string out = "row " + std::to_string(row) + ", column \"" + column +
                    "\" [" + std::string(ProvenanceKindName(kind)) + " by rule " +
                    rule + ", round " + std::to_string(round) + "]\n";
  if (kind == ProvenanceKind::kProofPositive) {
    out += "  value \"" + old_value + "\" proven correct\n";
  } else {
    out += "  \"" + old_value + "\" -> \"" + new_value + "\"\n";
  }
  if (!bindings.empty()) {
    out += "  evidence:\n";
    for (const ProvenanceBinding& binding : bindings) {
      out += "    ";
      if (binding.column.empty()) {
        out += "(existential)";
      } else {
        out += binding.column + " = \"" + binding.cell_value + "\"";
      }
      out += " matched " + binding.type + " \"" + binding.kb_label +
             "\" (kb item " + std::to_string(binding.kb_item) + ")\n";
    }
  }
  if (!evidence_edges.empty()) {
    out += "  kb edges:\n";
    for (const ProvenanceEdge& edge : evidence_edges) {
      out += "    \"" + edge.subject + "\" --" + edge.relation + "--> \"" +
             edge.object + "\"\n";
    }
  }
  if (!marked_columns.empty()) {
    out += "  marked positive:";
    for (size_t i = 0; i < marked_columns.size(); ++i) {
      out += i == 0 ? " " : ", ";
      out += marked_columns[i];
    }
    out += "\n";
  }
  return out;
}

// ---- ProvenanceLog -----------------------------------------------------------

void ProvenanceLog::Merge(ProvenanceLog&& other) {
  records_.insert(records_.end(),
                  std::make_move_iterator(other.records_.begin()),
                  std::make_move_iterator(other.records_.end()));
  other.records_.clear();
}

void ProvenanceLog::Canonicalize() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const RepairProvenance& a, const RepairProvenance& b) {
                     if (a.row != b.row) return a.row < b.row;
                     if (a.column_index != b.column_index) {
                       return a.column_index < b.column_index;
                     }
                     return a.round < b.round;
                   });
}

std::vector<const RepairProvenance*> ProvenanceLog::ForCell(
    uint64_t row, std::string_view column) const {
  std::vector<const RepairProvenance*> out;
  for (const RepairProvenance& record : records_) {
    if (record.row != row) continue;
    if (record.column == column ||
        std::to_string(record.column_index) == column) {
      out.push_back(&record);
    }
  }
  return out;
}

std::string ProvenanceLog::ToJsonLines() const {
  std::string out;
  for (const RepairProvenance& record : records_) {
    out += record.ToJson();
    out += '\n';
  }
  return out;
}

Status ProvenanceLog::WriteJsonLines(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  out << ToJsonLines();
  if (!out) {
    return Status::IOError("error writing provenance JSONL to ", path);
  }
  return Status::OK();
}

Result<ProvenanceLog> ProvenanceLog::FromJsonLines(std::string_view text) {
  ProvenanceLog log;
  size_t line_number = 0;
  while (!text.empty()) {
    size_t end = text.find('\n');
    std::string_view line =
        end == std::string_view::npos ? text : text.substr(0, end);
    text = end == std::string_view::npos ? std::string_view{} : text.substr(end + 1);
    ++line_number;
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') blank = false;
    }
    if (blank) continue;
    auto record = RepairProvenance::FromJson(line);
    if (!record.ok()) {
      return Status::InvalidArgument("provenance JSONL line ",
                                     std::to_string(line_number), ": ",
                                     record.status().message());
    }
    log.Add(std::move(*record));
  }
  return log;
}

}  // namespace detective
