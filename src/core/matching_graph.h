#ifndef DETECTIVE_CORE_MATCHING_GRAPH_H_
#define DETECTIVE_CORE_MATCHING_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "text/similarity.h"

namespace detective {

/// A vertex of a schema-level matching graph (paper §II-B): the match
/// between one relation column and one KB type, with the matching operation
/// that decides whether a cell value and a KB instance denote the same
/// entity.
struct MatchNode {
  std::string column;  // col(u): column name in the relation; EMPTY for an
                       // existential node (see below)
  std::string type;    // type(u): class name in the KB, or "literal"
  Similarity sim;      // sim(u): matching operation (ignored if existential)

  /// An existential node binds to *some* KB instance of its type without a
  /// value constraint — the building block of the paper's "negative path"
  /// extension (§II-C remark: "extend from one negative node ... to a
  /// negative path"): intermediate hops of a path need not correspond to any
  /// table column.
  bool IsExistential() const { return column.empty(); }

  friend bool operator==(const MatchNode&, const MatchNode&) = default;
};

/// A directed labelled edge: how col(from) and col(to) are semantically
/// linked in the KB (a relationship or property name).
struct MatchEdge {
  uint32_t from = 0;
  uint32_t to = 0;
  std::string relation;  // rel(e)

  friend bool operator==(const MatchEdge&, const MatchEdge&) = default;
};

/// Schema-level matching graph GS(VS, ES): a local interpretation of how a
/// subset of the table's columns are linked through the KB. Instance-level
/// matching (the instantiation against one tuple) lives in
/// core/evidence_matcher.h.
class SchemaMatchingGraph {
 public:
  SchemaMatchingGraph() = default;
  SchemaMatchingGraph(std::vector<MatchNode> nodes, std::vector<MatchEdge> edges)
      : nodes_(std::move(nodes)), edges_(std::move(edges)) {}

  const std::vector<MatchNode>& nodes() const { return nodes_; }
  const std::vector<MatchEdge>& edges() const { return edges_; }
  const MatchNode& node(uint32_t index) const { return nodes_[index]; }

  /// Appends a node, returning its index.
  uint32_t AddNode(MatchNode node);
  /// Appends an edge between existing nodes.
  Status AddEdge(uint32_t from, uint32_t to, std::string relation);

  /// Index of the (unique) node on `column`, or nodes().size() if absent.
  uint32_t FindNodeByColumn(std::string_view column) const;

  /// Validates the §II-B well-formedness conditions:
  ///   - at least one node;
  ///   - all edge endpoints valid, no self-loops, non-empty relations;
  ///   - distinct nodes map distinct columns;
  ///   - the graph is connected (the paper's default assumption).
  Status Validate() const;

  /// True iff the graph restricted to all nodes except `excluded` is
  /// connected (vacuously true when <= 1 node remains). Used to validate
  /// detective rules, whose positive/negative sides must each be connected.
  bool ConnectedWithout(uint32_t excluded) const;
  bool Connected() const;

  /// True iff `a` minus node `drop_a` equals `b` minus node `drop_b`
  /// (paper: "the subgraphs G1\{p} and G2\{n} are isomorphic"). Because
  /// columns are distinct within a graph, the only possible isomorphism maps
  /// nodes with equal column names, so this is a label-driven comparison,
  /// not a search.
  static bool EquivalentExceptNode(const SchemaMatchingGraph& a, uint32_t drop_a,
                                   const SchemaMatchingGraph& b, uint32_t drop_b);

  /// Multi-line debug rendering.
  std::string ToString() const;

  friend bool operator==(const SchemaMatchingGraph&, const SchemaMatchingGraph&) =
      default;

 private:
  std::vector<MatchNode> nodes_;
  std::vector<MatchEdge> edges_;
};

}  // namespace detective

#endif  // DETECTIVE_CORE_MATCHING_GRAPH_H_
