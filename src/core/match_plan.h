#ifndef DETECTIVE_CORE_MATCH_PLAN_H_
#define DETECTIVE_CORE_MATCH_PLAN_H_

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/bound_rule.h"
#include "kb/knowledge_base.h"
#include "text/signature_index.h"
#include "text/similarity.h"

namespace detective {

/// The frozen matching plan of a repair run: one signature index per distinct
/// (type, similarity) pair the bound rules can ask for, built exactly once
/// and then shared read-only by every repair worker.
///
/// Before the plan existed, each parallel worker owned a private
/// EvidenceMatcher that lazily rebuilt the same indexes — N-threads copies of
/// the §IV-B(2) inverted lists the paper builds once per type. MatchPlan
/// hoists that construction out of the workers: Build() scans the bound
/// rules, collects the distinct non-equality (type, sim) pairs of
/// column-bearing nodes, and constructs the indexes in parallel (one build
/// task per index, claimed off an atomic counter).
///
/// After Build() the plan is immutable; IndexFor() is const and safe from
/// any number of threads. Equality matching needs no plan entry — it goes
/// through the KB's label hash index.
class MatchPlan {
 public:
  MatchPlan() = default;
  MatchPlan(MatchPlan&&) = default;
  MatchPlan& operator=(MatchPlan&&) = default;
  MatchPlan(const MatchPlan&) = delete;
  MatchPlan& operator=(const MatchPlan&) = delete;

  /// Builds the plan for `rules` over `kb`. `num_threads` bounds the build
  /// parallelism (0 = hardware concurrency); results are identical at any
  /// thread count. Unusable rules are skipped — they never match.
  static MatchPlan Build(const KnowledgeBase& kb, std::span<const BoundRule> rules,
                         size_t num_threads = 0);

  /// The frozen index for (type, sim), or nullptr when the plan has none
  /// (the matcher then falls back to its private lazy build). The pair count
  /// is small (one per distinct rule-node shape), so lookup is a verified
  /// linear scan — cheaper than any hashing at this cardinality, and immune
  /// to key collisions.
  const SignatureIndex* IndexFor(ClassId type, const Similarity& sim) const {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i].type == type && keys_[i].sim == sim) return indexes_[i].get();
    }
    return nullptr;
  }

  size_t num_indexes() const { return indexes_.size(); }

 private:
  struct Key {
    ClassId type;
    Similarity sim;
  };

  std::vector<Key> keys_;  // parallel to indexes_
  std::vector<std::unique_ptr<SignatureIndex>> indexes_;
};

}  // namespace detective

#endif  // DETECTIVE_CORE_MATCH_PLAN_H_
