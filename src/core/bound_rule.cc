#include "core/bound_rule.h"

#include "common/metrics.h"

namespace detective {

std::vector<uint32_t> BoundRule::PositiveSideNodes() const {
  std::vector<uint32_t> out;
  out.reserve(nodes.size() - 1);
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    if (i != negative) out.push_back(i);
  }
  return out;
}

std::vector<uint32_t> BoundRule::NegativeSideNodes() const {
  std::vector<uint32_t> out;
  out.reserve(nodes.size() - 1);
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    if (i != positive) out.push_back(i);
  }
  return out;
}

Result<BoundGraph> BindGraph(const SchemaMatchingGraph& graph, const Schema& schema,
                             const KnowledgeBase& kb) {
  BoundGraph bound;
  bound.usable = true;
  bound.nodes.reserve(graph.nodes().size());
  for (const MatchNode& node : graph.nodes()) {
    BoundNode bn;
    if (node.IsExistential()) {
      bn.column = kInvalidColumn;  // no cell; matched purely through edges
    } else {
      bn.column = schema.FindColumn(node.column);
      if (bn.column == kInvalidColumn) {
        return Status::InvalidArgument("graph references column '", node.column,
                                       "' absent from the schema");
      }
    }
    bn.type = kb.FindClass(node.type);
    if (!bn.type.valid()) bound.usable = false;  // KB lacks the class
    bn.sim = node.sim;
    bound.nodes.push_back(bn);
  }
  bound.edges.reserve(graph.edges().size());
  for (const MatchEdge& edge : graph.edges()) {
    BoundEdge be;
    be.from = edge.from;
    be.to = edge.to;
    be.relation = kb.FindRelation(edge.relation);
    if (!be.relation.valid()) bound.usable = false;  // KB lacks the relation
    bound.edges.push_back(be);
  }
  return bound;
}

Result<BoundRule> BindRule(const DetectiveRule& rule, const Schema& schema,
                           const KnowledgeBase& kb) {
  RETURN_NOT_OK(rule.Validate());
  auto graph = BindGraph(rule.graph(), schema, kb);
  if (!graph.ok()) {
    return graph.status().WithContext("rule '" + rule.name() + "'");
  }
  BoundRule bound;
  bound.rule = &rule;
  bound.positive = rule.positive_node();
  bound.negative = rule.negative_node();
  bound.usable = graph->usable;
  bound.nodes = std::move(graph->nodes);
  bound.edges = std::move(graph->edges);
  DETECTIVE_COUNT("rules.bound");
  if (!bound.usable) DETECTIVE_COUNT("rules.unusable");
  return bound;
}

}  // namespace detective
