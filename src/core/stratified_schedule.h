#ifndef DETECTIVE_CORE_STRATIFIED_SCHEDULE_H_
#define DETECTIVE_CORE_STRATIFIED_SCHEDULE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace detective {

/// The engine-facing half of a stratification certificate
/// (analysis/stratification.h): which rule firings can possibly enable which
/// other rules. The chase drivers consult only the pairwise matrix — never
/// the strata — so a schedule can only *license skipping* provably-futile
/// confirming sweeps; it never reorders evaluation. That is what keeps the
/// stratified chase byte-identical to the classic one (docs/static_analysis.md).
///
/// Soundness contract for `can_enable[a][b] == 0`: applying rule `a` to a
/// tuple can never change rule `b`'s evaluation from "not applicable" to a
/// fire. Two certified reasons exist: `a` writes (repair or fuzzy-match
/// standardization) no column `b` reads, or the pair is statically mutually
/// exclusive (a shared stable evidence column with label-disjoint classes
/// under exact matching). Positive marks never count: marks only ever
/// *disable* rules, by conditions (i)/(ii) of §III-B.
struct StratifiedSchedule {
  size_t num_rules = 0;
  /// SCC condensation of the can-enable graph in topological order; each
  /// stratum lists its rule indexes ascending. Informational for reports —
  /// the chase does not consume it (see above).
  std::vector<std::vector<uint32_t>> strata;
  /// Row-major num_rules x num_rules matrix; see the contract above.
  std::vector<char> can_enable;

  bool CanEnable(uint32_t a, uint32_t b) const {
    return can_enable[a * num_rules + b] != 0;
  }
};

}  // namespace detective

#endif  // DETECTIVE_CORE_STRATIFIED_SCHEDULE_H_
