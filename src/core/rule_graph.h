#ifndef DETECTIVE_CORE_RULE_GRAPH_H_
#define DETECTIVE_CORE_RULE_GRAPH_H_

#include <cstdint>
#include <vector>

#include "core/rule.h"

namespace detective {

/// Rule dependency graph (paper §IV-B(1)): an edge φ → φ' means φ may write
/// a column (col(p) of φ) that φ' reads as evidence, so φ should be checked
/// first. Cycles are condensed into strongly connected components; the
/// repair order is a topological order of the condensation, stable with
/// respect to the input rule order within and across components.
class RuleGraph {
 public:
  explicit RuleGraph(const std::vector<DetectiveRule>& rules);

  size_t num_rules() const { return adjacency_.size(); }

  /// Direct successors of rule `r` (rules that consume col(p) of `r`).
  const std::vector<uint32_t>& Successors(uint32_t rule) const {
    return adjacency_[rule];
  }

  /// Rule indexes in the order the fast repairer should check them.
  const std::vector<uint32_t>& CheckOrder() const { return order_; }

  /// Component id per rule; components are numbered in topological order.
  const std::vector<uint32_t>& ComponentOf() const { return component_; }
  size_t num_components() const { return num_components_; }

  /// True iff the dependency graph is acyclic (every SCC is a single rule
  /// without a self-loop) — when it holds, one pass in CheckOrder suffices.
  bool IsAcyclic() const { return acyclic_; }

 private:
  std::vector<std::vector<uint32_t>> adjacency_;
  std::vector<uint32_t> order_;
  std::vector<uint32_t> component_;
  size_t num_components_ = 0;
  bool acyclic_ = true;
};

}  // namespace detective

#endif  // DETECTIVE_CORE_RULE_GRAPH_H_
