#include "core/rule_io.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/fault.h"
#include "common/string_util.h"

namespace detective {

namespace {

/// Splits a DSL line into tokens; a token is either a bare word or a
/// double-quoted string ("" escapes a quote inside). key="value" stays one
/// token ('key="value"' -> 'key=value').
Status TokenizeLine(std::string_view line, size_t line_number,
                    std::vector<std::string>* tokens) {
  tokens->clear();
  std::string current;
  bool in_quotes = false;
  bool token_active = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      token_active = true;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      if (token_active) {
        tokens->push_back(std::move(current));
        current.clear();
        token_active = false;
      }
    } else if (c == '#') {
      break;  // comment until end of line
    } else {
      current.push_back(c);
      token_active = true;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quote on line ", line_number);
  }
  if (token_active) tokens->push_back(std::move(current));
  return Status::OK();
}

/// Parses 'key=value' into the out-param for a known key.
Status ParseAttribute(const std::string& token, size_t line_number,
                      std::string* column, std::string* type, std::string* sim) {
  size_t eq = token.find('=');
  if (eq == std::string::npos) {
    return Status::ParseError("expected key=value, got '", token, "' on line ",
                              line_number);
  }
  std::string key = ToLower(token.substr(0, eq));
  std::string value = token.substr(eq + 1);
  if (key == "col" || key == "column") {
    *column = value;
  } else if (key == "type") {
    *type = value;
  } else if (key == "sim") {
    *sim = value;
  } else {
    return Status::ParseError("unknown attribute '", key, "' on line ", line_number);
  }
  return Status::OK();
}

struct RuleDraft {
  std::string name;
  SchemaMatchingGraph graph;
  std::unordered_map<std::string, uint32_t> alias_to_node;
  uint32_t positive = static_cast<uint32_t>(-1);
  uint32_t negative = static_cast<uint32_t>(-1);
  struct PendingEdge {
    std::string from, relation, to;
    size_t line;
  };
  std::vector<PendingEdge> pending_edges;
  bool active = false;
};

Status FinishRule(RuleDraft* draft, std::vector<DetectiveRule>* out) {
  for (const RuleDraft::PendingEdge& edge : draft->pending_edges) {
    auto from = draft->alias_to_node.find(edge.from);
    auto to = draft->alias_to_node.find(edge.to);
    if (from == draft->alias_to_node.end()) {
      return Status::ParseError("unknown node alias '", edge.from, "' on line ",
                                edge.line);
    }
    if (to == draft->alias_to_node.end()) {
      return Status::ParseError("unknown node alias '", edge.to, "' on line ",
                                edge.line);
    }
    RETURN_NOT_OK(draft->graph.AddEdge(from->second, to->second, edge.relation));
  }
  if (draft->positive == static_cast<uint32_t>(-1) ||
      draft->negative == static_cast<uint32_t>(-1)) {
    return Status::ParseError("rule '", draft->name, "' needs one POS and one NEG node");
  }
  DetectiveRule rule(draft->name, std::move(draft->graph), draft->positive,
                     draft->negative);
  RETURN_NOT_OK(rule.Validate());
  out->push_back(std::move(rule));
  *draft = RuleDraft();
  return Status::OK();
}

}  // namespace

Result<std::vector<DetectiveRule>> ParseRules(std::string_view text) {
  std::vector<DetectiveRule> rules;
  RuleDraft draft;
  std::vector<std::string> tokens;
  size_t line_number = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line = end == std::string_view::npos
                                ? text.substr(start)
                                : text.substr(start, end - start);
    ++line_number;
    Status st = TokenizeLine(line, line_number, &tokens);
    if (!st.ok()) return st;
    if (!tokens.empty()) {
      std::string keyword = ToUpper(tokens[0]);
      if (keyword == "RULE") {
        if (draft.active) {
          return Status::ParseError("RULE before END on line ", line_number);
        }
        if (tokens.size() != 2) {
          return Status::ParseError("RULE needs a name on line ", line_number);
        }
        draft.active = true;
        draft.name = tokens[1];
      } else if (keyword == "EXIST") {
        // Existential node: EXIST <alias> type="..." — no column, no sim.
        if (!draft.active) {
          return Status::ParseError("EXIST outside RULE on line ", line_number);
        }
        if (tokens.size() < 2) {
          return Status::ParseError("EXIST needs an alias on line ", line_number);
        }
        const std::string& alias = tokens[1];
        if (draft.alias_to_node.contains(alias)) {
          return Status::ParseError("duplicate node alias '", alias, "' on line ",
                                    line_number);
        }
        std::string column;
        std::string type;
        std::string sim_text = "=";
        for (size_t i = 2; i < tokens.size(); ++i) {
          st = ParseAttribute(tokens[i], line_number, &column, &type, &sim_text);
          if (!st.ok()) return st;
        }
        if (!column.empty()) {
          return Status::ParseError("EXIST nodes cannot carry col= on line ",
                                    line_number);
        }
        if (type.empty()) {
          return Status::ParseError("EXIST needs type= on line ", line_number);
        }
        draft.alias_to_node.emplace(
            alias, draft.graph.AddNode({"", type, Similarity::Equality()}));
      } else if (keyword == "NODE" || keyword == "POS" || keyword == "NEG") {
        if (!draft.active) {
          return Status::ParseError(keyword, " outside RULE on line ", line_number);
        }
        if (tokens.size() < 2) {
          return Status::ParseError(keyword, " needs an alias on line ", line_number);
        }
        const std::string& alias = tokens[1];
        if (draft.alias_to_node.contains(alias)) {
          return Status::ParseError("duplicate node alias '", alias, "' on line ",
                                    line_number);
        }
        std::string column;
        std::string type;
        std::string sim_text = "=";
        for (size_t i = 2; i < tokens.size(); ++i) {
          st = ParseAttribute(tokens[i], line_number, &column, &type, &sim_text);
          if (!st.ok()) return st;
        }
        auto sim = Similarity::Parse(sim_text);
        if (!sim.ok()) return sim.status().WithContext("line " + std::to_string(line_number));
        uint32_t node = draft.graph.AddNode({column, type, *sim});
        draft.alias_to_node.emplace(alias, node);
        if (keyword == "POS") {
          if (draft.positive != static_cast<uint32_t>(-1)) {
            return Status::ParseError("second POS node on line ", line_number);
          }
          draft.positive = node;
        } else if (keyword == "NEG") {
          if (draft.negative != static_cast<uint32_t>(-1)) {
            return Status::ParseError("second NEG node on line ", line_number);
          }
          draft.negative = node;
        }
      } else if (keyword == "EDGE") {
        if (!draft.active) {
          return Status::ParseError("EDGE outside RULE on line ", line_number);
        }
        if (tokens.size() != 4) {
          return Status::ParseError("EDGE needs <from> <relation> <to> on line ",
                                    line_number);
        }
        draft.pending_edges.push_back({tokens[1], tokens[2], tokens[3], line_number});
      } else if (keyword == "END") {
        if (!draft.active) {
          return Status::ParseError("END outside RULE on line ", line_number);
        }
        st = FinishRule(&draft, &rules);
        if (!st.ok()) return st;
      } else {
        return Status::ParseError("unknown keyword '", tokens[0], "' on line ",
                                  line_number);
      }
    }
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  if (draft.active) {
    return Status::ParseError("rule '", draft.name, "' missing END");
  }
  return rules;
}

Result<std::vector<DetectiveRule>> ParseRulesFile(const std::string& path) {
  // Transient I/O failures (including injected ones) are retried with capped
  // backoff; syntax errors are permanent and surface immediately.
  auto text = fault::RetryTransient([&]() -> Result<std::string> {
    DETECTIVE_FAULT_POINT("rule.parse");
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot open ", path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) return Status::IOError("read failed for ", path);
    return buffer.str();
  });
  if (!text.ok()) return text.status();
  return ParseRules(*text);
}

namespace {

std::string Quote(std::string_view value) {
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string FormatRules(const std::vector<DetectiveRule>& rules) {
  std::ostringstream out;
  for (const DetectiveRule& rule : rules) {
    out << "RULE " << rule.name() << "\n";
    const auto& nodes = rule.graph().nodes();
    for (uint32_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].IsExistential()) {
        out << "EXIST v" << i << " type=" << Quote(nodes[i].type) << "\n";
        continue;
      }
      const char* keyword = i == rule.positive_node()
                                ? "POS "
                                : (i == rule.negative_node() ? "NEG " : "NODE");
      out << keyword << " v" << i << " col=" << Quote(nodes[i].column)
          << " type=" << Quote(nodes[i].type)
          << " sim=" << Quote(nodes[i].sim.ToString()) << "\n";
    }
    for (const MatchEdge& edge : rule.graph().edges()) {
      out << "EDGE v" << edge.from << " " << Quote(edge.relation) << " v" << edge.to
          << "\n";
    }
    out << "END\n\n";
  }
  return out.str();
}

Status WriteRulesFile(const std::string& path,
                      const std::vector<DetectiveRule>& rules) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open ", path, " for writing");
  out << FormatRules(rules);
  out.flush();
  if (!out) return Status::IOError("write failed for ", path);
  return Status::OK();
}

}  // namespace detective
